% IIR biquad cascade (4 sections, recurrence)
% Benchmark kernel of the mat2c evaluation (see EXPERIMENTS.md).
function y = iirsos(x, sos)
% Cascade of second-order sections; sos is 6 x nsec:
% rows are b0 b1 b2 a0 a1 a2 (a0 assumed 1).
n = length(x);
nsec = size(sos, 2);
y = zeros(1, n);
y(1:n) = x(1:n);
for s = 1:nsec
    b0 = sos(1, s);
    b1 = sos(2, s);
    b2 = sos(3, s);
    a1 = sos(5, s);
    a2 = sos(6, s);
    w1 = 0;
    w2 = 0;
    for i = 1:n
        w0 = y(i) - a1 * w1 - a2 * w2;
        y(i) = b0 * w0 + b1 * w1 + b2 * w2;
        w2 = w1;
        w1 = w0;
    end
end
end
