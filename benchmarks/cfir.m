% complex FIR / matched filter (16 taps)
% Benchmark kernel of the mat2c evaluation (see EXPERIMENTS.md).
function y = cfir(x, h)
% Complex FIR filter, slice formulation with conjugated taps
% (matched filter): y(i) = sum_k conj(h(k)) * x(i-k+1).
n = length(x);
t = length(h);
y = zeros(1, n);
for k = 1:t
    y(t:n) = y(t:n) + conj(h(k)) .* x(t-k+1:n-k+1);
end
end
