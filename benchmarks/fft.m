% radix-2 complex FFT (in-place, precomputed twiddles)
% Benchmark kernel of the mat2c evaluation (see EXPERIMENTS.md).
function y = fftr2(x, w)
% Iterative radix-2 decimation-in-time FFT.
n = length(x);
y = zeros(1, n);
y(1:n) = x(1:n);
% Bit-reversal permutation.
j = 1;
for i = 1:n-1
    if i < j
        t = y(j);
        y(j) = y(i);
        y(i) = t;
    end
    k = fix(n / 2);
    while k < j
        j = j - k;
        k = fix(k / 2);
    end
    j = j + k;
end
% Butterfly stages.
len = 2;
while len <= n
    half = fix(len / 2);
    step = fix(n / len);
    i0 = 1;
    while i0 <= n - len + 1
        for k = 0:half-1
            t = w(k * step + 1) * y(i0 + k + half);
            y(i0 + k + half) = y(i0 + k) - t;
            y(i0 + k) = y(i0 + k) + t;
        end
        i0 = i0 + len;
    end
    len = len * 2;
end
end
