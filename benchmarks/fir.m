% real FIR filter (16 taps, slice form)
% Benchmark kernel of the mat2c evaluation (see EXPERIMENTS.md).
function y = fir(x, h)
% FIR filter: y(i) = sum_k h(k) * x(i-k+1), slice formulation.
n = length(x);
t = length(h);
y = zeros(1, n);
for k = 1:t
    y(t:n) = y(t:n) + h(k) .* x(t-k+1:n-k+1);
end
end
