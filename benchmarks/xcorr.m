% cross-correlation (±32 lags)
% Benchmark kernel of the mat2c evaluation (see EXPERIMENTS.md).
function r = xcorr(x, y, maxlag)
% Cross-correlation r(lag) = sum_i x(i) * y(i + lag).
n = length(x);
r = zeros(1, 2 * maxlag + 1);
for lag = -maxlag:maxlag
    acc = 0;
    lo = max(1, 1 - lag);
    hi = min(n, n - lag);
    for i = lo:hi
        acc = acc + x(i) * y(i + lag);
    end
    r(lag + maxlag + 1) = acc;
end
end
