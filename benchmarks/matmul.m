% real matrix multiply (C = A*B)
% Benchmark kernel of the mat2c evaluation (see EXPERIMENTS.md).
function c = matmul(a, b)
c = a * b;
end
