// Dataflow patterns: small parameterized expression trees used to give
// mined custom instructions (internal/isx) executable semantics. A
// pattern is written in a compact text form, e.g.
//
//	float:add(p0,mul(p1,p2))        — a fused multiply-add
//	complex:mul(p0,conj(p1))        — a conjugate multiply
//
// and travels with the instruction (pdesc.Instr.Semantics → vm.Instr.Sem)
// so every consumer — the reference evaluator here, both VM engines, and
// the generated C fallback — derives behaviour from the same definition.
//
// The op vocabulary is deliberately restricted to ops whose lane
// semantics are identical across the evaluator and the VM (no base-kind
// changes, no faulting ops): float add/sub/mul/min/max/neg/abs and
// complex add/sub/mul/neg/conj. All interior nodes of a pattern share
// one base kind; parameters are numbered p0..pN-1 and may repeat.
package ir

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MaxPatternArity bounds the distinct parameters of one pattern: wider
// instructions would exceed any plausible register-port budget.
const MaxPatternArity = 8

// PatNode is one node of a pattern tree: a parameter leaf (Param >= 0)
// or an operation over one (Y == nil) or two children.
type PatNode struct {
	Param int // parameter index, or -1 for an op node
	Op    Op
	X, Y  *PatNode
}

// Pattern is a parsed, validated pattern.
type Pattern struct {
	Base  BaseKind // Float or Complex
	Root  *PatNode
	arity int
	nodes int // op nodes (not counting parameter leaves)
	depth int
}

// Allowed op vocabulary per base kind.
var (
	patFloatBin   = map[Op]bool{OpAdd: true, OpSub: true, OpMul: true, OpMin: true, OpMax: true}
	patFloatUn    = map[Op]bool{OpNeg: true, OpAbs: true}
	patComplexBin = map[Op]bool{OpAdd: true, OpSub: true, OpMul: true}
	patComplexUn  = map[Op]bool{OpNeg: true, OpConj: true}
)

// PatternBinOp reports whether op is usable as a binary pattern node
// over the given base.
func PatternBinOp(base BaseKind, op Op) bool {
	if base == Complex {
		return patComplexBin[op]
	}
	return base == Float && patFloatBin[op]
}

// PatternUnOp reports whether op is usable as a unary pattern node over
// the given base. OpAbs is excluded for complex (it changes the base
// kind to float, breaking the single-base invariant).
func PatternUnOp(base BaseKind, op Op) bool {
	if base == Complex {
		return patComplexUn[op]
	}
	return base == Float && patFloatUn[op]
}

// Param returns a parameter leaf node.
func Param(i int) *PatNode { return &PatNode{Param: i} }

// PUn returns a unary pattern node.
func PUn(op Op, x *PatNode) *PatNode { return &PatNode{Param: -1, Op: op, X: x} }

// PBin returns a binary pattern node.
func PBin(op Op, x, y *PatNode) *PatNode { return &PatNode{Param: -1, Op: op, X: x, Y: y} }

// NewPattern validates a hand-built tree into a Pattern. Every op must
// be in the base's vocabulary, and parameter indices must be contiguous
// from 0 (an instruction's operand list has no holes).
func NewPattern(base BaseKind, root *PatNode) (*Pattern, error) {
	if base != Float && base != Complex {
		return nil, fmt.Errorf("pattern base must be float or complex, got %s", base)
	}
	if root == nil {
		return nil, fmt.Errorf("pattern has no body")
	}
	p := &Pattern{Base: base, Root: root}
	seen := map[int]bool{}
	maxIdx := -1
	var walk func(n *PatNode, depth int) error
	walk = func(n *PatNode, depth int) error {
		if depth > p.depth {
			p.depth = depth
		}
		if n.Param >= 0 {
			if n.Param >= MaxPatternArity {
				return fmt.Errorf("pattern parameter p%d exceeds the arity limit %d", n.Param, MaxPatternArity)
			}
			seen[n.Param] = true
			if n.Param > maxIdx {
				maxIdx = n.Param
			}
			return nil
		}
		p.nodes++
		if n.X == nil {
			return fmt.Errorf("pattern op %s has no operand", n.Op)
		}
		if n.Y == nil {
			if !PatternUnOp(base, n.Op) {
				return fmt.Errorf("op %s is not a valid unary %s pattern op", n.Op, base)
			}
			return walk(n.X, depth+1)
		}
		if !PatternBinOp(base, n.Op) {
			return fmt.Errorf("op %s is not a valid binary %s pattern op", n.Op, base)
		}
		if err := walk(n.X, depth+1); err != nil {
			return err
		}
		return walk(n.Y, depth+1)
	}
	if err := walk(root, 1); err != nil {
		return nil, err
	}
	if p.nodes == 0 {
		return nil, fmt.Errorf("pattern is a bare parameter, not an operation")
	}
	for i := 0; i <= maxIdx; i++ {
		if !seen[i] {
			return nil, fmt.Errorf("pattern parameter p%d is skipped (parameters must be contiguous from p0)", i)
		}
	}
	p.arity = maxIdx + 1
	return p, nil
}

// Arity returns the number of distinct parameters.
func (p *Pattern) Arity() int { return p.arity }

// OpNodes returns the number of operation nodes.
func (p *Pattern) OpNodes() int { return p.nodes }

// Depth returns the height of the operation tree.
func (p *Pattern) Depth() int { return p.depth }

// String renders the pattern in its parseable text form, preserving the
// tree exactly as built or parsed.
func (p *Pattern) String() string {
	var b strings.Builder
	b.WriteString(p.Base.String())
	b.WriteByte(':')
	renderPatNode(&b, p.Root)
	return b.String()
}

func renderPatNode(b *strings.Builder, n *PatNode) {
	if n.Param >= 0 {
		b.WriteByte('p')
		b.WriteString(strconv.Itoa(n.Param))
		return
	}
	b.WriteString(n.Op.String())
	b.WriteByte('(')
	renderPatNode(b, n.X)
	if n.Y != nil {
		b.WriteByte(',')
		renderPatNode(b, n.Y)
	}
	b.WriteByte(')')
}

// Canonical returns a dedup key that identifies the pattern up to
// commutative operand order and parameter renaming: commutative
// children are ordered by an identity-blind shape key, then parameters
// are renumbered in first-occurrence order. Patterns whose Canonical
// strings match compute the same function under some argument
// permutation (the converse can miss exotic ties; the miner only uses
// this to avoid re-scoring obvious duplicates).
func (p *Pattern) Canonical() string {
	root := canonPatNode(p.Root)
	renum := map[int]int{}
	var b strings.Builder
	b.WriteString(p.Base.String())
	b.WriteByte(':')
	var render func(n *PatNode)
	render = func(n *PatNode) {
		if n.Param >= 0 {
			id, ok := renum[n.Param]
			if !ok {
				id = len(renum)
				renum[n.Param] = id
			}
			b.WriteByte('p')
			b.WriteString(strconv.Itoa(id))
			return
		}
		b.WriteString(n.Op.String())
		b.WriteByte('(')
		render(n.X)
		if n.Y != nil {
			b.WriteByte(',')
			render(n.Y)
		}
		b.WriteByte(')')
	}
	render(root)
	return b.String()
}

func canonPatNode(n *PatNode) *PatNode {
	if n.Param >= 0 {
		return n
	}
	x := canonPatNode(n.X)
	if n.Y == nil {
		return &PatNode{Param: -1, Op: n.Op, X: x}
	}
	y := canonPatNode(n.Y)
	if n.Op.Commutative() {
		kx, ky := patShapeKey(x), patShapeKey(y)
		if ky < kx {
			x, y = y, x
		}
	}
	return &PatNode{Param: -1, Op: n.Op, X: x, Y: y}
}

// patShapeKey renders a subtree with all parameters blanked to "p", so
// commutative ordering does not depend on parameter numbering.
func patShapeKey(n *PatNode) string {
	var b strings.Builder
	var walk func(n *PatNode)
	walk = func(n *PatNode) {
		if n.Param >= 0 {
			b.WriteByte('p')
			return
		}
		b.WriteString(n.Op.String())
		b.WriteByte('(')
		kids := []*PatNode{n.X}
		if n.Y != nil {
			kids = append(kids, n.Y)
		}
		if n.Y != nil && n.Op.Commutative() {
			ka, kb := patShapeKey(n.X), patShapeKey(n.Y)
			if kb < ka {
				kids[0], kids[1] = kids[1], kids[0]
			}
		}
		for i, k := range kids {
			if i > 0 {
				b.WriteByte(',')
			}
			walk(k)
		}
		b.WriteByte(')')
	}
	walk(n)
	return b.String()
}

// EvalLane computes one lane of the pattern. Argument and result values
// are carried as complex128 regardless of base: float patterns operate
// on the real parts and return a real-only complex, exactly matching
// the VM's lane representation.
func (p *Pattern) EvalLane(args []complex128) complex128 {
	return evalPatNode(p.Base, p.Root, args)
}

func evalPatNode(base BaseKind, n *PatNode, args []complex128) complex128 {
	if n.Param >= 0 {
		v := args[n.Param]
		if base == Float {
			return complex(real(v), 0)
		}
		return v
	}
	x := evalPatNode(base, n.X, args)
	if n.Y == nil {
		if base == Complex {
			switch n.Op {
			case OpNeg:
				return -x
			case OpConj:
				return cmplx.Conj(x)
			}
			return cmplx.NaN()
		}
		switch n.Op {
		case OpNeg:
			return complex(-real(x), 0)
		case OpAbs:
			return complex(math.Abs(real(x)), 0)
		}
		return complex(math.NaN(), 0)
	}
	y := evalPatNode(base, n.Y, args)
	if base == Complex {
		switch n.Op {
		case OpAdd:
			return x + y
		case OpSub:
			return x - y
		case OpMul:
			return x * y
		}
		return cmplx.NaN()
	}
	a, bb := real(x), real(y)
	var r float64
	switch n.Op {
	case OpAdd:
		r = a + bb
	case OpSub:
		r = a - bb
	case OpMul:
		r = a * bb
	case OpMin:
		r = math.Min(a, bb)
	case OpMax:
		r = math.Max(a, bb)
	default:
		r = math.NaN()
	}
	return complex(r, 0)
}

// ParsePattern parses the text form "base:expr" where base is "float"
// or "complex" and expr is a parameter pN or op(arg[,arg]) over the
// base's op vocabulary. Whitespace is not significant.
func ParsePattern(s string) (*Pattern, error) {
	text := strings.TrimSpace(s)
	colon := strings.IndexByte(text, ':')
	if colon < 0 {
		return nil, fmt.Errorf("pattern %q: missing base prefix (want float: or complex:)", s)
	}
	var base BaseKind
	switch strings.TrimSpace(text[:colon]) {
	case "float":
		base = Float
	case "complex":
		base = Complex
	default:
		return nil, fmt.Errorf("pattern %q: base must be float or complex", s)
	}
	pp := &patParser{s: text[colon+1:]}
	root, err := pp.expr()
	if err != nil {
		return nil, fmt.Errorf("pattern %q: %v", s, err)
	}
	pp.skipSpace()
	if pp.i != len(pp.s) {
		return nil, fmt.Errorf("pattern %q: trailing input at offset %d", s, pp.i)
	}
	p, err := NewPattern(base, root)
	if err != nil {
		return nil, fmt.Errorf("pattern %q: %v", s, err)
	}
	return p, nil
}

type patParser struct {
	s string
	i int
}

func (p *patParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *patParser) ident() string {
	start := p.i
	for p.i < len(p.s) {
		c := p.s[p.i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			p.i++
			continue
		}
		break
	}
	return p.s[start:p.i]
}

func (p *patParser) expr() (*PatNode, error) {
	p.skipSpace()
	id := p.ident()
	if id == "" {
		return nil, fmt.Errorf("expected parameter or op at offset %d", p.i)
	}
	if id[0] == 'p' && len(id) > 1 {
		if n, err := strconv.Atoi(id[1:]); err == nil {
			return Param(n), nil
		}
	}
	op, ok := opByName(id)
	if !ok {
		return nil, fmt.Errorf("unknown op %q", id)
	}
	p.skipSpace()
	if p.i >= len(p.s) || p.s[p.i] != '(' {
		return nil, fmt.Errorf("op %s: expected ( at offset %d", id, p.i)
	}
	p.i++
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	n := &PatNode{Param: -1, Op: op, X: x}
	p.skipSpace()
	if p.i < len(p.s) && p.s[p.i] == ',' {
		p.i++
		y, err := p.expr()
		if err != nil {
			return nil, err
		}
		n.Y = y
		p.skipSpace()
	}
	if p.i >= len(p.s) || p.s[p.i] != ')' {
		return nil, fmt.Errorf("op %s: expected ) at offset %d", id, p.i)
	}
	p.i++
	return n, nil
}

var opNameIndex = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

func opByName(name string) (Op, bool) {
	op, ok := opNameIndex[name]
	return op, ok
}

// patternCache memoizes parsed patterns by text: the VM and evaluator
// hit the same few semantics strings for every executed instruction.
var patternCache sync.Map // string -> *Pattern (or error, stored as patternCacheErr)

type patternCacheErr struct{ err error }

// CachedPattern parses sem through a process-wide cache. Patterns are
// immutable after construction, so sharing is safe.
func CachedPattern(sem string) (*Pattern, error) {
	if v, ok := patternCache.Load(sem); ok {
		if e, bad := v.(patternCacheErr); bad {
			return nil, e.err
		}
		return v.(*Pattern), nil
	}
	p, err := ParsePattern(sem)
	if err != nil {
		patternCache.Store(sem, patternCacheErr{err})
		return nil, err
	}
	patternCache.Store(sem, p)
	return p, nil
}

// SortPatternsByNodes orders patterns largest-first (more fused work
// first), breaking ties by canonical text for determinism. Used by
// instruction selection's maximal-munch over mined patterns.
func SortPatternsByNodes(ps []*Pattern) {
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].OpNodes() != ps[j].OpNodes() {
			return ps[i].OpNodes() > ps[j].OpNodes()
		}
		return ps[i].Canonical() < ps[j].Canonical()
	})
}

// evalPatternIntrinsic evaluates a semantics-carrying intrinsic in the
// reference evaluator: each lane gathers its arguments (scalars
// broadcast) and applies the pattern.
func evalPatternIntrinsic(name, sem string, args []val, k Kind) (val, error) {
	p, err := CachedPattern(sem)
	if err != nil {
		return val{}, rtErrf("intrinsic %s: bad semantics: %v", name, err)
	}
	if len(args) != p.Arity() {
		return val{}, rtErrf("intrinsic %s expects %d args, got %d", name, p.Arity(), len(args))
	}
	out := makeVal(k)
	lanes := make([]complex128, p.Arity())
	for j := 0; j < k.Lanes; j++ {
		for i, a := range args {
			ji := j
			if a.k.Lanes == 1 {
				ji = 0
			}
			_, _, c := a.lane(ji)
			lanes[i] = c
		}
		r := p.EvalLane(lanes)
		if p.Base == Complex {
			out.setLane(j, 0, real(r), r)
		} else {
			f := real(r)
			out.setLane(j, int64(f), f, complex(f, 0))
		}
	}
	return out, nil
}
