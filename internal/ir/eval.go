package ir

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Array is a runtime dense array (column-major). Exactly one of F or C is
// populated, matching Elem.
type Array struct {
	Elem BaseKind
	Rows int
	Cols int
	F    []float64
	C    []complex128
}

// NewFloatArray allocates a zero real array.
func NewFloatArray(rows, cols int) *Array {
	return &Array{Elem: Float, Rows: rows, Cols: cols, F: make([]float64, rows*cols)}
}

// NewComplexArray allocates a zero complex array.
func NewComplexArray(rows, cols int) *Array {
	return &Array{Elem: Complex, Rows: rows, Cols: cols, C: make([]complex128, rows*cols)}
}

// Len returns the number of elements.
func (a *Array) Len() int { return a.Rows * a.Cols }

// At returns element i as a complex128 regardless of Elem.
func (a *Array) At(i int) complex128 {
	if a.Elem == Complex {
		return a.C[i]
	}
	return complex(a.F[i], 0)
}

// Clone deep-copies the array.
func (a *Array) Clone() *Array {
	n := &Array{Elem: a.Elem, Rows: a.Rows, Cols: a.Cols}
	if a.F != nil {
		n.F = append([]float64(nil), a.F...)
	}
	if a.C != nil {
		n.C = append([]complex128(nil), a.C...)
	}
	return n
}

// RuntimeError is an execution error (bad index, step limit, ...).
type RuntimeError struct{ Msg string }

func (e *RuntimeError) Error() string { return e.Msg }

func rtErrf(format string, args ...interface{}) error {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// val is an evaluated expression: all lanes stored uniformly.
type val struct {
	k Kind
	i []int64
	f []float64
	c []complex128
}

func scalarInt(v int64) val     { return val{k: KInt, i: []int64{v}} }
func scalarFloat(v float64) val { return val{k: KFloat, f: []float64{v}} }
func scalarComplex(v complex128) val {
	return val{k: KComplex, c: []complex128{v}}
}

func (v val) lane(j int) (int64, float64, complex128) {
	switch v.k.Base {
	case Int:
		return v.i[j], float64(v.i[j]), complex(float64(v.i[j]), 0)
	case Float:
		return int64(v.f[j]), v.f[j], complex(v.f[j], 0)
	default:
		return int64(real(v.c[j])), real(v.c[j]), v.c[j]
	}
}

func (v val) asInt() int64 {
	i, _, _ := v.lane(0)
	return i
}

func makeVal(k Kind) val {
	v := val{k: k}
	switch k.Base {
	case Int:
		v.i = make([]int64, k.Lanes)
	case Float:
		v.f = make([]float64, k.Lanes)
	default:
		v.c = make([]complex128, k.Lanes)
	}
	return v
}

func (v *val) setLane(j int, i int64, f float64, c complex128) {
	switch v.k.Base {
	case Int:
		v.i[j] = i
	case Float:
		v.f[j] = f
	default:
		v.c[j] = c
	}
}

// Evaluator executes IR functions with reference semantics. It is used
// by tests to check that optimization passes, the vectorizer, and
// instruction selection preserve behaviour, and by the compilation
// driver for constant-input sanity runs.
type Evaluator struct {
	// MaxSteps bounds executed statements (0 = default 200M).
	MaxSteps int64

	steps int64
}

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type frame struct {
	scalars map[*Sym]val
	arrays  map[*Sym]*Array
}

// Run executes f with the given arguments. Each argument must be an
// int64, float64, complex128, or *Array matching the parameter symbol.
// Results are returned in declaration order with the same Go types.
func (ev *Evaluator) Run(f *Func, args ...interface{}) ([]interface{}, error) {
	if ev.MaxSteps == 0 {
		ev.MaxSteps = 200_000_000
	}
	ev.steps = 0
	if len(args) != len(f.Params) {
		return nil, rtErrf("%s expects %d arguments, got %d", f.Name, len(f.Params), len(args))
	}
	fr := &frame{scalars: map[*Sym]val{}, arrays: map[*Sym]*Array{}}
	for i, p := range f.Params {
		switch a := args[i].(type) {
		case int64:
			switch p.Elem {
			case Int:
				fr.scalars[p] = scalarInt(a)
			case Float:
				fr.scalars[p] = scalarFloat(float64(a))
			default:
				fr.scalars[p] = scalarComplex(complex(float64(a), 0))
			}
		case float64:
			switch p.Elem {
			case Float:
				fr.scalars[p] = scalarFloat(a)
			case Complex:
				fr.scalars[p] = scalarComplex(complex(a, 0))
			default:
				fr.scalars[p] = scalarInt(int64(a))
			}
		case complex128:
			fr.scalars[p] = scalarComplex(a)
		case *Array:
			if !p.IsArray {
				return nil, rtErrf("argument %d: %s is not an array parameter", i, p)
			}
			if a.Elem != p.Elem {
				return nil, rtErrf("argument %d: element kind %s, parameter wants %s", i, a.Elem, p.Elem)
			}
			// MATLAB value semantics: parameters never alias. Clone when
			// the caller passes the same array twice.
			for _, q := range fr.arrays {
				if q == a {
					a = a.Clone()
					break
				}
			}
			fr.arrays[p] = a
		default:
			return nil, rtErrf("argument %d: unsupported type %T", i, args[i])
		}
	}
	if _, err := ev.execStmts(f.Body, fr); err != nil {
		return nil, err
	}
	results := make([]interface{}, len(f.Results))
	for i, r := range f.Results {
		if r.IsArray {
			a, ok := fr.arrays[r]
			if !ok {
				return nil, rtErrf("result %s was never allocated", r)
			}
			results[i] = a
		} else {
			v, ok := fr.scalars[r]
			if !ok {
				return nil, rtErrf("result %s was never assigned", r)
			}
			switch r.Elem {
			case Int:
				results[i] = v.asInt()
			case Float:
				_, f, _ := v.lane(0)
				results[i] = f
			default:
				_, _, c := v.lane(0)
				results[i] = c
			}
		}
	}
	return results, nil
}

func (ev *Evaluator) execStmts(stmts []Stmt, fr *frame) (ctrl, error) {
	for _, s := range stmts {
		c, err := ev.execStmt(s, fr)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (ev *Evaluator) step() error {
	ev.steps++
	if ev.steps > ev.MaxSteps {
		return rtErrf("step limit exceeded (%d)", ev.MaxSteps)
	}
	return nil
}

func (ev *Evaluator) execStmt(s Stmt, fr *frame) (ctrl, error) {
	if err := ev.step(); err != nil {
		return ctrlNone, err
	}
	switch s := s.(type) {
	case *Assign:
		v, err := ev.eval(s.Src, fr)
		if err != nil {
			return ctrlNone, err
		}
		fr.scalars[s.Dst] = convertVal(v, s.Dst.Kind())
		return ctrlNone, nil
	case *Store:
		return ctrlNone, ev.execStore(s, fr)
	case *Alloc:
		rv, err := ev.eval(s.Rows, fr)
		if err != nil {
			return ctrlNone, err
		}
		cv, err := ev.eval(s.Cols, fr)
		if err != nil {
			return ctrlNone, err
		}
		r, c := int(rv.asInt()), int(cv.asInt())
		if r < 0 || c < 0 || r*c > 1<<28 {
			return ctrlNone, rtErrf("alloc %s: bad extent %dx%d", s.Arr, r, c)
		}
		if s.Arr.Elem == Complex {
			fr.arrays[s.Arr] = NewComplexArray(r, c)
		} else {
			fr.arrays[s.Arr] = NewFloatArray(r, c)
		}
		return ctrlNone, nil
	case *For:
		return ev.execFor(s, fr)
	case *If:
		cv, err := ev.eval(s.Cond, fr)
		if err != nil {
			return ctrlNone, err
		}
		if truthy(cv) {
			return ev.execStmts(s.Then, fr)
		}
		return ev.execStmts(s.Else, fr)
	case *While:
		for {
			if err := ev.step(); err != nil {
				return ctrlNone, err
			}
			cv, err := ev.eval(s.Cond, fr)
			if err != nil {
				return ctrlNone, err
			}
			if !truthy(cv) {
				return ctrlNone, nil
			}
			c, err := ev.execStmts(s.Body, fr)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return ctrlReturn, nil
			}
		}
	case *Break:
		return ctrlBreak, nil
	case *Continue:
		return ctrlContinue, nil
	case *Return:
		return ctrlReturn, nil
	}
	return ctrlNone, rtErrf("unsupported statement %T", s)
}

func truthy(v val) bool {
	i, f, c := v.lane(0)
	switch v.k.Base {
	case Int:
		return i != 0
	case Float:
		return f != 0
	default:
		return c != 0
	}
}

func (ev *Evaluator) execFor(s *For, fr *frame) (ctrl, error) {
	lo, err := ev.eval(s.Lo, fr)
	if err != nil {
		return ctrlNone, err
	}
	hi, err := ev.eval(s.Hi, fr)
	if err != nil {
		return ctrlNone, err
	}
	step := s.Step
	if step == 0 {
		return ctrlNone, rtErrf("for %s: zero step", s.Var)
	}
	for v := lo.asInt(); step > 0 && v <= hi.asInt() || step < 0 && v >= hi.asInt(); v += step {
		if err := ev.step(); err != nil {
			return ctrlNone, err
		}
		fr.scalars[s.Var] = scalarInt(v)
		c, err := ev.execStmts(s.Body, fr)
		if err != nil {
			return ctrlNone, err
		}
		if c == ctrlBreak {
			break
		}
		if c == ctrlReturn {
			return ctrlReturn, nil
		}
	}
	return ctrlNone, nil
}

func (ev *Evaluator) execStore(s *Store, fr *frame) error {
	arr := fr.arrays[s.Arr]
	if arr == nil {
		return rtErrf("store to unallocated array %s", s.Arr)
	}
	iv, err := ev.eval(s.Index, fr)
	if err != nil {
		return err
	}
	vv, err := ev.eval(s.Val, fr)
	if err != nil {
		return err
	}
	base := int(iv.asInt())
	lanes := vv.k.Lanes
	if base < 0 || base+lanes > arr.Len() {
		return rtErrf("store %s[%d..%d] out of bounds (len %d)", s.Arr, base, base+lanes-1, arr.Len())
	}
	for j := 0; j < lanes; j++ {
		_, f, c := vv.lane(j)
		if arr.Elem == Complex {
			arr.C[base+j] = c
		} else {
			arr.F[base+j] = f
		}
	}
	return nil
}

func convertVal(v val, k Kind) val {
	if v.k == k {
		return v
	}
	out := makeVal(k)
	for j := 0; j < k.Lanes && j < v.k.Lanes; j++ {
		i, f, c := v.lane(j)
		out.setLane(j, i, f, c)
	}
	return out
}

func (ev *Evaluator) eval(e Expr, fr *frame) (val, error) {
	switch e := e.(type) {
	case *ConstInt:
		return scalarInt(e.V), nil
	case *ConstFloat:
		return scalarFloat(e.V), nil
	case *ConstComplex:
		return scalarComplex(e.V), nil
	case *VarRef:
		v, ok := fr.scalars[e.Sym]
		if !ok {
			return val{}, rtErrf("read of unassigned variable %s", e.Sym)
		}
		return v, nil
	case *Load:
		arr := fr.arrays[e.Arr]
		if arr == nil {
			return val{}, rtErrf("load from unallocated array %s", e.Arr)
		}
		iv, err := ev.eval(e.Index, fr)
		if err != nil {
			return val{}, err
		}
		i := int(iv.asInt())
		if i < 0 || i >= arr.Len() {
			return val{}, rtErrf("load %s[%d] out of bounds (len %d)", e.Arr, i, arr.Len())
		}
		if arr.Elem == Complex {
			return scalarComplex(arr.C[i]), nil
		}
		return scalarFloat(arr.F[i]), nil
	case *Dim:
		arr := fr.arrays[e.Arr]
		if arr == nil {
			return val{}, rtErrf("dim of unallocated array %s", e.Arr)
		}
		switch e.Which {
		case DimRows:
			return scalarInt(int64(arr.Rows)), nil
		case DimCols:
			return scalarInt(int64(arr.Cols)), nil
		default:
			return scalarInt(int64(arr.Len())), nil
		}
	case *Bin:
		x, err := ev.eval(e.X, fr)
		if err != nil {
			return val{}, err
		}
		y, err := ev.eval(e.Y, fr)
		if err != nil {
			return val{}, err
		}
		return evalBin(e.Op, x, y, e.K)
	case *Un:
		x, err := ev.eval(e.X, fr)
		if err != nil {
			return val{}, err
		}
		return evalUn(e.Op, x, e.K)
	case *VecLoad:
		arr := fr.arrays[e.Arr]
		if arr == nil {
			return val{}, rtErrf("vload from unallocated array %s", e.Arr)
		}
		iv, err := ev.eval(e.Index, fr)
		if err != nil {
			return val{}, err
		}
		base := int(iv.asInt())
		stride := int(e.StrideOr1())
		last := base + (e.K.Lanes-1)*stride
		lo, hi := base, last
		if stride < 0 {
			lo, hi = last, base
		}
		if lo < 0 || hi >= arr.Len() {
			return val{}, rtErrf("vload %s[%d..%d] out of bounds (len %d)", e.Arr, lo, hi, arr.Len())
		}
		out := makeVal(e.K)
		for j := 0; j < e.K.Lanes; j++ {
			idx := base + j*stride
			if arr.Elem == Complex {
				out.setLane(j, 0, 0, arr.C[idx])
			} else {
				out.setLane(j, 0, arr.F[idx], 0)
			}
		}
		return out, nil
	case *Broadcast:
		x, err := ev.eval(e.X, fr)
		if err != nil {
			return val{}, err
		}
		out := makeVal(e.K)
		i, f, c := x.lane(0)
		for j := 0; j < e.K.Lanes; j++ {
			out.setLane(j, i, f, c)
		}
		return out, nil
	case *Ramp:
		b, err := ev.eval(e.Base, fr)
		if err != nil {
			return val{}, err
		}
		out := makeVal(e.K)
		base := b.asInt()
		for j := 0; j < e.K.Lanes; j++ {
			v := base + int64(j)*e.Step
			out.setLane(j, v, float64(v), complex(float64(v), 0))
		}
		return out, nil
	case *Reduce:
		x, err := ev.eval(e.X, fr)
		if err != nil {
			return val{}, err
		}
		return evalReduce(e.Op, x, e.K)
	case *Select:
		c, err := ev.eval(e.Cond, fr)
		if err != nil {
			return val{}, err
		}
		th, err := ev.eval(e.Then, fr)
		if err != nil {
			return val{}, err
		}
		el, err := ev.eval(e.Else, fr)
		if err != nil {
			return val{}, err
		}
		out := makeVal(e.K)
		for j := 0; j < e.K.Lanes; j++ {
			jc := j
			if c.k.Lanes == 1 {
				jc = 0
			}
			src := el
			if ci, cf, cc := c.lane(jc); ci != 0 || cf != 0 || cc != 0 {
				src = th
			}
			js := j
			if src.k.Lanes == 1 {
				js = 0
			}
			i, f, cx := src.lane(js)
			out.setLane(j, i, f, cx)
		}
		return out, nil
	case *Intrinsic:
		args := make([]val, len(e.Args))
		for i, a := range e.Args {
			v, err := ev.eval(a, fr)
			if err != nil {
				return val{}, err
			}
			args[i] = v
		}
		if e.Sem != "" {
			return evalPatternIntrinsic(e.Name, e.Sem, args, e.K)
		}
		return EvalIntrinsic(e.Name, args, e.K)
	}
	return val{}, rtErrf("unsupported expression %T", e)
}

func evalBin(op Op, x, y val, k Kind) (val, error) {
	lanes := k.Lanes
	out := makeVal(k)
	for j := 0; j < lanes; j++ {
		jx, jy := j, j
		if x.k.Lanes == 1 {
			jx = 0
		}
		if y.k.Lanes == 1 {
			jy = 0
		}
		xi, xf, xc := x.lane(jx)
		yi, yf, yc := y.lane(jy)
		// Operate at the wider of the two operand bases.
		base := x.k.Base
		if y.k.Base > base {
			base = y.k.Base
		}
		switch base {
		case Int:
			r, err := binInt(op, xi, yi)
			if err != nil {
				return val{}, err
			}
			out.setLane(j, r, float64(r), complex(float64(r), 0))
		case Float:
			r := binFloat(op, xf, yf)
			out.setLane(j, int64(r), r, complex(r, 0))
		default:
			r, err := binComplex(op, xc, yc)
			if err != nil {
				return val{}, err
			}
			out.setLane(j, int64(real(r)), real(r), r)
		}
	}
	return out, nil
}

func binInt(op Op, x, y int64) (int64, error) {
	switch op {
	case OpAdd:
		return x + y, nil
	case OpSub:
		return x - y, nil
	case OpMul:
		return x * y, nil
	case OpDiv:
		if y == 0 {
			return 0, rtErrf("integer division by zero")
		}
		return x / y, nil
	case OpRem:
		if y == 0 {
			return x, nil // rem(x,0) == x in MATLAB
		}
		return x % y, nil
	case OpPow:
		return int64(math.Pow(float64(x), float64(y))), nil
	case OpMin:
		if x < y {
			return x, nil
		}
		return y, nil
	case OpMax:
		if x > y {
			return x, nil
		}
		return y, nil
	case OpLt:
		return b2i(x < y), nil
	case OpLe:
		return b2i(x <= y), nil
	case OpGt:
		return b2i(x > y), nil
	case OpGe:
		return b2i(x >= y), nil
	case OpEq:
		return b2i(x == y), nil
	case OpNe:
		return b2i(x != y), nil
	case OpAnd:
		return b2i(x != 0 && y != 0), nil
	case OpOr:
		return b2i(x != 0 || y != 0), nil
	}
	return 0, rtErrf("op %s not defined on int", op)
}

func binFloat(op Op, x, y float64) float64 {
	switch op {
	case OpAdd:
		return x + y
	case OpSub:
		return x - y
	case OpMul:
		return x * y
	case OpDiv:
		return x / y
	case OpRem:
		return math.Mod(x, y)
	case OpPow:
		return math.Pow(x, y)
	case OpMin:
		return math.Min(x, y)
	case OpMax:
		return math.Max(x, y)
	case OpAtan2:
		return math.Atan2(x, y)
	case OpLt:
		return bf(x < y)
	case OpLe:
		return bf(x <= y)
	case OpGt:
		return bf(x > y)
	case OpGe:
		return bf(x >= y)
	case OpEq:
		return bf(x == y)
	case OpNe:
		return bf(x != y)
	case OpAnd:
		return bf(x != 0 && y != 0)
	case OpOr:
		return bf(x != 0 || y != 0)
	}
	return math.NaN()
}

func binComplex(op Op, x, y complex128) (complex128, error) {
	switch op {
	case OpAdd:
		return x + y, nil
	case OpSub:
		return x - y, nil
	case OpMul:
		return x * y, nil
	case OpDiv:
		return x / y, nil
	case OpPow:
		return cmplx.Pow(x, y), nil
	case OpEq:
		return complex(bf(x == y), 0), nil
	case OpNe:
		return complex(bf(x != y), 0), nil
	}
	return 0, rtErrf("op %s not defined on complex", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func bf(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func evalUn(op Op, x val, k Kind) (val, error) {
	out := makeVal(k)
	for j := 0; j < k.Lanes; j++ {
		jx := j
		if x.k.Lanes == 1 {
			jx = 0
		}
		xi, xf, xc := x.lane(jx)
		switch op {
		case OpNeg:
			switch x.k.Base {
			case Int:
				out.setLane(j, -xi, -float64(xi), complex(-float64(xi), 0))
			case Float:
				out.setLane(j, int64(-xf), -xf, complex(-xf, 0))
			default:
				out.setLane(j, 0, real(-xc), -xc)
			}
		case OpNot:
			var nz bool
			switch x.k.Base {
			case Int:
				nz = xi != 0
			case Float:
				nz = xf != 0
			default:
				nz = xc != 0
			}
			out.setLane(j, b2i(!nz), bf(!nz), complex(bf(!nz), 0))
		case OpSqrt:
			if x.k.Base == Complex || k.Base == Complex {
				r := cmplx.Sqrt(xc)
				out.setLane(j, 0, real(r), r)
			} else {
				r := math.Sqrt(xf)
				out.setLane(j, int64(r), r, complex(r, 0))
			}
		case OpSin, OpCos, OpTan, OpExp, OpLog, OpAsin, OpAcos, OpAtan,
			OpSinh, OpCosh, OpTanh:
			if x.k.Base == Complex {
				var r complex128
				switch op {
				case OpSin:
					r = cmplx.Sin(xc)
				case OpCos:
					r = cmplx.Cos(xc)
				case OpTan:
					r = cmplx.Tan(xc)
				case OpExp:
					r = cmplx.Exp(xc)
				case OpLog:
					r = cmplx.Log(xc)
				case OpAsin:
					r = cmplx.Asin(xc)
				case OpAcos:
					r = cmplx.Acos(xc)
				case OpAtan:
					r = cmplx.Atan(xc)
				case OpSinh:
					r = cmplx.Sinh(xc)
				case OpCosh:
					r = cmplx.Cosh(xc)
				case OpTanh:
					r = cmplx.Tanh(xc)
				}
				out.setLane(j, 0, real(r), r)
			} else {
				var r float64
				switch op {
				case OpSin:
					r = math.Sin(xf)
				case OpCos:
					r = math.Cos(xf)
				case OpTan:
					r = math.Tan(xf)
				case OpExp:
					r = math.Exp(xf)
				case OpLog:
					r = math.Log(xf)
				case OpAsin:
					r = math.Asin(xf)
				case OpAcos:
					r = math.Acos(xf)
				case OpAtan:
					r = math.Atan(xf)
				case OpSinh:
					r = math.Sinh(xf)
				case OpCosh:
					r = math.Cosh(xf)
				case OpTanh:
					r = math.Tanh(xf)
				}
				out.setLane(j, int64(r), r, complex(r, 0))
			}
		case OpFloor:
			r := math.Floor(xf)
			out.setLane(j, int64(r), r, complex(r, 0))
		case OpCeil:
			r := math.Ceil(xf)
			out.setLane(j, int64(r), r, complex(r, 0))
		case OpRound:
			r := math.Round(xf)
			out.setLane(j, int64(r), r, complex(r, 0))
		case OpTrunc:
			r := math.Trunc(xf)
			out.setLane(j, int64(r), r, complex(r, 0))
		case OpAbs:
			if x.k.Base == Complex {
				r := cmplx.Abs(xc)
				out.setLane(j, int64(r), r, complex(r, 0))
			} else {
				r := math.Abs(xf)
				out.setLane(j, int64(r), r, complex(r, 0))
			}
		case OpSign:
			var r float64
			switch {
			case xf > 0:
				r = 1
			case xf < 0:
				r = -1
			}
			out.setLane(j, int64(r), r, complex(r, 0))
		case OpRe:
			r := real(xc)
			out.setLane(j, int64(r), r, complex(r, 0))
		case OpIm:
			r := imag(xc)
			out.setLane(j, int64(r), r, complex(r, 0))
		case OpConj:
			r := cmplx.Conj(xc)
			out.setLane(j, 0, real(r), r)
		case OpAngle:
			r := cmplx.Phase(xc)
			out.setLane(j, int64(r), r, complex(r, 0))
		case OpToInt:
			out.setLane(j, int64(math.Round(xf)), math.Round(xf), complex(math.Round(xf), 0))
		case OpToFloat:
			out.setLane(j, xi, xf, complex(xf, 0))
		case OpToComplex:
			out.setLane(j, xi, xf, xc)
		default:
			return val{}, rtErrf("unsupported unary op %s", op)
		}
	}
	return out, nil
}

func evalReduce(op Op, x val, k Kind) (val, error) {
	if x.k.Lanes < 1 {
		return val{}, rtErrf("reduce of empty vector")
	}
	acc := makeVal(Kind{x.k.Base, 1})
	i, f, c := x.lane(0)
	acc.setLane(0, i, f, c)
	for j := 1; j < x.k.Lanes; j++ {
		lane := makeVal(Kind{x.k.Base, 1})
		li, lf, lc := x.lane(j)
		lane.setLane(0, li, lf, lc)
		r, err := evalBin(op, acc, lane, Kind{x.k.Base, 1})
		if err != nil {
			return val{}, err
		}
		acc = r
	}
	return convertVal(acc, k), nil
}

// EvalIntrinsic computes the reference semantics of a named custom
// instruction. These definitions are the single source of truth shared
// (by construction, via tests) with the VM executor and the generated C
// fallback implementations:
//
//	fma(acc, a, b)   = acc + a*b            (float)
//	fms(acc, a, b)   = acc - a*b            (float)
//	cmul(a, b)       = a*b                  (complex multiply)
//	cmac(acc, a, b)  = acc + a*b            (complex multiply-accumulate)
//	cconjmul(a, b)   = a*conj(b)
//	cadd(a, b)       = a + b
//	csub(a, b)       = a - b
//	addsub(a, b)     = (a0+b0, a1-b1, a2+b2, ...) paired add/sub
//	sad(acc, a, b)   = acc + |a-b|          (sum of absolute differences)
//
// Vector forms apply lane-wise with a lane count given by the kind.
func EvalIntrinsic(name string, args []val, k Kind) (val, error) {
	need := func(n int) error {
		if len(args) != n {
			return rtErrf("intrinsic %s expects %d args, got %d", name, n, len(args))
		}
		return nil
	}
	out := makeVal(k)
	lane := func(v val, j int) (int64, float64, complex128) {
		if v.k.Lanes == 1 {
			return v.lane(0)
		}
		return v.lane(j)
	}
	switch name {
	case "fma", "vfma":
		if err := need(3); err != nil {
			return val{}, err
		}
		for j := 0; j < k.Lanes; j++ {
			_, acc, _ := lane(args[0], j)
			_, a, _ := lane(args[1], j)
			_, b, _ := lane(args[2], j)
			r := acc + a*b
			out.setLane(j, int64(r), r, complex(r, 0))
		}
	case "fms", "vfms":
		if err := need(3); err != nil {
			return val{}, err
		}
		for j := 0; j < k.Lanes; j++ {
			_, acc, _ := lane(args[0], j)
			_, a, _ := lane(args[1], j)
			_, b, _ := lane(args[2], j)
			r := acc - a*b
			out.setLane(j, int64(r), r, complex(r, 0))
		}
	case "cmul", "vcmul":
		if err := need(2); err != nil {
			return val{}, err
		}
		for j := 0; j < k.Lanes; j++ {
			_, _, a := lane(args[0], j)
			_, _, b := lane(args[1], j)
			r := a * b
			out.setLane(j, 0, real(r), r)
		}
	case "cmac", "vcmac":
		if err := need(3); err != nil {
			return val{}, err
		}
		for j := 0; j < k.Lanes; j++ {
			_, _, acc := lane(args[0], j)
			_, _, a := lane(args[1], j)
			_, _, b := lane(args[2], j)
			r := acc + a*b
			out.setLane(j, 0, real(r), r)
		}
	case "cconjmul", "vcconjmul":
		if err := need(2); err != nil {
			return val{}, err
		}
		for j := 0; j < k.Lanes; j++ {
			_, _, a := lane(args[0], j)
			_, _, b := lane(args[1], j)
			r := a * cmplx.Conj(b)
			out.setLane(j, 0, real(r), r)
		}
	case "cadd", "vcadd":
		if err := need(2); err != nil {
			return val{}, err
		}
		for j := 0; j < k.Lanes; j++ {
			_, _, a := lane(args[0], j)
			_, _, b := lane(args[1], j)
			r := a + b
			out.setLane(j, 0, real(r), r)
		}
	case "csub", "vcsub":
		if err := need(2); err != nil {
			return val{}, err
		}
		for j := 0; j < k.Lanes; j++ {
			_, _, a := lane(args[0], j)
			_, _, b := lane(args[1], j)
			r := a - b
			out.setLane(j, 0, real(r), r)
		}
	case "sad", "vsad":
		if err := need(3); err != nil {
			return val{}, err
		}
		for j := 0; j < k.Lanes; j++ {
			_, acc, _ := lane(args[0], j)
			_, a, _ := lane(args[1], j)
			_, b, _ := lane(args[2], j)
			r := acc + math.Abs(a-b)
			out.setLane(j, int64(r), r, complex(r, 0))
		}
	default:
		return val{}, rtErrf("unknown intrinsic %q", name)
	}
	return out, nil
}
