// Package ir defines the compiler's mid-level intermediate
// representation: a typed, tree-structured loop IR.
//
// All MATLAB matrix operations are lowered to explicit loop nests over
// scalar expressions before reaching this level; arrays appear only
// through Load/Store with linear (column-major, 0-based) indices. The
// vectorizer later widens innermost loops by introducing vector-typed
// expressions (Lanes > 1), and instruction selection introduces
// Intrinsic expressions naming the target processor's custom
// instructions. Both backends (the ANSI C emitter and the ASIP VM
// lowering) consume this one IR.
package ir

import "fmt"

// BaseKind is the element kind of a value.
type BaseKind int

// Element kinds. Bool values are materialized as Int 0/1.
const (
	Int BaseKind = iota // integral (loop counters, indices, sizes)
	Float
	Complex
)

// String returns the kind name.
func (b BaseKind) String() string {
	switch b {
	case Int:
		return "int"
	case Float:
		return "float"
	case Complex:
		return "complex"
	}
	return fmt.Sprintf("BaseKind(%d)", int(b))
}

// Kind is the type of an IR expression: a base kind plus a lane count
// (1 for scalars, the SIMD width for vector values).
type Kind struct {
	Base  BaseKind
	Lanes int
}

// Scalar kinds.
var (
	KInt     = Kind{Int, 1}
	KFloat   = Kind{Float, 1}
	KComplex = Kind{Complex, 1}
)

// Vec returns the vector kind with the given lanes.
func (k Kind) Vec(lanes int) Kind { return Kind{k.Base, lanes} }

// IsVector reports whether the kind has more than one lane.
func (k Kind) IsVector() bool { return k.Lanes > 1 }

// String renders e.g. "float", "complex x4".
func (k Kind) String() string {
	if k.Lanes <= 1 {
		return k.Base.String()
	}
	return fmt.Sprintf("%sx%d", k.Base, k.Lanes)
}

// Sym is a named storage location: a scalar variable or an array.
// Arrays are dense, column-major, dynamically dimensioned; static extents
// are recorded when known (DimUnknown otherwise) for optimization.
type Sym struct {
	ID      int
	Name    string
	IsArray bool
	Elem    BaseKind // element kind (scalar kind for non-arrays)
	// Lanes > 1 marks a vector register variable (introduced by the
	// vectorizer for accumulators); 0 and 1 both mean scalar.
	Lanes int
	// Static dims; -1 when unknown at compile time.
	Rows, Cols int
}

// String renders the symbol as name#id.
func (s *Sym) String() string { return fmt.Sprintf("%s#%d", s.Name, s.ID) }

// Kind returns the value kind of a non-array symbol.
func (s *Sym) Kind() Kind {
	if s.Lanes > 1 {
		return Kind{s.Elem, s.Lanes}
	}
	return Kind{s.Elem, 1}
}

// Func is one compiled function.
type Func struct {
	Name    string
	Params  []*Sym
	Results []*Sym
	Locals  []*Sym // includes Results
	Body    []Stmt

	nextID int
}

// NewFunc creates an empty function.
func NewFunc(name string) *Func { return &Func{Name: name} }

// NewSym allocates a fresh symbol owned by the function.
func (f *Func) NewSym(name string, elem BaseKind, isArray bool) *Sym {
	f.nextID++
	return &Sym{ID: f.nextID, Name: name, Elem: elem, IsArray: isArray, Rows: -1, Cols: -1}
}

// Op enumerates scalar/vector operations used by Bin and Un.
type Op int

// Binary operations.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem // remainder with sign of divisor (MATLAB mod) computed in lowering
	OpPow
	OpMin
	OpMax
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpAnd
	OpOr
	OpAtan2 // atan2(y, x), float only

	// Unary operations.
	OpNeg
	OpNot
	OpSqrt
	OpSin
	OpCos
	OpTan
	OpAsin
	OpAcos
	OpAtan
	OpSinh
	OpCosh
	OpTanh
	OpExp
	OpLog
	OpFloor
	OpCeil
	OpRound
	OpTrunc
	OpAbs // |x|; complex → float magnitude
	OpSign
	OpRe    // real part (complex → float)
	OpIm    // imaginary part (complex → float)
	OpConj  // complex conjugate
	OpAngle // atan2(im, re)

	// Conversions.
	OpToInt     // float → int (truncation toward zero after rounding guard)
	OpToFloat   // int → float
	OpToComplex // int/float → complex
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpPow: "pow", OpMin: "min", OpMax: "max",
	OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge", OpEq: "eq", OpNe: "ne",
	OpAnd: "and", OpOr: "or", OpAtan2: "atan2",
	OpNeg: "neg", OpNot: "not", OpSqrt: "sqrt", OpSin: "sin", OpCos: "cos",
	OpTan: "tan", OpAsin: "asin", OpAcos: "acos", OpAtan: "atan",
	OpSinh: "sinh", OpCosh: "cosh", OpTanh: "tanh",
	OpExp: "exp", OpLog: "log", OpFloor: "floor",
	OpCeil: "ceil", OpRound: "round", OpTrunc: "trunc", OpAbs: "abs",
	OpSign: "sign", OpRe: "re", OpIm: "im", OpConj: "conj", OpAngle: "angle",
	OpToInt: "toint", OpToFloat: "tofloat", OpToComplex: "tocomplex",
}

// String returns the op mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsCompare reports whether the op yields a 0/1 integer truth value.
func (o Op) IsCompare() bool {
	switch o {
	case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
		return true
	}
	return false
}

// Commutative reports whether a op b == b op a.
func (o Op) Commutative() bool {
	switch o {
	case OpAdd, OpMul, OpMin, OpMax, OpEq, OpNe, OpAnd, OpOr:
		return true
	}
	return false
}

// Expr is a side-effect-free IR expression.
type Expr interface {
	Kind() Kind
}

// ConstInt is an integer literal.
type ConstInt struct{ V int64 }

// ConstFloat is a float literal.
type ConstFloat struct{ V float64 }

// ConstComplex is a complex literal.
type ConstComplex struct{ V complex128 }

// VarRef reads a scalar variable.
type VarRef struct{ Sym *Sym }

// Load reads arr[index] (linear, 0-based, column-major).
type Load struct {
	Arr   *Sym
	Index Expr // KInt
}

// Dim reads a runtime array extent.
type Dim struct {
	Arr   *Sym
	Which DimKind
}

// DimKind selects which extent Dim reads.
type DimKind int

// Extents.
const (
	DimRows DimKind = iota
	DimCols
	DimLen // Rows*Cols
)

// Bin is a binary operation. K is the result kind (comparisons yield
// KInt even over float operands).
type Bin struct {
	Op   Op
	X, Y Expr
	K    Kind
}

// Un is a unary operation (including conversions). K is the result kind.
type Un struct {
	Op Op
	X  Expr
	K  Kind
}

// VecLoad reads Lanes elements starting at arr[index], spaced Stride
// apart (Stride 0 is treated as 1, the contiguous case; other strides
// require the target's strided-load instruction).
type VecLoad struct {
	Arr    *Sym
	Index  Expr // KInt, first lane
	Stride int64
	K      Kind // Lanes > 1
}

// StrideOr1 returns the effective stride.
func (e *VecLoad) StrideOr1() int64 {
	if e.Stride == 0 {
		return 1
	}
	return e.Stride
}

// Broadcast splats a scalar into all lanes.
type Broadcast struct {
	X Expr
	K Kind
}

// Ramp builds the vector {base, base+step, base+2*step, ...}; it is the
// vectorized form of an affine function of the loop counter.
type Ramp struct {
	Base Expr // KInt scalar
	Step int64
	K    Kind // integer vector
}

// Reduce folds a vector to a scalar with the given associative op
// (OpAdd, OpMin, OpMax).
type Reduce struct {
	Op Op
	X  Expr // vector
	K  Kind // scalar result
}

// Select is a lane-wise conditional: lane j is Then[j] where Cond[j] is
// nonzero, else Else[j]. It is introduced by the vectorizer's
// if-conversion; both sides are evaluated (predicated execution), so
// if-conversion must only speculate fault-free work.
type Select struct {
	Cond Expr // integer truth vector (or scalar)
	Then Expr
	Else Expr
	K    Kind
}

// Intrinsic is a call to a target-specific custom instruction chosen by
// instruction selection (e.g. cmul, cmac, fma, vfma). Semantically it is
// a pure function of its arguments; Name matches a pdesc instruction.
// For mined instructions (which the built-in catalog in EvalIntrinsic
// has never heard of) Sem carries the pattern text defining their
// behaviour; it is empty for the built-in family.
type Intrinsic struct {
	Name string
	Args []Expr
	K    Kind
	Sem  string
}

// Kind implementations.
func (e *ConstInt) Kind() Kind     { return KInt }
func (e *ConstFloat) Kind() Kind   { return KFloat }
func (e *ConstComplex) Kind() Kind { return KComplex }
func (e *VarRef) Kind() Kind       { return e.Sym.Kind() }
func (e *Load) Kind() Kind         { return Kind{e.Arr.Elem, 1} }
func (e *Dim) Kind() Kind          { return KInt }
func (e *Bin) Kind() Kind          { return e.K }
func (e *Un) Kind() Kind           { return e.K }
func (e *VecLoad) Kind() Kind      { return e.K }
func (e *Broadcast) Kind() Kind    { return e.K }
func (e *Ramp) Kind() Kind         { return e.K }
func (e *Select) Kind() Kind       { return e.K }
func (e *Reduce) Kind() Kind       { return e.K }
func (e *Intrinsic) Kind() Kind    { return e.K }

// Stmt is an IR statement.
type Stmt interface {
	stmt()
}

// Assign writes a scalar variable.
type Assign struct {
	Dst *Sym
	Src Expr
}

// Store writes arr[index] = val. For vector-kinded val, Lanes contiguous
// elements starting at index are written.
type Store struct {
	Arr   *Sym
	Index Expr
	Val   Expr
}

// Alloc (re)allocates an array with the given extents, zero-filled.
type Alloc struct {
	Arr        *Sym
	Rows, Cols Expr // KInt
}

// For is a counted loop: for v = lo; (step>0 ? v<=hi : v>=hi); v += step.
// Step is a compile-time constant; the vectorizer widens Step to the
// SIMD width.
type For struct {
	Var  *Sym
	Lo   Expr
	Hi   Expr
	Step int64
	Body []Stmt
}

// If is a conditional. Cond is KInt (0 = false).
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While loops while Cond is nonzero.
type While struct {
	Cond Expr
	Body []Stmt
}

// Break exits the innermost loop.
type Break struct{}

// Continue jumps to the next iteration of the innermost loop.
type Continue struct{}

// Return exits the function.
type Return struct{}

func (*Assign) stmt()   {}
func (*Store) stmt()    {}
func (*Alloc) stmt()    {}
func (*For) stmt()      {}
func (*If) stmt()       {}
func (*While) stmt()    {}
func (*Break) stmt()    {}
func (*Continue) stmt() {}
func (*Return) stmt()   {}

// Convenience constructors used throughout lowering and the passes.

// CI returns an integer constant.
func CI(v int64) *ConstInt { return &ConstInt{V: v} }

// CF returns a float constant.
func CF(v float64) *ConstFloat { return &ConstFloat{V: v} }

// CC returns a complex constant.
func CC(v complex128) *ConstComplex { return &ConstComplex{V: v} }

// V returns a variable reference.
func V(s *Sym) *VarRef { return &VarRef{Sym: s} }

// B returns a binary expression whose kind is derived from the operands
// (comparisons yield KInt).
func B(op Op, x, y Expr) *Bin {
	k := x.Kind()
	if y.Kind().Base > k.Base {
		k = Kind{y.Kind().Base, k.Lanes}
	}
	if op.IsCompare() || op == OpAnd || op == OpOr {
		k = Kind{Int, k.Lanes}
	}
	return &Bin{Op: op, X: x, Y: y, K: k}
}

// U returns a unary expression with an explicit result kind.
func U(op Op, x Expr, k Kind) *Un { return &Un{Op: op, X: x, K: k} }

// Add/Mul/Sub on integer index expressions, with trivial folding to keep
// generated index arithmetic readable.
func IAdd(x, y Expr) Expr {
	if c, ok := x.(*ConstInt); ok && c.V == 0 {
		return y
	}
	if c, ok := y.(*ConstInt); ok && c.V == 0 {
		return x
	}
	if a, ok := x.(*ConstInt); ok {
		if b, ok := y.(*ConstInt); ok {
			return CI(a.V + b.V)
		}
	}
	return B(OpAdd, x, y)
}

// ISub subtracts integer index expressions with trivial folding.
func ISub(x, y Expr) Expr {
	if c, ok := y.(*ConstInt); ok && c.V == 0 {
		return x
	}
	if a, ok := x.(*ConstInt); ok {
		if b, ok := y.(*ConstInt); ok {
			return CI(a.V - b.V)
		}
	}
	return B(OpSub, x, y)
}

// IMul multiplies integer index expressions with trivial folding.
func IMul(x, y Expr) Expr {
	if c, ok := x.(*ConstInt); ok {
		if c.V == 1 {
			return y
		}
		if c.V == 0 {
			return CI(0)
		}
	}
	if c, ok := y.(*ConstInt); ok {
		if c.V == 1 {
			return x
		}
		if c.V == 0 {
			return CI(0)
		}
	}
	if a, ok := x.(*ConstInt); ok {
		if b, ok := y.(*ConstInt); ok {
			return CI(a.V * b.V)
		}
	}
	return B(OpMul, x, y)
}
