package ir

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, f *Func, args ...interface{}) []interface{} {
	t.Helper()
	ev := &Evaluator{}
	res, err := ev.Run(f, args...)
	if err != nil {
		t.Fatalf("run %s: %v", f.Name, err)
	}
	return res
}

// buildSumLoop builds: func sum(x: float[]) -> s { s=0; for i=0..len-1 { s+=x[i] } }
func buildSumLoop() *Func {
	f := NewFunc("sumloop")
	x := f.NewSym("x", Float, true)
	s := f.NewSym("s", Float, false)
	i := f.NewSym("i", Int, false)
	f.Params = []*Sym{x}
	f.Results = []*Sym{s}
	f.Locals = []*Sym{s, i}
	f.Body = []Stmt{
		&Assign{Dst: s, Src: CF(0)},
		&For{Var: i, Lo: CI(0), Hi: ISub(&Dim{Arr: x, Which: DimLen}, CI(1)), Step: 1,
			Body: []Stmt{
				&Assign{Dst: s, Src: B(OpAdd, V(s), &Load{Arr: x, Index: V(i)})},
			}},
	}
	return f
}

func TestEvalSumLoop(t *testing.T) {
	f := buildSumLoop()
	x := NewFloatArray(1, 5)
	copy(x.F, []float64{1, 2, 3, 4, 5})
	res := run(t, f, x)
	if got := res[0].(float64); got != 15 {
		t.Errorf("sum = %v, want 15", got)
	}
}

func TestEvalEmptyLoop(t *testing.T) {
	f := buildSumLoop()
	res := run(t, f, NewFloatArray(1, 0))
	if got := res[0].(float64); got != 0 {
		t.Errorf("sum of empty = %v", got)
	}
}

func TestEvalStoreAndAlloc(t *testing.T) {
	f := NewFunc("fill")
	n := f.NewSym("n", Int, false)
	y := f.NewSym("y", Float, true)
	i := f.NewSym("i", Int, false)
	f.Params = []*Sym{n}
	f.Results = []*Sym{y}
	f.Body = []Stmt{
		&Alloc{Arr: y, Rows: CI(1), Cols: V(n)},
		&For{Var: i, Lo: CI(0), Hi: ISub(V(n), CI(1)), Step: 1, Body: []Stmt{
			&Store{Arr: y, Index: V(i), Val: B(OpMul, U(OpToFloat, V(i), KFloat), CF(2))},
		}},
	}
	res := run(t, f, int64(4))
	arr := res[0].(*Array)
	want := []float64{0, 2, 4, 6}
	for i, w := range want {
		if arr.F[i] != w {
			t.Errorf("y[%d] = %v, want %v", i, arr.F[i], w)
		}
	}
	if arr.Rows != 1 || arr.Cols != 4 {
		t.Errorf("dims %dx%d", arr.Rows, arr.Cols)
	}
}

func TestEvalIfElse(t *testing.T) {
	f := NewFunc("absf")
	x := f.NewSym("x", Float, false)
	y := f.NewSym("y", Float, false)
	f.Params = []*Sym{x}
	f.Results = []*Sym{y}
	f.Body = []Stmt{
		&If{Cond: B(OpLt, V(x), CF(0)),
			Then: []Stmt{&Assign{Dst: y, Src: U(OpNeg, V(x), KFloat)}},
			Else: []Stmt{&Assign{Dst: y, Src: V(x)}}},
	}
	if got := run(t, f, -3.5)[0].(float64); got != 3.5 {
		t.Errorf("abs(-3.5) = %v", got)
	}
	if got := run(t, f, 2.0)[0].(float64); got != 2 {
		t.Errorf("abs(2) = %v", got)
	}
}

func TestEvalWhileBreakContinue(t *testing.T) {
	// Count odd numbers below n, stopping at 7.
	f := NewFunc("wh")
	n := f.NewSym("n", Int, false)
	i := f.NewSym("i", Int, false)
	c := f.NewSym("c", Int, false)
	f.Params = []*Sym{n}
	f.Results = []*Sym{c}
	f.Body = []Stmt{
		&Assign{Dst: i, Src: CI(0)},
		&Assign{Dst: c, Src: CI(0)},
		&While{Cond: B(OpLt, V(i), V(n)), Body: []Stmt{
			&Assign{Dst: i, Src: B(OpAdd, V(i), CI(1))},
			&If{Cond: B(OpEq, V(i), CI(7)), Then: []Stmt{&Break{}}},
			&If{Cond: B(OpEq, B(OpRem, V(i), CI(2)), CI(0)), Then: []Stmt{&Continue{}}},
			&Assign{Dst: c, Src: B(OpAdd, V(c), CI(1))},
		}},
	}
	// i=1,3,5 counted; loop breaks at i==7.
	if got := run(t, f, int64(100))[0].(int64); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
}

func TestEvalForStepAndNegative(t *testing.T) {
	f := NewFunc("steps")
	s := f.NewSym("s", Int, false)
	i := f.NewSym("i", Int, false)
	f.Results = []*Sym{s}
	f.Body = []Stmt{
		&Assign{Dst: s, Src: CI(0)},
		&For{Var: i, Lo: CI(10), Hi: CI(2), Step: -2, Body: []Stmt{
			&Assign{Dst: s, Src: B(OpAdd, V(s), V(i))},
		}},
	}
	// 10+8+6+4+2 = 30
	if got := run(t, f)[0].(int64); got != 30 {
		t.Errorf("got %d, want 30", got)
	}
}

func TestEvalComplexOps(t *testing.T) {
	f := NewFunc("cx")
	a := f.NewSym("a", Complex, false)
	b := f.NewSym("b", Complex, false)
	y := f.NewSym("y", Complex, false)
	f.Params = []*Sym{a, b}
	f.Results = []*Sym{y}
	f.Body = []Stmt{
		&Assign{Dst: y, Src: B(OpMul, V(a), U(OpConj, V(b), KComplex))},
	}
	got := run(t, f, 1+2i, 3-4i)[0].(complex128)
	want := (1 + 2i) * cmplx.Conj(3-4i)
	if got != want {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestEvalOutOfBounds(t *testing.T) {
	f := NewFunc("oob")
	x := f.NewSym("x", Float, true)
	y := f.NewSym("y", Float, false)
	f.Params = []*Sym{x}
	f.Results = []*Sym{y}
	f.Body = []Stmt{&Assign{Dst: y, Src: &Load{Arr: x, Index: CI(10)}}}
	ev := &Evaluator{}
	_, err := ev.Run(f, NewFloatArray(1, 5))
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("got %v, want out-of-bounds error", err)
	}
}

func TestEvalStepLimit(t *testing.T) {
	f := NewFunc("inf")
	y := f.NewSym("y", Int, false)
	f.Results = []*Sym{y}
	f.Body = []Stmt{
		&Assign{Dst: y, Src: CI(0)},
		&While{Cond: CI(1), Body: []Stmt{&Assign{Dst: y, Src: V(y)}}},
	}
	ev := &Evaluator{MaxSteps: 1000}
	_, err := ev.Run(f)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("got %v, want step-limit error", err)
	}
}

func TestEvalVectorOps(t *testing.T) {
	// y = reduce_add(vload4(x, 0) * splat4(2.0))
	f := NewFunc("vec")
	x := f.NewSym("x", Float, true)
	y := f.NewSym("y", Float, false)
	f.Params = []*Sym{x}
	f.Results = []*Sym{y}
	v4 := KFloat.Vec(4)
	f.Body = []Stmt{
		&Assign{Dst: y, Src: &Reduce{Op: OpAdd, K: KFloat,
			X: &Bin{Op: OpMul, K: v4,
				X: &VecLoad{Arr: x, Index: CI(0), K: v4},
				Y: &Broadcast{X: CF(2), K: v4}}}},
	}
	x4 := NewFloatArray(1, 4)
	copy(x4.F, []float64{1, 2, 3, 4})
	if got := run(t, f, x4)[0].(float64); got != 20 {
		t.Errorf("got %v, want 20", got)
	}
}

func TestEvalVectorStore(t *testing.T) {
	f := NewFunc("vst")
	y := f.NewSym("y", Float, true)
	f.Results = []*Sym{y}
	v4 := KFloat.Vec(4)
	f.Body = []Stmt{
		&Alloc{Arr: y, Rows: CI(1), Cols: CI(4)},
		&Store{Arr: y, Index: CI(0), Val: &Broadcast{X: CF(7), K: v4}},
	}
	arr := run(t, f)[0].(*Array)
	for i := 0; i < 4; i++ {
		if arr.F[i] != 7 {
			t.Errorf("y[%d] = %v", i, arr.F[i])
		}
	}
}

func TestEvalReduceMinMax(t *testing.T) {
	f := NewFunc("rmm")
	x := f.NewSym("x", Float, true)
	lo := f.NewSym("lo", Float, false)
	hi := f.NewSym("hi", Float, false)
	f.Params = []*Sym{x}
	f.Results = []*Sym{lo, hi}
	v4 := KFloat.Vec(4)
	f.Body = []Stmt{
		&Assign{Dst: lo, Src: &Reduce{Op: OpMin, K: KFloat, X: &VecLoad{Arr: x, Index: CI(0), K: v4}}},
		&Assign{Dst: hi, Src: &Reduce{Op: OpMax, K: KFloat, X: &VecLoad{Arr: x, Index: CI(0), K: v4}}},
	}
	x4 := NewFloatArray(1, 4)
	copy(x4.F, []float64{3, -1, 4, 1})
	res := run(t, f, x4)
	if res[0].(float64) != -1 || res[1].(float64) != 4 {
		t.Errorf("min/max = %v/%v", res[0], res[1])
	}
}

// clampf maps an arbitrary float into a moderate finite range so that
// intrinsic properties are not confounded by overflow-at-infinity
// differences between evaluation orders.
func clampf(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e6)
}

// Property: the cmul intrinsic equals complex multiplication.
func TestIntrinsicCmulMatchesComplexMul(t *testing.T) {
	f := func(ar, ai, br, bi float64) bool {
		ar, ai, br, bi = clampf(ar), clampf(ai), clampf(br), clampf(bi)
		a, b := complex(ar, ai), complex(br, bi)
		res, err := EvalIntrinsic("cmul", []val{scalarComplex(a), scalarComplex(b)}, KComplex)
		if err != nil {
			return false
		}
		_, _, got := res.lane(0)
		return got == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cmac(acc,a,b) == acc + a*b.
func TestIntrinsicCmac(t *testing.T) {
	f := func(xr, xi, ar, ai, br, bi float64) bool {
		xr, xi, ar, ai, br, bi = clampf(xr), clampf(xi), clampf(ar), clampf(ai), clampf(br), clampf(bi)
		acc, a, b := complex(xr, xi), complex(ar, ai), complex(br, bi)
		res, err := EvalIntrinsic("cmac", []val{scalarComplex(acc), scalarComplex(a), scalarComplex(b)}, KComplex)
		if err != nil {
			return false
		}
		_, _, got := res.lane(0)
		return got == acc+a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fma(acc,a,b) == acc + a*b on floats.
func TestIntrinsicFma(t *testing.T) {
	f := func(acc, a, b float64) bool {
		res, err := EvalIntrinsic("fma", []val{scalarFloat(acc), scalarFloat(a), scalarFloat(b)}, KFloat)
		if err != nil {
			return false
		}
		_, got, _ := res.lane(0)
		want := acc + a*b
		return got == want || math.IsNaN(got) && math.IsNaN(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntrinsicVectorLanes(t *testing.T) {
	v4 := KComplex.Vec(4)
	a := makeVal(v4)
	b := makeVal(v4)
	for j := 0; j < 4; j++ {
		a.c[j] = complex(float64(j), 1)
		b.c[j] = complex(2, float64(j))
	}
	res, err := EvalIntrinsic("vcmul", []val{a, b}, v4)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		want := a.c[j] * b.c[j]
		if res.c[j] != want {
			t.Errorf("lane %d: got %v, want %v", j, res.c[j], want)
		}
	}
}

func TestIntrinsicUnknown(t *testing.T) {
	if _, err := EvalIntrinsic("bogus", nil, KFloat); err == nil {
		t.Error("expected error for unknown intrinsic")
	}
}

func TestIntrinsicSad(t *testing.T) {
	res, err := EvalIntrinsic("sad",
		[]val{scalarFloat(10), scalarFloat(3), scalarFloat(7)}, KFloat)
	if err != nil {
		t.Fatal(err)
	}
	_, got, _ := res.lane(0)
	if got != 14 {
		t.Errorf("sad(10,3,7) = %v, want 14", got)
	}
}

func TestPrintGolden(t *testing.T) {
	f := buildSumLoop()
	got := Print(f)
	for _, want := range []string{"func sumloop", "for i#", "add(s#", "len(x#", "}"} {
		if !strings.Contains(got, want) {
			t.Errorf("printout missing %q:\n%s", want, got)
		}
	}
}

func TestKindString(t *testing.T) {
	if KFloat.String() != "float" {
		t.Error(KFloat.String())
	}
	if got := KComplex.Vec(4).String(); got != "complexx4" {
		t.Error(got)
	}
	if !KFloat.Vec(2).IsVector() || KFloat.IsVector() {
		t.Error("IsVector misclassified")
	}
}

func TestIndexHelpers(t *testing.T) {
	if v := IAdd(CI(2), CI(3)).(*ConstInt).V; v != 5 {
		t.Errorf("IAdd = %d", v)
	}
	if v := IMul(CI(2), CI(3)).(*ConstInt).V; v != 6 {
		t.Errorf("IMul = %d", v)
	}
	if v := ISub(CI(2), CI(3)).(*ConstInt).V; v != -1 {
		t.Errorf("ISub = %d", v)
	}
	s := &Sym{ID: 1, Name: "i", Elem: Int}
	if IAdd(CI(0), V(s)) != Expr(V(s)) {
		// identity: 0 + x returns x structurally
		if _, ok := IAdd(CI(0), V(s)).(*VarRef); !ok {
			t.Error("IAdd(0, x) should return x")
		}
	}
	if _, ok := IMul(CI(1), V(s)).(*VarRef); !ok {
		t.Error("IMul(1, x) should return x")
	}
	if c, ok := IMul(CI(0), V(s)).(*ConstInt); !ok || c.V != 0 {
		t.Error("IMul(0, x) should fold to 0")
	}
}

func TestBinKindInference(t *testing.T) {
	s := &Sym{ID: 1, Name: "x", Elem: Float}
	b := B(OpAdd, V(s), CI(1))
	if b.K.Base != Float {
		t.Errorf("float+int kind = %v", b.K)
	}
	cmp := B(OpLt, V(s), CF(2))
	if cmp.K.Base != Int {
		t.Errorf("compare kind = %v", cmp.K)
	}
}

func TestArrayHelpers(t *testing.T) {
	a := NewComplexArray(2, 3)
	a.C[2] = 5 + 6i
	if a.Len() != 6 || a.At(2) != 5+6i {
		t.Error("complex array accessors")
	}
	b := a.Clone()
	b.C[2] = 0
	if a.C[2] != 5+6i {
		t.Error("clone aliases storage")
	}
	fa := NewFloatArray(1, 2)
	fa.F[1] = 3
	if fa.At(1) != 3+0i {
		t.Error("float At")
	}
}
