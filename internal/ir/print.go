package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a function in a stable, human-readable text form used by
// golden tests and -emit=ir.
func Print(f *Func) string {
	var b strings.Builder
	b.WriteString("func " + f.Name + "(")
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(symDecl(p))
	}
	b.WriteString(")")
	if len(f.Results) > 0 {
		b.WriteString(" -> (")
		for i, r := range f.Results {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(symDecl(r))
		}
		b.WriteString(")")
	}
	b.WriteString(" {\n")
	printStmts(&b, f.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func symDecl(s *Sym) string {
	if s.IsArray {
		dim := func(n int) string {
			if n < 0 {
				return "?"
			}
			return strconv.Itoa(n)
		}
		return fmt.Sprintf("%s: %s[%sx%s]", s, s.Elem, dim(s.Rows), dim(s.Cols))
	}
	return fmt.Sprintf("%s: %s", s, s.Elem)
}

func printStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		printStmt(b, s, ind, depth)
	}
}

func printStmt(b *strings.Builder, s Stmt, ind string, depth int) {
	switch s := s.(type) {
	case *Assign:
		fmt.Fprintf(b, "%s%s = %s\n", ind, s.Dst, ExprStr(s.Src))
	case *Store:
		fmt.Fprintf(b, "%s%s[%s] = %s\n", ind, s.Arr, ExprStr(s.Index), ExprStr(s.Val))
	case *Alloc:
		fmt.Fprintf(b, "%salloc %s[%s, %s]\n", ind, s.Arr, ExprStr(s.Rows), ExprStr(s.Cols))
	case *For:
		fmt.Fprintf(b, "%sfor %s = %s .. %s step %d {\n", ind, s.Var, ExprStr(s.Lo), ExprStr(s.Hi), s.Step)
		printStmts(b, s.Body, depth+1)
		b.WriteString(ind + "}\n")
	case *If:
		fmt.Fprintf(b, "%sif %s {\n", ind, ExprStr(s.Cond))
		printStmts(b, s.Then, depth+1)
		if len(s.Else) > 0 {
			b.WriteString(ind + "} else {\n")
			printStmts(b, s.Else, depth+1)
		}
		b.WriteString(ind + "}\n")
	case *While:
		fmt.Fprintf(b, "%swhile %s {\n", ind, ExprStr(s.Cond))
		printStmts(b, s.Body, depth+1)
		b.WriteString(ind + "}\n")
	case *Break:
		b.WriteString(ind + "break\n")
	case *Continue:
		b.WriteString(ind + "continue\n")
	case *Return:
		b.WriteString(ind + "return\n")
	default:
		fmt.Fprintf(b, "%s<?stmt %T>\n", ind, s)
	}
}

// ExprStr renders an expression.
func ExprStr(e Expr) string {
	switch e := e.(type) {
	case *ConstInt:
		return strconv.FormatInt(e.V, 10)
	case *ConstFloat:
		return strconv.FormatFloat(e.V, 'g', -1, 64) + "f"
	case *ConstComplex:
		return fmt.Sprintf("(%g%+gi)", real(e.V), imag(e.V))
	case *VarRef:
		return e.Sym.String()
	case *Load:
		return fmt.Sprintf("%s[%s]", e.Arr, ExprStr(e.Index))
	case *Dim:
		which := [...]string{"rows", "cols", "len"}[e.Which]
		return fmt.Sprintf("%s(%s)", which, e.Arr)
	case *Bin:
		return fmt.Sprintf("%s(%s, %s)", e.Op, ExprStr(e.X), ExprStr(e.Y))
	case *Un:
		return fmt.Sprintf("%s(%s)", e.Op, ExprStr(e.X))
	case *VecLoad:
		if s := e.StrideOr1(); s != 1 {
			return fmt.Sprintf("vload%d.s%d(%s, %s)", e.K.Lanes, s, e.Arr, ExprStr(e.Index))
		}
		return fmt.Sprintf("vload%d(%s, %s)", e.K.Lanes, e.Arr, ExprStr(e.Index))
	case *Broadcast:
		return fmt.Sprintf("splat%d(%s)", e.K.Lanes, ExprStr(e.X))
	case *Ramp:
		return fmt.Sprintf("ramp%d(%s, %d)", e.K.Lanes, ExprStr(e.Base), e.Step)
	case *Select:
		return fmt.Sprintf("sel(%s, %s, %s)", ExprStr(e.Cond), ExprStr(e.Then), ExprStr(e.Else))
	case *Reduce:
		return fmt.Sprintf("reduce_%s(%s)", e.Op, ExprStr(e.X))
	case *Intrinsic:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprStr(a)
		}
		return fmt.Sprintf("@%s(%s)", e.Name, strings.Join(args, ", "))
	}
	return fmt.Sprintf("<?expr %T>", e)
}
