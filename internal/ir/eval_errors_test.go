package ir

import (
	"strings"
	"testing"
)

// evalErr runs f expecting a runtime error containing want.
func evalErr(t *testing.T, f *Func, want string, args ...interface{}) {
	t.Helper()
	ev := &Evaluator{}
	_, err := ev.Run(f, args...)
	if err == nil {
		t.Fatalf("%s: expected error %q", f.Name, want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("%s: error %q missing %q", f.Name, err.Error(), want)
	}
}

func TestEvalErrorPaths(t *testing.T) {
	// Store to an unallocated array.
	{
		f := NewFunc("st")
		y := f.NewSym("y", Float, true)
		f.Results = []*Sym{y}
		f.Body = []Stmt{&Store{Arr: y, Index: CI(0), Val: CF(1)}}
		evalErr(t, f, "unallocated")
	}
	// Vector load from an unallocated array.
	{
		f := NewFunc("vl")
		x := f.NewSym("x", Float, true)
		y := f.NewSym("y", Float, false)
		f.Results = []*Sym{y}
		f.Body = []Stmt{&Assign{Dst: y, Src: &Reduce{Op: OpAdd, K: KFloat,
			X: &VecLoad{Arr: x, Index: CI(0), K: KFloat.Vec(4)}}}}
		evalErr(t, f, "unallocated")
	}
	// Negative allocation extent.
	{
		f := NewFunc("al")
		y := f.NewSym("y", Float, true)
		f.Results = []*Sym{y}
		f.Body = []Stmt{&Alloc{Arr: y, Rows: CI(-1), Cols: CI(2)}}
		evalErr(t, f, "bad extent")
	}
	// Zero-step loop.
	{
		f := NewFunc("zs")
		y := f.NewSym("y", Float, false)
		k := f.NewSym("k", Int, false)
		f.Results = []*Sym{y}
		f.Body = []Stmt{
			&Assign{Dst: y, Src: CF(0)},
			&For{Var: k, Lo: CI(0), Hi: CI(3), Step: 0, Body: []Stmt{
				&Assign{Dst: y, Src: CF(1)},
			}},
		}
		evalErr(t, f, "zero step")
	}
	// Read of an unassigned variable.
	{
		f := NewFunc("ua")
		x := f.NewSym("x", Float, false)
		y := f.NewSym("y", Float, false)
		f.Results = []*Sym{y}
		f.Body = []Stmt{&Assign{Dst: y, Src: V(x)}}
		evalErr(t, f, "unassigned")
	}
	// Result array never allocated.
	{
		f := NewFunc("na")
		y := f.NewSym("y", Float, true)
		f.Results = []*Sym{y}
		f.Body = nil
		evalErr(t, f, "never allocated")
	}
	// Wrong argument count.
	{
		f := NewFunc("ac")
		x := f.NewSym("x", Float, false)
		f.Params = []*Sym{x}
		f.Results = []*Sym{x}
		evalErr(t, f, "arguments")
	}
	// Wrong element kind for an array parameter.
	{
		f := NewFunc("ek")
		x := f.NewSym("x", Complex, true)
		y := f.NewSym("y", Float, false)
		f.Params = []*Sym{x}
		f.Results = []*Sym{y}
		f.Body = []Stmt{&Assign{Dst: y, Src: CF(0)}}
		evalErr(t, f, "element kind", NewFloatArray(1, 2))
	}
	// Integer division by zero.
	{
		f := NewFunc("dz")
		y := f.NewSym("y", Int, false)
		f.Results = []*Sym{y}
		f.Body = []Stmt{&Assign{Dst: y, Src: B(OpDiv, CI(1), CI(0))}}
		evalErr(t, f, "division by zero")
	}
}

func TestEvalStridedVecLoad(t *testing.T) {
	f := NewFunc("sv")
	x := f.NewSym("x", Float, true)
	y := f.NewSym("y", Float, false)
	f.Params = []*Sym{x}
	f.Results = []*Sym{y}
	v4 := KFloat.Vec(4)
	f.Body = []Stmt{&Assign{Dst: y, Src: &Reduce{Op: OpAdd, K: KFloat,
		X: &VecLoad{Arr: x, Index: CI(0), Stride: 2, K: v4}}}}
	arr := NewFloatArray(1, 8)
	copy(arr.F, []float64{1, 10, 2, 10, 3, 10, 4, 10})
	ev := &Evaluator{}
	res, err := ev.Run(f, arr)
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(float64); got != 10 {
		t.Errorf("strided sum = %v, want 10 (1+2+3+4)", got)
	}
	// Out-of-bounds strided load.
	f.Body = []Stmt{&Assign{Dst: y, Src: &Reduce{Op: OpAdd, K: KFloat,
		X: &VecLoad{Arr: x, Index: CI(4), Stride: 2, K: v4}}}}
	evalErr(t, f, "out of bounds", NewFloatArray(1, 8))
}

func TestEvalReversedVecLoad(t *testing.T) {
	f := NewFunc("rv")
	x := f.NewSym("x", Float, true)
	y := f.NewSym("y", Float, false)
	f.Params = []*Sym{x}
	f.Results = []*Sym{y}
	v4 := KFloat.Vec(4)
	// Lanes read x[3], x[2], x[1], x[0]: reduce with Sub-like weighting
	// is order sensitive; use a position-weighted dot via ramp multiply.
	f.Body = []Stmt{&Assign{Dst: y, Src: &Reduce{Op: OpAdd, K: KFloat,
		X: &Bin{Op: OpMul, K: v4,
			X: &VecLoad{Arr: x, Index: CI(3), Stride: -1, K: v4},
			Y: U(OpToFloat, &Ramp{Base: CI(1), Step: 1, K: KInt.Vec(4)}, v4)}}}}
	arr := NewFloatArray(1, 4)
	copy(arr.F, []float64{1, 2, 3, 4})
	ev := &Evaluator{}
	res, err := ev.Run(f, arr)
	if err != nil {
		t.Fatal(err)
	}
	// 4*1 + 3*2 + 2*3 + 1*4 = 20
	if got := res[0].(float64); got != 20 {
		t.Errorf("reversed weighted sum = %v, want 20", got)
	}
}
