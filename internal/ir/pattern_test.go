package ir

import (
	"math"
	"strings"
	"testing"
)

func TestParsePatternRoundTrip(t *testing.T) {
	cases := []string{
		"float:add(p0,mul(p1,p2))",
		"float:max(abs(sub(p0,p1)),p2)",
		"complex:mul(p0,conj(p1))",
		"complex:add(p0,mul(p1,neg(p2)))",
		"float:mul(p0,p0)",
	}
	for _, src := range cases {
		p, err := ParsePattern(src)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", src, err)
		}
		if got := p.String(); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"add(p0,p1)", "missing base prefix"},
		{"int:add(p0,p1)", "base must be float or complex"},
		{"float:p0", "bare parameter"},
		{"float:add(p0,p2)", "p1 is skipped"},
		{"float:div(p0,p1)", "not a valid binary"},
		{"complex:abs(p0)", "not a valid unary"},
		{"complex:min(p0,p1)", "not a valid binary"},
		{"float:add(p0", "expected )"},
		{"float:add(p0,p1)x", "trailing input"},
		{"float:frobnicate(p0)", "unknown op"},
	}
	for _, c := range cases {
		_, err := ParsePattern(c.src)
		if err == nil {
			t.Errorf("ParsePattern(%q): expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParsePattern(%q): error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestPatternCanonical(t *testing.T) {
	// Commutative reorder + parameter renaming must collapse.
	a := mustPattern(t, "float:add(mul(p1,p2),p0)")
	b := mustPattern(t, "float:add(p2,mul(p0,p1))")
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical mismatch: %q vs %q", a.Canonical(), b.Canonical())
	}
	// sub(p1,p0) is sub(p0,p1) with its operands renamed — the same
	// function under an argument permutation, so it must collapse too.
	c := mustPattern(t, "float:sub(p0,p1)")
	d := mustPattern(t, "float:sub(p1,p0)")
	if c.Canonical() != d.Canonical() {
		t.Errorf("sub under renaming did not collapse: %q vs %q", c.Canonical(), d.Canonical())
	}
	// Genuinely different functions must NOT collapse: different op...
	e := mustPattern(t, "float:add(p0,mul(p1,p2))")
	f := mustPattern(t, "float:sub(p0,mul(p1,p2))")
	if e.Canonical() == f.Canonical() {
		t.Errorf("add- and sub-rooted patterns collapsed to %q", e.Canonical())
	}
	// ...and different parameter repetition structure.
	g := mustPattern(t, "float:mul(p0,p0)")
	h := mustPattern(t, "float:mul(p0,p1)")
	if g.Canonical() == h.Canonical() {
		t.Errorf("square and product collapsed to %q", g.Canonical())
	}
}

func TestPatternEvalLaneFloat(t *testing.T) {
	p := mustPattern(t, "float:add(p0,mul(p1,p2))")
	if p.Arity() != 3 || p.OpNodes() != 2 {
		t.Fatalf("arity/nodes = %d/%d", p.Arity(), p.OpNodes())
	}
	got := p.EvalLane([]complex128{complex(1.5, 99), complex(2, -1), complex(3, 7)})
	if got != complex(7.5, 0) {
		t.Errorf("fma lane = %v, want (7.5+0i); imaginary parts of float args must be ignored", got)
	}
	q := mustPattern(t, "float:max(abs(sub(p0,p1)),p2)")
	if got := q.EvalLane([]complex128{2, 5, 1}); real(got) != 3 {
		t.Errorf("max(abs(2-5),1) = %v, want 3", got)
	}
}

func TestPatternEvalLaneComplex(t *testing.T) {
	p := mustPattern(t, "complex:add(p0,mul(p1,conj(p2)))")
	a, b, c := complex(1.0, 2.0), complex(3.0, -1.0), complex(0.5, 4.0)
	want := a + b*complex(real(c), -imag(c))
	if got := p.EvalLane([]complex128{a, b, c}); got != want {
		t.Errorf("lane = %v, want %v", got, want)
	}
}

func TestPatternIntrinsicEval(t *testing.T) {
	// A mined fma must agree with the built-in fma reference semantics,
	// and must work vectorized with scalar broadcast.
	sem := "float:add(p0,mul(p1,p2))"
	acc := scalarFloat(1)
	a := scalarFloat(2)
	bv := makeVal(Kind{Float, 4})
	for j := 0; j < 4; j++ {
		bv.setLane(j, 0, float64(j+1), 0)
	}
	got, err := evalPatternIntrinsic("isx0", sem, []val{acc, a, bv}, Kind{Float, 4})
	if err != nil {
		t.Fatalf("evalPatternIntrinsic: %v", err)
	}
	ref, err := EvalIntrinsic("vfma", []val{acc, a, bv}, Kind{Float, 4})
	if err != nil {
		t.Fatalf("EvalIntrinsic: %v", err)
	}
	for j := 0; j < 4; j++ {
		_, g, _ := got.lane(j)
		_, r, _ := ref.lane(j)
		if g != r {
			t.Errorf("lane %d: mined %v vs builtin %v", j, g, r)
		}
	}
	if _, err := evalPatternIntrinsic("isx0", sem, []val{acc, a}, KFloat); err == nil {
		t.Error("arity mismatch not rejected")
	}
	if _, err := evalPatternIntrinsic("isx0", "float:bogus(", []val{acc}, KFloat); err == nil {
		t.Error("bad semantics not rejected")
	}
}

func TestPatternEvalThroughEvaluator(t *testing.T) {
	// fn(a, b, c) = mined-fma(a, b, c), run through the full evaluator.
	f := NewFunc("t")
	pa := f.NewSym("a", Float, false)
	pb := f.NewSym("b", Float, false)
	pc := f.NewSym("c", Float, false)
	r := f.NewSym("r", Float, false)
	f.Params = []*Sym{pa, pb, pc}
	f.Results = []*Sym{r}
	f.Body = []Stmt{
		&Assign{Dst: r, Src: &Intrinsic{
			Name: "isx0",
			Args: []Expr{V(pa), V(pb), V(pc)},
			K:    KFloat,
			Sem:  "float:add(p0,mul(p1,p2))",
		}},
		&Return{},
	}
	out, err := (&Evaluator{}).Run(f, 1.0, 2.0, 3.0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := out[0].(float64); math.Abs(got-7) > 0 {
		t.Errorf("mined intrinsic via evaluator = %v, want 7", got)
	}
}

func TestSortPatternsByNodes(t *testing.T) {
	a := mustPattern(t, "float:add(p0,p1)")
	b := mustPattern(t, "float:add(p0,mul(p1,p2))")
	c := mustPattern(t, "float:sub(p0,p1)")
	ps := []*Pattern{a, c, b}
	SortPatternsByNodes(ps)
	if ps[0] != b {
		t.Errorf("largest pattern not first: %q", ps[0])
	}
}

func mustPattern(t *testing.T, src string) *Pattern {
	t.Helper()
	p, err := ParsePattern(src)
	if err != nil {
		t.Fatalf("ParsePattern(%q): %v", src, err)
	}
	return p
}
