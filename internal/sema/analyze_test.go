package sema

import (
	"strings"
	"testing"

	"mat2c/internal/mlang"
)

// analyzeFn wraps a body in "function y = f(params)" and analyzes it.
func analyzeFn(t *testing.T, src string, params ...Type) *Info {
	t.Helper()
	f, err := mlang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	entry := "f"
	if len(f.Funcs) > 0 {
		entry = f.Funcs[0].Name
	}
	info, err := Analyze(f, entry, params)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

// analyzeErr expects analysis to fail and returns the error text.
func analyzeErr(t *testing.T, src string, params ...Type) string {
	t.Helper()
	f, err := mlang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	entry := "f"
	if len(f.Funcs) > 0 {
		entry = f.Funcs[0].Name
	}
	_, err = Analyze(f, entry, params)
	if err == nil {
		t.Fatalf("analyze %q: expected error", src)
	}
	return err.Error()
}

func resultType(t *testing.T, info *Info) Type {
	t.Helper()
	inst := info.Funcs[info.Entry]
	if inst == nil || len(inst.Results) == 0 {
		t.Fatal("no entry results")
	}
	return inst.Results[0]
}

func TestInferScalarArithmetic(t *testing.T) {
	info := analyzeFn(t, "function y = f(a, b)\ny = a + b * 2;\nend", RealScalar, RealScalar)
	if got := resultType(t, info); !got.Equal(RealScalar) {
		t.Errorf("got %v", got)
	}
}

func TestInferIntPropagation(t *testing.T) {
	info := analyzeFn(t, "function y = f()\nn = 4;\ny = n + 1;\nend")
	if got := resultType(t, info); !got.Equal(IntScalar) {
		t.Errorf("got %v, want int", got)
	}
}

func TestInferDivisionBecomesReal(t *testing.T) {
	info := analyzeFn(t, "function y = f()\ny = 3 / 2;\nend")
	if got := resultType(t, info); got.Class != Real {
		t.Errorf("3/2 class = %v, want real", got.Class)
	}
}

func TestInferComplexLiteral(t *testing.T) {
	info := analyzeFn(t, "function y = f(x)\ny = x + 2i;\nend", RealScalar)
	if got := resultType(t, info); got.Class != Complex {
		t.Errorf("got %v, want complex", got)
	}
}

func TestInferVectorParam(t *testing.T) {
	vec := Type{Class: Real, Shape: RowVec(8)}
	info := analyzeFn(t, "function y = f(x)\ny = x .* 2;\nend", vec)
	if got := resultType(t, info); !got.Equal(vec) {
		t.Errorf("got %v, want %v", got, vec)
	}
}

func TestInferZerosShapes(t *testing.T) {
	cases := []struct {
		src  string
		want Shape
	}{
		{"function y = f()\ny = zeros(1, 8);\nend", Shape{1, 8}},
		{"function y = f()\ny = zeros(3, 1);\nend", Shape{3, 1}},
		{"function y = f()\ny = zeros(4);\nend", Shape{4, 4}},
		{"function y = f()\nn = 2 + 2;\ny = zeros(n, 1);\nend", Shape{4, 1}},
	}
	for _, c := range cases {
		info := analyzeFn(t, c.src)
		if got := resultType(t, info); got.Shape != c.want {
			t.Errorf("%q shape = %v, want %v", c.src, got.Shape, c.want)
		}
	}
}

func TestInferZerosDynamic(t *testing.T) {
	info := analyzeFn(t, "function y = f(n)\ny = zeros(1, n);\nend", IntScalar)
	got := resultType(t, info)
	if got.Shape.Rows != 1 || got.Shape.Cols != DimUnknown {
		t.Errorf("got %v, want 1x?", got.Shape)
	}
}

func TestInferLengthConst(t *testing.T) {
	info := analyzeFn(t, "function y = f()\nx = zeros(1, 8);\ny = length(x);\nend")
	got := resultType(t, info)
	if !got.Equal(IntScalar) {
		t.Errorf("got %v", got)
	}
}

func TestInferIndexing(t *testing.T) {
	vec := Type{Class: Real, Shape: RowVec(8)}
	info := analyzeFn(t, "function y = f(x)\ny = x(3);\nend", vec)
	if got := resultType(t, info); !got.Equal(RealScalar) {
		t.Errorf("x(3) = %v, want real scalar", got)
	}
}

func TestInferSliceShapes(t *testing.T) {
	mat := Type{Class: Real, Shape: Shape{4, 6}}
	cases := []struct {
		src  string
		want Shape
	}{
		{"function y = f(x)\ny = x(2, 3);\nend", ScalarShape},
		{"function y = f(x)\ny = x(:, 2);\nend", Shape{4, 1}},
		{"function y = f(x)\ny = x(1, :);\nend", Shape{1, 6}},
		{"function y = f(x)\ny = x(:);\nend", Shape{24, 1}},
		{"function y = f(x)\ny = x(1:2, 3);\nend", Shape{2, 1}},
	}
	for _, c := range cases {
		info := analyzeFn(t, c.src, mat)
		if got := resultType(t, info); got.Shape != c.want {
			t.Errorf("%q shape = %v, want %v", c.src, got.Shape, c.want)
		}
	}
}

func TestInferVectorSliceOrientation(t *testing.T) {
	row := Type{Class: Real, Shape: RowVec(8)}
	col := Type{Class: Real, Shape: ColVec(8)}
	info := analyzeFn(t, "function y = f(x)\ny = x(1:4);\nend", row)
	if got := resultType(t, info); got.Shape != (Shape{1, 4}) {
		t.Errorf("row slice = %v", got.Shape)
	}
	info = analyzeFn(t, "function y = f(x)\ny = x(1:4);\nend", col)
	if got := resultType(t, info); got.Shape != (Shape{4, 1}) {
		t.Errorf("col slice = %v", got.Shape)
	}
}

func TestInferEndIndex(t *testing.T) {
	vec := Type{Class: Real, Shape: RowVec(8)}
	info := analyzeFn(t, "function y = f(x)\ny = x(end);\nend", vec)
	if got := resultType(t, info); !got.IsScalar() {
		t.Errorf("x(end) = %v", got)
	}
	info = analyzeFn(t, "function y = f(x)\ny = x(2:end);\nend", vec)
	if got := resultType(t, info); got.Shape != (Shape{1, 7}) {
		t.Errorf("x(2:end) = %v, want 1x7", got.Shape)
	}
}

func TestInferTranspose(t *testing.T) {
	row := Type{Class: Complex, Shape: RowVec(5)}
	info := analyzeFn(t, "function y = f(x)\ny = x';\nend", row)
	if got := resultType(t, info); got.Shape != (Shape{5, 1}) || got.Class != Complex {
		t.Errorf("got %v", got)
	}
}

func TestInferMatMul(t *testing.T) {
	a := Type{Class: Real, Shape: Shape{3, 4}}
	b := Type{Class: Real, Shape: Shape{4, 5}}
	info := analyzeFn(t, "function y = f(a, b)\ny = a * b;\nend", a, b)
	if got := resultType(t, info); got.Shape != (Shape{3, 5}) {
		t.Errorf("got %v, want 3x5", got.Shape)
	}
}

func TestInferDotProduct(t *testing.T) {
	r := Type{Class: Real, Shape: RowVec(8)}
	c := Type{Class: Real, Shape: ColVec(8)}
	info := analyzeFn(t, "function y = f(a, b)\ny = a * b;\nend", r, c)
	if got := resultType(t, info); !got.IsScalar() {
		t.Errorf("dot product = %v, want scalar", got)
	}
}

func TestInferMatMulMismatch(t *testing.T) {
	a := Type{Class: Real, Shape: Shape{3, 4}}
	b := Type{Class: Real, Shape: Shape{5, 6}}
	msg := analyzeErr(t, "function y = f(a, b)\ny = a * b;\nend", a, b)
	if !strings.Contains(msg, "inner dimensions") {
		t.Errorf("got %q", msg)
	}
}

func TestInferScalarTimesMatrix(t *testing.T) {
	m := Type{Class: Real, Shape: Shape{3, 4}}
	info := analyzeFn(t, "function y = f(a)\ny = 2 * a;\nend", m)
	if got := resultType(t, info); got.Shape != m.Shape {
		t.Errorf("got %v", got.Shape)
	}
}

func TestInferRange(t *testing.T) {
	info := analyzeFn(t, "function y = f()\ny = 1:8;\nend")
	got := resultType(t, info)
	if got.Shape != (Shape{1, 8}) || got.Class != Int {
		t.Errorf("1:8 = %v", got)
	}
	info = analyzeFn(t, "function y = f()\ny = 0:0.5:2;\nend")
	got = resultType(t, info)
	if got.Shape != (Shape{1, 5}) || got.Class != Real {
		t.Errorf("0:0.5:2 = %v", got)
	}
}

func TestInferMatrixLiteral(t *testing.T) {
	info := analyzeFn(t, "function y = f()\ny = [1 2 3; 4 5 6];\nend")
	got := resultType(t, info)
	if got.Shape != (Shape{2, 3}) {
		t.Errorf("got %v", got.Shape)
	}
	info = analyzeFn(t, "function y = f()\ny = [1 2+3i];\nend")
	if got := resultType(t, info); got.Class != Complex {
		t.Errorf("got %v", got)
	}
}

func TestInferMatrixConcatenation(t *testing.T) {
	r := Type{Class: Real, Shape: RowVec(4)}
	info := analyzeFn(t, "function y = f(a, b)\ny = [a b];\nend", r, r)
	if got := resultType(t, info); got.Shape != (Shape{1, 8}) {
		t.Errorf("got %v, want 1x8", got.Shape)
	}
}

func TestInferRaggedMatrix(t *testing.T) {
	msg := analyzeErr(t, "function y = f()\ny = [1 2; 3];\nend")
	if !strings.Contains(msg, "inconsistent") {
		t.Errorf("got %q", msg)
	}
}

func TestInferForLoopAccumulator(t *testing.T) {
	vec := Type{Class: Real, Shape: RowVec(8)}
	src := `function s = f(x)
s = 0;
for i = 1:length(x)
    s = s + x(i);
end
end`
	info := analyzeFn(t, src, vec)
	if got := resultType(t, info); got.Class != Real || !got.IsScalar() {
		t.Errorf("got %v, want real scalar", got)
	}
}

func TestInferLoopWidensToComplex(t *testing.T) {
	vec := Type{Class: Complex, Shape: RowVec(8)}
	src := `function s = f(x)
s = 0;
for i = 1:length(x)
    s = s + x(i);
end
end`
	info := analyzeFn(t, src, vec)
	if got := resultType(t, info); got.Class != Complex {
		t.Errorf("got %v, want complex", got)
	}
}

func TestInferPreallocatedOutput(t *testing.T) {
	vec := Type{Class: Real, Shape: RowVec(DimUnknown)}
	src := `function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = x(i) * 2;
end
end`
	info := analyzeFn(t, src, vec)
	got := resultType(t, info)
	if got.Class != Real || got.Shape.Rows != 1 {
		t.Errorf("got %v", got)
	}
}

func TestInferComplexElementWidensArray(t *testing.T) {
	src := `function y = f(n)
y = zeros(1, 4);
y(1) = 2i;
end`
	info := analyzeFn(t, src, IntScalar)
	if got := resultType(t, info); got.Class != Complex {
		t.Errorf("got %v, want complex array", got)
	}
}

func TestInferIfJoin(t *testing.T) {
	src := `function y = f(a)
if a > 0
    y = 1;
else
    y = 2i;
end
end`
	info := analyzeFn(t, src, RealScalar)
	if got := resultType(t, info); got.Class != Complex {
		t.Errorf("got %v, want complex (join of branches)", got)
	}
}

func TestInferWhile(t *testing.T) {
	src := `function y = f(n)
y = 0;
while n > 0
    y = y + n;
    n = n - 1;
end
end`
	info := analyzeFn(t, src, IntScalar)
	if got := resultType(t, info); got.Class != Int {
		t.Errorf("got %v", got)
	}
}

func TestInferUserFunctionCall(t *testing.T) {
	src := `function y = f(x)
y = helper(x) + 1;
end
function z = helper(v)
z = v * 3;
end`
	info := analyzeFn(t, src, RealScalar)
	if got := resultType(t, info); !got.Equal(RealScalar) {
		t.Errorf("got %v", got)
	}
	if info.Funcs["helper"] == nil {
		t.Error("helper not analyzed")
	}
}

func TestInferMultiAssignSize(t *testing.T) {
	m := Type{Class: Real, Shape: Shape{3, 4}}
	src := `function y = f(x)
[r, c] = size(x);
y = r + c;
end`
	info := analyzeFn(t, src, m)
	if got := resultType(t, info); !got.Equal(IntScalar) {
		t.Errorf("got %v", got)
	}
}

func TestInferBuiltins(t *testing.T) {
	cvec := Type{Class: Complex, Shape: RowVec(8)}
	cases := []struct {
		src  string
		want Class
	}{
		{"function y = f(x)\ny = abs(x);\nend", Real},
		{"function y = f(x)\ny = real(x);\nend", Real},
		{"function y = f(x)\ny = conj(x);\nend", Complex},
		{"function y = f(x)\ny = sum(x);\nend", Complex},
	}
	for _, c := range cases {
		info := analyzeFn(t, c.src, cvec)
		if got := resultType(t, info); got.Class != c.want {
			t.Errorf("%q class = %v, want %v", c.src, got.Class, c.want)
		}
	}
}

func TestInferSumShapes(t *testing.T) {
	vec := Type{Class: Real, Shape: RowVec(8)}
	info := analyzeFn(t, "function y = f(x)\ny = sum(x);\nend", vec)
	if got := resultType(t, info); !got.IsScalar() {
		t.Errorf("sum(vec) = %v", got)
	}
	mat := Type{Class: Real, Shape: Shape{3, 4}}
	info = analyzeFn(t, "function y = f(x)\ny = sum(x);\nend", mat)
	if got := resultType(t, info); got.Shape != (Shape{1, 4}) {
		t.Errorf("sum(mat) = %v, want 1x4", got.Shape)
	}
}

func TestInferRelationalIsBool(t *testing.T) {
	info := analyzeFn(t, "function y = f(a, b)\ny = a < b;\nend", RealScalar, RealScalar)
	if got := resultType(t, info); got.Class != Bool {
		t.Errorf("got %v", got)
	}
}

func TestCallResolution(t *testing.T) {
	vec := Type{Class: Real, Shape: RowVec(8)}
	src := `function y = f(x)
y = x(1) + sqrt(x(2)) + g(x(3));
end
function z = g(v)
z = v + 1;
end`
	f, err := mlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(f, "f", []Type{vec})
	if err != nil {
		t.Fatal(err)
	}
	var idx, bi, user int
	for _, k := range info.Calls {
		switch k {
		case CallIndex:
			idx++
		case CallBuiltin:
			bi++
		case CallUser:
			user++
		}
	}
	if idx != 3 || bi != 1 || user != 1 {
		t.Errorf("resolutions idx=%d builtin=%d user=%d, want 3/1/1", idx, bi, user)
	}
}

func TestDiagnostics(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"function y = f()\ny = undefinedvar + 1;\nend", "undefined"},
		{"function y = f()\nw(3) = 1;\ny = 1;\nend", "preallocate"},
		{"function y = f()\ny = 1;\nrecur();\nend\nfunction recur()\nrecur();\nend", "recursive"},
		{"function y = f()\nbreak;\ny = 1;\nend", "break outside"},
		{"function y = f()\ny = zeros(1, 2) + zeros(1, 3);\nend", "nonconformant"},
		{"function y = f()\nend", "never assigned"},
		{"function y = f()\ny = 'hello';\nend", "string"},
		{"function y = f(x)\ny = x(1, 2, 3);\nend", "2 index"},
		{"function y = f()\nzeros = 3;\ny = zeros;\nend", "builtin"},
		{"function y = f()\ny = sum();\nend", "arguments"},
		{"function y = f(x)\n[a, b] = sqrt(x);\ny = a + b;\nend", "at most"},
	}
	for _, c := range cases {
		params := []Type{}
		if strings.Contains(c.src, "f(x)") {
			params = append(params, Type{Class: Real, Shape: Shape{4, 4}})
		}
		msg := analyzeErr(t, c.src, params...)
		if !strings.Contains(msg, c.want) {
			t.Errorf("source %q:\n  got error %q, want substring %q", c.src, msg, c.want)
		}
	}
}

func TestEntryArityMismatch(t *testing.T) {
	f := mlang.MustParse("function y = f(a, b)\ny = a + b;\nend")
	if _, err := Analyze(f, "f", []Type{RealScalar}); err == nil {
		t.Error("expected arity error")
	}
	if _, err := Analyze(f, "nope", nil); err == nil {
		t.Error("expected missing-entry error")
	}
}

func TestFixpointTerminates(t *testing.T) {
	// A loop that keeps widening must still converge.
	src := `function y = f(n)
x = 1;
for i = 1:n
    x = x + 0.5;
    x = x + 2i;
end
y = x;
end`
	info := analyzeFn(t, src, IntScalar)
	if got := resultType(t, info); got.Class != Complex {
		t.Errorf("got %v", got)
	}
}

func TestConstTracking(t *testing.T) {
	src := `function y = f()
n = 4;
m = n * 2;
y = zeros(m, 1);
end`
	info := analyzeFn(t, src)
	if got := resultType(t, info); got.Shape != (Shape{8, 1}) {
		t.Errorf("got %v, want 8x1 via const propagation", got.Shape)
	}
}
