package sema

import (
	"testing"
	"testing/quick"
)

func TestClassJoin(t *testing.T) {
	cases := []struct{ a, b, want Class }{
		{Bool, Bool, Bool},
		{Bool, Int, Int},
		{Int, Real, Real},
		{Real, Complex, Complex},
		{Complex, Bool, Complex},
		{Int, Int, Int},
	}
	for _, c := range cases {
		if got := c.a.Join(c.b); got != c.want {
			t.Errorf("%v ⊔ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Join(c.a); got != c.want {
			t.Errorf("join not commutative for %v, %v", c.a, c.b)
		}
	}
}

// Properties of the class lattice: idempotent, commutative, associative.
func TestClassJoinLatticeLaws(t *testing.T) {
	norm := func(x uint8) Class { return Class(x % 4) }
	idem := func(x uint8) bool { c := norm(x); return c.Join(c) == c }
	comm := func(x, y uint8) bool { a, b := norm(x), norm(y); return a.Join(b) == b.Join(a) }
	assoc := func(x, y, z uint8) bool {
		a, b, c := norm(x), norm(y), norm(z)
		return a.Join(b).Join(c) == a.Join(b.Join(c))
	}
	for name, f := range map[string]interface{}{"idem": idem, "comm": comm, "assoc": assoc} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestShapeBasics(t *testing.T) {
	s := ScalarShape
	if !s.IsScalar() || !s.IsVector() || s.Len() != 1 {
		t.Error("scalar shape misclassified")
	}
	r := RowVec(5)
	if r.IsScalar() || !r.IsRowVec() || r.IsColVec() || r.Len() != 5 {
		t.Error("row vector misclassified")
	}
	c := ColVec(3)
	if !c.IsColVec() || c.Len() != 3 {
		t.Error("col vector misclassified")
	}
	m := Shape{3, 4}
	if m.IsVector() || m.Len() != 12 {
		t.Error("matrix misclassified")
	}
	if m.Transposed() != (Shape{4, 3}) {
		t.Error("transpose wrong")
	}
	u := Shape{DimUnknown, 4}
	if u.Known() || u.Len() != DimUnknown {
		t.Error("unknown dims misclassified")
	}
	if u.String() != "?x4" {
		t.Errorf("String() = %q", u.String())
	}
}

func TestShapeJoin(t *testing.T) {
	a := Shape{3, 4}
	if a.Join(a) != a {
		t.Error("join not idempotent")
	}
	if got := a.Join(Shape{3, 5}); got != (Shape{3, DimUnknown}) {
		t.Errorf("got %v", got)
	}
	if got := a.Join(Shape{2, 4}); got != (Shape{DimUnknown, 4}) {
		t.Errorf("got %v", got)
	}
}

// Property: shape join is commutative and associative (on small dims).
func TestShapeJoinLaws(t *testing.T) {
	norm := func(x int8) int {
		v := int(x % 4)
		if v < 0 {
			v = -v
		}
		if v == 3 {
			return DimUnknown
		}
		return v + 1
	}
	mk := func(a, b int8) Shape { return Shape{norm(a), norm(b)} }
	comm := func(a, b, c, d int8) bool {
		x, y := mk(a, b), mk(c, d)
		return x.Join(y) == y.Join(x)
	}
	assoc := func(a, b, c, d, e, f int8) bool {
		x, y, z := mk(a, b), mk(c, d), mk(e, f)
		return x.Join(y).Join(z) == x.Join(y.Join(z))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	if got := RealScalar.String(); got != "real" {
		t.Errorf("got %q", got)
	}
	ty := Type{Class: Complex, Shape: Shape{1, DimUnknown}}
	if got := ty.String(); got != "complex 1x?" {
		t.Errorf("got %q", got)
	}
}

func TestBroadcastShape(t *testing.T) {
	v := Shape{1, 8}
	got, err := broadcastShape(ScalarShape, v)
	if err != nil || got != v {
		t.Errorf("scalar⊗vec = %v, %v", got, err)
	}
	got, err = broadcastShape(v, v)
	if err != nil || got != v {
		t.Errorf("vec⊗vec = %v, %v", got, err)
	}
	u := Shape{1, DimUnknown}
	got, err = broadcastShape(v, u)
	if err != nil || got != v {
		t.Errorf("vec⊗unknown = %v, %v", got, err)
	}
	if _, err = broadcastShape(Shape{1, 8}, Shape{1, 9}); err == nil {
		t.Error("expected nonconformance error")
	}
	if _, err = broadcastShape(Shape{2, 8}, Shape{1, 8}); err == nil {
		t.Error("expected nonconformance error")
	}
}

func TestSignature(t *testing.T) {
	got := Signature([]Type{RealScalar, {Class: Complex, Shape: RowVec(4)}})
	if got != "(real,complex 1x4)" {
		t.Errorf("got %q", got)
	}
}

func TestBuiltinCatalog(t *testing.T) {
	for _, name := range []string{"zeros", "ones", "length", "size", "sum",
		"sqrt", "abs", "real", "imag", "conj", "mod", "pi", "complex"} {
		if !IsBuiltin(name) {
			t.Errorf("%s missing from catalog", name)
		}
	}
	if IsBuiltin("fprintf") {
		t.Error("fprintf should not be a builtin")
	}
	if len(BuiltinNames()) < 20 {
		t.Errorf("catalog too small: %d", len(BuiltinNames()))
	}
}
