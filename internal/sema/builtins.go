package sema

import (
	"fmt"
)

// Arg is a call argument as seen by a builtin's type rule: its inferred
// type plus, when statically known, its constant scalar value (used to
// resolve shapes such as zeros(4)).
type Arg struct {
	Type  Type
	Const *float64
}

func (a Arg) constInt() (int, bool) {
	if a.Const == nil {
		return 0, false
	}
	n := int(*a.Const)
	if float64(n) != *a.Const || n < 0 {
		return 0, false
	}
	return n, true
}

// BuiltinKind classifies builtins for the lowering phase.
type BuiltinKind int

// Builtin kinds.
const (
	BKElemUnary   BuiltinKind = iota // sqrt, sin, ... applied elementwise
	BKElemBinary                     // mod, atan2, min/max with 2 args
	BKReduction                      // sum, prod, min/max with 1 arg
	BKCreation                       // zeros, ones
	BKQuery                          // length, numel, size
	BKConstant                       // pi, eps
	BKComplexPart                    // real, imag, conj, angle, abs
	BKConstructor                    // complex(re, im)
)

// Builtin describes one recognized MATLAB builtin.
type Builtin struct {
	Name    string
	Kind    BuiltinKind
	MinArgs int
	MaxArgs int
	// NumResults is the maximum number of output values ([r,c] = size(x)).
	NumResults int
	// Result computes the output types for the given arguments.
	Result func(args []Arg, nresults int) ([]Type, error)
}

// elemUnary builds a rule for an elementwise unary function whose result
// class is classOf(input class).
func elemUnary(classOf func(Class) Class) func([]Arg, int) ([]Type, error) {
	return func(args []Arg, _ int) ([]Type, error) {
		t := args[0].Type
		return []Type{{Class: classOf(t.Class), Shape: t.Shape}}, nil
	}
}

func toReal(c Class) Class {
	if c == Complex {
		return Complex
	}
	return Real
}

// realAlways maps any input class to Real (real, imag, abs, angle).
func realAlways(Class) Class { return Real }

// keepNumeric promotes logicals to real but preserves int/real/complex.
func keepNumeric(c Class) Class {
	if c == Bool {
		return Int
	}
	return c
}

// intAlways maps to Int (floor, ceil, round, fix, sign on reals).
func intLike(c Class) Class {
	if c == Complex {
		return Complex // floor of complex applies to both parts
	}
	return Int
}

func elemBinary(args []Arg, _ int) ([]Type, error) {
	x, y := args[0].Type, args[1].Type
	sh, err := broadcastShape(x.Shape, y.Shape)
	if err != nil {
		return nil, err
	}
	return []Type{{Class: x.Class.Join(y.Class), Shape: sh}}, nil
}

// broadcastShape merges operand shapes under MATLAB elementwise rules:
// scalars broadcast; otherwise shapes must conform (unknown dims unify).
func broadcastShape(a, b Shape) (Shape, error) {
	if a.IsScalar() {
		return b, nil
	}
	if b.IsScalar() {
		return a, nil
	}
	r, ok := unifyDim(a.Rows, b.Rows)
	if !ok {
		return Shape{}, fmt.Errorf("nonconformant operands %s and %s", a, b)
	}
	c, ok := unifyDim(a.Cols, b.Cols)
	if !ok {
		return Shape{}, fmt.Errorf("nonconformant operands %s and %s", a, b)
	}
	return Shape{Rows: r, Cols: c}, nil
}

func unifyDim(a, b int) (int, bool) {
	switch {
	case a == b:
		return a, true
	case a == DimUnknown:
		return b, true
	case b == DimUnknown:
		return a, true
	}
	return 0, false
}

func reduction(args []Arg, _ int) ([]Type, error) {
	t := args[0].Type
	c := keepNumeric(t.Class)
	if t.Shape.IsVector() || t.Shape.IsScalar() {
		return []Type{ScalarType(c)}, nil
	}
	// Matrix reduction collapses rows: result is 1×cols.
	return []Type{{Class: c, Shape: Shape{Rows: 1, Cols: t.Shape.Cols}}}, nil
}

// minMax handles the reduction form min(x) (optionally with the index
// as a second output: [m, i] = min(x)) and the elementwise binary form
// min(x, y).
func minMax(args []Arg, n int) ([]Type, error) {
	if len(args) == 2 {
		if n > 1 {
			return nil, fmt.Errorf("the two-argument form returns a single value")
		}
		return elemBinary(args, n)
	}
	res, err := reduction(args, n)
	if err != nil {
		return nil, err
	}
	if n > 1 {
		if !res[0].IsScalar() {
			return nil, fmt.Errorf("[m, i] form requires a vector argument")
		}
		res = append(res, IntScalar)
	}
	return res, nil
}

func creation(args []Arg, _ int) ([]Type, error) {
	switch len(args) {
	case 0:
		return []Type{RealScalar}, nil
	case 1:
		// zeros(n) is n×n.
		if n, ok := args[0].constInt(); ok {
			return []Type{{Class: Real, Shape: Shape{Rows: n, Cols: n}}}, nil
		}
		return []Type{{Class: Real, Shape: Shape{DimUnknown, DimUnknown}}}, nil
	default:
		r, rok := args[0].constInt()
		c, cok := args[1].constInt()
		if !rok {
			r = DimUnknown
		}
		if !cok {
			c = DimUnknown
		}
		return []Type{{Class: Real, Shape: Shape{Rows: r, Cols: c}}}, nil
	}
}

func queryLength(args []Arg, _ int) ([]Type, error) {
	return []Type{IntScalar}, nil
}

func querySize(args []Arg, nres int) ([]Type, error) {
	if nres <= 1 {
		if len(args) == 2 {
			return []Type{IntScalar}, nil
		}
		// size(x) with one output is a 1×2 row vector.
		return []Type{{Class: Int, Shape: RowVec(2)}}, nil
	}
	if nres > 2 {
		return nil, fmt.Errorf("size supports at most 2 outputs, got %d", nres)
	}
	return []Type{IntScalar, IntScalar}, nil
}

func constantPi(args []Arg, _ int) ([]Type, error) {
	return []Type{RealScalar}, nil
}

func constructorComplex(args []Arg, _ int) ([]Type, error) {
	sh, err := broadcastShape(args[0].Type.Shape, args[1].Type.Shape)
	if err != nil {
		return nil, err
	}
	return []Type{{Class: Complex, Shape: sh}}, nil
}

// builtins is the catalog. The set matches what embedded DSP kernels use
// and what both backends implement.
var builtins = map[string]*Builtin{
	"zeros": {Name: "zeros", Kind: BKCreation, MinArgs: 0, MaxArgs: 2, NumResults: 1, Result: creation},
	"ones":  {Name: "ones", Kind: BKCreation, MinArgs: 0, MaxArgs: 2, NumResults: 1, Result: creation},

	"length": {Name: "length", Kind: BKQuery, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: queryLength},
	"numel":  {Name: "numel", Kind: BKQuery, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: queryLength},
	"size":   {Name: "size", Kind: BKQuery, MinArgs: 1, MaxArgs: 2, NumResults: 2, Result: querySize},

	"sum":  {Name: "sum", Kind: BKReduction, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: reduction},
	"prod": {Name: "prod", Kind: BKReduction, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: reduction},
	"min":  {Name: "min", Kind: BKReduction, MinArgs: 1, MaxArgs: 2, NumResults: 2, Result: minMax},
	"max":  {Name: "max", Kind: BKReduction, MinArgs: 1, MaxArgs: 2, NumResults: 2, Result: minMax},
	"mean": {Name: "mean", Kind: BKReduction, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: reduction},

	"sqrt":  {Name: "sqrt", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"sin":   {Name: "sin", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"cos":   {Name: "cos", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"tan":   {Name: "tan", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"asin":  {Name: "asin", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"acos":  {Name: "acos", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"atan":  {Name: "atan", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"sinh":  {Name: "sinh", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"cosh":  {Name: "cosh", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"tanh":  {Name: "tanh", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"exp":   {Name: "exp", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(keepComplex)},
	"log":   {Name: "log", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(keepComplex)},
	"log2":  {Name: "log2", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},
	"log10": {Name: "log10", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(toReal)},

	"atan2": {Name: "atan2", Kind: BKElemBinary, MinArgs: 2, MaxArgs: 2, NumResults: 1, Result: elemBinaryReal},

	"floor": {Name: "floor", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(intLike)},
	"ceil":  {Name: "ceil", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(intLike)},
	"round": {Name: "round", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(intLike)},
	"fix":   {Name: "fix", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(intLike)},
	"sign":  {Name: "sign", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(intLike)},

	"mod": {Name: "mod", Kind: BKElemBinary, MinArgs: 2, MaxArgs: 2, NumResults: 1, Result: elemBinary},
	"rem": {Name: "rem", Kind: BKElemBinary, MinArgs: 2, MaxArgs: 2, NumResults: 1, Result: elemBinary},

	"abs":   {Name: "abs", Kind: BKComplexPart, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(realAlways)},
	"real":  {Name: "real", Kind: BKComplexPart, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(realAlways)},
	"imag":  {Name: "imag", Kind: BKComplexPart, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(realAlways)},
	"conj":  {Name: "conj", Kind: BKComplexPart, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(keepComplex)},
	"angle": {Name: "angle", Kind: BKComplexPart, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: elemUnary(realAlways)},

	"complex": {Name: "complex", Kind: BKConstructor, MinArgs: 2, MaxArgs: 2, NumResults: 1, Result: constructorComplex},

	"pi":  {Name: "pi", Kind: BKConstant, MinArgs: 0, MaxArgs: 0, NumResults: 1, Result: constantPi},
	"eps": {Name: "eps", Kind: BKConstant, MinArgs: 0, MaxArgs: 0, NumResults: 1, Result: constantPi},

	"linspace": {Name: "linspace", Kind: BKCreation, MinArgs: 2, MaxArgs: 3, NumResults: 1, Result: linspaceRule},
	"eye":      {Name: "eye", Kind: BKCreation, MinArgs: 1, MaxArgs: 2, NumResults: 1, Result: creation},
	"fliplr":   {Name: "fliplr", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: flipRule},
	"flipud":   {Name: "flipud", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: flipRule},
	"cumsum":   {Name: "cumsum", Kind: BKElemUnary, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: cumsumRule},
	"dot":      {Name: "dot", Kind: BKReduction, MinArgs: 2, MaxArgs: 2, NumResults: 1, Result: dotRule},
	"norm":     {Name: "norm", Kind: BKReduction, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: normRule},

	"var":     {Name: "var", Kind: BKReduction, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: realVecReduce},
	"std":     {Name: "std", Kind: BKReduction, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: realVecReduce},
	"isempty": {Name: "isempty", Kind: BKQuery, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: isemptyRule},

	"find": {Name: "find", Kind: BKCreation, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: findRule},
	"any":  {Name: "any", Kind: BKReduction, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: boolReduce},
	"all":  {Name: "all", Kind: BKReduction, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: boolReduce},
	"nnz":  {Name: "nnz", Kind: BKReduction, MinArgs: 1, MaxArgs: 1, NumResults: 1, Result: queryLength},
}

// findRule: find(x) returns the 1-based indices of nonzero elements; the
// count is dynamic and the orientation follows the argument.
func findRule(args []Arg, _ int) ([]Type, error) {
	t := args[0].Type
	if !t.Shape.IsVector() && t.Shape.Known() && !t.IsScalar() {
		return nil, fmt.Errorf("find supports vectors only")
	}
	sh := Shape{Rows: 1, Cols: DimUnknown}
	if t.Shape.IsColVec() && !t.IsScalar() {
		sh = Shape{Rows: DimUnknown, Cols: 1}
	}
	return []Type{{Class: Int, Shape: sh}}, nil
}

// realVecReduce: var/std reduce a real vector to a real scalar.
func realVecReduce(args []Arg, _ int) ([]Type, error) {
	t := args[0].Type
	if t.Class == Complex {
		return nil, fmt.Errorf("var/std of complex values is not supported")
	}
	if !t.Shape.IsVector() && t.Shape.Known() && !t.IsScalar() {
		return nil, fmt.Errorf("var/std support vectors only")
	}
	return []Type{RealScalar}, nil
}

func isemptyRule(args []Arg, _ int) ([]Type, error) {
	return []Type{BoolScalar}, nil
}

func boolReduce(args []Arg, _ int) ([]Type, error) {
	t := args[0].Type
	if !t.Shape.IsVector() && t.Shape.Known() && !t.IsScalar() {
		return nil, fmt.Errorf("any/all support vectors only")
	}
	return []Type{BoolScalar}, nil
}

func elemBinaryReal(args []Arg, n int) ([]Type, error) {
	res, err := elemBinary(args, n)
	if err != nil {
		return nil, err
	}
	res[0].Class = Real
	return res, nil
}

func linspaceRule(args []Arg, _ int) ([]Type, error) {
	n := 100 // MATLAB default point count
	if len(args) == 3 {
		if c, ok := args[2].constInt(); ok {
			n = c
		} else {
			n = DimUnknown
		}
	}
	return []Type{{Class: Real, Shape: Shape{Rows: 1, Cols: n}}}, nil
}

func flipRule(args []Arg, _ int) ([]Type, error) {
	t := args[0].Type
	return []Type{{Class: keepNumeric(t.Class), Shape: t.Shape}}, nil
}

func cumsumRule(args []Arg, _ int) ([]Type, error) {
	t := args[0].Type
	if !t.Shape.IsVector() && t.Shape.Known() {
		return nil, fmt.Errorf("cumsum supports vectors only")
	}
	return []Type{{Class: keepNumeric(t.Class), Shape: t.Shape}}, nil
}

func dotRule(args []Arg, _ int) ([]Type, error) {
	if _, err := broadcastShape(args[0].Type.Shape, args[1].Type.Shape); err != nil {
		return nil, err
	}
	return []Type{ScalarType(keepNumeric(args[0].Type.Class.Join(args[1].Type.Class)))}, nil
}

func normRule(args []Arg, _ int) ([]Type, error) {
	t := args[0].Type
	if !t.Shape.IsVector() && t.Shape.Known() {
		return nil, fmt.Errorf("norm supports vectors only")
	}
	return []Type{RealScalar}, nil
}

func keepComplex(c Class) Class {
	if c == Complex {
		return Complex
	}
	return Real
}

// LookupBuiltin returns the builtin named s, or nil.
func LookupBuiltin(s string) *Builtin { return builtins[s] }

// IsBuiltin reports whether s names a recognized builtin.
func IsBuiltin(s string) bool { return builtins[s] != nil }

// BuiltinNames returns the catalog's names (for diagnostics/docs).
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	return names
}
