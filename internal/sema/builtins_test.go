package sema

import (
	"strings"
	"testing"

	"mat2c/internal/mlang"
)

func analyzeOne(t *testing.T, src string, params ...Type) (*Info, error) {
	t.Helper()
	f, err := mlang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(f, f.Funcs[0].Name, params)
}

func resultOf(t *testing.T, src string, params ...Type) Type {
	t.Helper()
	info, err := analyzeOne(t, src, params...)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info.Funcs[info.Entry].Results[0]
}

func dynVecT() Type {
	return Type{Class: Real, Shape: Shape{Rows: 1, Cols: DimUnknown}}
}

func TestBuiltinTrigTypes(t *testing.T) {
	for _, fn := range []string{"asin", "acos", "atan", "sinh", "cosh", "tanh", "log2", "log10"} {
		got := resultOf(t, "function y = f(x)\ny = "+fn+"(x);\nend", RealScalar)
		if got.Class != Real || !got.IsScalar() {
			t.Errorf("%s: got %v", fn, got)
		}
		// Elementwise over vectors.
		got = resultOf(t, "function y = f(x)\ny = "+fn+"(x);\nend", dynVecT())
		if got.Shape.Rows != 1 {
			t.Errorf("%s over vector: got %v", fn, got)
		}
	}
}

func TestBuiltinAtan2Types(t *testing.T) {
	got := resultOf(t, "function y = f(a, b)\ny = atan2(a, b);\nend", dynVecT(), dynVecT())
	if got.Class != Real || got.Shape.Rows != 1 {
		t.Errorf("got %v", got)
	}
	if _, err := analyzeOne(t, "function y = f(a)\ny = atan2(a);\nend", RealScalar); err == nil {
		t.Error("atan2 arity not checked")
	}
}

func TestBuiltinLinspaceTypes(t *testing.T) {
	got := resultOf(t, "function y = f()\ny = linspace(0, 1, 5);\nend")
	if got.Shape != (Shape{1, 5}) {
		t.Errorf("sized linspace: got %v", got.Shape)
	}
	got = resultOf(t, "function y = f(n)\ny = linspace(0, 1, n);\nend", IntScalar)
	if got.Shape.Cols != DimUnknown {
		t.Errorf("dynamic linspace: got %v", got.Shape)
	}
	got = resultOf(t, "function y = f()\ny = linspace(0, 1);\nend")
	if got.Shape != (Shape{1, 100}) {
		t.Errorf("default linspace: got %v", got.Shape)
	}
}

func TestBuiltinEyeTypes(t *testing.T) {
	got := resultOf(t, "function y = f()\ny = eye(3);\nend")
	if got.Shape != (Shape{3, 3}) {
		t.Errorf("got %v", got.Shape)
	}
}

func TestBuiltinFlipTypes(t *testing.T) {
	got := resultOf(t, "function y = f(x)\ny = fliplr(x);\nend",
		Type{Class: Complex, Shape: RowVec(7)})
	if got.Class != Complex || got.Shape != RowVec(7) {
		t.Errorf("got %v", got)
	}
}

func TestBuiltinDotNormTypes(t *testing.T) {
	got := resultOf(t, "function y = f(a, b)\ny = dot(a, b);\nend",
		Type{Class: Complex, Shape: RowVec(4)}, Type{Class: Complex, Shape: RowVec(4)})
	if got.Class != Complex || !got.IsScalar() {
		t.Errorf("dot: got %v", got)
	}
	got = resultOf(t, "function y = f(x)\ny = norm(x);\nend",
		Type{Class: Complex, Shape: RowVec(4)})
	if got.Class != Real || !got.IsScalar() {
		t.Errorf("norm: got %v", got)
	}
	if _, err := analyzeOne(t, "function y = f(a)\ny = norm(a);\nend",
		Type{Class: Real, Shape: Shape{3, 3}}); err == nil {
		t.Error("norm of matrix should be rejected")
	}
}

func TestBuiltinFindAnyAllTypes(t *testing.T) {
	got := resultOf(t, "function y = f(x)\ny = find(x > 0);\nend", dynVecT())
	if got.Class != Int || got.Shape.Rows != 1 || got.Shape.Cols != DimUnknown {
		t.Errorf("find: got %v", got)
	}
	// Orientation follows the argument.
	got = resultOf(t, "function y = f(x)\ny = find(x);\nend",
		Type{Class: Real, Shape: ColVec(5)})
	if got.Shape.Cols != 1 {
		t.Errorf("find col: got %v", got.Shape)
	}
	for _, fn := range []string{"any", "all"} {
		got := resultOf(t, "function y = f(x)\ny = "+fn+"(x);\nend", dynVecT())
		if got.Class != Bool || !got.IsScalar() {
			t.Errorf("%s: got %v", fn, got)
		}
	}
	got = resultOf(t, "function y = f(x)\ny = nnz(x);\nend", dynVecT())
	if got.Class != Int {
		t.Errorf("nnz: got %v", got)
	}
}

func TestBuiltinCumsumTypes(t *testing.T) {
	got := resultOf(t, "function y = f(x)\ny = cumsum(x);\nend", dynVecT())
	if got.Shape.Rows != 1 {
		t.Errorf("got %v", got)
	}
	if _, err := analyzeOne(t, "function y = f(x)\ny = cumsum(x);\nend",
		Type{Class: Real, Shape: Shape{3, 3}}); err == nil {
		t.Error("cumsum of matrix should be rejected")
	}
}

func TestSwitchTyping(t *testing.T) {
	src := `function y = f(x)
switch x
case 1
    y = 1;
otherwise
    y = 2i;
end
end`
	got := resultOf(t, src, RealScalar)
	if got.Class != Complex {
		t.Errorf("switch join: got %v", got)
	}
}

func TestSwitchRejectsNonScalarSubject(t *testing.T) {
	src := `function y = f(x)
switch x
case 1
    y = 1;
end
end`
	// A statically-known non-scalar subject is rejected; unknown dims are
	// accepted optimistically (they may be 1x1 at run time), matching the
	// treatment of if/while conditions.
	_, err := analyzeOne(t, src, Type{Class: Real, Shape: RowVec(4)})
	if err == nil || !strings.Contains(err.Error(), "scalar") {
		t.Errorf("got %v", err)
	}
}
