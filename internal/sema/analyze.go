package sema

import (
	"fmt"
	"math"
	"sort"

	"mat2c/internal/mlang"
)

// Diagnostic is a semantic error tied to a source position.
type Diagnostic struct {
	Pos mlang.Pos
	Msg string
}

func (d *Diagnostic) Error() string {
	if d.Pos.Valid() {
		return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
	}
	return d.Msg
}

// DiagList aggregates diagnostics into one error.
type DiagList []*Diagnostic

func (l DiagList) Error() string {
	switch len(l) {
	case 0:
		return "no diagnostics"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more)", l[0].Error(), len(l)-1)
}

// CallKind resolves MATLAB's call/index ambiguity for a CallExpr.
type CallKind int

// Call resolutions.
const (
	CallIndex   CallKind = iota // variable indexing x(i)
	CallBuiltin                 // catalog builtin
	CallUser                    // user function defined in the same file
)

// Info is the analysis result consumed by the lowering phase.
type Info struct {
	File *mlang.File
	// Types records the inferred type of every analyzed expression.
	Types map[mlang.Expr]Type
	// Consts records statically known scalar values.
	Consts map[mlang.Expr]float64
	// Calls resolves each CallExpr.
	Calls map[*mlang.CallExpr]CallKind
	// Funcs holds one analyzed instance per reachable user function.
	Funcs map[string]*FuncInst
	// Entry is the name of the entry function.
	Entry string
	// Warnings are non-fatal diagnostics (the program compiles).
	Warnings []*Diagnostic
}

// TypeOf returns the recorded type of e (zero Type if absent).
func (in *Info) TypeOf(e mlang.Expr) Type { return in.Types[e] }

// ConstOf returns the recorded constant value of e.
func (in *Info) ConstOf(e mlang.Expr) (float64, bool) {
	v, ok := in.Consts[e]
	return v, ok
}

// FuncInst is an analyzed (monomorphic) instance of a user function.
type FuncInst struct {
	Decl    *mlang.FuncDecl
	Params  []Type
	Results []Type
	// Vars is the fixpoint type of every local variable.
	Vars map[string]Type
}

const maxFixpointIters = 24

type binding struct {
	t Type
	c *float64 // known constant scalar value, nil if unknown
}

type env map[string]binding

func (e env) clone() env {
	n := make(env, len(e))
	for k, v := range e {
		n[k] = v
	}
	return n
}

func (e env) equal(o env) bool {
	if len(e) != len(o) {
		return false
	}
	for k, v := range e {
		w, ok := o[k]
		if !ok || !v.t.Equal(w.t) {
			return false
		}
		if (v.c == nil) != (w.c == nil) || v.c != nil && *v.c != *w.c {
			return false
		}
	}
	return true
}

// joinWith widens e to cover o as well (merge point of two paths).
// Variables bound on only one path keep their one binding (MATLAB would
// error at run time on the unbound path; we accept the optimistic view).
func (e env) joinWith(o env) {
	for k, w := range o {
		v, ok := e[k]
		if !ok {
			e[k] = w
			continue
		}
		nb := binding{t: v.t.Join(w.t)}
		if v.c != nil && w.c != nil && *v.c == *w.c {
			nb.c = v.c
		}
		e[k] = nb
	}
}

type analyzer struct {
	file  *mlang.File
	decls map[string]*mlang.FuncDecl
	info  *Info
	diags DiagList
	warns []*Diagnostic

	inProgress map[string]bool
	loopDepth  int

	// endStack tracks, while inferring index arguments, the extent that
	// the 'end' keyword denotes (DimUnknown when dynamic).
	endStack []int
}

// Analyze type-checks the file starting from entry, whose parameters are
// assumed to have the given types. It returns the analysis Info and a
// DiagList error if any diagnostics were produced.
func Analyze(file *mlang.File, entry string, params []Type) (*Info, error) {
	a := &analyzer{
		file:  file,
		decls: map[string]*mlang.FuncDecl{},
		info: &Info{
			File:   file,
			Types:  map[mlang.Expr]Type{},
			Consts: map[mlang.Expr]float64{},
			Calls:  map[*mlang.CallExpr]CallKind{},
			Funcs:  map[string]*FuncInst{},
			Entry:  entry,
		},
		inProgress: map[string]bool{},
	}
	for _, fn := range file.Funcs {
		if a.decls[fn.Name] != nil {
			a.errorf(fn.Pos, "function %s redefined", fn.Name)
		}
		a.decls[fn.Name] = fn
	}
	decl := a.decls[entry]
	if decl == nil {
		a.errorf(mlang.Pos{}, "entry function %q not found", entry)
		return a.info, a.diags
	}
	if len(params) != len(decl.Params) {
		a.errorf(decl.Pos, "entry %s takes %d parameters, %d types supplied",
			entry, len(decl.Params), len(params))
		return a.info, a.diags
	}
	a.instantiate(entry, params, decl.Pos)
	a.info.Warnings = a.warns
	if len(a.diags) > 0 {
		return a.info, a.diags
	}
	return a.info, nil
}

func (a *analyzer) errorf(pos mlang.Pos, format string, args ...interface{}) {
	if len(a.diags) < 50 {
		a.diags = append(a.diags, &Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (a *analyzer) warnf(pos mlang.Pos, format string, args ...interface{}) {
	if len(a.warns) < 50 {
		a.warns = append(a.warns, &Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// instantiate analyzes function name with the given parameter types,
// memoizing per name. A later call with wider argument types triggers
// re-analysis at the join.
func (a *analyzer) instantiate(name string, args []Type, pos mlang.Pos) *FuncInst {
	decl := a.decls[name]
	if decl == nil {
		a.errorf(pos, "undefined function %q", name)
		return nil
	}
	if len(args) != len(decl.Params) {
		a.errorf(pos, "function %s takes %d arguments, got %d", name, len(decl.Params), len(args))
		return nil
	}
	if a.inProgress[name] {
		a.errorf(pos, "recursive call to %s is not supported", name)
		return nil
	}
	if inst := a.info.Funcs[name]; inst != nil {
		widened := make([]Type, len(args))
		same := true
		for i, t := range args {
			widened[i] = inst.Params[i].Join(t)
			if !widened[i].Equal(inst.Params[i]) {
				same = false
			}
		}
		if same {
			return inst
		}
		args = widened
	}
	a.inProgress[name] = true
	defer delete(a.inProgress, name)

	e := env{}
	for i, p := range decl.Params {
		e[p] = binding{t: args[i]}
	}
	a.execStmts(decl.Body, e)

	inst := &FuncInst{Decl: decl, Params: args, Vars: map[string]Type{}}
	for k, v := range e {
		inst.Vars[k] = v.t
	}
	for _, out := range decl.Outs {
		b, ok := e[out]
		if !ok {
			a.errorf(decl.Pos, "output %q of function %s is never assigned", out, name)
			b = binding{t: RealScalar}
		}
		inst.Results = append(inst.Results, b.t)
	}
	a.info.Funcs[name] = inst
	return inst
}

func (a *analyzer) execStmts(stmts []mlang.Stmt, e env) {
	for _, s := range stmts {
		a.execStmt(s, e)
	}
}

func (a *analyzer) execStmt(s mlang.Stmt, e env) {
	switch s := s.(type) {
	case *mlang.AssignStmt:
		a.execAssign(s, e)
	case *mlang.ExprStmt:
		a.expr(s.X, e)
	case *mlang.IfStmt:
		a.execIf(s, e)
	case *mlang.SwitchStmt:
		a.execSwitch(s, e)
	case *mlang.ForStmt:
		a.execFor(s, e)
	case *mlang.WhileStmt:
		a.execWhile(s, e)
	case *mlang.BreakStmt:
		if a.loopDepth == 0 {
			a.errorf(s.Pos, "break outside of loop")
		}
	case *mlang.ContinueStmt:
		if a.loopDepth == 0 {
			a.errorf(s.Pos, "continue outside of loop")
		}
	case *mlang.ReturnStmt:
		// Early return: fall through (conservative join already covers it).
	default:
		a.errorf(s.NodePos(), "unsupported statement %T", s)
	}
}

func (a *analyzer) execAssign(s *mlang.AssignStmt, e env) {
	if len(s.Lhs) > 1 {
		a.execMultiAssign(s, e)
		return
	}
	rt, rc := a.expr(s.Rhs, e)
	switch lhs := s.Lhs[0].(type) {
	case *mlang.IdentExpr:
		if IsBuiltin(lhs.Name) {
			// Shadowing a builtin is legal MATLAB but a foot-gun here.
			a.errorf(lhs.Pos, "assignment to builtin name %q is not supported", lhs.Name)
			return
		}
		e[lhs.Name] = binding{t: rt, c: rc}
		a.info.Types[lhs] = rt
	case *mlang.CallExpr:
		a.execIndexedAssign(lhs, rt, e)
	default:
		a.errorf(s.Pos, "invalid assignment target")
	}
}

// execIndexedAssign handles "x(i) = v", "x(i,j) = v", "x(:) = v",
// "x(a:b) = v". The target must already be bound (preallocated).
func (a *analyzer) execIndexedAssign(lhs *mlang.CallExpr, rt Type, e env) {
	id, ok := lhs.Fun.(*mlang.IdentExpr)
	if !ok {
		a.errorf(lhs.Pos, "invalid indexed assignment target")
		return
	}
	b, bound := e[id.Name]
	if !bound {
		a.errorf(lhs.Pos, "indexed assignment to undefined variable %q: preallocate with zeros(...) first", id.Name)
		e[id.Name] = binding{t: Type{Class: rt.Class, Shape: Shape{DimUnknown, DimUnknown}}}
		return
	}
	a.info.Calls[lhs] = CallIndex
	a.info.Types[id] = b.t
	// Type the index arguments (with 'end' in scope).
	idxTypes := a.indexArgs(lhs, b.t.Shape, e)
	selSh, err := a.indexedShape(b.t.Shape, lhs, idxTypes)
	if err != nil {
		a.errorf(lhs.Pos, "%v", err)
	} else if !selSh.IsScalar() || !rt.IsScalar() {
		// Slice assignment: value must conform (or be scalar fill).
		if !rt.IsScalar() {
			if _, err := broadcastShape(selSh, rt.Shape); err != nil {
				a.errorf(lhs.Pos, "cannot assign %s value to %s selection of %q", rt.Shape, selSh, id.Name)
			}
		}
	}
	// Element class may widen (real array receiving complex values).
	nt := Type{Class: b.t.Class.Join(rt.Class), Shape: b.t.Shape}
	e[id.Name] = binding{t: nt}
	a.info.Types[lhs] = Type{Class: nt.Class, Shape: selSh}
}

func (a *analyzer) execMultiAssign(s *mlang.AssignStmt, e env) {
	call, ok := s.Rhs.(*mlang.CallExpr)
	if !ok {
		a.errorf(s.Pos, "multiple assignment requires a function call on the right-hand side")
		return
	}
	results := a.callResults(call, len(s.Lhs), e)
	for i, lhs := range s.Lhs {
		var rt Type
		if i < len(results) {
			rt = results[i]
		} else {
			rt = RealScalar
		}
		id, ok := lhs.(*mlang.IdentExpr)
		if !ok {
			a.errorf(lhs.NodePos(), "multiple-assignment targets must be plain variables")
			continue
		}
		e[id.Name] = binding{t: rt}
		a.info.Types[id] = rt
	}
}

func (a *analyzer) execIf(s *mlang.IfStmt, e env) {
	a.condExpr(s.Cond, e)
	branches := make([]env, 0, 2+len(s.Elifs))
	b := e.clone()
	a.execStmts(s.Then, b)
	branches = append(branches, b)
	for _, c := range s.Elifs {
		a.condExpr(c.Cond, e)
		b := e.clone()
		a.execStmts(c.Body, b)
		branches = append(branches, b)
	}
	if s.Else != nil {
		b := e.clone()
		a.execStmts(s.Else, b)
		branches = append(branches, b)
	} else {
		branches = append(branches, e.clone())
	}
	// Merge all paths into e.
	first := branches[0]
	for k := range e {
		delete(e, k)
	}
	for k, v := range first {
		e[k] = v
	}
	for _, b := range branches[1:] {
		e.joinWith(b)
	}
}

// execSwitch types a switch like an if/elseif chain: the subject and
// every case value must be scalar, and the post-state is the join of
// every arm (plus fallthrough when there is no otherwise).
func (a *analyzer) execSwitch(s *mlang.SwitchStmt, e env) {
	st, _ := a.expr(s.Subject, e)
	if !st.IsScalar() && st.Shape.Known() {
		a.errorf(s.Subject.NodePos(), "switch subject must be scalar (strings are not supported)")
	}
	var branches []env
	for _, c := range s.Cases {
		vt, _ := a.expr(c.Value, e)
		if !vt.IsScalar() && vt.Shape.Known() {
			a.errorf(c.Value.NodePos(), "case value must be scalar")
		}
		b := e.clone()
		a.execStmts(c.Body, b)
		branches = append(branches, b)
	}
	if s.Otherwise != nil {
		b := e.clone()
		a.execStmts(s.Otherwise, b)
		branches = append(branches, b)
	} else {
		branches = append(branches, e.clone())
	}
	first := branches[0]
	for k := range e {
		delete(e, k)
	}
	for k, v := range first {
		e[k] = v
	}
	for _, b := range branches[1:] {
		e.joinWith(b)
	}
}

func (a *analyzer) condExpr(cond mlang.Expr, e env) {
	t, _ := a.expr(cond, e)
	if !t.IsScalar() && t.Shape.Known() {
		a.errorf(cond.NodePos(), "condition must be scalar, got %s", t.Shape)
	}
}

// loopVarType derives the induction variable type from a range.
func (a *analyzer) loopVarType(rng mlang.Expr, e env) binding {
	r, ok := rng.(*mlang.RangeExpr)
	if !ok {
		t, _ := a.expr(rng, e)
		if !t.IsScalar() {
			a.errorf(rng.NodePos(), "for-loop range must be a:b, a:s:b, or scalar; iterating matrix columns is not supported")
		}
		return binding{t: ScalarType(keepNumeric(t.Class))}
	}
	st, _ := a.expr(r.Start, e)
	pt, _ := a.expr(r.Stop, e)
	c := st.Class.Join(pt.Class)
	if r.Step != nil {
		et, _ := a.expr(r.Step, e)
		c = c.Join(et.Class)
	}
	return binding{t: ScalarType(keepNumeric(c))}
}

func (a *analyzer) execFor(s *mlang.ForStmt, e env) {
	in := e.clone()
	lv := a.loopVarType(s.Range, e)
	a.loopDepth++
	defer func() { a.loopDepth-- }()
	for i := 0; i < maxFixpointIters; i++ {
		before := e.clone()
		e[s.Var] = lv
		a.execStmts(s.Body, e)
		e.joinWith(in) // zero-trip path
		if e.equal(before) {
			return
		}
	}
	a.errorf(s.Pos, "type inference did not converge in for loop")
}

func (a *analyzer) execWhile(s *mlang.WhileStmt, e env) {
	in := e.clone()
	a.loopDepth++
	defer func() { a.loopDepth-- }()
	for i := 0; i < maxFixpointIters; i++ {
		before := e.clone()
		a.condExpr(s.Cond, e)
		a.execStmts(s.Body, e)
		e.joinWith(in)
		if e.equal(before) {
			return
		}
	}
	a.errorf(s.Pos, "type inference did not converge in while loop")
}

// record stores and returns the inferred type/const of e.
func (a *analyzer) record(x mlang.Expr, t Type, c *float64) (Type, *float64) {
	a.info.Types[x] = t
	if c != nil && t.IsScalar() {
		a.info.Consts[x] = *c
	} else {
		delete(a.info.Consts, x)
		c = nil
	}
	return t, c
}

func fp(v float64) *float64 { return &v }

// expr infers the type (and constant value, when statically known) of x.
func (a *analyzer) expr(x mlang.Expr, e env) (Type, *float64) {
	switch x := x.(type) {
	case *mlang.NumberExpr:
		if x.Imag {
			return a.record(x, ComplexScalar, nil)
		}
		if x.Value == math.Trunc(x.Value) && math.Abs(x.Value) < 1e15 {
			return a.record(x, IntScalar, fp(x.Value))
		}
		return a.record(x, RealScalar, fp(x.Value))
	case *mlang.StringExpr:
		a.errorf(x.Pos, "string values are not supported in compiled code")
		return a.record(x, RealScalar, nil)
	case *mlang.IdentExpr:
		if b, ok := e[x.Name]; ok {
			return a.record(x, b.t, b.c)
		}
		if bi := LookupBuiltin(x.Name); bi != nil && bi.Kind == BKConstant {
			t, c := constantValue(x.Name)
			return a.record(x, t, c)
		}
		a.errorf(x.Pos, "undefined variable or function %q", x.Name)
		return a.record(x, RealScalar, nil)
	case *mlang.BinaryExpr:
		return a.binaryExpr(x, e)
	case *mlang.UnaryExpr:
		return a.unaryExpr(x, e)
	case *mlang.TransposeExpr:
		t, _ := a.expr(x.X, e)
		return a.record(x, Type{Class: t.Class, Shape: t.Shape.Transposed()}, nil)
	case *mlang.RangeExpr:
		return a.rangeExpr(x, e)
	case *mlang.MatrixExpr:
		return a.matrixExpr(x, e)
	case *mlang.CallExpr:
		res := a.callResults(x, 1, e)
		if len(res) == 0 {
			return a.record(x, RealScalar, nil)
		}
		c := a.callConst(x)
		return a.record(x, res[0], c)
	case *mlang.EndExpr:
		if len(a.endStack) == 0 {
			a.errorf(x.Pos, "'end' used outside of an index expression")
			return a.record(x, IntScalar, nil)
		}
		d := a.endStack[len(a.endStack)-1]
		if d != DimUnknown {
			return a.record(x, IntScalar, fp(float64(d)))
		}
		return a.record(x, IntScalar, nil)
	case *mlang.ColonExpr:
		a.errorf(x.Pos, "':' is only valid inside an index expression")
		return a.record(x, RealScalar, nil)
	}
	a.errorf(x.NodePos(), "unsupported expression %T", x)
	return RealScalar, nil
}

func constantValue(name string) (Type, *float64) {
	switch name {
	case "pi":
		return RealScalar, fp(math.Pi)
	case "eps":
		return RealScalar, fp(2.220446049250313e-16)
	}
	return RealScalar, nil
}

func (a *analyzer) unaryExpr(x *mlang.UnaryExpr, e env) (Type, *float64) {
	t, c := a.expr(x.X, e)
	switch x.Op {
	case mlang.OpNeg:
		if c != nil {
			return a.record(x, Type{Class: keepNumeric(t.Class), Shape: t.Shape}, fp(-*c))
		}
		return a.record(x, Type{Class: keepNumeric(t.Class), Shape: t.Shape}, nil)
	case mlang.OpPos:
		return a.record(x, Type{Class: keepNumeric(t.Class), Shape: t.Shape}, c)
	case mlang.OpNot:
		if t.Class == Complex {
			a.errorf(x.Pos, "operator ~ is undefined for complex values")
		}
		var nc *float64
		if c != nil {
			if *c == 0 {
				nc = fp(1)
			} else {
				nc = fp(0)
			}
		}
		return a.record(x, Type{Class: Bool, Shape: t.Shape}, nc)
	}
	return a.record(x, t, nil)
}

func (a *analyzer) binaryExpr(x *mlang.BinaryExpr, e env) (Type, *float64) {
	lt, lc := a.expr(x.X, e)
	rt, rc := a.expr(x.Y, e)
	op := x.Op

	fail := func(format string, args ...interface{}) (Type, *float64) {
		a.errorf(x.Pos, format, args...)
		return a.record(x, RealScalar, nil)
	}

	switch op {
	case mlang.OpAdd, mlang.OpSub, mlang.OpElMul, mlang.OpElDiv, mlang.OpElPow:
		sh, err := broadcastShape(lt.Shape, rt.Shape)
		if err != nil {
			return fail("operator %s: %v", op, err)
		}
		cls := arithClass(op, lt.Class, rt.Class)
		var c *float64
		if lc != nil && rc != nil {
			if v, ok := foldArith(op, *lc, *rc); ok {
				c = fp(v)
				if cls == Real && v == math.Trunc(v) && op != mlang.OpElDiv {
					// Keep literal arithmetic on integers integral.
				}
			}
		}
		return a.record(x, Type{Class: cls, Shape: sh}, c)

	case mlang.OpMatMul:
		if lt.IsScalar() || rt.IsScalar() {
			sh, _ := broadcastShape(lt.Shape, rt.Shape)
			cls := arithClass(mlang.OpElMul, lt.Class, rt.Class)
			var c *float64
			if lc != nil && rc != nil {
				c = fp(*lc * *rc)
			}
			return a.record(x, Type{Class: cls, Shape: sh}, c)
		}
		inner, ok := unifyDim(lt.Shape.Cols, rt.Shape.Rows)
		_ = inner
		if !ok {
			return fail("matrix multiply: inner dimensions %s and %s do not agree", lt.Shape, rt.Shape)
		}
		cls := arithClass(mlang.OpElMul, lt.Class, rt.Class)
		return a.record(x, Type{Class: cls, Shape: Shape{Rows: lt.Shape.Rows, Cols: rt.Shape.Cols}}, nil)

	case mlang.OpMatDiv:
		if !rt.IsScalar() {
			return fail("matrix right-division by a non-scalar is not supported (use ./ or a solver)")
		}
		cls := arithClass(mlang.OpElDiv, lt.Class, rt.Class)
		var c *float64
		if lc != nil && rc != nil && *rc != 0 {
			c = fp(*lc / *rc)
		}
		return a.record(x, Type{Class: cls, Shape: lt.Shape}, c)

	case mlang.OpMatLDiv:
		if !lt.IsScalar() {
			return fail("matrix left-division by a non-scalar is not supported")
		}
		cls := arithClass(mlang.OpElDiv, lt.Class, rt.Class)
		var c *float64
		if lc != nil && rc != nil && *lc != 0 {
			c = fp(*rc / *lc)
		}
		return a.record(x, Type{Class: cls, Shape: rt.Shape}, c)

	case mlang.OpMatPow:
		if !lt.IsScalar() || !rt.IsScalar() {
			return fail("matrix power is not supported; use .^ for elementwise power")
		}
		cls := arithClass(mlang.OpElPow, lt.Class, rt.Class)
		var c *float64
		if lc != nil && rc != nil {
			c = fp(math.Pow(*lc, *rc))
		}
		return a.record(x, Type{Class: cls, Shape: ScalarShape}, c)

	case mlang.OpLt, mlang.OpLe, mlang.OpGt, mlang.OpGe, mlang.OpEq, mlang.OpNe:
		sh, err := broadcastShape(lt.Shape, rt.Shape)
		if err != nil {
			return fail("operator %s: %v", op, err)
		}
		if (lt.Class == Complex || rt.Class == Complex) && op != mlang.OpEq && op != mlang.OpNe {
			a.warnf(x.Pos, "ordering comparison of complex values compares real parts only")
		}
		var c *float64
		if lc != nil && rc != nil {
			c = fp(b2f(foldRel(op, *lc, *rc)))
		}
		return a.record(x, Type{Class: Bool, Shape: sh}, c)

	case mlang.OpAndAnd, mlang.OpOrOr:
		if !lt.IsScalar() || !rt.IsScalar() {
			return fail("operators && and || require scalar operands")
		}
		return a.record(x, BoolScalar, nil)

	case mlang.OpAnd, mlang.OpOr:
		sh, err := broadcastShape(lt.Shape, rt.Shape)
		if err != nil {
			return fail("operator %s: %v", op, err)
		}
		return a.record(x, Type{Class: Bool, Shape: sh}, nil)
	}
	return fail("unsupported operator %s", op)
}

// arithClass computes the result class of an arithmetic operator.
func arithClass(op mlang.BinOp, x, y Class) Class {
	j := keepNumeric(x.Join(y))
	switch op {
	case mlang.OpElDiv, mlang.OpMatDiv, mlang.OpMatLDiv:
		if j == Int {
			j = Real // 3/2 == 1.5
		}
	case mlang.OpElPow, mlang.OpMatPow:
		if j == Int {
			j = Real // 2^-1 == 0.5
		}
	}
	return j
}

func foldArith(op mlang.BinOp, x, y float64) (float64, bool) {
	switch op {
	case mlang.OpAdd:
		return x + y, true
	case mlang.OpSub:
		return x - y, true
	case mlang.OpElMul, mlang.OpMatMul:
		return x * y, true
	case mlang.OpElDiv, mlang.OpMatDiv:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case mlang.OpElPow, mlang.OpMatPow:
		return math.Pow(x, y), true
	}
	return 0, false
}

func foldRel(op mlang.BinOp, x, y float64) bool {
	switch op {
	case mlang.OpLt:
		return x < y
	case mlang.OpLe:
		return x <= y
	case mlang.OpGt:
		return x > y
	case mlang.OpGe:
		return x >= y
	case mlang.OpEq:
		return x == y
	case mlang.OpNe:
		return x != y
	}
	return false
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (a *analyzer) rangeExpr(x *mlang.RangeExpr, e env) (Type, *float64) {
	st, sc := a.expr(x.Start, e)
	et, ec := a.expr(x.Stop, e)
	cls := keepNumeric(st.Class.Join(et.Class))
	var stepc *float64 = fp(1)
	if x.Step != nil {
		tt, tc := a.expr(x.Step, e)
		cls = keepNumeric(cls.Join(tt.Class))
		stepc = tc
	}
	if cls == Complex {
		a.errorf(x.Pos, "range endpoints must be real")
		cls = Real
	}
	n := DimUnknown
	if sc != nil && ec != nil && stepc != nil && *stepc != 0 {
		k := math.Floor((*ec-*sc)/(*stepc)) + 1
		if k < 0 {
			k = 0
		}
		n = int(k)
	}
	return a.record(x, Type{Class: cls, Shape: Shape{Rows: 1, Cols: n}}, nil)
}

func (a *analyzer) matrixExpr(x *mlang.MatrixExpr, e env) (Type, *float64) {
	if len(x.Rows) == 0 {
		return a.record(x, Type{Class: Real, Shape: Shape{0, 0}}, nil)
	}
	cls := Bool
	totalRows := 0
	cols := -2 // sentinel: not yet seen
	rowsKnown := true
	for _, row := range x.Rows {
		rRows := -2
		rCols := 0
		colsKnown := true
		for _, el := range row {
			t, _ := a.expr(el, e)
			cls = cls.Join(t.Class)
			if t.Shape.Rows == DimUnknown {
				rRows = DimUnknown
			} else if rRows == -2 {
				rRows = t.Shape.Rows
			} else if rRows != DimUnknown && rRows != t.Shape.Rows {
				a.errorf(el.NodePos(), "vertical dimension mismatch in matrix row")
			}
			if t.Shape.Cols == DimUnknown {
				colsKnown = false
			} else {
				rCols += t.Shape.Cols
			}
		}
		if rRows == -2 {
			rRows = 0
		}
		if !colsKnown {
			rCols = DimUnknown
		}
		if cols == -2 {
			cols = rCols
		} else if cols != DimUnknown && rCols != DimUnknown && cols != rCols {
			a.errorf(x.Pos, "matrix rows have inconsistent lengths (%d vs %d)", cols, rCols)
		} else if rCols == DimUnknown {
			cols = DimUnknown
		}
		if rRows == DimUnknown {
			rowsKnown = false
		} else {
			totalRows += rRows
		}
	}
	if !rowsKnown {
		totalRows = DimUnknown
	}
	if cols == -2 {
		cols = 0
	}
	return a.record(x, Type{Class: cls, Shape: Shape{Rows: totalRows, Cols: cols}}, nil)
}

// callResults resolves a CallExpr (index, builtin, or user call) and
// returns its result types when used with nresults outputs.
func (a *analyzer) callResults(x *mlang.CallExpr, nresults int, e env) []Type {
	id, ok := x.Fun.(*mlang.IdentExpr)
	if !ok {
		a.errorf(x.Pos, "chained indexing/calls are not supported")
		a.expr(x.Fun, e)
		return []Type{RealScalar}
	}

	// Variable in scope: indexing.
	if b, ok := e[id.Name]; ok {
		a.info.Calls[x] = CallIndex
		a.info.Types[id] = b.t
		if nresults > 1 {
			a.errorf(x.Pos, "indexing produces a single value")
		}
		idxTypes := a.indexArgs(x, b.t.Shape, e)
		sh, err := a.indexedShape(b.t.Shape, x, idxTypes)
		if err != nil {
			a.errorf(x.Pos, "%v", err)
			sh = ScalarShape
		}
		return []Type{{Class: b.t.Class, Shape: sh}}
	}

	// Builtin.
	if bi := LookupBuiltin(id.Name); bi != nil {
		a.info.Calls[x] = CallBuiltin
		if len(x.Args) < bi.MinArgs || len(x.Args) > bi.MaxArgs {
			a.errorf(x.Pos, "%s expects %d..%d arguments, got %d", id.Name, bi.MinArgs, bi.MaxArgs, len(x.Args))
			return []Type{RealScalar}
		}
		if nresults > bi.NumResults {
			a.errorf(x.Pos, "%s returns at most %d values", id.Name, bi.NumResults)
		}
		args := make([]Arg, len(x.Args))
		for i, ax := range x.Args {
			if _, isColon := ax.(*mlang.ColonExpr); isColon {
				a.errorf(ax.NodePos(), "':' argument is only valid when indexing")
				args[i] = Arg{Type: RealScalar}
				continue
			}
			t, c := a.expr(ax, e)
			args[i] = Arg{Type: t, Const: c}
		}
		res, err := bi.Result(args, nresults)
		if err != nil {
			a.errorf(x.Pos, "%s: %v", id.Name, err)
			return []Type{RealScalar}
		}
		return res
	}

	// User function.
	if a.decls[id.Name] != nil {
		a.info.Calls[x] = CallUser
		args := make([]Type, len(x.Args))
		for i, ax := range x.Args {
			t, _ := a.expr(ax, e)
			args[i] = t
		}
		inst := a.instantiate(id.Name, args, x.Pos)
		if inst == nil {
			return []Type{RealScalar}
		}
		if nresults > len(inst.Results) {
			a.errorf(x.Pos, "function %s returns %d values, %d requested", id.Name, len(inst.Results), nresults)
		}
		return inst.Results
	}

	a.errorf(x.Pos, "undefined variable or function %q", id.Name)
	return []Type{RealScalar}
}

// callConst computes the constant value of a builtin call when its
// arguments are constants (currently length/numel/size on known shapes).
func (a *analyzer) callConst(x *mlang.CallExpr) *float64 {
	if a.info.Calls[x] != CallBuiltin {
		return nil
	}
	id := x.Fun.(*mlang.IdentExpr)
	if len(x.Args) == 0 {
		return nil
	}
	t := a.info.Types[x.Args[0]]
	switch id.Name {
	case "length":
		if t.Shape.Known() {
			n := t.Shape.Rows
			if t.Shape.Cols > n {
				n = t.Shape.Cols
			}
			if t.Shape.Len() == 0 {
				n = 0 // length of an empty array is 0
			}
			return fp(float64(n))
		}
	case "numel":
		if t.Shape.Known() {
			return fp(float64(t.Shape.Len()))
		}
	case "size":
		if len(x.Args) == 2 {
			if d, ok := a.info.Consts[x.Args[1]]; ok {
				switch int(d) {
				case 1:
					if t.Shape.Rows != DimUnknown {
						return fp(float64(t.Shape.Rows))
					}
				case 2:
					if t.Shape.Cols != DimUnknown {
						return fp(float64(t.Shape.Cols))
					}
				}
			}
		}
	case "abs", "floor", "ceil", "round", "fix", "sqrt":
		if c, ok := a.info.Consts[x.Args[0]]; ok {
			switch id.Name {
			case "abs":
				return fp(math.Abs(c))
			case "floor":
				return fp(math.Floor(c))
			case "ceil":
				return fp(math.Ceil(c))
			case "round":
				return fp(math.Round(c))
			case "fix":
				return fp(math.Trunc(c))
			case "sqrt":
				if c >= 0 {
					return fp(math.Sqrt(c))
				}
			}
		}
	}
	return nil
}

// indexArgs types the index arguments of x (indexing an array of shape
// sh), handling ':' and pushing the right 'end' extents.
func (a *analyzer) indexArgs(x *mlang.CallExpr, sh Shape, e env) []Type {
	n := len(x.Args)
	types := make([]Type, n)
	for i, ax := range x.Args {
		// Determine what 'end' means in this position.
		var extent int
		if n == 1 {
			extent = sh.Len() // linear indexing
		} else if i == 0 {
			extent = sh.Rows
		} else if i == 1 {
			extent = sh.Cols
		} else {
			extent = 1
		}
		if _, isColon := ax.(*mlang.ColonExpr); isColon {
			// ':' selects the whole dimension.
			types[i] = Type{Class: Int, Shape: Shape{Rows: 1, Cols: extent}}
			a.info.Types[ax] = types[i]
			continue
		}
		a.endStack = append(a.endStack, extent)
		t, _ := a.expr(ax, e)
		a.endStack = a.endStack[:len(a.endStack)-1]
		if t.Class == Complex {
			a.errorf(ax.NodePos(), "complex values cannot be used as indices")
		}
		types[i] = t
	}
	if n > 2 {
		a.errorf(x.Pos, "at most 2 index dimensions are supported")
	}
	return types
}

// indexedShape computes the shape of x(args...) given the base shape.
func (a *analyzer) indexedShape(base Shape, x *mlang.CallExpr, idx []Type) (Shape, error) {
	switch len(idx) {
	case 0:
		return base, nil
	case 1:
		it := idx[0]
		if _, isColon := x.Args[0].(*mlang.ColonExpr); isColon {
			// x(:) is always a column vector.
			return Shape{Rows: base.Len(), Cols: 1}, nil
		}
		if it.IsScalar() && it.Class != Bool {
			return ScalarShape, nil
		}
		if !it.Shape.IsVector() && it.Shape.Known() {
			return Shape{}, fmt.Errorf("matrix-valued indices are not supported")
		}
		n := it.Shape.Len()
		if it.Class == Bool {
			// Logical indexing: the mask must conform to the base and the
			// selection count is dynamic.
			if n != DimUnknown && base.Len() != DimUnknown && n != base.Len() {
				return Shape{}, fmt.Errorf("logical index length %d does not match array length %d", n, base.Len())
			}
			n = DimUnknown
		}
		// Result orientation follows the base when the base is a vector,
		// else the index.
		if base.IsColVec() && !base.IsScalar() {
			return Shape{Rows: n, Cols: 1}, nil
		}
		if base.IsRowVec() {
			return Shape{Rows: 1, Cols: n}, nil
		}
		if it.Shape.IsColVec() && !it.Shape.IsScalar() {
			return Shape{Rows: n, Cols: 1}, nil
		}
		return Shape{Rows: 1, Cols: n}, nil
	case 2:
		rsel, csel := idx[0], idx[1]
		if rsel.Class == Bool && !rsel.IsScalar() || csel.Class == Bool && !csel.IsScalar() {
			return Shape{}, fmt.Errorf("logical indexing is supported for linear (single-subscript) indexing only")
		}
		r := selLen(rsel)
		c := selLen(csel)
		return Shape{Rows: r, Cols: c}, nil
	}
	return Shape{}, fmt.Errorf("too many indices")
}

func selLen(t Type) int {
	if t.IsScalar() {
		return 1
	}
	return t.Shape.Len()
}

// SortedFuncNames returns analyzed function names in deterministic order.
func (in *Info) SortedFuncNames() []string {
	names := make([]string, 0, len(in.Funcs))
	for n := range in.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
