// Package sema implements semantic analysis for the MATLAB subset:
// symbol resolution (distinguishing array indexing from function calls),
// a builtin-function catalog, and iterative class/shape inference.
//
// MATLAB is dynamically typed; to generate efficient C the compiler
// infers, for every expression, a class (logical ⊑ integer ⊑ real ⊑
// complex) and a shape (rows × cols, where a dimension may be unknown).
// Inference runs to a fixpoint over loops so types only widen, mirroring
// the static specialization step every MATLAB-to-C flow performs.
package sema

import (
	"fmt"
	"strings"
)

// Class is the element class of a value, a small lattice ordered
// Bool ⊑ Int ⊑ Real ⊑ Complex. Int denotes a double that is known to
// hold an integral value (loop counters, sizes, indices); the distinction
// lets the backends use integer registers and addressing arithmetic.
type Class int

// Element classes.
const (
	Bool Class = iota
	Int
	Real
	Complex
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Bool:
		return "logical"
	case Int:
		return "int"
	case Real:
		return "real"
	case Complex:
		return "complex"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Join returns the least upper bound of two classes.
func (c Class) Join(d Class) Class {
	if d > c {
		return d
	}
	return c
}

// IsNumeric reports whether the class participates in arithmetic.
func (c Class) IsNumeric() bool { return true }

// DimUnknown marks a dimension whose extent is not known statically.
const DimUnknown = -1

// Shape is the statically known extent of a value: rows × cols. MATLAB
// treats every value as a 2-D matrix; scalars are 1×1 and vectors have
// one unit dimension. A dimension of DimUnknown is symbolic (carried at
// run time).
type Shape struct {
	Rows int
	Cols int
}

// Common shapes.
var (
	ScalarShape = Shape{1, 1}
)

// RowVec returns a 1×n shape.
func RowVec(n int) Shape { return Shape{1, n} }

// ColVec returns an n×1 shape.
func ColVec(n int) Shape { return Shape{n, 1} }

// IsScalar reports whether the shape is statically 1×1.
func (s Shape) IsScalar() bool { return s.Rows == 1 && s.Cols == 1 }

// IsRowVec reports whether the shape is statically a row vector.
func (s Shape) IsRowVec() bool { return s.Rows == 1 }

// IsColVec reports whether the shape is statically a column vector.
func (s Shape) IsColVec() bool { return s.Cols == 1 }

// IsVector reports whether one dimension is statically 1.
func (s Shape) IsVector() bool { return s.Rows == 1 || s.Cols == 1 }

// Known reports whether both dimensions are statically known.
func (s Shape) Known() bool { return s.Rows != DimUnknown && s.Cols != DimUnknown }

// Len returns the number of elements, or DimUnknown if any dimension is
// unknown.
func (s Shape) Len() int {
	if !s.Known() {
		return DimUnknown
	}
	return s.Rows * s.Cols
}

// Transposed returns the shape with dimensions swapped.
func (s Shape) Transposed() Shape { return Shape{Rows: s.Cols, Cols: s.Rows} }

// String renders the shape as "RxC" with '?' for unknown dims.
func (s Shape) String() string {
	d := func(n int) string {
		if n == DimUnknown {
			return "?"
		}
		return fmt.Sprintf("%d", n)
	}
	return d(s.Rows) + "x" + d(s.Cols)
}

// joinDim merges two dimension extents: equal stays, different widens to
// unknown.
func joinDim(a, b int) int {
	if a == b {
		return a
	}
	return DimUnknown
}

// Join widens two shapes dimension-wise.
func (s Shape) Join(t Shape) Shape {
	return Shape{Rows: joinDim(s.Rows, t.Rows), Cols: joinDim(s.Cols, t.Cols)}
}

// Type pairs a class with a shape.
type Type struct {
	Class Class
	Shape Shape
}

// Convenience constructors.
func ScalarType(c Class) Type { return Type{Class: c, Shape: ScalarShape} }

// RealScalar is the type of a plain MATLAB double scalar.
var RealScalar = ScalarType(Real)

// IntScalar is the type of an integral scalar (index, size, counter).
var IntScalar = ScalarType(Int)

// BoolScalar is the type of a scalar logical.
var BoolScalar = ScalarType(Bool)

// ComplexScalar is the type of a complex scalar.
var ComplexScalar = ScalarType(Complex)

// IsScalar reports whether the type is a 1×1 value.
func (t Type) IsScalar() bool { return t.Shape.IsScalar() }

// Join widens both components.
func (t Type) Join(u Type) Type {
	return Type{Class: t.Class.Join(u.Class), Shape: t.Shape.Join(u.Shape)}
}

// String renders "class RxC" ("class" alone for scalars).
func (t Type) String() string {
	if t.IsScalar() {
		return t.Class.String()
	}
	return t.Class.String() + " " + t.Shape.String()
}

// Equal reports exact equality of class and shape.
func (t Type) Equal(u Type) bool { return t.Class == u.Class && t.Shape == u.Shape }

// Signature renders a parameter-type list compactly (memo key for
// per-signature function analysis).
func Signature(ts []Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}
