package isx

import (
	"context"

	"mat2c/internal/bench"
	"mat2c/internal/core"
	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
	"mat2c/internal/vm"
)

// profile is one kernel's compiled program annotated with dynamic
// execution counts: sites[pc] is the post-isel IR expression that
// prog.Instrs[pc] computes (nil for control flow and moves) and
// counts[pc] how often it executed on the profiled input.
type profile struct {
	kernel *bench.Kernel
	n      int
	base   int64 // cycles of the profiled base run
	sites  []ir.Expr
	counts []int64
}

// profileKernel compiles k with the full proposed pipeline for proc and
// runs it once under the VM profiler. Mining the post-isel IR keeps the
// candidate pool self-consistent: shapes the target already fuses are
// intrinsics by now, so every mined pattern is genuinely new on proc.
func profileKernel(ctx context.Context, proc *pdesc.Processor, k *bench.Kernel, scale float64) (*profile, error) {
	res, err := core.CompileContext(ctx, k.Source, k.Entry, k.Params, core.Proposed(proc))
	if err != nil {
		return nil, err
	}
	prog, sites, err := vm.LowerWithSites(res.Func)
	if err != nil {
		return nil, err
	}
	n := bench.SizeFor(k, scale)
	args := k.Inputs(n)
	m := vm.NewMachine(proc)
	m.Profile = true
	if _, err := m.RunContext(ctx, prog, bench.CloneArgs(args)...); err != nil {
		return nil, err
	}
	counts := make([]int64, len(m.PCCounts))
	copy(counts, m.PCCounts)
	return &profile{kernel: k, n: n, base: m.Cycles, sites: sites, counts: counts}, nil
}
