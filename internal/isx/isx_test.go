package isx

import (
	"context"
	"encoding/json"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
)

// findCandidate returns the candidate of rep whose semantics is
// alpha-equivalent to sem, or nil.
func findCandidate(t *testing.T, rep *Report, sem string) *Candidate {
	t.Helper()
	want, err := ir.CachedPattern(sem)
	if err != nil {
		t.Fatalf("bad wanted pattern %q: %v", sem, err)
	}
	for _, c := range rep.Candidates {
		got, err := ir.CachedPattern(c.Semantics)
		if err != nil {
			t.Fatalf("candidate %s has bad semantics %q: %v", c.Name, c.Semantics, err)
		}
		if got.Canonical() == want.Canonical() {
			return c
		}
	}
	return nil
}

func scalarProc(t *testing.T) *pdesc.Processor {
	t.Helper()
	p := pdesc.Builtin("scalar")
	if p == nil {
		t.Fatal("no builtin scalar processor")
	}
	return p
}

// The miner must rediscover the multiply-accumulate fusion from the
// fir profile of a plain scalar target, and the measured speedup of
// the verified candidate must match the profile-based estimate.
func TestMineFirDiscoversFma(t *testing.T) {
	rep, err := Mine(scalarProc(t), Options{Kernels: []string{"fir"}})
	if err != nil {
		t.Fatal(err)
	}
	c := findCandidate(t, rep, "float:add(p0,mul(p1,p2))")
	if c == nil {
		t.Fatalf("no fma-shaped candidate mined; got %s", dump(rep))
	}
	if c.ScalarCycles != 1 {
		t.Errorf("fma-shaped candidate costs %d cycles, want 1", c.ScalarCycles)
	}
	checkVerified(t, c, 0.05)
}

// Complex kernels on a scalar datapath must yield a complex
// multiply-accumulate candidate with a large measured win — the
// miner rediscovering the paper's hand-designed complex ISA.
func TestMineCfirDiscoversComplexMac(t *testing.T) {
	rep, err := Mine(scalarProc(t), Options{Kernels: []string{"cfir"}})
	if err != nil {
		t.Fatal(err)
	}
	c := findCandidate(t, rep, "complex:add(p0,mul(p1,p2))")
	if c == nil {
		t.Fatalf("no cmac-shaped candidate mined; got %s", dump(rep))
	}
	checkVerified(t, c, 0.10)
}

// checkVerified asserts that c was selected and measurably improved at
// least one kernel by minImprove, and that on every verified kernel
// the profile-based estimate agrees with the measured saving within a
// factor of two.
func checkVerified(t *testing.T, c *Candidate, minImprove float64) {
	t.Helper()
	if len(c.Deltas) == 0 {
		t.Fatalf("candidate %s (%s) was not verified", c.Name, c.Semantics)
	}
	improved := false
	for _, d := range c.Deltas {
		if d.Err != "" {
			t.Errorf("%s on %s: %s", c.Name, d.Kernel, d.Err)
			continue
		}
		if d.Selected == 0 {
			t.Errorf("%s on %s: never selected", c.Name, d.Kernel)
			continue
		}
		if d.Measured <= 0 {
			t.Errorf("%s on %s: no measured saving (base %d, new %d)", c.Name, d.Kernel, d.BaseCycles, d.NewCycles)
			continue
		}
		ratio := float64(d.Estimated) / float64(d.Measured)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s on %s: estimate %d vs measured %d (ratio %.2f) out of tolerance",
				c.Name, d.Kernel, d.Estimated, d.Measured, ratio)
		}
		if float64(d.Measured) >= minImprove*float64(d.BaseCycles) {
			improved = true
		}
	}
	if !improved {
		t.Errorf("candidate %s never improved a kernel by %.0f%%: %+v", c.Name, minImprove*100, c.Deltas)
	}
}

// Acceptance: on at least two kernels the miner finds an extension not
// in the base processor with a measured >= 10% cycle improvement.
func TestMineTenPercentOnTwoKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	proc := scalarProc(t)
	won := 0
	for _, kn := range []string{"fir", "cfir", "xcorr"} {
		rep, err := Mine(proc, Options{Kernels: []string{kn}, Top: 4})
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for _, c := range rep.Candidates {
			if proc.HasInstr(c.Name) {
				t.Errorf("mined %s already exists in base processor", c.Name)
			}
			for _, d := range c.Deltas {
				if d.Err == "" && d.Selected > 0 && d.Measured > 0 {
					if f := float64(d.Measured) / float64(d.BaseCycles); f > best {
						best = f
					}
				}
			}
		}
		t.Logf("%s: best measured improvement %.1f%%", kn, best*100)
		if best >= 0.10 {
			won++
		}
	}
	if won < 2 {
		t.Errorf("mined a >=10%% win on %d kernels, want >= 2", won)
	}
}

// Mining the vectorized wide target must produce vector forms, and
// deriving a processor from the candidates must validate.
func TestMineVectorFormsAndExtend(t *testing.T) {
	base := pdesc.Builtin("nosimd")
	if base == nil {
		t.Fatal("no builtin nosimd processor")
	}
	// nosimd has the complex ISA but no vectors; use wide8 stripped of
	// its custom instructions to force purely mined vector candidates.
	wide, err := pdesc.Builtin("wide8").Derive("wide8-bare", func(q *pdesc.Processor) {
		q.Instructions = nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Mine(wide, Options{Kernels: []string{"fir"}, NoVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Candidates) == 0 {
		t.Fatal("no candidates on bare wide target")
	}
	var vec *Candidate
	for _, c := range rep.Candidates {
		if c.HasVector {
			vec = c
			break
		}
	}
	if vec == nil {
		t.Fatalf("no vector-form candidate on an 8-lane target: %s", dump(rep))
	}
	ext, err := Extend(wide, "wide8-mined", rep.Candidates...)
	if err != nil {
		t.Fatalf("extend: %v", err)
	}
	if !ext.HasInstr(vec.Name) || !ext.HasInstr("v"+vec.Name) {
		t.Errorf("extended processor missing %s/v%s", vec.Name, vec.Name)
	}
	if err := ext.Validate(); err != nil {
		t.Errorf("extended processor invalid: %v", err)
	}
}

// Mining must be deterministic: two runs produce identical reports.
func TestMineDeterministic(t *testing.T) {
	opts := Options{Kernels: []string{"fir", "iirsos"}, NoVerify: true}
	a, err := Mine(scalarProc(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(scalarProc(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if dump(a) != dump(b) {
		t.Errorf("non-deterministic reports:\n%s\nvs\n%s", dump(a), dump(b))
	}
}

func TestMineUnknownKernel(t *testing.T) {
	if _, err := Mine(scalarProc(t), Options{Kernels: []string{"nope"}}); err == nil {
		t.Error("mining an unknown kernel should fail")
	}
}

func TestMineCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineContext(ctx, scalarProc(t), Options{Kernels: []string{"fir"}}); err == nil {
		t.Error("cancelled mine should fail")
	}
}

func dump(v interface{}) string {
	b, _ := json.MarshalIndent(v, "", " ")
	return string(b)
}
