package isx

import (
	"fmt"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
	"mat2c/internal/vm"
)

// Candidate enumeration. Every profiled instruction site roots a family
// of candidate patterns: connected subtrees of its IR expression where
// each interior node is an allowed arithmetic operation in the
// pattern's base and every edge to a non-expanded child is cut into a
// parameter. Structurally identical cuts share one parameter, so
// shapes like mul(p0,p0) are discovered, and the per-occurrence saving
// is weighted by the site's dynamic execution count.

// mineProfile enumerates candidates for every profiled site of pr and
// accumulates them into agg keyed by canonical pattern.
func mineProfile(proc *pdesc.Processor, pr *profile, maxNodes int, agg map[string]*Candidate) {
	en := &enumerator{proc: proc, maxNodes: maxNodes}
	for pc, site := range pr.sites {
		if site == nil || pc >= len(pr.counts) || pr.counts[pc] == 0 {
			continue
		}
		k := site.Kind()
		if k.Base != ir.Float && k.Base != ir.Complex {
			continue
		}
		for _, o := range en.expand(site, k.Base, k.Lanes, maxNodes) {
			record(agg, pr, o, k, pr.counts[pc])
		}
	}
}

type enumerator struct {
	proc     *pdesc.Processor
	maxNodes int
}

// option is one way to pattern-ize a subtree: a pattern node whose
// parameters index cuts (the expressions left outside the pattern),
// with the expanded issue cost of its operations at the occurrence's
// lane count and at one lane, and the area proxy of a fused unit.
type option struct {
	node       *ir.PatNode
	cuts       []ir.Expr
	nodes      int
	expCost    int64
	scalarCost int64
	area       float64
}

// expand returns every option rooted at e as an operation node, using
// at most budget operation nodes. Parameters of each returned node
// index its own cuts slice in order.
func (en *enumerator) expand(e ir.Expr, base ir.BaseKind, lanes int, budget int) []option {
	if budget < 1 {
		return nil
	}
	switch x := e.(type) {
	case *ir.Bin:
		if x.K.Base != base || x.K.Lanes != lanes || !ir.PatternBinOp(base, x.Op) {
			return nil
		}
		selfExp := int64(en.proc.Cost(vm.BinChargeClass(x.Op, base, lanes)))
		selfScalar := int64(en.proc.Cost(vm.BinChargeClass(x.Op, base, 1)))
		selfArea := areaOf(x.Op, base)
		var out []option
		for _, ox := range en.childOptions(x.X, base, lanes, budget-1) {
			for _, oy := range en.childOptions(x.Y, base, lanes, budget-1-ox.nodes) {
				cuts := make([]ir.Expr, 0, len(ox.cuts)+len(oy.cuts))
				cuts = append(append(cuts, ox.cuts...), oy.cuts...)
				if len(cuts) > ir.MaxPatternArity {
					continue
				}
				out = append(out, option{
					node:       &ir.PatNode{Param: -1, Op: x.Op, X: ox.node, Y: shiftNode(oy.node, len(ox.cuts))},
					cuts:       cuts,
					nodes:      1 + ox.nodes + oy.nodes,
					expCost:    selfExp + ox.expCost + oy.expCost,
					scalarCost: selfScalar + ox.scalarCost + oy.scalarCost,
					area:       selfArea + ox.area + oy.area,
				})
			}
		}
		return out
	case *ir.Un:
		if x.K.Base != base || x.K.Lanes != lanes || !ir.PatternUnOp(base, x.Op) {
			return nil
		}
		// The operand must live in the same base: float abs must not
		// swallow a complex magnitude (abs : complex → float).
		if x.X.Kind().Base != base {
			return nil
		}
		class, mult := vm.UnChargeClass(x.Op, base, lanes)
		selfExp := int64(en.proc.Cost(class)) * mult
		sclass, _ := vm.UnChargeClass(x.Op, base, 1)
		selfScalar := int64(en.proc.Cost(sclass))
		selfArea := areaOf(x.Op, base)
		var out []option
		for _, ox := range en.childOptions(x.X, base, lanes, budget-1) {
			out = append(out, option{
				node:       &ir.PatNode{Param: -1, Op: x.Op, X: ox.node},
				cuts:       ox.cuts,
				nodes:      1 + ox.nodes,
				expCost:    selfExp + ox.expCost,
				scalarCost: selfScalar + ox.scalarCost,
				area:       selfArea + ox.area,
			})
		}
		return out
	}
	return nil
}

// childOptions is expand plus the always-available choice of cutting
// the edge into a fresh parameter.
func (en *enumerator) childOptions(e ir.Expr, base ir.BaseKind, lanes int, budget int) []option {
	out := []option{{node: ir.Param(0), cuts: []ir.Expr{e}}}
	return append(out, en.expand(e, base, lanes, budget)...)
}

// shiftNode clones n with every parameter index offset — used when
// concatenating the cut lists of two child options.
func shiftNode(n *ir.PatNode, off int) *ir.PatNode {
	if n.Param >= 0 {
		return ir.Param(n.Param + off)
	}
	c := &ir.PatNode{Param: -1, Op: n.Op, X: shiftNode(n.X, off)}
	if n.Y != nil {
		c.Y = shiftNode(n.Y, off)
	}
	return c
}

// record folds one enumerated occurrence into the candidate pool.
func record(agg map[string]*Candidate, pr *profile, o option, k ir.Kind, cnt int64) {
	pat, ok := finalize(k.Base, o)
	if !ok {
		return
	}
	fusedScalar := fusedScalarCycles(o.scalarCost)
	fused := int64(fusedScalar)
	if k.Lanes > 1 {
		fused = int64(fusedVectorCycles(fusedScalar))
	}
	saving := o.expCost - fused
	if saving <= 0 {
		return
	}
	key := pat.Canonical()
	c := agg[key]
	if c == nil {
		c = &Candidate{
			Semantics:      pat.String(),
			OpNodes:        pat.OpNodes(),
			Arity:          pat.Arity(),
			ScalarExpanded: o.scalarCost,
			ScalarCycles:   fusedScalar,
			Area:           o.area,
			EstByKernel:    map[string]int64{},
			pat:            pat,
		}
		agg[key] = c
	}
	if k.Lanes > 1 {
		c.HasVector = true
		c.VectorCycles = fusedVectorCycles(fusedScalar)
	}
	c.DynCount += cnt
	c.EstSavings += cnt * saving
	c.EstByKernel[pr.kernel.Name] += cnt * saving
}

// finalize turns an option into a Pattern: structurally identical cuts
// collapse into one shared parameter (mirroring the conservative
// equality instruction selection applies to repeated parameters), and
// the parameter space is renumbered contiguously.
func finalize(base ir.BaseKind, o option) (*ir.Pattern, bool) {
	paramOf := make([]int, len(o.cuts))
	seen := map[string]int{}
	next := 0
	for i, cut := range o.cuts {
		k := cutKey(cut)
		if j, ok := seen[k]; ok {
			paramOf[i] = j
		} else {
			seen[k] = next
			paramOf[i] = next
			next++
		}
	}
	root := remapNode(o.node, paramOf)
	pat, err := ir.NewPattern(base, root)
	if err != nil {
		return nil, false
	}
	return pat, true
}

func remapNode(n *ir.PatNode, paramOf []int) *ir.PatNode {
	if n.Param >= 0 {
		return ir.Param(paramOf[n.Param])
	}
	c := &ir.PatNode{Param: -1, Op: n.Op, X: remapNode(n.X, paramOf)}
	if n.Y != nil {
		c.Y = remapNode(n.Y, paramOf)
	}
	return c
}

// cutKey is a structural key for cut expressions. Two cuts share a
// parameter only when selection-time matching (isel's exprEq) would
// also accept the repetition, so node types it does not compare get a
// pointer-unique key.
func cutKey(e ir.Expr) string {
	switch x := e.(type) {
	case *ir.VarRef:
		return fmt.Sprintf("v%p", x.Sym)
	case *ir.ConstInt:
		return fmt.Sprintf("ci%d", x.V)
	case *ir.ConstFloat:
		return fmt.Sprintf("cf%x", x.V)
	case *ir.ConstComplex:
		return fmt.Sprintf("cc%v", x.V)
	case *ir.Load:
		return fmt.Sprintf("ld%p[%s]", x.Arr, cutKey(x.Index))
	case *ir.VecLoad:
		return fmt.Sprintf("vl%p k%v s%d[%s]", x.Arr, x.K, x.Stride, cutKey(x.Index))
	case *ir.Un:
		return fmt.Sprintf("u%d k%v(%s)", x.Op, x.K, cutKey(x.X))
	case *ir.Bin:
		return fmt.Sprintf("b%d k%v(%s,%s)", x.Op, x.K, cutKey(x.X), cutKey(x.Y))
	case *ir.Broadcast:
		return fmt.Sprintf("bc k%v(%s)", x.K, cutKey(x.X))
	}
	return fmt.Sprintf("x%p", e)
}

// fusedScalarCycles models the issue cost of a fused datapath for a
// pattern whose individually-issued operations cost expanded cycles:
// a deep operator chain still pipelines, but at a sixth of the
// sequential latency, never below a single issue slot. This reproduces
// the paper's hand-designed costs (fma 3→1, cmul 10→2, cmac 12→2).
func fusedScalarCycles(expanded int64) int {
	c := int((expanded + 5) / 6)
	if c < 1 {
		c = 1
	}
	return c
}

// fusedVectorCycles is the vector-issue cost of the fused unit: wide
// register access bounds it below at 2 (matching the built-in vector
// intrinsics).
func fusedVectorCycles(scalar int) int {
	if scalar < 2 {
		return 2
	}
	return scalar
}

// areaOf is a relative datapath-area proxy per fused operation node,
// normalized to one floating-point adder.
func areaOf(op ir.Op, base ir.BaseKind) float64 {
	if base == ir.Complex {
		switch op {
		case ir.OpMul:
			return 12 // 4 multipliers + 2 adders, rounded up for muxing
		case ir.OpAdd, ir.OpSub, ir.OpNeg:
			return 2
		case ir.OpConj:
			return 1
		}
		return 2
	}
	if op == ir.OpMul {
		return 4
	}
	return 1 // add/sub/min/max/neg/abs
}
