package isx

import (
	"context"
	"fmt"

	"mat2c/internal/bench"
	"mat2c/internal/core"
	"mat2c/internal/pdesc"
	"mat2c/internal/vm"
)

// ProfileSummary is the per-kernel slice of a mining profile that
// candidate verification needs: which input size was profiled and the
// base-run cycle count. It is wire-friendly (JSON) so sharded fleet
// verification can run on a worker that never saw the profiling pass.
type ProfileSummary struct {
	Kernel     string `json:"kernel"`
	N          int    `json:"n"`
	BaseCycles int64  `json:"base_cycles"`
}

// VerifyCandidate measures c on every summarized kernel it was mined
// from: derive a processor carrying just this candidate, recompile,
// re-simulate the same profiled input, check the outputs against the
// kernel's Matlab reference, and record the measured cycle delta next
// to the estimate. It is a pure function of (proc, c, profiles), so a
// verification unit dispatched to a fleet worker returns exactly the
// deltas a single-process mine would have computed.
func VerifyCandidate(ctx context.Context, proc *pdesc.Processor, c *Candidate, profiles []ProfileSummary) []KernelDelta {
	ext, err := Extend(proc, proc.Name+"+"+c.Name, c)
	var deltas []KernelDelta
	for _, pr := range profiles {
		est := c.EstByKernel[pr.Kernel]
		if est == 0 {
			continue
		}
		d := KernelDelta{
			Kernel:     pr.Kernel,
			N:          pr.N,
			BaseCycles: pr.BaseCycles,
			Estimated:  est,
		}
		if err != nil {
			d.Err = fmt.Sprintf("derive: %v", err)
			deltas = append(deltas, d)
			continue
		}
		k := bench.KernelByName(pr.Kernel)
		if k == nil {
			d.Err = fmt.Sprintf("unknown kernel %q", pr.Kernel)
			deltas = append(deltas, d)
			continue
		}
		cycles, selected, merr := measure(ctx, ext, k, pr.N, c)
		if merr != nil {
			d.Err = merr.Error()
		} else {
			d.NewCycles = cycles
			d.Measured = pr.BaseCycles - cycles
			d.Selected = selected
			if cycles > 0 {
				d.Speedup = float64(pr.BaseCycles) / float64(cycles)
			}
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// measure runs kernel k on proc (which carries candidate c) and
// returns the cycle count and how many sites selected the candidate.
// The outputs are verified against the kernel's reference
// implementation, so a candidate with broken semantics can never
// report a speedup.
func measure(ctx context.Context, proc *pdesc.Processor, k *bench.Kernel, n int, c *Candidate) (int64, int, error) {
	res, err := core.CompileContext(ctx, k.Source, k.Entry, k.Params, core.Proposed(proc))
	if err != nil {
		return 0, 0, err
	}
	args := k.Inputs(n)
	want := k.Reference(bench.CloneArgs(args))
	m := vm.NewMachine(proc)
	got, err := res.RunOnContext(ctx, m, bench.CloneArgs(args)...)
	if err != nil {
		return 0, 0, err
	}
	if err := bench.Verify(got, want); err != nil {
		return 0, 0, fmt.Errorf("output mismatch: %v", err)
	}
	sel := res.Intrinsics.Selected[c.Name] + res.Intrinsics.Selected["v"+c.Name]
	if sel == 0 {
		return 0, 0, fmt.Errorf("instruction selection never picked %s", c.Name)
	}
	return m.Cycles, sel, nil
}
