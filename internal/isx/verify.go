package isx

import (
	"context"
	"fmt"

	"mat2c/internal/bench"
	"mat2c/internal/core"
	"mat2c/internal/pdesc"
	"mat2c/internal/vm"
)

// verifyCandidate measures c on every kernel it was mined from: derive
// a processor carrying just this candidate, recompile, re-simulate the
// same profiled input, check the outputs against the kernel's Matlab
// reference, and record the measured cycle delta next to the estimate.
func verifyCandidate(ctx context.Context, proc *pdesc.Processor, c *Candidate, profiles []*profile) {
	ext, err := Extend(proc, proc.Name+"+"+c.Name, c)
	for _, pr := range profiles {
		est := c.estByKernel[pr.kernel.Name]
		if est == 0 {
			continue
		}
		d := KernelDelta{
			Kernel:     pr.kernel.Name,
			N:          pr.n,
			BaseCycles: pr.base,
			Estimated:  est,
		}
		if err != nil {
			d.Err = fmt.Sprintf("derive: %v", err)
			c.Deltas = append(c.Deltas, d)
			continue
		}
		cycles, selected, merr := measure(ctx, ext, pr.kernel, pr.n, c)
		if merr != nil {
			d.Err = merr.Error()
		} else {
			d.NewCycles = cycles
			d.Measured = pr.base - cycles
			d.Selected = selected
			if cycles > 0 {
				d.Speedup = float64(pr.base) / float64(cycles)
			}
		}
		c.Deltas = append(c.Deltas, d)
	}
}

// measure runs kernel k on proc (which carries candidate c) and
// returns the cycle count and how many sites selected the candidate.
// The outputs are verified against the kernel's reference
// implementation, so a candidate with broken semantics can never
// report a speedup.
func measure(ctx context.Context, proc *pdesc.Processor, k *bench.Kernel, n int, c *Candidate) (int64, int, error) {
	res, err := core.CompileContext(ctx, k.Source, k.Entry, k.Params, core.Proposed(proc))
	if err != nil {
		return 0, 0, err
	}
	args := k.Inputs(n)
	want := k.Reference(bench.CloneArgs(args))
	m := vm.NewMachine(proc)
	got, err := res.RunOnContext(ctx, m, bench.CloneArgs(args)...)
	if err != nil {
		return 0, 0, err
	}
	if err := bench.Verify(got, want); err != nil {
		return 0, 0, fmt.Errorf("output mismatch: %v", err)
	}
	sel := res.Intrinsics.Selected[c.Name] + res.Intrinsics.Selected["v"+c.Name]
	if sel == 0 {
		return 0, 0, fmt.Errorf("instruction selection never picked %s", c.Name)
	}
	return m.Cycles, sel, nil
}
