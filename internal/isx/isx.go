// Package isx mines instruction-set extensions from execution profiles.
//
// The paper's flow designs an ASIP by hand-picking custom instructions
// (complex arithmetic, multiply-accumulate) and measuring the result.
// This package automates the discovery step: it compiles a set of
// kernels for a base processor, profiles the virtual machine to learn
// how often every instruction-level expression actually executes, and
// enumerates recurring dataflow subtrees as candidate fused
// instructions. Candidates are scored by estimated cycle savings
// (dynamic count times the gap between the expanded cost of the subtree
// and the issue cost of a fused datapath), an area proxy for the fused
// functional unit, and a merit function (savings per unit area).
// Winners are synthesized into pdesc.Instr entries whose Semantics
// pattern lets instruction selection, both VM engines, and the C
// emitter handle them with no further per-instruction code, and each
// winner is verified end-to-end: the kernel is recompiled against a
// derived processor carrying the candidate, re-simulated, and the
// measured cycle delta is reported next to the estimate.
package isx

import (
	"context"
	"fmt"
	"sort"

	"mat2c/internal/bench"
	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
)

// Options configures a mining run. The zero value picks sensible
// defaults (all kernels, 4-node patterns, top 8 candidates, quarter
// scale, verification on).
type Options struct {
	// Kernels names the benchmark kernels to profile; empty means all.
	Kernels []string
	// MaxNodes bounds the operation nodes per candidate pattern (1..6;
	// default 4). The enumeration is exponential in this bound.
	MaxNodes int
	// Top bounds how many candidates are kept after ranking (default 8).
	Top int
	// Scale sizes the profiled problem relative to each kernel's default
	// size (default 0.25); see bench.SizeFor.
	Scale float64
	// NoVerify skips the per-candidate recompile-and-measure step and
	// reports estimates only.
	NoVerify bool
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 4
	}
	if o.MaxNodes > 6 {
		o.MaxNodes = 6
	}
	if o.Top <= 0 {
		o.Top = 8
	}
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	return o
}

// Candidate is one mined instruction-set extension.
type Candidate struct {
	// Name is the scalar instruction name (isxN); the vector form, when
	// observed, is vName.
	Name string `json:"name"`
	// Semantics is the ir pattern defining the instruction.
	Semantics string `json:"semantics"`
	// OpNodes and Arity describe the pattern shape.
	OpNodes int `json:"op_nodes"`
	Arity   int `json:"arity"`
	// ScalarExpanded is the cycle cost of the pattern's operations
	// issued individually on the base datapath (one lane).
	ScalarExpanded int64 `json:"scalar_expanded_cycles"`
	// ScalarCycles is the synthesized issue cost of the fused scalar
	// instruction; VectorCycles of the vector form (0 when none).
	ScalarCycles int  `json:"scalar_cycles"`
	VectorCycles int  `json:"vector_cycles,omitempty"`
	HasVector    bool `json:"has_vector"`
	// Area is a relative datapath-area proxy for the fused unit.
	Area float64 `json:"area"`
	// DynCount is the dynamic execution count of all matched sites.
	DynCount int64 `json:"dyn_count"`
	// EstSavings is the profile-weighted estimated cycle saving across
	// all profiled kernels; Merit is EstSavings/(Area+1).
	EstSavings int64   `json:"est_savings"`
	Merit      float64 `json:"merit"`
	// Kernels lists the kernels the pattern was observed in.
	Kernels []string `json:"kernels"`
	// Deltas holds the per-kernel measured verification results (empty
	// when verification was skipped).
	Deltas []KernelDelta `json:"verification,omitempty"`

	// EstByKernel breaks the estimated savings out per kernel. It is
	// exported (and on the wire) so sharded verification can run on a
	// remote fleet worker that never saw the profiling pass.
	EstByKernel map[string]int64 `json:"est_by_kernel,omitempty"`

	pat *ir.Pattern
}

// Instrs returns the processor-description entries implementing c: the
// scalar instruction and, when the pattern was observed in vector form,
// the v-prefixed vector instruction.
func (c *Candidate) Instrs() []pdesc.Instr {
	out := []pdesc.Instr{{
		Name:      c.Name,
		CName:     "_asip_" + c.Name,
		Cycles:    c.ScalarCycles,
		Semantics: c.Semantics,
	}}
	if c.HasVector {
		out = append(out, pdesc.Instr{
			Name:      "v" + c.Name,
			CName:     "_asip_v" + c.Name,
			Cycles:    c.VectorCycles,
			Semantics: c.Semantics,
		})
	}
	return out
}

// KernelDelta is the measured effect of one candidate on one kernel.
type KernelDelta struct {
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	// BaseCycles is the profiled base run; NewCycles the run on the
	// derived processor carrying the candidate.
	BaseCycles int64 `json:"base_cycles"`
	NewCycles  int64 `json:"new_cycles"`
	// Measured and Estimated are the cycle savings (base minus new, and
	// the profile-weighted estimate for this kernel).
	Measured  int64   `json:"measured_savings"`
	Estimated int64   `json:"estimated_savings"`
	Speedup   float64 `json:"speedup"`
	// Selected counts how many sites instruction selection rewrote to
	// the candidate (scalar plus vector form).
	Selected int `json:"selected"`
	// Err records a verification failure (compile error or output
	// mismatch); the other measured fields are zero then.
	Err string `json:"error,omitempty"`
}

// Report is the result of a mining run.
type Report struct {
	Processor  string       `json:"processor"`
	Kernels    []string     `json:"kernels"`
	MaxNodes   int          `json:"max_nodes"`
	Candidates []*Candidate `json:"candidates"`
}

// Mine is MineContext with a background context.
func Mine(proc *pdesc.Processor, opts Options) (*Report, error) {
	return MineContext(context.Background(), proc, opts)
}

// MineContext profiles the kernels on proc, enumerates and ranks
// candidate instruction-set extensions, and (unless disabled) verifies
// each winner by recompiling and re-simulating on a derived processor.
func MineContext(ctx context.Context, proc *pdesc.Processor, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	plan, err := PlanContext(ctx, proc, opts)
	if err != nil {
		return nil, err
	}
	if !opts.NoVerify {
		for _, c := range plan.Candidates {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c.Deltas = VerifyCandidate(ctx, proc, c, plan.Profiles)
		}
	}
	return plan.Report(), nil
}

// Plan is a prepared mining run: the ranked candidates plus the
// per-kernel profile summaries verification needs. It is the shard
// point for fleet execution — a coordinator plans locally, dispatches
// one verification unit per candidate to workers (each running
// VerifyCandidate), attaches the returned deltas, and assembles the
// same Report a single-process MineContext would have produced.
type Plan struct {
	Proc       *pdesc.Processor
	Kernels    []string
	MaxNodes   int
	Candidates []*Candidate
	Profiles   []ProfileSummary
}

// PlanContext runs the profiling, enumeration, and ranking phases of a
// mine without verifying the winners.
func PlanContext(ctx context.Context, proc *pdesc.Processor, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	kernels, err := resolveKernels(opts.Kernels)
	if err != nil {
		return nil, err
	}
	agg := map[string]*Candidate{}
	summaries := make([]ProfileSummary, 0, len(kernels))
	for _, k := range kernels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pr, err := profileKernel(ctx, proc, k, opts.Scale)
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", k.Name, err)
		}
		summaries = append(summaries, ProfileSummary{
			Kernel: k.Name, N: pr.n, BaseCycles: pr.base,
		})
		mineProfile(proc, pr, opts.MaxNodes, agg)
	}
	cands := rank(agg, opts.Top)
	assignNames(proc, cands)
	names := make([]string, len(kernels))
	for i, k := range kernels {
		names[i] = k.Name
	}
	return &Plan{
		Proc:       proc,
		Kernels:    names,
		MaxNodes:   opts.MaxNodes,
		Candidates: cands,
		Profiles:   summaries,
	}, nil
}

// Report assembles the final mining report from the (possibly remotely)
// verified candidates.
func (p *Plan) Report() *Report {
	return &Report{
		Processor:  p.Proc.Name,
		Kernels:    p.Kernels,
		MaxNodes:   p.MaxNodes,
		Candidates: p.Candidates,
	}
}

// Extend derives a variant of proc named name that additionally
// provides the given candidates.
func Extend(proc *pdesc.Processor, name string, cands ...*Candidate) (*pdesc.Processor, error) {
	return proc.Derive(name, func(q *pdesc.Processor) {
		for _, c := range cands {
			q.Instructions = append(q.Instructions, c.Instrs()...)
		}
	})
}

func resolveKernels(names []string) ([]*bench.Kernel, error) {
	if len(names) == 0 {
		return bench.Kernels(), nil
	}
	out := make([]*bench.Kernel, 0, len(names))
	for _, n := range names {
		k := bench.KernelByName(n)
		if k == nil {
			return nil, fmt.Errorf("unknown kernel %q", n)
		}
		out = append(out, k)
	}
	return out, nil
}

// rank computes merit, sorts best-first (ties broken by semantics text
// for determinism), and keeps the top entries.
func rank(agg map[string]*Candidate, top int) []*Candidate {
	cands := make([]*Candidate, 0, len(agg))
	for _, c := range agg {
		c.Merit = float64(c.EstSavings) / (c.Area + 1)
		for k := range c.EstByKernel {
			c.Kernels = append(c.Kernels, k)
		}
		sort.Strings(c.Kernels)
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Merit != cands[j].Merit {
			return cands[i].Merit > cands[j].Merit
		}
		return cands[i].Semantics < cands[j].Semantics
	})
	if len(cands) > top {
		cands = cands[:top]
	}
	return cands
}

// assignNames numbers candidates isx0, isx1, ... in merit order,
// skipping names the base processor already uses.
func assignNames(proc *pdesc.Processor, cands []*Candidate) {
	i := 0
	for _, c := range cands {
		for {
			name := fmt.Sprintf("isx%d", i)
			i++
			if !proc.HasInstr(name) && !proc.HasInstr("v"+name) {
				c.Name = name
				break
			}
		}
	}
}
