package isel

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/lower"
	"mat2c/internal/mlang"
	"mat2c/internal/opt"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
	"mat2c/internal/vectorize"
)

func compileFor(t *testing.T, src, proc string, vec bool, params ...sema.Type) (*ir.Func, Stats) {
	t.Helper()
	file, err := mlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	entry := file.Funcs[0].Name
	info, err := sema.Analyze(file, entry, params)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(f, 1)
	p := pdesc.Builtin(proc)
	if vec {
		vectorize.Apply(f, p)
	}
	st := Apply(f, p)
	return f, st
}

func dynCVec() sema.Type {
	return sema.Type{Class: sema.Complex, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func dynVec() sema.Type {
	return sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func TestSelectCmul(t *testing.T) {
	src := "function y = f(a, b)\ny = a * b;\nend"
	_, st := compileFor(t, src, "dspasip", false, sema.ComplexScalar, sema.ComplexScalar)
	if st.Selected["cmul"] != 1 {
		t.Errorf("selected %v, want one cmul", st.Selected)
	}
}

func TestSelectCmacFusion(t *testing.T) {
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * b(i);
end
end`
	_, st := compileFor(t, src, "dspasip", false, dynCVec(), dynCVec())
	if st.Selected["cmac"] != 1 {
		t.Errorf("selected %v, want one cmac", st.Selected)
	}
	if st.Selected["cmul"] != 0 {
		t.Errorf("cmul should have been upgraded to cmac: %v", st.Selected)
	}
}

func TestSelectCconjmul(t *testing.T) {
	src := "function y = f(a, b)\ny = a * conj(b);\nend"
	_, st := compileFor(t, src, "dspasip", false, sema.ComplexScalar, sema.ComplexScalar)
	if st.Selected["cconjmul"] != 1 {
		t.Errorf("selected %v, want one cconjmul", st.Selected)
	}
	// Commuted form.
	src = "function y = f(a, b)\ny = conj(a) * b;\nend"
	_, st = compileFor(t, src, "dspasip", false, sema.ComplexScalar, sema.ComplexScalar)
	if st.Selected["cconjmul"] != 1 {
		t.Errorf("commuted: selected %v, want one cconjmul", st.Selected)
	}
}

func TestSelectFma(t *testing.T) {
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * b(i);
end
end`
	_, st := compileFor(t, src, "dspasip", false, dynVec(), dynVec())
	if st.Selected["fma"] != 1 {
		t.Errorf("selected %v, want one fma", st.Selected)
	}
}

func TestSelectVectorForms(t *testing.T) {
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * b(i);
end
end`
	f, st := compileFor(t, src, "dspasip", true, dynCVec(), dynCVec())
	if st.Selected["vcmac"] != 1 {
		t.Errorf("selected %v, want one vcmac (vectorized loop):\n%s", st.Selected, ir.Print(f))
	}
	// The scalar epilogue keeps the scalar form.
	if st.Selected["cmac"] != 1 {
		t.Errorf("selected %v, want one scalar cmac in epilogue", st.Selected)
	}
}

func TestSelectCaddCsub(t *testing.T) {
	src := "function y = f(a, b)\ny = (a + b) - conj(b);\nend"
	_, st := compileFor(t, src, "dspasip", false, sema.ComplexScalar, sema.ComplexScalar)
	if st.Selected["cadd"] != 1 || st.Selected["csub"] != 1 {
		t.Errorf("selected %v, want cadd and csub", st.Selected)
	}
}

func TestSelectNothingOnScalarTarget(t *testing.T) {
	src := "function y = f(a, b)\ny = a * b + a;\nend"
	_, st := compileFor(t, src, "scalar", false, sema.ComplexScalar, sema.ComplexScalar)
	if st.Total() != 0 {
		t.Errorf("scalar target selected %v", st.Selected)
	}
}

func TestSelectNoComplexOnNocomplex(t *testing.T) {
	src := "function y = f(a, b)\ny = a * b;\nend"
	_, st := compileFor(t, src, "nocomplex", false, sema.ComplexScalar, sema.ComplexScalar)
	if st.Selected["cmul"] != 0 {
		t.Errorf("nocomplex target selected cmul: %v", st.Selected)
	}
}

func TestSelectSad(t *testing.T) {
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + abs(a(i) - b(i));
end
end`
	_, st := compileFor(t, src, "dspasip", false, dynVec(), dynVec())
	if st.Selected["sad"] != 1 {
		t.Errorf("selected %v, want one sad", st.Selected)
	}
}

// Property: instruction selection preserves semantics on random inputs
// for a set of kernels exercising every pattern.
func TestSelectionPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	kernels := []struct {
		src    string
		params []sema.Type
		args   func(n int) []interface{}
	}{
		{
			src: `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`,
			params: []sema.Type{dynCVec(), dynCVec()},
			args: func(n int) []interface{} {
				return []interface{}{randC(n, r), randC(n, r)}
			},
		},
		{
			src: `function y = f(a, b, c)
n = length(a);
y = zeros(1, n);
for i = 1:n
    y(i) = c(i) + a(i) * b(i);
end
end`,
			params: []sema.Type{dynCVec(), dynCVec(), dynCVec()},
			args: func(n int) []interface{} {
				return []interface{}{randC(n, r), randC(n, r), randC(n, r)}
			},
		},
		{
			src: `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + abs(a(i) - b(i));
end
end`,
			params: []sema.Type{dynVec(), dynVec()},
			args: func(n int) []interface{} {
				return []interface{}{randF(n, r), randF(n, r)}
			},
		},
	}
	for ki, k := range kernels {
		for _, n := range []int{0, 1, 3, 8, 17} {
			args := k.args(n)
			clone := func() []interface{} {
				out := make([]interface{}, len(args))
				for i, a := range args {
					if arr, ok := a.(*ir.Array); ok {
						out[i] = arr.Clone()
					} else {
						out[i] = a
					}
				}
				return out
			}
			// Reference: no isel.
			ref, _ := compileFor(t, k.src, "scalar", false, k.params...)
			// Full pipeline on the ASIP.
			asip, _ := compileFor(t, k.src, "dspasip", true, k.params...)

			ev1 := &ir.Evaluator{}
			r1, err := ev1.Run(ref, clone()...)
			if err != nil {
				t.Fatalf("kernel %d ref: %v", ki, err)
			}
			ev2 := &ir.Evaluator{}
			r2, err := ev2.Run(asip, clone()...)
			if err != nil {
				t.Fatalf("kernel %d asip: %v\n%s", ki, err, ir.Print(asip))
			}
			for i := range r1 {
				if !nearlyEq(r1[i], r2[i]) {
					t.Errorf("kernel %d n=%d result %d: %v vs %v", ki, n, i, r1[i], r2[i])
				}
			}
		}
	}
}

func nearlyEq(a, b interface{}) bool {
	switch x := a.(type) {
	case float64:
		y := b.(float64)
		return math.Abs(x-y) <= 1e-9*(1+math.Abs(x))
	case complex128:
		y := b.(complex128)
		d := x - y
		return math.Hypot(real(d), imag(d)) <= 1e-9*(1+math.Hypot(real(x), imag(x)))
	case int64:
		return x == b.(int64)
	case *ir.Array:
		y := b.(*ir.Array)
		if x.Rows != y.Rows || x.Cols != y.Cols {
			return false
		}
		for i := 0; i < x.Len(); i++ {
			d := x.At(i) - y.At(i)
			if math.Hypot(real(d), imag(d)) > 1e-9 {
				return false
			}
		}
		return true
	}
	return false
}

func randF(n int, r *rand.Rand) *ir.Array {
	a := ir.NewFloatArray(1, n)
	for i := range a.F {
		a.F[i] = r.NormFloat64()
	}
	return a
}

func randC(n int, r *rand.Rand) *ir.Array {
	a := ir.NewComplexArray(1, n)
	for i := range a.C {
		a.C[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return a
}

func TestSelectedIntrinsicsPrint(t *testing.T) {
	src := "function y = f(a, b)\ny = a * b;\nend"
	f, _ := compileFor(t, src, "dspasip", false, sema.ComplexScalar, sema.ComplexScalar)
	if !strings.Contains(ir.Print(f), "@cmul(") {
		t.Errorf("printout missing @cmul:\n%s", ir.Print(f))
	}
}
