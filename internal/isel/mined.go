package isel

import (
	"sort"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
)

// Mined-instruction selection. Instructions discovered by the isx miner
// carry their behaviour as a semantics pattern in the processor
// description; this file matches those patterns against IR expression
// trees, exactly as the built-in catalog in isel.go matches its
// hard-coded shapes. Matching is maximal-munch: candidates are tried
// largest (most operation nodes) first, commutative operators in both
// operand orders, and a repeated parameter (e.g. mul(p0,p0)) requires
// structurally identical subexpressions.

// minedInstr is one pattern-defined instruction of the target. base is
// the scalar name; the vector form, when the target declares it, is the
// v-prefixed name (same convention as the built-in family).
type minedInstr struct {
	base string
	sem  string
	pat  *ir.Pattern
}

// minedOf collects the pattern-defined instructions of p, largest
// pattern first so bigger fusions win over their own sub-patterns.
func minedOf(p *pdesc.Processor) []minedInstr {
	var out []minedInstr
	for i := range p.Instructions {
		in := &p.Instructions[i]
		if in.Semantics == "" {
			continue
		}
		pat, err := ir.CachedPattern(in.Semantics)
		if err != nil {
			continue // Validate rejects this; stay permissive here
		}
		name := in.Name
		if len(name) > 1 && name[0] == 'v' && p.HasInstr(name[1:]) {
			// The vector form of a scalar mined instruction: reached via
			// the v-prefix lookup on the scalar entry.
			continue
		}
		out = append(out, minedInstr{base: name, sem: in.Semantics, pat: pat})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pat.OpNodes() != out[j].pat.OpNodes() {
			return out[i].pat.OpNodes() > out[j].pat.OpNodes()
		}
		return out[i].base < out[j].base
	})
	return out
}

// rewriteMined tries every mined pattern against e (already known not
// to match any built-in shape).
func (s *selector) rewriteMined(e ir.Expr) ir.Expr {
	var k ir.Kind
	switch x := e.(type) {
	case *ir.Bin:
		k = x.K
	case *ir.Un:
		k = x.K
	default:
		return e
	}
	for _, m := range s.mined {
		if m.pat.Base != k.Base {
			continue
		}
		n := s.name(m.base, k.Lanes)
		if n == "" {
			continue
		}
		mc := &matchCtx{base: m.pat.Base, lanes: k.Lanes, binding: make([]ir.Expr, m.pat.Arity())}
		if !mc.match(m.pat.Root, e) {
			continue
		}
		// A larger pattern may have subsumed mined intrinsics already
		// selected at inner nodes (bottom-up order reaches them first);
		// their selections are undone by the wider fusion.
		for _, in := range mc.consumed {
			s.stats.Selected[in.Name]--
		}
		s.stats.Selected[n]++
		return &ir.Intrinsic{Name: n, Args: mc.binding, K: k, Sem: m.sem}
	}
	return e
}

// matchCtx carries one in-progress pattern match: parameters bound so
// far (nil = unbound) and the already-selected mined intrinsics the
// match has unfolded into. On failed branches both are restored by the
// backtracking points.
type matchCtx struct {
	base     ir.BaseKind
	lanes    int
	binding  []ir.Expr
	consumed []*ir.Intrinsic
}

// match matches pattern node n against expression e. Interior nodes
// must be Bin/Un at the pattern's base with the root's lane count — or
// a previously selected mined intrinsic, which is matched through its
// own semantics pattern so larger fusions subsume smaller ones
// regardless of the bottom-up rewrite order. Leaves bind anything, but
// a repeated parameter only re-binds a structurally identical
// expression.
func (mc *matchCtx) match(n *ir.PatNode, e ir.Expr) bool {
	if n.Param >= 0 {
		if mc.binding[n.Param] == nil {
			mc.binding[n.Param] = e
			return true
		}
		return exprEq(mc.binding[n.Param], e)
	}
	if in, ok := e.(*ir.Intrinsic); ok && in.Sem != "" {
		pat, err := ir.CachedPattern(in.Sem)
		if err != nil || pat.Base != mc.base || in.K.Lanes != mc.lanes {
			return false
		}
		mc.consumed = append(mc.consumed, in)
		if mc.matchUnfolded(n, pat.Root, in.Args) {
			return true
		}
		mc.consumed = mc.consumed[:len(mc.consumed)-1]
		return false
	}
	if n.Y != nil {
		b, ok := e.(*ir.Bin)
		if !ok || b.Op != n.Op || b.K.Base != mc.base || b.K.Lanes != mc.lanes {
			return false
		}
		save, nc := mc.save()
		if mc.match(n.X, b.X) && mc.match(n.Y, b.Y) {
			return true
		}
		mc.restore(save, nc)
		if n.Op.Commutative() {
			if mc.match(n.X, b.Y) && mc.match(n.Y, b.X) {
				return true
			}
			mc.restore(save, nc)
		}
		return false
	}
	u, ok := e.(*ir.Un)
	if !ok || u.Op != n.Op || u.K.Base != mc.base || u.K.Lanes != mc.lanes {
		return false
	}
	// The operand must live in the same base: float abs(p0) must not
	// claim a complex magnitude (abs : complex → float).
	if u.X.Kind().Base != mc.base {
		return false
	}
	return mc.match(n.X, u.X)
}

// matchUnfolded matches pattern node n against the body of a mined
// intrinsic: q walks the intrinsic's own semantics pattern and args are
// its actual arguments. Outer parameters may only bind at the inner
// pattern's parameter positions — binding an interior node would split
// the fused intrinsic and silently de-optimize it — so the outer
// pattern must cover the unfolded body entirely.
func (mc *matchCtx) matchUnfolded(n, q *ir.PatNode, args []ir.Expr) bool {
	if q.Param >= 0 {
		return mc.match(n, args[q.Param])
	}
	if n.Param >= 0 || n.Op != q.Op || (n.Y != nil) != (q.Y != nil) {
		return false
	}
	if q.Y != nil {
		save, nc := mc.save()
		if mc.matchUnfolded(n.X, q.X, args) && mc.matchUnfolded(n.Y, q.Y, args) {
			return true
		}
		mc.restore(save, nc)
		if n.Op.Commutative() {
			if mc.matchUnfolded(n.X, q.Y, args) && mc.matchUnfolded(n.Y, q.X, args) {
				return true
			}
			mc.restore(save, nc)
		}
		return false
	}
	return mc.matchUnfolded(n.X, q.X, args)
}

func (mc *matchCtx) save() ([ir.MaxPatternArity]ir.Expr, int) {
	var save [ir.MaxPatternArity]ir.Expr
	copy(save[:], mc.binding)
	return save, len(mc.consumed)
}

func (mc *matchCtx) restore(save [ir.MaxPatternArity]ir.Expr, nc int) {
	copy(mc.binding, save[:len(mc.binding)])
	mc.consumed = mc.consumed[:nc]
}

// exprEq is conservative structural equality over pure IR expressions,
// used for repeated pattern parameters. Unhandled node types compare
// unequal (a missed match, never a wrong one).
func exprEq(a, b ir.Expr) bool {
	switch x := a.(type) {
	case *ir.VarRef:
		y, ok := b.(*ir.VarRef)
		return ok && x.Sym == y.Sym
	case *ir.ConstInt:
		y, ok := b.(*ir.ConstInt)
		return ok && x.V == y.V
	case *ir.ConstFloat:
		y, ok := b.(*ir.ConstFloat)
		return ok && x.V == y.V
	case *ir.ConstComplex:
		y, ok := b.(*ir.ConstComplex)
		return ok && x.V == y.V
	case *ir.Load:
		y, ok := b.(*ir.Load)
		return ok && x.Arr == y.Arr && exprEq(x.Index, y.Index)
	case *ir.VecLoad:
		y, ok := b.(*ir.VecLoad)
		return ok && x.Arr == y.Arr && x.K == y.K && x.Stride == y.Stride && exprEq(x.Index, y.Index)
	case *ir.Un:
		y, ok := b.(*ir.Un)
		return ok && x.Op == y.Op && x.K == y.K && exprEq(x.X, y.X)
	case *ir.Bin:
		y, ok := b.(*ir.Bin)
		return ok && x.Op == y.Op && x.K == y.K && exprEq(x.X, y.X) && exprEq(x.Y, y.Y)
	case *ir.Broadcast:
		y, ok := b.(*ir.Broadcast)
		return ok && x.K == y.K && exprEq(x.X, y.X)
	}
	return false
}
