// Package isel implements custom-instruction selection: it pattern-
// matches IR expression trees against the custom instructions declared
// in the processor description and rewrites matches into Intrinsic
// nodes. This is the "custom instructions such as ... instructions for
// complex arithmetic" half of the paper's contribution.
//
// Matching runs bottom-up, so fused patterns compose: a complex multiply
// becomes @cmul first, and a surrounding addition then upgrades it to
// @cmac. Scalar and vector forms are selected independently (a vector
// pattern requires the v-prefixed instruction in the description). Every
// rewrite is semantics-preserving by construction — the Intrinsic
// reference semantics in the ir package define exactly the replaced
// expression.
package isel

import (
	"mat2c/internal/ir"
	"mat2c/internal/opt"
	"mat2c/internal/pdesc"
)

// Stats reports what instruction selection did.
type Stats struct {
	// Selected counts rewrites per intrinsic name.
	Selected map[string]int
}

// Total returns the total number of rewrites.
func (s Stats) Total() int {
	n := 0
	for _, c := range s.Selected {
		n += c
	}
	return n
}

// Apply rewrites f for processor p and returns selection statistics.
func Apply(f *ir.Func, p *pdesc.Processor) Stats {
	st := Stats{Selected: map[string]int{}}
	sel := &selector{proc: p, stats: &st, mined: minedOf(p)}
	opt.WalkStmts(f.Body, func(s ir.Stmt) {
		opt.RewriteStmtExprs(s, sel.rewrite)
	})
	return st
}

type selector struct {
	proc  *pdesc.Processor
	stats *Stats
	mined []minedInstr
}

// name returns the lanes-appropriate instruction name if the processor
// has it, else "".
func (s *selector) name(base string, lanes int) string {
	n := base
	if lanes > 1 {
		n = "v" + base
	}
	if s.proc.HasInstr(n) {
		return n
	}
	return ""
}

func (s *selector) emit(name string, args []ir.Expr, k ir.Kind) ir.Expr {
	s.stats.Selected[name]++
	return &ir.Intrinsic{Name: name, Args: args, K: k}
}

// rewrite is called bottom-up on every expression node. The built-in
// catalog is matched first — selection on pre-existing targets is
// byte-identical to before mined instructions existed — and mined
// patterns (largest first) only claim what the built-ins leave behind.
func (s *selector) rewrite(e ir.Expr) ir.Expr {
	if r := s.rewriteBuiltin(e); r != e {
		return r
	}
	if len(s.mined) > 0 {
		return s.rewriteMined(e)
	}
	return e
}

func (s *selector) rewriteBuiltin(e ir.Expr) ir.Expr {
	b, ok := e.(*ir.Bin)
	if !ok {
		return e
	}
	lanes := b.K.Lanes

	switch b.Op {
	case ir.OpMul:
		if b.K.Base != ir.Complex {
			return e
		}
		// a * conj(b) → cconjmul(a, b); conj(a) * b → cconjmul(b, a).
		if cj, ok := asConj(b.Y); ok {
			if n := s.name("cconjmul", lanes); n != "" {
				return s.emit(n, []ir.Expr{b.X, cj}, b.K)
			}
		}
		if cj, ok := asConj(b.X); ok {
			if n := s.name("cconjmul", lanes); n != "" {
				return s.emit(n, []ir.Expr{b.Y, cj}, b.K)
			}
		}
		if bothComplex(b) {
			if n := s.name("cmul", lanes); n != "" {
				return s.emit(n, []ir.Expr{b.X, b.Y}, b.K)
			}
		}

	case ir.OpAdd:
		// acc + cmul(a,b) → cmac(acc,a,b)   (complex MAC fusion)
		if b.K.Base == ir.Complex {
			if in, acc, ok := addOfIntrinsic(b, "cmul", "vcmul"); ok {
				if n := s.name("cmac", lanes); n != "" {
					s.stats.Selected[in.Name]--
					return s.emit(n, []ir.Expr{acc, in.Args[0], in.Args[1]}, b.K)
				}
			}
			// Targets with a cmac but no cmul: fuse the raw product.
			if mul, acc, ok := addOfComplexMul(b); ok {
				if n := s.name("cmac", lanes); n != "" {
					return s.emit(n, []ir.Expr{acc, mul.X, mul.Y}, b.K)
				}
			}
			if n := s.name("cadd", lanes); n != "" {
				return s.emit(n, []ir.Expr{b.X, b.Y}, b.K)
			}
			return e
		}
		if b.K.Base == ir.Float {
			// acc + |a-b| → sad(acc,a,b)
			if abs, acc, ok := addOfAbsDiff(b); ok {
				if n := s.name("sad", lanes); n != "" {
					return s.emit(n, []ir.Expr{acc, abs.X.(*ir.Bin).X, abs.X.(*ir.Bin).Y}, b.K)
				}
			}
			// acc + a*b → fma(acc,a,b)
			if mul, acc, ok := addOfMul(b); ok {
				if n := s.name("fma", lanes); n != "" {
					return s.emit(n, []ir.Expr{acc, mul.X, mul.Y}, b.K)
				}
			}
		}

	case ir.OpSub:
		if b.K.Base == ir.Complex {
			if n := s.name("csub", lanes); n != "" {
				return s.emit(n, []ir.Expr{b.X, b.Y}, b.K)
			}
		}
		if b.K.Base == ir.Float {
			// acc - a*b → fms(acc,a,b). Only the right operand may be
			// the product (a*b - acc has the opposite sign).
			if m, ok := b.Y.(*ir.Bin); ok && m.Op == ir.OpMul && m.K.Base == ir.Float {
				if n := s.name("fms", lanes); n != "" {
					return s.emit(n, []ir.Expr{b.X, m.X, m.Y}, b.K)
				}
			}
		}
	}
	return e
}

func asConj(e ir.Expr) (ir.Expr, bool) {
	u, ok := e.(*ir.Un)
	if !ok || u.Op != ir.OpConj {
		return nil, false
	}
	return u.X, true
}

func bothComplex(b *ir.Bin) bool {
	return b.X.Kind().Base == ir.Complex && b.Y.Kind().Base == ir.Complex
}

// addOfIntrinsic matches x + @name(...) in either operand order.
func addOfIntrinsic(b *ir.Bin, names ...string) (*ir.Intrinsic, ir.Expr, bool) {
	match := func(e ir.Expr) *ir.Intrinsic {
		in, ok := e.(*ir.Intrinsic)
		if !ok {
			return nil
		}
		for _, n := range names {
			if in.Name == n && len(in.Args) == 2 {
				return in
			}
		}
		return nil
	}
	if in := match(b.Y); in != nil {
		return in, b.X, true
	}
	if in := match(b.X); in != nil {
		return in, b.Y, true
	}
	return nil, nil, false
}

// addOfMul matches acc + a*b (float) in either operand order.
func addOfMul(b *ir.Bin) (*ir.Bin, ir.Expr, bool) {
	match := func(e ir.Expr) *ir.Bin {
		m, ok := e.(*ir.Bin)
		if ok && m.Op == ir.OpMul && m.K.Base == ir.Float {
			return m
		}
		return nil
	}
	if m := match(b.Y); m != nil {
		return m, b.X, true
	}
	if m := match(b.X); m != nil {
		return m, b.Y, true
	}
	return nil, nil, false
}

// addOfComplexMul matches acc + a*b (complex Bin) in either operand
// order.
func addOfComplexMul(b *ir.Bin) (*ir.Bin, ir.Expr, bool) {
	match := func(e ir.Expr) *ir.Bin {
		m, ok := e.(*ir.Bin)
		if ok && m.Op == ir.OpMul && m.K.Base == ir.Complex {
			return m
		}
		return nil
	}
	if m := match(b.Y); m != nil {
		return m, b.X, true
	}
	if m := match(b.X); m != nil {
		return m, b.Y, true
	}
	return nil, nil, false
}

// addOfAbsDiff matches acc + abs(a-b) (float) in either operand order.
func addOfAbsDiff(b *ir.Bin) (*ir.Un, ir.Expr, bool) {
	match := func(e ir.Expr) *ir.Un {
		u, ok := e.(*ir.Un)
		if !ok || u.Op != ir.OpAbs || u.K.Base != ir.Float {
			return nil
		}
		if d, ok := u.X.(*ir.Bin); ok && d.Op == ir.OpSub && d.K.Base == ir.Float {
			return u
		}
		return nil
	}
	if u := match(b.Y); u != nil {
		return u, b.X, true
	}
	if u := match(b.X); u != nil {
		return u, b.Y, true
	}
	return nil, nil, false
}
