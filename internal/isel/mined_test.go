package isel

import (
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/lower"
	"mat2c/internal/mlang"
	"mat2c/internal/opt"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
)

// minedProc builds a scalar target carrying the given custom
// instructions (typically a mix of built-in names and mined
// pattern-defined entries).
func minedProc(t *testing.T, instrs ...pdesc.Instr) *pdesc.Processor {
	t.Helper()
	p := &pdesc.Processor{Name: "mined-test", SIMDWidth: 1, Instructions: instrs}
	if err := p.Validate(); err != nil {
		t.Fatalf("test processor invalid: %v", err)
	}
	return p
}

func compileOn(t *testing.T, src string, p *pdesc.Processor, params ...sema.Type) (*ir.Func, Stats) {
	t.Helper()
	file, err := mlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	entry := file.Funcs[0].Name
	info, err := sema.Analyze(file, entry, params)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(f, 1)
	st := Apply(f, p)
	return f, st
}

func TestMinedSelectBasic(t *testing.T) {
	p := minedProc(t, pdesc.Instr{
		Name: "isx0", CName: "_asip_isx0", Cycles: 1,
		Semantics: "float:add(p0,mul(p1,p2))",
	})
	src := "function y = f(a, b, c)\ny = a + b * c;\nend"
	_, st := compileOn(t, src, p, sema.RealScalar, sema.RealScalar, sema.RealScalar)
	if st.Selected["isx0"] != 1 {
		t.Errorf("selected %v, want one isx0", st.Selected)
	}
}

// Commutative operators must match in both operand orders: the mined
// pattern puts the product on the right, the source on the left.
func TestMinedSelectCommuted(t *testing.T) {
	p := minedProc(t, pdesc.Instr{
		Name: "isx0", CName: "_asip_isx0", Cycles: 1,
		Semantics: "float:add(p0,mul(p1,p2))",
	})
	src := "function y = f(a, b, c)\ny = b * c + a;\nend"
	_, st := compileOn(t, src, p, sema.RealScalar, sema.RealScalar, sema.RealScalar)
	if st.Selected["isx0"] != 1 {
		t.Errorf("commuted: selected %v, want one isx0", st.Selected)
	}
}

// A repeated parameter must only match structurally identical
// subexpressions: mul(p0,p0) matches a*a but never a*b.
func TestMinedSelectRepeatedParam(t *testing.T) {
	p := minedProc(t, pdesc.Instr{
		Name: "sq", CName: "_asip_sq", Cycles: 1,
		Semantics: "float:mul(p0,p0)",
	})
	_, st := compileOn(t, "function y = f(a)\ny = a * a;\nend", p, sema.RealScalar)
	if st.Selected["sq"] != 1 {
		t.Errorf("a*a: selected %v, want one sq", st.Selected)
	}
	_, st = compileOn(t, "function y = f(a, b)\ny = a * b;\nend", p, sema.RealScalar, sema.RealScalar)
	if st.Selected["sq"] != 0 {
		t.Errorf("a*b: selected %v, want no sq", st.Selected)
	}
}

// Larger mined patterns must win over their own sub-patterns.
func TestMinedSelectLargestFirst(t *testing.T) {
	p := minedProc(t,
		pdesc.Instr{Name: "isxmul", CName: "_a", Cycles: 1, Semantics: "float:mul(p0,p1)"},
		pdesc.Instr{Name: "isxfma", CName: "_b", Cycles: 1, Semantics: "float:add(p0,mul(p1,p2))"},
	)
	src := "function y = f(a, b, c)\ny = a + b * c;\nend"
	_, st := compileOn(t, src, p, sema.RealScalar, sema.RealScalar, sema.RealScalar)
	if st.Selected["isxfma"] != 1 {
		t.Errorf("selected %v, want the larger isxfma", st.Selected)
	}
	// The bottom-up pass selects isxmul at the product first; the wider
	// fma fusion unfolds and subsumes it, so its count must return to 0.
	if st.Selected["isxmul"] != 0 {
		t.Errorf("selected %v, subsumed isxmul should not be counted", st.Selected)
	}
}

// Built-in shapes keep priority: on a target declaring both the fma
// built-in and an identically-shaped mined pattern, the built-in wins
// and selection is byte-identical to a pre-mining target.
func TestMinedBuiltinPrecedence(t *testing.T) {
	p := minedProc(t,
		pdesc.Instr{Name: "fma", CName: "_asip_fma", Cycles: 1},
		pdesc.Instr{Name: "isx0", CName: "_asip_isx0", Cycles: 1, Semantics: "float:add(p0,mul(p1,p2))"},
	)
	src := "function y = f(a, b, c)\ny = a + b * c;\nend"
	_, st := compileOn(t, src, p, sema.RealScalar, sema.RealScalar, sema.RealScalar)
	if st.Selected["fma"] != 1 || st.Selected["isx0"] != 0 {
		t.Errorf("selected %v, want the built-in fma", st.Selected)
	}
}

// Regression: a float abs pattern must not swallow a complex
// magnitude. abs : complex -> float has a float result kind, but its
// operand lives in the complex base and the pattern semantics (float
// abs of the bound parameter) would be wrong.
func TestMinedFloatAbsDoesNotMatchComplexMagnitude(t *testing.T) {
	p := minedProc(t, pdesc.Instr{
		Name: "isxabs", CName: "_asip_isxabs", Cycles: 1,
		Semantics: "float:abs(p0)",
	})
	_, st := compileOn(t, "function y = f(a)\ny = abs(a);\nend", p, sema.ComplexScalar)
	if st.Selected["isxabs"] != 0 {
		t.Errorf("selected %v: float abs pattern claimed a complex magnitude", st.Selected)
	}
	// The genuinely-float case still matches.
	_, st = compileOn(t, "function y = f(a)\ny = abs(a);\nend", p, sema.RealScalar)
	if st.Selected["isxabs"] != 1 {
		t.Errorf("selected %v, want one isxabs on float input", st.Selected)
	}
}

// Satellite check: a mined instruction composes bottom-up with the
// built-in catalog. The mined complex sub-conj feeds the accumulator
// operand of a built-in @cmac, exactly like the hand-written
// intrinsics compose among themselves.
func TestMinedComposesInsideBuiltinCmac(t *testing.T) {
	p := minedProc(t,
		pdesc.Instr{Name: "cmac", CName: "_asip_cmac", Cycles: 2},
		pdesc.Instr{Name: "isx0", CName: "_asip_isx0", Cycles: 1, Semantics: "complex:sub(p0,conj(p1))"},
	)
	src := "function y = f(u, v, a, b)\ny = (u - conj(v)) + a * b;\nend"
	f, st := compileOn(t, src, p,
		sema.ComplexScalar, sema.ComplexScalar, sema.ComplexScalar, sema.ComplexScalar)
	if st.Selected["cmac"] != 1 || st.Selected["isx0"] != 1 {
		t.Errorf("selected %v, want cmac and isx0 composed:\n%s", st.Selected, ir.Print(f))
	}
}

// Differential test: the selected mined intrinsics evaluate exactly as
// the unselected expression tree under the ir reference evaluator, on
// both branches of the composition above.
func TestMinedSemanticsDifferential(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		proc   *pdesc.Processor
		params []sema.Type
		args   []interface{}
	}{
		{
			name: "fma",
			src:  "function y = f(a, b, c)\ny = a + b * c;\nend",
			proc: minedProc(t, pdesc.Instr{
				Name: "isx0", CName: "_x", Cycles: 1,
				Semantics: "float:add(p0,mul(p1,p2))",
			}),
			params: []sema.Type{sema.RealScalar, sema.RealScalar, sema.RealScalar},
			args:   []interface{}{1.5, -2.25, 3.75},
		},
		{
			name: "sub-conj-in-cmac",
			src:  "function y = f(u, v, a, b)\ny = (u - conj(v)) + a * b;\nend",
			proc: minedProc(t,
				pdesc.Instr{Name: "cmac", CName: "_m", Cycles: 2},
				pdesc.Instr{Name: "isx0", CName: "_x", Cycles: 1, Semantics: "complex:sub(p0,conj(p1))"},
			),
			params: []sema.Type{sema.ComplexScalar, sema.ComplexScalar, sema.ComplexScalar, sema.ComplexScalar},
			args:   []interface{}{complex(1, 2), complex(-3, 0.5), complex(0.25, -1), complex(2, 2)},
		},
	}
	for _, tc := range cases {
		ref, stRef := compileOn(t, tc.src, &pdesc.Processor{Name: "plain", SIMDWidth: 1}, tc.params...)
		if stRef.Total() != 0 {
			t.Fatalf("%s: reference compile selected %v", tc.name, stRef.Selected)
		}
		sel, stSel := compileOn(t, tc.src, tc.proc, tc.params...)
		if stSel.Total() == 0 {
			t.Fatalf("%s: nothing selected", tc.name)
		}
		r1, err := (&ir.Evaluator{}).Run(ref, tc.args...)
		if err != nil {
			t.Fatalf("%s ref eval: %v", tc.name, err)
		}
		r2, err := (&ir.Evaluator{}).Run(sel, tc.args...)
		if err != nil {
			t.Fatalf("%s sel eval: %v\n%s", tc.name, err, ir.Print(sel))
		}
		if len(r1) != len(r2) {
			t.Fatalf("%s: result arity %d vs %d", tc.name, len(r1), len(r2))
		}
		for i := range r1 {
			if !nearlyEq(r1[i], r2[i]) {
				t.Errorf("%s result %d: %v vs %v", tc.name, i, r1[i], r2[i])
			}
		}
	}
}
