package opt

import (
	"mat2c/internal/ir"
)

// Optimize runs the scalar pipeline to a fixpoint (bounded). Level 0
// disables everything; level 1 and above enables the full pipeline.
func Optimize(f *ir.Func, level int) {
	if level <= 0 {
		return
	}
	for i := 0; i < 10; i++ {
		changed := Fold(f)
		changed = SimplifyControl(f) || changed
		changed = CopyProp(f) || changed
		changed = CSE(f) || changed
		changed = LICM(f) || changed
		changed = Unroll(f) || changed
		changed = DCE(f) || changed
		if !changed {
			return
		}
	}
}

// ----- Control-flow simplification -----

// SimplifyControl resolves conditionals and loops with constant
// conditions: an If takes one arm, a While with a false condition
// disappears (a constant-true While is left alone — it may be an
// intended wait loop and termination is the program's business).
func SimplifyControl(f *ir.Func) bool {
	sc := &simplifyControl{}
	f.Body = sc.block(f.Body)
	return sc.changed
}

type simplifyControl struct{ changed bool }

func constTruth(e ir.Expr) (bool, bool) {
	switch c := e.(type) {
	case *ir.ConstInt:
		return c.V != 0, true
	case *ir.ConstFloat:
		return c.V != 0, true
	case *ir.ConstComplex:
		return c.V != 0, true
	}
	return false, false
}

func (sc *simplifyControl) block(stmts []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.If:
			s.Then = sc.block(s.Then)
			s.Else = sc.block(s.Else)
			if truth, ok := constTruth(s.Cond); ok {
				sc.changed = true
				if truth {
					out = append(out, s.Then...)
				} else {
					out = append(out, s.Else...)
				}
				continue
			}
		case *ir.For:
			s.Body = sc.block(s.Body)
		case *ir.While:
			s.Body = sc.block(s.Body)
			if truth, ok := constTruth(s.Cond); ok && !truth {
				sc.changed = true
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// ----- Copy propagation -----

// CopyProp replaces uses of variables that are direct copies of another
// scalar within a block (and in nested constructs where neither side is
// reassigned).
func CopyProp(f *ir.Func) bool {
	cp := &copyProp{}
	cp.block(f.Body, map[*ir.Sym]*ir.Sym{})
	return cp.changed
}

type copyProp struct{ changed bool }

func (cp *copyProp) sub(e ir.Expr, copies map[*ir.Sym]*ir.Sym) ir.Expr {
	return RewriteExpr(e, func(x ir.Expr) ir.Expr {
		if v, ok := x.(*ir.VarRef); ok {
			if src, ok := copies[v.Sym]; ok {
				cp.changed = true
				return ir.V(src)
			}
		}
		return x
	})
}

// invalidate removes pairs whose destination or source is in written.
func invalidateCopies(copies map[*ir.Sym]*ir.Sym, written map[*ir.Sym]bool) {
	for d, s := range copies {
		if written[d] || written[s] {
			delete(copies, d)
		}
	}
}

func cloneCopies(m map[*ir.Sym]*ir.Sym) map[*ir.Sym]*ir.Sym {
	n := make(map[*ir.Sym]*ir.Sym, len(m))
	for k, v := range m {
		n[k] = v
	}
	return n
}

func (cp *copyProp) block(stmts []ir.Stmt, copies map[*ir.Sym]*ir.Sym) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Assign:
			s.Src = cp.sub(s.Src, copies)
			// Kill pairs involving the destination.
			invalidateCopies(copies, map[*ir.Sym]bool{s.Dst: true})
			if v, ok := s.Src.(*ir.VarRef); ok && v.Sym != s.Dst && !s.Dst.IsArray &&
				s.Dst.Kind() == v.Sym.Kind() {
				copies[s.Dst] = v.Sym
			}
		case *ir.Store:
			s.Index = cp.sub(s.Index, copies)
			s.Val = cp.sub(s.Val, copies)
		case *ir.Alloc:
			s.Rows = cp.sub(s.Rows, copies)
			s.Cols = cp.sub(s.Cols, copies)
		case *ir.For:
			s.Lo = cp.sub(s.Lo, copies)
			s.Hi = cp.sub(s.Hi, copies)
			written := assignedScalars(s.Body)
			written[s.Var] = true
			invalidateCopies(copies, written)
			cp.block(s.Body, cloneCopies(copies))
		case *ir.While:
			written := assignedScalars(s.Body)
			invalidateCopies(copies, written)
			s.Cond = cp.sub(s.Cond, copies)
			cp.block(s.Body, cloneCopies(copies))
		case *ir.If:
			s.Cond = cp.sub(s.Cond, copies)
			cp.block(s.Then, cloneCopies(copies))
			cp.block(s.Else, cloneCopies(copies))
			written := assignedScalars(s.Then)
			for k := range assignedScalars(s.Else) {
				written[k] = true
			}
			invalidateCopies(copies, written)
		}
	}
}

// ----- Common subexpression elimination -----

// CSE reuses earlier block-local computations: when the same pure
// expression is assigned to two scalars, the second becomes a copy.
func CSE(f *ir.Func) bool {
	c := &cse{}
	c.block(f.Body, map[string]*ir.Sym{})
	return c.changed
}

type cse struct{ changed bool }

// cseWorthwhile gates which expressions are tabled.
func cseWorthwhile(e ir.Expr) bool {
	switch e.(type) {
	case *ir.Bin, *ir.Un, *ir.Load, *ir.Dim:
		return true
	}
	return false
}

func pruneAvail(avail map[string]*ir.Sym, writtenScalars, writtenArrays map[*ir.Sym]bool, exprOf map[string]ir.Expr) {
	for k, sym := range avail {
		e := exprOf[k]
		if writtenScalars[sym] || e != nil &&
			(exprReadsScalar(e, writtenScalars) || exprReadsArray(e, writtenArrays)) {
			delete(avail, k)
			delete(exprOf, k)
		}
	}
}

func (c *cse) block(stmts []ir.Stmt, avail map[string]*ir.Sym) {
	exprOf := map[string]ir.Expr{}
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Assign:
			if cseWorthwhile(s.Src) {
				if sym, ok := avail[key(s.Src)]; ok && sym != s.Dst && sym.Kind() == s.Dst.Kind() {
					s.Src = ir.V(sym)
					c.changed = true
				}
			}
			// Invalidate everything depending on Dst.
			pruneAvail(avail, map[*ir.Sym]bool{s.Dst: true}, nil, exprOf)
			if cseWorthwhile(s.Src) && !s.Dst.IsArray && !exprReadsScalar(s.Src, map[*ir.Sym]bool{s.Dst: true}) {
				k := key(s.Src)
				if _, exists := avail[k]; !exists {
					avail[k] = s.Dst
					exprOf[k] = s.Src
				}
			}
		case *ir.Store:
			pruneAvail(avail, nil, map[*ir.Sym]bool{s.Arr: true}, exprOf)
		case *ir.Alloc:
			pruneAvail(avail, nil, map[*ir.Sym]bool{s.Arr: true}, exprOf)
		case *ir.For:
			pruneAvail(avail, assignedScalarsPlus(s.Body, s.Var), storedArrays(s.Body), exprOf)
			c.block(s.Body, cloneAvail(avail))
		case *ir.While:
			pruneAvail(avail, assignedScalars(s.Body), storedArrays(s.Body), exprOf)
			c.block(s.Body, cloneAvail(avail))
		case *ir.If:
			c.block(s.Then, cloneAvail(avail))
			c.block(s.Else, cloneAvail(avail))
			ws := assignedScalars(s.Then)
			for k := range assignedScalars(s.Else) {
				ws[k] = true
			}
			wa := storedArrays(s.Then)
			for k := range storedArrays(s.Else) {
				wa[k] = true
			}
			pruneAvail(avail, ws, wa, exprOf)
		}
	}
}

func assignedScalarsPlus(stmts []ir.Stmt, extra *ir.Sym) map[*ir.Sym]bool {
	m := assignedScalars(stmts)
	m[extra] = true
	return m
}

func cloneAvail(m map[string]*ir.Sym) map[string]*ir.Sym {
	n := make(map[string]*ir.Sym, len(m))
	for k, v := range m {
		n[k] = v
	}
	return n
}

// ----- Dead code elimination -----

// DCE removes assignments to scalars that are never read and stores to
// arrays that are never loaded (results are always live), plus loops and
// conditionals that became empty.
func DCE(f *ir.Func) bool {
	results := map[*ir.Sym]bool{}
	for _, r := range f.Results {
		results[r] = true
	}
	changed := false
	for {
		used := usedScalars(f.Body)
		loaded := loadedArrays(f.Body)
		c := false
		f.Body = dceBlock(f.Body, used, loaded, results, &c)
		if !c {
			break
		}
		changed = true
	}
	return changed
}

func dceBlock(stmts []ir.Stmt, used, loaded, results map[*ir.Sym]bool, changed *bool) []ir.Stmt {
	out := stmts[:0]
	for _, s := range stmts {
		keep := true
		switch s := s.(type) {
		case *ir.Assign:
			if !used[s.Dst] && !results[s.Dst] {
				keep = false
			}
		case *ir.Store:
			if !loaded[s.Arr] && !results[s.Arr] {
				keep = false
			}
		case *ir.Alloc:
			if !loaded[s.Arr] && !results[s.Arr] {
				keep = false
			}
		case *ir.For:
			s.Body = dceBlock(s.Body, used, loaded, results, changed)
			if len(s.Body) == 0 {
				keep = false
			}
		case *ir.While:
			s.Body = dceBlock(s.Body, used, loaded, results, changed)
			// Never remove a While: an empty body may be an intentional
			// (or buggy) spin; removing would change termination.
		case *ir.If:
			s.Then = dceBlock(s.Then, used, loaded, results, changed)
			s.Else = dceBlock(s.Else, used, loaded, results, changed)
			if len(s.Then) == 0 && len(s.Else) == 0 {
				keep = false
			}
		}
		if keep {
			out = append(out, s)
		} else {
			*changed = true
		}
	}
	return out
}

// ----- Loop-invariant code motion -----

// LICM hoists invariant, non-faulting subexpressions out of For bodies
// into fresh preheader temporaries. Only expressions over scalars are
// moved (no memory reads), so hoisting past a zero-trip loop is safe.
func LICM(f *ir.Func) bool {
	l := &licm{fn: f}
	f.Body = l.block(f.Body)
	return l.changed
}

type licm struct {
	fn      *ir.Func
	changed bool
	tempN   int
}

func (l *licm) block(stmts []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.For:
			s.Body = l.block(s.Body)
			pre := l.hoistLoop(s)
			out = append(out, pre...)
			out = append(out, s)
			continue
		case *ir.While:
			s.Body = l.block(s.Body)
		case *ir.If:
			s.Then = l.block(s.Then)
			s.Else = l.block(s.Else)
		}
		out = append(out, s)
	}
	return out
}

// hoistLoop extracts invariant subexpressions of the loop body, returning
// preheader statements.
func (l *licm) hoistLoop(loop *ir.For) []ir.Stmt {
	written := assignedScalars(loop.Body)
	written[loop.Var] = true
	var pre []ir.Stmt
	hoisted := map[string]*ir.Sym{}

	hoistable := func(e ir.Expr) bool {
		switch e.(type) {
		case *ir.Bin, *ir.Un:
		default:
			return false
		}
		if e.Kind().Lanes > 1 || mayFault(e) || hasLoad(e) {
			return false
		}
		// Must not read anything written in the loop.
		return !exprReadsScalar(e, written)
	}

	// Count occurrences of hoistable subexpressions; hoist those with
	// non-trivial structure.
	rewrite := func(e ir.Expr) ir.Expr {
		return RewriteExpr(e, func(x ir.Expr) ir.Expr {
			if !hoistable(x) {
				return x
			}
			// Only hoist expressions with at least one variable (pure
			// constants are already folded) and some depth.
			if !nontrivial(x) {
				return x
			}
			k := key(x)
			sym, ok := hoisted[k]
			if !ok {
				l.tempN++
				sym = l.fn.NewSym("li", x.Kind().Base, false)
				l.fn.Locals = append(l.fn.Locals, sym)
				pre = append(pre, &ir.Assign{Dst: sym, Src: x})
				hoisted[k] = sym
			}
			l.changed = true
			return ir.V(sym)
		})
	}
	WalkStmts(loop.Body, func(s ir.Stmt) { RewriteStmtExprs(s, rewrite) })
	return pre
}

// nontrivial reports whether e is worth a temp: an operation whose
// operands include a variable.
func nontrivial(e ir.Expr) bool {
	hasVar := false
	WalkExpr(e, func(x ir.Expr) {
		if _, ok := x.(*ir.VarRef); ok {
			hasVar = true
		}
	})
	return hasVar
}

// ----- Loop unrolling -----

const (
	unrollMaxTrips = 4
	unrollMaxBody  = 8
)

// Unroll fully expands tiny constant-trip loops, enabling further
// folding (e.g. loops copying matrix literals).
func Unroll(f *ir.Func) bool {
	u := &unroller{}
	f.Body = u.block(f.Body)
	return u.changed
}

type unroller struct{ changed bool }

func (u *unroller) block(stmts []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.For:
			s.Body = u.block(s.Body)
			if exp, ok := u.tryUnroll(s); ok {
				out = append(out, exp...)
				u.changed = true
				continue
			}
		case *ir.While:
			s.Body = u.block(s.Body)
		case *ir.If:
			s.Then = u.block(s.Then)
			s.Else = u.block(s.Else)
		}
		out = append(out, s)
	}
	return out
}

func (u *unroller) tryUnroll(s *ir.For) ([]ir.Stmt, bool) {
	lo, lok := cint(s.Lo)
	hi, hok := cint(s.Hi)
	if !lok || !hok || s.Step == 0 {
		return nil, false
	}
	var trips int64
	if s.Step > 0 {
		if hi < lo {
			return []ir.Stmt{}, true // zero-trip: delete
		}
		trips = (hi-lo)/s.Step + 1
	} else {
		if hi > lo {
			return []ir.Stmt{}, true
		}
		trips = (lo-hi)/(-s.Step) + 1
	}
	if trips > unrollMaxTrips || len(s.Body) > unrollMaxBody {
		return nil, false
	}
	if hasControl(s.Body) {
		return nil, false
	}
	var out []ir.Stmt
	for v := lo; s.Step > 0 && v <= hi || s.Step < 0 && v >= hi; v += s.Step {
		out = append(out, &ir.Assign{Dst: s.Var, Src: ir.CI(v)})
		for _, b := range s.Body {
			out = append(out, CloneStmt(b))
		}
	}
	return out, true
}

// hasControl reports whether the body contains loops, breaks, continues
// or returns (which would change meaning when unrolled).
func hasControl(stmts []ir.Stmt) bool {
	found := false
	WalkStmts(stmts, func(s ir.Stmt) {
		switch s.(type) {
		case *ir.For, *ir.While, *ir.Break, *ir.Continue, *ir.Return:
			found = true
		}
	})
	return found
}

// CloneStmt deep-copies a statement (expressions are immutable in
// practice but statements are mutated by passes, so copy them).
func CloneStmt(s ir.Stmt) ir.Stmt {
	switch s := s.(type) {
	case *ir.Assign:
		return &ir.Assign{Dst: s.Dst, Src: s.Src}
	case *ir.Store:
		return &ir.Store{Arr: s.Arr, Index: s.Index, Val: s.Val}
	case *ir.Alloc:
		return &ir.Alloc{Arr: s.Arr, Rows: s.Rows, Cols: s.Cols}
	case *ir.For:
		body := make([]ir.Stmt, len(s.Body))
		for i, b := range s.Body {
			body[i] = CloneStmt(b)
		}
		return &ir.For{Var: s.Var, Lo: s.Lo, Hi: s.Hi, Step: s.Step, Body: body}
	case *ir.While:
		body := make([]ir.Stmt, len(s.Body))
		for i, b := range s.Body {
			body[i] = CloneStmt(b)
		}
		return &ir.While{Cond: s.Cond, Body: body}
	case *ir.If:
		then := make([]ir.Stmt, len(s.Then))
		for i, b := range s.Then {
			then[i] = CloneStmt(b)
		}
		els := make([]ir.Stmt, len(s.Else))
		for i, b := range s.Else {
			els[i] = CloneStmt(b)
		}
		return &ir.If{Cond: s.Cond, Then: then, Else: els}
	case *ir.Break:
		return &ir.Break{}
	case *ir.Continue:
		return &ir.Continue{}
	case *ir.Return:
		return &ir.Return{}
	}
	return s
}
