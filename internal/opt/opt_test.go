package opt

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/lower"
	"mat2c/internal/mlang"
	"mat2c/internal/sema"
)

func foldOne(t *testing.T, e ir.Expr) ir.Expr {
	t.Helper()
	f := ir.NewFunc("t")
	dst := f.NewSym("y", e.Kind().Base, false)
	f.Results = []*ir.Sym{dst}
	f.Body = []ir.Stmt{&ir.Assign{Dst: dst, Src: e}}
	Fold(f)
	return f.Body[0].(*ir.Assign).Src
}

func TestFoldConstants(t *testing.T) {
	cases := []struct {
		in   ir.Expr
		want string
	}{
		{ir.B(ir.OpAdd, ir.CI(2), ir.CI(3)), "5"},
		{ir.B(ir.OpMul, ir.CI(4), ir.CI(5)), "20"},
		{ir.B(ir.OpSub, ir.CF(1.5), ir.CF(0.5)), "1f"},
		{ir.B(ir.OpLt, ir.CI(1), ir.CI(2)), "1"},
		{ir.B(ir.OpMax, ir.CI(3), ir.CI(7)), "7"},
		{ir.U(ir.OpNeg, ir.CI(5), ir.KInt), "-5"},
		{ir.U(ir.OpToFloat, ir.CI(3), ir.KFloat), "3f"},
		{ir.U(ir.OpFloor, ir.CF(2.7), ir.KInt), "2"},
		{ir.B(ir.OpMul, ir.CC(1+2i), ir.CC(3-1i)), "(5+5i)"},
	}
	for _, c := range cases {
		got := ir.ExprStr(foldOne(t, c.in))
		if got != c.want {
			t.Errorf("fold %s = %s, want %s", ir.ExprStr(c.in), got, c.want)
		}
	}
}

func TestFoldIdentities(t *testing.T) {
	f := ir.NewFunc("t")
	x := f.NewSym("x", ir.Int, false)
	cases := []struct {
		in   ir.Expr
		want string
	}{
		{ir.B(ir.OpAdd, ir.V(x), ir.CI(0)), "x#1"},
		{ir.B(ir.OpAdd, ir.CI(0), ir.V(x)), "x#1"}, // canonicalized then folded
		{ir.B(ir.OpMul, ir.V(x), ir.CI(1)), "x#1"},
		{ir.B(ir.OpMul, ir.CI(1), ir.V(x)), "x#1"},
		{ir.B(ir.OpSub, ir.V(x), ir.CI(0)), "x#1"},
		{ir.B(ir.OpDiv, ir.V(x), ir.CI(1)), "x#1"},
		{ir.B(ir.OpMul, ir.V(x), ir.CI(0)), "0"},
		// (x + 1) - 1 → x
		{ir.B(ir.OpSub, ir.B(ir.OpAdd, ir.V(x), ir.CI(1)), ir.CI(1)), "x#1"},
		// (x + 2) + 3 → x + 5
		{ir.B(ir.OpAdd, ir.B(ir.OpAdd, ir.V(x), ir.CI(2)), ir.CI(3)), "add(x#1, 5)"},
		// (x - 2) + 5 → x + 3
		{ir.B(ir.OpAdd, ir.B(ir.OpSub, ir.V(x), ir.CI(2)), ir.CI(5)), "add(x#1, 3)"},
		// (1 + x) - 1 → x  (const canonicalized right first)
		{ir.B(ir.OpSub, ir.B(ir.OpAdd, ir.CI(1), ir.V(x)), ir.CI(1)), "x#1"},
	}
	for _, c := range cases {
		fn := ir.NewFunc("t")
		dst := fn.NewSym("y", ir.Int, false)
		fn.Results = []*ir.Sym{dst}
		fn.Body = []ir.Stmt{&ir.Assign{Dst: dst, Src: c.in}}
		for i := 0; i < 3; i++ {
			Fold(fn)
		}
		got := ir.ExprStr(fn.Body[0].(*ir.Assign).Src)
		if got != c.want {
			t.Errorf("fold %s = %s, want %s", ir.ExprStr(c.in), got, c.want)
		}
	}
}

func TestFoldDoesNotFoldFloatTimesZero(t *testing.T) {
	f := ir.NewFunc("t")
	x := f.NewSym("x", ir.Float, false)
	e := foldOne(t, ir.B(ir.OpMul, ir.V(x), ir.CF(0)))
	if _, isConst := e.(*ir.ConstFloat); isConst {
		t.Error("x*0.0 must not fold (NaN/Inf semantics)")
	}
}

func TestFoldPowToMul(t *testing.T) {
	f := ir.NewFunc("t")
	x := f.NewSym("x", ir.Float, false)
	e := foldOne(t, &ir.Bin{Op: ir.OpPow, X: ir.V(x), Y: ir.CF(2), K: ir.KFloat})
	if !strings.Contains(ir.ExprStr(e), "mul") {
		t.Errorf("x^2 should strength-reduce to mul, got %s", ir.ExprStr(e))
	}
}

// pipeline compiles a MATLAB source with and without optimization and
// checks both produce identical results on the given inputs.
func pipelineCheck(t *testing.T, src string, params []sema.Type, args func() []interface{}) {
	t.Helper()
	file, err := mlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	entry := file.Funcs[0].Name
	info, err := sema.Analyze(file, entry, params)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	optd, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(optd, 1)

	a1 := args()
	a2 := make([]interface{}, len(a1))
	for i, a := range a1 {
		if arr, ok := a.(*ir.Array); ok {
			a2[i] = arr.Clone()
		} else {
			a2[i] = a
		}
	}
	ev := &ir.Evaluator{}
	r1, err := ev.Run(plain, a1...)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	ev2 := &ir.Evaluator{}
	r2, err := ev2.Run(optd, a2...)
	if err != nil {
		t.Fatalf("optimized run: %v\nIR:\n%s", err, ir.Print(optd))
	}
	if len(r1) != len(r2) {
		t.Fatalf("result counts differ")
	}
	for i := range r1 {
		if !resultEq(r1[i], r2[i]) {
			t.Errorf("result %d differs: plain=%v optimized=%v", i, r1[i], r2[i])
		}
	}
}

func resultEq(a, b interface{}) bool {
	switch x := a.(type) {
	case float64:
		y, ok := b.(float64)
		return ok && (x == y || math.IsNaN(x) && math.IsNaN(y) || math.Abs(x-y) < 1e-9*(1+math.Abs(x)))
	case int64:
		y, ok := b.(int64)
		return ok && x == y
	case complex128:
		y, ok := b.(complex128)
		return ok && x == y
	case *ir.Array:
		y, ok := b.(*ir.Array)
		if !ok || x.Rows != y.Rows || x.Cols != y.Cols || x.Elem != y.Elem {
			return false
		}
		for i := 0; i < x.Len(); i++ {
			d := x.At(i) - y.At(i)
			if real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
				return false
			}
		}
		return true
	}
	return false
}

func dynVec() sema.Type {
	return sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func randVec(n int, r *rand.Rand) *ir.Array {
	a := ir.NewFloatArray(1, n)
	for i := range a.F {
		a.F[i] = r.NormFloat64()
	}
	return a
}

func TestOptimizePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	kernels := []struct {
		src    string
		params []sema.Type
		args   func() []interface{}
	}{
		{
			src: `function y = k1(x)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = x(i) * 2 + 1;
end
end`,
			params: []sema.Type{dynVec()},
			args:   func() []interface{} { return []interface{}{randVec(17, r)} },
		},
		{
			src: `function s = k2(x)
s = 0;
for i = 1:length(x)
    if x(i) > 0
        s = s + x(i) * x(i);
    else
        s = s - 1;
    end
end
end`,
			params: []sema.Type{dynVec()},
			args:   func() []interface{} { return []interface{}{randVec(33, r)} },
		},
		{
			src: `function y = k3(a, b)
y = sum(a .* b) / length(a) + max(a) - min(b);
end`,
			params: []sema.Type{dynVec(), dynVec()},
			args: func() []interface{} {
				return []interface{}{randVec(16, r), randVec(16, r)}
			},
		},
		{
			src: `function y = k4(x)
y = zeros(1, 4);
for i = 1:4
    y(i) = i * i;
end
y = y + x(1);
end`,
			params: []sema.Type{dynVec()},
			args:   func() []interface{} { return []interface{}{randVec(3, r)} },
		},
		{
			src: `function s = k5(n)
s = 0;
m = 1;
while m < n
    s = s + m;
    m = m * 2;
end
end`,
			params: []sema.Type{sema.IntScalar},
			args:   func() []interface{} { return []interface{}{int64(100)} },
		},
	}
	for i, k := range kernels {
		for trial := 0; trial < 3; trial++ {
			pipelineCheck(t, k.src, k.params, k.args)
		}
		_ = i
	}
}

func TestDCERemovesDeadAssign(t *testing.T) {
	f := ir.NewFunc("t")
	x := f.NewSym("x", ir.Float, false)
	y := f.NewSym("y", ir.Float, false)
	f.Results = []*ir.Sym{y}
	f.Body = []ir.Stmt{
		&ir.Assign{Dst: x, Src: ir.CF(1)}, // dead
		&ir.Assign{Dst: y, Src: ir.CF(2)},
	}
	if !DCE(f) {
		t.Fatal("DCE reported no change")
	}
	if len(f.Body) != 1 {
		t.Errorf("body has %d statements, want 1", len(f.Body))
	}
}

func TestDCEKeepsResultChain(t *testing.T) {
	f := ir.NewFunc("t")
	x := f.NewSym("x", ir.Float, false)
	y := f.NewSym("y", ir.Float, false)
	f.Results = []*ir.Sym{y}
	f.Body = []ir.Stmt{
		&ir.Assign{Dst: x, Src: ir.CF(1)},
		&ir.Assign{Dst: y, Src: ir.B(ir.OpAdd, ir.V(x), ir.CF(1))},
	}
	DCE(f)
	if len(f.Body) != 2 {
		t.Errorf("body has %d statements, want 2", len(f.Body))
	}
}

func TestDCERemovesDeadArray(t *testing.T) {
	f := ir.NewFunc("t")
	a := f.NewSym("a", ir.Float, true)
	y := f.NewSym("y", ir.Float, false)
	f.Results = []*ir.Sym{y}
	k := f.NewSym("k", ir.Int, false)
	f.Body = []ir.Stmt{
		&ir.Alloc{Arr: a, Rows: ir.CI(1), Cols: ir.CI(8)},
		&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.CI(7), Step: 1, Body: []ir.Stmt{
			&ir.Store{Arr: a, Index: ir.V(k), Val: ir.CF(1)},
		}},
		&ir.Assign{Dst: y, Src: ir.CF(3)},
	}
	DCE(f)
	if len(f.Body) != 1 {
		t.Errorf("body has %d statements, want 1:\n%s", len(f.Body), ir.Print(f))
	}
}

func TestDCEKeepsWhile(t *testing.T) {
	f := ir.NewFunc("t")
	y := f.NewSym("y", ir.Float, false)
	f.Results = []*ir.Sym{y}
	f.Body = []ir.Stmt{
		&ir.Assign{Dst: y, Src: ir.CF(1)},
		&ir.While{Cond: ir.CI(0), Body: nil},
	}
	DCE(f)
	if len(f.Body) != 2 {
		t.Error("While must not be removed")
	}
}

func TestCopyPropSimple(t *testing.T) {
	f := ir.NewFunc("t")
	a := f.NewSym("a", ir.Float, false)
	b := f.NewSym("b", ir.Float, false)
	y := f.NewSym("y", ir.Float, false)
	f.Params = []*ir.Sym{a}
	f.Results = []*ir.Sym{y}
	f.Body = []ir.Stmt{
		&ir.Assign{Dst: b, Src: ir.V(a)},
		&ir.Assign{Dst: y, Src: ir.B(ir.OpAdd, ir.V(b), ir.V(b))},
	}
	CopyProp(f)
	src := ir.ExprStr(f.Body[1].(*ir.Assign).Src)
	if !strings.Contains(src, "a#") || strings.Contains(src, "b#") {
		t.Errorf("copy not propagated: %s", src)
	}
}

func TestCopyPropInvalidatedByReassign(t *testing.T) {
	f := ir.NewFunc("t")
	a := f.NewSym("a", ir.Float, false)
	b := f.NewSym("b", ir.Float, false)
	y := f.NewSym("y", ir.Float, false)
	f.Params = []*ir.Sym{a}
	f.Results = []*ir.Sym{y}
	f.Body = []ir.Stmt{
		&ir.Assign{Dst: b, Src: ir.V(a)},
		&ir.Assign{Dst: a, Src: ir.CF(99)},
		&ir.Assign{Dst: y, Src: ir.V(b)},
	}
	CopyProp(f)
	src := ir.ExprStr(f.Body[2].(*ir.Assign).Src)
	if !strings.Contains(src, "b#") {
		t.Errorf("stale copy propagated: %s", src)
	}
}

func TestCSESharesComputation(t *testing.T) {
	f := ir.NewFunc("t")
	a := f.NewSym("a", ir.Float, false)
	u := f.NewSym("u", ir.Float, false)
	v := f.NewSym("v", ir.Float, false)
	y := f.NewSym("y", ir.Float, false)
	f.Params = []*ir.Sym{a}
	f.Results = []*ir.Sym{y}
	expr := func() ir.Expr { return ir.B(ir.OpMul, ir.V(a), ir.V(a)) }
	f.Body = []ir.Stmt{
		&ir.Assign{Dst: u, Src: expr()},
		&ir.Assign{Dst: v, Src: expr()},
		&ir.Assign{Dst: y, Src: ir.B(ir.OpAdd, ir.V(u), ir.V(v))},
	}
	if !CSE(f) {
		t.Fatal("CSE reported no change")
	}
	src := ir.ExprStr(f.Body[1].(*ir.Assign).Src)
	if !strings.Contains(src, "u#") {
		t.Errorf("v should become copy of u, got %s", src)
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	f := ir.NewFunc("t")
	n := f.NewSym("n", ir.Int, false)
	m := f.NewSym("m", ir.Int, false)
	y := f.NewSym("y", ir.Float, true)
	k := f.NewSym("k", ir.Int, false)
	f.Params = []*ir.Sym{n, m}
	f.Results = []*ir.Sym{y}
	// store y[k + n*m*2] inside the loop: n*m*2 is invariant.
	f.Body = []ir.Stmt{
		&ir.Alloc{Arr: y, Rows: ir.CI(1), Cols: ir.CI(64)},
		&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.CI(7), Step: 1, Body: []ir.Stmt{
			&ir.Store{Arr: y, Index: ir.IAdd(ir.V(k), ir.B(ir.OpMul, ir.B(ir.OpMul, ir.V(n), ir.V(m)), ir.CI(2))), Val: ir.CF(1)},
		}},
	}
	if !LICM(f) {
		t.Fatal("LICM reported no change")
	}
	// Preheader assign must precede the loop.
	if _, ok := f.Body[1].(*ir.Assign); !ok {
		t.Errorf("expected hoisted assign before loop:\n%s", ir.Print(f))
	}
	// Semantics: y[k + n*m*2] with n=2,m=1 → indices 4..11 set.
	ev := &ir.Evaluator{}
	res, err := ev.Run(f, int64(2), int64(1))
	if err != nil {
		t.Fatal(err)
	}
	arr := res[0].(*ir.Array)
	if arr.F[4] != 1 || arr.F[11] != 1 || arr.F[3] != 0 || arr.F[12] != 0 {
		t.Errorf("wrong store pattern: %v", arr.F[:16])
	}
}

func TestUnrollSmallLoop(t *testing.T) {
	f := ir.NewFunc("t")
	y := f.NewSym("y", ir.Float, false)
	k := f.NewSym("k", ir.Int, false)
	f.Results = []*ir.Sym{y}
	f.Body = []ir.Stmt{
		&ir.Assign{Dst: y, Src: ir.CF(0)},
		&ir.For{Var: k, Lo: ir.CI(1), Hi: ir.CI(3), Step: 1, Body: []ir.Stmt{
			&ir.Assign{Dst: y, Src: ir.B(ir.OpAdd, ir.V(y), ir.U(ir.OpToFloat, ir.V(k), ir.KFloat))},
		}},
	}
	if !Unroll(f) {
		t.Fatal("Unroll reported no change")
	}
	for _, s := range f.Body {
		if _, ok := s.(*ir.For); ok {
			t.Fatal("loop not unrolled")
		}
	}
	ev := &ir.Evaluator{}
	res, err := ev.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(float64) != 6 {
		t.Errorf("got %v, want 6", res[0])
	}
}

func TestUnrollSkipsLargeAndZeroTrip(t *testing.T) {
	f := ir.NewFunc("t")
	y := f.NewSym("y", ir.Float, false)
	k := f.NewSym("k", ir.Int, false)
	f.Results = []*ir.Sym{y}
	big := &ir.For{Var: k, Lo: ir.CI(0), Hi: ir.CI(1000), Step: 1, Body: []ir.Stmt{
		&ir.Assign{Dst: y, Src: ir.V(y)},
	}}
	zero := &ir.For{Var: k, Lo: ir.CI(5), Hi: ir.CI(1), Step: 1, Body: []ir.Stmt{
		&ir.Assign{Dst: y, Src: ir.CF(9)},
	}}
	f.Body = []ir.Stmt{&ir.Assign{Dst: y, Src: ir.CF(0)}, big, zero}
	Unroll(f)
	found := false
	for _, s := range f.Body {
		if s == ir.Stmt(big) {
			found = true
		}
		if s == ir.Stmt(zero) {
			t.Error("zero-trip loop should be deleted")
		}
	}
	if !found {
		t.Error("large loop should remain")
	}
}

func TestOptimizeLevelZeroIsNoop(t *testing.T) {
	f := ir.NewFunc("t")
	x := f.NewSym("x", ir.Float, false)
	y := f.NewSym("y", ir.Float, false)
	f.Results = []*ir.Sym{y}
	f.Body = []ir.Stmt{
		&ir.Assign{Dst: x, Src: ir.CF(1)},
		&ir.Assign{Dst: y, Src: ir.B(ir.OpAdd, ir.CI(1), ir.CI(2))},
	}
	Optimize(f, 0)
	if len(f.Body) != 2 {
		t.Error("level 0 must not modify the function")
	}
	if _, ok := f.Body[1].(*ir.Assign).Src.(*ir.Bin); !ok {
		t.Error("level 0 must not fold")
	}
}

func TestSimplifyControlConstIf(t *testing.T) {
	f := ir.NewFunc("t")
	y := f.NewSym("y", ir.Float, false)
	f.Results = []*ir.Sym{y}
	f.Body = []ir.Stmt{
		&ir.If{Cond: ir.CI(1),
			Then: []ir.Stmt{&ir.Assign{Dst: y, Src: ir.CF(10)}},
			Else: []ir.Stmt{&ir.Assign{Dst: y, Src: ir.CF(20)}}},
		&ir.If{Cond: ir.CI(0),
			Then: []ir.Stmt{&ir.Assign{Dst: y, Src: ir.CF(99)}}},
	}
	if !SimplifyControl(f) {
		t.Fatal("no change reported")
	}
	if len(f.Body) != 1 {
		t.Fatalf("body has %d statements:\n%s", len(f.Body), ir.Print(f))
	}
	ev := &ir.Evaluator{}
	res, err := ev.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(float64) != 10 {
		t.Errorf("got %v, want 10", res[0])
	}
}

func TestSimplifyControlWhileFalse(t *testing.T) {
	f := ir.NewFunc("t")
	y := f.NewSym("y", ir.Float, false)
	f.Results = []*ir.Sym{y}
	spin := &ir.While{Cond: ir.CI(0), Body: []ir.Stmt{&ir.Assign{Dst: y, Src: ir.CF(5)}}}
	keep := &ir.While{Cond: ir.CI(1), Body: []ir.Stmt{&ir.Break{}}}
	f.Body = []ir.Stmt{&ir.Assign{Dst: y, Src: ir.CF(1)}, spin, keep}
	SimplifyControl(f)
	for _, s := range f.Body {
		if s == ir.Stmt(spin) {
			t.Error("while(0) should be removed")
		}
	}
	found := false
	for _, s := range f.Body {
		if s == ir.Stmt(keep) {
			found = true
		}
	}
	if !found {
		t.Error("while(1) must be kept")
	}
}

func TestSimplifyControlSwitchStyleChain(t *testing.T) {
	// A lowered switch on a constant subject folds to one arm after
	// Fold + SimplifyControl.
	f := ir.NewFunc("t")
	y := f.NewSym("y", ir.Float, false)
	f.Results = []*ir.Sym{y}
	subj := ir.CI(2)
	f.Body = []ir.Stmt{
		&ir.If{Cond: ir.B(ir.OpEq, subj, ir.CI(1)),
			Then: []ir.Stmt{&ir.Assign{Dst: y, Src: ir.CF(1)}},
			Else: []ir.Stmt{&ir.If{Cond: ir.B(ir.OpEq, subj, ir.CI(2)),
				Then: []ir.Stmt{&ir.Assign{Dst: y, Src: ir.CF(2)}},
				Else: []ir.Stmt{&ir.Assign{Dst: y, Src: ir.CF(3)}}}}},
	}
	Optimize(f, 1)
	if len(f.Body) != 1 {
		t.Fatalf("expected a single assignment after folding:\n%s", ir.Print(f))
	}
	if a, ok := f.Body[0].(*ir.Assign); !ok || a.Src.(*ir.ConstFloat).V != 2 {
		t.Errorf("wrong arm survived:\n%s", ir.Print(f))
	}
}
