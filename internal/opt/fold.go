package opt

import (
	"math"
	"math/cmplx"

	"mat2c/internal/ir"
)

// Fold performs constant folding and algebraic simplification over the
// whole function. It returns whether anything changed.
func Fold(f *ir.Func) bool {
	changed := false
	WalkStmts(f.Body, func(s ir.Stmt) {
		RewriteStmtExprs(s, func(e ir.Expr) ir.Expr {
			ne := foldExpr(e)
			if ne != e {
				changed = true
			}
			return ne
		})
	})
	return changed
}

func cint(e ir.Expr) (int64, bool) {
	c, ok := e.(*ir.ConstInt)
	if !ok {
		return 0, false
	}
	return c.V, true
}

func cfloat(e ir.Expr) (float64, bool) {
	c, ok := e.(*ir.ConstFloat)
	if !ok {
		return 0, false
	}
	return c.V, true
}

func isConst(e ir.Expr) bool {
	switch e.(type) {
	case *ir.ConstInt, *ir.ConstFloat, *ir.ConstComplex:
		return true
	}
	return false
}

// foldExpr rewrites one node (children already folded).
func foldExpr(e ir.Expr) ir.Expr {
	switch x := e.(type) {
	case *ir.Bin:
		return foldBin(x)
	case *ir.Un:
		return foldUn(x)
	case *ir.Select:
		// A constant predicate picks one arm (the arms are pure).
		if c, ok := cint(x.Cond); ok {
			if c != 0 {
				return x.Then
			}
			return x.Else
		}
		if c, ok := cfloat(x.Cond); ok {
			if c != 0 {
				return x.Then
			}
			return x.Else
		}
	}
	return e
}

func foldBin(x *ir.Bin) ir.Expr {
	if x.K.Lanes > 1 {
		return x // vector nodes are produced post-fold; leave them alone
	}
	// Canonicalize: constant operand to the right for commutative ops.
	if x.Op.Commutative() && isConst(x.X) && !isConst(x.Y) {
		x = &ir.Bin{Op: x.Op, X: x.Y, Y: x.X, K: x.K}
	}

	// Full constant folding.
	if folded, ok := foldConstBin(x); ok {
		return folded
	}

	// Integer add/sub chain combining: (v ± c1) ± c2 → v ± c.
	if x.K.Base == ir.Int && (x.Op == ir.OpAdd || x.Op == ir.OpSub) {
		if c2, ok := cint(x.Y); ok {
			if inner, iok := x.X.(*ir.Bin); iok && inner.K.Base == ir.Int &&
				(inner.Op == ir.OpAdd || inner.Op == ir.OpSub) {
				if c1, ok := cint(inner.Y); ok {
					s1, s2 := c1, c2
					if inner.Op == ir.OpSub {
						s1 = -s1
					}
					if x.Op == ir.OpSub {
						s2 = -s2
					}
					total := s1 + s2
					switch {
					case total == 0:
						return inner.X
					case total > 0:
						return &ir.Bin{Op: ir.OpAdd, X: inner.X, Y: ir.CI(total), K: x.K}
					default:
						return &ir.Bin{Op: ir.OpSub, X: inner.X, Y: ir.CI(-total), K: x.K}
					}
				}
			}
		}
	}

	// Identities.
	switch x.Op {
	case ir.OpAdd:
		if c, ok := cint(x.Y); ok && c == 0 {
			return x.X
		}
		if c, ok := cfloat(x.Y); ok && c == 0 && x.K.Base == x.X.Kind().Base {
			return x.X
		}
	case ir.OpSub:
		if c, ok := cint(x.Y); ok && c == 0 {
			return x.X
		}
		if c, ok := cfloat(x.Y); ok && c == 0 && x.K.Base == x.X.Kind().Base {
			return x.X
		}
	case ir.OpMul:
		if c, ok := cint(x.Y); ok {
			switch c {
			case 1:
				return x.X
			case 0:
				if x.K.Base == ir.Int && !mayFault(x.X) {
					return ir.CI(0)
				}
			}
		}
		if c, ok := cfloat(x.Y); ok && c == 1 && x.K.Base == x.X.Kind().Base {
			return x.X
		}
	case ir.OpDiv:
		if c, ok := cint(x.Y); ok && c == 1 {
			return x.X
		}
		if c, ok := cfloat(x.Y); ok && c == 1 && x.K.Base == x.X.Kind().Base {
			return x.X
		}
	case ir.OpPow:
		if c, ok := cfloat(x.Y); ok {
			switch c {
			case 1:
				return x.X
			case 2:
				return &ir.Bin{Op: ir.OpMul, X: x.X, Y: x.X, K: x.K}
			}
		}
		if c, ok := cint(x.Y); ok {
			switch c {
			case 1:
				return x.X
			case 2:
				return &ir.Bin{Op: ir.OpMul, X: x.X, Y: x.X, K: x.K}
			}
		}
	}
	return x
}

func foldConstBin(x *ir.Bin) (ir.Expr, bool) {
	// Int × Int.
	if a, ok := cint(x.X); ok {
		if b, ok := cint(x.Y); ok {
			switch x.Op {
			case ir.OpAdd:
				return ir.CI(a + b), true
			case ir.OpSub:
				return ir.CI(a - b), true
			case ir.OpMul:
				return ir.CI(a * b), true
			case ir.OpDiv:
				if b != 0 {
					if x.K.Base == ir.Float {
						return ir.CF(float64(a) / float64(b)), true
					}
					return ir.CI(a / b), true
				}
			case ir.OpRem:
				if b != 0 {
					return ir.CI(a % b), true
				}
			case ir.OpMin:
				if a < b {
					return ir.CI(a), true
				}
				return ir.CI(b), true
			case ir.OpMax:
				if a > b {
					return ir.CI(a), true
				}
				return ir.CI(b), true
			case ir.OpLt:
				return ir.CI(b2i(a < b)), true
			case ir.OpLe:
				return ir.CI(b2i(a <= b)), true
			case ir.OpGt:
				return ir.CI(b2i(a > b)), true
			case ir.OpGe:
				return ir.CI(b2i(a >= b)), true
			case ir.OpEq:
				return ir.CI(b2i(a == b)), true
			case ir.OpNe:
				return ir.CI(b2i(a != b)), true
			case ir.OpAnd:
				return ir.CI(b2i(a != 0 && b != 0)), true
			case ir.OpOr:
				return ir.CI(b2i(a != 0 || b != 0)), true
			case ir.OpPow:
				return ir.CF(math.Pow(float64(a), float64(b))), true
			}
			return nil, false
		}
	}
	// Float × Float (allowing int constants promoted).
	af, aok := constAsFloat(x.X)
	bf, bok := constAsFloat(x.Y)
	if aok && bok && x.K.Base != ir.Complex {
		var r float64
		switch x.Op {
		case ir.OpAdd:
			r = af + bf
		case ir.OpSub:
			r = af - bf
		case ir.OpMul:
			r = af * bf
		case ir.OpDiv:
			if bf == 0 {
				return nil, false
			}
			r = af / bf
		case ir.OpRem:
			r = math.Mod(af, bf)
		case ir.OpPow:
			r = math.Pow(af, bf)
		case ir.OpMin:
			r = math.Min(af, bf)
		case ir.OpMax:
			r = math.Max(af, bf)
		case ir.OpLt:
			return ir.CI(b2i(af < bf)), true
		case ir.OpLe:
			return ir.CI(b2i(af <= bf)), true
		case ir.OpGt:
			return ir.CI(b2i(af > bf)), true
		case ir.OpGe:
			return ir.CI(b2i(af >= bf)), true
		case ir.OpEq:
			return ir.CI(b2i(af == bf)), true
		case ir.OpNe:
			return ir.CI(b2i(af != bf)), true
		default:
			return nil, false
		}
		if x.K.Base == ir.Int {
			return ir.CI(int64(r)), true
		}
		return ir.CF(r), true
	}
	// Complex constants.
	ac, aok := constAsComplex(x.X)
	bc, bok := constAsComplex(x.Y)
	if aok && bok && x.K.Base == ir.Complex {
		switch x.Op {
		case ir.OpAdd:
			return ir.CC(ac + bc), true
		case ir.OpSub:
			return ir.CC(ac - bc), true
		case ir.OpMul:
			return ir.CC(ac * bc), true
		case ir.OpDiv:
			if bc != 0 {
				return ir.CC(ac / bc), true
			}
		case ir.OpPow:
			return ir.CC(cmplx.Pow(ac, bc)), true
		}
	}
	return nil, false
}

func constAsFloat(e ir.Expr) (float64, bool) {
	switch c := e.(type) {
	case *ir.ConstInt:
		return float64(c.V), true
	case *ir.ConstFloat:
		return c.V, true
	}
	return 0, false
}

func constAsComplex(e ir.Expr) (complex128, bool) {
	switch c := e.(type) {
	case *ir.ConstInt:
		return complex(float64(c.V), 0), true
	case *ir.ConstFloat:
		return complex(c.V, 0), true
	case *ir.ConstComplex:
		return c.V, true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func foldUn(x *ir.Un) ir.Expr {
	if x.K.Lanes > 1 {
		return x
	}
	switch x.Op {
	case ir.OpNeg:
		if c, ok := cint(x.X); ok {
			if x.K.Base == ir.Float {
				return ir.CF(float64(-c))
			}
			return ir.CI(-c)
		}
		if c, ok := cfloat(x.X); ok {
			return ir.CF(-c)
		}
		if c, ok := x.X.(*ir.ConstComplex); ok {
			return ir.CC(-c.V)
		}
		if inner, ok := x.X.(*ir.Un); ok && inner.Op == ir.OpNeg && inner.K == x.K {
			return inner.X
		}
	case ir.OpNot:
		if c, ok := cint(x.X); ok {
			return ir.CI(b2i(c == 0))
		}
		if c, ok := cfloat(x.X); ok {
			return ir.CI(b2i(c == 0))
		}
	case ir.OpToFloat:
		if c, ok := cint(x.X); ok {
			return ir.CF(float64(c))
		}
		if _, ok := cfloat(x.X); ok {
			return x.X
		}
	case ir.OpToInt:
		if c, ok := cfloat(x.X); ok {
			return ir.CI(int64(math.Round(c)))
		}
		if _, ok := cint(x.X); ok {
			return x.X
		}
		// toint(tofloat(x)) == x
		if inner, ok := x.X.(*ir.Un); ok && inner.Op == ir.OpToFloat &&
			inner.X.Kind().Base == ir.Int && x.K.Base == ir.Int {
			return inner.X
		}
	case ir.OpToComplex:
		if c, ok := constAsComplex(x.X); ok {
			return ir.CC(c)
		}
	case ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
		if c, ok := cfloat(x.X); ok {
			var r float64
			switch x.Op {
			case ir.OpFloor:
				r = math.Floor(c)
			case ir.OpCeil:
				r = math.Ceil(c)
			case ir.OpRound:
				r = math.Round(c)
			default:
				r = math.Trunc(c)
			}
			if x.K.Base == ir.Int {
				return ir.CI(int64(r))
			}
			return ir.CF(r)
		}
		if _, ok := cint(x.X); ok && x.K.Base == ir.Int {
			return x.X
		}
	case ir.OpAbs:
		if c, ok := cfloat(x.X); ok {
			return ir.CF(math.Abs(c))
		}
	case ir.OpSqrt:
		if c, ok := cfloat(x.X); ok && c >= 0 && x.K.Base == ir.Float {
			return ir.CF(math.Sqrt(c))
		}
	case ir.OpRe:
		if c, ok := x.X.(*ir.ConstComplex); ok {
			return ir.CF(real(c.V))
		}
	case ir.OpIm:
		if c, ok := x.X.(*ir.ConstComplex); ok {
			return ir.CF(imag(c.V))
		}
	case ir.OpConj:
		if c, ok := x.X.(*ir.ConstComplex); ok {
			return ir.CC(cmplx.Conj(c.V))
		}
	}
	return x
}
