// Package opt implements the scalar optimization pipeline that runs on
// the loop IR between lowering and vectorization: constant folding with
// algebraic simplification, block-local copy propagation and common
// subexpression elimination, dead code elimination, loop-invariant code
// motion, and full unrolling of tiny constant-trip loops.
//
// These are the "standard optimizations" a MATLAB-to-C product applies
// to both the proposed flow and the baseline; they are deliberately
// target-independent. Target-specific work (SIMD, custom instructions)
// lives in the vectorize and isel packages.
package opt

import (
	"mat2c/internal/ir"
)

// RewriteExpr applies f bottom-up over the expression tree, rebuilding
// nodes whose children changed.
func RewriteExpr(e ir.Expr, f func(ir.Expr) ir.Expr) ir.Expr {
	switch x := e.(type) {
	case *ir.Bin:
		nx := RewriteExpr(x.X, f)
		ny := RewriteExpr(x.Y, f)
		if nx != x.X || ny != x.Y {
			e = &ir.Bin{Op: x.Op, X: nx, Y: ny, K: x.K}
		}
	case *ir.Un:
		nx := RewriteExpr(x.X, f)
		if nx != x.X {
			e = &ir.Un{Op: x.Op, X: nx, K: x.K}
		}
	case *ir.Load:
		ni := RewriteExpr(x.Index, f)
		if ni != x.Index {
			e = &ir.Load{Arr: x.Arr, Index: ni}
		}
	case *ir.VecLoad:
		ni := RewriteExpr(x.Index, f)
		if ni != x.Index {
			e = &ir.VecLoad{Arr: x.Arr, Index: ni, Stride: x.Stride, K: x.K}
		}
	case *ir.Broadcast:
		nx := RewriteExpr(x.X, f)
		if nx != x.X {
			e = &ir.Broadcast{X: nx, K: x.K}
		}
	case *ir.Ramp:
		nb := RewriteExpr(x.Base, f)
		if nb != x.Base {
			e = &ir.Ramp{Base: nb, Step: x.Step, K: x.K}
		}
	case *ir.Select:
		nc := RewriteExpr(x.Cond, f)
		nt := RewriteExpr(x.Then, f)
		ne := RewriteExpr(x.Else, f)
		if nc != x.Cond || nt != x.Then || ne != x.Else {
			e = &ir.Select{Cond: nc, Then: nt, Else: ne, K: x.K}
		}
	case *ir.Reduce:
		nx := RewriteExpr(x.X, f)
		if nx != x.X {
			e = &ir.Reduce{Op: x.Op, X: nx, K: x.K}
		}
	case *ir.Intrinsic:
		var args []ir.Expr
		changed := false
		for _, a := range x.Args {
			na := RewriteExpr(a, f)
			if na != a {
				changed = true
			}
			args = append(args, na)
		}
		if changed {
			e = &ir.Intrinsic{Name: x.Name, Args: args, K: x.K}
		}
	}
	return f(e)
}

// WalkExpr visits every node of the expression tree (children first).
func WalkExpr(e ir.Expr, f func(ir.Expr)) {
	switch x := e.(type) {
	case *ir.Bin:
		WalkExpr(x.X, f)
		WalkExpr(x.Y, f)
	case *ir.Un:
		WalkExpr(x.X, f)
	case *ir.Load:
		WalkExpr(x.Index, f)
	case *ir.VecLoad:
		WalkExpr(x.Index, f)
	case *ir.Broadcast:
		WalkExpr(x.X, f)
	case *ir.Ramp:
		WalkExpr(x.Base, f)
	case *ir.Select:
		WalkExpr(x.Cond, f)
		WalkExpr(x.Then, f)
		WalkExpr(x.Else, f)
	case *ir.Reduce:
		WalkExpr(x.X, f)
	case *ir.Intrinsic:
		for _, a := range x.Args {
			WalkExpr(a, f)
		}
	}
	f(e)
}

// RewriteStmtExprs rewrites every expression embedded in a statement.
func RewriteStmtExprs(s ir.Stmt, f func(ir.Expr) ir.Expr) {
	rw := func(e ir.Expr) ir.Expr { return RewriteExpr(e, f) }
	switch s := s.(type) {
	case *ir.Assign:
		s.Src = rw(s.Src)
	case *ir.Store:
		s.Index = rw(s.Index)
		s.Val = rw(s.Val)
	case *ir.Alloc:
		s.Rows = rw(s.Rows)
		s.Cols = rw(s.Cols)
	case *ir.For:
		s.Lo = rw(s.Lo)
		s.Hi = rw(s.Hi)
	case *ir.If:
		s.Cond = rw(s.Cond)
	case *ir.While:
		s.Cond = rw(s.Cond)
	}
}

// WalkStmts visits statements recursively (pre-order).
func WalkStmts(stmts []ir.Stmt, f func(ir.Stmt)) {
	for _, s := range stmts {
		f(s)
		switch s := s.(type) {
		case *ir.For:
			WalkStmts(s.Body, f)
		case *ir.While:
			WalkStmts(s.Body, f)
		case *ir.If:
			WalkStmts(s.Then, f)
			WalkStmts(s.Else, f)
		}
	}
}

// StmtExprs calls f on every top-level expression of s (not recursive
// into sub-statements).
func StmtExprs(s ir.Stmt, f func(ir.Expr)) {
	switch s := s.(type) {
	case *ir.Assign:
		f(s.Src)
	case *ir.Store:
		f(s.Index)
		f(s.Val)
	case *ir.Alloc:
		f(s.Rows)
		f(s.Cols)
	case *ir.For:
		f(s.Lo)
		f(s.Hi)
	case *ir.If:
		f(s.Cond)
	case *ir.While:
		f(s.Cond)
	}
}

// usedScalars collects scalar symbols read anywhere under stmts.
func usedScalars(stmts []ir.Stmt) map[*ir.Sym]bool {
	used := map[*ir.Sym]bool{}
	WalkStmts(stmts, func(s ir.Stmt) {
		StmtExprs(s, func(e ir.Expr) {
			WalkExpr(e, func(x ir.Expr) {
				if v, ok := x.(*ir.VarRef); ok {
					used[v.Sym] = true
				}
			})
		})
	})
	return used
}

// loadedArrays collects arrays read (Load/VecLoad/Dim) under stmts.
func loadedArrays(stmts []ir.Stmt) map[*ir.Sym]bool {
	used := map[*ir.Sym]bool{}
	WalkStmts(stmts, func(s ir.Stmt) {
		StmtExprs(s, func(e ir.Expr) {
			WalkExpr(e, func(x ir.Expr) {
				switch x := x.(type) {
				case *ir.Load:
					used[x.Arr] = true
				case *ir.VecLoad:
					used[x.Arr] = true
				case *ir.Dim:
					used[x.Arr] = true
				}
			})
		})
	})
	return used
}

// assignedScalars collects scalar symbols written under stmts (Assign
// destinations and For loop counters).
func assignedScalars(stmts []ir.Stmt) map[*ir.Sym]bool {
	w := map[*ir.Sym]bool{}
	WalkStmts(stmts, func(s ir.Stmt) {
		switch s := s.(type) {
		case *ir.Assign:
			w[s.Dst] = true
		case *ir.For:
			w[s.Var] = true
		}
	})
	return w
}

// storedArrays collects arrays written (Store/Alloc) under stmts.
func storedArrays(stmts []ir.Stmt) map[*ir.Sym]bool {
	w := map[*ir.Sym]bool{}
	WalkStmts(stmts, func(s ir.Stmt) {
		switch s := s.(type) {
		case *ir.Store:
			w[s.Arr] = true
		case *ir.Alloc:
			w[s.Arr] = true
		}
	})
	return w
}

// exprReadsScalar reports whether e reads any symbol in set.
func exprReadsScalar(e ir.Expr, set map[*ir.Sym]bool) bool {
	found := false
	WalkExpr(e, func(x ir.Expr) {
		if v, ok := x.(*ir.VarRef); ok && set[v.Sym] {
			found = true
		}
	})
	return found
}

// exprReadsArray reports whether e loads from any array in set.
func exprReadsArray(e ir.Expr, set map[*ir.Sym]bool) bool {
	found := false
	WalkExpr(e, func(x ir.Expr) {
		switch x := x.(type) {
		case *ir.Load:
			if set[x.Arr] {
				found = true
			}
		case *ir.VecLoad:
			if set[x.Arr] {
				found = true
			}
		case *ir.Dim:
			if set[x.Arr] {
				found = true
			}
		}
	})
	return found
}

// hasLoad reports whether e contains any memory read.
func hasLoad(e ir.Expr) bool {
	found := false
	WalkExpr(e, func(x ir.Expr) {
		switch x.(type) {
		case *ir.Load, *ir.VecLoad, *ir.Dim:
			found = true
		}
	})
	return found
}

// mayFault reports whether evaluating e can raise a runtime error
// (memory access, division, remainder); such expressions must not be
// hoisted past a guard.
func mayFault(e ir.Expr) bool {
	found := false
	WalkExpr(e, func(x ir.Expr) {
		switch x := x.(type) {
		case *ir.Load, *ir.VecLoad, *ir.Dim:
			found = true
		case *ir.Bin:
			if x.Op == ir.OpDiv || x.Op == ir.OpRem {
				found = true
			}
		}
	})
	return found
}

// key returns a structural hash key for an expression (symbol identity
// included via IDs).
func key(e ir.Expr) string { return ir.ExprStr(e) }
