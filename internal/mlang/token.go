// Package mlang implements the MATLAB-subset front end of the compiler:
// lexical analysis, the abstract syntax tree, and a recursive-descent
// parser. The subset covered is the one exercised by DSP kernels: function
// definitions with multiple return values, control flow (if/elseif/else,
// for, while, break, continue, return), matrix literals, ranges, array
// indexing and slicing, element-wise and matrix operators, complex
// literals, and the `end` keyword inside index expressions.
package mlang

import "fmt"

// Kind enumerates lexical token kinds.
type Kind int

// Token kinds. Operator kinds mirror MATLAB's operator set.
const (
	EOF Kind = iota
	Newline
	Ident
	Number  // numeric literal, possibly imaginary (1i, 2.5e-3j)
	String  // single-quoted character vector
	Comment // retained for tooling; parser skips

	// Keywords.
	KwFunction
	KwEnd
	KwIf
	KwElseif
	KwElse
	KwFor
	KwWhile
	KwBreak
	KwContinue
	KwReturn
	KwSwitch
	KwCase
	KwOtherwise

	// Punctuation.
	LParen
	RParen
	LBracket
	RBracket
	Comma
	Semicolon
	Colon
	Assign // =

	// Operators.
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
	Backslash // \
	Caret     // ^
	DotStar   // .*
	DotSlash  // ./
	DotCaret  // .^
	Quote     // ' (ctranspose in operator position)
	DotQuote  // .'
	Lt        // <
	Le        // <=
	Gt        // >
	Ge        // >=
	EqEq      // ==
	Ne        // ~=
	AndAnd    // &&
	OrOr      // ||
	Amp       // &
	Pipe      // |
	Not       // ~
)

var kindNames = map[Kind]string{
	EOF: "EOF", Newline: "newline", Ident: "identifier", Number: "number",
	String: "string", Comment: "comment",
	KwFunction: "'function'", KwEnd: "'end'", KwIf: "'if'", KwElseif: "'elseif'",
	KwElse: "'else'", KwFor: "'for'", KwWhile: "'while'", KwBreak: "'break'",
	KwContinue: "'continue'", KwReturn: "'return'",
	KwSwitch: "'switch'", KwCase: "'case'", KwOtherwise: "'otherwise'",
	LParen: "'('", RParen: "')'", LBracket: "'['", RBracket: "']'",
	Comma: "','", Semicolon: "';'", Colon: "':'", Assign: "'='",
	Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'", Backslash: "'\\'",
	Caret: "'^'", DotStar: "'.*'", DotSlash: "'./'", DotCaret: "'.^'",
	Quote: "transpose '", DotQuote: "'.''", Lt: "'<'", Le: "'<='", Gt: "'>'",
	Ge: "'>='", EqEq: "'=='", Ne: "'~='", AndAnd: "'&&'", OrOr: "'||'",
	Amp: "'&'", Pipe: "'|'", Not: "'~'",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Valid reports whether the position has been set.
func (p Pos) Valid() bool { return p.Line > 0 }

// Token is a lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos

	// SpaceBefore records whether whitespace (or a line continuation)
	// immediately preceded this token. The parser needs it to resolve
	// MATLAB's matrix-literal ambiguity: inside brackets, "[1 -2]" is two
	// elements while "[1 - 2]" and "[1-2]" are one.
	SpaceBefore bool

	// Imag is set on Number tokens carrying an i/j suffix.
	Imag bool
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, Number, String, Comment:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

var keywords = map[string]Kind{
	"function":  KwFunction,
	"end":       KwEnd,
	"if":        KwIf,
	"elseif":    KwElseif,
	"else":      KwElse,
	"for":       KwFor,
	"while":     KwWhile,
	"break":     KwBreak,
	"continue":  KwContinue,
	"return":    KwReturn,
	"switch":    KwSwitch,
	"case":      KwCase,
	"otherwise": KwOtherwise,
}

// KeywordKind returns the keyword kind for an identifier, or Ident.
func KeywordKind(s string) Kind {
	if k, ok := keywords[s]; ok {
		return k
	}
	return Ident
}
