package mlang

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a File back to MATLAB-like source. The output is
// normalized (canonical spacing, explicit parentheses elided by
// precedence) and is intended for golden tests and diagnostics, not for
// byte-exact round-tripping.
func Format(f *File) string {
	var b strings.Builder
	for i, fn := range f.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		formatFunc(&b, fn)
	}
	formatStmts(&b, f.Script, 0)
	return b.String()
}

func formatFunc(b *strings.Builder, fn *FuncDecl) {
	b.WriteString("function ")
	switch len(fn.Outs) {
	case 0:
	case 1:
		b.WriteString(fn.Outs[0] + " = ")
	default:
		b.WriteString("[" + strings.Join(fn.Outs, ", ") + "] = ")
	}
	b.WriteString(fn.Name + "(" + strings.Join(fn.Params, ", ") + ")\n")
	formatStmts(b, fn.Body, 1)
	b.WriteString("end\n")
}

func formatStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, s := range stmts {
		formatStmt(b, s, ind, depth)
	}
}

func formatStmt(b *strings.Builder, s Stmt, ind string, depth int) {
	switch s := s.(type) {
	case *AssignStmt:
		b.WriteString(ind)
		if len(s.Lhs) == 1 {
			b.WriteString(ExprString(s.Lhs[0]))
		} else {
			parts := make([]string, len(s.Lhs))
			for i, l := range s.Lhs {
				parts[i] = ExprString(l)
			}
			b.WriteString("[" + strings.Join(parts, ", ") + "]")
		}
		b.WriteString(" = " + ExprString(s.Rhs) + ";\n")
	case *ExprStmt:
		b.WriteString(ind + ExprString(s.X) + ";\n")
	case *IfStmt:
		b.WriteString(ind + "if " + ExprString(s.Cond) + "\n")
		formatStmts(b, s.Then, depth+1)
		for _, e := range s.Elifs {
			b.WriteString(ind + "elseif " + ExprString(e.Cond) + "\n")
			formatStmts(b, e.Body, depth+1)
		}
		if s.Else != nil {
			b.WriteString(ind + "else\n")
			formatStmts(b, s.Else, depth+1)
		}
		b.WriteString(ind + "end\n")
	case *ForStmt:
		b.WriteString(ind + "for " + s.Var + " = " + ExprString(s.Range) + "\n")
		formatStmts(b, s.Body, depth+1)
		b.WriteString(ind + "end\n")
	case *WhileStmt:
		b.WriteString(ind + "while " + ExprString(s.Cond) + "\n")
		formatStmts(b, s.Body, depth+1)
		b.WriteString(ind + "end\n")
	case *SwitchStmt:
		b.WriteString(ind + "switch " + ExprString(s.Subject) + "\n")
		for _, c := range s.Cases {
			b.WriteString(ind + "case " + ExprString(c.Value) + "\n")
			formatStmts(b, c.Body, depth+1)
		}
		if s.Otherwise != nil {
			b.WriteString(ind + "otherwise\n")
			formatStmts(b, s.Otherwise, depth+1)
		}
		b.WriteString(ind + "end\n")
	case *BreakStmt:
		b.WriteString(ind + "break;\n")
	case *ContinueStmt:
		b.WriteString(ind + "continue;\n")
	case *ReturnStmt:
		b.WriteString(ind + "return;\n")
	default:
		b.WriteString(ind + fmt.Sprintf("<?stmt %T>\n", s))
	}
}

// ExprString renders an expression with explicit parentheses around every
// binary subexpression, making precedence decisions visible in goldens.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IdentExpr:
		return e.Name
	case *NumberExpr:
		s := strconv.FormatFloat(e.Value, 'g', -1, 64)
		if e.Imag {
			s += "i"
		}
		return s
	case *StringExpr:
		return "'" + strings.ReplaceAll(e.Value, "'", "''") + "'"
	case *MatrixExpr:
		rows := make([]string, len(e.Rows))
		for i, r := range e.Rows {
			parts := make([]string, len(r))
			for j, x := range r {
				parts[j] = ExprString(x)
			}
			rows[i] = strings.Join(parts, ", ")
		}
		return "[" + strings.Join(rows, "; ") + "]"
	case *RangeExpr:
		if e.Step != nil {
			return fmt.Sprintf("(%s:%s:%s)", ExprString(e.Start), ExprString(e.Step), ExprString(e.Stop))
		}
		return fmt.Sprintf("(%s:%s)", ExprString(e.Start), ExprString(e.Stop))
	case *ColonExpr:
		return ":"
	case *EndExpr:
		return "end"
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(e.X), e.Op, ExprString(e.Y))
	case *UnaryExpr:
		return fmt.Sprintf("(%s%s)", e.Op, ExprString(e.X))
	case *TransposeExpr:
		if e.Conj {
			return fmt.Sprintf("(%s')", ExprString(e.X))
		}
		return fmt.Sprintf("(%s.')", ExprString(e.X))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return ExprString(e.Fun) + "(" + strings.Join(args, ", ") + ")"
	}
	return fmt.Sprintf("<?expr %T>", e)
}
