package mlang

import (
	"fmt"
	"strconv"
)

// ParseError is a syntax error with position information.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList aggregates parse and lex errors.
type ErrorList []error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

const maxParseErrors = 20

type parser struct {
	toks []Token
	i    int
	errs ErrorList

	// indexDepth > 0 while parsing call/index arguments, where 'end' and
	// bare ':' are expressions rather than keywords/punctuation.
	indexDepth int
	// matrixDepth > 0 while parsing matrix-literal elements, where
	// whitespace separates elements.
	matrixDepth int
}

// Parse parses a MATLAB source file. On failure it returns a non-nil
// error (an ErrorList) alongside whatever was recovered.
func Parse(src string) (*File, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		if t.Kind == Comment {
			continue
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	p := &parser{toks: toks}
	for _, le := range lx.Errors() {
		p.errs = append(p.errs, le)
	}
	f := p.parseFile()
	if len(p.errs) > 0 {
		return f, p.errs
	}
	return f, nil
}

// MustParse parses src and panics on error; for tests.
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *parser) tok() Token { return p.toks[p.i] }
func (p *parser) kind() Kind { return p.toks[p.i].Kind }
func (p *parser) peek() Token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errorf(pos Pos, format string, args ...interface{}) {
	if len(p.errs) < maxParseErrors {
		p.errs = append(p.errs, &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) expect(k Kind) Token {
	if p.kind() != k {
		p.errorf(p.tok().Pos, "expected %s, found %s", k, p.tok())
		return Token{Kind: k, Pos: p.tok().Pos}
	}
	return p.next()
}

// skipSeps consumes newline/semicolon/comma statement separators.
func (p *parser) skipSeps() {
	for {
		switch p.kind() {
		case Newline, Semicolon, Comma:
			p.next()
		default:
			return
		}
	}
}

func (p *parser) skipNewlines() {
	for p.kind() == Newline {
		p.next()
	}
}

func (p *parser) parseFile() *File {
	f := &File{}
	p.skipSeps()
	if p.kind() == KwFunction {
		for p.kind() == KwFunction {
			f.Funcs = append(f.Funcs, p.parseFunction())
			p.skipSeps()
		}
		if p.kind() != EOF {
			p.errorf(p.tok().Pos, "unexpected %s after function definitions", p.tok())
		}
		return f
	}
	f.Script = p.parseStmts(nil)
	if p.kind() != EOF {
		p.errorf(p.tok().Pos, "unexpected %s", p.tok())
	}
	return f
}

func (p *parser) parseFunction() *FuncDecl {
	d := &FuncDecl{Pos: p.expect(KwFunction).Pos}
	// Three header shapes:
	//   function name(params)
	//   function out = name(params)
	//   function [o1, o2] = name(params)
	switch p.kind() {
	case LBracket:
		p.next()
		for p.kind() != RBracket && p.kind() != EOF {
			if p.kind() != Ident {
				p.errorf(p.tok().Pos, "expected output name, found %s", p.tok())
				break
			}
			d.Outs = append(d.Outs, p.next().Text)
			if p.kind() == Comma {
				p.next()
			}
		}
		p.expect(RBracket)
		p.expect(Assign)
		d.Name = p.expect(Ident).Text
	case Ident:
		name := p.next().Text
		if p.kind() == Assign {
			p.next()
			d.Outs = []string{name}
			d.Name = p.expect(Ident).Text
		} else {
			d.Name = name
		}
	default:
		p.errorf(p.tok().Pos, "expected function name, found %s", p.tok())
	}
	if p.kind() == LParen {
		p.next()
		for p.kind() != RParen && p.kind() != EOF {
			d.Params = append(d.Params, p.expect(Ident).Text)
			if p.kind() == Comma {
				p.next()
			} else {
				break
			}
		}
		p.expect(RParen)
	}
	d.Body = p.parseStmts(func(k Kind) bool { return k == KwEnd || k == KwFunction })
	if p.kind() == KwEnd {
		p.next()
	}
	return d
}

// parseStmts parses statements until EOF or a terminator for which stop
// returns true (the terminator is not consumed). A nil stop runs to EOF.
func (p *parser) parseStmts(stop func(Kind) bool) []Stmt {
	var stmts []Stmt
	for {
		p.skipSeps()
		k := p.kind()
		if k == EOF || stop != nil && stop(k) {
			return stmts
		}
		s := p.parseStmt()
		if s != nil {
			stmts = append(stmts, s)
		} else {
			// Error recovery: skip to next separator.
			for p.kind() != Newline && p.kind() != Semicolon && p.kind() != EOF {
				p.next()
			}
		}
	}
}

func blockStop(k Kind) bool {
	return k == KwEnd || k == KwElse || k == KwElseif
}

func (p *parser) parseStmt() Stmt {
	t := p.tok()
	switch t.Kind {
	case KwIf:
		return p.parseIf()
	case KwFor:
		return p.parseFor()
	case KwWhile:
		return p.parseWhile()
	case KwSwitch:
		return p.parseSwitch()
	case KwBreak:
		p.next()
		return &BreakStmt{Pos: t.Pos}
	case KwContinue:
		p.next()
		return &ContinueStmt{Pos: t.Pos}
	case KwReturn:
		p.next()
		return &ReturnStmt{Pos: t.Pos}
	case KwFunction, KwEnd, KwElse, KwElseif, KwCase, KwOtherwise:
		p.errorf(t.Pos, "unexpected %s", t)
		p.next()
		return nil
	}
	// Expression or assignment.
	lhs := p.parseExpr()
	if lhs == nil {
		return nil
	}
	if p.kind() == Assign {
		p.next()
		rhs := p.parseExpr()
		targets, ok := assignTargets(lhs)
		if !ok {
			p.errorf(lhs.NodePos(), "invalid assignment target")
		}
		return &AssignStmt{Pos: t.Pos, Lhs: targets, Rhs: rhs}
	}
	return &ExprStmt{Pos: t.Pos, X: lhs}
}

// assignTargets extracts assignment targets from a parsed LHS expression.
// A single-row matrix literal "[a, b]" denotes a multi-assignment.
func assignTargets(lhs Expr) ([]Expr, bool) {
	if m, ok := lhs.(*MatrixExpr); ok {
		if len(m.Rows) != 1 {
			return []Expr{lhs}, false
		}
		for _, e := range m.Rows[0] {
			if !isLValue(e) {
				return m.Rows[0], false
			}
		}
		return m.Rows[0], true
	}
	return []Expr{lhs}, isLValue(lhs)
}

func isLValue(e Expr) bool {
	switch e := e.(type) {
	case *IdentExpr:
		return true
	case *CallExpr:
		_, ok := e.Fun.(*IdentExpr)
		return ok
	}
	return false
}

func (p *parser) parseIf() Stmt {
	s := &IfStmt{Pos: p.expect(KwIf).Pos}
	s.Cond = p.parseExpr()
	s.Then = p.parseStmts(blockStop)
	for p.kind() == KwElseif {
		c := ElifClause{Pos: p.next().Pos}
		c.Cond = p.parseExpr()
		c.Body = p.parseStmts(blockStop)
		s.Elifs = append(s.Elifs, c)
	}
	if p.kind() == KwElse {
		p.next()
		s.Else = p.parseStmts(blockStop)
	}
	p.expect(KwEnd)
	return s
}

func (p *parser) parseFor() Stmt {
	s := &ForStmt{Pos: p.expect(KwFor).Pos}
	s.Var = p.expect(Ident).Text
	p.expect(Assign)
	s.Range = p.parseExpr()
	s.Body = p.parseStmts(blockStop)
	p.expect(KwEnd)
	return s
}

func switchStop(k Kind) bool {
	return k == KwEnd || k == KwCase || k == KwOtherwise
}

func (p *parser) parseSwitch() Stmt {
	s := &SwitchStmt{Pos: p.expect(KwSwitch).Pos}
	s.Subject = p.parseExpr()
	// Statements between the subject and the first case are illegal in
	// MATLAB; tolerate separators only.
	p.skipSeps()
	for p.kind() == KwCase {
		c := SwitchCase{Pos: p.next().Pos}
		c.Value = p.parseExpr()
		c.Body = p.parseStmts(switchStop)
		s.Cases = append(s.Cases, c)
	}
	if p.kind() == KwOtherwise {
		p.next()
		s.Otherwise = p.parseStmts(switchStop)
	}
	if len(s.Cases) == 0 && s.Otherwise == nil {
		p.errorf(s.Pos, "switch without case or otherwise")
	}
	p.expect(KwEnd)
	return s
}

func (p *parser) parseWhile() Stmt {
	s := &WhileStmt{Pos: p.expect(KwWhile).Pos}
	s.Cond = p.parseExpr()
	s.Body = p.parseStmts(blockStop)
	p.expect(KwEnd)
	return s
}

// Expression grammar, lowest to highest precedence:
//
//	||  &&  |  &  (relational)  :  +-  */\ .* ./  (unary)  ^ .^ ' .'
func (p *parser) parseExpr() Expr { return p.parseOrOr() }

func (p *parser) parseOrOr() Expr {
	x := p.parseAndAnd()
	for p.kind() == OrOr {
		pos := p.next().Pos
		x = &BinaryExpr{Pos: pos, Op: OpOrOr, X: x, Y: p.parseAndAnd()}
	}
	return x
}

func (p *parser) parseAndAnd() Expr {
	x := p.parseOr()
	for p.kind() == AndAnd {
		pos := p.next().Pos
		x = &BinaryExpr{Pos: pos, Op: OpAndAnd, X: x, Y: p.parseOr()}
	}
	return x
}

func (p *parser) parseOr() Expr {
	x := p.parseAnd()
	for p.kind() == Pipe {
		pos := p.next().Pos
		x = &BinaryExpr{Pos: pos, Op: OpOr, X: x, Y: p.parseAnd()}
	}
	return x
}

func (p *parser) parseAnd() Expr {
	x := p.parseRel()
	for p.kind() == Amp {
		pos := p.next().Pos
		x = &BinaryExpr{Pos: pos, Op: OpAnd, X: x, Y: p.parseRel()}
	}
	return x
}

func (p *parser) parseRel() Expr {
	x := p.parseRange()
	for {
		var op BinOp
		switch p.kind() {
		case Lt:
			op = OpLt
		case Le:
			op = OpLe
		case Gt:
			op = OpGt
		case Ge:
			op = OpGe
		case EqEq:
			op = OpEq
		case Ne:
			op = OpNe
		default:
			return x
		}
		pos := p.next().Pos
		x = &BinaryExpr{Pos: pos, Op: op, X: x, Y: p.parseRange()}
	}
}

// parseRange parses "a", "a:b" or "a:b:c".
func (p *parser) parseRange() Expr {
	x := p.parseAdditive()
	if p.kind() != Colon {
		return x
	}
	pos := p.next().Pos
	y := p.parseAdditive()
	if p.kind() != Colon {
		return &RangeExpr{Pos: pos, Start: x, Stop: y}
	}
	p.next()
	z := p.parseAdditive()
	return &RangeExpr{Pos: pos, Start: x, Step: y, Stop: z}
}

// matrixSeparates reports whether, in matrix-literal context, the current
// +/- token acts as the start of a new element rather than a binary
// operator: "[1 -2]" (space before, none after) separates; "[1 - 2]" and
// "[1-2]" do not.
func (p *parser) matrixSeparates() bool {
	if p.matrixDepth == 0 {
		return false
	}
	t := p.tok()
	if !t.SpaceBefore {
		return false
	}
	return !p.peek().SpaceBefore
}

func (p *parser) parseAdditive() Expr {
	x := p.parseMultiplicative()
	for {
		k := p.kind()
		if k != Plus && k != Minus {
			return x
		}
		if p.matrixSeparates() {
			return x
		}
		op := OpAdd
		if k == Minus {
			op = OpSub
		}
		pos := p.next().Pos
		x = &BinaryExpr{Pos: pos, Op: op, X: x, Y: p.parseMultiplicative()}
	}
}

func (p *parser) parseMultiplicative() Expr {
	x := p.parseUnary()
	for {
		var op BinOp
		switch p.kind() {
		case Star:
			op = OpMatMul
		case Slash:
			op = OpMatDiv
		case Backslash:
			op = OpMatLDiv
		case DotStar:
			op = OpElMul
		case DotSlash:
			op = OpElDiv
		default:
			return x
		}
		pos := p.next().Pos
		x = &BinaryExpr{Pos: pos, Op: op, X: x, Y: p.parseUnary()}
	}
}

func (p *parser) parseUnary() Expr {
	t := p.tok()
	switch t.Kind {
	case Minus:
		p.next()
		return &UnaryExpr{Pos: t.Pos, Op: OpNeg, X: p.parseUnary()}
	case Plus:
		p.next()
		return &UnaryExpr{Pos: t.Pos, Op: OpPos, X: p.parseUnary()}
	case Not:
		p.next()
		return &UnaryExpr{Pos: t.Pos, Op: OpNot, X: p.parseUnary()}
	}
	return p.parsePower()
}

// parsePower parses the power/transpose level. MATLAB gives ^ and
// postfix transpose the same (highest) precedence, left-associative, and
// the exponent may carry a unary sign ("2^-3").
func (p *parser) parsePower() Expr {
	x := p.parsePostfix()
	for {
		var op BinOp
		switch p.kind() {
		case Caret:
			op = OpMatPow
		case DotCaret:
			op = OpElPow
		default:
			return x
		}
		pos := p.next().Pos
		// Allow signed exponent.
		var y Expr
		switch p.kind() {
		case Minus:
			up := p.next().Pos
			y = &UnaryExpr{Pos: up, Op: OpNeg, X: p.parsePostfix()}
		case Plus:
			p.next()
			y = p.parsePostfix()
		default:
			y = p.parsePostfix()
		}
		x = &BinaryExpr{Pos: pos, Op: op, X: x, Y: y}
	}
}

// parsePostfix parses primary expressions followed by any number of
// call/index suffixes and transposes.
func (p *parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		switch p.kind() {
		case LParen:
			// In matrix context "a (1)" with a space is a new element.
			if p.matrixDepth > 0 && p.tok().SpaceBefore {
				return x
			}
			pos := p.next().Pos
			call := &CallExpr{Pos: pos, Fun: x}
			p.indexDepth++
			for p.kind() != RParen && p.kind() != EOF {
				call.Args = append(call.Args, p.parseArg())
				if p.kind() == Comma {
					p.next()
				} else {
					break
				}
			}
			p.indexDepth--
			p.expect(RParen)
			x = call
		case Quote:
			pos := p.next().Pos
			x = &TransposeExpr{Pos: pos, X: x, Conj: true}
		case DotQuote:
			pos := p.next().Pos
			x = &TransposeExpr{Pos: pos, X: x, Conj: false}
		default:
			return x
		}
	}
}

// parseArg parses one call/index argument, where a bare ':' selects an
// entire dimension.
func (p *parser) parseArg() Expr {
	if p.kind() == Colon {
		k := p.peek().Kind
		if k == Comma || k == RParen {
			return &ColonExpr{Pos: p.next().Pos}
		}
	}
	return p.parseExpr()
}

func (p *parser) parsePrimary() Expr {
	t := p.tok()
	switch t.Kind {
	case Number:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid number %q", t.Text)
		}
		return &NumberExpr{Pos: t.Pos, Value: v, Imag: t.Imag}
	case Ident:
		p.next()
		return &IdentExpr{Pos: t.Pos, Name: t.Text}
	case String:
		p.next()
		return &StringExpr{Pos: t.Pos, Value: t.Text}
	case KwEnd:
		if p.indexDepth > 0 {
			p.next()
			return &EndExpr{Pos: t.Pos}
		}
	case LParen:
		p.next()
		// Parenthesized subexpressions suspend matrix element splitting.
		md := p.matrixDepth
		p.matrixDepth = 0
		x := p.parseExpr()
		p.matrixDepth = md
		p.expect(RParen)
		return x
	case LBracket:
		return p.parseMatrix()
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &NumberExpr{Pos: t.Pos, Value: 0}
}

// startsExpr reports whether token t can begin an expression (used for
// space-separated matrix elements).
func (p *parser) startsExpr(t Token) bool {
	switch t.Kind {
	case Ident, Number, String, LParen, LBracket, Minus, Plus, Not, Quote:
		return true
	case KwEnd:
		return p.indexDepth > 0
	}
	return false
}

func (p *parser) parseMatrix() Expr {
	m := &MatrixExpr{Pos: p.expect(LBracket).Pos}
	p.matrixDepth++
	defer func() { p.matrixDepth-- }()
	var row []Expr
	endRow := func() {
		if len(row) > 0 {
			m.Rows = append(m.Rows, row)
			row = nil
		}
	}
	for {
		switch p.kind() {
		case RBracket:
			p.next()
			endRow()
			return m
		case EOF:
			p.errorf(p.tok().Pos, "unterminated matrix literal")
			endRow()
			return m
		case Semicolon, Newline:
			p.next()
			endRow()
		case Comma:
			p.next()
		default:
			if !p.startsExpr(p.tok()) {
				p.errorf(p.tok().Pos, "unexpected %s in matrix literal", p.tok())
				p.next()
				continue
			}
			row = append(row, p.parseExpr())
		}
	}
}
