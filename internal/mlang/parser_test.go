package mlang

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// exprOf parses src as a script containing one expression statement and
// returns the canonical rendering of that expression.
func exprOf(t *testing.T, src string) string {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if len(f.Script) != 1 {
		t.Fatalf("parse %q: got %d statements", src, len(f.Script))
	}
	switch s := f.Script[0].(type) {
	case *ExprStmt:
		return ExprString(s.X)
	case *AssignStmt:
		return ExprString(s.Rhs)
	}
	t.Fatalf("parse %q: unexpected statement %T", src, f.Script[0])
	return ""
}

func TestParsePrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a + b * c", "(a + (b * c))"},
		{"a * b + c", "((a * b) + c)"},
		{"a - b - c", "((a - b) - c)"},
		{"a / b * c", "((a / b) * c)"},
		{"-a^2", "(-(a ^ 2))"},
		{"a^-2", "(a ^ (-2))"},
		{"2^3^4", "((2 ^ 3) ^ 4)"}, // MATLAB ^ is left-associative
		{"a.*b+c", "((a .* b) + c)"},
		{"a < b + c", "(a < (b + c))"},
		{"a & b | c", "((a & b) | c)"},
		{"a && b || c", "((a && b) || c)"},
		{"a + b < c & d", "(((a + b) < c) & d)"},
		{"~a & b", "((~a) & b)"},
		{"a'", "(a')"},
		{"a.'", "(a.')"},
		{"a'*b", "((a') * b)"},
		{"a^2'", "(a ^ (2'))"},
		{"(a+b)*c", "((a + b) * c)"},
		{"a\\b", "(a \\ b)"},
	}
	for _, c := range cases {
		if got := exprOf(t, c.src); got != c.want {
			t.Errorf("parse %q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1:10", "(1:10)"},
		{"1:2:10", "(1:2:10)"},
		{"a:b+1", "(a:(b + 1))"},
		{"1:n-1", "(1:(n - 1))"},
		// Relationals bind looser than ranges.
		{"1:3 == 2", "((1:3) == 2)"},
	}
	for _, c := range cases {
		if got := exprOf(t, c.src); got != c.want {
			t.Errorf("parse %q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseCallsAndIndexing(t *testing.T) {
	cases := []struct{ src, want string }{
		{"f(x)", "f(x)"},
		{"f(x, y)", "f(x, y)"},
		{"f()", "f()"},
		{"x(1:end)", "x((1:end))"},
		{"x(end-1)", "x((end - 1))"},
		{"x(:)", "x(:)"},
		{"x(:, 2)", "x(:, 2)"},
		{"x(i, j)'", "(x(i, j)')"},
		{"f(g(x))", "f(g(x))"},
		{"x(2)(3)", "x(2)(3)"}, // chained indexing parses; sema rejects
	}
	for _, c := range cases {
		if got := exprOf(t, c.src); got != c.want {
			t.Errorf("parse %q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseMatrixLiterals(t *testing.T) {
	cases := []struct{ src, want string }{
		{"[1 2 3]", "[1, 2, 3]"},
		{"[1, 2, 3]", "[1, 2, 3]"},
		{"[1 2; 3 4]", "[1, 2; 3, 4]"},
		{"[1 -2]", "[1, (-2)]"},
		{"[1 - 2]", "[(1 - 2)]"},
		{"[1-2]", "[(1 - 2)]"},
		{"[1 + 2 3]", "[(1 + 2), 3]"},
		{"[a b; c d]", "[a, b; c, d]"},
		{"[]", "[]"},
		{"[a' b]", "[(a'), b]"},
		{"[f(x) g(y)]", "[f(x), g(y)]"},
		{"[1\n2]", "[1; 2]"},
		{"[(1 + 2) 3]", "[(1 + 2), 3]"},
		{"[1:3]", "[(1:3)]"},
	}
	for _, c := range cases {
		if got := exprOf(t, c.src); got != c.want {
			t.Errorf("parse %q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseComplexLiteral(t *testing.T) {
	if got := exprOf(t, "2 + 3i"); got != "(2 + 3i)" {
		t.Errorf("got %s", got)
	}
}

func TestParseAssignments(t *testing.T) {
	f := MustParse("x = 1;\ny(3) = x + 2;\n[a, b] = f(x);\n[q r] = g();")
	if len(f.Script) != 4 {
		t.Fatalf("got %d statements", len(f.Script))
	}
	a0 := f.Script[0].(*AssignStmt)
	if len(a0.Lhs) != 1 || ExprString(a0.Lhs[0]) != "x" {
		t.Errorf("stmt 0: %v", ExprString(a0.Lhs[0]))
	}
	a1 := f.Script[1].(*AssignStmt)
	if ExprString(a1.Lhs[0]) != "y(3)" {
		t.Errorf("stmt 1 lhs: %v", ExprString(a1.Lhs[0]))
	}
	a2 := f.Script[2].(*AssignStmt)
	if len(a2.Lhs) != 2 || ExprString(a2.Lhs[0]) != "a" || ExprString(a2.Lhs[1]) != "b" {
		t.Errorf("stmt 2 lhs: %v", a2.Lhs)
	}
	a3 := f.Script[3].(*AssignStmt)
	if len(a3.Lhs) != 2 {
		t.Errorf("stmt 3: got %d targets", len(a3.Lhs))
	}
}

func TestParseFunctionHeaders(t *testing.T) {
	cases := []struct {
		src    string
		name   string
		outs   []string
		params []string
	}{
		{"function foo\nend", "foo", nil, nil},
		{"function foo()\nend", "foo", nil, nil},
		{"function y = foo(x)\nend", "foo", []string{"y"}, []string{"x"}},
		{"function [a, b] = foo(x, y, z)\nend", "foo", []string{"a", "b"}, []string{"x", "y", "z"}},
		{"function [a] = foo(x)\nend", "foo", []string{"a"}, []string{"x"}},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if len(f.Funcs) != 1 {
			t.Fatalf("parse %q: %d funcs", c.src, len(f.Funcs))
		}
		fn := f.Funcs[0]
		if fn.Name != c.name {
			t.Errorf("parse %q: name %q", c.src, fn.Name)
		}
		if strings.Join(fn.Outs, ",") != strings.Join(c.outs, ",") {
			t.Errorf("parse %q: outs %v, want %v", c.src, fn.Outs, c.outs)
		}
		if strings.Join(fn.Params, ",") != strings.Join(c.params, ",") {
			t.Errorf("parse %q: params %v, want %v", c.src, fn.Params, c.params)
		}
	}
}

func TestParseMultipleFunctions(t *testing.T) {
	src := `function y = f(x)
y = g(x) + 1;
end
function y = g(x)
y = x * 2;
end`
	f := MustParse(src)
	if len(f.Funcs) != 2 || f.Funcs[0].Name != "f" || f.Funcs[1].Name != "g" {
		t.Fatalf("got %d funcs", len(f.Funcs))
	}
	if len(f.Funcs[0].Body) != 1 || len(f.Funcs[1].Body) != 1 {
		t.Errorf("bodies: %d, %d", len(f.Funcs[0].Body), len(f.Funcs[1].Body))
	}
}

func TestParseFunctionsWithoutEnd(t *testing.T) {
	// MATLAB allows function files where definitions are not closed by
	// 'end'; the next 'function' or EOF terminates them.
	src := "function y = f(x)\ny = x + 1;\n\nfunction y = g(x)\ny = x * 2;\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(f.Funcs))
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
if x > 0
    y = 1;
elseif x < 0
    y = -1;
else
    y = 0;
end
for i = 1:10
    s = s + i;
end
while s > 0
    s = s - 1;
    if s == 3
        break
    end
    continue
end
return
`
	f := MustParse(src)
	if len(f.Script) != 4 {
		t.Fatalf("got %d statements", len(f.Script))
	}
	ifs := f.Script[0].(*IfStmt)
	if len(ifs.Elifs) != 1 || ifs.Else == nil {
		t.Error("if statement arms wrong")
	}
	fs := f.Script[1].(*ForStmt)
	if fs.Var != "i" {
		t.Errorf("for var %q", fs.Var)
	}
	if _, ok := fs.Range.(*RangeExpr); !ok {
		t.Errorf("for range %T", fs.Range)
	}
	ws := f.Script[2].(*WhileStmt)
	if len(ws.Body) != 3 {
		t.Errorf("while body %d statements", len(ws.Body))
	}
	if _, ok := f.Script[3].(*ReturnStmt); !ok {
		t.Errorf("stmt 3 is %T", f.Script[3])
	}
}

func TestParseNestedLoops(t *testing.T) {
	src := `for i = 1:n
  for j = 1:m
    c(i, j) = a(i, j) + b(i, j);
  end
end`
	f := MustParse(src)
	outer := f.Script[0].(*ForStmt)
	inner := outer.Body[0].(*ForStmt)
	if inner.Var != "j" {
		t.Errorf("inner var %q", inner.Var)
	}
}

func TestParseCommaSeparatedStatements(t *testing.T) {
	f := MustParse("x = 1, y = 2; z = 3")
	if len(f.Script) != 3 {
		t.Fatalf("got %d statements, want 3", len(f.Script))
	}
}

func TestParseSingleLineIf(t *testing.T) {
	f := MustParse("if x > 0, y = 1; end")
	ifs := f.Script[0].(*IfStmt)
	if len(ifs.Then) != 1 {
		t.Errorf("then body %d statements", len(ifs.Then))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"x = ",
		"if x\ny = 1", // missing end
		"for = 1:10\nend",
		"x = )",
		"[1, 2 = 3", // bad multi-assign
		"end",
		"function = f(x)\nend",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("x = 1\ny = )")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line 2 position: %v", err)
	}
}

func TestParseEndOnlyInsideIndex(t *testing.T) {
	// 'end' as expression is only legal inside index context.
	if _, err := Parse("x = end"); err == nil {
		t.Error("expected error for bare 'end' expression")
	}
	f := MustParse("y = x(end)")
	a := f.Script[0].(*AssignStmt)
	call := a.Rhs.(*CallExpr)
	if _, ok := call.Args[0].(*EndExpr); !ok {
		t.Errorf("arg is %T, want EndExpr", call.Args[0])
	}
}

// Property: Format(Parse(x)) is a fixpoint — parsing the formatted output
// and formatting again yields identical text.
func TestParseFormatFixpoint(t *testing.T) {
	seeds := []string{
		"x = a + b * c;",
		"y = [1 2; 3 4] * x';",
		"for i = 1:10\n s = s + f(i);\nend",
		"function [a,b] = f(x)\na = x(1:end-1);\nb = sum(x.^2);\nend",
		"if a < b && c ~= d\n x = -y;\nelse\n x = y;\nend",
		"z = 2 + 3i;",
		"while n > 0\n n = n - 1;\nend",
	}
	for _, src := range seeds {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		s1 := Format(f1)
		f2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse %q: %v", s1, err)
		}
		s2 := Format(f2)
		if s1 != s2 {
			t.Errorf("format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", s1, s2)
		}
	}
}

// Property: the parser never panics on random token soup built from valid
// lexemes.
func TestParseNeverPanics(t *testing.T) {
	lexemes := []string{"x", "1", "+", "-", "*", "(", ")", "[", "]", ";",
		"=", "for", "end", "if", "while", ",", ":", "'a'", "function", "\n"}
	f := func(idx []uint8) bool {
		var sb strings.Builder
		for _, i := range idx {
			sb.WriteString(lexemes[int(i)%len(lexemes)])
			sb.WriteByte(' ')
		}
		_, _ = Parse(sb.String()) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Regression: malformed output lists ("function [ \n") must not loop
// forever in the header parser.
func TestParseMalformedFunctionHeaderTerminates(t *testing.T) {
	cases := []string{
		"function ; function [ \n ",
		"function [ \n",
		"function [1] = f()\nend",
		"function [a, , b] = f()\nend",
	}
	for _, src := range cases {
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = Parse(src)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("parse %q did not terminate", src)
		}
	}
}

func TestParseDeepNesting(t *testing.T) {
	src := "x = " + strings.Repeat("(", 50) + "1" + strings.Repeat(")", 50)
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
