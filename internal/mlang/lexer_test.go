package mlang

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func lexKinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, errs := LexAll(src)
	if len(errs) > 0 {
		t.Fatalf("lex %q: %v", src, errs[0])
	}
	return kinds(toks)
}

func eqKinds(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLexBasicTokens(t *testing.T) {
	cases := []struct {
		src  string
		want []Kind
	}{
		{"x = 1", []Kind{Ident, Assign, Number, EOF}},
		{"y = a + b;", []Kind{Ident, Assign, Ident, Plus, Ident, Semicolon, EOF}},
		{"a .* b ./ c .^ d", []Kind{Ident, DotStar, Ident, DotSlash, Ident, DotCaret, Ident, EOF}},
		{"a <= b >= c ~= d == e", []Kind{Ident, Le, Ident, Ge, Ident, Ne, Ident, EqEq, Ident, EOF}},
		{"a && b || c & d | e", []Kind{Ident, AndAnd, Ident, OrOr, Ident, Amp, Ident, Pipe, Ident, EOF}},
		{"~x", []Kind{Not, Ident, EOF}},
		{"f(x, y)", []Kind{Ident, LParen, Ident, Comma, Ident, RParen, EOF}},
		{"[1 2; 3 4]", []Kind{LBracket, Number, Number, Semicolon, Number, Number, RBracket, EOF}},
		{"for i = 1:n", []Kind{KwFor, Ident, Assign, Number, Colon, Ident, EOF}},
		{"a\\b", []Kind{Ident, Backslash, Ident, EOF}},
		{"x^2", []Kind{Ident, Caret, Number, EOF}},
	}
	for _, c := range cases {
		if got := lexKinds(t, c.src); !eqKinds(got, c.want) {
			t.Errorf("lex %q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestLexKeywords(t *testing.T) {
	src := "function end if elseif else for while break continue return"
	want := []Kind{KwFunction, KwEnd, KwIf, KwElseif, KwElse, KwFor, KwWhile,
		KwBreak, KwContinue, KwReturn, EOF}
	if got := lexKinds(t, src); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		text string
		imag bool
	}{
		{"42", "42", false},
		{"3.14", "3.14", false},
		{".5", ".5", false},
		{"1e3", "1e3", false},
		{"2.5e-3", "2.5e-3", false},
		{"1E+6", "1E+6", false},
		{"1i", "1", true},
		{"2.5j", "2.5", true},
		{"3e2i", "3e2", true},
	}
	for _, c := range cases {
		toks, errs := LexAll(c.src)
		if len(errs) > 0 {
			t.Fatalf("lex %q: %v", c.src, errs[0])
		}
		if toks[0].Kind != Number || toks[0].Text != c.text || toks[0].Imag != c.imag {
			t.Errorf("lex %q = %v (imag=%v), want text %q imag %v",
				c.src, toks[0], toks[0].Imag, c.text, c.imag)
		}
	}
}

func TestLexNumberDotOperator(t *testing.T) {
	// "2.*x" must lex as 2 .* x, not 2. * x.
	want := []Kind{Number, DotStar, Ident, EOF}
	if got := lexKinds(t, "2.*x"); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// "2.5*x" is a normal float times x.
	want = []Kind{Number, Star, Ident, EOF}
	if got := lexKinds(t, "2.5*x"); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexQuoteDisambiguation(t *testing.T) {
	cases := []struct {
		src  string
		want []Kind
	}{
		{"x'", []Kind{Ident, Quote, EOF}},
		{"x''", []Kind{Ident, Quote, Quote, EOF}},
		{"x = 'abc'", []Kind{Ident, Assign, String, EOF}},
		{"f(x)'", []Kind{Ident, LParen, Ident, RParen, Quote, EOF}},
		{"[1 2]'", []Kind{LBracket, Number, Number, RBracket, Quote, EOF}},
		{"x.'", []Kind{Ident, DotQuote, EOF}},
		{"y = x' * x", []Kind{Ident, Assign, Ident, Quote, Star, Ident, EOF}},
		// After a comma, a quote opens a string.
		{"f(x, 'abc')", []Kind{Ident, LParen, Ident, Comma, String, RParen, EOF}},
		// After 'end', transpose is legal: x(end)'
		{"x(end)'", []Kind{Ident, LParen, KwEnd, RParen, Quote, EOF}},
	}
	for _, c := range cases {
		if got := lexKinds(t, c.src); !eqKinds(got, c.want) {
			t.Errorf("lex %q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, errs := LexAll("s = 'it''s'")
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if toks[2].Kind != String || toks[2].Text != "it's" {
		t.Errorf("got %v, want String(it's)", toks[2])
	}
}

func TestLexComments(t *testing.T) {
	src := "x = 1 % trailing comment\ny = 2\n%{ block\ncomment %}\nz = 3"
	want := []Kind{Ident, Assign, Number, Newline, Ident, Assign, Number,
		Newline, Newline, Ident, Assign, Number, EOF}
	if got := lexKinds(t, src); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexContinuation(t *testing.T) {
	src := "x = 1 + ...\n 2"
	want := []Kind{Ident, Assign, Number, Plus, Number, EOF}
	if got := lexKinds(t, src); !eqKinds(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexSpaceBefore(t *testing.T) {
	toks, _ := LexAll("[1 -2]")
	// tokens: [ 1 - 2 ] EOF
	if !toks[2].SpaceBefore {
		t.Error("minus in '[1 -2]' should have SpaceBefore")
	}
	if toks[3].SpaceBefore {
		t.Error("2 in '[1 -2]' should not have SpaceBefore")
	}
	toks, _ = LexAll("[1 - 2]")
	if !toks[2].SpaceBefore || !toks[3].SpaceBefore {
		t.Error("'[1 - 2]' should have space before both '-' and '2'")
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := LexAll("x = 1\n  y = 2")
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("x at %v, want 1:1", toks[0].Pos)
	}
	if toks[4].Pos != (Pos{2, 3}) {
		t.Errorf("y at %v, want 2:3", toks[4].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{"x = 'abc", "x = $", "%{ never closed"}
	for _, src := range cases {
		_, errs := LexAll(src)
		if len(errs) == 0 {
			t.Errorf("lex %q: expected error", src)
		}
	}
}

func TestLexUnterminatedStringAtNewline(t *testing.T) {
	_, errs := LexAll("x = 'abc\ny = 2")
	if len(errs) == 0 {
		t.Fatal("expected unterminated string error")
	}
	if !strings.Contains(errs[0].Error(), "unterminated") {
		t.Errorf("unexpected error %v", errs[0])
	}
}

// Property: the lexer terminates and never panics on arbitrary input, and
// positions are monotonically non-decreasing.
func TestLexNeverPanics(t *testing.T) {
	f := func(src string) bool {
		toks, _ := LexAll(src)
		prev := Pos{1, 0}
		for _, tok := range toks {
			if tok.Kind == EOF {
				break
			}
			if tok.Pos.Line < prev.Line ||
				tok.Pos.Line == prev.Line && tok.Pos.Col <= prev.Col {
				return false
			}
			prev = tok.Pos
		}
		return toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: lexing the concatenation of valid identifier tokens with
// spaces yields exactly those identifiers back.
func TestLexIdentifierRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		names := []string{"alpha", "b2", "x_y", "foo", "If0", "endx"}
		var sb strings.Builder
		count := int(n%10) + 1
		for i := 0; i < count; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(names[i%len(names)])
		}
		toks, errs := LexAll(sb.String())
		if len(errs) > 0 || len(toks) != count+1 {
			return false
		}
		for i := 0; i < count; i++ {
			if toks[i].Kind != Ident || toks[i].Text != names[i%len(names)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
