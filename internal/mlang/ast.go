package mlang

// Node is implemented by all AST nodes.
type Node interface {
	NodePos() Pos
}

// File is a parsed source file: either one or more function definitions,
// or a script (bare statement list), mirroring MATLAB file semantics.
type File struct {
	Funcs  []*FuncDecl
	Script []Stmt // non-nil only for script files
}

// NodePos returns the position of the first construct in the file.
func (f *File) NodePos() Pos {
	if len(f.Funcs) > 0 {
		return f.Funcs[0].Pos
	}
	if len(f.Script) > 0 {
		return f.Script[0].NodePos()
	}
	return Pos{}
}

// FuncDecl is a MATLAB function definition:
//
//	function [y1, y2] = name(a, b)
type FuncDecl struct {
	Pos    Pos
	Name   string
	Outs   []string
	Params []string
	Body   []Stmt
}

// NodePos implements Node.
func (d *FuncDecl) NodePos() Pos { return d.Pos }

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// AssignStmt is "lhs = rhs" or multi-assign "[a, b] = f(...)".
type AssignStmt struct {
	Pos Pos
	Lhs []Expr // Ident or IndexExpr targets; len>1 for multi-assign
	Rhs Expr
}

// ExprStmt is a bare expression statement (typically a call).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/elseif/else. Elifs are flattened in order.
type IfStmt struct {
	Pos   Pos
	Cond  Expr
	Then  []Stmt
	Elifs []ElifClause
	Else  []Stmt // nil when absent
}

// ElifClause is one "elseif cond" arm.
type ElifClause struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// ForStmt is "for v = range, body, end". Range is usually a RangeExpr.
type ForStmt struct {
	Pos   Pos
	Var   string
	Range Expr
	Body  []Stmt
}

// WhileStmt is "while cond, body, end".
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// SwitchStmt is "switch subject, case v, ..., otherwise, ..., end".
type SwitchStmt struct {
	Pos       Pos
	Subject   Expr
	Cases     []SwitchCase
	Otherwise []Stmt // nil when absent
}

// SwitchCase is one "case value" arm (scalar values only; cell-array
// case lists are not supported).
type SwitchCase struct {
	Pos   Pos
	Value Expr
	Body  []Stmt
}

// BreakStmt is "break".
type BreakStmt struct{ Pos Pos }

// ContinueStmt is "continue".
type ContinueStmt struct{ Pos Pos }

// ReturnStmt is "return".
type ReturnStmt struct{ Pos Pos }

func (s *AssignStmt) NodePos() Pos   { return s.Pos }
func (s *ExprStmt) NodePos() Pos     { return s.Pos }
func (s *IfStmt) NodePos() Pos       { return s.Pos }
func (s *ForStmt) NodePos() Pos      { return s.Pos }
func (s *WhileStmt) NodePos() Pos    { return s.Pos }
func (s *SwitchStmt) NodePos() Pos   { return s.Pos }
func (s *BreakStmt) NodePos() Pos    { return s.Pos }
func (s *ContinueStmt) NodePos() Pos { return s.Pos }
func (s *ReturnStmt) NodePos() Pos   { return s.Pos }

func (*AssignStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*SwitchStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ReturnStmt) stmt()   {}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// IdentExpr is a variable or function name.
type IdentExpr struct {
	Pos  Pos
	Name string
}

// NumberExpr is a numeric literal; Imag marks an i/j suffix.
type NumberExpr struct {
	Pos   Pos
	Value float64
	Imag  bool
}

// StringExpr is a single-quoted character vector literal.
type StringExpr struct {
	Pos   Pos
	Value string
}

// MatrixExpr is "[r1c1 r1c2; r2c1 r2c2]". Rows may be ragged at parse
// time; sema checks conformance.
type MatrixExpr struct {
	Pos  Pos
	Rows [][]Expr
}

// RangeExpr is "start:stop" or "start:step:stop".
type RangeExpr struct {
	Pos   Pos
	Start Expr
	Step  Expr // nil for unit step
	Stop  Expr
}

// ColonExpr is a bare ':' used as an index (whole dimension).
type ColonExpr struct{ Pos Pos }

// EndExpr is the 'end' keyword inside an index expression.
type EndExpr struct{ Pos Pos }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators. Mat* are the linear-algebra forms; El* element-wise.
const (
	OpAdd     BinOp = iota // +
	OpSub                  // -
	OpMatMul               // *
	OpMatDiv               // /
	OpMatLDiv              // \
	OpMatPow               // ^
	OpElMul                // .*
	OpElDiv                // ./
	OpElPow                // .^
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpAndAnd
	OpOrOr
	OpAnd
	OpOr
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMatMul: "*", OpMatDiv: "/", OpMatLDiv: "\\",
	OpMatPow: "^", OpElMul: ".*", OpElDiv: "./", OpElPow: ".^",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "~=",
	OpAndAnd: "&&", OpOrOr: "||", OpAnd: "&", OpOr: "|",
}

// String returns the MATLAB spelling of the operator.
func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return "?"
}

// BinaryExpr is "x op y".
type BinaryExpr struct {
	Pos  Pos
	Op   BinOp
	X, Y Expr
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota // -
	OpPos             // +
	OpNot             // ~
)

// String returns the MATLAB spelling of the operator.
func (op UnOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpPos:
		return "+"
	case OpNot:
		return "~"
	}
	return "?"
}

// UnaryExpr is "op x".
type UnaryExpr struct {
	Pos Pos
	Op  UnOp
	X   Expr
}

// TransposeExpr is "x'" (conjugate transpose) or "x.'" (plain).
type TransposeExpr struct {
	Pos  Pos
	X    Expr
	Conj bool
}

// CallExpr is "f(a, b)" — in MATLAB this is syntactically identical to
// array indexing; sema disambiguates using the symbol table.
type CallExpr struct {
	Pos  Pos
	Fun  Expr // always *IdentExpr in the supported subset
	Args []Expr
}

func (e *IdentExpr) NodePos() Pos     { return e.Pos }
func (e *NumberExpr) NodePos() Pos    { return e.Pos }
func (e *StringExpr) NodePos() Pos    { return e.Pos }
func (e *MatrixExpr) NodePos() Pos    { return e.Pos }
func (e *RangeExpr) NodePos() Pos     { return e.Pos }
func (e *ColonExpr) NodePos() Pos     { return e.Pos }
func (e *EndExpr) NodePos() Pos       { return e.Pos }
func (e *BinaryExpr) NodePos() Pos    { return e.Pos }
func (e *UnaryExpr) NodePos() Pos     { return e.Pos }
func (e *TransposeExpr) NodePos() Pos { return e.Pos }
func (e *CallExpr) NodePos() Pos      { return e.Pos }

func (*IdentExpr) expr()     {}
func (*NumberExpr) expr()    {}
func (*StringExpr) expr()    {}
func (*MatrixExpr) expr()    {}
func (*RangeExpr) expr()     {}
func (*ColonExpr) expr()     {}
func (*EndExpr) expr()       {}
func (*BinaryExpr) expr()    {}
func (*UnaryExpr) expr()     {}
func (*TransposeExpr) expr() {}
func (*CallExpr) expr()      {}
