package mlang

import (
	"fmt"
	"strings"
)

// LexError describes a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns MATLAB source text into tokens. It resolves the classic
// quote ambiguity (transpose vs. string start) by tracking whether the
// previous significant token can end an operand.
type Lexer struct {
	src  string
	off  int
	line int
	col  int

	prev      Kind // previous significant (non-comment) token kind
	prevValid bool
	errs      []*LexError
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns lexical errors encountered so far.
func (lx *Lexer) Errors() []*LexError { return lx.errs }

func (lx *Lexer) errorf(p Pos, format string, args ...interface{}) {
	lx.errs = append(lx.errs, &LexError{Pos: p, Msg: fmt.Sprintf(format, args...)})
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }

// operandEnd reports whether kind k can syntactically end an operand, in
// which case a following quote is transpose rather than a string opener.
func operandEnd(k Kind) bool {
	switch k {
	case Ident, Number, String, RParen, RBracket, KwEnd, Quote, DotQuote:
		return true
	}
	return false
}

// Next returns the next token. At end of input it returns EOF forever.
func (lx *Lexer) Next() Token {
	space := false
	for {
		// Skip horizontal whitespace.
		for lx.peek() == ' ' || lx.peek() == '\t' || lx.peek() == '\r' {
			lx.advance()
			space = true
		}
		// Line continuation: "..." to end of line swallows the newline.
		if lx.peek() == '.' && lx.peekAt(1) == '.' && lx.peekAt(2) == '.' {
			for lx.peek() != '\n' && lx.peek() != 0 {
				lx.advance()
			}
			if lx.peek() == '\n' {
				lx.advance()
			}
			space = true
			continue
		}
		break
	}

	p := lx.pos()
	c := lx.peek()

	mk := func(k Kind, text string) Token {
		lx.prev, lx.prevValid = k, true
		return Token{Kind: k, Text: text, Pos: p, SpaceBefore: space}
	}

	switch {
	case c == 0:
		return mk(EOF, "")
	case c == '\n':
		lx.advance()
		return mk(Newline, "\n")
	case c == '%':
		// Block comment %{ ... %} (each marker alone on its line in real
		// MATLAB; we accept them anywhere for robustness).
		if lx.peekAt(1) == '{' {
			lx.advance()
			lx.advance()
			var sb strings.Builder
			for {
				if lx.peek() == 0 {
					lx.errorf(p, "unterminated block comment")
					break
				}
				if lx.peek() == '%' && lx.peekAt(1) == '}' {
					lx.advance()
					lx.advance()
					break
				}
				sb.WriteByte(lx.advance())
			}
			return mk(Comment, sb.String())
		}
		var sb strings.Builder
		for lx.peek() != '\n' && lx.peek() != 0 {
			sb.WriteByte(lx.advance())
		}
		return mk(Comment, sb.String())
	case isDigit(c) || c == '.' && isDigit(lx.peekAt(1)):
		return lx.lexNumber(p, space)
	case isAlpha(c):
		var sb strings.Builder
		for isAlnum(lx.peek()) {
			sb.WriteByte(lx.advance())
		}
		name := sb.String()
		return mk(KeywordKind(name), name)
	case c == '\'':
		if lx.prevValid && operandEnd(lx.prev) && !space {
			// Transpose operator: binds tightly, no preceding space.
			lx.advance()
			return mk(Quote, "'")
		}
		return lx.lexString(p, space)
	}

	// Operators and punctuation.
	two := func(k Kind, text string) Token {
		lx.advance()
		lx.advance()
		return mk(k, text)
	}
	one := func(k Kind, text string) Token {
		lx.advance()
		return mk(k, text)
	}
	switch c {
	case '(':
		return one(LParen, "(")
	case ')':
		return one(RParen, ")")
	case '[':
		return one(LBracket, "[")
	case ']':
		return one(RBracket, "]")
	case ',':
		return one(Comma, ",")
	case ';':
		return one(Semicolon, ";")
	case ':':
		return one(Colon, ":")
	case '+':
		return one(Plus, "+")
	case '-':
		return one(Minus, "-")
	case '*':
		return one(Star, "*")
	case '/':
		return one(Slash, "/")
	case '\\':
		return one(Backslash, "\\")
	case '^':
		return one(Caret, "^")
	case '.':
		switch lx.peekAt(1) {
		case '*':
			return two(DotStar, ".*")
		case '/':
			return two(DotSlash, "./")
		case '^':
			return two(DotCaret, ".^")
		case '\'':
			return two(DotQuote, ".'")
		}
		lx.advance()
		lx.errorf(p, "unexpected '.'")
		return lx.Next()
	case '=':
		if lx.peekAt(1) == '=' {
			return two(EqEq, "==")
		}
		return one(Assign, "=")
	case '<':
		if lx.peekAt(1) == '=' {
			return two(Le, "<=")
		}
		return one(Lt, "<")
	case '>':
		if lx.peekAt(1) == '=' {
			return two(Ge, ">=")
		}
		return one(Gt, ">")
	case '~':
		if lx.peekAt(1) == '=' {
			return two(Ne, "~=")
		}
		return one(Not, "~")
	case '&':
		if lx.peekAt(1) == '&' {
			return two(AndAnd, "&&")
		}
		return one(Amp, "&")
	case '|':
		if lx.peekAt(1) == '|' {
			return two(OrOr, "||")
		}
		return one(Pipe, "|")
	}

	lx.advance()
	lx.errorf(p, "unexpected character %q", string(rune(c)))
	return lx.Next()
}

func (lx *Lexer) lexNumber(p Pos, space bool) Token {
	var sb strings.Builder
	for isDigit(lx.peek()) {
		sb.WriteByte(lx.advance())
	}
	// Fractional part — but not if the dot starts an element-wise operator
	// (e.g. "2.*x") or a field/transpose form.
	if lx.peek() == '.' {
		n := lx.peekAt(1)
		if n != '*' && n != '/' && n != '^' && n != '\'' && n != '.' {
			sb.WriteByte(lx.advance())
			for isDigit(lx.peek()) {
				sb.WriteByte(lx.advance())
			}
		}
	}
	// Exponent.
	if c := lx.peek(); c == 'e' || c == 'E' {
		n := lx.peekAt(1)
		if isDigit(n) || (n == '+' || n == '-') && isDigit(lx.peekAt(2)) {
			sb.WriteByte(lx.advance()) // e
			if lx.peek() == '+' || lx.peek() == '-' {
				sb.WriteByte(lx.advance())
			}
			for isDigit(lx.peek()) {
				sb.WriteByte(lx.advance())
			}
		}
	}
	imag := false
	if c := lx.peek(); c == 'i' || c == 'j' || c == 'I' || c == 'J' {
		// Imaginary suffix only when not followed by more identifier
		// characters (so "2in" lexes as 2 then ident "in" — an error later,
		// matching MATLAB).
		if !isAlnum(lx.peekAt(1)) {
			lx.advance()
			imag = true
		}
	}
	lx.prev, lx.prevValid = Number, true
	return Token{Kind: Number, Text: sb.String(), Pos: p, SpaceBefore: space, Imag: imag}
}

func (lx *Lexer) lexString(p Pos, space bool) Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		c := lx.peek()
		if c == 0 || c == '\n' {
			lx.errorf(p, "unterminated string literal")
			break
		}
		lx.advance()
		if c == '\'' {
			if lx.peek() == '\'' { // escaped quote
				lx.advance()
				sb.WriteByte('\'')
				continue
			}
			break
		}
		sb.WriteByte(c)
	}
	lx.prev, lx.prevValid = String, true
	return Token{Kind: String, Text: sb.String(), Pos: p, SpaceBefore: space}
}

// LexAll tokenizes the whole input, excluding comments, including the
// final EOF token. It is a convenience for tests and tools.
func LexAll(src string) ([]Token, []*LexError) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		if t.Kind == Comment {
			continue
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, lx.Errors()
		}
	}
}
