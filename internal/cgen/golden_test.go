// Golden-file tests for the C backend: the emitted ANSI C for the
// benchmark suite and the example kernels, against several targets, is
// diffed verbatim against committed files. Regenerate intentionally
// with
//
//	go test ./internal/cgen/ -run TestGolden -update
//
// so backend changes show up as reviewable diffs instead of silent
// drift. This is an external test package (cgen's internal tests
// cannot import bench: bench → core → cgen).
package cgen_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	mat2c "mat2c"
	"mat2c/internal/bench"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// exampleKernels mirror the sources in examples/quickstart and
// examples/qamdemod (kept in sync by TestGoldenExamplesInSync below),
// pinning the C the walkthroughs in those directories print.
var exampleKernels = []struct {
	name   string
	entry  string
	source string
	params []mat2c.Type
}{
	{
		name:  "smooth",
		entry: "smooth",
		source: `function y = smooth(x)
% 3-point moving average with clamped ends.
n = length(x);
y = zeros(1, n);
y(1) = x(1);
y(n) = x(n);
for i = 2:n-1
    y(i) = (x(i-1) + x(i) + x(i+1)) / 3;
end
end`,
		params: []mat2c.Type{mat2c.Vector(mat2c.Real)},
	},
	{
		name:  "demod",
		entry: "demod",
		source: `function [soft, energy] = demod(rx, mf, lo)
% Matched filter then derotate by the local oscillator; also report
% the total filtered energy.
n = length(rx);
t = length(mf);
y = zeros(1, n);
for k = 1:t
    y(t:n) = y(t:n) + conj(mf(k)) .* rx(t-k+1:n-k+1);
end
soft = y .* conj(lo);
energy = sum(real(soft).^2 + imag(soft).^2);
end`,
		params: []mat2c.Type{mat2c.Vector(mat2c.Complex), mat2c.Vector(mat2c.Complex), mat2c.Scalar(mat2c.Complex)},
	},
}

var goldenTargets = []string{"scalar", "dspasip", "wide8"}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name)
}

func checkGolden(t *testing.T, file, got string) {
	t.Helper()
	path := goldenPath(file)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s: emitted C differs from golden file (rerun with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenBenchKernels pins the C for every benchmark kernel against
// every golden target.
func TestGoldenBenchKernels(t *testing.T) {
	for _, k := range bench.Kernels() {
		for _, target := range goldenTargets {
			t.Run(k.Name+"_"+target, func(t *testing.T) {
				res, err := mat2c.Compile(k.Source, k.Entry, k.Params, mat2c.Options{Target: target})
				if err != nil {
					t.Fatal(err)
				}
				checkGolden(t, fmt.Sprintf("%s_%s.c", k.Name, target), res.CSource())
			})
		}
	}
}

// TestGoldenExampleKernels pins the C for the examples/ walkthrough
// kernels.
func TestGoldenExampleKernels(t *testing.T) {
	for _, ex := range exampleKernels {
		for _, target := range goldenTargets {
			t.Run(ex.name+"_"+target, func(t *testing.T) {
				res, err := mat2c.Compile(ex.source, ex.entry, ex.params, mat2c.Options{Target: target})
				if err != nil {
					t.Fatal(err)
				}
				checkGolden(t, fmt.Sprintf("%s_%s.c", ex.name, target), res.CSource())
			})
		}
	}
}

// TestGoldenHeaders pins the per-target runtime header (one per
// target; it depends only on the processor description).
func TestGoldenHeaders(t *testing.T) {
	k := bench.KernelByName("fir")
	for _, target := range goldenTargets {
		t.Run(target, func(t *testing.T) {
			res, err := mat2c.Compile(k.Source, k.Entry, k.Params, mat2c.Options{Target: target})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("header_%s.h", target), res.CHeader())
		})
	}
}

// TestGoldenExamplesInSync fails when the inline example sources drift
// from the files under examples/ they mirror.
func TestGoldenExamplesInSync(t *testing.T) {
	files := map[string]string{
		"smooth": "../../examples/quickstart/main.go",
		"demod":  "../../examples/qamdemod/main.go",
	}
	for _, ex := range exampleKernels {
		data, err := os.ReadFile(files[ex.name])
		if err != nil {
			t.Fatal(err)
		}
		if !containsVerbatim(string(data), ex.source) {
			t.Errorf("example source for %q is out of sync with %s", ex.name, files[ex.name])
		}
	}
}

func containsVerbatim(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
