package cgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
)

func cFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "HUGE_VAL"
	}
	if math.IsInf(v, -1) {
		return "(-HUGE_VAL)"
	}
	s := strconv.FormatFloat(v, 'g', 17, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// expr renders an IR expression as C.
func (g *cgen) expr(e ir.Expr) string {
	switch x := e.(type) {
	case *ir.ConstInt:
		return fmt.Sprintf("%dL", x.V)
	case *ir.ConstFloat:
		return cFloat(x.V)
	case *ir.ConstComplex:
		return fmt.Sprintf("mc_cof(%s, %s)", cFloat(real(x.V)), cFloat(imag(x.V)))
	case *ir.VarRef:
		return g.names[x.Sym]
	case *ir.Load:
		return fmt.Sprintf("%sdata[%s]", g.access[x.Arr], g.expr(x.Index))
	case *ir.Dim:
		acc := g.access[x.Arr]
		switch x.Which {
		case ir.DimRows:
			return acc + "rows"
		case ir.DimCols:
			return acc + "cols"
		default:
			return fmt.Sprintf("(%srows * %scols)", acc, acc)
		}
	case *ir.Bin:
		return g.binExpr(x)
	case *ir.Un:
		return g.unExpr(x)
	case *ir.VecLoad:
		if s := x.StrideOr1(); s != 1 {
			name := "vlds"
			if x.Arr.Elem == ir.Complex {
				name = "vclds"
			}
			in := (*pdesc.Instr)(nil)
			if g.proc != nil {
				in = g.proc.Instr(name)
			}
			if in == nil {
				g.failf("strided vector load requires the %s instruction on target", name)
				return "0"
			}
			return fmt.Sprintf("%s(&%sdata[%s], %dL)", in.CName, g.access[x.Arr], g.expr(x.Index), s)
		}
		return fmt.Sprintf("%s_load(&%sdata[%s])", vecType(x.K), g.access[x.Arr], g.expr(x.Index))
	case *ir.Broadcast:
		inner := g.expr(x.X)
		if x.K.Base == ir.Complex {
			inner = g.castTo(ir.KComplex, inner, x.X.Kind())
		} else if x.X.Kind().Base == ir.Int && x.K.Base == ir.Float {
			inner = fmt.Sprintf("(double)(%s)", inner)
		} else if x.X.Kind().Base == ir.Int && x.K.Base == ir.Int {
			inner = fmt.Sprintf("(double)(%s)", inner)
		}
		return fmt.Sprintf("%s_splat(%s)", vecType(x.K), inner)
	case *ir.Ramp:
		return fmt.Sprintf("%s_ramp(%s, %d)", vecType(x.K), g.expr(x.Base), x.Step)
	case *ir.Reduce:
		inner := g.expr(x.X)
		var red string
		switch x.Op {
		case ir.OpAdd:
			red = "redadd"
		case ir.OpMin:
			red = "redmin"
		case ir.OpMax:
			red = "redmax"
		default:
			g.failf("unsupported reduction op %s", x.Op)
			red = "redadd"
		}
		call := fmt.Sprintf("%s_%s(%s)", vecType(x.X.Kind()), red, inner)
		srcBase := x.X.Kind().Base
		return g.castTo(x.K, call, ir.Kind{Base: srcBase, Lanes: 1})
	case *ir.Select:
		if x.K.Lanes > 1 {
			// The mask is an integer vector (shared float representation).
			mask := g.vop(x.Cond, ir.Kind{Base: ir.Float, Lanes: x.K.Lanes})
			th := g.vop(x.Then, x.K)
			el := g.vop(x.Else, x.K)
			return fmt.Sprintf("%s_sel(%s, %s, %s)", vecType(x.K), mask, th, el)
		}
		cond := g.expr(x.Cond)
		th := g.castTo(x.K, g.expr(x.Then), x.Then.Kind())
		el := g.castTo(x.K, g.expr(x.Else), x.Else.Kind())
		return fmt.Sprintf("((%s) ? (%s) : (%s))", cond, th, el)
	case *ir.Intrinsic:
		if g.proc == nil {
			g.failf("intrinsic %q without processor description", x.Name)
			return "0"
		}
		in := g.proc.Instr(x.Name)
		if in == nil {
			g.failf("intrinsic %q not in processor %s", x.Name, g.proc.Name)
			return "0"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = g.expr(a)
		}
		return fmt.Sprintf("%s(%s)", in.CName, strings.Join(args, ", "))
	}
	g.failf("unsupported expression %T", e)
	return "0"
}

// vop renders a vector operand, splatting scalars (the VM broadcasts
// scalar operands of vector ops on the fly; C needs it explicit).
func (g *cgen) vop(e ir.Expr, want ir.Kind) string {
	s := g.expr(e)
	if e.Kind().Lanes > 1 {
		return s
	}
	if want.Base == ir.Complex {
		s = g.castTo(ir.KComplex, s, e.Kind())
		return fmt.Sprintf("mc_vc%d_splat(%s)", want.Lanes, s)
	}
	if e.Kind().Base != ir.Float {
		s = fmt.Sprintf("(double)(%s)", s)
	}
	return fmt.Sprintf("mc_vf%d_splat(%s)", want.Lanes, s)
}

func (g *cgen) binExpr(x *ir.Bin) string {
	ka, kb := x.X.Kind(), x.Y.Kind()
	base := ka.Base
	if kb.Base > base {
		base = kb.Base
	}

	if x.K.Lanes > 1 {
		wk := ir.Kind{Base: base, Lanes: x.K.Lanes}
		a := g.vop(x.X, wk)
		b := g.vop(x.Y, wk)
		t := vecType(wk)
		var op string
		switch x.Op {
		case ir.OpAdd:
			op = "add"
		case ir.OpSub:
			op = "sub"
		case ir.OpMul:
			op = "mul"
		case ir.OpDiv:
			op = "div"
		case ir.OpMin:
			op = "min"
		case ir.OpMax:
			op = "max"
		case ir.OpRem:
			op = "rem"
		case ir.OpPow:
			op = "pow"
		case ir.OpAtan2:
			op = "atan2"
		case ir.OpLt:
			op = "lt"
		case ir.OpLe:
			op = "le"
		case ir.OpGt:
			op = "gt"
		case ir.OpGe:
			op = "ge"
		case ir.OpEq:
			op = "eq"
		case ir.OpNe:
			op = "ne"
		default:
			g.failf("unsupported vector op %s", x.Op)
			op = "add"
		}
		if base == ir.Complex {
			switch x.Op {
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv:
			default:
				g.failf("unsupported complex vector op %s", x.Op)
			}
		}
		return fmt.Sprintf("%s_%s(%s, %s)", t, op, a, b)
	}

	a := g.convOperand(x.X, base)
	b := g.convOperand(x.Y, base)

	switch base {
	case ir.Int:
		return g.intBin(x.Op, a, b)
	case ir.Float:
		s := g.floatBin(x.Op, a, b)
		if x.K.Base == ir.Int {
			// Comparisons and logic yield long.
			return s
		}
		return s
	default:
		return g.cplxBin(x.Op, a, b)
	}
}

// convOperand converts an operand expression to the computation base.
func (g *cgen) convOperand(e ir.Expr, base ir.BaseKind) string {
	s := g.expr(e)
	from := e.Kind().Base
	if from == base {
		return s
	}
	switch base {
	case ir.Float:
		return fmt.Sprintf("(double)(%s)", s)
	case ir.Complex:
		if from == ir.Int {
			return fmt.Sprintf("mc_cof((double)(%s), 0.0)", s)
		}
		return fmt.Sprintf("mc_cof(%s, 0.0)", s)
	default:
		return fmt.Sprintf("(long)(%s)", s)
	}
}

func (g *cgen) intBin(op ir.Op, a, b string) string {
	switch op {
	case ir.OpAdd:
		return fmt.Sprintf("(%s + %s)", a, b)
	case ir.OpSub:
		return fmt.Sprintf("(%s - %s)", a, b)
	case ir.OpMul:
		return fmt.Sprintf("(%s * %s)", a, b)
	case ir.OpDiv:
		return fmt.Sprintf("(%s / %s)", a, b)
	case ir.OpRem:
		return fmt.Sprintf("mc_irem(%s, %s)", a, b)
	case ir.OpPow:
		return fmt.Sprintf("mc_ipow(%s, %s)", a, b)
	case ir.OpMin:
		return fmt.Sprintf("mc_imin(%s, %s)", a, b)
	case ir.OpMax:
		return fmt.Sprintf("mc_imax(%s, %s)", a, b)
	case ir.OpLt:
		return fmt.Sprintf("(long)(%s < %s)", a, b)
	case ir.OpLe:
		return fmt.Sprintf("(long)(%s <= %s)", a, b)
	case ir.OpGt:
		return fmt.Sprintf("(long)(%s > %s)", a, b)
	case ir.OpGe:
		return fmt.Sprintf("(long)(%s >= %s)", a, b)
	case ir.OpEq:
		return fmt.Sprintf("(long)(%s == %s)", a, b)
	case ir.OpNe:
		return fmt.Sprintf("(long)(%s != %s)", a, b)
	case ir.OpAnd:
		return fmt.Sprintf("(long)((%s != 0) && (%s != 0))", a, b)
	case ir.OpOr:
		return fmt.Sprintf("(long)((%s != 0) || (%s != 0))", a, b)
	}
	g.failf("unsupported int op %s", op)
	return "0"
}

func (g *cgen) floatBin(op ir.Op, a, b string) string {
	switch op {
	case ir.OpAdd:
		return fmt.Sprintf("(%s + %s)", a, b)
	case ir.OpSub:
		return fmt.Sprintf("(%s - %s)", a, b)
	case ir.OpMul:
		return fmt.Sprintf("(%s * %s)", a, b)
	case ir.OpDiv:
		return fmt.Sprintf("(%s / %s)", a, b)
	case ir.OpRem:
		return fmt.Sprintf("fmod(%s, %s)", a, b)
	case ir.OpPow:
		return fmt.Sprintf("pow(%s, %s)", a, b)
	case ir.OpMin:
		return fmt.Sprintf("mc_fmin(%s, %s)", a, b)
	case ir.OpMax:
		return fmt.Sprintf("mc_fmax(%s, %s)", a, b)
	case ir.OpAtan2:
		return fmt.Sprintf("atan2(%s, %s)", a, b)
	case ir.OpLt:
		return fmt.Sprintf("(long)(%s < %s)", a, b)
	case ir.OpLe:
		return fmt.Sprintf("(long)(%s <= %s)", a, b)
	case ir.OpGt:
		return fmt.Sprintf("(long)(%s > %s)", a, b)
	case ir.OpGe:
		return fmt.Sprintf("(long)(%s >= %s)", a, b)
	case ir.OpEq:
		return fmt.Sprintf("(long)(%s == %s)", a, b)
	case ir.OpNe:
		return fmt.Sprintf("(long)(%s != %s)", a, b)
	case ir.OpAnd:
		return fmt.Sprintf("(long)((%s != 0.0) && (%s != 0.0))", a, b)
	case ir.OpOr:
		return fmt.Sprintf("(long)((%s != 0.0) || (%s != 0.0))", a, b)
	}
	g.failf("unsupported float op %s", op)
	return "0"
}

func (g *cgen) cplxBin(op ir.Op, a, b string) string {
	switch op {
	case ir.OpAdd:
		return fmt.Sprintf("mc_cadd(%s, %s)", a, b)
	case ir.OpSub:
		return fmt.Sprintf("mc_csub(%s, %s)", a, b)
	case ir.OpMul:
		return fmt.Sprintf("mc_cmul(%s, %s)", a, b)
	case ir.OpDiv:
		return fmt.Sprintf("mc_cdiv(%s, %s)", a, b)
	case ir.OpEq:
		return fmt.Sprintf("(long)mc_ceq(%s, %s)", a, b)
	case ir.OpNe:
		return fmt.Sprintf("(long)!mc_ceq(%s, %s)", a, b)
	}
	g.failf("unsupported complex op %s", op)
	return "0"
}

func (g *cgen) unExpr(x *ir.Un) string {
	fromK := x.X.Kind()
	if x.K.Lanes > 1 {
		return g.unVecExpr(x)
	}
	a := g.expr(x.X)
	from := fromK.Base

	castResult := func(s string, produced ir.BaseKind) string {
		return g.castTo(x.K, s, ir.Kind{Base: produced, Lanes: 1})
	}
	switch x.Op {
	case ir.OpNeg:
		if from == ir.Complex {
			return fmt.Sprintf("mc_cneg(%s)", a)
		}
		return castResult(fmt.Sprintf("(-(%s))", a), from)
	case ir.OpNot:
		switch from {
		case ir.Complex:
			return fmt.Sprintf("(long)mc_ceq(%s, mc_cof(0.0, 0.0))", a)
		case ir.Float:
			return fmt.Sprintf("(long)((%s) == 0.0)", a)
		default:
			return fmt.Sprintf("(long)((%s) == 0)", a)
		}
	case ir.OpSqrt:
		if from == ir.Complex || x.K.Base == ir.Complex {
			return fmt.Sprintf("mc_csqrt(%s)", g.convOperand(x.X, ir.Complex))
		}
		return castResult(fmt.Sprintf("sqrt(%s)", g.convOperand(x.X, ir.Float)), ir.Float)
	case ir.OpSin, ir.OpCos, ir.OpTan, ir.OpExp, ir.OpLog,
		ir.OpAsin, ir.OpAcos, ir.OpAtan, ir.OpSinh, ir.OpCosh, ir.OpTanh:
		name := map[ir.Op]string{ir.OpSin: "sin", ir.OpCos: "cos", ir.OpTan: "tan",
			ir.OpExp: "exp", ir.OpLog: "log", ir.OpAsin: "asin", ir.OpAcos: "acos",
			ir.OpAtan: "atan", ir.OpSinh: "sinh", ir.OpCosh: "cosh", ir.OpTanh: "tanh"}[x.Op]
		if from == ir.Complex {
			switch x.Op {
			case ir.OpExp:
				return fmt.Sprintf("mc_cexp(%s)", a)
			case ir.OpLog:
				return fmt.Sprintf("mc_clog(%s)", a)
			default:
				g.failf("complex %s is not supported by the C backend", name)
				return "0"
			}
		}
		return castResult(fmt.Sprintf("%s(%s)", name, g.convOperand(x.X, ir.Float)), ir.Float)
	case ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
		name := map[ir.Op]string{ir.OpFloor: "floor", ir.OpCeil: "ceil",
			ir.OpRound: "mc_round", ir.OpTrunc: "mc_trunc"}[x.Op]
		return castResult(fmt.Sprintf("%s(%s)", name, g.convOperand(x.X, ir.Float)), ir.Float)
	case ir.OpAbs:
		if from == ir.Complex {
			return castResult(fmt.Sprintf("mc_cabs(%s)", a), ir.Float)
		}
		return castResult(fmt.Sprintf("fabs(%s)", g.convOperand(x.X, ir.Float)), ir.Float)
	case ir.OpSign:
		return castResult(fmt.Sprintf("mc_sign(%s)", g.convOperand(x.X, ir.Float)), ir.Float)
	case ir.OpRe:
		if from == ir.Complex {
			return castResult(fmt.Sprintf("(%s).re", a), ir.Float)
		}
		return castResult(g.convOperand(x.X, ir.Float), ir.Float)
	case ir.OpIm:
		if from == ir.Complex {
			return castResult(fmt.Sprintf("(%s).im", a), ir.Float)
		}
		return "0.0"
	case ir.OpConj:
		return fmt.Sprintf("mc_cconj(%s)", g.convOperand(x.X, ir.Complex))
	case ir.OpAngle:
		return castResult(fmt.Sprintf("mc_carg(%s)", g.convOperand(x.X, ir.Complex)), ir.Float)
	case ir.OpToInt:
		return fmt.Sprintf("mc_iround(%s)", g.convOperand(x.X, ir.Float))
	case ir.OpToFloat:
		return g.convOperand(x.X, ir.Float)
	case ir.OpToComplex:
		return g.convOperand(x.X, ir.Complex)
	}
	g.failf("unsupported unary op %s", x.Op)
	return "0"
}

func (g *cgen) unVecExpr(x *ir.Un) string {
	wk := ir.Kind{Base: x.X.Kind().Base, Lanes: x.K.Lanes}
	a := g.vop(x.X, wk)
	t := vecType(wk)
	name := map[ir.Op]string{
		ir.OpNeg: "neg", ir.OpAbs: "abs", ir.OpSqrt: "sqrt", ir.OpSin: "sin",
		ir.OpCos: "cos", ir.OpTan: "tan", ir.OpExp: "exp", ir.OpLog: "log",
		ir.OpAsin: "asin", ir.OpAcos: "acos", ir.OpAtan: "atan",
		ir.OpSinh: "sinh", ir.OpCosh: "cosh", ir.OpTanh: "tanh",
		ir.OpFloor: "floor", ir.OpCeil: "ceil", ir.OpRound: "round",
		ir.OpTrunc: "trunc", ir.OpSign: "sign", ir.OpConj: "conj",
		ir.OpRe: "re", ir.OpIm: "im",
	}[x.Op]
	switch x.Op {
	case ir.OpToFloat, ir.OpToInt:
		// Int and float vectors share the representation.
		if x.K.Base != ir.Complex && wk.Base != ir.Complex {
			return a
		}
		g.failf("unsupported vector conversion to %s", x.K)
		return a
	case ir.OpToComplex:
		if wk.Base == ir.Complex {
			return a
		}
		return fmt.Sprintf("mc_vc%d_fromf(%s)", x.K.Lanes, a)
	case ir.OpRe, ir.OpIm:
		if wk.Base != ir.Complex {
			if x.Op == ir.OpIm {
				return fmt.Sprintf("mc_vf%d_splat(0.0)", x.K.Lanes)
			}
			return a
		}
	}
	if name == "" {
		g.failf("unsupported vector unary op %s", x.Op)
		return a
	}
	if wk.Base == ir.Complex {
		switch x.Op {
		case ir.OpNeg, ir.OpConj, ir.OpExp, ir.OpLog, ir.OpSqrt, ir.OpAbs, ir.OpRe, ir.OpIm:
		default:
			g.failf("unsupported complex vector unary op %s", x.Op)
		}
	}
	return fmt.Sprintf("%s_%s(%s)", t, name, a)
}
