package cgen

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/isel"
	"mat2c/internal/lower"
	"mat2c/internal/mlang"
	"mat2c/internal/opt"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
	"mat2c/internal/vectorize"
	"mat2c/internal/vm"
)

func buildIR(t *testing.T, src, proc string, optimize bool, params ...sema.Type) (*ir.Func, *pdesc.Processor) {
	t.Helper()
	file, err := mlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	entry := file.Funcs[0].Name
	info, err := sema.Analyze(file, entry, params)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	p := pdesc.Builtin(proc)
	if optimize {
		opt.Optimize(f, 1)
		vectorize.Apply(f, p)
		isel.Apply(f, p)
	}
	return f, p
}

func dynVec() sema.Type {
	return sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func dynCVec() sema.Type {
	return sema.Type{Class: sema.Complex, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func TestHeaderGeneration(t *testing.T) {
	for _, name := range pdesc.BuiltinNames() {
		h := Header(pdesc.Builtin(name))
		for _, want := range []string{"mc_c128", "mc_arrf", "mc_cmul", "ASIP_INTRINSICS_H", "mc_vf4_add"} {
			if !strings.Contains(h, want) {
				t.Errorf("%s header missing %q", name, want)
			}
		}
	}
	// dspasip header must carry its intrinsic fallbacks.
	h := Header(pdesc.Builtin("dspasip"))
	for _, want := range []string{"_asip_cmul", "_asip_cmac", "_asip_vfma4", "#ifndef ASIP_HW"} {
		if !strings.Contains(h, want) {
			t.Errorf("dspasip header missing %q", want)
		}
	}
}

func TestFunctionEmission(t *testing.T) {
	src := `function y = f(x, h)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = x(i) * h(1) + 1;
end
end`
	f, p := buildIR(t, src, "dspasip", true, dynVec(), dynVec())
	c, err := Function(f, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"void f(const mc_arrf *", "mc_arrf *out_", "#include \"asip_intrinsics.h\"",
		"for (", "mc_arrf_alloc",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("generated C missing %q:\n%s", want, c)
		}
	}
}

func TestEmittedIntrinsicCalls(t *testing.T) {
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`
	f, p := buildIR(t, src, "dspasip", true, dynCVec(), dynCVec())
	c, err := Function(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c, "_asip_vcconjmul2(") && !strings.Contains(c, "_asip_vcmac2(") {
		t.Errorf("expected vector complex intrinsic calls:\n%s", c)
	}
}

// ----- gcc compile-and-run cross-validation -----

func hasGCC() bool {
	_, err := exec.LookPath("gcc")
	return err == nil
}

// requireGCC gates the compile-and-run cross-validation tests: on
// developer machines without a C compiler they skip, but when
// MAT2C_REQUIRE_CC is set (CI installs gcc explicitly) a missing
// compiler is a failure — the coverage must not silently disappear.
// Failures of gcc itself on emitted C are always test failures.
func requireGCC(t *testing.T) {
	t.Helper()
	if hasGCC() {
		return
	}
	if os.Getenv("MAT2C_REQUIRE_CC") != "" {
		t.Fatal("MAT2C_REQUIRE_CC is set but gcc is not on PATH")
	}
	t.Skip("gcc not available")
}

// cLit renders a Go float as a C literal.
func cLit(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}

// buildMain generates a C main() that calls the compiled function with
// the given arguments and prints every result value one per line.
func buildMain(t *testing.T, f *ir.Func, args []interface{}) string {
	t.Helper()
	var b strings.Builder
	w := func(format string, a ...interface{}) { fmt.Fprintf(&b, format+"\n", a...) }
	w(`#include <stdio.h>`)
	w(`#include "func.c"`)
	w("int main(void) {")

	names := map[*ir.Sym]string{}
	seen := map[string]bool{}
	for _, p := range f.Params {
		n := fmt.Sprintf("%s_%d", sanitize(p.Name), p.ID)
		for seen[n] {
			n += "x"
		}
		seen[n] = true
		names[p] = n
	}

	// Declare and fill arguments.
	for i, p := range f.Params {
		n := "a_" + names[p]
		switch a := args[i].(type) {
		case float64:
			w("    double %s = %s;", n, cLit(a))
		case int64:
			w("    long %s = %d;", n, a)
		case complex128:
			w("    mc_c128 %s = mc_cof(%s, %s);", n, cLit(real(a)), cLit(imag(a)))
		case *ir.Array:
			if a.Elem == ir.Complex {
				w("    mc_arrc %s = {0,0,0};", n)
				w("    mc_arrc_alloc(&%s, %d, %d);", n, a.Rows, a.Cols)
				for j, v := range a.C {
					w("    %s.data[%d] = mc_cof(%s, %s);", n, j, cLit(real(v)), cLit(imag(v)))
				}
			} else {
				w("    mc_arrf %s = {0,0,0};", n)
				w("    mc_arrf_alloc(&%s, %d, %d);", n, a.Rows, a.Cols)
				for j, v := range a.F {
					w("    %s.data[%d] = %s;", n, j, cLit(v))
				}
			}
		}
	}
	// Declare result holders.
	isParam := func(s *ir.Sym) bool {
		for _, p := range f.Params {
			if p == s {
				return true
			}
		}
		return false
	}
	for _, r := range f.Results {
		if isParam(r) {
			continue
		}
		n := "r_" + fmt.Sprintf("%s_%d", sanitize(r.Name), r.ID)
		if r.IsArray {
			w("    %s %s = {0,0,0};", arrCType(r.Elem), n)
		} else {
			w("    %s %s;", scalarCType(r.Kind()), n)
		}
	}
	// Call.
	var callArgs []string
	for i, p := range f.Params {
		n := "a_" + names[p]
		if p.IsArray {
			callArgs = append(callArgs, "&"+n)
		} else if isResultSym(f, p) {
			callArgs = append(callArgs, "&"+n)
		} else {
			callArgs = append(callArgs, n)
			_ = i
		}
	}
	for _, r := range f.Results {
		if isParam(r) {
			continue
		}
		callArgs = append(callArgs, "&r_"+fmt.Sprintf("%s_%d", sanitize(r.Name), r.ID))
	}
	w("    %s(%s);", sanitize(f.Name), strings.Join(callArgs, ", "))

	// Print results.
	for _, r := range f.Results {
		var n string
		if isParam(r) {
			n = "a_" + names[r]
		} else {
			n = "r_" + fmt.Sprintf("%s_%d", sanitize(r.Name), r.ID)
		}
		if r.IsArray {
			w("    { long i; printf(\"dims %%ld %%ld\\n\", %s.rows, %s.cols);", n, n)
			if r.Elem == ir.Complex {
				w("      for (i = 0; i < %s.rows * %s.cols; i++) printf(\"%%.17g %%.17g\\n\", %s.data[i].re, %s.data[i].im); }", n, n, n, n)
			} else {
				w("      for (i = 0; i < %s.rows * %s.cols; i++) printf(\"%%.17g\\n\", %s.data[i]); }", n, n, n)
			}
		} else {
			switch r.Elem {
			case ir.Int:
				w("    printf(\"%%ld\\n\", %s);", n)
			case ir.Float:
				w("    printf(\"%%.17g\\n\", %s);", n)
			default:
				w("    printf(\"%%.17g %%.17g\\n\", %s.re, %s.im);", n, n)
			}
		}
	}
	w("    return 0;")
	w("}")
	return b.String()
}

func isResultSym(f *ir.Func, s *ir.Sym) bool {
	for _, r := range f.Results {
		if r == s {
			return true
		}
	}
	return false
}

// runC compiles and runs the generated C, returning stdout lines.
func runC(t *testing.T, header, fn, main string) []string {
	t.Helper()
	dir := t.TempDir()
	must := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	must("asip_intrinsics.h", header)
	must("func.c", fn)
	must("main.c", main)
	bin := filepath.Join(dir, "prog")
	cmd := exec.Command("gcc", "-O1", "-Wall", "-Wno-unused", "-o", bin, filepath.Join(dir, "main.c"), "-lm")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("gcc failed: %v\n%s\n--- func.c ---\n%s", err, out, fn)
	}
	run := exec.Command(bin)
	rout, err := run.Output()
	if err != nil {
		t.Fatalf("compiled program failed: %v", err)
	}
	var lines []string
	for _, l := range strings.Split(strings.TrimSpace(string(rout)), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	return lines
}

// parseCResults parses the printed output back into Go values matching
// the result declarations.
func parseCResults(t *testing.T, f *ir.Func, lines []string) []interface{} {
	t.Helper()
	var out []interface{}
	pos := 0
	nextLine := func() string {
		if pos >= len(lines) {
			t.Fatalf("ran out of output lines at %d", pos)
		}
		l := lines[pos]
		pos++
		return l
	}
	for _, r := range f.Results {
		if r.IsArray {
			var rows, cols int
			if _, err := fmt.Sscanf(nextLine(), "dims %d %d", &rows, &cols); err != nil {
				t.Fatal(err)
			}
			if r.Elem == ir.Complex {
				arr := ir.NewComplexArray(rows, cols)
				for i := 0; i < rows*cols; i++ {
					var re, im float64
					if _, err := fmt.Sscanf(nextLine(), "%g %g", &re, &im); err != nil {
						t.Fatal(err)
					}
					arr.C[i] = complex(re, im)
				}
				out = append(out, arr)
			} else {
				arr := ir.NewFloatArray(rows, cols)
				for i := 0; i < rows*cols; i++ {
					v, err := strconv.ParseFloat(nextLine(), 64)
					if err != nil {
						t.Fatal(err)
					}
					arr.F[i] = v
				}
				out = append(out, arr)
			}
			continue
		}
		switch r.Elem {
		case ir.Int:
			v, err := strconv.ParseInt(nextLine(), 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
		case ir.Float:
			v, err := strconv.ParseFloat(nextLine(), 64)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
		default:
			var re, im float64
			if _, err := fmt.Sscanf(nextLine(), "%g %g", &re, &im); err != nil {
				t.Fatal(err)
			}
			out = append(out, complex(re, im))
		}
	}
	return out
}

func nearlyEq(a, b interface{}) bool {
	const tol = 1e-9
	switch x := a.(type) {
	case float64:
		y := b.(float64)
		return math.Abs(x-y) <= tol*(1+math.Abs(x))
	case int64:
		return x == b.(int64)
	case complex128:
		y := b.(complex128)
		d := x - y
		return math.Hypot(real(d), imag(d)) <= tol*(1+math.Hypot(real(x), imag(x)))
	case *ir.Array:
		y := b.(*ir.Array)
		if x.Rows != y.Rows || x.Cols != y.Cols {
			return false
		}
		for i := 0; i < x.Len(); i++ {
			d := x.At(i) - y.At(i)
			if math.Hypot(real(d), imag(d)) > tol {
				return false
			}
		}
		return true
	}
	return false
}

func cloneArgs(args []interface{}) []interface{} {
	out := make([]interface{}, len(args))
	for i, a := range args {
		if arr, ok := a.(*ir.Array); ok {
			out[i] = arr.Clone()
		} else {
			out[i] = a
		}
	}
	return out
}

// TestGeneratedCMatchesVM compiles kernels to C, builds them with gcc,
// runs them, and compares every result against the VM — the strongest
// validation that the generated ANSI C "can be used as input to any
// C/C++ compiler" and computes the same function.
func TestGeneratedCMatchesVM(t *testing.T) {
	requireGCC(t)
	r := rand.New(rand.NewSource(77))
	randArr := func(n int) *ir.Array {
		a := ir.NewFloatArray(1, n)
		for i := range a.F {
			a.F[i] = math.Round(r.NormFloat64()*1e6) / 1e6
		}
		return a
	}
	randCArr := func(n int) *ir.Array {
		a := ir.NewComplexArray(1, n)
		for i := range a.C {
			a.C[i] = complex(math.Round(r.NormFloat64()*1e6)/1e6, math.Round(r.NormFloat64()*1e6)/1e6)
		}
		return a
	}

	kernels := []struct {
		name   string
		src    string
		params []sema.Type
		args   []interface{}
	}{
		{
			name: "fir",
			src: `function y = f(x, h)
n = length(x);
t = length(h);
y = zeros(1, n);
for i = t:n
    acc = 0;
    for k = 1:t
        acc = acc + h(k) * x(i - k + 1);
    end
    y(i) = acc;
end
end`,
			params: []sema.Type{dynVec(), dynVec()},
			args:   []interface{}{randArr(29), randArr(5)},
		},
		{
			name: "cdot",
			src: `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`,
			params: []sema.Type{dynCVec(), dynCVec()},
			args:   []interface{}{randCArr(23), randCArr(23)},
		},
		{
			name: "stats",
			src: `function [m, s] = f(x)
n = length(x);
m = sum(x) / n;
s = 0;
for i = 1:n
    s = s + (x(i) - m)^2;
end
s = sqrt(s / n);
end`,
			params: []sema.Type{dynVec()},
			args:   []interface{}{randArr(31)},
		},
		{
			name: "inout",
			src: `function x = f(x)
for i = 1:length(x)
    x(i) = x(i) * 2 + 1;
end
end`,
			params: []sema.Type{dynVec()},
			args:   []interface{}{randArr(13)},
		},
		{
			name: "control",
			src: `function s = f(x)
s = 0;
for i = 1:length(x)
    if mod(i, 2) == 0
        s = s + x(i);
    else
        s = s - x(i) / 2;
    end
end
end`,
			params: []sema.Type{dynVec()},
			args:   []interface{}{randArr(17)},
		},
		{
			name: "twiddle",
			src: `function w = f(n)
w = zeros(1, n);
for k = 1:n
    w(k) = exp(-2i * pi * (k - 1) / n);
end
end`,
			params: []sema.Type{sema.IntScalar},
			args:   []interface{}{int64(12)},
		},
		{
			name: "mathmix",
			src: `function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = atan2(sin(x(i)), cos(x(i))) + tanh(x(i)) - log10(abs(x(i)) + 1) + asin(x(i) / 10);
end
end`,
			params: []sema.Type{dynVec()},
			args:   []interface{}{randArr(11)},
		},
		{
			name: "maskselect",
			src: `function [y, n] = f(x)
y = x(x > 0);
n = nnz(x);
end`,
			params: []sema.Type{dynVec()},
			args:   []interface{}{randArr(15)},
		},
		{
			name: "clip",
			src: `function [y, s] = f(x, lim)
n = length(x);
y = zeros(1, n);
s = 0;
for i = 1:n
    y(i) = x(i);
    if x(i) > lim
        y(i) = lim;
    end
    if x(i) > 0
        s = s + x(i);
    end
end
end`,
			params: []sema.Type{dynVec(), sema.RealScalar},
			args:   []interface{}{randArr(21), 0.75},
		},
		{
			name: "switcher",
			src: `function s = f(x)
s = 0;
for i = 1:length(x)
    switch sign(x(i))
    case 1
        s = s + x(i);
    case -1
        s = s - x(i);
    otherwise
        s = s + 100;
    end
end
end`,
			params: []sema.Type{dynVec()},
			args:   []interface{}{randArr(9)},
		},
	}

	for _, k := range kernels {
		for _, proc := range []string{"scalar", "dspasip"} {
			f, p := buildIR(t, k.src, proc, true, k.params...)
			prog, err := vm.Lower(f)
			if err != nil {
				t.Fatalf("%s/%s: vm lower: %v", k.name, proc, err)
			}
			m := vm.NewMachine(p)
			want, err := m.Run(prog, cloneArgs(k.args)...)
			if err != nil {
				t.Fatalf("%s/%s: vm run: %v", k.name, proc, err)
			}

			csrc, err := Function(f, p)
			if err != nil {
				t.Fatalf("%s/%s: cgen: %v", k.name, proc, err)
			}
			mainSrc := buildMain(t, f, k.args)
			lines := runC(t, Header(p), csrc, mainSrc)
			got := parseCResults(t, f, lines)

			if len(got) != len(want) {
				t.Fatalf("%s/%s: result count %d vs %d", k.name, proc, len(got), len(want))
			}
			for i := range want {
				if !nearlyEq(want[i], got[i]) {
					t.Errorf("%s/%s: result %d: vm=%v C=%v", k.name, proc, i, want[i], got[i])
				}
			}
		}
	}
}

func TestGeneratedHeaderCompilesStandalone(t *testing.T) {
	requireGCC(t)
	for _, name := range pdesc.BuiltinNames() {
		dir := t.TempDir()
		h := Header(pdesc.Builtin(name))
		if err := os.WriteFile(filepath.Join(dir, "asip_intrinsics.h"), []byte(h), 0o644); err != nil {
			t.Fatal(err)
		}
		mainSrc := "#include \"asip_intrinsics.h\"\nint main(void) { return 0; }\n"
		if err := os.WriteFile(filepath.Join(dir, "m.c"), []byte(mainSrc), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command("gcc", "-std=c89", "-Wall", "-Wno-unused", "-c",
			"-o", filepath.Join(dir, "m.o"), filepath.Join(dir, "m.c"))
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("%s header does not compile as C89: %v\n%s", name, err, out)
		}
	}
}

// TestGeneratedCStridedLoads validates the strided-load intrinsic path
// (decimation/reversal) through gcc against the VM.
func TestGeneratedCStridedLoads(t *testing.T) {
	requireGCC(t)
	src := `function [y, z] = f(x, m)
y = zeros(1, m);
for i = 1:m
    y(i) = x(2 * i);
end
n = length(x);
z = zeros(1, n);
for i = 1:n
    z(i) = x(n - i + 1);
end
end`
	r := rand.New(rand.NewSource(55))
	x := ir.NewFloatArray(1, 26)
	for i := range x.F {
		x.F[i] = math.Round(r.NormFloat64()*1e6) / 1e6
	}
	args := []interface{}{x, int64(13)}
	params := []sema.Type{dynVec(), sema.IntScalar}

	f, p := buildIR(t, src, "dspasip", true, params...)
	prog, err := vm.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.NewMachine(p)
	want, err := m.Run(prog, cloneArgs(args)...)
	if err != nil {
		t.Fatal(err)
	}
	if m.ClassCounts["vlds"] == 0 {
		t.Errorf("expected strided loads to execute: %v", m.ClassCounts)
	}
	csrc, err := Function(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csrc, "_asip_vlds4(") {
		t.Errorf("generated C missing strided-load intrinsic:\n%s", csrc)
	}
	lines := runC(t, Header(p), csrc, buildMain(t, f, args))
	got := parseCResults(t, f, lines)
	for i := range want {
		if !nearlyEq(want[i], got[i]) {
			t.Errorf("result %d: vm=%v C=%v", i, want[i], got[i])
		}
	}
}
