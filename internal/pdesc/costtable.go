package pdesc

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
)

// CostTable is a dense-integer view of a processor's cycle-cost model:
// every cost class the VM can charge (the architectural classes of
// defaultCosts plus the target's custom-instruction names) gets a small
// stable ID, so per-instruction accounting becomes an array add instead
// of a string-keyed map operation on the execution hot path.
//
// IDs are assigned in sorted-name order and are therefore deterministic
// for a given processor, but they are NOT stable across processors: a
// table is only meaningful together with the processor it was built
// from. Custom-instruction names that shadow an architectural class
// (e.g. a "cmul" instruction) share that class's ID — matching the VM's
// accounting, where both charge sites tally into one class counter.
type CostTable struct {
	names []string
	ids   map[string]int
	costs []int64 // architectural per-charge cost (Processor.Cost)
}

// NewCostTable builds the dense cost table for p. The table is
// immutable and safe for concurrent use; p must not be mutated
// afterwards (the usual read-only contract for shared descriptions).
func NewCostTable(p *Processor) *CostTable {
	set := make(map[string]bool, len(defaultCosts)+len(p.Instructions))
	for k := range defaultCosts {
		set[k] = true
	}
	for i := range p.Instructions {
		set[p.Instructions[i].Name] = true
	}
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	t := &CostTable{
		names: names,
		ids:   make(map[string]int, len(names)),
		costs: make([]int64, len(names)),
	}
	for id, name := range names {
		t.ids[name] = id
		t.costs[id] = int64(p.Cost(name))
	}
	return t
}

// ID returns the dense class ID for name. Every class the VM charges
// for this processor is present; ok is false only for names outside
// both the architectural table and the instruction list.
func (t *CostTable) ID(name string) (int, bool) {
	id, ok := t.ids[name]
	return id, ok
}

// Name returns the class name for a dense ID.
func (t *CostTable) Name(id int) string { return t.names[id] }

// Cost returns the architectural per-charge cycle cost of a class ID
// (custom-instruction issue costs are resolved separately via Instr,
// since an instruction may shadow an architectural class name).
func (t *CostTable) Cost(id int) int64 { return t.costs[id] }

// Len returns the number of classes (IDs are 0..Len-1).
func (t *CostTable) Len() int { return len(t.names) }

// ContentHash returns a hex SHA-256 digest over everything that
// determines compilation and simulation for this target (the full
// serialized description). Two descriptions with equal hashes are
// interchangeable; the VM's prepared-program cache uses this to share
// pre-decoded programs across identical DSE variants.
func (p *Processor) ContentHash() (string, error) {
	data, err := p.MarshalJSONIndent()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
