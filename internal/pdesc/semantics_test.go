package pdesc

import (
	"path/filepath"
	"strings"
	"testing"
)

// A cost class that exists in neither the defaults nor the processor's
// overrides must be rejected at validation time: before this check the
// VM would quietly charge the 1-cycle fallback for a class nobody
// declared, making a typo in a procs JSON look like a fast instruction.
func TestValidateRejectsDanglingCostClass(t *testing.T) {
	p := &Processor{Name: "x", SIMDWidth: 1, Instructions: []Instr{
		{Name: "isx0", CName: "_a_isx0", Cycles: 0,
			Semantics: "float:add(p0,p1)", CostClass: "nosuchclass"},
	}}
	err := p.Validate()
	if err == nil {
		t.Fatal("dangling cost class accepted")
	}
	if !strings.Contains(err.Error(), `"nosuchclass"`) || !strings.Contains(err.Error(), "cost model") {
		t.Errorf("error %q does not name the dangling class", err)
	}
}

// Regression: the same defect arriving through a procs JSON file must
// fail at Load, identifying the file.
func TestLoadRejectsBrokenCostClassJSON(t *testing.T) {
	path := filepath.Join("testdata", "badcostclass.json")
	_, err := Load(path)
	if err == nil {
		t.Fatalf("%s: broken description loaded", path)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error %q does not name the offending file", err)
	}
	if !strings.Contains(err.Error(), `"fused_mac"`) {
		t.Errorf("error %q does not name the dangling cost class", err)
	}
}

func TestValidateCostClassResolution(t *testing.T) {
	// A default class is fine, an override-declared class is fine, and
	// Cycles may then legitimately be zero (the class carries the cost).
	ok := []Processor{
		{Name: "d", SIMDWidth: 1, Instructions: []Instr{
			{Name: "isx0", CName: "_a0", Semantics: "float:add(p0,p1)", CostClass: "fadd"}}},
		{Name: "o", SIMDWidth: 1, Costs: map[string]int{"fmul": 3}, Instructions: []Instr{
			{Name: "isx0", CName: "_a0", Semantics: "float:mul(p0,p1)", CostClass: "fmul"}}},
	}
	for _, p := range ok {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	// Without a cost class, zero cycles stays invalid.
	bad := Processor{Name: "z", SIMDWidth: 1, Instructions: []Instr{
		{Name: "isx0", CName: "_a0", Cycles: 0, Semantics: "float:add(p0,p1)"}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "cycle cost") {
		t.Errorf("zero cycles without a cost class: %v", err)
	}
	neg := &Processor{Name: "n", SIMDWidth: 1, Instructions: []Instr{
		{Name: "isx0", CName: "_a0", Cycles: -1, Semantics: "float:add(p0,p1)", CostClass: "fadd"}}}
	if err := neg.Validate(); err == nil {
		t.Error("negative cycles with a cost class accepted")
	}
}

func TestValidateRejectsBadSemantics(t *testing.T) {
	p := &Processor{Name: "x", SIMDWidth: 1, Instructions: []Instr{
		{Name: "isx0", CName: "_a_isx0", Cycles: 1, Semantics: "float:div(p0,p1)"},
	}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "div") {
		t.Errorf("bad semantics: %v", err)
	}
}

func TestIssueCost(t *testing.T) {
	p := &Processor{Name: "x", SIMDWidth: 1,
		Costs: map[string]int{"fmul": 5},
		Instructions: []Instr{
			{Name: "plain", CName: "_a_plain", Cycles: 7},
			{Name: "classy", CName: "_a_classy", Semantics: "float:mul(p0,p1)", CostClass: "fmul"},
		}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.IssueCost(p.Instr("plain")); got != 7 {
		t.Errorf("plain IssueCost = %d, want 7", got)
	}
	if got := p.IssueCost(p.Instr("classy")); got != 5 {
		t.Errorf("classy IssueCost = %d, want override 5", got)
	}
}

func TestSemanticsRoundTripAndOmitted(t *testing.T) {
	p := &Processor{Name: "x", SIMDWidth: 1, Instructions: []Instr{
		{Name: "isx0", CName: "_a_isx0", Cycles: 2, Semantics: "float:add(p0,mul(p1,p2))"},
	}}
	data, err := p.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Instr("isx0").Semantics != p.Instructions[0].Semantics {
		t.Error("semantics did not round-trip")
	}
	// The new fields must not appear in descriptions that do not use
	// them, so ContentHash of every pre-existing target is unchanged.
	plain, err := Builtin("dspasip").MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"semantics", "cost_class"} {
		if strings.Contains(string(plain), field) {
			t.Errorf("builtin JSON mentions %q for instructions that do not use it", field)
		}
	}
}
