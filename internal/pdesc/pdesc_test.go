package pdesc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"mat2c/procs"
)

func TestBuiltinCatalog(t *testing.T) {
	for _, name := range BuiltinNames() {
		p := Builtin(name)
		if p == nil {
			t.Fatalf("builtin %q missing", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("builtin %q has Name %q", name, p.Name)
		}
	}
	if Builtin("bogus") != nil {
		t.Error("unknown builtin should be nil")
	}
}

func TestDSPASIPShape(t *testing.T) {
	p := Builtin("dspasip")
	if p.SIMDWidth != 4 || p.ComplexLanes != 2 {
		t.Errorf("dspasip lanes %d/%d", p.SIMDWidth, p.ComplexLanes)
	}
	for _, in := range []string{"fma", "cmul", "cmac", "cconjmul", "vfma", "vcmac"} {
		if !p.HasInstr(in) {
			t.Errorf("dspasip missing %s", in)
		}
	}
	if p.Lanes(false) != 4 || p.Lanes(true) != 2 {
		t.Error("Lanes accessor wrong")
	}
}

func TestScalarBaselineHasNothing(t *testing.T) {
	p := Builtin("scalar")
	if p.SIMDWidth != 1 || len(p.Instructions) != 0 {
		t.Error("scalar target must have no SIMD and no custom instructions")
	}
	if p.HasInstr("cmul") {
		t.Error("scalar target should not have cmul")
	}
}

func TestCustomInstructionCostBeatsExpansion(t *testing.T) {
	// The whole premise of the paper: a custom complex multiply must be
	// cheaper than its real-arithmetic expansion on the baseline.
	asip := Builtin("dspasip")
	scalar := Builtin("scalar")
	if asip.Instr("cmul").Cycles >= scalar.Cost("cmul") {
		t.Errorf("asip cmul (%d cycles) not cheaper than expansion (%d)",
			asip.Instr("cmul").Cycles, scalar.Cost("cmul"))
	}
	if asip.Instr("cmac").Cycles >= scalar.Cost("cmul")+scalar.Cost("cadd") {
		t.Error("asip cmac not cheaper than cmul+cadd expansion")
	}
}

func TestCostFallback(t *testing.T) {
	p := Builtin("scalar")
	if p.Cost("fadd") != 1 {
		t.Errorf("fadd = %d", p.Cost("fadd"))
	}
	if p.Cost("nonexistent-class") != 1 {
		t.Error("unknown class should cost 1")
	}
	asip := Builtin("dspasip")
	if asip.Cost("cload") != 2 {
		t.Errorf("asip cload = %d, want override 2", asip.Cost("cload"))
	}
	if Builtin("scalar").Cost("cload") != 4 {
		t.Errorf("scalar cload = %d, want default 4", Builtin("scalar").Cost("cload"))
	}
}

func TestValidateRejectsBadDescriptions(t *testing.T) {
	cases := []struct {
		p    Processor
		want string
	}{
		{Processor{SIMDWidth: 1}, "missing name"},
		{Processor{Name: "x", SIMDWidth: 0}, "simd_width"},
		{Processor{Name: "x", SIMDWidth: 2, ComplexLanes: 3}, "complex_lanes"},
		{Processor{Name: "x", SIMDWidth: 1, Instructions: []Instr{{Name: "fma", CName: "f", Cycles: 0}}}, "cycle cost"},
		{Processor{Name: "x", SIMDWidth: 1, Instructions: []Instr{{Name: "vfma", CName: "f", Cycles: 1}}}, "vector instruction"},
		{Processor{Name: "x", SIMDWidth: 1, Instructions: []Instr{
			{Name: "fma", CName: "f", Cycles: 1}, {Name: "fma", CName: "g", Cycles: 1}}}, "duplicate"},
		{Processor{Name: "x", SIMDWidth: 1, Costs: map[string]int{"bogus": 3}}, "cost class"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate() = %v, want substring %q", err, c.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, name := range BuiltinNames() {
		p := Builtin(name)
		data, err := p.MarshalJSONIndent()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		q, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if q.Name != p.Name || q.SIMDWidth != p.SIMDWidth ||
			q.ComplexLanes != p.ComplexLanes || len(q.Instructions) != len(p.Instructions) {
			t.Errorf("%s: round trip mismatch", name)
		}
		for _, in := range p.Instructions {
			got := q.Instr(in.Name)
			if got == nil || got.CName != in.CName || got.Cycles != in.Cycles {
				t.Errorf("%s: instruction %s did not round-trip", name, in.Name)
			}
		}
		for k, v := range p.Costs {
			if q.Cost(k) != v {
				t.Errorf("%s: cost %s did not round-trip", name, k)
			}
		}
	}
}

// Property: any processor built from a sanitized random skeleton
// round-trips through JSON with costs preserved.
func TestJSONRoundTripProperty(t *testing.T) {
	keys := DefaultCostKeys()
	f := func(width uint8, overrides []uint16) bool {
		w := int(width%8) + 1
		p := &Processor{Name: "rnd", SIMDWidth: w, ComplexLanes: w / 2, Costs: map[string]int{}}
		for i, o := range overrides {
			if i >= len(keys) {
				break
			}
			p.Costs[keys[i]] = int(o%100) + 1
		}
		if err := p.Validate(); err != nil {
			return false
		}
		data, err := p.MarshalJSONIndent()
		if err != nil {
			return false
		}
		q, err := Parse(data)
		if err != nil {
			return false
		}
		for k, v := range p.Costs {
			if q.Cost(k) != v {
				return false
			}
		}
		return q.SIMDWidth == p.SIMDWidth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("expected JSON error")
	}
	if _, err := Parse([]byte(`{"name":"x","simd_width":0}`)); err == nil {
		t.Error("expected validation error")
	}
}

func TestResolve(t *testing.T) {
	if _, err := Resolve("dspasip"); err != nil {
		t.Error(err)
	}
	if _, err := Resolve("/nonexistent/file.json"); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestWidthSweepFamily(t *testing.T) {
	// The sweep targets must differ only in lane count.
	widths := map[string]int{"nosimd": 1, "wide2": 2, "dspasip": 4, "wide8": 8}
	for name, w := range widths {
		p := Builtin(name)
		if p.SIMDWidth != w {
			t.Errorf("%s width = %d, want %d", name, p.SIMDWidth, w)
		}
		if !p.HasInstr("cmac") {
			t.Errorf("%s must keep the complex ISA", name)
		}
	}
}

func TestValidateRejectsDuplicateInstructions(t *testing.T) {
	p := &Processor{Name: "dup", SIMDWidth: 2, Instructions: []Instr{
		{Name: "fma", CName: "_a_fma", Cycles: 1},
		{Name: "fma", CName: "_b_fma", Cycles: 2},
	}}
	err := p.Validate()
	if err == nil {
		t.Fatal("duplicate instruction name accepted")
	}
	if !strings.Contains(err.Error(), `"fma"`) {
		t.Errorf("error %q does not name the duplicate", err)
	}

	p = &Processor{Name: "dupc", SIMDWidth: 2, Instructions: []Instr{
		{Name: "fma", CName: "_asip_op", Cycles: 1},
		{Name: "fms", CName: "_asip_op", Cycles: 1},
	}}
	err = p.Validate()
	if err == nil {
		t.Fatal("duplicate C intrinsic name accepted")
	}
	if !strings.Contains(err.Error(), "_asip_op") {
		t.Errorf("error %q does not name the shared intrinsic", err)
	}
}

func TestLoadErrorsIdentifyFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","simd_width":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(bad)
	if err == nil {
		t.Fatal("invalid description loaded")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error %q does not name the offending file", err)
	}

	_, err = Load(filepath.Join(dir, "missing.json"))
	if err == nil {
		t.Fatal("missing file loaded")
	}
	if !strings.Contains(err.Error(), "missing.json") {
		t.Errorf("error %q does not name the missing file", err)
	}
}

func TestResolveCachesNamedTargets(t *testing.T) {
	a, err := Resolve("wide2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve("wide2")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated Resolve of a named target returned distinct pointers")
	}
	// Builtin stays uncached (fresh copies for callers that derive
	// variants by mutation, e.g. bench.MemVariant).
	if Builtin("wide2") == a {
		t.Error("Builtin returned the shared cached Processor")
	}
}

func TestResolveFindsEmbeddedDescriptions(t *testing.T) {
	// Every shipped description resolves by bare name even though only
	// built-ins are in the programmatic catalog; embedded lookup covers
	// shipped-but-not-builtin descriptions.
	if _, err := procs.FS.ReadFile("dspasip.json"); err != nil {
		t.Skipf("embedded descriptions unavailable: %v", err)
	}
	for _, name := range BuiltinNames() {
		if _, err := procs.FS.ReadFile(name + ".json"); err != nil {
			t.Errorf("shipped description %s.json not embedded: %v", name, err)
		}
	}
	if p := resolveNamed("dspasip"); p == nil {
		t.Error("resolveNamed failed for a catalog target")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Builtin("dspasip")
	q := p.Clone()
	q.Costs["cload"] = 99
	q.Instructions[0].Cycles = 42
	q.SIMDWidth = 16
	if p.Costs["cload"] == 99 {
		t.Error("Clone shares the cost table with the original")
	}
	if p.Instructions[0].Cycles == 42 {
		t.Error("Clone shares the instruction slice with the original")
	}
	if p.SIMDWidth != 4 {
		t.Error("Clone mutation changed the original's SIMD width")
	}
}

func TestDeriveValidatesAndIndexes(t *testing.T) {
	base := Builtin("dspasip")
	v, err := base.Derive("dspasip-w8", func(q *Processor) {
		q.SIMDWidth = 8
		q.ComplexLanes = 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "dspasip-w8" || v.SIMDWidth != 8 {
		t.Errorf("derived variant not applied: %+v", v)
	}
	if !v.HasInstr("cmac") {
		t.Error("derived variant lost its instruction index")
	}
	if base.Name != "dspasip" || base.SIMDWidth != 4 {
		t.Error("Derive mutated the base description")
	}

	// Derive must reject inconsistent variants through Validate.
	if _, err := base.Derive("bad", func(q *Processor) {
		q.SIMDWidth = 1 // vector instructions on a scalar target
	}); err == nil {
		t.Error("Derive accepted vector instructions on a scalar target")
	}
	if _, err := base.Derive("bad2", func(q *Processor) {
		q.Costs["nosuchclass"] = 3
	}); err == nil {
		t.Error("Derive accepted an unknown cost class")
	}
}
