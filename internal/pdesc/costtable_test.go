package pdesc

import "testing"

func TestCostTableCoversArchitecturalClasses(t *testing.T) {
	for _, name := range BuiltinNames() {
		p := Builtin(name)
		tab := NewCostTable(p)
		for class := range defaultCosts {
			id, ok := tab.ID(class)
			if !ok {
				t.Fatalf("%s: class %q missing", name, class)
			}
			if got, want := tab.Cost(id), int64(p.Cost(class)); got != want {
				t.Errorf("%s/%s: table cost %d, Processor.Cost %d", name, class, got, want)
			}
			if tab.Name(id) != class {
				t.Errorf("%s/%s: Name(ID) = %q", name, class, tab.Name(id))
			}
		}
		for i := range p.Instructions {
			if _, ok := tab.ID(p.Instructions[i].Name); !ok {
				t.Errorf("%s: instruction %q missing from table", name, p.Instructions[i].Name)
			}
		}
		if tab.Len() < len(defaultCosts) {
			t.Errorf("%s: table len %d < %d architectural classes", name, tab.Len(), len(defaultCosts))
		}
	}
}

func TestCostTableDeterministicIDs(t *testing.T) {
	p := Builtin("dspasip")
	a, b := NewCostTable(p), NewCostTable(p)
	if a.Len() != b.Len() {
		t.Fatalf("len %d vs %d", a.Len(), b.Len())
	}
	for id := 0; id < a.Len(); id++ {
		if a.Name(id) != b.Name(id) || a.Cost(id) != b.Cost(id) {
			t.Fatalf("id %d: %s/%d vs %s/%d", id, a.Name(id), a.Cost(id), b.Name(id), b.Cost(id))
		}
	}
}

func TestCostTableRespectsOverrides(t *testing.T) {
	p := Builtin("scalar").Clone()
	p.Costs = map[string]int{"fmul": 7}
	tab := NewCostTable(p)
	id, ok := tab.ID("fmul")
	if !ok || tab.Cost(id) != 7 {
		t.Errorf("override not reflected: ok=%v cost=%d", ok, tab.Cost(id))
	}
}

func TestProcessorContentHash(t *testing.T) {
	p := Builtin("dspasip")
	h1, err := p.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := p.Clone().ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("clone must hash identically")
	}
	q := p.Clone()
	q.Costs = map[string]int{"fmul": 9}
	h3, err := q.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("cost override must change the hash")
	}
	if len(h1) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(h1))
	}
}
