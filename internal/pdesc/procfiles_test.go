package pdesc

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedDescriptionsMatchBuiltins keeps procs/*.json (regenerated
// by cmd/procgen) in sync with the built-in catalog.
func TestShippedDescriptionsMatchBuiltins(t *testing.T) {
	dir := filepath.Join("..", "..", "procs")
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("procs directory not present: %v", err)
	}
	for _, name := range BuiltinNames() {
		path := filepath.Join(dir, name+".json")
		loaded, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v (run `go run ./cmd/procgen`)", path, err)
			continue
		}
		want := Builtin(name)
		if loaded.SIMDWidth != want.SIMDWidth || loaded.ComplexLanes != want.ComplexLanes ||
			len(loaded.Instructions) != len(want.Instructions) {
			t.Errorf("%s out of sync with builtin (run `go run ./cmd/procgen`)", path)
			continue
		}
		for _, in := range want.Instructions {
			got := loaded.Instr(in.Name)
			if got == nil || got.CName != in.CName || got.Cycles != in.Cycles {
				t.Errorf("%s: instruction %s out of sync", path, in.Name)
			}
		}
		for k, v := range want.Costs {
			if loaded.Cost(k) != v {
				t.Errorf("%s: cost %s out of sync", path, k)
			}
		}
	}
}
