// Package pdesc implements the parameterized processor description that
// makes the compiler retargetable, mirroring the paper's claim that "the
// specialized instruction set of the target processor [is described] in a
// parameterized way allowing the support of any processor".
//
// A Processor declares the target's SIMD width, its custom instructions
// (each with the C intrinsic name the code generator emits and the cycle
// cost the VM charges), and a per-operation cycle-cost table used by the
// cycle-model simulator. Descriptions are plain JSON so new targets can
// be added without recompiling; the catalog of built-in targets covers
// the paper's DSP ASIP and the sweep/ablation variants the benchmark
// harness needs.
package pdesc

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"mat2c/internal/ir"
	"mat2c/procs"
)

// Instr describes one custom instruction exposed by the target.
type Instr struct {
	// Name is the compiler-internal intrinsic name matched by instruction
	// selection (fma, cmul, cmac, cconjmul, cadd, csub, sad, and their
	// v-prefixed vector forms; mined extensions use isxN/visxN).
	Name string `json:"name"`
	// CName is the intrinsic function name emitted in ANSI C.
	CName string `json:"cname"`
	// Cycles is the issue cost charged by the cycle model (ignored when
	// CostClass is set).
	Cycles int `json:"cycles"`
	// Semantics, when non-empty, is an ir pattern (e.g.
	// "float:add(p0,mul(p1,p2))") defining the instruction's behaviour.
	// It is what lets mined instructions — unknown to the built-in
	// intrinsic catalog — be selected, simulated, and emitted as C.
	Semantics string `json:"semantics,omitempty"`
	// CostClass, when non-empty, defers the issue cost to the named
	// entry of the processor's cost model instead of the literal Cycles,
	// so cost-table sweeps (dse) reprice the instruction automatically.
	CostClass string `json:"cost_class,omitempty"`
}

// Processor is a complete target description.
type Processor struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// SIMDWidth is the number of float lanes a vector register holds.
	// Width 1 disables vectorization.
	SIMDWidth int `json:"simd_width"`
	// ComplexLanes is the number of complex lanes a vector register
	// holds (typically SIMDWidth/2: interleaved real/imag pairs). Zero
	// disables complex vectorization.
	ComplexLanes int `json:"complex_lanes"`

	// Registers is the architectural register count (informational; the
	// cycle model charges spills only through the cost table).
	Registers int `json:"registers,omitempty"`

	// Costs overrides entries of the default cycle-cost table.
	Costs map[string]int `json:"costs,omitempty"`

	// Instructions is the custom instruction list.
	Instructions []Instr `json:"instructions,omitempty"`

	instrByName map[string]*Instr
}

// defaultCosts is the base cycle-cost table for a single-issue load/store
// DSP datapath. Keys are the cost classes charged by the VM. Complex
// operations WITHOUT custom-instruction support are charged as their
// real-arithmetic expansion (e.g. a complex multiply is 4 multiplies and
// 2 adds on the scalar datapath); targets with a complex ISA override the
// cost via the instruction's Cycles.
var defaultCosts = map[string]int{
	"iadd": 1, "isub": 1, "imul": 2, "idiv": 12, "irem": 12,
	"icmp": 1, "imov": 1,
	"fadd": 1, "fsub": 1, "fmul": 2, "fdiv": 12, "frem": 14,
	"fpow": 40, "fsqrt": 14, "ftrig": 24, "fexp": 24, "fabs": 1,
	"fneg": 1, "fcmp": 1, "fmov": 1, "fround": 2, "fsign": 2,
	"conv": 1,
	// Complex arithmetic expanded on a real datapath.
	"cadd": 2, "csub": 2, "cneg": 2,
	"cmul":  10, // 4 fmul + 2 fadd
	"cdiv":  36, // Smith's algorithm
	"cconj": 1, "cabs": 16, "cmov": 2,
	// Memory.
	"load": 2, "store": 2,
	"cload": 4, "cstore": 4, // two-word access without a wide port
	// Vector memory/ops are single-issue per vector instruction.
	"vload": 2, "vstore": 2, "vop": 2, "vreduce": 3, "vsplat": 1,
	// Control.
	"branch": 3, "jump": 1, "call": 4, "ret": 2, "loopover": 1,
	// Allocation bookkeeping (charged once per alloc).
	"alloc": 10,
}

// Cost returns the cycle cost of a cost-class key, consulting the
// processor's overrides and falling back to the architectural defaults.
func (p *Processor) Cost(key string) int {
	if c, ok := p.Costs[key]; ok {
		return c
	}
	if c, ok := defaultCosts[key]; ok {
		return c
	}
	return 1
}

// IssueCost returns the cycles the cycle model charges per issue of the
// given custom instruction: the CostClass entry of the cost model when
// the instruction defers to one, the literal Cycles otherwise.
func (p *Processor) IssueCost(in *Instr) int {
	if in.CostClass != "" {
		return p.Cost(in.CostClass)
	}
	return in.Cycles
}

// HasInstr reports whether the target provides the named custom
// instruction.
func (p *Processor) HasInstr(name string) bool { return p.Instr(name) != nil }

// Instr returns the named custom instruction, or nil.
func (p *Processor) Instr(name string) *Instr {
	if p.instrByName == nil {
		p.index()
	}
	return p.instrByName[name]
}

func (p *Processor) index() {
	p.instrByName = make(map[string]*Instr, len(p.Instructions))
	for i := range p.Instructions {
		p.instrByName[p.Instructions[i].Name] = &p.Instructions[i]
	}
}

// Lanes returns the vector lane count available for the given element
// width: complex values occupy two float lanes.
func (p *Processor) Lanes(isComplex bool) int {
	if isComplex {
		return p.ComplexLanes
	}
	return p.SIMDWidth
}

// Clone returns an independent deep copy of p: mutating the clone's
// cost table or instruction list never aliases the original. The copy
// is not re-indexed or re-validated; callers that mutate it should go
// through Derive (or call Validate themselves).
func (p *Processor) Clone() *Processor {
	q := &Processor{
		Name:         p.Name,
		Description:  p.Description,
		SIMDWidth:    p.SIMDWidth,
		ComplexLanes: p.ComplexLanes,
		Registers:    p.Registers,
	}
	if p.Costs != nil {
		q.Costs = make(map[string]int, len(p.Costs))
		for k, v := range p.Costs {
			q.Costs[k] = v
		}
	}
	if p.Instructions != nil {
		q.Instructions = append([]Instr(nil), p.Instructions...)
	}
	return q
}

// Derive builds a named variant of p for programmatic design-space
// exploration: it deep-copies p, renames the copy, applies mutate, and
// re-validates, so generated variants pass exactly the same consistency
// checks as hand-written descriptions. The receiver is never modified.
func (p *Processor) Derive(name string, mutate func(*Processor)) (*Processor, error) {
	q := p.Clone()
	q.Name = name
	if mutate != nil {
		mutate(q)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q.index()
	return q, nil
}

// Validate checks internal consistency.
func (p *Processor) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("processor description missing name")
	}
	if p.SIMDWidth < 1 {
		return fmt.Errorf("%s: simd_width must be >= 1, got %d", p.Name, p.SIMDWidth)
	}
	if p.ComplexLanes < 0 || p.ComplexLanes > p.SIMDWidth {
		return fmt.Errorf("%s: complex_lanes %d out of range [0, %d]", p.Name, p.ComplexLanes, p.SIMDWidth)
	}
	seen := map[string]bool{}
	seenC := map[string]string{}
	for _, in := range p.Instructions {
		if in.Name == "" || in.CName == "" {
			return fmt.Errorf("%s: instruction with empty name/cname", p.Name)
		}
		if in.CostClass == "" && in.Cycles < 1 {
			return fmt.Errorf("%s: instruction %s has non-positive cycle cost", p.Name, in.Name)
		}
		if in.CostClass != "" {
			if in.Cycles < 0 {
				return fmt.Errorf("%s: instruction %s has negative cycle cost", p.Name, in.Name)
			}
			// Catch a dangling cost class here rather than letting the VM
			// silently charge the 1-cycle fallback for a class nobody
			// declared.
			_, inDefaults := defaultCosts[in.CostClass]
			_, inOverrides := p.Costs[in.CostClass]
			if !inDefaults && !inOverrides {
				return fmt.Errorf("%s: instruction %s uses cost class %q which is absent from the processor's cost model", p.Name, in.Name, in.CostClass)
			}
		}
		if in.Semantics != "" {
			if _, err := ir.CachedPattern(in.Semantics); err != nil {
				return fmt.Errorf("%s: instruction %s: %v", p.Name, in.Name, err)
			}
		}
		if seen[in.Name] {
			return fmt.Errorf("%s: duplicate custom instruction %q (the later entry would silently shadow the earlier one)", p.Name, in.Name)
		}
		seen[in.Name] = true
		if prev, dup := seenC[in.CName]; dup {
			return fmt.Errorf("%s: instructions %q and %q share C intrinsic name %q", p.Name, prev, in.Name, in.CName)
		}
		seenC[in.CName] = in.Name
		if isVectorInstr(in.Name) && p.SIMDWidth < 2 {
			return fmt.Errorf("%s: vector instruction %s on a scalar target", p.Name, in.Name)
		}
	}
	for k := range p.Costs {
		if _, ok := defaultCosts[k]; !ok {
			return fmt.Errorf("%s: unknown cost class %q", p.Name, k)
		}
	}
	return nil
}

func isVectorInstr(name string) bool { return len(name) > 1 && name[0] == 'v' }

// Load reads and validates a processor description from a JSON file.
// Errors identify the offending file.
func Load(path string) (*Processor, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load processor description: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("load processor description %s: %w", path, err)
	}
	return p, nil
}

// Parse decodes and validates a JSON processor description.
func Parse(data []byte) (*Processor, error) {
	var p Processor
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("processor description: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.index()
	return &p, nil
}

// MarshalJSONIndent serializes the description for writing procs/*.json.
func (p *Processor) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ----- Built-in target catalog -----

// scalarInstrs is the custom scalar instruction set of the paper-like
// DSP ASIP: fused MAC plus a complex-arithmetic ISA.
func asipScalarInstrs() []Instr {
	return []Instr{
		{Name: "fma", CName: "_asip_fma", Cycles: 1},
		{Name: "fms", CName: "_asip_fms", Cycles: 1},
		{Name: "cadd", CName: "_asip_cadd", Cycles: 1},
		{Name: "csub", CName: "_asip_csub", Cycles: 1},
		{Name: "cmul", CName: "_asip_cmul", Cycles: 2},
		{Name: "cmac", CName: "_asip_cmac", Cycles: 2},
		{Name: "cconjmul", CName: "_asip_cconjmul", Cycles: 2},
		{Name: "sad", CName: "_asip_sad", Cycles: 2},
	}
}

func asipVectorInstrs(w int) []Instr {
	instrs := []Instr{
		{Name: "vfma", CName: fmt.Sprintf("_asip_vfma%d", w), Cycles: 2},
		{Name: "vfms", CName: fmt.Sprintf("_asip_vfms%d", w), Cycles: 2},
		{Name: "vsad", CName: fmt.Sprintf("_asip_vsad%d", w), Cycles: 2},
		// Strided vector load (decimation/polyphase access patterns).
		{Name: "vlds", CName: fmt.Sprintf("_asip_vlds%d", w), Cycles: 3},
	}
	if w/2 >= 2 {
		instrs = append(instrs,
			Instr{Name: "vclds", CName: fmt.Sprintf("_asip_vclds%d", w/2), Cycles: 3})
	}
	// Complex vector forms only exist when at least two complex lanes
	// fit in a vector register.
	if w/2 >= 2 {
		instrs = append(instrs,
			Instr{Name: "vcadd", CName: fmt.Sprintf("_asip_vcadd%d", w/2), Cycles: 1},
			Instr{Name: "vcsub", CName: fmt.Sprintf("_asip_vcsub%d", w/2), Cycles: 1},
			Instr{Name: "vcmul", CName: fmt.Sprintf("_asip_vcmul%d", w/2), Cycles: 2},
			Instr{Name: "vcmac", CName: fmt.Sprintf("_asip_vcmac%d", w/2), Cycles: 2},
			Instr{Name: "vcconjmul", CName: fmt.Sprintf("_asip_vcconjmul%d", w/2), Cycles: 2},
		)
	}
	return instrs
}

// asipCosts models the ASIP's wide memory port: complex and vector
// accesses are single-cycle-class accesses rather than split words.
func asipCosts() map[string]int {
	return map[string]int{
		"cload": 2, "cstore": 2,
		"vload": 2, "vstore": 2,
	}
}

// Builtin returns the named built-in target, or nil.
//
//	scalar    — plain RISC datapath, no SIMD, no custom instructions
//	          (the MATLAB-Coder-baseline execution target)
//	dspasip   — the paper-like DSP ASIP: 4 float lanes, 2 complex lanes,
//	          MAC + complex ISA (scalar and vector forms)
//	wide2     — dspasip variant with 2 float lanes (width sweep)
//	wide8     — dspasip variant with 8 float lanes (width sweep)
//	nocomplex — 4-lane SIMD but no complex ISA (ablation)
//	nosimd    — complex ISA but no SIMD (ablation)
func Builtin(name string) *Processor {
	var p *Processor
	switch name {
	case "scalar":
		p = &Processor{
			Name:        "scalar",
			Description: "single-issue RISC datapath without SIMD or custom instructions",
			SIMDWidth:   1, ComplexLanes: 0, Registers: 32,
		}
	case "dspasip":
		p = &Processor{
			Name:        "dspasip",
			Description: "DSP ASIP with 4-lane SIMD, fused MAC and complex-arithmetic ISA",
			SIMDWidth:   4, ComplexLanes: 2, Registers: 64,
			Costs:        asipCosts(),
			Instructions: append(asipScalarInstrs(), asipVectorInstrs(4)...),
		}
	case "wide2":
		p = &Processor{
			Name:        "wide2",
			Description: "dspasip variant with 2-lane SIMD (width sweep)",
			SIMDWidth:   2, ComplexLanes: 1, Registers: 64,
			Costs:        asipCosts(),
			Instructions: append(asipScalarInstrs(), asipVectorInstrs(2)...),
		}
	case "wide8":
		p = &Processor{
			Name:        "wide8",
			Description: "dspasip variant with 8-lane SIMD (width sweep)",
			SIMDWidth:   8, ComplexLanes: 4, Registers: 64,
			Costs:        asipCosts(),
			Instructions: append(asipScalarInstrs(), asipVectorInstrs(8)...),
		}
	case "nocomplex":
		p = &Processor{
			Name:        "nocomplex",
			Description: "4-lane SIMD with fused MAC but no complex-arithmetic ISA (ablation)",
			SIMDWidth:   4, ComplexLanes: 2, Registers: 64,
			Instructions: []Instr{
				{Name: "fma", CName: "_asip_fma", Cycles: 1},
				{Name: "fms", CName: "_asip_fms", Cycles: 1},
				{Name: "vfma", CName: "_asip_vfma4", Cycles: 2},
				{Name: "vfms", CName: "_asip_vfms4", Cycles: 2},
				{Name: "sad", CName: "_asip_sad", Cycles: 2},
				{Name: "vsad", CName: "_asip_vsad4", Cycles: 2},
			},
		}
	case "nosimd":
		p = &Processor{
			Name:        "nosimd",
			Description: "complex-arithmetic ISA without SIMD (ablation)",
			SIMDWidth:   1, ComplexLanes: 0, Registers: 32,
			Costs:        map[string]int{"cload": 2, "cstore": 2},
			Instructions: asipScalarInstrs(),
		}
	default:
		return nil
	}
	p.index()
	return p
}

// BuiltinNames lists the built-in target names in stable order.
func BuiltinNames() []string {
	names := []string{"scalar", "dspasip", "wide2", "wide8", "nocomplex", "nosimd"}
	sort.Strings(names)
	return names
}

// resolved caches named targets (built-ins and embedded descriptions)
// so concurrent compiles neither re-parse JSON nor re-read anything,
// and all see one immutable *Processor per name. Explicit file paths
// stay uncached: user-defined descriptions may change on disk between
// calls.
var resolved = struct {
	sync.RWMutex
	m map[string]*Processor
}{m: map[string]*Processor{}}

// Resolve returns the target named s: a built-in, an embedded shipped
// description (procs/<s>.json compiled into the binary), or — when no
// name matches — a JSON description loaded from s as a file path.
//
// Named lookups are cached behind a sync.RWMutex and return a shared
// *Processor; callers must treat it as read-only (clone it, as
// bench.MemVariant does, to derive variants).
func Resolve(s string) (*Processor, error) {
	resolved.RLock()
	p := resolved.m[s]
	resolved.RUnlock()
	if p != nil {
		return p, nil
	}
	if p := resolveNamed(s); p != nil {
		resolved.Lock()
		// Keep the first published copy if another goroutine raced us
		// here, so every caller observes the same pointer.
		if prev := resolved.m[s]; prev != nil {
			p = prev
		} else {
			resolved.m[s] = p
		}
		resolved.Unlock()
		return p, nil
	}
	p, err := Load(s)
	if err != nil {
		return nil, fmt.Errorf("no built-in or embedded processor %q and cannot load as file: %w", s, err)
	}
	return p, nil
}

// resolveNamed resolves s against the built-in catalog, then the
// embedded shipped descriptions. Returns nil when s is not a known
// target name.
func resolveNamed(s string) *Processor {
	if p := Builtin(s); p != nil {
		return p
	}
	data, err := procs.FS.ReadFile(s + ".json")
	if err != nil {
		return nil
	}
	p, err := Parse(data)
	if err != nil {
		// An embedded description that fails validation is a build
		// defect; fall through to path loading, which will report a
		// coherent error.
		return nil
	}
	return p
}

// DefaultCostKeys returns the known cost-class keys (for docs/tests).
func DefaultCostKeys() []string {
	keys := make([]string, 0, len(defaultCosts))
	for k := range defaultCosts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
