package profile

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start(\"\", \"\"): %v", err)
	}
	stop() // must not panic or write anything
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	s := 0
	for i := 0; i < 1_000_000; i++ {
		s += i
	}
	_ = s
	stop()
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}
