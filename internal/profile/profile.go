// Package profile wires runtime/pprof behind two file-path options so
// every command can grow -cpuprofile/-memprofile flags without
// repeating the boilerplate.
package profile

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges a
// heap profile to memPath (if non-empty). The returned stop function
// must be called once, on the program's main path (not via os.Exit
// shortcuts), to flush both profiles; it reports any write failure to
// stderr. With both paths empty, Start is a no-op.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profile: close cpu profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profile: mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profile: write mem profile:", err)
			}
		}
	}, nil
}
