package core

// Structured differential fuzzing: generate random (but well-typed)
// MATLAB kernels, compile them under the baseline and the full proposed
// pipeline, execute both on the cycle-model VM plus the unoptimized IR
// on the reference evaluator, and require identical results. This
// hammers the interactions between fusion, the optimization pipeline,
// if-conversion, vectorization and instruction selection.

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/lower"
	"mat2c/internal/mlang"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
	"mat2c/internal/vm"
)

// exprGen emits random scalar expressions over the loop element
// context: x(i), g(i), a, i and literals.
type exprGen struct {
	r *rand.Rand
}

func (g *exprGen) scalar(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(5) {
		case 0:
			return "x(i)"
		case 1:
			return "g(i)"
		case 2:
			return "a"
		case 3:
			return fmt.Sprintf("%d", g.r.Intn(7)-3)
		default:
			return fmt.Sprintf("%.2f", g.r.Float64()*4-2)
		}
	}
	switch g.r.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.scalar(depth-1), g.scalar(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.scalar(depth-1), g.scalar(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.scalar(depth-1), g.scalar(depth-1))
	case 3:
		return fmt.Sprintf("min(%s, %s)", g.scalar(depth-1), g.scalar(depth-1))
	case 4:
		return fmt.Sprintf("max(%s, %s)", g.scalar(depth-1), g.scalar(depth-1))
	case 5:
		fns := []string{"abs", "cos", "sin", "tanh", "sign", "floor"}
		return fmt.Sprintf("%s(%s)", fns[g.r.Intn(len(fns))], g.scalar(depth-1))
	default:
		return fmt.Sprintf("(%s * %s + %s)", g.scalar(depth-1), g.scalar(depth-1), g.scalar(depth-1))
	}
}

// vecExpr emits a whole-array expression over x, g, a.
func (g *exprGen) vecExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return "x"
		}
		return "g"
	}
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.vecExpr(depth-1), g.vecExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s .* %s)", g.vecExpr(depth-1), g.vecExpr(depth-1))
	case 2:
		return fmt.Sprintf("(a .* %s)", g.vecExpr(depth-1))
	case 3:
		return fmt.Sprintf("(%s - %s)", g.vecExpr(depth-1), g.vecExpr(depth-1))
	case 4:
		return fmt.Sprintf("abs(%s)", g.vecExpr(depth-1))
	default:
		return fmt.Sprintf("(%s + 1)", g.vecExpr(depth-1))
	}
}

func (g *exprGen) cmp() string {
	ops := []string{">", "<", ">=", "<="}
	return fmt.Sprintf("%s %s %s", g.scalar(1), ops[g.r.Intn(len(ops))], g.scalar(1))
}

// genKernel builds a random function  function [y, s] = k(x, g, a).
func genKernel(r *rand.Rand) string {
	g := &exprGen{r: r}
	var b strings.Builder
	b.WriteString("function [y, s] = k(x, g, a)\n")
	b.WriteString("n = length(x);\n")
	b.WriteString("y = zeros(1, n);\n")
	b.WriteString("s = 0;\n")

	nstmt := 1 + r.Intn(3)
	for si := 0; si < nstmt; si++ {
		switch r.Intn(5) {
		case 0:
			// Elementwise loop, possibly with a conditional update.
			b.WriteString("for i = 1:n\n")
			fmt.Fprintf(&b, "    y(i) = %s;\n", g.scalar(3))
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "    if %s\n        y(i) = %s;\n    end\n", g.cmp(), g.scalar(2))
			}
			b.WriteString("end\n")
		case 1:
			// Reduction loop, possibly conditional.
			b.WriteString("for i = 1:n\n")
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "    if %s\n        s = s + %s;\n    end\n", g.cmp(), g.scalar(2))
			} else {
				fmt.Fprintf(&b, "    s = s + %s;\n", g.scalar(2))
			}
			b.WriteString("end\n")
		case 2:
			// Whole-array fused assignment.
			fmt.Fprintf(&b, "y = %s;\n", g.vecExpr(3))
		case 3:
			// Slice accumulation (in-place update path).
			fmt.Fprintf(&b, "y(2:end) = y(2:end) + %s(2:end);\n",
				[]string{"x", "g"}[r.Intn(2)])
		default:
			// Builtin reduction into the scalar output.
			red := []string{"sum", "max", "min", "mean"}[r.Intn(4)]
			fmt.Fprintf(&b, "s = s + %s(%s);\n", red, g.vecExpr(2))
		}
	}
	b.WriteString("end\n")
	return b.String()
}

func fuzzParams() []sema.Type {
	dyn := sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
	return []sema.Type{dyn, dyn, sema.RealScalar}
}

func fuzzArgs(r *rand.Rand, n int) []interface{} {
	x := ir.NewFloatArray(1, n)
	g := ir.NewFloatArray(1, n)
	for i := 0; i < n; i++ {
		// Round values so results are exactly representable where
		// possible; the comparison still uses a relative tolerance.
		x.F[i] = math.Round(r.NormFloat64()*8) / 4
		g.F[i] = math.Round(r.NormFloat64()*8) / 4
	}
	return []interface{}{x, g, math.Round(r.NormFloat64()*8) / 4}
}

func cloneFuzzArgs(args []interface{}) []interface{} {
	out := make([]interface{}, len(args))
	for i, a := range args {
		if arr, ok := a.(*ir.Array); ok {
			out[i] = arr.Clone()
		} else {
			out[i] = a
		}
	}
	return out
}

func fuzzEq(a, b interface{}) bool {
	const tol = 1e-9
	switch x := a.(type) {
	case float64:
		y := b.(float64)
		return math.Abs(x-y) <= tol*(1+math.Abs(x)) || math.IsNaN(x) && math.IsNaN(y)
	case int64:
		return x == b.(int64)
	case complex128:
		y, ok := b.(complex128)
		if !ok {
			return false
		}
		return cmplx.Abs(x-y) <= tol*(1+cmplx.Abs(x)) ||
			cmplx.IsNaN(x) && cmplx.IsNaN(y)
	case *ir.Array:
		y := b.(*ir.Array)
		if x.Rows != y.Rows || x.Cols != y.Cols {
			return false
		}
		for i := 0; i < x.Len(); i++ {
			xv, yv := x.At(i), y.At(i)
			if !(cmplx.Abs(xv-yv) <= tol*(1+cmplx.Abs(xv)) ||
				cmplx.IsNaN(xv) && cmplx.IsNaN(yv)) {
				return false
			}
		}
		return true
	}
	return false
}

// cscalar emits random complex scalar expressions over the loop
// element context: z(i), w(i), c and complex literals. Conjugated
// products are generated explicitly — they are the pattern the
// complex ISA's conj-multiply instruction selects on.
func (g *exprGen) cscalar(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return "z(i)"
		case 1:
			return "w(i)"
		case 2:
			return "c"
		default:
			return fmt.Sprintf("(%.2f%+.2fi)", float64(g.r.Intn(9)-4)/2, float64(g.r.Intn(9)-4)/2)
		}
	}
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.cscalar(depth-1), g.cscalar(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.cscalar(depth-1), g.cscalar(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.cscalar(depth-1), g.cscalar(depth-1))
	case 3:
		return fmt.Sprintf("conj(%s)", g.cscalar(depth-1))
	default:
		return fmt.Sprintf("(conj(%s) * %s)", g.cscalar(depth-1), g.cscalar(depth-1))
	}
}

// crealScalar emits a real-valued scalar expression derived from
// complex operands (the real/imag/abs projection paths).
func (g *exprGen) crealScalar(depth int) string {
	fns := []string{"real", "imag", "abs"}
	return fmt.Sprintf("%s(%s)", fns[g.r.Intn(len(fns))], g.cscalar(depth))
}

// cvecExpr emits a whole-array complex expression over z, w, c.
func (g *exprGen) cvecExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return "z"
		}
		return "w"
	}
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.cvecExpr(depth-1), g.cvecExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s .* %s)", g.cvecExpr(depth-1), g.cvecExpr(depth-1))
	case 2:
		return fmt.Sprintf("(c .* %s)", g.cvecExpr(depth-1))
	case 3:
		return fmt.Sprintf("conj(%s)", g.cvecExpr(depth-1))
	case 4:
		return fmt.Sprintf("(conj(%s) .* %s)", g.cvecExpr(depth-1), g.cvecExpr(depth-1))
	default:
		return fmt.Sprintf("(%s - %s)", g.cvecExpr(depth-1), g.cvecExpr(depth-1))
	}
}

// genComplexKernel builds a random function
//
//	function [y, s] = k(z, w, c)
//
// with complex row inputs z, w, a complex scalar c, a complex row
// output y and a real scalar output s fed by projections.
func genComplexKernel(r *rand.Rand) string {
	g := &exprGen{r: r}
	var b strings.Builder
	b.WriteString("function [y, s] = k(z, w, c)\n")
	b.WriteString("n = length(z);\n")
	b.WriteString("y = zeros(1, n);\n")
	b.WriteString("s = 0;\n")

	nstmt := 1 + r.Intn(3)
	for si := 0; si < nstmt; si++ {
		switch r.Intn(5) {
		case 0:
			// Elementwise complex loop.
			b.WriteString("for i = 1:n\n")
			fmt.Fprintf(&b, "    y(i) = %s;\n", g.cscalar(3))
			b.WriteString("end\n")
		case 1:
			// Real-projection reduction loop (abs/real/imag chains).
			b.WriteString("for i = 1:n\n")
			fmt.Fprintf(&b, "    s = s + %s;\n", g.crealScalar(2))
			b.WriteString("end\n")
		case 2:
			// Whole-array fused complex assignment.
			fmt.Fprintf(&b, "y = %s;\n", g.cvecExpr(3))
		case 3:
			// Conjugated slice accumulation: the matched-filter shape.
			fmt.Fprintf(&b, "y(2:end) = y(2:end) + conj(%s(1:end-1)) .* %s(2:end);\n",
				[]string{"z", "w"}[r.Intn(2)], []string{"z", "w"}[r.Intn(2)])
		default:
			// Builtin reduction of a projected array.
			fmt.Fprintf(&b, "s = s + sum(abs(%s));\n", g.cvecExpr(2))
		}
	}
	b.WriteString("end\n")
	return b.String()
}

func complexFuzzParams() []sema.Type {
	dyn := sema.Type{Class: sema.Complex, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
	return []sema.Type{dyn, dyn, sema.ComplexScalar}
}

func complexFuzzArgs(r *rand.Rand, n int) []interface{} {
	z := ir.NewComplexArray(1, n)
	w := ir.NewComplexArray(1, n)
	rc := func() complex128 {
		return complex(math.Round(r.NormFloat64()*8)/4, math.Round(r.NormFloat64()*8)/4)
	}
	for i := 0; i < n; i++ {
		z.C[i] = rc()
		w.C[i] = rc()
	}
	return []interface{}{z, w, rc()}
}

// rewidthInstr adjusts the lane-count suffix vector intrinsic C names
// carry by convention (the same transform the DSE sweep applies).
func rewidthInstr(in pdesc.Instr, lanes int) pdesc.Instr {
	in.CName = strings.TrimRight(in.CName, "0123456789") + fmt.Sprintf("%d", lanes)
	return in
}

// fuzzTargets returns every embedded target plus DSE-style derived
// variants (a wide machine and a wide machine with the complex SIMD
// unit removed), so the differential net covers the same corners the
// exploration sweep generates.
func fuzzTargets(t *testing.T) []*pdesc.Processor {
	t.Helper()
	var procs []*pdesc.Processor
	for _, name := range pdesc.BuiltinNames() {
		procs = append(procs, pdesc.Builtin(name))
	}
	base := pdesc.Builtin("dspasip")
	wide, err := base.Derive("dse-w16-cl8", func(q *pdesc.Processor) {
		q.SIMDWidth, q.ComplexLanes = 16, 8
		var instrs []pdesc.Instr
		for _, in := range base.Instructions {
			if strings.HasPrefix(in.Name, "vc") {
				in = rewidthInstr(in, 8)
			} else if strings.HasPrefix(in.Name, "v") {
				in = rewidthInstr(in, 16)
			}
			instrs = append(instrs, in)
		}
		q.Instructions = instrs
	})
	if err != nil {
		t.Fatal(err)
	}
	nocmplx, err := base.Derive("dse-w8-cl0", func(q *pdesc.Processor) {
		q.SIMDWidth, q.ComplexLanes = 8, 0
		var instrs []pdesc.Instr
		for _, in := range base.Instructions {
			if strings.HasPrefix(in.Name, "vc") {
				continue // no complex SIMD lanes on this variant
			}
			if strings.HasPrefix(in.Name, "v") {
				in = rewidthInstr(in, 8)
			}
			instrs = append(instrs, in)
		}
		q.Instructions = instrs
	})
	if err != nil {
		t.Fatal(err)
	}
	return append(procs, wide, nocmplx)
}

// TestFuzzComplexPipelinesAgree is the complex-arithmetic differential
// net: random well-typed kernels over complex operands, executed on
// the reference evaluator and on the optimized pipeline's VM for every
// embedded target and for DSE-style derived variants. All must agree.
func TestFuzzComplexPipelinesAgree(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	r := rand.New(rand.NewSource(313131))
	procs := fuzzTargets(t)
	params := complexFuzzParams()

	for trial := 0; trial < trials; trial++ {
		src := genComplexKernel(r)
		n := []int{1, 2, 3, 8, 17, 32}[r.Intn(6)]
		args := complexFuzzArgs(r, n)

		file, err := mlang.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, src)
		}
		info, err := sema.Analyze(file, "k", params)
		if err != nil {
			t.Fatalf("trial %d: analyze: %v\n%s", trial, err, src)
		}
		plain, err := lower.Lower(info)
		if err != nil {
			t.Fatalf("trial %d: lower: %v\n%s", trial, err, src)
		}
		ev := &ir.Evaluator{}
		want, err := ev.Run(plain, cloneFuzzArgs(args)...)
		if err != nil {
			t.Fatalf("trial %d: reference run: %v\n%s", trial, err, src)
		}

		for _, proc := range procs {
			for _, cfg := range []struct {
				name string
				c    Config
			}{
				{"baseline", Baseline(proc)},
				{"proposed", Proposed(proc)},
			} {
				res, err := Compile(src, "k", params, cfg.c)
				if err != nil {
					t.Fatalf("trial %d (%s/%s): compile: %v\n%s", trial, proc.Name, cfg.name, err, src)
				}
				m := vm.NewMachine(proc)
				got, err := res.RunOn(m, cloneFuzzArgs(args)...)
				if err != nil {
					t.Fatalf("trial %d (%s/%s): run: %v\n%s", trial, proc.Name, cfg.name, err, src)
				}
				for i := range want {
					if !fuzzEq(want[i], got[i]) {
						t.Errorf("trial %d (%s/%s) n=%d: result %d differs\nwant %v\ngot  %v\nsource:\n%s\nIR:\n%s",
							trial, proc.Name, cfg.name, n, i, want[i], got[i], src, ir.Print(res.Func))
					}
				}
			}
		}
	}
}

func TestFuzzPipelinesAgree(t *testing.T) {
	trials := 250
	if testing.Short() {
		trials = 60
	}
	r := rand.New(rand.NewSource(424242))
	runFuzzTrials(t, r, trials)
}

// runFuzzTrials runs the differential fuzz loop with the given source of
// randomness (shared by the checked-in test and ad-hoc deep fuzzing).
func runFuzzTrials(t *testing.T, r *rand.Rand, trials int) {
	t.Helper()
	proc := pdesc.Builtin("dspasip")
	params := fuzzParams()

	for trial := 0; trial < trials; trial++ {
		src := genKernel(r)
		// n >= 1: min/max/mean reductions of empty vectors are runtime
		// errors by design (documented), not a pipeline divergence.
		n := []int{1, 2, 3, 8, 17, 32}[r.Intn(6)]
		args := fuzzArgs(r, n)

		// Reference: unoptimized lowering on the pure evaluator.
		file, err := mlang.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, src)
		}
		info, err := sema.Analyze(file, "k", params)
		if err != nil {
			t.Fatalf("trial %d: analyze: %v\n%s", trial, err, src)
		}
		plain, err := lower.Lower(info)
		if err != nil {
			t.Fatalf("trial %d: lower: %v\n%s", trial, err, src)
		}
		ev := &ir.Evaluator{}
		want, err := ev.Run(plain, cloneFuzzArgs(args)...)
		if err != nil {
			t.Fatalf("trial %d: reference run: %v\n%s", trial, err, src)
		}

		for _, cfg := range []struct {
			name string
			c    Config
		}{
			{"baseline", Baseline(proc)},
			{"proposed", Proposed(proc)},
		} {
			res, err := Compile(src, "k", params, cfg.c)
			if err != nil {
				t.Fatalf("trial %d (%s): compile: %v\n%s", trial, cfg.name, err, src)
			}
			m := vm.NewMachine(proc)
			got, err := res.RunOn(m, cloneFuzzArgs(args)...)
			if err != nil {
				t.Fatalf("trial %d (%s): run: %v\n%s", trial, cfg.name, err, src)
			}
			for i := range want {
				if !fuzzEq(want[i], got[i]) {
					t.Errorf("trial %d (%s) n=%d: result %d differs\nwant %v\ngot  %v\nsource:\n%s\nIR:\n%s",
						trial, cfg.name, n, i, want[i], got[i], src, ir.Print(res.Func))
				}
			}
		}
	}
}
