// Package core is the compilation driver: it chains the front end
// (parse, analyze), the middle end (lower, optimize, vectorize, select
// custom instructions), and the two back ends (ANSI C emission and the
// cycle-model VM) according to a Config, and provides the two canonical
// pipeline presets the evaluation compares:
//
//   - Proposed: the paper's compiler — fused lowering, scalar
//     optimizations, SIMD vectorization, custom-instruction selection;
//   - Baseline: MATLAB-Coder-like code — one loop and a materialized
//     temporary per vectorized operation, scalar optimizations only, no
//     SIMD, no custom instructions.
package core

import (
	"context"
	"fmt"
	"time"

	"mat2c/internal/cgen"
	"mat2c/internal/ir"
	"mat2c/internal/isel"
	"mat2c/internal/lower"
	"mat2c/internal/mlang"
	"mat2c/internal/opt"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
	"mat2c/internal/vectorize"
	"mat2c/internal/vm"
)

// Config selects pipeline features.
type Config struct {
	// Processor is the target description (required).
	Processor *pdesc.Processor
	// OptLevel: 0 disables the scalar optimization pipeline, 1 enables it.
	OptLevel int
	// Vectorize enables the loop auto-vectorizer.
	Vectorize bool
	// Intrinsics enables custom-instruction selection.
	Intrinsics bool
	// Fusion enables elementwise view fusion in lowering. Disabled it
	// reproduces MATLAB Coder's loop-per-operation code shape.
	Fusion bool
	// EmitC additionally generates the ANSI C translation.
	EmitC bool
}

// Proposed returns the full paper pipeline for the processor.
func Proposed(p *pdesc.Processor) Config {
	return Config{Processor: p, OptLevel: 1, Vectorize: true, Intrinsics: true, Fusion: true}
}

// Baseline returns the MATLAB-Coder-like reference pipeline targeting
// the same processor (which its plain C output cannot exploit).
func Baseline(p *pdesc.Processor) Config {
	return Config{Processor: p, OptLevel: 1, Vectorize: false, Intrinsics: false, Fusion: false}
}

// StageTime records the wall-clock time one pipeline stage took during
// a Compile call.
type StageTime struct {
	Stage    string
	Duration time.Duration
}

// StageNames lists the instrumented pipeline stages in execution order.
// Every Compile records a StageTime for each (zero when the stage was
// disabled by the Config), so aggregators can pre-register them.
func StageNames() []string {
	return []string{"parse", "sema", "lower", "opt", "vectorize", "isel", "vm-lower", "cgen"}
}

// stageClock accumulates per-stage wall time. Repeated marks of the
// same stage (the post-vectorize optimizer cleanup) fold into one entry
// so consumers see exactly one StageTime per pipeline stage.
type stageClock struct {
	stages []StageTime
	mark   time.Time
}

func newStageClock() *stageClock {
	c := &stageClock{mark: time.Now()}
	for _, name := range StageNames() {
		c.stages = append(c.stages, StageTime{Stage: name})
	}
	return c
}

func (c *stageClock) record(stage string) {
	now := time.Now()
	d := now.Sub(c.mark)
	c.mark = now
	for i := range c.stages {
		if c.stages[i].Stage == stage {
			c.stages[i].Duration += d
			return
		}
	}
	c.stages = append(c.stages, StageTime{Stage: stage, Duration: d})
}

// Result is a compiled function with both back-end artifacts.
type Result struct {
	// Entry is the compiled entry function name.
	Entry string
	// Info is the semantic analysis result.
	Info *sema.Info
	// Func is the optimized IR.
	Func *ir.Func
	// Program is the VM lowering of Func.
	Program *vm.Program
	// CSource and CHeader hold the ANSI C translation when requested.
	CSource string
	CHeader string

	// VectorizedLoops counts loops the vectorizer widened.
	VectorizedLoops int
	// Intrinsics reports the custom instructions selected.
	Intrinsics isel.Stats

	// Stages records per-stage wall time for this compilation, one
	// entry per StageNames() element in pipeline order.
	Stages []StageTime

	cfg Config
}

// Restored rebuilds a Result from a decoded durable artifact (see
// internal/artifact): the VM program, C artifacts, and pipeline
// statistics are present, but Info and Func are nil — the IR and AST
// object graphs are not serialized, only their renderings, which the
// mat2c layer serves from the artifact itself. Run and its variants
// work normally (they need only Program and the processor).
func Restored(entry string, prog *vm.Program, csrc, chdr string, vecLoops int, intr isel.Stats, stages []StageTime, cfg Config) *Result {
	if intr.Selected == nil {
		intr.Selected = map[string]int{}
	}
	return &Result{
		Entry:           entry,
		Program:         prog,
		CSource:         csrc,
		CHeader:         chdr,
		VectorizedLoops: vecLoops,
		Intrinsics:      intr,
		Stages:          stages,
		cfg:             cfg,
	}
}

// Compile runs the configured pipeline over MATLAB source. entry names
// the function to compile (it must be defined in src) and params give
// the entry parameter types.
func Compile(src, entry string, params []sema.Type, cfg Config) (*Result, error) {
	return CompileContext(context.Background(), src, entry, params, cfg)
}

// CompileContext is Compile under a cancellable context: the pipeline
// checks ctx between stages and abandons the compilation (returning an
// error that unwraps to ctx.Err()) once it fires. Individual stages are
// short, so cancellation latency is bounded by the slowest single
// stage.
func CompileContext(ctx context.Context, src, entry string, params []sema.Type, cfg Config) (*Result, error) {
	if cfg.Processor == nil {
		return nil, fmt.Errorf("core: Config.Processor is required")
	}
	cancelled := func(after string) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("compile cancelled after %s: %w", after, err)
		}
		return nil
	}
	clock := newStageClock()
	file, err := mlang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	clock.record("parse")
	if err := cancelled("parse"); err != nil {
		return nil, err
	}
	if entry == "" && len(file.Funcs) > 0 {
		entry = file.Funcs[0].Name
	}
	info, err := sema.Analyze(file, entry, params)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	clock.record("sema")
	if err := cancelled("sema"); err != nil {
		return nil, err
	}

	var lopts []lower.Option
	if !cfg.Fusion {
		lopts = append(lopts, lower.NoFusion())
	}
	f, err := lower.Lower(info, lopts...)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	clock.record("lower")
	if err := cancelled("lower"); err != nil {
		return nil, err
	}

	opt.Optimize(f, cfg.OptLevel)
	clock.record("opt")
	if err := cancelled("opt"); err != nil {
		return nil, err
	}

	res := &Result{Entry: entry, Info: info, Func: f, cfg: cfg,
		Intrinsics: isel.Stats{Selected: map[string]int{}}}
	if cfg.Vectorize {
		res.VectorizedLoops = vectorize.Apply(f, cfg.Processor)
	}
	clock.record("vectorize")
	if cfg.Intrinsics {
		res.Intrinsics = isel.Apply(f, cfg.Processor)
	}
	clock.record("isel")
	if err := cancelled("isel"); err != nil {
		return nil, err
	}
	// The vectorizer's forward substitution re-exposes foldable index
	// arithmetic; clean it up so neither backend executes it.
	if cfg.OptLevel > 0 && (cfg.Vectorize || cfg.Intrinsics) {
		opt.Optimize(f, cfg.OptLevel)
		clock.record("opt")
	}

	prog, err := vm.Lower(f)
	if err != nil {
		return nil, fmt.Errorf("vm lower: %w", err)
	}
	res.Program = prog
	clock.record("vm-lower")
	if err := cancelled("vm-lower"); err != nil {
		return nil, err
	}

	if cfg.EmitC {
		csrc, err := cgen.Function(f, cfg.Processor)
		if err != nil {
			return nil, fmt.Errorf("cgen: %w", err)
		}
		res.CSource = csrc
		res.CHeader = cgen.Header(cfg.Processor)
		clock.record("cgen")
	}
	res.Stages = clock.stages
	return res, nil
}

// Run executes the compiled program on a fresh cycle-model machine and
// returns the results and the charged cycle count.
func (r *Result) Run(args ...interface{}) ([]interface{}, int64, error) {
	return r.RunContext(context.Background(), args...)
}

// RunContext executes like Run under a cancellable context (see
// vm.Machine.RunContext for the cancellation contract).
func (r *Result) RunContext(ctx context.Context, args ...interface{}) ([]interface{}, int64, error) {
	m := vm.NewMachine(r.cfg.Processor)
	out, err := m.RunContext(ctx, r.Program, args...)
	if err != nil {
		return nil, 0, err
	}
	return out, m.Cycles, nil
}

// RunOn executes the compiled program on the supplied machine (for
// callers that want ClassCounts or custom cycle limits).
func (r *Result) RunOn(m *vm.Machine, args ...interface{}) ([]interface{}, error) {
	return m.Run(r.Program, args...)
}

// RunOnContext executes the compiled program on the supplied machine
// under a cancellable context.
func (r *Result) RunOnContext(ctx context.Context, m *vm.Machine, args ...interface{}) ([]interface{}, error) {
	return m.RunContext(ctx, r.Program, args...)
}

// CodeSize returns the static VM instruction count.
func (r *Result) CodeSize() int { return r.Program.Len() }

// Processor returns the target the result was compiled for.
func (r *Result) Processor() *pdesc.Processor { return r.cfg.Processor }
