package core

// Diagnostics quality: unsupported or ill-typed constructs must be
// rejected with a positioned, intelligible message — never miscompiled
// and never a panic.

import (
	"strings"
	"testing"

	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
)

func TestDiagnosticsCatalog(t *testing.T) {
	vec := sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
	cvec := sema.Type{Class: sema.Complex, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
	mat := sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 4, Cols: 4}}

	cases := []struct {
		name   string
		src    string
		params []sema.Type
		want   string // substring of the error
	}{
		{
			"undefined variable",
			"function y = f()\ny = q + 1;\nend", nil,
			"undefined",
		},
		{
			"undefined function",
			"function y = f(x)\ny = fft2(x);\nend", []sema.Type{vec},
			"undefined",
		},
		{
			"growth without preallocation",
			"function y = f()\nw(5) = 1;\ny = 1;\nend", nil,
			"preallocate",
		},
		{
			"recursion",
			"function y = f(x)\ny = f(x);\nend", []sema.Type{sema.RealScalar},
			"recursive",
		},
		{
			"string data",
			"function y = f()\ny = 'abc';\nend", nil,
			"string",
		},
		{
			"nonconformant shapes",
			"function y = f()\ny = zeros(1, 3) + zeros(1, 4);\nend", nil,
			"nonconformant",
		},
		{
			"matrix inner dims",
			"function y = f(a)\ny = a * zeros(3, 2);\nend", []sema.Type{mat},
			"inner dimensions",
		},
		{
			"matrix right division",
			"function y = f(a)\ny = a / zeros(4, 4);\nend", []sema.Type{mat},
			"not supported",
		},
		{
			"matrix power",
			"function y = f(a)\ny = a ^ 2;\nend", []sema.Type{mat},
			"power",
		},
		{
			"3-d indexing",
			"function y = f(a)\ny = a(1, 2, 3);\nend", []sema.Type{mat},
			"index",
		},
		{
			"complex index",
			"function y = f(x)\ny = x(1i);\nend", []sema.Type{vec},
			"indices",
		},
		{
			"break outside loop",
			"function y = f()\nbreak;\ny = 1;\nend", nil,
			"break",
		},
		{
			"unassigned output",
			"function y = f()\nend", nil,
			"never assigned",
		},
		{
			"builtin shadowing",
			"function y = f()\nsum = 1;\ny = sum;\nend", nil,
			"builtin",
		},
		{
			"return in callee",
			"function y = f(x)\ny = g(x);\nend\nfunction z = g(v)\nz = v;\nreturn\nend",
			[]sema.Type{sema.RealScalar},
			"inlined",
		},
		{
			"min/max of complex",
			"function y = f(x)\ny = max(x);\nend", []sema.Type{cvec},
			"complex",
		},
		{
			"size with dynamic dim",
			"function y = f(a, d)\ny = size(a, d);\nend",
			[]sema.Type{mat, sema.IntScalar},
			"constant",
		},
		{
			"switch on vector",
			"function y = f(x)\nswitch x\ncase 1\ny = 1;\nend\nend",
			[]sema.Type{sema.Type{Class: sema.Real, Shape: sema.RowVec(4)}},
			"scalar",
		},
		{
			"2-d logical indexing",
			"function y = f(a, m)\ny = a(m > 0, 1);\nend",
			[]sema.Type{mat, sema.Type{Class: sema.Real, Shape: sema.ColVec(4)}},
			"logical indexing",
		},
		{
			"colon outside indexing",
			"function y = f(x)\ny = sum(:);\nend", []sema.Type{vec},
			"indexing",
		},
		{
			"norm of matrix",
			"function y = f(a)\ny = norm(a);\nend", []sema.Type{mat},
			"vectors only",
		},
		{
			"arity",
			"function y = f(x)\ny = mod(x);\nend", []sema.Type{sema.RealScalar},
			"arguments",
		},
	}

	cfg := Proposed(pdesc.Builtin("dspasip"))
	for _, c := range cases {
		_, err := Compile(c.src, "f", c.params, cfg)
		if err == nil {
			t.Errorf("%s: expected a compile error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing substring %q", c.name, err.Error(), c.want)
		}
	}
}

// TestDiagnosticsHavePositions: the first error of a multi-line program
// carries its line number.
func TestDiagnosticsHavePositions(t *testing.T) {
	src := "function y = f()\ny = 1;\nz = undefined_name;\nend"
	_, err := Compile(src, "f", nil, Baseline(pdesc.Builtin("scalar")))
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Errorf("error lacks line-3 position: %v", err)
	}
}
