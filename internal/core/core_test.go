package core

import (
	"strings"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/opt"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
	"mat2c/internal/vm"
)

const dotSrc = `function s = dotp(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * b(i);
end
end`

func dynVec() sema.Type {
	return sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func TestCompileProposed(t *testing.T) {
	cfg := Proposed(pdesc.Builtin("dspasip"))
	cfg.EmitC = true
	res, err := Compile(dotSrc, "dotp", []sema.Type{dynVec(), dynVec()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.VectorizedLoops != 1 {
		t.Errorf("vectorized %d loops, want 1", res.VectorizedLoops)
	}
	if res.Intrinsics.Total() == 0 {
		t.Error("no intrinsics selected")
	}
	if !strings.Contains(res.CSource, "void dotp(") {
		t.Error("C source missing")
	}
	if res.CHeader == "" {
		t.Error("C header missing")
	}
	if res.CodeSize() <= 0 {
		t.Error("no code")
	}
	if res.Processor().Name != "dspasip" {
		t.Error("processor accessor wrong")
	}
}

func TestCompileBaselineHasNoTargetFeatures(t *testing.T) {
	res, err := Compile(dotSrc, "dotp", []sema.Type{dynVec(), dynVec()},
		Baseline(pdesc.Builtin("dspasip")))
	if err != nil {
		t.Fatal(err)
	}
	if res.VectorizedLoops != 0 || res.Intrinsics.Total() != 0 {
		t.Error("baseline must not vectorize or select intrinsics")
	}
}

func TestCompileEntryDefaultsToFirstFunction(t *testing.T) {
	res, err := Compile(dotSrc, "", []sema.Type{dynVec(), dynVec()},
		Baseline(pdesc.Builtin("scalar")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry != "dotp" {
		t.Errorf("entry %q", res.Entry)
	}
}

func TestCompileErrors(t *testing.T) {
	// Missing processor.
	if _, err := Compile(dotSrc, "dotp", []sema.Type{dynVec(), dynVec()}, Config{}); err == nil {
		t.Error("expected processor-required error")
	}
	// Parse failure.
	cfg := Baseline(pdesc.Builtin("scalar"))
	if _, err := Compile("function (", "", nil, cfg); err == nil ||
		!strings.Contains(err.Error(), "parse") {
		t.Error("expected parse error")
	}
	// Sema failure.
	if _, err := Compile("function y = f()\ny = nope(3);\nend", "f", nil, cfg); err == nil ||
		!strings.Contains(err.Error(), "analyze") {
		t.Error("expected analyze error")
	}
	// Lowering failure (return inside inlined callee).
	srcRet := `function y = f(x)
y = g(x);
end
function z = g(v)
z = v;
return
end`
	if _, err := Compile(srcRet, "f", []sema.Type{sema.RealScalar}, cfg); err == nil ||
		!strings.Contains(err.Error(), "lower") {
		t.Error("expected lower error")
	}
}

func TestResultRun(t *testing.T) {
	res, err := Compile(dotSrc, "dotp", []sema.Type{dynVec(), dynVec()},
		Proposed(pdesc.Builtin("dspasip")))
	if err != nil {
		t.Fatal(err)
	}
	a := vec(1, 2, 3, 4)
	b := vec(10, 20, 30, 40)
	out, cycles, err := res.Run(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0].(float64); got != 300 {
		t.Errorf("dot = %v, want 300", got)
	}
	if cycles <= 0 {
		t.Error("no cycles")
	}
	// RunOn with explicit machine gives class counts.
	m := vm.NewMachine(pdesc.Builtin("dspasip"))
	if _, err := res.RunOn(m, vec(1, 2), vec(3, 4)); err != nil {
		t.Fatal(err)
	}
	if len(m.ClassCounts) == 0 {
		t.Error("no class counts")
	}
}

func vec(vals ...float64) interface{} {
	a := ir.NewFloatArray(1, len(vals))
	copy(a.F, vals)
	return a
}

// TestCompileDeterministic: compiling the same source twice yields
// byte-identical artifacts (IR text, C, disassembly).
func TestCompileDeterministic(t *testing.T) {
	cfg := Proposed(pdesc.Builtin("dspasip"))
	cfg.EmitC = true
	srcs := []string{
		dotSrc,
		`function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = x(i) * 2 + 1;
    if x(i) < 0
        y(i) = 0;
    end
end
end`,
	}
	for _, src := range srcs {
		params := []sema.Type{dynVec(), dynVec()}
		if !strings.Contains(src, ", b)") {
			params = params[:1]
		}
		r1, err := Compile(src, "", params, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Compile(src, "", params, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ir.Print(r1.Func) != ir.Print(r2.Func) {
			t.Error("IR not deterministic")
		}
		if r1.CSource != r2.CSource {
			t.Error("C output not deterministic")
		}
		if r1.Program.Disasm() != r2.Program.Disasm() {
			t.Error("VM lowering not deterministic")
		}
	}
}

// TestOptimizeIdempotentOnPipelineOutput: re-running the optimizer on
// fully compiled IR changes nothing (the pipeline reached a fixpoint).
func TestOptimizeIdempotentOnPipelineOutput(t *testing.T) {
	cfg := Proposed(pdesc.Builtin("dspasip"))
	res, err := Compile(dotSrc, "dotp", []sema.Type{dynVec(), dynVec()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := ir.Print(res.Func)
	opt.Optimize(res.Func, 1)
	after := ir.Print(res.Func)
	if before != after {
		t.Errorf("optimizer not at fixpoint:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}
