package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"testing"
)

// reseal recomputes the trailing checksum after a test mutated the
// body, producing bytes that pass the integrity check and exercise the
// field-level validation behind it.
func reseal(data []byte) []byte {
	body := data[:len(data)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}

// TestDecodeTruncationEveryBoundary cuts a valid encoding at every
// single byte offset. Every prefix must decode to a typed error — the
// checksum no longer matches (or the frame is too short), so always
// ErrCorrupt — and must never panic.
func TestDecodeTruncationEveryBoundary(t *testing.T) {
	a := testArtifact(t)
	t.Run("program", func(t *testing.T) {
		data := EncodeProgram(a.Program)
		for i := 0; i < len(data); i++ {
			if _, err := DecodeProgram(data[:i]); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation at %d/%d: err = %v, want ErrCorrupt", i, len(data), err)
			}
		}
	})
	t.Run("artifact", func(t *testing.T) {
		data := Encode(a, "kv")
		for i := 0; i < len(data); i++ {
			if _, err := Decode(data[:i], "kv"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation at %d/%d: err = %v, want ErrCorrupt", i, len(data), err)
			}
		}
	})
}

// TestDecodeSingleBitFlips flips one bit at a time across the whole
// encoding (checksum bytes included). Every flip must surface as
// ErrCorrupt: the trailing SHA-256 catches any body change, and a flip
// inside the checksum itself mismatches the intact body.
func TestDecodeSingleBitFlips(t *testing.T) {
	a := testArtifact(t)
	data := Encode(a, "kv")
	// Step through offsets (every one for small inputs, sampled for
	// large) and all 8 bits at each.
	step := 1
	if len(data) > 4096 {
		step = len(data) / 4096
	}
	for off := 0; off < len(data); off += step {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			if _, err := Decode(mut, "kv"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip at byte %d bit %d: err = %v, want ErrCorrupt", off, bit, err)
			}
		}
	}
}

// TestStaleFormatVersion rewrites the format-version field (offset 4,
// right after the magic) and reseals, simulating an artifact written by
// a future build: well-formed, wrong version, ErrVersion.
func TestStaleFormatVersion(t *testing.T) {
	a := testArtifact(t)
	t.Run("program", func(t *testing.T) {
		data := append([]byte(nil), EncodeProgram(a.Program)...)
		binary.LittleEndian.PutUint32(data[4:], programVersion+1)
		if _, err := DecodeProgram(reseal(data)); !errors.Is(err, ErrVersion) {
			t.Fatalf("stale program version: err = %v, want ErrVersion", err)
		}
	})
	t.Run("artifact", func(t *testing.T) {
		data := append([]byte(nil), Encode(a, "kv")...)
		binary.LittleEndian.PutUint32(data[4:], artifactVersion+1)
		if _, err := Decode(reseal(data), "kv"); !errors.Is(err, ErrVersion) {
			t.Fatalf("stale artifact version: err = %v, want ErrVersion", err)
		}
	})
}

// TestMismatchedKeyVersion decodes an artifact written under a
// different cache-key version: structurally valid, semantically from
// another compiler, ErrVersion.
func TestMismatchedKeyVersion(t *testing.T) {
	a := testArtifact(t)
	data := Encode(a, "old-cache-semantics")
	if _, err := Decode(data, "new-cache-semantics"); !errors.Is(err, ErrVersion) {
		t.Fatalf("key-version mismatch: err = %v, want ErrVersion", err)
	}
}

// TestWrongMagic feeds one kind's encoding to the other kind's decoder.
func TestWrongMagic(t *testing.T) {
	a := testArtifact(t)
	if _, err := DecodeProgram(Encode(a, "kv")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("artifact bytes through DecodeProgram: err = %v, want ErrCorrupt", err)
	}
	if _, err := Decode(EncodeProgram(a.Program), "kv"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("program bytes through Decode: err = %v, want ErrCorrupt", err)
	}
}

// TestHostileCounts builds a sealed program whose instruction count
// claims far more elements than the input holds. The count bound must
// reject it before allocating.
func TestHostileCounts(t *testing.T) {
	var w writer
	w.buf = append(w.buf, programMagic...)
	w.u32(programVersion)
	w.str("evil")
	w.u32(1)          // NumRegs
	w.u32(0)          // arrays
	w.u32(0)          // params
	w.u32(0)          // results
	w.u32(0xFFFFFFFF) // instruction count: ~4 billion, input has ~0 bytes left
	data := w.bytes()
	if _, err := DecodeProgram(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile count: err = %v, want ErrCorrupt", err)
	}
}

// TestHostileStringLength claims a string far longer than the input.
func TestHostileStringLength(t *testing.T) {
	var w writer
	w.buf = append(w.buf, programMagic...)
	w.u32(programVersion)
	w.u32(0x7FFFFFFF) // Name length prefix, nothing behind it
	data := w.bytes()
	if _, err := DecodeProgram(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile string length: err = %v, want ErrCorrupt", err)
	}
}

// TestTrailingBytesRejected reseals a valid body with padding inserted
// before the checksum: the checksum passes, but the decoder must
// consume the input exactly.
func TestTrailingBytesRejected(t *testing.T) {
	a := testArtifact(t)
	data := EncodeProgram(a.Program)
	body := append([]byte(nil), data[:len(data)-sha256.Size]...)
	body = append(body, 0xAB, 0xCD)
	if _, err := DecodeProgram(reseal(append(body, make([]byte, sha256.Size)...))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: err = %v, want ErrCorrupt", err)
	}
}

// TestOutOfRangeEnums rewrites an opcode byte beyond the decoder's
// bound and reseals; the enum check must reject it as corrupt rather
// than hand the VM an unknown operation.
func TestOutOfRangeEnums(t *testing.T) {
	var w writer
	w.buf = append(w.buf, programMagic...)
	w.u32(programVersion)
	w.str("f")
	w.u32(1)   // NumRegs
	w.u32(0)   // arrays
	w.u32(0)   // params
	w.u32(0)   // results
	w.u32(1)   // one instruction
	w.u8(0xFF) // opcode far beyond maxOpc
	// The rest of the instruction, all zero.
	w.u8(0)
	w.u32(0)
	w.u8(0)
	w.u8(0)
	w.i64(0)
	w.i64(0)
	w.i64(0)
	w.u32(0)
	w.i64(0)
	w.f64(0)
	w.c128(0)
	w.i64(0)
	w.i64(0)
	w.str("")
	w.str("")
	if _, err := DecodeProgram(w.bytes()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-range opcode: err = %v, want ErrCorrupt", err)
	}
}
