package artifact

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"mat2c/internal/core"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
	"mat2c/internal/vm"
)

const codecTestSrc = `function y = scale(x, a)
y = a .* x + 1;
end`

var codecTestParams = []sema.Type{
	{Class: sema.Real, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}},
	sema.ScalarType(sema.Real),
}

// compileTestResult runs the full pipeline (C emission included) on the
// reference kernel, giving the tests a realistic program: vector ops,
// intrinsics, immediates, array slots.
func compileTestResult(t testing.TB) *core.Result {
	t.Helper()
	p, err := pdesc.Resolve("dspasip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Proposed(p)
	cfg.EmitC = true
	res, err := core.Compile(codecTestSrc, "scale", codecTestParams, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testArtifact(t testing.TB) *Artifact {
	res := compileTestResult(t)
	return &Artifact{
		Key:             "aabbccdd00112233",
		Entry:           res.Entry,
		Target:          "dspasip",
		Program:         res.Program,
		CSource:         res.CSource,
		CHeader:         res.CHeader,
		CPrototype:      "void scale(void);\n",
		IRText:          "func scale { ... }",
		ASTText:         "function y = scale(x, a)",
		Warnings:        []string{"w1", "w2"},
		VectorizedLoops: res.VectorizedLoops,
		Intrinsics:      map[string]int{"mac": 2, "cmul": 1},
		Stages:          []StageTime{{Stage: "parse", Nanos: 1200}, {Stage: "cgen", Nanos: 3400}},
	}
}

func TestProgramRoundTrip(t *testing.T) {
	prog := compileTestResult(t).Program
	enc := EncodeProgram(prog)
	dec, err := DecodeProgram(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got, want := dec.ContentHash(), prog.ContentHash(); got != want {
		t.Errorf("ContentHash changed across the round trip: %s != %s", got, want)
	}
	if got, want := dec.Disasm(), prog.Disasm(); got != want {
		t.Errorf("disassembly changed across the round trip:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if dec.NumRegs != prog.NumRegs || len(dec.Instrs) != len(prog.Instrs) {
		t.Errorf("shape changed: regs %d/%d instrs %d/%d",
			dec.NumRegs, prog.NumRegs, len(dec.Instrs), len(prog.Instrs))
	}
}

func TestProgramEncodingDeterministic(t *testing.T) {
	prog := compileTestResult(t).Program
	if !bytes.Equal(EncodeProgram(prog), EncodeProgram(prog)) {
		t.Error("two encodings of the same program differ")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	a := testArtifact(t)
	const kv = "test-key-v1"
	enc := Encode(a, kv)
	dec, err := Decode(enc, kv)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// The embedded program is compared by content; everything else
	// field-by-field.
	if dec.Program.ContentHash() != a.Program.ContentHash() {
		t.Error("program changed across the round trip")
	}
	gp, ap := dec.Program, a.Program
	dec.Program, a.Program = nil, nil
	if !reflect.DeepEqual(dec, a) {
		t.Errorf("artifact changed across the round trip:\n got %+v\nwant %+v", dec, a)
	}
	dec.Program, a.Program = gp, ap
}

func TestArtifactEncodingDeterministic(t *testing.T) {
	a := testArtifact(t)
	if !bytes.Equal(Encode(a, "kv"), Encode(a, "kv")) {
		t.Error("two encodings of the same artifact differ (map ordering leaked)")
	}
}

func TestArtifactEmptySections(t *testing.T) {
	a := testArtifact(t)
	a.Warnings = nil
	a.Intrinsics = nil
	a.Stages = nil
	dec, err := Decode(Encode(a, "kv"), "kv")
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec.Warnings) != 0 || len(dec.Intrinsics) != 0 || len(dec.Stages) != 0 {
		t.Errorf("empty sections round-tripped non-empty: %+v", dec)
	}
}

func TestDecodeProgramEmptyAndTiny(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("M2CP"), []byte("garbage")} {
		if _, err := DecodeProgram(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("DecodeProgram(%q) = %v, want ErrCorrupt", data, err)
		}
	}
}

func TestProgramRoundTripEmptyProgram(t *testing.T) {
	prog := &vm.Program{Name: "empty"}
	dec, err := DecodeProgram(EncodeProgram(prog))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Name != "empty" || len(dec.Instrs) != 0 {
		t.Errorf("empty program round-tripped to %+v", dec)
	}
}
