package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultDiskBudget bounds a DiskStore opened with budget <= 0:
// artifacts are a few KiB to a few hundred KiB each, so half a GiB
// holds on the order of 10^4 sweep variants.
const DefaultDiskBudget = 512 << 20

// entrySuffix marks committed entries; tmpPrefix marks in-flight writes
// (renamed into place on commit, swept by the janitor when a crash
// strands one).
const (
	entrySuffix = ".art"
	tmpPrefix   = ".tmp-"
)

// DiskStore is a Store backed by a directory tree, sharded by the first
// two characters of the key so no single directory grows unboundedly:
//
//	root/ab/abcdef....art
//
// Writes are crash-safe: data lands in a temp file in the shard
// directory and is renamed into place, so readers (including other
// processes sharing the directory) observe either nothing or a complete
// entry. A byte-budget janitor evicts least-recently-used entries
// (mtime order; Get refreshes mtime) once the tree exceeds the budget,
// and sweeps stranded temp files older than TmpMaxAge.
type DiskStore struct {
	root   string
	budget int64

	// TmpMaxAge is how old a temp file must be before the janitor
	// treats it as a crash leftover and deletes it (default 1h). Tests
	// shorten it; in-flight writes younger than this are never touched.
	TmpMaxAge time.Duration

	mu    sync.Mutex
	bytes int64 // committed entry bytes, maintained incrementally
	count int   // committed entry count
	stats Stats
}

// OpenDisk opens (creating if needed) a disk store rooted at dir with
// the given byte budget (DefaultDiskBudget when <= 0). The tree is
// scanned once at open to seed the occupancy accounting; the scan also
// runs the janitor, so a store left over budget by a crash trims itself
// on the next open.
func OpenDisk(dir string, budget int64) (*DiskStore, error) {
	if budget <= 0 {
		budget = DefaultDiskBudget
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open disk store: %w", err)
	}
	s := &DiskStore{root: dir, budget: budget, TmpMaxAge: time.Hour}
	s.mu.Lock()
	s.rescanLocked()
	s.janitorLocked()
	s.mu.Unlock()
	return s, nil
}

// ValidKey rejects keys that could escape a store directory, collide
// with internal names, or break the blob protocol's URL layout. Cache
// keys are SHA-256 hex, so this is belt-and-braces, but the store is a
// public seam (and, with the remote tier, a network-facing one).
func ValidKey(key string) error {
	if len(key) < 2 || len(key) > 256 {
		return fmt.Errorf("artifact: invalid key %q: length out of range", key)
	}
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return fmt.Errorf("artifact: invalid key %q: bad character %q", key, c)
		}
	}
	return nil
}

func (s *DiskStore) path(key string) string {
	return filepath.Join(s.root, key[:2], key+entrySuffix)
}

// Get returns the entry, refreshing its mtime so the janitor's
// LRU-by-mtime order tracks actual use.
func (s *DiskStore) Get(key string) ([]byte, error) {
	if err := ValidKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.Gets++
	s.mu.Unlock()
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, err
	}
	// Recency bump, best-effort: a failed Chtimes only ages the entry.
	now := time.Now()
	os.Chtimes(s.path(key), now, now)
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return data, nil
}

// Has reports whether an entry exists without reading it (or bumping
// its recency — presence probes should not keep an entry alive).
func (s *DiskStore) Has(key string) (bool, error) {
	if err := ValidKey(key); err != nil {
		return false, err
	}
	_, err := os.Stat(s.path(key))
	switch {
	case err == nil:
		return true, nil
	case os.IsNotExist(err):
		return false, nil
	default:
		return false, err
	}
}

// Put writes atomically (temp file + rename in the shard directory) and
// runs the janitor when the write pushes the tree over budget.
func (s *DiskStore) Put(key string, data []byte) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	err := s.put(key, data)
	s.mu.Lock()
	s.stats.Puts++
	if err != nil {
		s.stats.PutErrors++
	}
	over := s.bytes > s.budget
	s.mu.Unlock()
	if over {
		s.Janitor()
	}
	return err
}

func (s *DiskStore) put(key string, data []byte) error {
	dst := s.path(key)
	dir := filepath.Dir(dst)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+key+"-*")
	if err != nil {
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}
	// Stat before rename so overwrites account the delta, not the sum.
	var prev int64 = -1
	if fi, err := os.Stat(dst); err == nil {
		prev = fi.Size()
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}
	s.mu.Lock()
	if prev >= 0 {
		s.bytes += int64(len(data)) - prev
	} else {
		s.bytes += int64(len(data))
		s.count++
	}
	s.mu.Unlock()
	return nil
}

// Delete removes the entry.
func (s *DiskStore) Delete(key string) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	p := s.path(key)
	fi, err := os.Stat(p)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return err
	}
	s.mu.Lock()
	s.bytes -= fi.Size()
	s.count--
	s.stats.Deletes++
	s.mu.Unlock()
	return nil
}

// Len reports the committed entry count.
func (s *DiskStore) Len() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, nil
}

// Stats snapshots traffic counters and occupancy.
func (s *DiskStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.count
	st.Bytes = s.bytes
	st.Budget = s.budget
	return st
}

// entryInfo is one committed entry seen by a tree walk.
type entryInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// walk lists committed entries and, separately, stranded temp files.
func (s *DiskStore) walk() (entries []entryInfo, tmps []entryInfo) {
	shards, err := os.ReadDir(s.root)
	if err != nil {
		return nil, nil
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			fi, err := f.Info()
			if err != nil {
				continue
			}
			info := entryInfo{
				path:  filepath.Join(s.root, sh.Name(), f.Name()),
				size:  fi.Size(),
				mtime: fi.ModTime(),
			}
			switch {
			case strings.HasPrefix(f.Name(), tmpPrefix):
				tmps = append(tmps, info)
			case strings.HasSuffix(f.Name(), entrySuffix):
				entries = append(entries, info)
			}
		}
	}
	return entries, tmps
}

// rescanLocked re-derives occupancy from the tree (open time, and after
// janitor passes, so incremental accounting cannot drift unboundedly).
func (s *DiskStore) rescanLocked() {
	entries, _ := s.walk()
	s.bytes, s.count = 0, 0
	for _, e := range entries {
		s.bytes += e.size
		s.count++
	}
}

// Janitor enforces the byte budget (evicting least-recently-used
// committed entries until 90% of budget, so evictions batch instead of
// triggering on every Put at the boundary) and sweeps temp files
// stranded by a crashed writer for longer than TmpMaxAge. It is safe to
// run concurrently with reads and writes — eviction uses the same
// remove path a Delete does — and runs automatically when a Put
// observes the store over budget.
func (s *DiskStore) Janitor() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.janitorLocked()
}

func (s *DiskStore) janitorLocked() {
	entries, tmps := s.walk()
	cutoff := time.Now().Add(-s.TmpMaxAge)
	for _, t := range tmps {
		if t.mtime.Before(cutoff) || s.TmpMaxAge <= 0 {
			os.Remove(t.path)
		}
	}
	var total int64
	for _, e := range entries {
		total += e.size
	}
	if total > s.budget {
		sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
		low := s.budget * 9 / 10
		for _, e := range entries {
			if total <= low {
				break
			}
			if os.Remove(e.path) == nil {
				total -= e.size
				s.stats.Evictions++
			}
		}
	}
	s.rescanLocked()
}
