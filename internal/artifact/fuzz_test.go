package artifact_test

import (
	"testing"

	"mat2c/internal/artifact"
	"mat2c/internal/bench"
	"mat2c/internal/core"
	"mat2c/internal/pdesc"
)

// seedEncodings compiles every benchmark kernel against a couple of
// builtin targets and returns valid encodings of the results — the fuzz
// corpus starts from real artifacts so mutations explore the format's
// interior, not just its magic header.
func seedEncodings(f *testing.F, encodeOne func(res *core.Result) []byte) {
	for _, target := range []string{"dspasip", "scalar"} {
		p, err := pdesc.Resolve(target)
		if err != nil {
			f.Fatal(err)
		}
		cfg := core.Proposed(p)
		cfg.EmitC = true
		for _, k := range bench.Kernels() {
			res, err := core.Compile(k.Source, k.Entry, k.Params, cfg)
			if err != nil {
				f.Fatalf("%s/%s: %v", target, k.Name, err)
			}
			f.Add(encodeOne(res))
		}
	}
	// Degenerate seeds: empty, header-only, truncated checksum.
	f.Add([]byte{})
	f.Add([]byte("M2CP"))
	f.Add([]byte("M2CA"))
	f.Add(make([]byte, 64))
}

// FuzzDecodeProgram holds the decoder to its contract on arbitrary
// bytes: return a typed error or a valid program — never panic, never
// allocate beyond what the input length justifies. A successful decode
// must re-encode byte-identically (the codec is canonical).
func FuzzDecodeProgram(f *testing.F) {
	seedEncodings(f, func(res *core.Result) []byte {
		return artifact.EncodeProgram(res.Program)
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := artifact.DecodeProgram(data)
		if err != nil {
			return
		}
		// Anything that decodes must be canonical: encoding it again
		// reproduces the input exactly.
		enc := artifact.EncodeProgram(p)
		if string(enc) != string(data) {
			t.Fatalf("decode/encode is not canonical: %d in, %d out", len(data), len(enc))
		}
	})
}

// FuzzDecodeArtifact is the same contract for the full artifact frame,
// embedded program included.
func FuzzDecodeArtifact(f *testing.F) {
	const kv = "fuzz-key-v1"
	seedEncodings(f, func(res *core.Result) []byte {
		return artifact.Encode(&artifact.Artifact{
			Key:             "0011223344556677",
			Entry:           res.Entry,
			Target:          "dspasip",
			Program:         res.Program,
			CSource:         res.CSource,
			CHeader:         res.CHeader,
			CPrototype:      "void f(void);",
			IRText:          "ir",
			ASTText:         "ast",
			Warnings:        []string{"w"},
			VectorizedLoops: res.VectorizedLoops,
			Intrinsics:      res.Intrinsics.Selected,
			Stages:          []artifact.StageTime{{Stage: "parse", Nanos: 1}},
		}, kv)
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := artifact.Decode(data, kv)
		if err != nil {
			return
		}
		enc := artifact.Encode(a, kv)
		if string(enc) != string(data) {
			t.Fatalf("decode/encode is not canonical: %d in, %d out", len(data), len(enc))
		}
	})
}
