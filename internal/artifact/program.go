package artifact

import (
	"fmt"

	"mat2c/internal/ir"
	"mat2c/internal/vm"
)

// Program blob framing. The version covers the instruction wire layout
// below; bump it whenever vm.Instr gains a field or an enum changes
// numbering, so stale blobs decode to ErrVersion instead of garbage.
const (
	programMagic   = "M2CP"
	programVersion = 1
)

// Decoder-side enum bounds. The wire stores enums as u8; these caps
// reject values outside today's definitions so a decoded program can
// never carry an operation the VM has no code for. They intentionally
// leave headroom: extending an enum past its cap requires a
// programVersion bump, which the explicit constants make reviewable.
const (
	maxOpc      = int(vm.OpRet)       // vm opcode space
	maxBaseKind = int(ir.Complex)     // int/float/complex
	maxIROp     = int(ir.OpToComplex) // ir operation space
	maxLanes    = 1 << 16             // vector width sanity bound
	maxRegs     = 1 << 24             // register-file sanity bound
)

// EncodeProgram serializes a compiled VM program into the versioned,
// checksummed binary form. The encoding is deterministic: equal
// programs produce equal bytes.
func EncodeProgram(p *vm.Program) []byte {
	var w writer
	w.buf = append(w.buf, programMagic...)
	w.u32(programVersion)
	encodeProgramBody(&w, p)
	return w.bytes()
}

func encodeProgramBody(w *writer, p *vm.Program) {
	w.str(p.Name)
	w.u32(uint32(p.NumRegs))
	w.u32(uint32(len(p.Arrays)))
	for _, a := range p.Arrays {
		w.str(a.Name)
		w.u8(byte(a.Elem))
	}
	params := func(ps []vm.Param) {
		w.u32(uint32(len(ps)))
		for _, q := range ps {
			w.str(q.Name)
			if q.IsArray {
				w.u8(1)
			} else {
				w.u8(0)
			}
			w.u8(byte(q.Elem))
			w.i64(int64(q.Reg))
			w.i64(int64(q.Arr))
		}
	}
	params(p.Params)
	params(p.Results)
	w.u32(uint32(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		w.u8(byte(in.Op))
		w.u8(byte(in.K.Base))
		w.u32(uint32(in.K.Lanes))
		w.u8(byte(in.OpBase))
		w.u8(byte(in.BOp))
		w.i64(int64(in.Dst))
		w.i64(int64(in.A))
		w.i64(int64(in.B))
		w.u32(uint32(len(in.Args)))
		for _, a := range in.Args {
			w.i64(int64(a))
		}
		w.i64(in.ImmI)
		w.f64(in.ImmF)
		w.c128(in.ImmC)
		w.i64(int64(in.Arr))
		w.i64(int64(in.Off))
		w.str(in.Intr)
		w.str(in.Sem)
	}
}

// DecodeProgram rebuilds a program from EncodeProgram bytes. Arbitrary
// input yields an error wrapping ErrCorrupt or ErrVersion — never a
// panic, and never an allocation larger than the input justifies. A
// successfully decoded program additionally passes vm's structural
// Validate, so register, array, and branch operands are in range.
func DecodeProgram(data []byte) (*vm.Program, error) {
	r, err := checkWrapper(data, programMagic)
	if err != nil {
		return nil, err
	}
	if v := r.u32(); r.err == nil && v != programVersion {
		return nil, fmt.Errorf("%w: program format v%d, this build reads v%d", ErrVersion, v, programVersion)
	}
	p, err := decodeProgramBody(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: invalid program: %v", ErrCorrupt, err)
	}
	return p, nil
}

// instrMinBytes is the smallest on-wire instruction (no args, empty
// intrinsic and semantics strings); used to bound the instruction-count
// allocation against the input size.
const instrMinBytes = 1 + 1 + 4 + 1 + 1 + 3*8 + 4 + 8 + 8 + 16 + 8 + 8 + 4 + 4

func decodeProgramBody(r *reader) (*vm.Program, error) {
	p := &vm.Program{}
	p.Name = r.str()
	p.NumRegs = int(r.u32())
	if r.err == nil && p.NumRegs > maxRegs {
		r.fail("register count %d out of range", p.NumRegs)
	}
	nArrays := r.count(5) // str len prefix + elem byte
	if r.err != nil {
		return nil, r.err
	}
	p.Arrays = make([]vm.ArraySlot, nArrays)
	for i := range p.Arrays {
		p.Arrays[i].Name = r.str()
		p.Arrays[i].Elem = ir.BaseKind(r.enum("array elem", maxBaseKind))
	}
	params := func(what string) []vm.Param {
		n := r.count(4 + 1 + 1 + 8 + 8)
		if r.err != nil {
			return nil
		}
		ps := make([]vm.Param, n)
		for i := range ps {
			ps[i].Name = r.str()
			ps[i].IsArray = r.u8() != 0
			ps[i].Elem = ir.BaseKind(r.enum(what+" elem", maxBaseKind))
			ps[i].Reg = int(r.i64())
			ps[i].Arr = int(r.i64())
		}
		return ps
	}
	p.Params = params("param")
	p.Results = params("result")
	nInstrs := r.count(instrMinBytes)
	if r.err != nil {
		return nil, r.err
	}
	p.Instrs = make([]vm.Instr, nInstrs)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		in.Op = vm.Opc(r.enum("opcode", maxOpc))
		in.K.Base = ir.BaseKind(r.enum("kind base", maxBaseKind))
		in.K.Lanes = int(r.u32())
		if r.err == nil && in.K.Lanes > maxLanes {
			r.fail("lanes %d out of range", in.K.Lanes)
		}
		in.OpBase = ir.BaseKind(r.enum("op base", maxBaseKind))
		in.BOp = ir.Op(r.enum("ir op", maxIROp))
		in.Dst = int(r.i64())
		in.A = int(r.i64())
		in.B = int(r.i64())
		nArgs := r.count(8)
		if r.err != nil {
			return nil, r.err
		}
		if nArgs > 0 {
			in.Args = make([]int, nArgs)
			for j := range in.Args {
				in.Args[j] = int(r.i64())
			}
		}
		in.ImmI = r.i64()
		in.ImmF = r.f64()
		in.ImmC = r.c128()
		in.Arr = int(r.i64())
		in.Off = int(r.i64())
		in.Intr = r.str()
		in.Sem = r.str()
		if r.err != nil {
			return nil, r.err
		}
	}
	return p, r.err
}
