package artifact

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testKey(i int) string { return fmt.Sprintf("k%02d%s", i, strings.Repeat("f", 60)) }

func TestDiskStorePutGetDelete(t *testing.T) {
	s, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
	want := []byte("artifact bytes")
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Get = %q, want %q", got, want)
	}
	if n, _ := s.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Delete: %v, want ErrNotFound", err)
	}
	if err := s.Delete(key); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Delete: %v, want ErrNotFound", err)
	}
}

func TestDiskStoreOverwriteAccountsDelta(t *testing.T) {
	s, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(2)
	if err := s.Put(key, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != 40 {
		t.Errorf("after overwrite: %d entries / %d bytes, want 1 / 40", st.Entries, st.Bytes)
	}
}

func TestDiskStorePersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3)
	if err := s1.Put(key, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives" {
		t.Errorf("reopened store returned %q", got)
	}
	st := s2.Stats()
	if st.Entries != 1 || st.Bytes != int64(len("survives")) {
		t.Errorf("rescan seeded %d entries / %d bytes", st.Entries, st.Bytes)
	}
}

func TestDiskStoreEvictionLRU(t *testing.T) {
	// Budget fits ~3 of 5 entries; the janitor must keep the most
	// recently used ones (mtime order).
	s, err := OpenDisk(t.TempDir(), 350)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 100)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 5; i++ {
		key := testKey(10 + i)
		if err := s.Put(key, data); err != nil {
			t.Fatal(err)
		}
		// Stamp strictly increasing mtimes so LRU order is deterministic
		// even on filesystems with coarse timestamps.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.path(key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	s.Janitor()
	st := s.Stats()
	if st.Bytes > 350 {
		t.Errorf("janitor left %d bytes over the 350 budget", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	// The newest entry must have survived; the oldest must be gone.
	if _, err := s.Get(testKey(14)); err != nil {
		t.Errorf("most recently written entry evicted: %v", err)
	}
	if _, err := s.Get(testKey(10)); !errors.Is(err, ErrNotFound) {
		t.Errorf("least recently used entry survived: %v", err)
	}
}

func TestDiskStoreJanitorSweepsStrandedTemp(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(20)
	if err := s.Put(key, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer that crashed mid-Put: a temp file in the shard
	// directory, older than any plausible in-flight write.
	shard := filepath.Dir(s.path(key))
	tmp := filepath.Join(shard, tmpPrefix+"crashed-123")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	s.Janitor()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("janitor left the stranded temp file")
	}
	if _, err := s.Get(key); err != nil {
		t.Errorf("janitor removed a committed entry: %v", err)
	}
}

func TestDiskStoreFreshTempSurvivesJanitor(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(shard, tmpPrefix+"inflight-1")
	if err := os.WriteFile(tmp, []byte("being written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Janitor()
	if _, err := os.Stat(tmp); err != nil {
		t.Error("janitor deleted a temp file younger than TmpMaxAge (racing an in-flight write)")
	}
}

func TestDiskStoreOpenRunsJanitor(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(30)
	if err := s1.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(s1.path(key))
	tmp := filepath.Join(shard, tmpPrefix+"stale")
	if err := os.WriteFile(tmp, []byte("p"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-3 * time.Hour)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("OpenDisk did not sweep the stale temp file")
	}
}

func TestDiskStoreInvalidKeys(t *testing.T) {
	s, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "a", "../../etc/passwd", "a/b", "k\x00y", strings.Repeat("x", 300)} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, err := s.Get(key); err == nil {
			t.Errorf("Get(%q) accepted an invalid key", key)
		}
	}
}

func TestDiskStoreStatsCounters(t *testing.T) {
	s, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(40)
	s.Get(key)              // miss
	s.Put(key, []byte("v")) // put
	s.Get(key)              // hit
	st := s.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want gets=2 hits=1 misses=1 puts=1", st)
	}
	if st.Budget != DefaultDiskBudget {
		t.Errorf("budget = %d, want default %d", st.Budget, DefaultDiskBudget)
	}
}
