package artifact

import (
	"fmt"
	"sort"

	"mat2c/internal/vm"
)

// Artifact framing. formatVersion covers the section layout below; the
// caller-supplied key version (mat2c's cacheKeyVersion) is additionally
// baked into every encoding so artifacts written under a different
// cache-key semantics — which would be addressed by different keys
// anyway — can never be resurrected by accident.
const (
	artifactMagic   = "M2CA"
	artifactVersion = 1
)

// StageTime is one pipeline stage's recorded wall time, in the durable
// form (nanoseconds, not time.Duration, to keep the wire layout
// explicit).
type StageTime struct {
	Stage string
	Nanos int64
}

// Artifact is the durable form of one compilation: everything a serving
// replica needs to answer /compile and /run for the same content
// address without re-running the pipeline. Rendered text (IR listing,
// normalized AST, C prototype) is stored pre-printed: the IR and AST
// object graphs are not serialized, only their user-visible renderings,
// which keeps the format small and the decoder simple.
type Artifact struct {
	// Key is the content address the artifact was stored under
	// (mat2c.CacheKey hex). Decode rejects an artifact whose embedded
	// key differs from the requested one, so a misfiled or renamed
	// store entry degrades to a miss instead of serving wrong code.
	Key string
	// Entry is the compiled entry-function name; Target the processor
	// description name (informational; the description itself is keyed).
	Entry  string
	Target string

	// Program is the compiled VM program.
	Program *vm.Program

	// C artifacts and rendered listings.
	CSource    string
	CHeader    string
	CPrototype string
	IRText     string
	ASTText    string

	// Diagnostics and pipeline statistics.
	Warnings        []string
	VectorizedLoops int
	Intrinsics      map[string]int
	Stages          []StageTime
}

// Encode serializes the artifact under the given cache-key version.
// The encoding is deterministic: map sections are sorted, so equal
// artifacts produce equal bytes (content-addressed stores may rely on
// it).
func Encode(a *Artifact, keyVersion string) []byte {
	var w writer
	w.buf = append(w.buf, artifactMagic...)
	w.u32(artifactVersion)
	w.str(keyVersion)
	w.str(a.Key)
	w.str(a.Entry)
	w.str(a.Target)
	w.str(a.CSource)
	w.str(a.CHeader)
	w.str(a.CPrototype)
	w.str(a.IRText)
	w.str(a.ASTText)
	w.u32(uint32(len(a.Warnings)))
	for _, s := range a.Warnings {
		w.str(s)
	}
	w.u32(uint32(a.VectorizedLoops))
	names := make([]string, 0, len(a.Intrinsics))
	for name := range a.Intrinsics {
		names = append(names, name)
	}
	sort.Strings(names)
	w.u32(uint32(len(names)))
	for _, name := range names {
		w.str(name)
		w.i64(int64(a.Intrinsics[name]))
	}
	w.u32(uint32(len(a.Stages)))
	for _, st := range a.Stages {
		w.str(st.Stage)
		w.i64(st.Nanos)
	}
	prog := EncodeProgram(a.Program)
	w.u32(uint32(len(prog)))
	w.buf = append(w.buf, prog...)
	return w.bytes()
}

// Decode rebuilds an artifact, requiring both the format version and
// the cache-key version to match this build. Arbitrary bytes produce an
// error wrapping ErrCorrupt; a well-formed artifact from another
// version produces one wrapping ErrVersion. Neither ever panics.
func Decode(data []byte, keyVersion string) (*Artifact, error) {
	r, err := checkWrapper(data, artifactMagic)
	if err != nil {
		return nil, err
	}
	if v := r.u32(); r.err == nil && v != artifactVersion {
		return nil, fmt.Errorf("%w: artifact format v%d, this build reads v%d", ErrVersion, v, artifactVersion)
	}
	if kv := r.str(); r.err == nil && kv != keyVersion {
		return nil, fmt.Errorf("%w: cache-key version %q, this build uses %q", ErrVersion, kv, keyVersion)
	}
	a := &Artifact{}
	a.Key = r.str()
	a.Entry = r.str()
	a.Target = r.str()
	a.CSource = r.str()
	a.CHeader = r.str()
	a.CPrototype = r.str()
	a.IRText = r.str()
	a.ASTText = r.str()
	if n := r.count(4); r.err == nil && n > 0 {
		a.Warnings = make([]string, n)
		for i := range a.Warnings {
			a.Warnings[i] = r.str()
		}
	}
	a.VectorizedLoops = int(r.u32())
	if n := r.count(4 + 8); r.err == nil && n > 0 {
		a.Intrinsics = make(map[string]int, n)
		for i := 0; i < n; i++ {
			name := r.str()
			a.Intrinsics[name] = int(r.i64())
		}
	}
	if n := r.count(4 + 8); r.err == nil && n > 0 {
		a.Stages = make([]StageTime, n)
		for i := range a.Stages {
			a.Stages[i].Stage = r.str()
			a.Stages[i].Nanos = r.i64()
		}
	}
	progLen := int(r.u32())
	progBytes := r.take(progLen)
	if err := r.done(); err != nil {
		return nil, err
	}
	prog, err := DecodeProgram(progBytes)
	if err != nil {
		// The embedded program is framed and checksummed independently;
		// its ErrVersion still surfaces as such so a program-format bump
		// invalidates artifacts the same observable way.
		return nil, fmt.Errorf("embedded program: %w", err)
	}
	a.Program = prog
	return a, nil
}
