package artifact

import "errors"

// ErrNotFound reports a key the store has no entry for. Stores return
// it (wrapped or bare) from Get and Delete; callers treat it as a
// clean miss.
var ErrNotFound = errors.New("artifact: not found")

// Store is a persistent byte store keyed by content address. The cache
// layer sits a process-local LRU in front of one: Get on a memory miss,
// asynchronous Put on compile, Delete when an entry decodes corrupt.
//
// Implementations must be safe for concurrent use by one process and
// must tolerate concurrent use of the same backing storage by multiple
// processes for identical keys — entries are content-addressed, so
// racing writers store identical bytes and any winner is correct.
type Store interface {
	// Get returns the bytes stored under key, or an error wrapping
	// ErrNotFound when there is no entry.
	Get(key string) ([]byte, error)
	// Put durably stores data under key, atomically: a reader (or a
	// crash) mid-Put observes either nothing or the full entry.
	Put(key string, data []byte) error
	// Delete removes the entry (ErrNotFound when absent).
	Delete(key string) error
	// Len reports the number of stored entries.
	Len() (int, error)
}

// Checker is optionally implemented by stores that can answer "is this
// key present?" more cheaply than a full Get. The cache uses it to
// avoid re-publishing entries a shared remote tier already holds.
type Checker interface {
	// Has reports whether an entry exists under key without fetching it.
	Has(key string) (bool, error)
}

// Stats is a point-in-time snapshot of a store's traffic and occupancy,
// surfaced through the cache tier into /metrics. The trailing fields
// are populated only by stores they apply to (a network store's
// retries, breaker, and byte counters; a corrupt-frame counter) and
// stay absent from the JSON for stores that never touch them.
type Stats struct {
	Gets      uint64 `json:"gets"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"put_errors"`
	Deletes   uint64 `json:"deletes"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Budget    int64  `json:"budget_bytes"`

	// Network-store extensions (see internal/artifact/remote).
	Retries      uint64 `json:"retries,omitempty"`
	DecodeErrors uint64 `json:"decode_errors,omitempty"`
	Unavailable  uint64 `json:"unavailable,omitempty"`
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`
	BreakerState string `json:"breaker_state,omitempty"`
	BytesIn      int64  `json:"bytes_in,omitempty"`
	BytesOut     int64  `json:"bytes_out,omitempty"`
}

// StatsReporter is optionally implemented by stores that track their
// own traffic counters (DiskStore and the remote client do).
type StatsReporter interface {
	Stats() Stats
}
