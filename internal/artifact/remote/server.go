package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"mat2c/internal/artifact"
)

// Server exposes an artifact.Store over the blob protocol. It is an
// http.Handler factory: Mount registers its routes on a mux under a
// prefix (mat2cd uses /artifact), so the fleet coordinator's existing
// HTTP listener doubles as the cache origin.
//
// The server trusts nothing from the wire: keys are validated, PUT
// bodies must carry an exact Content-Length and a matching SHA-256
// trailer, and entries over the byte bound are refused with 507 before
// a byte is buffered. All handlers are safe for concurrent use (the
// underlying stores are).
type Server struct {
	store artifact.Store
	max   int64 // payload byte bound per entry

	mu    sync.Mutex
	stats artifact.Stats
}

// NewServer wraps store; maxEntryBytes bounds one entry's payload
// (DefaultMaxEntryBytes when <= 0).
func NewServer(store artifact.Store, maxEntryBytes int64) *Server {
	if maxEntryBytes <= 0 {
		maxEntryBytes = DefaultMaxEntryBytes
	}
	return &Server{store: store, max: maxEntryBytes}
}

// Mount registers the blob routes on mux under prefix (no trailing
// slash, e.g. "/artifact"). The stats document is served at the bare
// prefix; entries at {prefix}/{key}.
func (s *Server) Mount(mux *http.ServeMux, prefix string) {
	mux.HandleFunc("GET "+prefix+"/{key}", s.handleGet) // net/http routes HEAD through GET patterns
	mux.HandleFunc("PUT "+prefix+"/{key}", s.handlePut)
	mux.HandleFunc("DELETE "+prefix+"/{key}", s.handleDelete)
	mux.HandleFunc("GET "+prefix, s.handleStats)
}

// Handler returns a standalone handler with the routes mounted at
// "/artifact" (tests and single-purpose origin processes).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Mount(mux, "/artifact")
	return mux
}

// Stats snapshots the server-side wire counters. DecodeErrors counts
// PUT bodies rejected for a bad frame (checksum trailer mismatch,
// Content-Length violations).
func (s *Server) Stats() artifact.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Server) bump(f func(*artifact.Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// blobError mirrors the service's JSON error shape so artifact and API
// errors read the same in logs and tests.
func blobError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) key(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if err := artifact.ValidKey(key); err != nil {
		blobError(w, http.StatusBadRequest, "%v", err)
		return "", false
	}
	return key, true
}

// handleGet serves GET and HEAD: the framed entry (payload + SHA-256
// trailer) with an exact Content-Length, or 404 on a miss. HEAD pays
// the same store read — entries are small and the store bumps recency —
// but sends only the headers.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.key(w, r)
	if !ok {
		return
	}
	s.bump(func(st *artifact.Stats) { st.Gets++ })
	data, err := s.store.Get(key)
	if err != nil {
		s.bump(func(st *artifact.Stats) { st.Misses++ })
		if errors.Is(err, artifact.ErrNotFound) {
			blobError(w, http.StatusNotFound, "no artifact under %s", key)
		} else {
			blobError(w, http.StatusInternalServerError, "artifact read failed: %v", err)
		}
		return
	}
	s.bump(func(st *artifact.Stats) { st.Hits++ })
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(framedLen(data)))
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	if n, err := w.Write(frame(data)); err == nil {
		s.bump(func(st *artifact.Stats) { st.BytesOut += int64(n) })
	}
}

// handlePut stores one framed entry. The body must declare its exact
// length (411 otherwise), fit the entry bound (507 otherwise — the
// origin refuses to blow its budget on one entry), and carry a valid
// SHA-256 trailer (400 otherwise). Storage failures are 507: the
// origin is alive but cannot take the bytes.
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key, ok := s.key(w, r)
	if !ok {
		return
	}
	cl := r.ContentLength
	switch {
	case cl < 0:
		blobError(w, http.StatusLengthRequired, "PUT requires an exact Content-Length")
		return
	case cl <= trailerSize:
		s.bump(func(st *artifact.Stats) { st.DecodeErrors++ })
		blobError(w, http.StatusBadRequest, "framed body must exceed its %d-byte checksum trailer", trailerSize)
		return
	case cl > s.max+trailerSize:
		// Refused before reading: an oversized (or forged) Content-Length
		// never makes the origin buffer it.
		s.bump(func(st *artifact.Stats) { st.PutErrors++ })
		blobError(w, http.StatusInsufficientStorage, "entry of %d bytes exceeds the %d-byte bound", cl-trailerSize, s.max)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, cl+1))
	if err != nil {
		s.bump(func(st *artifact.Stats) { st.PutErrors++ })
		blobError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) != cl {
		s.bump(func(st *artifact.Stats) { st.DecodeErrors++ })
		blobError(w, http.StatusBadRequest, "body length %d disagrees with Content-Length %d", len(body), cl)
		return
	}
	payload, err := unframe(body)
	if err != nil {
		s.bump(func(st *artifact.Stats) { st.DecodeErrors++ })
		blobError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.bump(func(st *artifact.Stats) { st.Puts++; st.BytesIn += int64(len(body)) })
	if err := s.store.Put(key, payload); err != nil {
		s.bump(func(st *artifact.Stats) { st.PutErrors++ })
		blobError(w, http.StatusInsufficientStorage, "store rejected %s: %v", key, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	key, ok := s.key(w, r)
	if !ok {
		return
	}
	s.bump(func(st *artifact.Stats) { st.Deletes++ })
	if err := s.store.Delete(key); err != nil {
		if errors.Is(err, artifact.ErrNotFound) {
			blobError(w, http.StatusNotFound, "no artifact under %s", key)
		} else {
			blobError(w, http.StatusInternalServerError, "delete failed: %v", err)
		}
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	rep := StatsReply{Server: s.Stats()}
	if sr, ok := s.store.(artifact.StatsReporter); ok {
		st := sr.Stats()
		rep.Store = &st
	}
	if n, err := s.store.Len(); err == nil {
		rep.Entries = n
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}
