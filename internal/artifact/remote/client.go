package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"mat2c/internal/artifact"
)

// ErrUnavailable marks operations refused or abandoned because the
// remote store is unreachable — a transport failure, an exhausted retry
// budget, or a fast-fail while the circuit breaker is open. Callers
// treat it exactly like a miss; it exists so stats and tests can tell
// "the entry is not there" from "we could not ask".
var ErrUnavailable = errors.New("artifact remote: store unavailable")

// Defaults for Options. Chosen so a dead remote costs a request at most
// one op-timeout per attempt until the breaker trips, and nothing at
// all afterwards: connection refusals fail in microseconds, only a
// hung origin pays the full OpTimeout.
const (
	DefaultOpTimeout        = 2 * time.Second
	DefaultMaxAttempts      = 3
	DefaultBackoffBase      = 50 * time.Millisecond
	DefaultBackoffMax       = 500 * time.Millisecond
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

// Options tunes a RemoteStore. Zero values select the defaults above.
type Options struct {
	// OpTimeout bounds each HTTP attempt (not the whole op).
	OpTimeout time.Duration
	// MaxAttempts bounds attempts per operation; transient failures
	// (transport errors, 5xx) retry with jittered backoff, permanent
	// outcomes (404, 400, 507, corrupt frames) do not.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the exponential retry delay.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive failed attempts trip the breaker
	// open; while open every op fails fast with ErrUnavailable until
	// BreakerCooldown has passed, then one half-open probe decides
	// between closing it and re-opening for another cooldown.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxEntryBytes bounds one entry's payload on receive
	// (DefaultMaxEntryBytes when <= 0); a response claiming or carrying
	// more is corrupt, never buffered whole.
	MaxEntryBytes int64
	// Client issues the HTTP requests (default: a fresh client; each
	// attempt is bounded by its own context, so no Client.Timeout is
	// needed).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.OpTimeout <= 0 {
		o.OpTimeout = DefaultOpTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.MaxEntryBytes <= 0 {
		o.MaxEntryBytes = DefaultMaxEntryBytes
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// Breaker states.
const (
	stClosed = iota
	stOpen
	stHalfOpen
)

// RemoteStore is an artifact.Store client against a blob-protocol
// server. It is safe for concurrent use. Every failure mode degrades to
// an error the cache layer treats as a miss; a response that fails the
// frame checksum (or lies about its length) is classified as corrupt
// (errors.Is artifact.ErrCorrupt) and counted, so a hostile or broken
// origin is indistinguishable from an empty one.
type RemoteStore struct {
	base string
	opt  Options

	mu          sync.Mutex
	stats       artifact.Stats
	state       int
	consecutive int       // failed attempts since the last success
	openedAt    time.Time // when the breaker last tripped
	probing     bool      // a half-open probe is in flight
}

// New builds a client for the blob endpoint at base (e.g.
// "http://coordinator:8723/artifact", no trailing slash).
func New(base string, opt Options) *RemoteStore {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &RemoteStore{base: base, opt: opt.withDefaults()}
}

// Base returns the endpoint URL the client was built with.
func (r *RemoteStore) Base() string { return r.base }

// Stats snapshots the client-side traffic counters plus breaker state.
func (r *RemoteStore) Stats() artifact.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	switch r.state {
	case stOpen:
		st.BreakerState = "open"
	case stHalfOpen:
		st.BreakerState = "half-open"
	default:
		st.BreakerState = "closed"
	}
	return st
}

func (r *RemoteStore) bump(f func(*artifact.Stats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// allow reports whether an operation may hit the wire right now, and
// transitions open → half-open once the cooldown has passed (claiming
// the single probe slot for the caller).
func (r *RemoteStore) allow() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case stClosed:
		return true
	case stOpen:
		if time.Since(r.openedAt) < r.opt.BreakerCooldown {
			return false
		}
		r.state = stHalfOpen
		r.probing = true
		return true
	default: // half-open: exactly one probe at a time
		if r.probing {
			return false
		}
		r.probing = true
		return true
	}
}

// success resets the breaker: any completed round-trip (including a
// clean 404) proves the origin healthy.
func (r *RemoteStore) success() {
	r.mu.Lock()
	r.state = stClosed
	r.consecutive = 0
	r.probing = false
	r.mu.Unlock()
}

// failure records one failed attempt; the threshold (or any failure
// while half-open) trips the breaker open for a fresh cooldown.
func (r *RemoteStore) failure() {
	r.mu.Lock()
	r.probing = false
	r.consecutive++
	if r.state == stHalfOpen || r.consecutive >= r.opt.BreakerThreshold {
		if r.state != stOpen {
			r.stats.BreakerTrips++
		}
		r.state = stOpen
		r.openedAt = time.Now()
		r.consecutive = 0
	}
	r.mu.Unlock()
}

func (r *RemoteStore) tripped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == stOpen
}

// backoff returns the jittered exponential delay before retry n
// (0-based), uniform in [0.5x, 1.5x) to de-synchronize a fleet
// retrying against one origin.
func (r *RemoteStore) backoff(n int) time.Duration {
	d := r.opt.BackoffBase << uint(n)
	if d > r.opt.BackoffMax || d <= 0 {
		d = r.opt.BackoffMax
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// do runs one logical operation through the breaker and retry policy.
// attempt performs a single wire round-trip under its context and
// reports whether a failure is worth retrying. A nil error or one
// wrapping artifact.ErrNotFound counts as a healthy round-trip.
func (r *RemoteStore) do(op string, attempt func(ctx context.Context) (retryable bool, err error)) error {
	if !r.allow() {
		r.bump(func(st *artifact.Stats) { st.Unavailable++ })
		return fmt.Errorf("%w: %s: circuit open", ErrUnavailable, op)
	}
	var lastErr error
	for i := 0; i < r.opt.MaxAttempts; i++ {
		if i > 0 {
			time.Sleep(r.backoff(i - 1))
			r.bump(func(st *artifact.Stats) { st.Retries++ })
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.opt.OpTimeout)
		retryable, err := attempt(ctx)
		cancel()
		if err == nil || errors.Is(err, artifact.ErrNotFound) {
			r.success()
			return err
		}
		r.failure()
		lastErr = err
		if !retryable || r.tripped() {
			break
		}
	}
	return lastErr
}

func (r *RemoteStore) url(key string) string { return r.base + "/" + key }

// transient wraps a transport-level failure so exhausted retries
// surface as ErrUnavailable (a miss), never as a request error.
func transient(op, key string, err error) error {
	return fmt.Errorf("%w: %s %s: %v", ErrUnavailable, op, key, err)
}

// Get fetches and verifies one entry. 404 returns artifact.ErrNotFound
// (a clean miss); a frame violation returns artifact.ErrCorrupt (the
// cache counts it and treats it as a miss); transport failures and an
// open breaker return ErrUnavailable.
func (r *RemoteStore) Get(key string) ([]byte, error) {
	if err := artifact.ValidKey(key); err != nil {
		return nil, err
	}
	r.bump(func(st *artifact.Stats) { st.Gets++ })
	var payload []byte
	err := r.do("get", func(ctx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url(key), nil)
		if err != nil {
			return false, err
		}
		resp, err := r.opt.Client.Do(req)
		if err != nil {
			return true, transient("get", key, err)
		}
		defer func() {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			resp.Body.Close()
		}()
		switch {
		case resp.StatusCode == http.StatusOK:
		case resp.StatusCode == http.StatusNotFound:
			return false, fmt.Errorf("%w: %s", artifact.ErrNotFound, key)
		case resp.StatusCode >= 500:
			return true, transient("get", key, fmt.Errorf("status %d", resp.StatusCode))
		default:
			return false, fmt.Errorf("artifact remote: get %s: status %d", key, resp.StatusCode)
		}
		limit := r.opt.MaxEntryBytes + trailerSize
		if resp.ContentLength > limit {
			// A forged Content-Length is rejected before buffering.
			return false, fmt.Errorf("%w: advertised %d bytes exceeds the %d-byte entry bound", artifact.ErrCorrupt, resp.ContentLength, r.opt.MaxEntryBytes)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
		if err != nil {
			// A connection dying mid-body (origin restart) is transient.
			return true, transient("get", key, err)
		}
		if int64(len(body)) > limit {
			return false, fmt.Errorf("%w: body exceeds the %d-byte entry bound", artifact.ErrCorrupt, r.opt.MaxEntryBytes)
		}
		if resp.ContentLength >= 0 && int64(len(body)) != resp.ContentLength {
			return false, fmt.Errorf("%w: body length %d disagrees with Content-Length %d", artifact.ErrCorrupt, len(body), resp.ContentLength)
		}
		payload, err = unframe(body)
		return false, err
	})
	if err != nil {
		r.bump(func(st *artifact.Stats) {
			st.Misses++
			if errors.Is(err, artifact.ErrCorrupt) {
				st.DecodeErrors++
			}
		})
		return nil, err
	}
	r.bump(func(st *artifact.Stats) { st.Hits++; st.BytesIn += framedLen(payload) })
	return payload, nil
}

// Has probes for an entry with HEAD; errors (including an open
// breaker) mean "could not ask", not "absent".
func (r *RemoteStore) Has(key string) (bool, error) {
	if err := artifact.ValidKey(key); err != nil {
		return false, err
	}
	var has bool
	err := r.do("head", func(ctx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodHead, r.url(key), nil)
		if err != nil {
			return false, err
		}
		resp, err := r.opt.Client.Do(req)
		if err != nil {
			return true, transient("head", key, err)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			has = true
			return false, nil
		case resp.StatusCode == http.StatusNotFound:
			has = false
			return false, nil
		case resp.StatusCode >= 500:
			return true, transient("head", key, fmt.Errorf("status %d", resp.StatusCode))
		default:
			return false, fmt.Errorf("artifact remote: head %s: status %d", key, resp.StatusCode)
		}
	})
	return has, err
}

// Put frames and uploads one entry. Entries over the local bound are
// refused client-side; a 507 from the origin (its budget, its bound)
// is a permanent per-entry failure — counted, not retried.
func (r *RemoteStore) Put(key string, data []byte) error {
	if err := artifact.ValidKey(key); err != nil {
		return err
	}
	r.bump(func(st *artifact.Stats) { st.Puts++ })
	if int64(len(data)) > r.opt.MaxEntryBytes {
		r.bump(func(st *artifact.Stats) { st.PutErrors++ })
		return fmt.Errorf("artifact remote: put %s: entry of %d bytes exceeds the %d-byte bound", key, len(data), r.opt.MaxEntryBytes)
	}
	framed := frame(data)
	err := r.do("put", func(ctx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.url(key), bytes.NewReader(framed))
		if err != nil {
			return false, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := r.opt.Client.Do(req)
		if err != nil {
			return true, transient("put", key, err)
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK:
			return false, nil
		case resp.StatusCode >= 500 && resp.StatusCode != http.StatusInsufficientStorage:
			return true, transient("put", key, fmt.Errorf("status %d", resp.StatusCode))
		default:
			return false, fmt.Errorf("artifact remote: put %s: status %d: %s", key, resp.StatusCode, bytes.TrimSpace(msg))
		}
	})
	if err != nil {
		r.bump(func(st *artifact.Stats) { st.PutErrors++ })
		return err
	}
	r.bump(func(st *artifact.Stats) { st.BytesOut += int64(len(framed)) })
	return nil
}

// Delete removes one entry (artifact.ErrNotFound when absent).
func (r *RemoteStore) Delete(key string) error {
	if err := artifact.ValidKey(key); err != nil {
		return err
	}
	r.bump(func(st *artifact.Stats) { st.Deletes++ })
	return r.do("delete", func(ctx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, r.url(key), nil)
		if err != nil {
			return false, err
		}
		resp, err := r.opt.Client.Do(req)
		if err != nil {
			return true, transient("delete", key, err)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK:
			return false, nil
		case resp.StatusCode == http.StatusNotFound:
			return false, fmt.Errorf("%w: %s", artifact.ErrNotFound, key)
		case resp.StatusCode >= 500:
			return true, transient("delete", key, fmt.Errorf("status %d", resp.StatusCode))
		default:
			return false, fmt.Errorf("artifact remote: delete %s: status %d", key, resp.StatusCode)
		}
	})
}

// Len asks the origin's stats document for its committed entry count.
func (r *RemoteStore) Len() (int, error) {
	var n int
	err := r.do("stats", func(ctx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base, nil)
		if err != nil {
			return false, err
		}
		resp, err := r.opt.Client.Do(req)
		if err != nil {
			return true, transient("stats", "", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			return resp.StatusCode >= 500, fmt.Errorf("artifact remote: stats: status %d", resp.StatusCode)
		}
		var rep StatsReply
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rep); err != nil {
			return false, fmt.Errorf("artifact remote: stats: %v", err)
		}
		n = rep.Entries
		return false, nil
	})
	return n, err
}
