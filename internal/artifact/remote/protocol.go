// Package remote shares one artifact store across a fleet: an HTTP
// server that exposes any artifact.Store (in practice the coordinator's
// DiskStore) over a small content-addressed blob protocol, and a
// RemoteStore client that implements artifact.Store against it so it
// slots behind mat2c.Cache as a third tier (mem → local disk → remote).
//
// The protocol is four verbs plus a stats document, all rooted at one
// prefix (mat2cd mounts it at /artifact):
//
//	GET    {prefix}/{key}  200 framed entry | 404 miss
//	HEAD   {prefix}/{key}  200 (Content-Length of the framed entry) | 404
//	PUT    {prefix}/{key}  204 stored | 400 bad frame | 507 over budget
//	DELETE {prefix}/{key}  204 deleted | 404 miss
//	GET    {prefix}        JSON stats (server traffic + backing store)
//
// Every entry body on the wire — GET responses and PUT requests alike —
// is framed as the payload followed by a 32-byte SHA-256 trailer over
// the payload, with Content-Length covering both. Both ends verify the
// trailer before trusting a byte, so a truncated, bit-flipped, or
// hostile body is detected at the transport seam (on top of the
// artifact codec's own checksum behind it). Keys are content addresses:
// racing writers store identical bytes, so the protocol needs no
// conditional requests.
//
// Failure semantics are deliberately lopsided: the server is strict
// (a bad frame is a 400, an over-budget entry a 507), the client is
// forgiving (any failure — network, timeout, corrupt frame, open
// circuit breaker — degrades to a miss, and the cache above recompiles).
// A remote outage must never fail a request; the breaker bounds how
// long it can slow one.
package remote

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"mat2c/internal/artifact"
)

// DefaultMaxEntryBytes bounds one framed entry on the wire (64 MiB).
// Real artifacts are a few KiB to a few hundred KiB; the bound exists
// so a hostile or corrupt Content-Length cannot make either end buffer
// unbounded memory.
const DefaultMaxEntryBytes = 64 << 20

// trailerSize is the SHA-256 trailer appended to every entry body.
const trailerSize = sha256.Size

// frame appends the SHA-256 trailer to payload, producing the wire form.
func frame(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(payload)+trailerSize)
	out = append(out, payload...)
	return append(out, sum[:]...)
}

// framedLen is the wire size of a payload.
func framedLen(payload []byte) int64 { return int64(len(payload)) + trailerSize }

// unframe verifies and strips the SHA-256 trailer. Any violation —
// body shorter than a trailer, trailer mismatch — wraps
// artifact.ErrCorrupt so callers classify it as corruption, not a miss.
func unframe(body []byte) ([]byte, error) {
	if len(body) < trailerSize {
		return nil, fmt.Errorf("%w: framed body shorter than its checksum trailer (%d bytes)", artifact.ErrCorrupt, len(body))
	}
	payload, trailer := body[:len(body)-trailerSize], body[len(body)-trailerSize:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("%w: checksum trailer mismatch", artifact.ErrCorrupt)
	}
	return payload, nil
}

// StatsReply is the stats document served at GET {prefix}: the server's
// own wire traffic, the backing store's counters when it reports them,
// and the committed entry count.
type StatsReply struct {
	Server  artifact.Stats  `json:"server"`
	Store   *artifact.Stats `json:"store,omitempty"`
	Entries int             `json:"entries"`
}
