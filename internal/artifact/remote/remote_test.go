package remote

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mat2c/internal/artifact"
)

// fastOptions keeps retry and breaker delays test-sized.
func fastOptions() Options {
	return Options{
		OpTimeout:        2 * time.Second,
		MaxAttempts:      3,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	}
}

func openOrigin(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	store, err := artifact.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, 0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func testClient(t *testing.T, ts *httptest.Server, opt Options) *RemoteStore {
	t.Helper()
	return New(ts.URL+"/artifact", opt)
}

const testKey = "abcdef0123456789"

// --- framing ---

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{{}, []byte("x"), bytes.Repeat([]byte{0xA5}, 4096)} {
		got, err := unframe(frame(payload))
		if err != nil {
			t.Fatalf("unframe(frame(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip of %d bytes changed the payload", len(payload))
		}
	}
}

func TestUnframeRejectsCorruption(t *testing.T) {
	framed := frame([]byte("the quick brown fox"))
	cases := map[string][]byte{
		"short body":     framed[:trailerSize-1],
		"empty body":     {},
		"flipped byte":   append(append([]byte{}, framed[0]^0x01), framed[1:]...),
		"flipped sum":    append(append([]byte{}, framed[:len(framed)-1]...), framed[len(framed)-1]^0x80),
		"truncated":      framed[:len(framed)-5],
		"extra byte":     append(append([]byte{}, framed...), 0),
		"trailer only":   framed[len(framed)-trailerSize:],
		"zeroed trailer": append(append([]byte{}, framed[:len(framed)-trailerSize]...), make([]byte, trailerSize)...),
	}
	for name, body := range cases {
		if _, err := unframe(body); !errors.Is(err, artifact.ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// --- server semantics ---

func TestServerGetPutDelete(t *testing.T) {
	_, ts := openOrigin(t)
	c := testClient(t, ts, fastOptions())
	payload := []byte("compiled artifact bytes")

	if _, err := c.Get(testKey); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("get before put: %v, want ErrNotFound", err)
	}
	if has, err := c.Has(testKey); err != nil || has {
		t.Fatalf("has before put: %v %v, want false", has, err)
	}
	if err := c.Put(testKey, payload); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get(testKey); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get after put: %q %v", got, err)
	}
	if has, err := c.Has(testKey); err != nil || !has {
		t.Fatalf("has after put: %v %v, want true", has, err)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("len: %d %v, want 1", n, err)
	}
	if err := c.Delete(testKey); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(testKey); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.BreakerState != "closed" {
		t.Fatalf("client stats: %+v", st)
	}
	if st.BytesIn != framedLen(payload) || st.BytesOut != framedLen(payload) {
		t.Fatalf("byte counters: in=%d out=%d want %d", st.BytesIn, st.BytesOut, framedLen(payload))
	}
}

func TestServerRejectsBadKeys(t *testing.T) {
	_, ts := openOrigin(t)
	for _, key := range []string{"a", "bad/key", "k", strings.Repeat("x", 300)} {
		resp, err := http.Get(ts.URL + "/artifact/" + key)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// Path traversal characters never reach the handler (the mux 404s
		// multi-segment paths); everything else is the handler's 400.
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Errorf("key %q: status %d", key, resp.StatusCode)
		}
	}
}

func TestServerPutSemantics(t *testing.T) {
	store, err := artifact.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, 1024) // tiny entry bound
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/artifact/" + testKey

	put := func(body []byte) int {
		req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := put(frame([]byte("ok"))); got != http.StatusNoContent {
		t.Fatalf("valid put: status %d", got)
	}
	if got := put([]byte("too short")); got != http.StatusBadRequest {
		t.Fatalf("short body: status %d, want 400", got)
	}
	bad := frame([]byte("tampered payload"))
	bad[3] ^= 0x40
	if got := put(bad); got != http.StatusBadRequest {
		t.Fatalf("bad trailer: status %d, want 400", got)
	}
	if got := put(frame(bytes.Repeat([]byte{1}, 2048))); got != http.StatusInsufficientStorage {
		t.Fatalf("over-budget put: status %d, want 507", got)
	}
	st := srv.Stats()
	if st.DecodeErrors != 2 || st.PutErrors != 1 || st.Puts != 1 {
		t.Fatalf("server stats after hostile puts: %+v", st)
	}
}

func TestServerHead(t *testing.T) {
	_, ts := openOrigin(t)
	c := testClient(t, ts, fastOptions())
	payload := []byte("head me")
	if err := c.Put(testKey, payload); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Head(ts.URL + "/artifact/" + testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status %d", resp.StatusCode)
	}
	if resp.ContentLength != framedLen(payload) {
		t.Fatalf("HEAD Content-Length %d, want %d", resp.ContentLength, framedLen(payload))
	}
	body, _ := httputilReadAll(resp)
	if len(body) != 0 {
		t.Fatalf("HEAD carried a %d-byte body", len(body))
	}
}

func httputilReadAll(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// --- client failure classification ---

// hostileHandler serves scripted bytes for GET so tests can forge every
// corruption the wire can produce.
type hostileHandler struct {
	mu    sync.Mutex
	serve func(w http.ResponseWriter)
}

func (h *hostileHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	f := h.serve
	h.mu.Unlock()
	f(w)
}

func (h *hostileHandler) set(f func(w http.ResponseWriter)) {
	h.mu.Lock()
	h.serve = f
	h.mu.Unlock()
}

func TestClientWireCorruptionMatrix(t *testing.T) {
	h := &hostileHandler{}
	ts := httptest.NewServer(h)
	defer ts.Close()

	opt := fastOptions()
	opt.MaxEntryBytes = 1 << 16
	good := frame([]byte("payload"))

	cases := []struct {
		name  string
		serve func(w http.ResponseWriter)
	}{
		{"flipped payload byte", func(w http.ResponseWriter) {
			bad := append([]byte{}, good...)
			bad[2] ^= 0x10
			w.Header().Set("Content-Length", fmt.Sprint(len(bad)))
			w.Write(bad)
		}},
		{"wrong checksum trailer", func(w http.ResponseWriter) {
			bad := append([]byte{}, good...)
			bad[len(bad)-1] ^= 0xFF
			w.Header().Set("Content-Length", fmt.Sprint(len(bad)))
			w.Write(bad)
		}},
		{"body shorter than trailer", func(w http.ResponseWriter) {
			w.Header().Set("Content-Length", "5")
			w.Write([]byte("tiny!"))
		}},
		{"oversized content-length", func(w http.ResponseWriter) {
			w.Header().Set("Content-Length", fmt.Sprint(opt.MaxEntryBytes+trailerSize+1))
			// The client must reject on the header alone; serve nothing.
		}},
		{"oversized chunked body", func(w http.ResponseWriter) {
			// No Content-Length: the body itself busts the bound.
			w.Write(frame(bytes.Repeat([]byte{7}, int(opt.MaxEntryBytes)+1)))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(ts.URL+"/artifact", opt)
			h.set(tc.serve)
			_, err := c.Get(testKey)
			if !errors.Is(err, artifact.ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
			st := c.Stats()
			if st.DecodeErrors != 1 || st.Misses != 1 || st.Hits != 0 {
				t.Fatalf("stats after corrupt response: %+v", st)
			}
			// Corruption is permanent per response: no retries burned.
			if st.Retries != 0 {
				t.Fatalf("corrupt response was retried %d times", st.Retries)
			}
		})
	}
}

func TestClientTruncatedBodyDegradesToMiss(t *testing.T) {
	// A Content-Length longer than the actual body makes the client's
	// read fail mid-stream (the server closes the connection) — that is
	// a transient transport failure, retried and then reported
	// unavailable, never a success.
	h := &hostileHandler{}
	h.set(func(w http.ResponseWriter) {
		w.Header().Set("Content-Length", "1000")
		w.Write([]byte("only this much"))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL+"/artifact", fastOptions())
	_, err := c.Get(testKey)
	if err == nil {
		t.Fatal("truncated body produced a successful get")
	}
	if !errors.Is(err, ErrUnavailable) && !errors.Is(err, artifact.ErrCorrupt) {
		t.Fatalf("got %v, want ErrUnavailable or ErrCorrupt", err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var mu sync.Mutex
	fails := 2
	payload := frame([]byte("eventually"))
	h := &hostileHandler{}
	h.set(func(w http.ResponseWriter) {
		mu.Lock()
		n := fails
		fails--
		mu.Unlock()
		if n > 0 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
		w.Write(payload)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL+"/artifact", fastOptions())
	got, err := c.Get(testKey)
	if err != nil || string(got) != "eventually" {
		t.Fatalf("get after transient failures: %q %v", got, err)
	}
	st := c.Stats()
	if st.Retries != 2 || st.Hits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// --- circuit breaker ---

func TestBreakerTripsAndRecovers(t *testing.T) {
	srv, ts := openOrigin(t)
	_ = srv
	opt := fastOptions()
	opt.MaxAttempts = 1 // one attempt per op: trip takes BreakerThreshold ops
	c := testClient(t, ts, opt)
	payload := []byte("survives the outage")
	if err := c.Put(testKey, payload); err != nil {
		t.Fatal(err)
	}

	// Outage: refuse connections by closing the listener's server, but
	// keep the address by pointing the client at a dead port.
	dead := New("http://127.0.0.1:1", opt)
	for i := 0; i < opt.BreakerThreshold; i++ {
		if _, err := dead.Get(testKey); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("attempt %d against dead origin: %v, want ErrUnavailable", i, err)
		}
	}
	st := dead.Stats()
	if st.BreakerState != "open" || st.BreakerTrips != 1 {
		t.Fatalf("after %d failures: state=%s trips=%d", opt.BreakerThreshold, st.BreakerState, st.BreakerTrips)
	}
	// While open: fast-fail without touching the wire.
	start := time.Now()
	if _, err := dead.Get(testKey); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open-breaker get: %v", err)
	}
	if elapsed := time.Since(start); elapsed > opt.OpTimeout/2 {
		t.Fatalf("open breaker still paid %v on the wire", elapsed)
	}
	if got := dead.Stats().Unavailable; got == 0 {
		t.Fatal("fast-fail not counted as unavailable")
	}

	// Recovery: trip a client against the live origin by pointing it at
	// the dead port first is impossible (the URL is fixed), so instead
	// trip the live client via a scripted outage window.
	h := &hostileHandler{}
	outage := true
	var mu sync.Mutex
	h.set(func(w http.ResponseWriter) {
		mu.Lock()
		down := outage
		mu.Unlock()
		if down {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		f := frame(payload)
		w.Header().Set("Content-Length", fmt.Sprint(len(f)))
		w.Write(f)
	})
	hs := httptest.NewServer(h)
	defer hs.Close()
	c2 := New(hs.URL+"/artifact", opt)
	for i := 0; i < opt.BreakerThreshold; i++ {
		c2.Get(testKey)
	}
	if st := c2.Stats(); st.BreakerState != "open" {
		t.Fatalf("breaker state %s, want open", st.BreakerState)
	}
	mu.Lock()
	outage = false
	mu.Unlock()
	time.Sleep(opt.BreakerCooldown + 10*time.Millisecond)
	// First op after cooldown is the half-open probe; it succeeds and
	// closes the breaker.
	if got, err := c2.Get(testKey); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("half-open probe: %q %v", got, err)
	}
	if st := c2.Stats(); st.BreakerState != "closed" {
		t.Fatalf("breaker state after recovery: %s", st.BreakerState)
	}
}

func TestBreakerHalfOpenReopensOnFailure(t *testing.T) {
	opt := fastOptions()
	opt.MaxAttempts = 1
	dead := New("http://127.0.0.1:1", opt)
	for i := 0; i < opt.BreakerThreshold; i++ {
		dead.Get(testKey)
	}
	if st := dead.Stats(); st.BreakerState != "open" || st.BreakerTrips != 1 {
		t.Fatalf("setup: %+v", st)
	}
	time.Sleep(opt.BreakerCooldown + 10*time.Millisecond)
	// The probe fails: back to open, one more trip.
	if _, err := dead.Get(testKey); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("probe against dead origin: %v", err)
	}
	st := dead.Stats()
	if st.BreakerState != "open" || st.BreakerTrips != 2 {
		t.Fatalf("after failed probe: state=%s trips=%d", st.BreakerState, st.BreakerTrips)
	}
}

// --- restart and concurrency ---

// TestServerRestartMidStream kills the origin between requests and
// brings a new one up on the same address: the client degrades to
// misses during the outage and recovers without surfacing an error
// class other than unavailable.
func TestServerRestartMidStream(t *testing.T) {
	store, err := artifact.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hsrv := &http.Server{Handler: NewServer(store, 0).Handler()}
	go hsrv.Serve(ln)

	opt := fastOptions()
	opt.MaxAttempts = 1
	c := New("http://"+addr+"/artifact", opt)
	payload := []byte("survives restarts")
	if err := c.Put(testKey, payload); err != nil {
		t.Fatal(err)
	}
	hsrv.Close()

	// Down: every op degrades, none succeeds, none panics.
	sawUnavailable := false
	for i := 0; i < opt.BreakerThreshold+1; i++ {
		if _, err := c.Get(testKey); errors.Is(err, ErrUnavailable) {
			sawUnavailable = true
		} else if err == nil {
			t.Fatal("get succeeded against a dead origin")
		}
	}
	if !sawUnavailable {
		t.Fatal("outage never classified as unavailable")
	}

	// Restart on the same address over the same store.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	hsrv2 := &http.Server{Handler: NewServer(store, 0).Handler()}
	go hsrv2.Serve(ln2)
	defer hsrv2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(opt.BreakerCooldown)
		if got, err := c.Get(testKey); err == nil {
			if !bytes.Equal(got, payload) {
				t.Fatalf("restarted origin served %q", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after origin restart")
		}
	}
	if st := c.Stats(); st.BreakerState != "closed" {
		t.Fatalf("breaker after recovery: %s", st.BreakerState)
	}
}

// TestConcurrentGetPutOneKey hammers one key from parallel getters and
// putters; run under -race this is the data-race canary for the client
// and server counters.
func TestConcurrentGetPutOneKey(t *testing.T) {
	_, ts := openOrigin(t)
	c := testClient(t, ts, fastOptions())
	payload := []byte("contended entry")
	if err := c.Put(testKey, payload); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := c.Put(testKey, payload); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				got, err := c.Get(testKey)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("get returned %q", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.BreakerState != "closed" || st.DecodeErrors != 0 {
		t.Fatalf("stats after hammering: %+v", st)
	}
}

func TestClientPutOversizedEntry(t *testing.T) {
	_, ts := openOrigin(t)
	opt := fastOptions()
	opt.MaxEntryBytes = 128
	c := testClient(t, ts, opt)
	err := c.Put(testKey, bytes.Repeat([]byte{1}, 256))
	if err == nil {
		t.Fatal("oversized put succeeded")
	}
	if st := c.Stats(); st.PutErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestClientPut507NotRetried(t *testing.T) {
	h := &hostileHandler{}
	var mu sync.Mutex
	calls := 0
	h.set(func(w http.ResponseWriter) {
		mu.Lock()
		calls++
		mu.Unlock()
		w.WriteHeader(http.StatusInsufficientStorage)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := New(ts.URL+"/artifact", fastOptions())
	if err := c.Put(testKey, []byte("refused")); err == nil {
		t.Fatal("507 put reported success")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("507 was retried: %d calls", calls)
	}
}
