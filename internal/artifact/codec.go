// Package artifact defines the durable form of a compilation: a
// versioned, self-describing binary codec for compiled vm.Programs and
// their C artifacts, and a pluggable Store interface with a
// sharded-on-disk implementation. Together they turn the in-process
// compile cache into a two-tier cache whose warm state survives
// restarts and is shareable between fleet replicas (docs/CACHE.md).
//
// The format follows the gopher-lua bytecode dump/load shape: a magic
// header, an explicit format version, length-prefixed fields in a fixed
// order, and a trailing SHA-256 checksum over everything before it.
// Decoding is strict and allocation-bounded: every count is validated
// against the bytes actually remaining before anything is allocated, so
// hostile input can produce an error but never a panic or an
// out-of-memory allocation. The decoder is fuzzed (FuzzDecodeProgram,
// FuzzDecodeArtifact) on exactly that contract.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Typed decode failures. Callers treat both as a cache miss; they are
// distinct so version churn (expected, self-healing) is observable
// separately from corruption (unexpected, worth alerting on).
var (
	// ErrCorrupt reports bytes that are not a well-formed artifact:
	// truncation, checksum mismatch, out-of-range fields, trailing
	// garbage.
	ErrCorrupt = errors.New("artifact: corrupt")
	// ErrVersion reports a well-formed artifact written under a
	// different format version or cache-key version; it decodes cleanly
	// under its own rules but is not usable here.
	ErrVersion = errors.New("artifact: version mismatch")
)

// writer serializes fields into a growing buffer. The zero value is
// ready to use.
type writer struct {
	buf []byte
}

func (w *writer) u8(v byte) { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}
func (w *writer) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}
func (w *writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) c128(v complex128) {
	w.f64(real(v))
	w.f64(imag(v))
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// bytes seals the buffer with the SHA-256 checksum of everything
// written so far and returns the final encoding.
func (w *writer) bytes() []byte {
	sum := sha256.Sum256(w.buf)
	return append(w.buf, sum[:]...)
}

// reader decodes fields with a sticky error. Every accessor returns a
// zero value once an error is recorded, so decoding logic never
// branches on partially-read garbage, and every length is checked
// against the remaining input before the corresponding allocation.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s (offset %d)", ErrCorrupt, fmt.Sprintf(format, args...), r.off)
	}
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail("need %d bytes, have %d", n, r.remaining())
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) c128() complex128 {
	re := r.f64()
	im := r.f64()
	return complex(re, im)
}

// str reads a length-prefixed string. The stated length is validated
// against the remaining bytes before the copy, so a hostile length can
// never allocate beyond the input size.
func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if int64(n) > int64(r.remaining()) {
		r.fail("string length %d exceeds remaining %d", n, r.remaining())
		return ""
	}
	return string(r.take(int(n)))
}

// count reads an element count and bounds it by the bytes remaining:
// each element occupies at least minPer bytes on the wire, so any count
// above remaining/minPer is lying and is rejected before the caller
// allocates a slice for it.
func (r *reader) count(minPer int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if minPer < 1 {
		minPer = 1
	}
	if int64(n) > int64(r.remaining()/minPer) {
		r.fail("count %d exceeds plausible maximum %d", n, r.remaining()/minPer)
		return 0
	}
	return int(n)
}

// enum reads a u8 and bounds it to [0, max].
func (r *reader) enum(name string, max int) int {
	v := int(r.u8())
	if r.err == nil && v > max {
		r.fail("%s %d out of range [0,%d]", name, v, max)
		return 0
	}
	return v
}

// done reports the sticky error, or complains about trailing bytes —
// a well-formed artifact is consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		r.fail("%d trailing bytes", r.remaining())
	}
	return r.err
}

// checkWrapper verifies the outermost framing shared by every artifact
// kind: a 4-byte magic, and a trailing SHA-256 checksum over everything
// before it. It returns the payload between them (magic included, so
// format-version fields stay under the checksum) as a reader positioned
// after the magic.
func checkWrapper(data []byte, magic string) (*reader, error) {
	if len(data) < len(magic)+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %s header+checksum", ErrCorrupt, len(data), magic)
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if string(body[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, string(body[:len(magic)]))
	}
	want := sha256.Sum256(body)
	if string(want[:]) != string(sum) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return &reader{buf: body, off: len(magic)}, nil
}
