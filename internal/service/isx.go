// Instruction-set-extension mining endpoint: POST /isx accepts a base
// target plus mining options, validates them synchronously, and runs
// the miner asynchronously — profiling, candidate enumeration, and
// per-candidate verification can take seconds, so the job follows the
// same lifecycle as /dse. GET /isx/{id} reports progress and, once
// done, the full mining report; DELETE /isx/{id} cancels a running
// mine (the miner observes cancellation between kernels and between
// candidate verifications). GET /isx lists known jobs. In coordinator
// role the per-candidate verification pass is sharded across the fleet
// (planning stays on the coordinator); the report is byte-identical to
// in-process mining.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	mat2c "mat2c"
	"mat2c/internal/dse"
	"mat2c/internal/isx"
)

// maxFinishedISXJobs bounds the finished-job registry.
const maxFinishedISXJobs = 32

// ISXRequest is the POST /isx body.
type ISXRequest struct {
	// Proc is the base target: a built-in name, an embedded description,
	// or a server-side file path (default "dspasip").
	Proc string `json:"proc,omitempty"`
	// Kernels restricts the profiled kernels (default: full suite).
	Kernels []string `json:"kernels,omitempty"`
	// MaxNodes bounds mined pattern size; Top the candidates kept;
	// Scale the profiled problem sizes. Zero values pick the miner's
	// defaults.
	MaxNodes int     `json:"max_nodes,omitempty"`
	Top      int     `json:"top,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	// NoVerify skips the per-candidate recompile-and-measure pass.
	NoVerify bool `json:"no_verify,omitempty"`
}

// ISXAccepted is the POST /isx reply: the job is queued.
type ISXAccepted struct {
	ID     string `json:"id"`
	Status string `json:"status_url"`
}

// ISXStatus is the GET /isx/{id} (and DELETE /isx/{id}) reply.
type ISXStatus struct {
	ID     string      `json:"id"`
	State  string      `json:"state"` // "running", "cancelling", "done", "failed", "cancelled"
	Error  string      `json:"error,omitempty"`
	Report *isx.Report `json:"report,omitempty"`
}

// isxJob is one mining run's lifecycle state.
type isxJob struct {
	id     string
	cancel context.CancelFunc

	mu        sync.Mutex
	done      bool
	cancelled bool
	err       error
	report    *isx.Report
}

func (j *isxJob) status() ISXStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := ISXStatus{ID: j.id}
	switch {
	case !j.done && j.cancelled:
		st.State = "cancelling"
	case !j.done:
		st.State = "running"
	case j.cancelled:
		st.State = "cancelled"
		if j.err != nil {
			st.Error = j.err.Error()
		}
	case j.err != nil:
		st.State = "failed"
		st.Error = j.err.Error()
	default:
		st.State = "done"
		st.Report = j.report
	}
	return st
}

func (s *Server) handleISX(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("isx")
	status := http.StatusAccepted
	defer func() { finish(status, false, false, false) }()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req ISXRequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
			httpError(w, status, "request body exceeds the %d-byte limit", mbe.Limit)
			return
		}
		status = http.StatusBadRequest
		httpError(w, status, "bad request body: %v", err)
		return
	}

	// Validate the target and kernel selection up front so a bad request
	// fails the POST, not the background job.
	spec := req.Proc
	if spec == "" {
		spec = "dspasip"
	}
	proc, err := mat2c.LoadProcessor(spec)
	if err != nil {
		status = http.StatusUnprocessableEntity
		httpError(w, status, "%v", err)
		return
	}
	if err := dse.ValidateKernels(req.Kernels); err != nil {
		status = http.StatusUnprocessableEntity
		httpError(w, status, "%v", err)
		return
	}

	opts := isx.Options{
		Kernels:  req.Kernels,
		MaxNodes: req.MaxNodes,
		Top:      req.Top,
		Scale:    req.Scale,
		NoVerify: req.NoVerify,
	}

	// The job's context descends from the server's jobsCtx so Shutdown
	// cancels running mines; DELETE /isx/{id} cancels just this one.
	jctx, jcancel := context.WithCancel(s.jobsCtx)
	job := s.registerISXJob(jcancel)
	// Coordinator role plans locally and fans candidate verification
	// out across the fleet; both paths share planning, verification,
	// and report assembly, so the reports agree byte for byte.
	mine := isx.MineContext
	if s.coord != nil {
		mine = s.coord.MineISX
	}
	s.metrics.ISXMineStarted()
	go func() {
		defer jcancel()
		rep, err := mine(jctx, proc, opts)
		cancelled := err != nil && isCtxErr(err)
		candidates := 0
		if rep != nil {
			candidates = len(rep.Candidates)
		}
		s.metrics.ISXMineFinished(candidates, err != nil && !cancelled, cancelled)
		job.mu.Lock()
		job.done, job.err, job.report = true, err, rep
		if cancelled {
			job.cancelled = true
		}
		job.mu.Unlock()
		s.retireISXJobs()
	}()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ISXAccepted{ID: job.id, Status: "/isx/" + job.id})
}

// ISXJobSummary is one GET /isx entry: a job's status without its
// report.
type ISXJobSummary struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	Status string `json:"status_url"`
}

// ISXJobList is the GET /isx reply, oldest job first.
type ISXJobList struct {
	Jobs []ISXJobSummary `json:"jobs"`
}

// handleISXList (GET /isx) lists every job the registry still holds,
// in submission order.
func (s *Server) handleISXList(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("isx_list")
	defer func() { finish(http.StatusOK, false, false, false) }()

	s.isxMu.Lock()
	jobs := make([]*isxJob, 0, len(s.isxOrder))
	for _, id := range s.isxOrder {
		if j := s.isxJobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.isxMu.Unlock()

	list := ISXJobList{Jobs: []ISXJobSummary{}}
	for _, j := range jobs {
		st := j.status()
		list.Jobs = append(list.Jobs, ISXJobSummary{
			ID:     st.ID,
			State:  st.State,
			Error:  st.Error,
			Status: "/isx/" + st.ID,
		})
	}
	writeJSON(w, list)
}

func (s *Server) handleISXStatus(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("isx_status")
	status := http.StatusOK
	defer func() { finish(status, false, false, false) }()

	id := r.PathValue("id")
	s.isxMu.Lock()
	job := s.isxJobs[id]
	s.isxMu.Unlock()
	if job == nil {
		status = http.StatusNotFound
		httpError(w, status, "no such ISX job %q", id)
		return
	}
	writeJSON(w, job.status())
}

// handleISXCancel (DELETE /isx/{id}) cancels a running mine.
// Cancelling a finished job is a no-op; the reply is always the job's
// current status.
func (s *Server) handleISXCancel(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("isx_cancel")
	status := http.StatusOK
	defer func() { finish(status, false, false, false) }()

	id := r.PathValue("id")
	s.isxMu.Lock()
	job := s.isxJobs[id]
	s.isxMu.Unlock()
	if job == nil {
		status = http.StatusNotFound
		httpError(w, status, "no such ISX job %q", id)
		return
	}
	job.mu.Lock()
	if !job.done {
		job.cancelled = true
	}
	job.mu.Unlock()
	job.cancel()
	writeJSON(w, job.status())
}

// registerISXJob allocates a job slot under a fresh sequential id.
func (s *Server) registerISXJob(cancel context.CancelFunc) *isxJob {
	s.isxMu.Lock()
	defer s.isxMu.Unlock()
	s.isxSeq++
	job := &isxJob{id: fmt.Sprintf("isx-%d", s.isxSeq), cancel: cancel}
	if s.isxJobs == nil {
		s.isxJobs = map[string]*isxJob{}
	}
	s.isxJobs[job.id] = job
	s.isxOrder = append(s.isxOrder, job.id)
	return job
}

// retireISXJobs drops the oldest finished jobs beyond the registry cap.
func (s *Server) retireISXJobs() {
	s.isxMu.Lock()
	defer s.isxMu.Unlock()
	finished := 0
	for _, id := range s.isxOrder {
		if j := s.isxJobs[id]; j != nil {
			j.mu.Lock()
			if j.done {
				finished++
			}
			j.mu.Unlock()
		}
	}
	if finished <= maxFinishedISXJobs {
		return
	}
	var keep []string
	for _, id := range s.isxOrder {
		j := s.isxJobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		done := j.done
		j.mu.Unlock()
		if done && finished > maxFinishedISXJobs {
			delete(s.isxJobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	s.isxOrder = keep
}
