// Metrics for the compile-and-simulate service: request counters,
// latency histograms per compiler stage, and an in-flight gauge. The
// registry is expvar-style — plain counters snapshotted into one JSON
// document by the /metrics endpoint — and uses only the standard
// library.
package service

import (
	"sync"
	"time"

	mat2c "mat2c"
	"mat2c/internal/vm"
)

// bucketBoundsUS are the histogram upper bounds in microseconds,
// roughly exponential from 50µs to 1s; observations above the last
// bound land in the overflow bucket.
var bucketBoundsUS = []int64{
	50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000,
}

// histogram is a fixed-bucket latency histogram. Guarded by the
// owning Metrics mutex.
type histogram struct {
	count   uint64
	sumUS   int64
	maxUS   int64
	buckets []uint64 // len(bucketBoundsUS)+1; last is overflow
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]uint64, len(bucketBoundsUS)+1)}
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	h.count++
	h.sumUS += us
	if us > h.maxUS {
		h.maxUS = us
	}
	for i, bound := range bucketBoundsUS {
		if us <= bound {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.buckets)-1]++
}

// HistogramSnapshot is the JSON form of one latency histogram. Buckets
// are cumulative-free: Buckets[i].Count observations fell in
// (previous bound, LeUS]; the entry with LeUS == 0 is the overflow
// bucket.
type HistogramSnapshot struct {
	Count   uint64           `json:"count"`
	TotalUS int64            `json:"total_us"`
	AvgUS   int64            `json:"avg_us"`
	MaxUS   int64            `json:"max_us"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one histogram bucket; LeUS 0 marks the overflow
// bucket (observations above every bound).
type BucketSnapshot struct {
	LeUS  int64  `json:"le_us"`
	Count uint64 `json:"count"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, TotalUS: h.sumUS, MaxUS: h.maxUS}
	if h.count > 0 {
		s.AvgUS = h.sumUS / int64(h.count)
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		var le int64
		if i < len(bucketBoundsUS) {
			le = bucketBoundsUS[i]
		}
		s.Buckets = append(s.Buckets, BucketSnapshot{LeUS: le, Count: n})
	}
	return s
}

// endpointStats counts requests for one endpoint.
type endpointStats struct {
	count     uint64
	errors    uint64 // responses with status >= 400
	timeouts  uint64
	cancelled uint64 // client went away (or server shutdown) before completion
	panics    uint64
	latency   *histogram
}

// EndpointSnapshot is the JSON form of one endpoint's counters.
type EndpointSnapshot struct {
	Count     uint64            `json:"count"`
	Errors    uint64            `json:"errors"`
	Timeouts  uint64            `json:"timeouts"`
	Cancelled uint64            `json:"cancelled"`
	Panics    uint64            `json:"panics"`
	Latency   HistogramSnapshot `json:"latency"`
}

// Metrics aggregates service observability state. All methods are safe
// for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	inflight  int64
	requests  map[string]*endpointStats
	stages    map[string]*histogram
	compiles  uint64
	cacheHits uint64

	// vmFaults counts simulator faults not attributable to the request
	// (cycle-budget exhaustion, runtime faults); they map to 500.
	vmFaults uint64
	// targetLoadErrors counts processor descriptions the /targets
	// catalog failed to load (catalog corruption, never silent).
	targetLoadErrors uint64

	// queueShed counts requests shed with 503 + Retry-After because a
	// bounded queue was full, keyed by queue name ("compile"/"run" for
	// the interactive worker pool, "sweep" for a worker's fleet-unit
	// queue).
	queueShed map[string]uint64

	// Design-space exploration counters.
	dseSweeps       uint64
	dseRunning      int64
	dseFailures     uint64
	dseCancelled    uint64
	dseVariants     uint64
	dseCacheLookups uint64
	dseCacheHits    uint64
	dseLastFrontier int

	// Instruction-set-extension mining counters.
	isxMines          uint64
	isxRunning        int64
	isxFailures       uint64
	isxCancelled      uint64
	isxLastCandidates int
}

// NewMetrics returns a registry with every pipeline-stage series
// pre-registered so /metrics exposes a stable shape from the first
// scrape.
func NewMetrics() *Metrics {
	m := &Metrics{
		start:    time.Now(),
		requests: map[string]*endpointStats{},
		stages:   map[string]*histogram{},
	}
	for _, s := range mat2c.StageNames() {
		m.stages[s] = newHistogram()
	}
	return m
}

func (m *Metrics) endpoint(name string) *endpointStats {
	e, ok := m.requests[name]
	if !ok {
		e = &endpointStats{latency: newHistogram()}
		m.requests[name] = e
	}
	return e
}

// RequestStarted bumps the in-flight gauge for one endpoint request;
// call the returned function exactly once when the request finishes,
// with the response status and whether the request timed out, was
// cancelled (client disconnect / server shutdown), or recovered from a
// handler panic.
func (m *Metrics) RequestStarted(name string) func(status int, timedOut, cancelled, panicked bool) {
	m.mu.Lock()
	m.inflight++
	m.mu.Unlock()
	begin := time.Now()
	return func(status int, timedOut, cancelled, panicked bool) {
		d := time.Since(begin)
		m.mu.Lock()
		defer m.mu.Unlock()
		m.inflight--
		e := m.endpoint(name)
		e.count++
		e.latency.observe(d)
		if status >= 400 {
			e.errors++
		}
		if timedOut {
			e.timeouts++
		}
		if cancelled {
			e.cancelled++
		}
		if panicked {
			e.panics++
		}
	}
}

// VMFault counts one simulator fault classified as a server-side error
// (not caused by the request arguments).
func (m *Metrics) VMFault() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.vmFaults++
}

// TargetLoadError counts one processor description that failed to load
// while building the /targets catalog.
func (m *Metrics) TargetLoadError() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.targetLoadErrors++
}

// QueueShed counts one request shed with 503 + Retry-After because the
// named bounded queue was full.
func (m *Metrics) QueueShed(queue string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.queueShed == nil {
		m.queueShed = map[string]uint64{}
	}
	m.queueShed[queue]++
}

// ObserveCompile records one compilation's outcome: the per-stage
// timings of a miss, or a cache hit (which has no stage work).
func (m *Metrics) ObserveCompile(stages []mat2c.StageTime, cacheHit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compiles++
	if cacheHit {
		m.cacheHits++
		return
	}
	for _, st := range stages {
		h, ok := m.stages[st.Stage]
		if !ok {
			h = newHistogram()
			m.stages[st.Stage] = h
		}
		h.observe(st.Duration)
	}
}

// DSESweepStarted counts one exploration launch.
func (m *Metrics) DSESweepStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dseSweeps++
	m.dseRunning++
}

// ObserveDSEVariant records one evaluated variant and its compile-cache
// traffic (called concurrently from sweep workers).
func (m *Metrics) ObserveDSEVariant(lookups, hits int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dseVariants++
	m.dseCacheLookups += uint64(lookups)
	m.dseCacheHits += uint64(hits)
}

// DSESweepFinished records one exploration completing with the given
// frontier size (zero when it failed or was cancelled).
func (m *Metrics) DSESweepFinished(frontierSize int, failed, cancelled bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dseRunning--
	switch {
	case cancelled:
		m.dseCancelled++
	case failed:
		m.dseFailures++
	default:
		m.dseLastFrontier = frontierSize
	}
}

// ISXMineStarted counts one mining launch.
func (m *Metrics) ISXMineStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.isxMines++
	m.isxRunning++
}

// ISXMineFinished records one mine completing with the given candidate
// count (zero when it failed or was cancelled).
func (m *Metrics) ISXMineFinished(candidates int, failed, cancelled bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.isxRunning--
	switch {
	case cancelled:
		m.isxCancelled++
	case failed:
		m.isxFailures++
	default:
		m.isxLastCandidates = candidates
	}
}

// InFlight returns the current in-flight request count.
func (m *Metrics) InFlight() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inflight
}

// Snapshot is the /metrics JSON document.
type Snapshot struct {
	UptimeSeconds    float64                      `json:"uptime_seconds"`
	InFlight         int64                        `json:"inflight"`
	Compiles         uint64                       `json:"compiles"`
	CompileHits      uint64                       `json:"compile_cache_hits"`
	VMFaults         uint64                       `json:"vm_faults"`
	TargetLoadErrors uint64                       `json:"target_load_errors"`
	QueueShed        map[string]uint64            `json:"queue_shed,omitempty"`
	Requests         map[string]EndpointSnapshot  `json:"requests"`
	Stages           map[string]HistogramSnapshot `json:"stages_us"`
	Cache            mat2c.CacheStats             `json:"cache"`
	DSE              DSESnapshot                  `json:"dse"`
	ISX              ISXSnapshot                  `json:"isx"`
	VM               VMSnapshot                   `json:"vm"`
}

// VMSnapshot is the /metrics simulator section: the default execution
// engine, the process-wide prepared-program cache, the superinstruction
// fusion counters, and the compiled-engine translation counters.
type VMSnapshot struct {
	Engine        string               `json:"engine"`
	PreparedCache vm.PreparedCacheInfo `json:"prepared_cache"`
	Superinst     vm.SuperinstInfo     `json:"superinst"`
	Compiled      vm.CompiledInfo      `json:"compiled"`
}

// DSESnapshot is the /metrics design-space-exploration section.
type DSESnapshot struct {
	Sweeps            uint64  `json:"sweeps"`
	Running           int64   `json:"running"`
	Failures          uint64  `json:"failures"`
	Cancelled         uint64  `json:"cancelled"`
	VariantsEvaluated uint64  `json:"variants_evaluated"`
	CacheLookups      uint64  `json:"cache_lookups"`
	CacheHits         uint64  `json:"cache_hits"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	LastFrontierSize  int     `json:"last_frontier_size"`
}

// ISXSnapshot is the /metrics instruction-set-extension-mining section.
type ISXSnapshot struct {
	Mines          uint64 `json:"mines"`
	Running        int64  `json:"running"`
	Failures       uint64 `json:"failures"`
	Cancelled      uint64 `json:"cancelled"`
	LastCandidates int    `json:"last_candidates"`
}

// SnapshotWith captures all counters plus the supplied cache stats.
func (m *Metrics) SnapshotWith(cache mat2c.CacheStats) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		InFlight:         m.inflight,
		Compiles:         m.compiles,
		CompileHits:      m.cacheHits,
		VMFaults:         m.vmFaults,
		TargetLoadErrors: m.targetLoadErrors,
		Requests:         map[string]EndpointSnapshot{},
		Stages:           map[string]HistogramSnapshot{},
		Cache:            cache,
		DSE: DSESnapshot{
			Sweeps:            m.dseSweeps,
			Running:           m.dseRunning,
			Failures:          m.dseFailures,
			Cancelled:         m.dseCancelled,
			VariantsEvaluated: m.dseVariants,
			CacheLookups:      m.dseCacheLookups,
			CacheHits:         m.dseCacheHits,
			LastFrontierSize:  m.dseLastFrontier,
		},
	}
	if m.dseCacheLookups > 0 {
		s.DSE.CacheHitRate = float64(m.dseCacheHits) / float64(m.dseCacheLookups)
	}
	if len(m.queueShed) > 0 {
		s.QueueShed = map[string]uint64{}
		for q, n := range m.queueShed {
			s.QueueShed[q] = n
		}
	}
	s.ISX = ISXSnapshot{
		Mines:          m.isxMines,
		Running:        m.isxRunning,
		Failures:       m.isxFailures,
		Cancelled:      m.isxCancelled,
		LastCandidates: m.isxLastCandidates,
	}
	s.VM = VMSnapshot{
		Engine:        vm.DefaultEngine(),
		PreparedCache: vm.PreparedCacheStats(),
		Superinst:     vm.SuperinstStats(),
		Compiled:      vm.CompiledStats(),
	}
	for name, e := range m.requests {
		s.Requests[name] = EndpointSnapshot{
			Count:     e.count,
			Errors:    e.errors,
			Timeouts:  e.timeouts,
			Cancelled: e.cancelled,
			Panics:    e.panics,
			Latency:   e.latency.snapshot(),
		}
	}
	for name, h := range m.stages {
		s.Stages[name] = h.snapshot()
	}
	return s
}
