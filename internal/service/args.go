package service

import (
	"encoding/json"
	"fmt"

	mat2c "mat2c"
)

// DecodeArgs converts a JSON argument list into simulator run
// arguments, guided by the declared parameter types. The format is
// shared with cmd/asipsim:
//
//	2.5                                  scalar (real or int per the type)
//	[1, 2, 3]                            real row vector
//	{"rows":2,"cols":2,"data":[1,2,3,4]} real matrix (column-major)
//	{"complex":[[1,2],[3,-1]]}           complex row vector (re,im pairs)
func DecodeArgs(text string, types []mat2c.Type) ([]interface{}, error) {
	var raw []json.RawMessage
	if err := json.Unmarshal([]byte(text), &raw); err != nil {
		return nil, fmt.Errorf("argument list: %w", err)
	}
	if len(raw) != len(types) {
		return nil, fmt.Errorf("argument list has %d values, entry takes %d", len(raw), len(types))
	}
	out := make([]interface{}, len(raw))
	for i, r := range raw {
		v, err := DecodeArg(r, types[i])
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// DecodeArg converts one JSON argument into a run argument of the
// declared type.
func DecodeArg(raw json.RawMessage, t mat2c.Type) (interface{}, error) {
	// Scalar number.
	var num float64
	if err := json.Unmarshal(raw, &num); err == nil {
		if t.Class == mat2c.Int {
			return int64(num), nil
		}
		if t.Class == mat2c.Complex {
			return complex(num, 0), nil
		}
		return num, nil
	}
	// Real vector.
	var vec []float64
	if err := json.Unmarshal(raw, &vec); err == nil {
		return mat2c.NewVector(vec...), nil
	}
	// Object forms.
	var obj struct {
		Rows    int          `json:"rows"`
		Cols    int          `json:"cols"`
		Data    []float64    `json:"data"`
		Complex [][2]float64 `json:"complex"`
	}
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, fmt.Errorf("cannot decode %s", string(raw))
	}
	if obj.Complex != nil {
		vals := make([]complex128, len(obj.Complex))
		for i, p := range obj.Complex {
			vals[i] = complex(p[0], p[1])
		}
		return mat2c.NewComplexVector(vals...), nil
	}
	if obj.Rows > 0 && obj.Cols > 0 {
		return mat2c.NewMatrix(obj.Rows, obj.Cols, obj.Data)
	}
	return nil, fmt.Errorf("unrecognized argument form %s", string(raw))
}

// EncodeValue converts a simulator result into its JSON-ready form,
// symmetric with DecodeArg: scalars encode as numbers (complex scalars
// as [re, im]); real arrays as {rows, cols, data}; complex arrays as
// {rows, cols, complex: [[re, im], ...]}.
func EncodeValue(v interface{}) interface{} {
	switch v := v.(type) {
	case *mat2c.Array:
		if v.C != nil {
			pairs := make([][2]float64, len(v.C))
			for i, c := range v.C {
				pairs[i] = [2]float64{real(c), imag(c)}
			}
			return map[string]interface{}{"rows": v.Rows, "cols": v.Cols, "complex": pairs}
		}
		return map[string]interface{}{"rows": v.Rows, "cols": v.Cols, "data": v.F}
	case complex128:
		return [2]float64{real(v), imag(v)}
	default:
		return v
	}
}
