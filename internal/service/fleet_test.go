package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mat2c/internal/dse"
	"mat2c/internal/fleet"
)

// fastFleetConfig keeps retry/backoff cadence test-speed.
func fastFleetConfig() fleet.Config {
	return fleet.Config{
		UnitSize:        1,
		RetryBase:       5 * time.Millisecond,
		RetryMax:        50 * time.Millisecond,
		NoWorkerTimeout: 10 * time.Second,
	}
}

// newCoordinator boots a coordinator-role server.
func newCoordinator(t *testing.T, fcfg fleet.Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2, Role: RoleCoordinator, Fleet: fcfg})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// newWorker boots a worker-role server and enrolls it with the
// coordinator through the real registration endpoint. wrap, when set,
// interposes on the worker's handler (fault injection).
func newWorker(t *testing.T, coord *httptest.Server, cfg Config, wrap func(http.Handler) http.Handler) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Role = RoleWorker
	s := New(cfg)
	h := http.Handler(s.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	a := &fleet.Agent{Coordinator: coord.URL, Self: ts.URL, Slots: s.cfg.SweepSlots}
	if _, err := a.RegisterOnce(context.Background()); err != nil {
		t.Fatalf("register worker: %v", err)
	}
	return s, ts
}

func runDSE(t *testing.T, ts *httptest.Server, req *DSERequest) DSEStatus {
	t.Helper()
	resp, body := postJSON(t, ts, "/dse", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /dse: status %d: %s", resp.StatusCode, body)
	}
	var acc DSEAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	return waitDSE(t, ts, acc.ID)
}

// TestFleetShardedSweepMatchesSingleProcess is the end-to-end
// acceptance path: the same sweep through a coordinator + two workers
// and through a standalone daemon must yield byte-identical reports
// (wall time excepted).
func TestFleetShardedSweepMatchesSingleProcess(t *testing.T) {
	coordSvc, coord := newCoordinator(t, fastFleetConfig())
	newWorker(t, coord, Config{Workers: 2}, nil)
	newWorker(t, coord, Config{Workers: 2}, nil)

	single := New(Config{Workers: 2})
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	shardedSt := runDSE(t, coord, smallDSERequest())
	if shardedSt.State != "done" {
		t.Fatalf("sharded job ended %q: %s", shardedSt.State, shardedSt.Error)
	}
	singleSt := runDSE(t, singleTS, smallDSERequest())
	if singleSt.State != "done" {
		t.Fatalf("single job ended %q: %s", singleSt.State, singleSt.Error)
	}

	shardedSt.Report.ElapsedUS, singleSt.Report.ElapsedUS = 0, 0
	sharded, err := json.Marshal(shardedSt.Report)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := json.Marshal(singleSt.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sharded, plain) {
		t.Errorf("sharded report differs from single-process report\nsharded: %s\nsingle:  %s", sharded, plain)
	}

	// GET /dse lists the finished job without its report.
	var list DSEJobList
	getJSON(t, coord, "/dse", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].State != "done" || list.Jobs[0].Status != "/dse/"+list.Jobs[0].ID {
		t.Errorf("GET /dse = %+v, want one done job", list.Jobs)
	}

	// GET /fleet reports both workers and the dispatch counters.
	var st FleetStatus
	getJSON(t, coord, "/fleet", &st)
	if st.Role != "coordinator" || st.Coordinator == nil {
		t.Fatalf("GET /fleet role = %q, coordinator %v", st.Role, st.Coordinator != nil)
	}
	if st.Coordinator.Alive != 2 {
		t.Errorf("workers_alive = %d, want 2", st.Coordinator.Alive)
	}
	if st.Coordinator.UnitsCompleted == 0 || st.Coordinator.UnitsCompleted != st.Coordinator.UnitsDispatched-st.Coordinator.UnitsRetried-st.Coordinator.UnitsShed {
		t.Errorf("unit counters inconsistent: %+v", st.Coordinator)
	}
	if coordSvc.Fleet() == nil {
		t.Error("coordinator server exposes no fleet")
	}
}

// TestFleetWorkerKillMidSweep kills one worker mid-sweep at the HTTP
// layer and verifies re-dispatch completes the job with a report
// identical to a healthy single-process run.
func TestFleetWorkerKillMidSweep(t *testing.T) {
	_, coord := newCoordinator(t, fastFleetConfig())

	// The dying worker serves one unit, then aborts every further
	// connection — a crash mid-sweep as the coordinator sees one.
	var served atomic.Int32
	newWorker(t, coord, Config{Workers: 2}, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/fleet/unit" && served.Add(1) > 1 {
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	})
	newWorker(t, coord, Config{Workers: 2}, nil)

	single := New(Config{Workers: 2})
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	shardedSt := runDSE(t, coord, smallDSERequest())
	if shardedSt.State != "done" {
		t.Fatalf("job ended %q: %s", shardedSt.State, shardedSt.Error)
	}
	singleSt := runDSE(t, singleTS, smallDSERequest())

	shardedSt.Report.ElapsedUS, singleSt.Report.ElapsedUS = 0, 0
	sharded, _ := json.Marshal(shardedSt.Report)
	plain, _ := json.Marshal(singleSt.Report)
	if !bytes.Equal(sharded, plain) {
		t.Errorf("post-worker-loss report differs from single-process report\nsharded: %s\nsingle:  %s", sharded, plain)
	}

	var st FleetStatus
	getJSON(t, coord, "/fleet", &st)
	if st.Coordinator.UnitsRetried == 0 {
		t.Error("worker kill produced no redispatches")
	}
	if st.Coordinator.Alive != 1 {
		t.Errorf("workers_alive = %d, want 1 (the killed one lost)", st.Coordinator.Alive)
	}
}

// TestFleetISXMatchesSingleProcess: the sharded verification pass must
// reproduce the standalone mining report byte for byte.
func TestFleetISXMatchesSingleProcess(t *testing.T) {
	_, coord := newCoordinator(t, fastFleetConfig())
	newWorker(t, coord, Config{Workers: 2}, nil)

	single := New(Config{Workers: 2})
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	post := func(ts *httptest.Server) ISXStatus {
		resp, body := postJSON(t, ts, "/isx", smallISXRequest())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /isx: status %d: %s", resp.StatusCode, body)
		}
		var acc ISXAccepted
		if err := json.Unmarshal(body, &acc); err != nil {
			t.Fatal(err)
		}
		return waitISX(t, ts, acc.ID)
	}
	shardedSt := post(coord)
	if shardedSt.State != "done" {
		t.Fatalf("sharded mine ended %q: %s", shardedSt.State, shardedSt.Error)
	}
	singleSt := post(singleTS)

	sharded, _ := json.Marshal(shardedSt.Report)
	plain, _ := json.Marshal(singleSt.Report)
	if !bytes.Equal(sharded, plain) {
		t.Errorf("sharded ISX report differs\nsharded: %s\nsingle:  %s", sharded, plain)
	}

	// GET /isx lists the finished mine.
	var list ISXJobList
	getJSON(t, coord, "/isx", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].State != "done" || list.Jobs[0].Status != "/isx/"+list.Jobs[0].ID {
		t.Errorf("GET /isx = %+v, want one done job", list.Jobs)
	}
}

// TestFleetShutdownMidSweep: Shutdown in coordinator mode must cancel
// the running sweep AND wait for dispatched-but-unacked units to
// settle before returning — no RPC left dangling.
func TestFleetShutdownMidSweep(t *testing.T) {
	fcfg := fastFleetConfig()
	coordSvc, coord := newCoordinator(t, fcfg)

	// A worker that never answers: every unit RPC hangs until the
	// coordinator's dispatch context is cancelled. The body must be
	// drained first — the server only notices the peer going away (and
	// cancels r.Context()) once the request body is consumed.
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer hung.Close()
	a := &fleet.Agent{Coordinator: coord.URL, Self: hung.URL, Slots: 1}
	if _, err := a.RegisterOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, coord, "/dse", smallDSERequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /dse: status %d: %s", resp.StatusCode, body)
	}
	var acc DSEAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}

	// Wait until units are actually in flight on the hung worker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := coordSvc.Fleet().Status(); st.InflightRPCs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no unit RPC ever went in flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	begin := time.Now()
	coordSvc.Shutdown()
	took := time.Since(begin)
	if took > coordSvc.cfg.ShutdownGrace+2*time.Second {
		t.Fatalf("Shutdown took %v, want within the %v grace period", took, coordSvc.cfg.ShutdownGrace)
	}

	// Every dispatched RPC settled (the cancellation propagated through
	// the workers' request contexts); nothing was abandoned silently.
	st := coordSvc.Fleet().Status()
	if st.InflightRPCs != 0 {
		t.Errorf("inflight_rpcs = %d after Shutdown, want 0", st.InflightRPCs)
	}

	// The job observed the cancellation.
	jobSt := waitDSE(t, coord, acc.ID)
	if jobSt.State != "cancelled" && jobSt.State != "failed" {
		t.Errorf("job state %q after shutdown, want cancelled or failed", jobSt.State)
	}
}

// TestSweepQueueBackpressure: a full sweep queue sheds POST /fleet/unit
// with 503 + Retry-After and counts the shed in /metrics; a free queue
// executes the unit.
func TestSweepQueueBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, Role: RoleWorker, SweepSlots: 1, SweepQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the whole bounded queue (slots + backlog).
	for i := 0; i < cap(s.sweepAdmit); i++ {
		s.sweepAdmit <- struct{}{}
	}

	unit := oneVariantUnit(t)
	resp, body := postJSON(t, ts, "/fleet/unit", unit)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queue: status %d: %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 shed carries no Retry-After header")
	}

	var snap Snapshot
	getJSON(t, ts, "/metrics", &snap)
	if snap.QueueShed["sweep"] != 1 {
		t.Errorf("queue_shed[sweep] = %d, want 1", snap.QueueShed["sweep"])
	}

	// Drain the queue: the same unit now executes.
	for i := 0; i < cap(s.sweepAdmit); i++ {
		<-s.sweepAdmit
	}
	resp, body = postJSON(t, ts, "/fleet/unit", unit)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("free queue: status %d: %s, want 200", resp.StatusCode, body)
	}
	var res fleet.UnitResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != unit.ID || len(res.DSE) != 1 {
		t.Errorf("unit result = %+v, want id %s with one variant", res, unit.ID)
	}

	// GET /fleet on a worker reports the queue shape.
	var st FleetStatus
	getJSON(t, ts, "/fleet", &st)
	if st.Role != "worker" || st.Sweep == nil || st.Sweep.Slots != 1 || st.Sweep.Queue != 1 {
		t.Errorf("GET /fleet = %+v, want worker role with slots/queue 1/1", st)
	}
}

// TestComputeQueueShedRetryAfter: the interactive pool's busy 503 also
// carries Retry-After and bumps the queue_shed counter.
func TestComputeQueueShedRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, RequestTimeout: 150 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only worker slot so the request times out queueing.
	s.slots <- struct{}{}
	defer func() { <-s.slots }()

	resp, body := postJSON(t, ts, "/compile", CompileRequest{Source: scaleSrc, Params: "real(1,:), real", Target: "scalar"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("busy pool: status %d: %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("busy-pool 503 carries no Retry-After header")
	}
	var snap Snapshot
	getJSON(t, ts, "/metrics", &snap)
	if snap.QueueShed["compile"] != 1 {
		t.Errorf("queue_shed[compile] = %d, want 1", snap.QueueShed["compile"])
	}
}

// TestFleetUnitRejectsBadUnit: an unparseable unit is a permanent 422,
// not a retryable failure.
func TestFleetUnitRejectsBadUnit(t *testing.T) {
	s := New(Config{Workers: 1, Role: RoleWorker})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/fleet/unit", fleet.Unit{ID: "dse-bad", Kind: "dse", DSE: &fleet.DSEUnit{
		Variants: []fleet.DSEVariant{{Index: 0, Proc: json.RawMessage(`[1,2,3]`)}},
	}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad unit: status %d: %s, want 422", resp.StatusCode, body)
	}
}

// TestFleetRoleRouting: fleet endpoints exist only for the matching
// role, and a single-role daemon still answers GET /fleet.
func TestFleetRoleRouting(t *testing.T) {
	single := New(Config{Workers: 1})
	ts := httptest.NewServer(single.Handler())
	defer ts.Close()

	var st FleetStatus
	getJSON(t, ts, "/fleet", &st)
	if st.Role != "single" || st.Coordinator != nil || st.Sweep != nil {
		t.Errorf("single GET /fleet = %+v", st)
	}
	for _, path := range []string{"/fleet/register", "/fleet/deregister", "/fleet/unit"} {
		resp, _ := postJSON(t, ts, path, map[string]string{})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("single POST %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// oneVariantUnit shards a single-variant sweep into its one unit.
func oneVariantUnit(t *testing.T) fleet.Unit {
	t.Helper()
	opts := dse.Options{Jobs: 1, Scale: 0.05, Kernels: []string{"fir"}}
	variants, _, err := dse.EnumerateAll(context.Background(), []*dse.Sweep{{
		Base: "scalar", Widths: []int{1}, Complex: []bool{false},
	}})
	if err != nil {
		t.Fatal(err)
	}
	units, err := fleet.ShardDSE(variants, opts, 1)
	if err != nil || len(units) != 1 {
		t.Fatalf("sharded %d units, err %v", len(units), err)
	}
	return units[0]
}
