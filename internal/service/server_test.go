package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	mat2c "mat2c"
	"mat2c/internal/vm"
)

const scaleSrc = `function y = scale(x, a)
y = a .* x + 1;
end`

func postJSON(t *testing.T, ts *httptest.Server, path string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out interface{}) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

func TestCompileCacheHitMissAndMetrics(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := CompileRequest{Source: scaleSrc, Params: "real(1,:), real", Target: "dspasip"}

	resp, body := postJSON(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first compile: status %d: %s", resp.StatusCode, body)
	}
	var first CompileResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first compile reported a cache hit")
	}
	if first.CSource == "" || first.CHeader == "" {
		t.Error("first compile missing C artifacts")
	}
	if first.Entry != "scale" {
		t.Errorf("entry = %q, want scale", first.Entry)
	}
	if len(first.StagesUS) == 0 {
		t.Error("miss response missing stages_us")
	}
	for _, stage := range mat2c.StageNames() {
		if _, ok := first.StagesUS[stage]; !ok {
			t.Errorf("stages_us missing stage %q", stage)
		}
	}

	resp, body = postJSON(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second compile: status %d: %s", resp.StatusCode, body)
	}
	var second CompileResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("identical second compile was not a cache hit")
	}
	if second.CacheKey != first.CacheKey {
		t.Errorf("cache keys differ across identical requests: %s vs %s", first.CacheKey, second.CacheKey)
	}
	if second.CSource != first.CSource || second.CHeader != first.CHeader {
		t.Error("cache hit returned different artifacts")
	}

	// A different target must miss with a different key.
	req2 := req
	req2.Target = "scalar"
	_, body = postJSON(t, ts, "/compile", req2)
	var third CompileResponse
	if err := json.Unmarshal(body, &third); err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Error("different target reported a cache hit")
	}
	if third.CacheKey == first.CacheKey {
		t.Error("different target produced the same cache key")
	}

	var m Snapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Cache.Hits != 1 || m.Cache.Misses != 2 {
		t.Errorf("cache stats = %+v, want 1 hit / 2 misses", m.Cache)
	}
	if m.Compiles != 3 || m.CompileHits != 1 {
		t.Errorf("compiles = %d (hits %d), want 3 (1)", m.Compiles, m.CompileHits)
	}
	if got := m.Requests["compile"].Count; got != 3 {
		t.Errorf("request count = %d, want 3", got)
	}
	parse, ok := m.Stages["parse"]
	if !ok || parse.Count != 2 {
		t.Errorf("parse stage histogram = %+v, want count 2 (misses only)", parse)
	}
	if cgen := m.Stages["cgen"]; cgen.TotalUS < 0 || cgen.Count != 2 {
		t.Errorf("cgen stage histogram = %+v, want count 2", cgen)
	}
}

func TestRunEndpoint(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := RunRequest{
		CompileRequest: CompileRequest{
			Source: scaleSrc,
			Params: "real(1,:), real",
			Target: "dspasip",
			SkipC:  true,
		},
		Args: json.RawMessage(`[[1, 2, 3, 4], 2.5]`),
	}
	resp, body := postJSON(t, ts, "/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run: status %d: %s", resp.StatusCode, body)
	}
	var rr struct {
		RunResponse
		Results []struct {
			Rows int       `json:"rows"`
			Cols int       `json:"cols"`
			Data []float64 `json:"data"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Cycles <= 0 || rr.Instructions <= 0 {
		t.Errorf("cycles=%d instructions=%d, want positive", rr.Cycles, rr.Instructions)
	}
	if len(rr.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(rr.Results))
	}
	want := []float64{3.5, 6, 8.5, 11}
	got := rr.Results[0].Data
	if rr.Results[0].Rows != 1 || rr.Results[0].Cols != 4 || len(got) != 4 {
		t.Fatalf("result shape %dx%d (%d values), want 1x4", rr.Results[0].Rows, rr.Results[0].Cols, len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("result[%d] = %g, want %g", i, got[i], want[i])
		}
	}

	// A second /run of the same program must reuse the compiled
	// artifact.
	_, body = postJSON(t, ts, "/run", req)
	var again RunResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("second /run of identical program was not a cache hit")
	}

	// /metrics must expose the simulator section: the active engine and
	// the prepared-program cache the two runs populated.
	var m Snapshot
	getJSON(t, ts, "/metrics", &m)
	if m.VM.Engine == "" {
		t.Error("metrics VM engine is empty")
	}
	if m.VM.Engine == vm.EnginePrepared && m.VM.PreparedCache.Entries == 0 {
		t.Errorf("prepared cache = %+v, want at least one entry after /run", m.VM.PreparedCache)
	}
}

func TestCompileErrorsAndBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Malformed body.
	resp, err := ts.Client().Post(ts.URL+"/compile", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Missing source.
	resp, _ = postJSON(t, ts, "/compile", CompileRequest{Params: "real"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing source: status %d, want 400", resp.StatusCode)
	}

	// Invalid MATLAB.
	resp, body := postJSON(t, ts, "/compile", CompileRequest{Source: "function y = f(x)\ny = ((x;\nend"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad MATLAB: status %d (%s), want 422", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("error body %q not a JSON error document", body)
	}

	// Unknown target.
	resp, _ = postJSON(t, ts, "/compile", CompileRequest{Source: scaleSrc, Params: "real(1,:), real", Target: "no-such-proc"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown target: status %d, want 422", resp.StatusCode)
	}

	// Wrong argument count on /run.
	resp, _ = postJSON(t, ts, "/run", RunRequest{
		CompileRequest: CompileRequest{Source: scaleSrc, Params: "real(1,:), real", SkipC: true},
		Args:           json.RawMessage(`[[1,2,3]]`),
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad args: status %d, want 422", resp.StatusCode)
	}

	var m Snapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Requests["compile"].Errors < 3 {
		t.Errorf("compile error count = %d, want >= 3", m.Requests["compile"].Errors)
	}
}

func TestRequestTimeout(t *testing.T) {
	s := New(Config{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only worker slot so the request can never start.
	s.slots <- struct{}{}
	defer func() { <-s.slots }()

	begin := time.Now()
	resp, body := postJSON(t, ts, "/compile", CompileRequest{Source: scaleSrc, Params: "real(1,:), real"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated pool: status %d (%s), want 503", resp.StatusCode, body)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Errorf("timeout took %s, want ~50ms", elapsed)
	}

	var m Snapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Requests["compile"].Timeouts != 1 {
		t.Errorf("timeout count = %d, want 1", m.Requests["compile"].Timeouts)
	}
}

func TestPanicRecovery(t *testing.T) {
	s := New(Config{Workers: 1})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	// A compute route whose work function always panics, sharing the
	// real worker/timeout/recovery path.
	mux.HandleFunc("POST /boom", func(w http.ResponseWriter, r *http.Request) {
		s.serveCompute(w, r, "boom", func(context.Context, *RunRequest) (interface{}, error) {
			panic("kaboom")
		})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, body := postJSON(t, ts, "/boom", CompileRequest{Source: "x"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "kaboom") {
		t.Errorf("error body %q does not mention the panic", body)
	}

	// The worker slot must have been released: a normal compile still
	// succeeds.
	resp, body = postJSON(t, ts, "/compile", CompileRequest{Source: scaleSrc, Params: "real(1,:), real"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile after panic: status %d (%s), want 200", resp.StatusCode, body)
	}

	var m Snapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Requests["boom"].Panics != 1 {
		t.Errorf("panic count = %d, want 1", m.Requests["boom"].Panics)
	}
}

func TestTargetsAndHealthz(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var tr struct {
		Targets []TargetInfo `json:"targets"`
	}
	getJSON(t, ts, "/targets", &tr)
	if len(tr.Targets) != len(mat2c.Targets()) {
		t.Fatalf("got %d targets, want %d", len(tr.Targets), len(mat2c.Targets()))
	}
	found := false
	for _, ti := range tr.Targets {
		if ti.Name == "dspasip" {
			found = true
			if ti.SIMDWidth != 4 || ti.Instructions == 0 {
				t.Errorf("dspasip catalog entry %+v looks wrong", ti)
			}
		}
	}
	if !found {
		t.Error("catalog missing dspasip")
	}

	var h struct {
		Status string `json:"status"`
	}
	getJSON(t, ts, "/healthz", &h)
	if h.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", h.Status)
	}
}

func TestConcurrentRequestsUnderRace(t *testing.T) {
	s := New(Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	targets := []string{"dspasip", "scalar", "wide8", "nosimd"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := CompileRequest{
				Source: scaleSrc,
				Params: "real(1,:), real",
				Target: targets[i%len(targets)],
			}
			data, _ := json.Marshal(req)
			resp, err := ts.Client().Post(ts.URL+"/compile", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var m Snapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Requests["compile"].Count != 16 {
		t.Errorf("request count = %d, want 16", m.Requests["compile"].Count)
	}
	if m.InFlight != 0 {
		t.Errorf("inflight = %d after drain, want 0", m.InFlight)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	s := New(Config{Workers: 2})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	mux.HandleFunc("POST /slow", func(w http.ResponseWriter, r *http.Request) {
		s.serveCompute(w, r, "slow", func(context.Context, *RunRequest) (interface{}, error) {
			started <- struct{}{}
			<-release
			return map[string]string{"ok": "true"}, nil
		})
	})
	ts := httptest.NewUnstartedServer(mux)
	ts.Start()

	result := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/slow", "application/json", strings.NewReader(`{"source":"x"}`))
		if err != nil {
			result <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			result <- fmt.Errorf("slow request: status %d", resp.StatusCode)
			return
		}
		result <- nil
	}()
	<-started

	// Shutdown must wait for the in-flight request once it is released.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- ts.Config.Shutdown(ctx)
	}()

	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a request was still in flight")
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-result; err != nil {
		t.Errorf("in-flight request failed during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}
