// Cancellation and status-code contract tests: a timed-out /run must
// free its worker slot long before the pipeline would finish naturally,
// DELETE /dse/{id} must stop a sweep from evaluating its remaining
// variants, and error classes must map to their documented statuses
// (413 oversized body, 422 request faults, 500 simulator faults).
package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mat2c/internal/dse"
)

// spinRunRequest is a /run whose simulation would take minutes to
// complete naturally (billions of simulated instructions against a
// 50G-cycle default budget) — the only way it returns quickly is
// through cancellation.
func spinRunRequest() RunRequest {
	return RunRequest{
		CompileRequest: CompileRequest{
			Source: "function y = spin(n)\ny = 0;\nfor i = 1:n\ny = y + i;\nend\nend",
			Params: "real",
			SkipC:  true,
		},
		Args: json.RawMessage(`[2000000000]`),
	}
}

func TestTimedOutRunFreesWorkerSlot(t *testing.T) {
	s := New(Config{Workers: 1, RequestTimeout: 200 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	begin := time.Now()
	resp, body := postJSON(t, ts, "/run", spinRunRequest())
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("spin /run: status %d (%s), want 504", resp.StatusCode, body)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Errorf("timeout response took %s, want ~200ms", elapsed)
	}

	// The cancelled pipeline must release the only worker slot promptly
	// (bounded by the VM's poll stride), not hold it for the minutes the
	// spin would naturally run. Acquiring the slot IS the proof.
	select {
	case s.slots <- struct{}{}:
		<-s.slots
	case <-time.After(10 * time.Second):
		t.Fatal("worker slot still held 10s after the 504: cancellation did not reach the pipeline")
	}

	// And a real request must go through on that freed slot.
	resp, body = postJSON(t, ts, "/compile", CompileRequest{Source: scaleSrc, Params: "real(1,:), real"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile after timeout: status %d (%s), want 200", resp.StatusCode, body)
	}

	var m Snapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Requests["run"].Timeouts != 1 {
		t.Errorf("run timeouts = %d, want 1", m.Requests["run"].Timeouts)
	}
	if m.VMFaults != 0 {
		t.Errorf("vm_faults = %d after a pure timeout, want 0", m.VMFaults)
	}
}

func TestClientDisconnectCancelsRun(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	data, err := json.Marshal(spinRunRequest())
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/run", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 300 * time.Millisecond}
	if _, err := client.Do(req); err == nil {
		t.Fatal("spin /run returned before the client timeout")
	}

	// The disconnect propagates through the request context into the
	// VM; the worker slot must come free without waiting out the spin.
	select {
	case s.slots <- struct{}{}:
		<-s.slots
	case <-time.After(10 * time.Second):
		t.Fatal("worker slot still held 10s after client disconnect")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		var m Snapshot
		getJSON(t, ts, "/metrics", &m)
		if m.Requests["run"].Cancelled == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run cancelled count = %d, want 1", m.Requests["run"].Cancelled)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatusCodeMapping pins the documented error taxonomy: request
// faults are 4xx, simulator faults are 500 (and counted), and nothing
// is silently reclassified.
func TestStatusCodeMapping(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		path string
		body interface{}
		want int
	}{
		{
			name: "bad matlab is 422",
			path: "/compile",
			body: CompileRequest{Source: "function y = f(x)\ny = ((x;\nend"},
			want: http.StatusUnprocessableEntity,
		},
		{
			name: "bad param syntax is 422",
			path: "/compile",
			body: CompileRequest{Source: scaleSrc, Params: "real(1,:), wat"},
			want: http.StatusUnprocessableEntity,
		},
		{
			name: "wrong arg count is 422",
			path: "/run",
			body: RunRequest{
				CompileRequest: CompileRequest{Source: scaleSrc, Params: "real(1,:), real", SkipC: true},
				Args:           json.RawMessage(`[[1,2,3]]`),
			},
			want: http.StatusUnprocessableEntity,
		},
		{
			name: "runtime vm fault is 500",
			path: "/run",
			body: RunRequest{
				CompileRequest: CompileRequest{
					Source: "function y = f(x)\ny = x(10);\nend",
					Params: "real(1,:)",
					SkipC:  true,
				},
				Args: json.RawMessage(`[[1,2,3]]`),
			},
			want: http.StatusInternalServerError,
		},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts, tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
	}

	var m Snapshot
	getJSON(t, ts, "/metrics", &m)
	if m.VMFaults != 1 {
		t.Errorf("vm_faults = %d, want 1 (only the runtime fault case)", m.VMFaults)
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	s := New(Config{Workers: 1, MaxRequestBytes: 512})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := CompileRequest{Source: "% " + strings.Repeat("x", 2048)}
	resp, body := postJSON(t, ts, "/compile", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("/compile oversized: status %d (%s), want 413", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "512") {
		t.Errorf("413 body %q does not name the limit", body)
	}

	huge, err := json.Marshal(map[string]interface{}{
		"kernels": []string{strings.Repeat("k", 2048)},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := ts.Client().Post(ts.URL+"/dse", "application/json", strings.NewReader(string(huge)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("/dse oversized: status %d, want 413", resp2.StatusCode)
	}
}

// TestNoCacheStoresResult guards the documented no_cache contract: the
// lookup is bypassed but the fresh artifact is still stored, so the
// next plain request hits.
func TestNoCacheStoresResult(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := CompileRequest{Source: scaleSrc, Params: "real(1,:), real", NoCache: true}
	resp, body := postJSON(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no_cache compile: status %d (%s)", resp.StatusCode, body)
	}
	var first CompileResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("no_cache compile reported a cache hit")
	}

	req.NoCache = false
	resp, body = postJSON(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain compile: status %d (%s)", resp.StatusCode, body)
	}
	var second CompileResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("plain compile after no_cache missed: the bypass result was not stored")
	}
	if second.CacheKey != first.CacheKey {
		t.Errorf("cache keys differ: %s vs %s", first.CacheKey, second.CacheKey)
	}
}

func TestDSECancelStopsEvaluation(t *testing.T) {
	// One worker and many variants so cancellation lands while most of
	// the sweep is still queued.
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &DSERequest{
		Sweep: &dse.Sweep{
			Widths:  []int{1, 2, 4, 8},
			Complex: []bool{true, false},
			Groups:  [][]string{nil, {"mac"}, {"mac", "cmplx"}, {"cmplx"}},
		},
		Jobs:    1,
		Scale:   0.25,
		Kernels: []string{"fir", "cfir", "iirsos"},
	}
	resp, body := postJSON(t, ts, "/dse", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /dse: status %d: %s", resp.StatusCode, body)
	}
	var acc DSEAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Variants < 8 {
		t.Fatalf("sweep enumerated %d variants, want >= 8", acc.Variants)
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/dse/"+acc.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := ts.Client().Do(del)
	if err != nil {
		t.Fatal(err)
	}
	var cst DSEStatus
	if err := json.NewDecoder(dresp.Body).Decode(&cst); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /dse/%s: status %d", acc.ID, dresp.StatusCode)
	}
	if cst.State != "cancelling" && cst.State != "cancelled" {
		t.Fatalf("state after DELETE = %q, want cancelling/cancelled", cst.State)
	}

	st := waitDSE(t, ts, acc.ID)
	if st.State != "cancelled" {
		t.Fatalf("job ended %q (%s), want cancelled", st.State, st.Error)
	}
	if st.Evaluated >= st.Total {
		t.Errorf("cancelled sweep evaluated %d of %d variants; cancellation saved nothing", st.Evaluated, st.Total)
	}
	if st.Report != nil {
		t.Error("cancelled sweep returned a report")
	}

	// Cancelling again (now finished) stays a no-op 200, and an unknown
	// id is 404.
	dresp, err = ts.Client().Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("second DELETE: status %d, want 200", dresp.StatusCode)
	}
	del404, err := http.NewRequest(http.MethodDelete, ts.URL+"/dse/dse-999", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err = ts.Client().Do(del404)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown id: status %d, want 404", dresp.StatusCode)
	}

	var m Snapshot
	getJSON(t, ts, "/metrics", &m)
	if m.DSE.Cancelled != 1 {
		t.Errorf("dse cancelled = %d, want 1", m.DSE.Cancelled)
	}
	if m.DSE.Running != 0 {
		t.Errorf("dse running = %d after cancellation, want 0", m.DSE.Running)
	}
}

// TestShutdownCancelsDSEJobs: Server.Shutdown is the daemon's drain
// hook; running sweeps must observe it and stop.
func TestShutdownCancelsDSEJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A big sweep at full scale so it cannot finish in the window
	// between POST and Shutdown, even on a fast machine.
	req := &DSERequest{
		Sweep: &dse.Sweep{
			Widths:  []int{1, 2, 4, 8},
			Complex: []bool{true, false},
			Groups:  [][]string{nil, {"mac"}, {"mac", "cmplx"}, {"cmplx"}},
		},
		Jobs:    1,
		Scale:   1.0,
		Kernels: []string{"fir", "cfir", "iirsos"},
	}
	resp, body := postJSON(t, ts, "/dse", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /dse: status %d: %s", resp.StatusCode, body)
	}
	var acc DSEAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}

	s.Shutdown()
	st := waitDSE(t, ts, acc.ID)
	if st.State != "cancelled" {
		t.Fatalf("job ended %q after Shutdown, want cancelled", st.State)
	}
}
