package service

import (
	"encoding/json"
	"reflect"
	"testing"

	mat2c "mat2c"
)

func TestDecodeArgsForms(t *testing.T) {
	types := []mat2c.Type{
		mat2c.Scalar(mat2c.Real),
		mat2c.Scalar(mat2c.Int),
		mat2c.Scalar(mat2c.Complex),
		mat2c.Vector(mat2c.Real),
		mat2c.Vector(mat2c.Complex),
		mat2c.Matrix(mat2c.Real),
	}
	args, err := DecodeArgs(`[2.5, 3, 4, [1,2,3], {"complex":[[1,2],[3,-1]]}, {"rows":2,"cols":2,"data":[1,2,3,4]}]`, types)
	if err != nil {
		t.Fatal(err)
	}
	if got := args[0].(float64); got != 2.5 {
		t.Errorf("arg0 = %v", got)
	}
	if got := args[1].(int64); got != 3 {
		t.Errorf("arg1 = %v", got)
	}
	if got := args[2].(complex128); got != complex(4, 0) {
		t.Errorf("arg2 = %v", got)
	}
	if v := args[3].(*mat2c.Array); !reflect.DeepEqual(v.F, []float64{1, 2, 3}) {
		t.Errorf("arg3 = %v", v.F)
	}
	if v := args[4].(*mat2c.Array); v.C[1] != complex(3, -1) {
		t.Errorf("arg4 = %v", v.C)
	}
	if v := args[5].(*mat2c.Array); v.Rows != 2 || v.Cols != 2 || v.F[3] != 4 {
		t.Errorf("arg5 = %+v", v)
	}
}

func TestDecodeArgsErrors(t *testing.T) {
	types := []mat2c.Type{mat2c.Scalar(mat2c.Real)}
	if _, err := DecodeArgs(`[1, 2]`, types); err == nil {
		t.Error("arity mismatch not rejected")
	}
	if _, err := DecodeArgs(`not json`, types); err == nil {
		t.Error("malformed JSON not rejected")
	}
	if _, err := DecodeArgs(`[{"weird": true}]`, types); err == nil {
		t.Error("unrecognized argument form not rejected")
	}
}

func TestEncodeValueRoundTrip(t *testing.T) {
	// Real array.
	enc := EncodeValue(mat2c.NewVector(1, 2, 3))
	data, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	var obj struct {
		Rows int       `json:"rows"`
		Cols int       `json:"cols"`
		Data []float64 `json:"data"`
	}
	if err := json.Unmarshal(data, &obj); err != nil {
		t.Fatal(err)
	}
	if obj.Rows != 1 || obj.Cols != 3 || !reflect.DeepEqual(obj.Data, []float64{1, 2, 3}) {
		t.Errorf("real array encoded as %s", data)
	}

	// Complex scalar and array.
	if got := EncodeValue(complex(1.0, -2.0)).([2]float64); got != [2]float64{1, -2} {
		t.Errorf("complex scalar = %v", got)
	}
	data, _ = json.Marshal(EncodeValue(mat2c.NewComplexVector(complex(1, 2))))
	var cobj struct {
		Complex [][2]float64 `json:"complex"`
	}
	if err := json.Unmarshal(data, &cobj); err != nil || len(cobj.Complex) != 1 || cobj.Complex[0] != [2]float64{1, 2} {
		t.Errorf("complex array encoded as %s (err %v)", data, err)
	}

	// Scalars pass through.
	if got := EncodeValue(float64(7)); got.(float64) != 7 {
		t.Errorf("float scalar = %v", got)
	}
	if got := EncodeValue(int64(7)); got.(int64) != 7 {
		t.Errorf("int scalar = %v", got)
	}
}
