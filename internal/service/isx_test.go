package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// smallISXRequest mines one kernel on the bare scalar target at tiny
// scale — small enough for endpoint tests, real enough to produce a
// verified fused-multiply-add candidate.
func smallISXRequest() *ISXRequest {
	return &ISXRequest{
		Proc:    "scalar",
		Kernels: []string{"fir"},
		Top:     2,
		Scale:   0.05,
	}
}

func waitISX(t *testing.T, ts *httptest.Server, id string) ISXStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st ISXStatus
		getJSON(t, ts, "/isx/"+id, &st)
		if st.State != "running" && st.State != "cancelling" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("ISX job %s still running after 60s", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestISXEndpoint(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/isx", smallISXRequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /isx: status %d: %s", resp.StatusCode, body)
	}
	var acc ISXAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" || acc.Status != "/isx/"+acc.ID {
		t.Fatalf("bad accept reply: %+v", acc)
	}

	st := waitISX(t, ts, acc.ID)
	if st.State != "done" {
		t.Fatalf("job ended %q: %s", st.State, st.Error)
	}
	if st.Report == nil || len(st.Report.Candidates) == 0 {
		t.Fatalf("done job has no candidates: %+v", st.Report)
	}
	verified := false
	for _, c := range st.Report.Candidates {
		for _, d := range c.Deltas {
			if d.Err == "" && d.Selected > 0 && d.Measured > 0 {
				verified = true
			}
		}
	}
	if !verified {
		t.Error("no candidate verified with a measured saving")
	}

	var snap Snapshot
	getJSON(t, ts, "/metrics", &snap)
	if snap.ISX.Mines != 1 || snap.ISX.Running != 0 {
		t.Errorf("metrics: mines=%d running=%d, want 1/0", snap.ISX.Mines, snap.ISX.Running)
	}
	if snap.ISX.LastCandidates != len(st.Report.Candidates) {
		t.Errorf("metrics: last_candidates=%d, want %d",
			snap.ISX.LastCandidates, len(st.Report.Candidates))
	}
}

func TestISXEndpointValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Unknown request field → 400 (DisallowUnknownFields on the body).
	resp, _ := postJSON(t, ts, "/isx", map[string]interface{}{"kernls": []string{"fir"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("misspelled field: status %d, want 400", resp.StatusCode)
	}

	// Unknown base target → 422, synchronously.
	resp, _ = postJSON(t, ts, "/isx", &ISXRequest{Proc: "nosuch"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown base: status %d, want 422", resp.StatusCode)
	}

	// Unknown kernel → 422, synchronously.
	resp, _ = postJSON(t, ts, "/isx", &ISXRequest{Proc: "scalar", Kernels: []string{"nosuch"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown kernel: status %d, want 422", resp.StatusCode)
	}

	// Unknown job id → 404.
	r, err := ts.Client().Get(ts.URL + "/isx/isx-999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", r.StatusCode)
	}
}

func TestISXCancel(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A full-suite mine at default scale is slow enough to catch mid-run.
	resp, body := postJSON(t, ts, "/isx", &ISXRequest{Proc: "scalar"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /isx: status %d: %s", resp.StatusCode, body)
	}
	var acc ISXAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/isx/"+acc.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st ISXStatus
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.State != "cancelling" && st.State != "cancelled" && st.State != "done" {
		t.Fatalf("DELETE reply state %q", st.State)
	}

	st = waitISX(t, ts, acc.ID)
	if st.State != "cancelled" && st.State != "done" {
		t.Fatalf("job ended %q: %s", st.State, st.Error)
	}

	// Cancelling a finished job is a no-op that reports its final state.
	r, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	final := st.State
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.State != final {
		t.Errorf("cancel after finish: state %q, want %q", st.State, final)
	}
}
