// Package service implements mat2cd, the long-lived compile-and-simulate
// server: an HTTP/JSON front end over the mat2c pipeline with a
// content-addressed compilation cache, a bounded worker pool with
// per-request timeouts and panic containment, and per-stage compiler
// metrics. It is the serving layer the batch compiler lacks — repeated
// compilations of identical inputs (the common shape of design-space
// exploration loops, where the same kernels are rebuilt against many
// candidate processor descriptions) hit the cache instead of re-running
// the pipeline.
//
// Endpoints:
//
//	POST /compile  MATLAB source + types + target → C artifacts + stats
//	POST /run      compile + execute on the cycle-model simulator
//	POST /dse      launch an async design-space exploration sweep
//	GET  /dse/{id} sweep progress and, once done, the Pareto report
//	GET  /targets  built-in processor catalog
//	GET  /healthz  liveness + in-flight gauge
//	GET  /metrics  JSON counters: requests, cache, per-stage histograms
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	mat2c "mat2c"
)

// Config tunes the server. Zero values select sensible defaults.
type Config struct {
	// Workers bounds concurrent compile/run work (default: NumCPU).
	Workers int
	// CacheSize bounds the compilation cache entry count
	// (default mat2c.DefaultCacheSize).
	CacheSize int
	// RequestTimeout bounds each compile/run request, queueing
	// included (default 30s).
	RequestTimeout time.Duration
	// MaxRequestBytes bounds request bodies (default 8 MiB).
	MaxRequestBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.CacheSize <= 0 {
		c.CacheSize = mat2c.DefaultCacheSize
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	return c
}

// Server is the compile-and-simulate service state: cache, metrics,
// and the worker-pool semaphore. Create with New; serve via Handler.
type Server struct {
	cfg     Config
	cache   *mat2c.Cache
	metrics *Metrics
	slots   chan struct{}

	// Design-space exploration job registry (see dse.go).
	dseMu    sync.Mutex
	dseSeq   int
	dseJobs  map[string]*dseJob
	dseOrder []string
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		cache:   mat2c.NewCache(cfg.CacheSize),
		metrics: NewMetrics(),
		slots:   make(chan struct{}, cfg.Workers),
	}
}

// Metrics exposes the registry (for tests and embedding servers).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the compilation cache (for tests and warmup).
func (s *Server) Cache() *mat2c.Cache { return s.cache }

// Handler returns the service's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", s.handleCompile)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /dse", s.handleDSE)
	mux.HandleFunc("GET /dse/{id}", s.handleDSEStatus)
	mux.HandleFunc("GET /targets", s.handleTargets)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// CompileRequest is the /compile (and the compile half of /run) body.
// Params uses the CLI type syntax ("real(1,:), complex, int"); Target
// is a built-in name, an embedded description, or a server-side file
// path.
type CompileRequest struct {
	Source string `json:"source"`
	Entry  string `json:"entry,omitempty"`
	Params string `json:"params,omitempty"`
	Target string `json:"target,omitempty"`

	Baseline     bool `json:"baseline,omitempty"`
	NoVectorize  bool `json:"no_vectorize,omitempty"`
	NoIntrinsics bool `json:"no_intrinsics,omitempty"`
	OptLevel     int  `json:"opt_level,omitempty"`
	SkipC        bool `json:"skip_c,omitempty"`

	// NoCache bypasses the compilation cache for this request (the
	// result is still stored for future hits).
	NoCache bool `json:"no_cache,omitempty"`
}

func (req *CompileRequest) options() mat2c.Options {
	return mat2c.Options{
		Target:       req.Target,
		Baseline:     req.Baseline,
		NoVectorize:  req.NoVectorize,
		NoIntrinsics: req.NoIntrinsics,
		OptLevel:     req.OptLevel,
		SkipC:        req.SkipC,
	}
}

// CompileResponse is the /compile reply; /run embeds it.
type CompileResponse struct {
	Entry  string `json:"entry"`
	Target string `json:"target"`

	CacheKey  string `json:"cache_key"`
	CacheHit  bool   `json:"cache_hit"`
	ElapsedUS int64  `json:"elapsed_us"`
	// StagesUS reports per-stage compile wall time; absent on a cache
	// hit (no stage ran).
	StagesUS map[string]int64 `json:"stages_us,omitempty"`

	CSource    string `json:"c_source,omitempty"`
	CHeader    string `json:"c_header,omitempty"`
	CPrototype string `json:"c_prototype,omitempty"`

	CodeSize        int            `json:"code_size"`
	VectorizedLoops int            `json:"vectorized_loops"`
	Intrinsics      map[string]int `json:"intrinsics,omitempty"`
	Warnings        []string       `json:"warnings,omitempty"`
}

// RunRequest is the /run body: a compilation plus simulator arguments
// in cmd/asipsim's JSON format.
type RunRequest struct {
	CompileRequest
	Args json.RawMessage `json:"args"`
}

// RunResponse is the /run reply.
type RunResponse struct {
	CompileResponse
	Results      []interface{}    `json:"results"`
	Cycles       int64            `json:"cycles"`
	Instructions int64            `json:"instructions"`
	ClassCounts  map[string]int64 `json:"class_counts,omitempty"`
}

// TargetInfo is one /targets catalog entry.
type TargetInfo struct {
	Name         string `json:"name"`
	Description  string `json:"description,omitempty"`
	SIMDWidth    int    `json:"simd_width"`
	ComplexLanes int    `json:"complex_lanes"`
	Instructions int    `json:"instructions"`
}

// compileError marks failures caused by the request content (bad
// MATLAB, unknown target, bad arguments) as distinct from server
// faults; they map to 422.
type compileError struct{ err error }

func (e compileError) Error() string { return e.err.Error() }

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// compile resolves one CompileRequest through the cache and shapes the
// response. It runs on a worker slot.
func (s *Server) compile(req *CompileRequest) (*mat2c.Result, *CompileResponse, error) {
	params, err := mat2c.ParseTypes(req.Params)
	if err != nil {
		return nil, nil, compileError{err}
	}
	opts := req.options()
	key, err := mat2c.CacheKey(req.Source, req.Entry, params, opts)
	if err != nil {
		return nil, nil, compileError{err}
	}

	begin := time.Now()
	var res *mat2c.Result
	var hit bool
	if req.NoCache {
		res, err = mat2c.Compile(req.Source, req.Entry, params, opts)
	} else {
		res, hit, err = mat2c.CompileCached(s.cache, req.Source, req.Entry, params, opts)
	}
	if err != nil {
		return nil, nil, compileError{err}
	}
	elapsed := time.Since(begin)
	s.metrics.ObserveCompile(res.StageTimings(), hit)

	resp := &CompileResponse{
		Entry:           res.Entry(),
		Target:          res.Processor().Name,
		CacheKey:        key,
		CacheHit:        hit,
		ElapsedUS:       elapsed.Microseconds(),
		CSource:         res.CSource(),
		CHeader:         res.CHeader(),
		CodeSize:        res.CodeSize(),
		VectorizedLoops: res.VectorizedLoops(),
		Intrinsics:      res.SelectedIntrinsics(),
		Warnings:        res.Warnings(),
	}
	if !req.SkipC {
		resp.CPrototype = res.CPrototype()
	}
	if !hit {
		resp.StagesUS = map[string]int64{}
		for _, st := range res.StageTimings() {
			resp.StagesUS[st.Stage] = st.Duration.Microseconds()
		}
	}
	return res, resp, nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.serveCompute(w, r, "compile", func(req *RunRequest) (interface{}, error) {
		_, resp, err := s.compile(&req.CompileRequest)
		return resp, err
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.serveCompute(w, r, "run", func(req *RunRequest) (interface{}, error) {
		res, cresp, err := s.compile(&req.CompileRequest)
		if err != nil {
			return nil, err
		}
		params, err := mat2c.ParseTypes(req.Params)
		if err != nil {
			return nil, compileError{err}
		}
		argsJSON := "[]"
		if len(req.Args) > 0 {
			argsJSON = string(req.Args)
		}
		args, err := DecodeArgs(argsJSON, params)
		if err != nil {
			return nil, compileError{err}
		}
		out, stats, err := res.RunWithStats(args...)
		if err != nil {
			return nil, compileError{fmt.Errorf("run: %w", err)}
		}
		resp := &RunResponse{
			CompileResponse: *cresp,
			Results:         make([]interface{}, len(out)),
			Cycles:          stats.Cycles,
			Instructions:    stats.Executed,
			ClassCounts:     stats.ClassCounts,
		}
		for i, v := range out {
			resp.Results[i] = EncodeValue(v)
		}
		return resp, nil
	})
}

// serveCompute is the shared compile/run request path: body decode,
// worker-slot acquisition, per-request timeout, panic-to-500, and
// request metrics.
func (s *Server) serveCompute(w http.ResponseWriter, r *http.Request, name string, fn func(*RunRequest) (interface{}, error)) {
	finish := s.metrics.RequestStarted(name)
	status, timedOut, panicked := http.StatusOK, false, false
	defer func() { finish(status, timedOut, panicked) }()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status = http.StatusBadRequest
		httpError(w, status, "bad request body: %v", err)
		return
	}
	if req.Source == "" {
		status = http.StatusBadRequest
		httpError(w, status, "missing \"source\"")
		return
	}

	ctx := r.Context()
	deadline := time.NewTimer(s.cfg.RequestTimeout)
	defer deadline.Stop()

	// Acquire a worker slot; waiting counts against the request
	// timeout so a saturated pool sheds load instead of queueing
	// unboundedly.
	select {
	case s.slots <- struct{}{}:
	case <-deadline.C:
		status, timedOut = http.StatusServiceUnavailable, true
		httpError(w, status, "server busy: no worker within %s", s.cfg.RequestTimeout)
		return
	case <-ctx.Done():
		status = http.StatusServiceUnavailable
		httpError(w, status, "client went away")
		return
	}

	type outcome struct {
		v        interface{}
		err      error
		panicked bool
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() { <-s.slots }()
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{err: fmt.Errorf("internal error: %v", p), panicked: true}
			}
		}()
		v, err := fn(&req)
		done <- outcome{v: v, err: err}
	}()

	select {
	case o := <-done:
		switch {
		case o.panicked:
			status, panicked = http.StatusInternalServerError, true
			httpError(w, status, "%v", o.err)
		case o.err != nil:
			var ce compileError
			if errors.As(o.err, &ce) {
				status = http.StatusUnprocessableEntity
			} else {
				status = http.StatusInternalServerError
			}
			httpError(w, status, "%v", o.err)
		default:
			writeJSON(w, o.v)
		}
	case <-deadline.C:
		// The worker keeps its slot until the pipeline finishes; the
		// client just stops waiting.
		status, timedOut = http.StatusGatewayTimeout, true
		httpError(w, status, "request exceeded %s", s.cfg.RequestTimeout)
	}
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("targets")
	defer func() { finish(http.StatusOK, false, false) }()
	var infos []TargetInfo
	for _, name := range mat2c.Targets() {
		p, err := mat2c.LoadProcessor(name)
		if err != nil {
			continue
		}
		infos = append(infos, TargetInfo{
			Name:         p.Name,
			Description:  p.Description,
			SIMDWidth:    p.SIMDWidth,
			ComplexLanes: p.ComplexLanes,
			Instructions: len(p.Instructions),
		})
	}
	writeJSON(w, map[string]interface{}{"targets": infos})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{
		"status":   "ok",
		"inflight": s.metrics.InFlight(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.metrics.SnapshotWith(s.cache.Stats()))
}
