// Package service implements mat2cd, the long-lived compile-and-simulate
// server: an HTTP/JSON front end over the mat2c pipeline with a
// content-addressed compilation cache, a bounded worker pool with
// per-request timeouts and panic containment, and per-stage compiler
// metrics. It is the serving layer the batch compiler lacks — repeated
// compilations of identical inputs (the common shape of design-space
// exploration loops, where the same kernels are rebuilt against many
// candidate processor descriptions) hit the cache instead of re-running
// the pipeline.
//
// Endpoints:
//
//	POST /compile  MATLAB source + types + target → C artifacts + stats
//	POST /run      compile + execute on the cycle-model simulator
//	POST /dse      launch an async design-space exploration sweep
//	GET  /dse      list sweep jobs
//	GET  /dse/{id} sweep progress and, once done, the Pareto report
//	POST /isx      launch an async instruction-set-extension mine
//	GET  /isx      list mining jobs
//	GET  /isx/{id} mining progress and, once done, the candidate report
//	GET  /targets  built-in processor catalog
//	GET  /healthz  liveness + in-flight gauge
//	GET  /metrics  JSON counters: requests, cache, per-stage histograms
//	GET  /fleet    fleet role, worker health, and queue depth
//
// In a sweep fleet (docs/FLEET.md) the same daemon also serves the
// coordinator side (POST /fleet/register, POST /fleet/deregister) or
// the worker side (POST /fleet/unit) of the sharding protocol,
// selected by Config.Role. With Config.ArtifactServe it additionally
// mounts the blob-protocol artifact server at /artifact (see
// internal/artifact/remote), making the daemon the fleet's shared
// cache origin; a coordinator advertises the endpoint to registering
// workers.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	mat2c "mat2c"
	"mat2c/internal/artifact"
	"mat2c/internal/artifact/remote"
	"mat2c/internal/fleet"
	"mat2c/internal/vm"
)

// Role selects the daemon's place in a sweep fleet (see docs/FLEET.md).
type Role int

const (
	// RoleSingle is the classic standalone daemon: sweeps and mines run
	// in-process.
	RoleSingle Role = iota
	// RoleCoordinator accepts /dse and /isx jobs as usual but shards
	// them into work units dispatched to registered workers.
	RoleCoordinator
	// RoleWorker executes fleet work units (POST /fleet/unit) on a
	// bounded sweep queue, separate from the interactive /run slots.
	RoleWorker
)

func (r Role) String() string {
	switch r {
	case RoleCoordinator:
		return "coordinator"
	case RoleWorker:
		return "worker"
	default:
		return "single"
	}
}

// Config tunes the server. Zero values select sensible defaults.
type Config struct {
	// Workers bounds concurrent compile/run work (default: NumCPU).
	Workers int
	// CacheSize bounds the compilation cache entry count
	// (default mat2c.DefaultCacheSize).
	CacheSize int
	// Store, when non-nil, backs the compilation cache with a durable
	// artifact tier (see internal/artifact): memory misses consult it
	// before compiling and fresh compilations write through. A store
	// entry that fails to decode degrades to a recompile, never an
	// error.
	Store artifact.Store
	// Remote, when non-nil, attaches a fleet-shared artifact tier
	// behind Store (see internal/artifact/remote): consulted after a
	// local miss, written through on compile. Any remote failure —
	// outage, corruption, open circuit breaker — degrades to local
	// operation, never an error.
	Remote artifact.Store
	// ArtifactServe mounts the blob-protocol artifact server (GET/PUT/
	// HEAD/DELETE /artifact/{key}, stats at GET /artifact) over Store,
	// so this daemon doubles as the fleet's cache origin. Requires
	// Store; a coordinator serving artifacts advertises the endpoint to
	// registering workers.
	ArtifactServe bool
	// RequestTimeout bounds each compile/run request, queueing
	// included (default 30s).
	RequestTimeout time.Duration
	// MaxRequestBytes bounds request bodies (default 8 MiB).
	MaxRequestBytes int64

	// Role selects single-process, coordinator, or worker operation.
	Role Role
	// Fleet tunes the coordinator's dispatcher (coordinator role only).
	Fleet fleet.Config
	// SweepSlots bounds concurrently executing fleet work units on a
	// worker. It is deliberately separate from Workers so sweep units
	// can never saturate the interactive /run pool
	// (default max(1, Workers/2)).
	SweepSlots int
	// SweepQueue bounds sweep units admitted but not yet running; a
	// full queue sheds with 503 + Retry-After (default 2*SweepSlots).
	SweepQueue int
	// UnitTimeout bounds one fleet work unit's execution on a worker
	// (default 5m; units batch several compile+simulate runs, so the
	// interactive RequestTimeout would be too tight).
	UnitTimeout time.Duration
	// ShutdownGrace bounds how long Shutdown waits for
	// dispatched-but-unacked fleet units before recording them as
	// abandoned (default 5s).
	ShutdownGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.CacheSize <= 0 {
		c.CacheSize = mat2c.DefaultCacheSize
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.SweepSlots <= 0 {
		c.SweepSlots = c.Workers / 2
		if c.SweepSlots < 1 {
			c.SweepSlots = 1
		}
	}
	if c.SweepQueue <= 0 {
		c.SweepQueue = 2 * c.SweepSlots
	}
	if c.UnitTimeout <= 0 {
		c.UnitTimeout = 5 * time.Minute
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 5 * time.Second
	}
	return c
}

// Server is the compile-and-simulate service state: cache, metrics,
// and the worker-pool semaphore. Create with New; serve via Handler.
type Server struct {
	cfg     Config
	cache   *mat2c.Cache
	metrics *Metrics
	slots   chan struct{}

	// jobsCtx parents every background job (async DSE sweeps); Shutdown
	// cancels it so a stopping server reclaims its workers.
	jobsCtx    context.Context
	jobsCancel context.CancelFunc

	// coord is the fleet dispatcher (coordinator role only).
	coord *fleet.Coordinator
	// artifacts is the blob-protocol server mounted at /artifact when
	// Config.ArtifactServe is set (nil otherwise).
	artifacts *remote.Server
	// sweepAdmit bounds fleet units admitted (queued or running) on a
	// worker; sweepSlots bounds the ones actually executing. Both are
	// separate from slots, so sweep traffic cannot starve interactive
	// /compile and /run requests.
	sweepAdmit chan struct{}
	sweepSlots chan struct{}

	// Design-space exploration job registry (see dse.go).
	dseMu    sync.Mutex
	dseSeq   int
	dseJobs  map[string]*dseJob
	dseOrder []string

	// Instruction-set-extension mining job registry (see isx.go).
	isxMu    sync.Mutex
	isxSeq   int
	isxJobs  map[string]*isxJob
	isxOrder []string
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	jobsCtx, jobsCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      mat2c.NewCache(cfg.CacheSize),
		metrics:    NewMetrics(),
		slots:      make(chan struct{}, cfg.Workers),
		jobsCtx:    jobsCtx,
		jobsCancel: jobsCancel,
	}
	if cfg.Store != nil {
		s.cache.SetStore(cfg.Store)
	}
	if cfg.Remote != nil {
		s.cache.SetRemoteStore(cfg.Remote)
	}
	if cfg.ArtifactServe && cfg.Store != nil {
		s.artifacts = remote.NewServer(cfg.Store, 0)
	}
	switch cfg.Role {
	case RoleCoordinator:
		fcfg := cfg.Fleet
		if fcfg.UnitTimeout <= 0 {
			fcfg.UnitTimeout = cfg.UnitTimeout
		}
		s.coord = fleet.NewCoordinator(fcfg)
	case RoleWorker:
		s.sweepAdmit = make(chan struct{}, cfg.SweepSlots+cfg.SweepQueue)
		s.sweepSlots = make(chan struct{}, cfg.SweepSlots)
	}
	return s
}

// Shutdown cancels the server's background work (running DSE sweeps
// and ISX mines observe the cancellation and stop). In coordinator
// mode it then waits — up to Config.ShutdownGrace — for every
// dispatched-but-unacked fleet work unit to come back; the
// cancellation has already propagated into the workers' request
// contexts, so acks arrive promptly, and any straggler past the grace
// period is recorded in the fleet's units_abandoned counter rather
// than dropped silently. In-flight HTTP requests are governed by their
// own request contexts — cancelling the http.Server's BaseContext
// propagates into their workers the same way. Shutdown is idempotent.
// Shutdown also drains the cache's asynchronous artifact-store
// write-throughs (Cache.Flush), so a durable store attached via
// Config.Store holds every compilation the process finished.
func (s *Server) Shutdown() {
	s.jobsCancel()
	if s.coord != nil {
		qctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		s.coord.Quiesce(qctx)
	}
	s.cache.Flush()
}

// Fleet exposes the coordinator (nil outside coordinator role; for
// tests and embedding servers).
func (s *Server) Fleet() *fleet.Coordinator { return s.coord }

// Config returns the server's effective (defaults-applied) configuration.
func (s *Server) Config() Config { return s.cfg }

// Metrics exposes the registry (for tests and embedding servers).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the compilation cache (for tests and warmup).
func (s *Server) Cache() *mat2c.Cache { return s.cache }

// Handler returns the service's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", s.handleCompile)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /dse", s.handleDSE)
	mux.HandleFunc("GET /dse", s.handleDSEList)
	mux.HandleFunc("GET /dse/{id}", s.handleDSEStatus)
	mux.HandleFunc("DELETE /dse/{id}", s.handleDSECancel)
	mux.HandleFunc("POST /isx", s.handleISX)
	mux.HandleFunc("GET /isx", s.handleISXList)
	mux.HandleFunc("GET /isx/{id}", s.handleISXStatus)
	mux.HandleFunc("DELETE /isx/{id}", s.handleISXCancel)
	mux.HandleFunc("GET /targets", s.handleTargets)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /fleet", s.handleFleetStatus)
	if s.artifacts != nil {
		s.artifacts.Mount(mux, "/artifact")
	}
	switch s.cfg.Role {
	case RoleCoordinator:
		mux.HandleFunc("POST /fleet/register", s.handleFleetRegister)
		mux.HandleFunc("POST /fleet/deregister", s.handleFleetDeregister)
	case RoleWorker:
		mux.HandleFunc("POST /fleet/unit", s.handleFleetUnit)
	}
	return mux
}

// CompileRequest is the /compile (and the compile half of /run) body.
// Params uses the CLI type syntax ("real(1,:), complex, int"); Target
// is a built-in name, an embedded description, or a server-side file
// path.
type CompileRequest struct {
	Source string `json:"source"`
	Entry  string `json:"entry,omitempty"`
	Params string `json:"params,omitempty"`
	Target string `json:"target,omitempty"`

	Baseline     bool `json:"baseline,omitempty"`
	NoVectorize  bool `json:"no_vectorize,omitempty"`
	NoIntrinsics bool `json:"no_intrinsics,omitempty"`
	OptLevel     int  `json:"opt_level,omitempty"`
	SkipC        bool `json:"skip_c,omitempty"`

	// NoCache bypasses the compilation cache for this request (the
	// result is still stored for future hits).
	NoCache bool `json:"no_cache,omitempty"`
}

func (req *CompileRequest) options() mat2c.Options {
	return mat2c.Options{
		Target:       req.Target,
		Baseline:     req.Baseline,
		NoVectorize:  req.NoVectorize,
		NoIntrinsics: req.NoIntrinsics,
		OptLevel:     req.OptLevel,
		SkipC:        req.SkipC,
	}
}

// CompileResponse is the /compile reply; /run embeds it.
type CompileResponse struct {
	Entry  string `json:"entry"`
	Target string `json:"target"`

	CacheKey  string `json:"cache_key"`
	CacheHit  bool   `json:"cache_hit"`
	ElapsedUS int64  `json:"elapsed_us"`
	// StagesUS reports per-stage compile wall time; absent on a cache
	// hit (no stage ran).
	StagesUS map[string]int64 `json:"stages_us,omitempty"`

	CSource    string `json:"c_source,omitempty"`
	CHeader    string `json:"c_header,omitempty"`
	CPrototype string `json:"c_prototype,omitempty"`

	CodeSize        int            `json:"code_size"`
	VectorizedLoops int            `json:"vectorized_loops"`
	Intrinsics      map[string]int `json:"intrinsics,omitempty"`
	Warnings        []string       `json:"warnings,omitempty"`
}

// RunRequest is the /run body: a compilation plus simulator arguments
// in cmd/asipsim's JSON format.
type RunRequest struct {
	CompileRequest
	Args json.RawMessage `json:"args"`
}

// RunResponse is the /run reply.
type RunResponse struct {
	CompileResponse
	Results      []interface{}    `json:"results"`
	Cycles       int64            `json:"cycles"`
	Instructions int64            `json:"instructions"`
	ClassCounts  map[string]int64 `json:"class_counts,omitempty"`
}

// TargetInfo is one /targets catalog entry.
type TargetInfo struct {
	Name         string `json:"name"`
	Description  string `json:"description,omitempty"`
	SIMDWidth    int    `json:"simd_width"`
	ComplexLanes int    `json:"complex_lanes"`
	Instructions int    `json:"instructions"`
}

// compileError marks failures caused by the request content (bad
// MATLAB, unknown target, bad arguments) as distinct from server
// faults; they map to 422.
type compileError struct{ err error }

func (e compileError) Error() string { return e.err.Error() }
func (e compileError) Unwrap() error { return e.err }

// vmFaultError marks simulator failures that are not attributable to
// the request arguments (cycle-budget exhaustion, runtime faults,
// engine bugs); they map to 500 and the vm_faults counter, so internal
// faults never masquerade as client errors.
type vmFaultError struct{ err error }

func (e vmFaultError) Error() string { return e.err.Error() }
func (e vmFaultError) Unwrap() error { return e.err }

// isCtxErr reports whether err stems from a cancelled or expired
// context (request deadline, client disconnect, server shutdown) —
// including a vm.CancelledError, which unwraps to the context error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// compile resolves one CompileRequest through the cache and shapes the
// response. It runs on a worker slot and observes ctx between pipeline
// stages.
func (s *Server) compile(ctx context.Context, req *CompileRequest) (*mat2c.Result, *CompileResponse, error) {
	params, err := mat2c.ParseTypes(req.Params)
	if err != nil {
		return nil, nil, compileError{err}
	}
	opts := req.options()
	key, err := mat2c.CacheKey(req.Source, req.Entry, params, opts)
	if err != nil {
		return nil, nil, compileError{err}
	}

	begin := time.Now()
	var res *mat2c.Result
	var hit bool
	if req.NoCache {
		// Bypass the lookup but keep the documented contract: the fresh
		// result is still stored for future hits.
		res, err = mat2c.CompileContext(ctx, req.Source, req.Entry, params, opts)
		if err == nil {
			s.cache.Put(key, res)
		}
	} else {
		res, hit, err = mat2c.CompileCachedContext(ctx, s.cache, req.Source, req.Entry, params, opts)
	}
	if err != nil {
		if isCtxErr(err) {
			return nil, nil, err // cancellation, not a client error
		}
		return nil, nil, compileError{err}
	}
	elapsed := time.Since(begin)
	s.metrics.ObserveCompile(res.StageTimings(), hit)

	resp := &CompileResponse{
		Entry:           res.Entry(),
		Target:          res.Processor().Name,
		CacheKey:        key,
		CacheHit:        hit,
		ElapsedUS:       elapsed.Microseconds(),
		CSource:         res.CSource(),
		CHeader:         res.CHeader(),
		CodeSize:        res.CodeSize(),
		VectorizedLoops: res.VectorizedLoops(),
		Intrinsics:      res.SelectedIntrinsics(),
		Warnings:        res.Warnings(),
	}
	if !req.SkipC {
		resp.CPrototype = res.CPrototype()
	}
	if !hit {
		resp.StagesUS = map[string]int64{}
		for _, st := range res.StageTimings() {
			resp.StagesUS[st.Stage] = st.Duration.Microseconds()
		}
	}
	return res, resp, nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.serveCompute(w, r, "compile", func(ctx context.Context, req *RunRequest) (interface{}, error) {
		_, resp, err := s.compile(ctx, &req.CompileRequest)
		return resp, err
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.serveCompute(w, r, "run", func(ctx context.Context, req *RunRequest) (interface{}, error) {
		res, cresp, err := s.compile(ctx, &req.CompileRequest)
		if err != nil {
			return nil, err
		}
		params, err := mat2c.ParseTypes(req.Params)
		if err != nil {
			return nil, compileError{err}
		}
		argsJSON := "[]"
		if len(req.Args) > 0 {
			argsJSON = string(req.Args)
		}
		args, err := DecodeArgs(argsJSON, params)
		if err != nil {
			return nil, compileError{err}
		}
		out, stats, err := res.RunWithStatsContext(ctx, args...)
		if err != nil {
			// Classify simulator failures: cancellations propagate as-is
			// (the caller maps them to the timeout/disconnect path);
			// runtime faults (*vm.FaultError: cycle-budget exhaustion,
			// out-of-bounds reached at run time, engine faults) are
			// server-side 500s; everything else — argument marshalling
			// against the declared parameters — is the client's 422.
			var fe *vm.FaultError
			switch {
			case isCtxErr(err):
				return nil, err
			case errors.As(err, &fe):
				return nil, vmFaultError{fmt.Errorf("run: %w", err)}
			default:
				return nil, compileError{fmt.Errorf("run: %w", err)}
			}
		}
		resp := &RunResponse{
			CompileResponse: *cresp,
			Results:         make([]interface{}, len(out)),
			Cycles:          stats.Cycles,
			Instructions:    stats.Executed,
			ClassCounts:     stats.ClassCounts,
		}
		for i, v := range out {
			resp.Results[i] = EncodeValue(v)
		}
		return resp, nil
	})
}

// serveCompute is the shared compile/run request path: body decode,
// worker-slot acquisition, per-request deadline and cancellation
// propagation, panic-to-500, and request metrics. The worker receives a
// context derived from the request (bounded by Config.RequestTimeout);
// when the deadline fires or the client disconnects, the pipeline
// observes the cancellation (between compile stages, and within a
// bounded number of simulated instructions in the VM) and the worker
// slot is reclaimed promptly instead of burning until natural
// completion.
func (s *Server) serveCompute(w http.ResponseWriter, r *http.Request, name string, fn func(context.Context, *RunRequest) (interface{}, error)) {
	finish := s.metrics.RequestStarted(name)
	status, timedOut, cancelled, panicked := http.StatusOK, false, false, false
	defer func() { finish(status, timedOut, cancelled, panicked) }()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
			httpError(w, status, "request body exceeds the %d-byte limit", mbe.Limit)
			return
		}
		status = http.StatusBadRequest
		httpError(w, status, "bad request body: %v", err)
		return
	}
	if req.Source == "" {
		status = http.StatusBadRequest
		httpError(w, status, "missing \"source\"")
		return
	}

	// The work context carries both cancellation sources: the
	// per-request deadline and the client's own context (disconnect, or
	// server shutdown via the http.Server's BaseContext).
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// clientGone distinguishes a deadline expiry (504/503, counted as a
	// timeout) from a client disconnect (counted as cancelled).
	clientGone := func() bool { return r.Context().Err() != nil }

	// Acquire a worker slot; waiting counts against the request
	// timeout so a saturated pool sheds load instead of queueing
	// unboundedly.
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		if clientGone() {
			status, cancelled = http.StatusServiceUnavailable, true
			httpError(w, status, "client went away")
		} else {
			status, timedOut = http.StatusServiceUnavailable, true
			s.metrics.QueueShed(name)
			w.Header().Set("Retry-After", "1")
			httpError(w, status, "server busy: no worker within %s", s.cfg.RequestTimeout)
		}
		return
	}

	type outcome struct {
		v        interface{}
		err      error
		panicked bool
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() { <-s.slots }()
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{err: fmt.Errorf("internal error: %v", p), panicked: true}
			}
		}()
		v, err := fn(ctx, &req)
		done <- outcome{v: v, err: err}
	}()

	select {
	case o := <-done:
		switch {
		case o.panicked:
			status, panicked = http.StatusInternalServerError, true
			httpError(w, status, "%v", o.err)
		case o.err != nil && isCtxErr(o.err):
			// The worker observed our cancellation before this select
			// did; report it the same way as the ctx.Done branch below.
			if clientGone() {
				status, cancelled = http.StatusServiceUnavailable, true
				httpError(w, status, "client went away")
			} else {
				status, timedOut = http.StatusGatewayTimeout, true
				httpError(w, status, "request exceeded %s (work cancelled)", s.cfg.RequestTimeout)
			}
		case o.err != nil:
			var ce compileError
			var vf vmFaultError
			switch {
			case errors.As(o.err, &vf):
				status = http.StatusInternalServerError
				s.metrics.VMFault()
			case errors.As(o.err, &ce):
				status = http.StatusUnprocessableEntity
			default:
				status = http.StatusInternalServerError
			}
			httpError(w, status, "%v", o.err)
		default:
			writeJSON(w, o.v)
		}
	case <-ctx.Done():
		// The context's cancellation has already propagated into the
		// worker: the pipeline aborts at its next check and frees the
		// slot — the client stops waiting AND the work stops burning.
		if clientGone() {
			status, cancelled = http.StatusServiceUnavailable, true
			httpError(w, status, "client went away")
		} else {
			status, timedOut = http.StatusGatewayTimeout, true
			httpError(w, status, "request exceeded %s (work cancelled)", s.cfg.RequestTimeout)
		}
	}
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("targets")
	defer func() { finish(http.StatusOK, false, false, false) }()
	var infos []TargetInfo
	var loadErrors []string
	for _, name := range mat2c.Targets() {
		p, err := mat2c.LoadProcessor(name)
		if err != nil {
			// A built-in that fails to load is catalog corruption; surface
			// it to the client and the warning counter instead of silently
			// shrinking the catalog.
			loadErrors = append(loadErrors, fmt.Sprintf("%s: %v", name, err))
			s.metrics.TargetLoadError()
			continue
		}
		infos = append(infos, TargetInfo{
			Name:         p.Name,
			Description:  p.Description,
			SIMDWidth:    p.SIMDWidth,
			ComplexLanes: p.ComplexLanes,
			Instructions: len(p.Instructions),
		})
	}
	resp := map[string]interface{}{"targets": infos}
	if len(loadErrors) > 0 {
		resp["load_errors"] = loadErrors
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{
		"status":   "ok",
		"inflight": s.metrics.InFlight(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.metrics.SnapshotWith(s.cache.Stats()))
}
