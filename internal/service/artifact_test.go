package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	mat2c "mat2c"
	"mat2c/internal/artifact"
	"mat2c/internal/artifact/remote"
	"mat2c/internal/fleet"
)

func openStore(t *testing.T) *artifact.DiskStore {
	t.Helper()
	s, err := artifact.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShutdownMakesArtifactsDurable is the drain-durability regression
// test: an artifact whose compile finished just before shutdown must be
// in the store when Shutdown returns, with no explicit Flush by the
// caller — the write-through is asynchronous and Shutdown must wait
// for it.
func TestShutdownMakesArtifactsDurable(t *testing.T) {
	store := openStore(t)
	s := New(Config{Workers: 2, Store: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/compile", map[string]interface{}{
		"source": scaleSrc, "params": "real(1,:), real", "target": "dspasip",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d: %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}

	s.Shutdown()
	if _, err := store.Get(cr.CacheKey); err != nil {
		t.Fatalf("artifact not durable after Shutdown: %v", err)
	}
}

// TestArtifactServeMountsBlobProtocol: with ArtifactServe the daemon's
// own mux serves the store at /artifact, usable by a RemoteStore
// client, and /metrics carries the remote section on a consumer.
func TestArtifactServeMountsBlobProtocol(t *testing.T) {
	store := openStore(t)
	s := New(Config{Workers: 2, Store: store, ArtifactServe: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/compile", map[string]interface{}{
		"source": scaleSrc, "params": "real(1,:), real", "target": "dspasip",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d: %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	s.Cache().Flush()

	// Fetch the artifact over the blob protocol and check it decodes.
	rc := remote.New(ts.URL+"/artifact", remote.Options{})
	data, err := rc.Get(cr.CacheKey)
	if err != nil {
		t.Fatalf("blob get of a just-compiled artifact: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("blob get returned an empty entry")
	}
	if n, err := rc.Len(); err != nil || n != 1 {
		t.Fatalf("origin entry count: %d %v, want 1", n, err)
	}

	// A second server using that endpoint as its remote tier restores
	// the compile without running the pipeline, and its /metrics report
	// the remote section.
	s2 := New(Config{Workers: 2, Remote: remote.New(ts.URL+"/artifact", remote.Options{})})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, body2 := postJSON(t, ts2, "/compile", map[string]interface{}{
		"source": scaleSrc, "params": "real(1,:), real", "target": "dspasip",
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("remote-backed compile: status %d: %s", resp2.StatusCode, body2)
	}
	var cr2 CompileResponse
	if err := json.Unmarshal(body2, &cr2); err != nil {
		t.Fatal(err)
	}
	if !cr2.CacheHit {
		t.Error("remote-tier restore not reported as a cache hit")
	}
	st := s2.Cache().Stats()
	if st.RemoteHits != 1 || st.Compiles != 0 {
		t.Errorf("consumer cache stats: %+v, want 1 remote hit / 0 compiles", st)
	}
	var snap struct {
		Cache mat2c.CacheStats `json:"cache"`
	}
	getJSON(t, ts2, "/metrics", &snap)
	if snap.Cache.RemoteHits != 1 {
		t.Errorf("/metrics remote_hits = %d, want 1", snap.Cache.RemoteHits)
	}
	if snap.Cache.Remote == nil || snap.Cache.Remote.BreakerState != "closed" {
		t.Errorf("/metrics remote store section: %+v", snap.Cache.Remote)
	}
}

// TestFleetRegisterAdvertisesArtifactURL: a coordinator serving
// artifacts tells registering workers where the shared cache lives;
// one that does not leaves the field empty.
func TestFleetRegisterAdvertisesArtifactURL(t *testing.T) {
	register := func(cfg Config) fleet.RegisterReply {
		t.Helper()
		cfg.Role = RoleCoordinator
		s := New(cfg)
		defer s.Shutdown()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, body := postJSON(t, ts, "/fleet/register", fleet.RegisterRequest{URL: "http://worker:1", Slots: 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register: status %d: %s", resp.StatusCode, body)
		}
		var rep fleet.RegisterReply
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	if rep := register(Config{Store: openStore(t), ArtifactServe: true}); rep.ArtifactURL != "/artifact" {
		t.Errorf("serving coordinator advertised %q, want /artifact", rep.ArtifactURL)
	}
	if rep := register(Config{}); rep.ArtifactURL != "" {
		t.Errorf("non-serving coordinator advertised %q, want empty", rep.ArtifactURL)
	}
}
