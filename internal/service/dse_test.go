package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mat2c/internal/dse"
)

// smallDSERequest is a quick sweep for endpoint tests: 2 widths x 2
// group sets over two kernels at tiny scale.
func smallDSERequest() *DSERequest {
	return &DSERequest{
		Sweep: &dse.Sweep{
			Widths:  []int{1, 4},
			Complex: []bool{true},
			Groups:  [][]string{nil, {"mac", "cmplx"}},
		},
		Jobs:    2,
		Scale:   0.05,
		Kernels: []string{"fir", "cfir"},
	}
}

func waitDSE(t *testing.T, ts *httptest.Server, id string) DSEStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st DSEStatus
		getJSON(t, ts, "/dse/"+id, &st)
		if st.State != "running" && st.State != "cancelling" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("DSE job %s still running after 30s (%d/%d)", id, st.Evaluated, st.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDSEEndpoint(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/dse", smallDSERequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /dse: status %d: %s", resp.StatusCode, body)
	}
	var acc DSEAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" || acc.Status != "/dse/"+acc.ID {
		t.Fatalf("bad accept reply: %+v", acc)
	}
	if acc.Variants < 3 {
		t.Fatalf("sweep enumerated %d variants, want >= 3", acc.Variants)
	}

	st := waitDSE(t, ts, acc.ID)
	if st.State != "done" {
		t.Fatalf("job ended %q: %s", st.State, st.Error)
	}
	if st.Evaluated != st.Total || st.Report == nil {
		t.Fatalf("job incomplete: %d/%d, report %v", st.Evaluated, st.Total, st.Report != nil)
	}
	if len(st.Report.Frontier) == 0 {
		t.Error("done job has empty frontier")
	}
	for _, v := range st.Report.Variants {
		if v.Error != "" {
			t.Errorf("variant %s failed: %s", v.Name, v.Error)
		}
	}

	// The job ran through the server's shared cache: a second identical
	// sweep must hit, and the /metrics DSE section must reflect both.
	resp, body = postJSON(t, ts, "/dse", smallDSERequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST /dse: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	st = waitDSE(t, ts, acc.ID)
	if st.State != "done" {
		t.Fatalf("second job ended %q: %s", st.State, st.Error)
	}
	if st.Report.CacheHits == 0 {
		t.Error("second identical sweep reported no cache hits")
	}

	var snap Snapshot
	getJSON(t, ts, "/metrics", &snap)
	if snap.DSE.Sweeps != 2 || snap.DSE.Running != 0 {
		t.Errorf("metrics: sweeps=%d running=%d, want 2/0", snap.DSE.Sweeps, snap.DSE.Running)
	}
	if want := uint64(2 * len(st.Report.Variants)); snap.DSE.VariantsEvaluated != want {
		t.Errorf("metrics: variants_evaluated=%d, want %d", snap.DSE.VariantsEvaluated, want)
	}
	if snap.DSE.CacheHitRate <= 0 {
		t.Errorf("metrics: cache_hit_rate=%v, want > 0", snap.DSE.CacheHitRate)
	}
	if snap.DSE.LastFrontierSize != len(st.Report.Frontier) {
		t.Errorf("metrics: last_frontier_size=%d, want %d",
			snap.DSE.LastFrontierSize, len(st.Report.Frontier))
	}
}

func TestDSEEndpointValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Unknown sweep axis → 400 (DisallowUnknownFields on the body).
	resp, _ := postJSON(t, ts, "/dse", map[string]interface{}{"widhts": []int{1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("misspelled field: status %d, want 400", resp.StatusCode)
	}

	// Unknown base target → 422, synchronously.
	resp, _ = postJSON(t, ts, "/dse", &DSERequest{Procs: []string{"nosuch"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown base: status %d, want 422", resp.StatusCode)
	}

	// Unknown kernel → 422, synchronously.
	resp, _ = postJSON(t, ts, "/dse", &DSERequest{
		Sweep:   &dse.Sweep{Widths: []int{1}, Complex: []bool{false}, Groups: [][]string{nil}},
		Kernels: []string{"nosuch"},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown kernel: status %d, want 422", resp.StatusCode)
	}

	// Unknown job id → 404.
	r, err := ts.Client().Get(ts.URL + "/dse/dse-999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", r.StatusCode)
	}
}

func TestDSEJobRegistryBounded(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &DSERequest{
		Sweep: &dse.Sweep{Widths: []int{1}, Complex: []bool{false}, Groups: [][]string{nil}},
		Scale: 0.05, Kernels: []string{"fir"},
	}
	var last string
	for i := 0; i < maxFinishedDSEJobs+8; i++ {
		resp, body := postJSON(t, ts, "/dse", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: status %d: %s", i, resp.StatusCode, body)
		}
		var acc DSEAccepted
		if err := json.Unmarshal(body, &acc); err != nil {
			t.Fatal(err)
		}
		waitDSE(t, ts, acc.ID)
		last = acc.ID
	}
	s.dseMu.Lock()
	n := len(s.dseJobs)
	s.dseMu.Unlock()
	if n > maxFinishedDSEJobs {
		t.Errorf("registry holds %d finished jobs, cap %d", n, maxFinishedDSEJobs)
	}
	// The newest job must survive retirement.
	var st DSEStatus
	getJSON(t, ts, "/dse/"+last, &st)
	if st.State != "done" {
		t.Errorf("newest job %s missing after retirement", last)
	}
}
