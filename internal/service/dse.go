// Design-space exploration endpoint: POST /dse accepts a sweep
// specification, validates it synchronously, and runs the exploration
// asynchronously against the server's shared compilation cache — the
// serving-layer shape of the compiler↔architecture loop, where one
// warm cache amortizes compilation across sweeps and across clients.
// GET /dse lists known jobs; GET /dse/{id} reports progress and, once
// done, the full report. DELETE /dse/{id} cancels a running sweep:
// workers observe the cancellation between variants and stop
// evaluating. In coordinator role the same endpoints shard the sweep
// across the fleet instead of exploring in-process; the merged report
// is byte-identical.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"mat2c/internal/dse"
)

// maxFinishedDSEJobs bounds the finished-job registry; the oldest
// finished jobs are dropped once it overflows.
const maxFinishedDSEJobs = 32

// DSERequest is the POST /dse body. Sweep carries the axes (defaults
// apply per dse.Sweep); Procs optionally fans the same axes out over
// several base targets into one merged frontier.
type DSERequest struct {
	Sweep   *dse.Sweep `json:"sweep,omitempty"`
	Procs   []string   `json:"procs,omitempty"`
	Jobs    int        `json:"jobs,omitempty"`
	Scale   float64    `json:"scale,omitempty"`
	Kernels []string   `json:"kernels,omitempty"`
	// EmitC additionally generates C artifacts for every variant
	// (slower; off by default for cycle-model scoring).
	EmitC bool `json:"emit_c,omitempty"`
}

// DSEAccepted is the POST /dse reply: the job is queued.
type DSEAccepted struct {
	ID       string `json:"id"`
	Status   string `json:"status_url"`
	Variants int    `json:"variants"`
}

// DSEStatus is the GET /dse/{id} (and DELETE /dse/{id}) reply.
type DSEStatus struct {
	ID        string      `json:"id"`
	State     string      `json:"state"` // "running", "cancelling", "done", "failed", "cancelled"
	Evaluated int         `json:"evaluated"`
	Total     int         `json:"total"`
	Error     string      `json:"error,omitempty"`
	Report    *dse.Report `json:"report,omitempty"`
}

// dseJob is one exploration's lifecycle state.
type dseJob struct {
	id    string
	total int
	// cancel aborts the job's context; safe to call any number of times
	// from any goroutine.
	cancel context.CancelFunc

	mu        sync.Mutex
	evaluated int
	done      bool
	cancelled bool // a DELETE (or server shutdown) requested cancellation
	err       error
	report    *dse.Report
}

func (j *dseJob) status() DSEStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := DSEStatus{ID: j.id, Evaluated: j.evaluated, Total: j.total}
	switch {
	case !j.done && j.cancelled:
		st.State = "cancelling"
	case !j.done:
		st.State = "running"
	case j.cancelled:
		st.State = "cancelled"
		if j.err != nil {
			st.Error = j.err.Error()
		}
	case j.err != nil:
		st.State = "failed"
		st.Error = j.err.Error()
	default:
		st.State = "done"
		st.Report = j.report
	}
	return st
}

// sweeps expands the request into per-base sweeps.
func (req *DSERequest) sweeps() []*dse.Sweep {
	base := req.Sweep
	if base == nil {
		base = &dse.Sweep{}
	}
	if len(req.Procs) == 0 {
		return []*dse.Sweep{base}
	}
	var out []*dse.Sweep
	for _, p := range req.Procs {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		sw := *base
		sw.Base = p
		out = append(out, &sw)
	}
	if len(out) == 0 {
		out = []*dse.Sweep{base}
	}
	return out
}

func (s *Server) handleDSE(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("dse")
	status := http.StatusAccepted
	defer func() { finish(status, false, false, false) }()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req DSERequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
			httpError(w, status, "request body exceeds the %d-byte limit", mbe.Limit)
			return
		}
		status = http.StatusBadRequest
		httpError(w, status, "bad request body: %v", err)
		return
	}

	// Validate the whole specification up front so a bad sweep fails
	// the POST, not the background job: enumerate every variant now.
	sweeps := req.sweeps()
	total := 0
	for _, sw := range sweeps {
		vs, err := sw.Enumerate()
		if err != nil {
			status = http.StatusUnprocessableEntity
			httpError(w, status, "%v", err)
			return
		}
		total += len(vs)
	}
	if err := dse.ValidateKernels(req.Kernels); err != nil {
		status = http.StatusUnprocessableEntity
		httpError(w, status, "%v", err)
		return
	}

	jobs := req.Jobs
	if jobs <= 0 || jobs > s.cfg.Workers {
		jobs = s.cfg.Workers
	}
	opts := dse.Options{
		Jobs:    jobs,
		Scale:   req.Scale,
		Kernels: req.Kernels,
		Cache:   s.cache,
		EmitC:   req.EmitC,
	}

	// The job's context descends from the server's jobsCtx so Shutdown
	// cancels every running sweep; DELETE /dse/{id} cancels just this one.
	jctx, jcancel := context.WithCancel(s.jobsCtx)
	job := s.registerDSEJob(total, jcancel)
	opts.OnVariant = func(vr dse.VariantResult) {
		job.mu.Lock()
		job.evaluated++
		job.mu.Unlock()
		s.metrics.ObserveDSEVariant(vr.CacheLookups, vr.CacheHits)
	}
	// Coordinator role shards the sweep across the fleet; the two paths
	// share enumeration, per-variant evaluation, and report assembly, so
	// the reports agree byte for byte (modulo wall time).
	explore := dse.ExploreContext
	if s.coord != nil {
		explore = s.coord.ExploreDSE
	}
	s.metrics.DSESweepStarted()
	go func() {
		defer jcancel()
		rep, err := explore(jctx, sweeps, opts)
		cancelled := err != nil && isCtxErr(err)
		frontier := 0
		if rep != nil {
			frontier = len(rep.Frontier)
		}
		s.metrics.DSESweepFinished(frontier, err != nil && !cancelled, cancelled)
		job.mu.Lock()
		job.done, job.err, job.report = true, err, rep
		if cancelled {
			job.cancelled = true
		}
		job.mu.Unlock()
		s.retireDSEJobs()
	}()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(DSEAccepted{ID: job.id, Status: "/dse/" + job.id, Variants: total})
}

// DSEJobSummary is one GET /dse entry: a job's status without its
// (potentially large) report.
type DSEJobSummary struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Evaluated int    `json:"evaluated"`
	Total     int    `json:"total"`
	Error     string `json:"error,omitempty"`
	Status    string `json:"status_url"`
}

// DSEJobList is the GET /dse reply, oldest job first.
type DSEJobList struct {
	Jobs []DSEJobSummary `json:"jobs"`
}

// handleDSEList (GET /dse) lists every job the registry still holds,
// in submission order. Reports are omitted — fetch them per job via
// the status URL.
func (s *Server) handleDSEList(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("dse_list")
	defer func() { finish(http.StatusOK, false, false, false) }()

	s.dseMu.Lock()
	jobs := make([]*dseJob, 0, len(s.dseOrder))
	for _, id := range s.dseOrder {
		if j := s.dseJobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.dseMu.Unlock()

	list := DSEJobList{Jobs: []DSEJobSummary{}}
	for _, j := range jobs {
		st := j.status()
		list.Jobs = append(list.Jobs, DSEJobSummary{
			ID:        st.ID,
			State:     st.State,
			Evaluated: st.Evaluated,
			Total:     st.Total,
			Error:     st.Error,
			Status:    "/dse/" + st.ID,
		})
	}
	writeJSON(w, list)
}

func (s *Server) handleDSEStatus(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("dse_status")
	status := http.StatusOK
	defer func() { finish(status, false, false, false) }()

	id := r.PathValue("id")
	s.dseMu.Lock()
	job := s.dseJobs[id]
	s.dseMu.Unlock()
	if job == nil {
		status = http.StatusNotFound
		httpError(w, status, "no such DSE job %q", id)
		return
	}
	writeJSON(w, job.status())
}

// handleDSECancel (DELETE /dse/{id}) cancels a running sweep. The
// workers observe the cancellation between variants, so the job moves
// through "cancelling" to "cancelled" once in-flight variants wind
// down. Cancelling a finished job is a no-op; the reply is always the
// job's current status.
func (s *Server) handleDSECancel(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("dse_cancel")
	status := http.StatusOK
	defer func() { finish(status, false, false, false) }()

	id := r.PathValue("id")
	s.dseMu.Lock()
	job := s.dseJobs[id]
	s.dseMu.Unlock()
	if job == nil {
		status = http.StatusNotFound
		httpError(w, status, "no such DSE job %q", id)
		return
	}
	job.mu.Lock()
	if !job.done {
		job.cancelled = true
	}
	job.mu.Unlock()
	job.cancel()
	writeJSON(w, job.status())
}

// registerDSEJob allocates a job slot under a fresh sequential id.
func (s *Server) registerDSEJob(total int, cancel context.CancelFunc) *dseJob {
	s.dseMu.Lock()
	defer s.dseMu.Unlock()
	s.dseSeq++
	job := &dseJob{id: fmt.Sprintf("dse-%d", s.dseSeq), total: total, cancel: cancel}
	if s.dseJobs == nil {
		s.dseJobs = map[string]*dseJob{}
	}
	s.dseJobs[job.id] = job
	s.dseOrder = append(s.dseOrder, job.id)
	return job
}

// retireDSEJobs drops the oldest finished jobs beyond the registry cap
// so a long-lived server does not accumulate reports without bound.
func (s *Server) retireDSEJobs() {
	s.dseMu.Lock()
	defer s.dseMu.Unlock()
	finished := 0
	for _, id := range s.dseOrder {
		if j := s.dseJobs[id]; j != nil {
			j.mu.Lock()
			if j.done {
				finished++
			}
			j.mu.Unlock()
		}
	}
	if finished <= maxFinishedDSEJobs {
		return
	}
	var keep []string
	for _, id := range s.dseOrder {
		j := s.dseJobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		done := j.done
		j.mu.Unlock()
		if done && finished > maxFinishedDSEJobs {
			delete(s.dseJobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	s.dseOrder = keep
}
