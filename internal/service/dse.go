// Design-space exploration endpoint: POST /dse accepts a sweep
// specification, validates it synchronously, and runs the exploration
// asynchronously against the server's shared compilation cache — the
// serving-layer shape of the compiler↔architecture loop, where one
// warm cache amortizes compilation across sweeps and across clients.
// GET /dse/{id} reports progress and, once done, the full report.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"mat2c/internal/dse"
)

// maxFinishedDSEJobs bounds the finished-job registry; the oldest
// finished jobs are dropped once it overflows.
const maxFinishedDSEJobs = 32

// DSERequest is the POST /dse body. Sweep carries the axes (defaults
// apply per dse.Sweep); Procs optionally fans the same axes out over
// several base targets into one merged frontier.
type DSERequest struct {
	Sweep   *dse.Sweep `json:"sweep,omitempty"`
	Procs   []string   `json:"procs,omitempty"`
	Jobs    int        `json:"jobs,omitempty"`
	Scale   float64    `json:"scale,omitempty"`
	Kernels []string   `json:"kernels,omitempty"`
	// EmitC additionally generates C artifacts for every variant
	// (slower; off by default for cycle-model scoring).
	EmitC bool `json:"emit_c,omitempty"`
}

// DSEAccepted is the POST /dse reply: the job is queued.
type DSEAccepted struct {
	ID       string `json:"id"`
	Status   string `json:"status_url"`
	Variants int    `json:"variants"`
}

// DSEStatus is the GET /dse/{id} reply.
type DSEStatus struct {
	ID        string      `json:"id"`
	State     string      `json:"state"` // "running", "done", "failed"
	Evaluated int         `json:"evaluated"`
	Total     int         `json:"total"`
	Error     string      `json:"error,omitempty"`
	Report    *dse.Report `json:"report,omitempty"`
}

// dseJob is one exploration's lifecycle state.
type dseJob struct {
	id    string
	total int

	mu        sync.Mutex
	evaluated int
	done      bool
	err       error
	report    *dse.Report
}

func (j *dseJob) status() DSEStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := DSEStatus{ID: j.id, Evaluated: j.evaluated, Total: j.total}
	switch {
	case !j.done:
		st.State = "running"
	case j.err != nil:
		st.State = "failed"
		st.Error = j.err.Error()
	default:
		st.State = "done"
		st.Report = j.report
	}
	return st
}

// sweeps expands the request into per-base sweeps.
func (req *DSERequest) sweeps() []*dse.Sweep {
	base := req.Sweep
	if base == nil {
		base = &dse.Sweep{}
	}
	if len(req.Procs) == 0 {
		return []*dse.Sweep{base}
	}
	var out []*dse.Sweep
	for _, p := range req.Procs {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		sw := *base
		sw.Base = p
		out = append(out, &sw)
	}
	if len(out) == 0 {
		out = []*dse.Sweep{base}
	}
	return out
}

func (s *Server) handleDSE(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("dse")
	status := http.StatusAccepted
	defer func() { finish(status, false, false) }()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req DSERequest
	if err := dec.Decode(&req); err != nil {
		status = http.StatusBadRequest
		httpError(w, status, "bad request body: %v", err)
		return
	}

	// Validate the whole specification up front so a bad sweep fails
	// the POST, not the background job: enumerate every variant now.
	sweeps := req.sweeps()
	total := 0
	for _, sw := range sweeps {
		vs, err := sw.Enumerate()
		if err != nil {
			status = http.StatusUnprocessableEntity
			httpError(w, status, "%v", err)
			return
		}
		total += len(vs)
	}
	if err := dse.ValidateKernels(req.Kernels); err != nil {
		status = http.StatusUnprocessableEntity
		httpError(w, status, "%v", err)
		return
	}

	jobs := req.Jobs
	if jobs <= 0 || jobs > s.cfg.Workers {
		jobs = s.cfg.Workers
	}
	opts := dse.Options{
		Jobs:    jobs,
		Scale:   req.Scale,
		Kernels: req.Kernels,
		Cache:   s.cache,
		EmitC:   req.EmitC,
	}

	job := s.registerDSEJob(total)
	opts.OnVariant = func(vr dse.VariantResult) {
		job.mu.Lock()
		job.evaluated++
		job.mu.Unlock()
		s.metrics.ObserveDSEVariant(vr.CacheLookups, vr.CacheHits)
	}
	s.metrics.DSESweepStarted()
	go func() {
		rep, err := dse.Explore(sweeps, opts)
		frontier := 0
		if rep != nil {
			frontier = len(rep.Frontier)
		}
		s.metrics.DSESweepFinished(frontier, err != nil)
		job.mu.Lock()
		job.done, job.err, job.report = true, err, rep
		job.mu.Unlock()
		s.retireDSEJobs()
	}()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(DSEAccepted{ID: job.id, Status: "/dse/" + job.id, Variants: total})
}

func (s *Server) handleDSEStatus(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("dse_status")
	status := http.StatusOK
	defer func() { finish(status, false, false) }()

	id := r.PathValue("id")
	s.dseMu.Lock()
	job := s.dseJobs[id]
	s.dseMu.Unlock()
	if job == nil {
		status = http.StatusNotFound
		httpError(w, status, "no such DSE job %q", id)
		return
	}
	writeJSON(w, job.status())
}

// registerDSEJob allocates a job slot under a fresh sequential id.
func (s *Server) registerDSEJob(total int) *dseJob {
	s.dseMu.Lock()
	defer s.dseMu.Unlock()
	s.dseSeq++
	job := &dseJob{id: fmt.Sprintf("dse-%d", s.dseSeq), total: total}
	if s.dseJobs == nil {
		s.dseJobs = map[string]*dseJob{}
	}
	s.dseJobs[job.id] = job
	s.dseOrder = append(s.dseOrder, job.id)
	return job
}

// retireDSEJobs drops the oldest finished jobs beyond the registry cap
// so a long-lived server does not accumulate reports without bound.
func (s *Server) retireDSEJobs() {
	s.dseMu.Lock()
	defer s.dseMu.Unlock()
	finished := 0
	for _, id := range s.dseOrder {
		if j := s.dseJobs[id]; j != nil {
			j.mu.Lock()
			if j.done {
				finished++
			}
			j.mu.Unlock()
		}
	}
	if finished <= maxFinishedDSEJobs {
		return
	}
	var keep []string
	for _, id := range s.dseOrder {
		j := s.dseJobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		done := j.done
		j.mu.Unlock()
		if done && finished > maxFinishedDSEJobs {
			delete(s.dseJobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	s.dseOrder = keep
}
