// Fleet endpoints: the service side of the coordinator/worker sharding
// protocol (see docs/FLEET.md and internal/fleet).
//
//	GET  /fleet            role, worker health (coordinator), queue depth (worker)
//	POST /fleet/register   worker enrollment + heartbeat (coordinator role)
//	POST /fleet/deregister worker drain notice (coordinator role)
//	POST /fleet/unit       execute one work unit (worker role)
//
// A worker runs units on a bounded queue separate from the interactive
// /compile and /run pool: SweepSlots units execute concurrently,
// SweepQueue more may wait, and anything beyond that is shed with
// 503 + Retry-After so the coordinator redistributes the unit instead
// of this worker queueing unboundedly.
package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"

	"mat2c/internal/fleet"
)

// FleetStatus is the GET /fleet reply. Coordinator populates
// Coordinator; Worker populates Sweep; a single-role daemon reports
// just its role.
type FleetStatus struct {
	Role        string          `json:"role"`
	Coordinator *fleet.Status   `json:"coordinator,omitempty"`
	Sweep       *SweepQueueInfo `json:"sweep,omitempty"`
}

// SweepQueueInfo is a worker's sweep-queue gauge: capacity and current
// occupancy of the bounded unit queue.
type SweepQueueInfo struct {
	Slots    int `json:"slots"`
	Queue    int `json:"queue"`
	Running  int `json:"running"`
	Admitted int `json:"admitted"`
}

func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("fleet_status")
	defer func() { finish(http.StatusOK, false, false, false) }()

	st := FleetStatus{Role: s.cfg.Role.String()}
	switch s.cfg.Role {
	case RoleCoordinator:
		cs := s.coord.Status()
		st.Coordinator = &cs
	case RoleWorker:
		st.Sweep = &SweepQueueInfo{
			Slots:    s.cfg.SweepSlots,
			Queue:    s.cfg.SweepQueue,
			Running:  len(s.sweepSlots),
			Admitted: len(s.sweepAdmit),
		}
	}
	writeJSON(w, st)
}

// handleFleetRegister (POST /fleet/register) enrolls — or, for a known
// URL, heartbeats — a worker.
func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("fleet_register")
	status := http.StatusOK
	defer func() { finish(status, false, false, false) }()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req fleet.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status = http.StatusBadRequest
		httpError(w, status, "bad request body: %v", err)
		return
	}
	req.URL = strings.TrimRight(strings.TrimSpace(req.URL), "/")
	if req.URL == "" {
		status = http.StatusBadRequest
		httpError(w, status, "missing \"url\"")
		return
	}
	id := s.coord.Register(req.URL, req.Slots)
	reply := fleet.RegisterReply{ID: id}
	if s.artifacts != nil {
		// Advertise the shared cache origin path-relative; the worker
		// resolves it against the coordinator base URL it already knows.
		reply.ArtifactURL = "/artifact"
	}
	writeJSON(w, reply)
}

// handleFleetDeregister (POST /fleet/deregister) removes a draining
// worker from dispatch. Unknown URLs are fine — deregistration is
// idempotent.
func (s *Server) handleFleetDeregister(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("fleet_deregister")
	status := http.StatusOK
	defer func() { finish(status, false, false, false) }()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req fleet.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status = http.StatusBadRequest
		httpError(w, status, "bad request body: %v", err)
		return
	}
	known := s.coord.Deregister(strings.TrimRight(strings.TrimSpace(req.URL), "/"))
	writeJSON(w, map[string]bool{"deregistered": known})
}

// handleFleetUnit (POST /fleet/unit) executes one work unit through
// the worker's shared compilation cache. Admission is two-stage: a
// non-blocking reservation against the bounded queue (full → shed with
// 503 + Retry-After), then a blocking wait for an execution slot under
// the dispatcher's request context — a coordinator that gives up on
// the RPC frees the queue spot immediately.
func (s *Server) handleFleetUnit(w http.ResponseWriter, r *http.Request) {
	finish := s.metrics.RequestStarted("fleet_unit")
	status := http.StatusOK
	timedOut, cancelled := false, false
	defer func() { finish(status, timedOut, cancelled, false) }()

	select {
	case s.sweepAdmit <- struct{}{}:
		defer func() { <-s.sweepAdmit }()
	default:
		status = http.StatusServiceUnavailable
		s.metrics.QueueShed("sweep")
		w.Header().Set("Retry-After", "1")
		httpError(w, status, "sweep queue full (%d running + %d queued)",
			s.cfg.SweepSlots, s.cfg.SweepQueue)
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var u fleet.Unit
	if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
		status = http.StatusBadRequest
		httpError(w, status, "bad unit body: %v", err)
		return
	}

	select {
	case s.sweepSlots <- struct{}{}:
		defer func() { <-s.sweepSlots }()
	case <-r.Context().Done():
		// The coordinator cancelled or abandoned the dispatch while the
		// unit was queued; nothing ran, nothing to report.
		status, cancelled = http.StatusServiceUnavailable, true
		httpError(w, status, "dispatch cancelled while queued")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.UnitTimeout)
	defer cancel()
	res, err := fleet.Execute(ctx, &u, s.cache)
	if err != nil {
		if isCtxErr(err) {
			if r.Context().Err() != nil {
				status, cancelled = http.StatusServiceUnavailable, true
				httpError(w, status, "unit %s cancelled by the dispatcher", u.ID)
			} else {
				status, timedOut = http.StatusGatewayTimeout, true
				httpError(w, status, "unit %s exceeded %s", u.ID, s.cfg.UnitTimeout)
			}
			return
		}
		// The unit itself is bad (unparseable processor, unknown kind):
		// a permanent rejection, so the coordinator fails the run instead
		// of retrying a unit that can never succeed.
		status = http.StatusUnprocessableEntity
		httpError(w, status, "%v", err)
		return
	}
	for _, vr := range res.DSE {
		s.metrics.ObserveDSEVariant(vr.Result.CacheLookups, vr.Result.CacheHits)
	}
	writeJSON(w, res)
}
