// Package lower translates the analyzed MATLAB AST into the compiler's
// loop IR.
//
// The translation performs the heavy specialization every MATLAB-to-C
// flow needs:
//
//   - matrix/vector operations become explicit loop nests over scalar
//     expressions; elementwise operator trees are fused into a single
//     loop via composable "element views" so no temporaries are
//     materialized for e.g. y = a .* b + c;
//   - MATLAB's 1-based, column-major indexing becomes 0-based linear
//     addressing;
//   - for-loops are normalized to 0-based unit-step counted loops (the
//     canonical form the vectorizer matches);
//   - user function calls are inlined (the IR is call-free);
//   - classes map to IR kinds: logical/int → int, real → float(f64),
//     complex → complex(c128); arrays always hold float or complex
//     elements.
package lower

import (
	"fmt"
	"sort"

	"mat2c/internal/ir"
	"mat2c/internal/mlang"
	"mat2c/internal/sema"
)

// Error is a lowering failure tied to a source position.
type Error struct {
	Pos mlang.Pos
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.Valid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// Option configures lowering.
type Option func(*lowerer)

// NoFusion disables elementwise view fusion: every array-valued
// operation materializes its result into a temporary before the next
// operation consumes it, one loop per operator. This reproduces the code
// shape of Mathworks' MATLAB Coder (the paper's baseline), which
// generates a loop and a temporary array per vectorized MATLAB
// operation.
func NoFusion() Option { return func(l *lowerer) { l.noFuse = true } }

// Lower translates the entry function of an analyzed file to IR.
func Lower(info *sema.Info, opts ...Option) (f *ir.Func, err error) {
	l := &lowerer{info: info}
	for _, o := range opts {
		o(l)
	}
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(*Error); ok {
				f, err = nil, le
				return
			}
			panic(r)
		}
	}()
	return l.lowerEntry(), nil
}

type lowerer struct {
	info *sema.Info
	fn   *ir.Func

	// blocks is the stack of statement lists being emitted into.
	blocks []*[]ir.Stmt

	// frames is the inline-expansion stack: one varsmap per active
	// function body (entry at index 0).
	frames []*frame

	// endStack mirrors sema's: the extent 'end' denotes in the index
	// argument currently being lowered.
	endStack []ir.Expr

	// noFuse materializes every operator's array result (MATLAB-Coder-
	// style baseline code shape).
	noFuse bool

	tempN int
}

type frame struct {
	inst *sema.FuncInst
	vars map[string]*ir.Sym
}

func (l *lowerer) fail(pos mlang.Pos, format string, args ...interface{}) {
	panic(&Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *lowerer) emit(s ir.Stmt) {
	b := l.blocks[len(l.blocks)-1]
	*b = append(*b, s)
}

func (l *lowerer) pushBlock(b *[]ir.Stmt) { l.blocks = append(l.blocks, b) }
func (l *lowerer) popBlock()              { l.blocks = l.blocks[:len(l.blocks)-1] }

func (l *lowerer) frame() *frame { return l.frames[len(l.frames)-1] }

// sortedVarNames returns the variable names of a fixpoint environment
// in stable order.
func sortedVarNames(vars map[string]sema.Type) []string {
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// baseKind maps a sema class to the IR element kind.
func baseKind(c sema.Class) ir.BaseKind {
	switch c {
	case sema.Complex:
		return ir.Complex
	case sema.Real:
		return ir.Float
	default:
		return ir.Int
	}
}

// arrayElemKind maps a sema class to an array element kind (arrays store
// float or complex only).
func arrayElemKind(c sema.Class) ir.BaseKind {
	if c == sema.Complex {
		return ir.Complex
	}
	return ir.Float
}

// newVarSym creates the IR symbol for a MATLAB variable of type t.
func (l *lowerer) newVarSym(name string, t sema.Type) *ir.Sym {
	if t.IsScalar() {
		return l.fn.NewSym(name, baseKind(t.Class), false)
	}
	s := l.fn.NewSym(name, arrayElemKind(t.Class), true)
	s.Rows, s.Cols = t.Shape.Rows, t.Shape.Cols
	return s
}

func (l *lowerer) temp(prefix string, k ir.BaseKind) *ir.Sym {
	l.tempN++
	s := l.fn.NewSym(fmt.Sprintf("%s%d", prefix, l.tempN), k, false)
	l.fn.Locals = append(l.fn.Locals, s)
	return s
}

func (l *lowerer) tempArr(prefix string, k ir.BaseKind) *ir.Sym {
	l.tempN++
	s := l.fn.NewSym(fmt.Sprintf("%s%d", prefix, l.tempN), k, true)
	l.fn.Locals = append(l.fn.Locals, s)
	return s
}

// hoist binds an expression to a fresh scalar so later uses are cheap.
// Constants and variable references pass through unchanged.
func (l *lowerer) hoist(e ir.Expr, prefix string) ir.Expr {
	switch e.(type) {
	case *ir.ConstInt, *ir.ConstFloat, *ir.ConstComplex, *ir.VarRef:
		return e
	}
	t := l.temp(prefix, e.Kind().Base)
	l.emit(&ir.Assign{Dst: t, Src: e})
	return ir.V(t)
}

func (l *lowerer) lowerEntry() *ir.Func {
	inst := l.info.Funcs[l.info.Entry]
	if inst == nil {
		l.fail(mlang.Pos{}, "entry function %q not analyzed", l.info.Entry)
	}
	l.fn = ir.NewFunc(inst.Decl.Name)
	fr := &frame{inst: inst, vars: map[string]*ir.Sym{}}
	l.frames = []*frame{fr}

	// Parameters.
	for i, p := range inst.Decl.Params {
		s := l.newVarSym(p, inst.Params[i])
		fr.vars[p] = s
		l.fn.Params = append(l.fn.Params, s)
	}
	// All other locals (fixpoint types from sema), in name order so
	// symbol numbering — and therefore every emitted artifact — is
	// deterministic.
	for _, name := range sortedVarNames(inst.Vars) {
		if fr.vars[name] == nil {
			s := l.newVarSym(name, inst.Vars[name])
			fr.vars[name] = s
			l.fn.Locals = append(l.fn.Locals, s)
		}
	}
	for _, out := range inst.Decl.Outs {
		l.fn.Results = append(l.fn.Results, fr.vars[out])
	}

	l.pushBlock(&l.fn.Body)
	l.lowerStmts(inst.Decl.Body)
	l.popBlock()
	return l.fn
}

func (l *lowerer) lowerStmts(stmts []mlang.Stmt) {
	for _, s := range stmts {
		l.lowerStmt(s)
	}
}

func (l *lowerer) lowerStmt(s mlang.Stmt) {
	switch s := s.(type) {
	case *mlang.AssignStmt:
		l.lowerAssign(s)
	case *mlang.ExprStmt:
		// Pure expression statements have no effect; lower for effect of
		// diagnostics only when they are calls with outputs ignored.
		if call, ok := s.X.(*mlang.CallExpr); ok && l.info.Calls[call] == sema.CallUser {
			l.inlineCall(call, 0)
			return
		}
		// Value discarded; nothing to emit.
	case *mlang.IfStmt:
		l.lowerIf(s)
	case *mlang.SwitchStmt:
		l.lowerSwitch(s)
	case *mlang.ForStmt:
		l.lowerFor(s)
	case *mlang.WhileStmt:
		l.lowerWhile(s)
	case *mlang.BreakStmt:
		l.emit(&ir.Break{})
	case *mlang.ContinueStmt:
		l.emit(&ir.Continue{})
	case *mlang.ReturnStmt:
		if len(l.frames) > 1 {
			l.fail(s.Pos, "'return' inside a called function is not supported (function is inlined)")
		}
		l.emit(&ir.Return{})
	default:
		l.fail(s.NodePos(), "unsupported statement %T", s)
	}
}

func (l *lowerer) lowerIf(s *mlang.IfStmt) {
	cond := l.lowerCond(s.Cond)
	node := &ir.If{Cond: cond}
	l.pushBlock(&node.Then)
	l.lowerStmts(s.Then)
	l.popBlock()

	// elseif chains become nested If in the else arm.
	cur := node
	for _, e := range s.Elifs {
		inner := &ir.If{}
		l.pushBlock(&cur.Else)
		inner.Cond = l.lowerCond(e.Cond)
		l.popBlock()
		l.pushBlock(&inner.Then)
		l.lowerStmts(e.Body)
		l.popBlock()
		// Attach: cur.Else = [cond-eval..., inner]
		cur.Else = append(cur.Else, inner)
		cur = inner
	}
	if s.Else != nil {
		l.pushBlock(&cur.Else)
		l.lowerStmts(s.Else)
		l.popBlock()
	}
	l.emit(node)
}

// lowerSwitch lowers a switch into an if/elseif chain comparing the
// (hoisted) subject against each case value.
func (l *lowerer) lowerSwitch(s *mlang.SwitchStmt) {
	subj := l.hoist(l.scalarExpr(s.Subject), "sw")
	eq := func(v mlang.Expr) ir.Expr {
		val := l.scalarExpr(v)
		base := commonBase(subj.Kind().Base, val.Kind().Base)
		return ir.B(ir.OpEq, l.asBase(subj, base), l.asBase(val, base))
	}
	if len(s.Cases) == 0 {
		if s.Otherwise != nil {
			l.lowerStmts(s.Otherwise)
		}
		return
	}
	root := &ir.If{Cond: eq(s.Cases[0].Value)}
	l.pushBlock(&root.Then)
	l.lowerStmts(s.Cases[0].Body)
	l.popBlock()
	cur := root
	for _, c := range s.Cases[1:] {
		inner := &ir.If{}
		l.pushBlock(&cur.Else)
		inner.Cond = eq(c.Value)
		l.popBlock()
		l.pushBlock(&inner.Then)
		l.lowerStmts(c.Body)
		l.popBlock()
		cur.Else = append(cur.Else, inner)
		cur = inner
	}
	if s.Otherwise != nil {
		l.pushBlock(&cur.Else)
		l.lowerStmts(s.Otherwise)
		l.popBlock()
	}
	l.emit(root)
}

func (l *lowerer) lowerWhile(s *mlang.WhileStmt) {
	// Condition subexpressions may need emitted statements (e.g. calls,
	// reductions). Pre-lower the condition; if lowering it emitted any
	// statements we must re-evaluate them each iteration, so wrap into
	// the loop body with a break.
	var pre []ir.Stmt
	l.pushBlock(&pre)
	cond := l.lowerCond(s.Cond)
	l.popBlock()

	if len(pre) == 0 {
		node := &ir.While{Cond: cond}
		l.pushBlock(&node.Body)
		l.lowerStmts(s.Body)
		l.popBlock()
		l.emit(node)
		return
	}
	// while true { pre...; if !cond break; body }
	node := &ir.While{Cond: ir.CI(1)}
	body := append([]ir.Stmt{}, pre...)
	body = append(body, &ir.If{Cond: cond, Else: []ir.Stmt{&ir.Break{}}})
	l.pushBlock(&body)
	l.lowerStmts(s.Body)
	l.popBlock()
	node.Body = body
	l.emit(node)
}

// lowerFor normalizes "for v = lo:step:hi" into a 0-based unit-step
// counted loop with the MATLAB variable computed in the body.
func (l *lowerer) lowerFor(s *mlang.ForStmt) {
	vSym := l.frame().vars[s.Var]
	if vSym == nil || vSym.IsArray {
		l.fail(s.Pos, "loop variable %q must be scalar", s.Var)
	}

	var lo, step, hi ir.Expr
	if r, ok := s.Range.(*mlang.RangeExpr); ok {
		lo = l.scalarExpr(r.Start)
		hi = l.scalarExpr(r.Stop)
		if r.Step != nil {
			step = l.scalarExpr(r.Step)
		} else {
			step = ir.CI(1)
		}
	} else {
		// Scalar range: single iteration.
		lo = l.scalarExpr(s.Range)
		hi = lo
		step = ir.CI(1)
	}

	intLoop := lo.Kind().Base == ir.Int && hi.Kind().Base == ir.Int && step.Kind().Base == ir.Int

	// Trip count: floor((hi-lo)/step) + 1, clamped at 0.
	var count ir.Expr
	if intLoop {
		diff := ir.B(ir.OpSub, hi, lo)
		count = ir.B(ir.OpAdd, ir.B(ir.OpDiv, diff, step), ir.CI(1))
	} else {
		diff := ir.B(ir.OpSub, l.asBase(hi, ir.Float), l.asBase(lo, ir.Float))
		fcount := ir.U(ir.OpFloor, ir.B(ir.OpDiv, diff, l.asBase(step, ir.Float)), ir.KInt)
		count = ir.B(ir.OpAdd, fcount, ir.CI(1))
	}
	count = ir.B(ir.OpMax, count, ir.CI(0))
	// Constant-fold the common literal range so the loop header is tidy.
	count = foldIntExpr(count)
	countE := l.hoist(count, "n")
	lo = l.hoist(lo, "lo")
	step = l.hoist(step, "st")

	k := l.temp("k", ir.Int)
	node := &ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(countE, ir.CI(1)), Step: 1}
	l.pushBlock(&node.Body)
	// v = lo + k*step
	var v ir.Expr
	if intLoop {
		v = ir.IAdd(lo, ir.IMul(ir.V(k), step))
	} else {
		v = ir.B(ir.OpAdd, l.asBase(lo, ir.Float),
			ir.B(ir.OpMul, l.asBase(ir.V(k), ir.Float), l.asBase(step, ir.Float)))
	}
	l.emit(&ir.Assign{Dst: vSym, Src: l.asBase(v, vSym.Elem)})
	l.lowerStmts(s.Body)
	l.popBlock()
	l.emit(node)
}

// foldIntExpr folds constant integer arithmetic in an expression tree
// (used to tidy loop headers; the opt package does this in general).
func foldIntExpr(e ir.Expr) ir.Expr {
	switch e := e.(type) {
	case *ir.Bin:
		x := foldIntExpr(e.X)
		y := foldIntExpr(e.Y)
		if cx, ok := x.(*ir.ConstInt); ok {
			if cy, ok := y.(*ir.ConstInt); ok {
				switch e.Op {
				case ir.OpAdd:
					return ir.CI(cx.V + cy.V)
				case ir.OpSub:
					return ir.CI(cx.V - cy.V)
				case ir.OpMul:
					return ir.CI(cx.V * cy.V)
				case ir.OpDiv:
					if cy.V != 0 {
						return ir.CI(cx.V / cy.V)
					}
				case ir.OpMax:
					if cx.V > cy.V {
						return cx
					}
					return cy
				case ir.OpMin:
					if cx.V < cy.V {
						return cx
					}
					return cy
				}
			}
		}
		if x != e.X || y != e.Y {
			return &ir.Bin{Op: e.Op, X: x, Y: y, K: e.K}
		}
	}
	return e
}

// lowerCond lowers a scalar condition to a KInt truth value.
func (l *lowerer) lowerCond(e mlang.Expr) ir.Expr {
	v := l.scalarExpr(e)
	switch v.Kind().Base {
	case ir.Int:
		return v
	case ir.Float:
		return ir.B(ir.OpNe, v, ir.CF(0))
	default:
		return ir.B(ir.OpNe, v, ir.CC(0))
	}
}

// asBase converts e to the given base kind if needed.
func (l *lowerer) asBase(e ir.Expr, b ir.BaseKind) ir.Expr {
	k := e.Kind()
	if k.Base == b {
		return e
	}
	switch b {
	case ir.Int:
		if c, ok := e.(*ir.ConstFloat); ok {
			return ir.CI(int64(c.V))
		}
		return ir.U(ir.OpToInt, e, ir.Kind{Base: ir.Int, Lanes: k.Lanes})
	case ir.Float:
		if c, ok := e.(*ir.ConstInt); ok {
			return ir.CF(float64(c.V))
		}
		if k.Base == ir.Complex {
			return ir.U(ir.OpRe, e, ir.Kind{Base: ir.Float, Lanes: k.Lanes})
		}
		return ir.U(ir.OpToFloat, e, ir.Kind{Base: ir.Float, Lanes: k.Lanes})
	default:
		if c, ok := e.(*ir.ConstInt); ok {
			return ir.CC(complex(float64(c.V), 0))
		}
		if c, ok := e.(*ir.ConstFloat); ok {
			return ir.CC(complex(c.V, 0))
		}
		return ir.U(ir.OpToComplex, e, ir.Kind{Base: ir.Complex, Lanes: k.Lanes})
	}
}
