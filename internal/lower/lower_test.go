package lower

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/mlang"
	"mat2c/internal/sema"
)

// compile runs the full front end: parse, analyze, lower.
func compile(t *testing.T, src string, params ...sema.Type) *ir.Func {
	t.Helper()
	file, err := mlang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	entry := file.Funcs[0].Name
	info, err := sema.Analyze(file, entry, params)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	f, err := Lower(info)
	if err != nil {
		t.Fatalf("lower: %v\nsource:\n%s", err, src)
	}
	return f
}

// execute runs the lowered function on the reference evaluator.
func execute(t *testing.T, f *ir.Func, args ...interface{}) []interface{} {
	t.Helper()
	ev := &ir.Evaluator{}
	res, err := ev.Run(f, args...)
	if err != nil {
		t.Fatalf("eval %s: %v\nIR:\n%s", f.Name, err, ir.Print(f))
	}
	return res
}

func rowVec(vals ...float64) *ir.Array {
	a := ir.NewFloatArray(1, len(vals))
	copy(a.F, vals)
	return a
}

func cplxRowVec(vals ...complex128) *ir.Array {
	a := ir.NewComplexArray(1, len(vals))
	copy(a.C, vals)
	return a
}

func realVecType(n int) sema.Type {
	return sema.Type{Class: sema.Real, Shape: sema.RowVec(n)}
}

func dynRealVec() sema.Type {
	return sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func dynCplxVec() sema.Type {
	return sema.Type{Class: sema.Complex, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func wantFloats(t *testing.T, got *ir.Array, want []float64) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("length %d, want %d", got.Len(), len(want))
	}
	for i, w := range want {
		g := got.F[i]
		if math.Abs(g-w) > 1e-9*(1+math.Abs(w)) {
			t.Errorf("[%d] = %v, want %v", i, g, w)
		}
	}
}

func TestLowerScalarArith(t *testing.T) {
	f := compile(t, "function y = f(a, b)\ny = (a + b) * 2 - a / b;\nend",
		sema.RealScalar, sema.RealScalar)
	got := execute(t, f, 3.0, 4.0)[0].(float64)
	want := (3.0+4.0)*2 - 3.0/4.0
	if got != want {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLowerPowerAndUnary(t *testing.T) {
	f := compile(t, "function y = f(a)\ny = -a^2 + 2^-1;\nend", sema.RealScalar)
	got := execute(t, f, 3.0)[0].(float64)
	if got != -9+0.5 {
		t.Errorf("got %v", got)
	}
}

func TestLowerComplexScalar(t *testing.T) {
	f := compile(t, "function y = f(a)\ny = (a + 2i) * conj(a - 1i);\nend", sema.ComplexScalar)
	got := execute(t, f, 3+1i)[0].(complex128)
	want := ((3 + 1i) + 2i) * cmplx.Conj((3+1i)-1i)
	if got != want {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLowerElementwiseFusion(t *testing.T) {
	f := compile(t, "function y = f(a, b)\ny = a .* b + 2;\nend",
		dynRealVec(), dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3), rowVec(4, 5, 6))
	wantFloats(t, res[0].(*ir.Array), []float64{6, 12, 20})
}

func TestLowerScalarBroadcast(t *testing.T) {
	f := compile(t, "function y = f(a)\ny = 2 .* a - 1;\nend", dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3))
	wantFloats(t, res[0].(*ir.Array), []float64{1, 3, 5})
}

func TestLowerForLoopSum(t *testing.T) {
	src := `function s = f(x)
s = 0;
for i = 1:length(x)
    s = s + x(i);
end
end`
	f := compile(t, src, dynRealVec())
	got := execute(t, f, rowVec(1, 2, 3, 4))[0].(float64)
	if got != 10 {
		t.Errorf("got %v", got)
	}
}

func TestLowerForLoopWithStep(t *testing.T) {
	src := `function s = f(n)
s = 0;
for i = n:-2:1
    s = s + i;
end
end`
	f := compile(t, src, sema.IntScalar)
	// 10+8+6+4+2 = 30
	if got := execute(t, f, int64(10))[0].(int64); got != 30 {
		t.Errorf("got %v, want 30", got)
	}
}

func TestLowerFloatRangeLoop(t *testing.T) {
	src := `function s = f()
s = 0;
for t = 0:0.25:1
    s = s + t;
end
end`
	f := compile(t, src)
	got := execute(t, f)[0].(float64)
	if math.Abs(got-2.5) > 1e-12 {
		t.Errorf("got %v, want 2.5", got)
	}
}

func TestLowerPreallocateAndIndexWrite(t *testing.T) {
	src := `function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = x(n - i + 1);
end
end`
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3, 4))
	wantFloats(t, res[0].(*ir.Array), []float64{4, 3, 2, 1})
}

func TestLowerWhileLoop(t *testing.T) {
	src := `function c = f(n)
c = 0;
while n > 1
    if mod(n, 2) == 0
        n = n / 2;
    else
        n = 3 * n + 1;
    end
    c = c + 1;
end
end`
	f := compile(t, src, sema.RealScalar)
	// Collatz(6): 6→3→10→5→16→8→4→2→1 = 8 steps. The counter is
	// integral, so the inferred result class is int.
	if got := execute(t, f, 6.0)[0].(int64); got != 8 {
		t.Errorf("got %v, want 8", got)
	}
}

func TestLowerIfElseChain(t *testing.T) {
	src := `function y = f(x)
if x > 10
    y = 3;
elseif x > 5
    y = 2;
elseif x > 0
    y = 1;
else
    y = 0;
end
end`
	f := compile(t, src, sema.RealScalar)
	cases := map[float64]int64{20: 3, 7: 2, 3: 1, -1: 0}
	for in, want := range cases {
		if got := execute(t, f, in)[0].(int64); got != want {
			t.Errorf("f(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestLowerBreakContinue(t *testing.T) {
	src := `function s = f(x)
s = 0;
for i = 1:length(x)
    if x(i) < 0
        continue
    end
    if x(i) == 99
        break
    end
    s = s + x(i);
end
end`
	f := compile(t, src, dynRealVec())
	got := execute(t, f, rowVec(1, -2, 3, 99, 5))[0].(float64)
	if got != 4 {
		t.Errorf("got %v, want 4", got)
	}
}

func TestLowerSlices(t *testing.T) {
	src := `function y = f(x)
y = x(2:end-1);
end`
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3, 4, 5))
	wantFloats(t, res[0].(*ir.Array), []float64{2, 3, 4})
}

func TestLowerSliceAssignment(t *testing.T) {
	src := `function y = f(x)
y = zeros(1, length(x));
y(2:end) = x(1:end-1);
end`
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3, 4))
	wantFloats(t, res[0].(*ir.Array), []float64{0, 1, 2, 3})
}

func TestLowerOverlappingSliceCopy(t *testing.T) {
	// RHS must be fully evaluated before the target mutates.
	src := `function x = f(x)
x(2:end) = x(1:end-1);
end`
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3, 4))
	wantFloats(t, res[0].(*ir.Array), []float64{1, 1, 2, 3})
}

func TestLowerColonAssignment(t *testing.T) {
	src := `function y = f(n)
y = zeros(1, n);
y(:) = 7;
end`
	f := compile(t, src, sema.IntScalar)
	res := execute(t, f, int64(3))
	wantFloats(t, res[0].(*ir.Array), []float64{7, 7, 7})
}

func TestLowerMatrix2D(t *testing.T) {
	src := `function y = f(a)
[r, c] = size(a);
y = zeros(r, c);
for i = 1:r
    for j = 1:c
        y(i, j) = a(i, j) * 10 + i + j;
    end
end
end`
	f := compile(t, src, sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 2, Cols: 2}})
	a := ir.NewFloatArray(2, 2)
	copy(a.F, []float64{1, 2, 3, 4}) // column-major: a(1,1)=1 a(2,1)=2 a(1,2)=3 a(2,2)=4
	res := execute(t, f, a)
	wantFloats(t, res[0].(*ir.Array), []float64{12, 23, 33, 44})
}

func TestLowerMatrixLiteral(t *testing.T) {
	src := "function y = f()\ny = [1 2 3; 4 5 6];\nend"
	f := compile(t, src)
	res := execute(t, f)
	arr := res[0].(*ir.Array)
	if arr.Rows != 2 || arr.Cols != 3 {
		t.Fatalf("dims %dx%d", arr.Rows, arr.Cols)
	}
	// Column-major layout.
	wantFloats(t, arr, []float64{1, 4, 2, 5, 3, 6})
}

func TestLowerConcatenation(t *testing.T) {
	src := "function y = f(a, b)\ny = [a b];\nend"
	f := compile(t, src, dynRealVec(), dynRealVec())
	res := execute(t, f, rowVec(1, 2), rowVec(3, 4, 5))
	wantFloats(t, res[0].(*ir.Array), []float64{1, 2, 3, 4, 5})
}

func TestLowerRangeValue(t *testing.T) {
	src := "function y = f(n)\ny = 1:n;\nend"
	f := compile(t, src, sema.IntScalar)
	res := execute(t, f, int64(4))
	wantFloats(t, res[0].(*ir.Array), []float64{1, 2, 3, 4})
}

func TestLowerRangeWithStep(t *testing.T) {
	src := "function y = f()\ny = 0:0.5:2;\nend"
	f := compile(t, src)
	res := execute(t, f)
	wantFloats(t, res[0].(*ir.Array), []float64{0, 0.5, 1, 1.5, 2})
}

func TestLowerTransposeVector(t *testing.T) {
	src := "function y = f(x)\ny = x';\nend"
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3))
	arr := res[0].(*ir.Array)
	if arr.Rows != 3 || arr.Cols != 1 {
		t.Fatalf("dims %dx%d, want 3x1", arr.Rows, arr.Cols)
	}
	wantFloats(t, arr, []float64{1, 2, 3})
}

func TestLowerConjTranspose(t *testing.T) {
	src := "function y = f(x)\ny = x';\nend"
	f := compile(t, src, dynCplxVec())
	res := execute(t, f, cplxRowVec(1+2i, 3-4i))
	arr := res[0].(*ir.Array)
	if arr.C[0] != 1-2i || arr.C[1] != 3+4i {
		t.Errorf("got %v", arr.C)
	}
}

func TestLowerMatrixTranspose(t *testing.T) {
	src := "function y = f(a)\ny = a';\nend"
	f := compile(t, src, sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 2, Cols: 3}})
	a := ir.NewFloatArray(2, 3)
	copy(a.F, []float64{1, 2, 3, 4, 5, 6}) // cols: [1 2], [3 4], [5 6]
	res := execute(t, f, a)
	arr := res[0].(*ir.Array)
	if arr.Rows != 3 || arr.Cols != 2 {
		t.Fatalf("dims %dx%d", arr.Rows, arr.Cols)
	}
	wantFloats(t, arr, []float64{1, 3, 5, 2, 4, 6})
}

func TestLowerDotProduct(t *testing.T) {
	src := "function y = f(a, b)\ny = a * b';\nend"
	f := compile(t, src, dynRealVec(), dynRealVec())
	got := execute(t, f, rowVec(1, 2, 3), rowVec(4, 5, 6))[0].(float64)
	if got != 32 {
		t.Errorf("got %v, want 32", got)
	}
}

func TestLowerMatMul(t *testing.T) {
	src := "function y = f(a, b)\ny = a * b;\nend"
	f := compile(t, src,
		sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 2, Cols: 2}},
		sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 2, Cols: 2}})
	a := ir.NewFloatArray(2, 2)
	copy(a.F, []float64{1, 3, 2, 4}) // [[1 2];[3 4]]
	b := ir.NewFloatArray(2, 2)
	copy(b.F, []float64{5, 7, 6, 8}) // [[5 6];[7 8]]
	res := execute(t, f, a, b)
	// [[19 22];[43 50]] column-major: 19 43 22 50
	wantFloats(t, res[0].(*ir.Array), []float64{19, 43, 22, 50})
}

func TestLowerBuiltinReductions(t *testing.T) {
	src := `function [s, p, m, lo, hi] = f(x)
s = sum(x);
p = prod(x);
m = mean(x);
lo = min(x);
hi = max(x);
end`
	file := mlang.MustParse(src)
	info, err := sema.Analyze(file, "f", []sema.Type{dynRealVec()})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	res := execute(t, f, rowVec(4, 1, 3, 2))
	want := []float64{10, 24, 2.5, 1, 4}
	for i, w := range want {
		if got := res[i].(float64); math.Abs(got-w) > 1e-12 {
			t.Errorf("result %d = %v, want %v", i, got, w)
		}
	}
}

func TestLowerComplexVectorOps(t *testing.T) {
	src := `function y = f(x, h)
y = sum(x .* conj(h));
end`
	f := compile(t, src, dynCplxVec(), dynCplxVec())
	got := execute(t, f, cplxRowVec(1+1i, 2-1i), cplxRowVec(3i, 1+1i))[0].(complex128)
	want := (1+1i)*cmplx.Conj(3i) + (2-1i)*cmplx.Conj(1+1i)
	if cmplx.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLowerAbsRealImag(t *testing.T) {
	src := `function [m, r, q] = f(z)
m = abs(z);
r = real(z);
q = imag(z);
end`
	file := mlang.MustParse(src)
	info, err := sema.Analyze(file, "f", []sema.Type{sema.ComplexScalar})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	res := execute(t, f, 3+4i)
	if res[0].(float64) != 5 || res[1].(float64) != 3 || res[2].(float64) != 4 {
		t.Errorf("got %v", res)
	}
}

func TestLowerUserFunctionInline(t *testing.T) {
	src := `function y = f(x)
y = double_it(x) + 1;
end
function z = double_it(v)
z = v * 2;
end`
	f := compile(t, src, sema.RealScalar)
	if got := execute(t, f, 5.0)[0].(float64); got != 11 {
		t.Errorf("got %v, want 11", got)
	}
}

func TestLowerInlineArrayArgByValue(t *testing.T) {
	// Callee mutates its parameter; caller's array must be unchanged.
	src := `function y = f(x)
z = clobber(x);
y = x(1) + z;
end
function s = clobber(v)
v(1) = 100;
s = v(1);
end`
	f := compile(t, src, dynRealVec())
	got := execute(t, f, rowVec(1, 2))[0].(float64)
	if got != 101 { // x(1)=1 unchanged + z=100
		t.Errorf("got %v, want 101", got)
	}
}

func TestLowerInlineVectorHelper(t *testing.T) {
	src := `function y = f(x)
y = scale(x, 3);
end
function out = scale(v, k)
out = v .* k;
end`
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3))
	wantFloats(t, res[0].(*ir.Array), []float64{3, 6, 9})
}

func TestLowerModRem(t *testing.T) {
	src := `function [a, b, c] = f(x, y)
a = mod(x, y);
b = rem(x, y);
c = mod(-x, y);
end`
	file := mlang.MustParse(src)
	info, err := sema.Analyze(file, "f", []sema.Type{sema.RealScalar, sema.RealScalar})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	res := execute(t, f, 7.0, 3.0)
	if res[0].(float64) != 1 || res[1].(float64) != 1 || res[2].(float64) != 2 {
		t.Errorf("mod/rem = %v", res)
	}
}

func TestLowerLogicalOps(t *testing.T) {
	src := "function y = f(a, b)\ny = (a > 1) && (b < 5) || ~(a == b);\nend"
	f := compile(t, src, sema.RealScalar, sema.RealScalar)
	if got := execute(t, f, 2.0, 2.0)[0].(int64); got != 1 {
		t.Errorf("got %v, want 1", got)
	}
	if got := execute(t, f, 1.0, 1.0)[0].(int64); got != 0 {
		t.Errorf("got %v, want 0", got)
	}
}

func TestLowerComplexLiteralArith(t *testing.T) {
	src := "function y = f()\ny = (1 + 2i) * (3 - 1i);\nend"
	f := compile(t, src)
	got := execute(t, f)[0].(complex128)
	if got != (1+2i)*(3-1i) {
		t.Errorf("got %v", got)
	}
}

func TestLowerSqrtTrig(t *testing.T) {
	src := "function y = f(x)\ny = sqrt(x) + sin(x) * cos(x);\nend"
	f := compile(t, src, sema.RealScalar)
	got := execute(t, f, 4.0)[0].(float64)
	want := 2 + math.Sin(4)*math.Cos(4)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLowerEndArithmetic(t *testing.T) {
	src := "function y = f(x)\ny = x(end) - x(end-1);\nend"
	f := compile(t, src, dynRealVec())
	if got := execute(t, f, rowVec(1, 4, 9))[0].(float64); got != 5 {
		t.Errorf("got %v, want 5", got)
	}
}

func TestLowerMatrixColumnSlice(t *testing.T) {
	src := "function y = f(a)\ny = a(:, 2);\nend"
	f := compile(t, src, sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 2, Cols: 3}})
	a := ir.NewFloatArray(2, 3)
	copy(a.F, []float64{1, 2, 3, 4, 5, 6})
	res := execute(t, f, a)
	wantFloats(t, res[0].(*ir.Array), []float64{3, 4})
}

func TestLowerMatrixRowSlice(t *testing.T) {
	src := "function y = f(a)\ny = a(2, :);\nend"
	f := compile(t, src, sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 2, Cols: 3}})
	a := ir.NewFloatArray(2, 3)
	copy(a.F, []float64{1, 2, 3, 4, 5, 6})
	res := execute(t, f, a)
	wantFloats(t, res[0].(*ir.Array), []float64{2, 4, 6})
}

func TestLowerSubmatrix(t *testing.T) {
	src := "function y = f(a)\ny = a(1:2, 2:3);\nend"
	f := compile(t, src, sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 3, Cols: 3}})
	a := ir.NewFloatArray(3, 3)
	for i := range a.F {
		a.F[i] = float64(i + 1)
	}
	res := execute(t, f, a)
	arr := res[0].(*ir.Array)
	if arr.Rows != 2 || arr.Cols != 2 {
		t.Fatalf("dims %dx%d", arr.Rows, arr.Cols)
	}
	wantFloats(t, arr, []float64{4, 5, 7, 8})
}

func TestLowerLinearIndexOfMatrix(t *testing.T) {
	src := "function y = f(a)\ny = a(4);\nend"
	f := compile(t, src, sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 2, Cols: 2}})
	a := ir.NewFloatArray(2, 2)
	copy(a.F, []float64{10, 20, 30, 40})
	if got := execute(t, f, a)[0].(float64); got != 40 {
		t.Errorf("got %v, want 40", got)
	}
}

func TestLowerZerosSquare(t *testing.T) {
	src := "function y = f()\ny = ones(2);\nend"
	f := compile(t, src)
	arr := execute(t, f)[0].(*ir.Array)
	if arr.Rows != 2 || arr.Cols != 2 {
		t.Fatalf("dims %dx%d", arr.Rows, arr.Cols)
	}
	wantFloats(t, arr, []float64{1, 1, 1, 1})
}

func TestLowerComplexWidenedArray(t *testing.T) {
	src := `function y = f(n)
y = zeros(1, n);
for k = 1:n
    y(k) = exp(2i * pi * k / n);
end
end`
	f := compile(t, src, sema.IntScalar)
	arr := execute(t, f, int64(4))[0].(*ir.Array)
	if arr.Elem != ir.Complex {
		t.Fatal("array should be complex")
	}
	want := []complex128{1i, -1, -1i, 1}
	for i, w := range want {
		if cmplx.Abs(arr.C[i]-w) > 1e-12 {
			t.Errorf("[%d] = %v, want %v", i, arr.C[i], w)
		}
	}
}

func TestLowerReturnEarly(t *testing.T) {
	src := `function y = f(x)
y = 1;
if x > 0
    return
end
y = 2;
end`
	f := compile(t, src, sema.RealScalar)
	if got := execute(t, f, 5.0)[0].(int64); got != 1 {
		t.Errorf("got %v, want 1", got)
	}
	if got := execute(t, f, -5.0)[0].(int64); got != 2 {
		t.Errorf("got %v, want 2", got)
	}
}

func TestLowerErrorReturnInCallee(t *testing.T) {
	src := `function y = f(x)
y = g(x);
end
function z = g(v)
z = 1;
return
end`
	file := mlang.MustParse(src)
	info, err := sema.Analyze(file, "f", []sema.Type{sema.RealScalar})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Lower(info)
	if err == nil || !strings.Contains(err.Error(), "inlined") {
		t.Errorf("got %v, want inline-return error", err)
	}
}

func TestLowerIRPrintStable(t *testing.T) {
	f := compile(t, "function y = f(x)\ny = x + 1;\nend", sema.RealScalar)
	p1 := ir.Print(f)
	p2 := ir.Print(f)
	if p1 != p2 {
		t.Error("printing not deterministic")
	}
	if !strings.Contains(p1, "func f(") {
		t.Errorf("unexpected printout:\n%s", p1)
	}
}
