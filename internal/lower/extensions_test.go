package lower

import (
	"strings"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/mlang"
	"mat2c/internal/sema"
)

// ----- switch statement -----

func TestLowerSwitchBasic(t *testing.T) {
	src := `function y = f(x)
switch x
case 1
    y = 10;
case 2
    y = 20;
otherwise
    y = -1;
end
end`
	f := compile(t, src, sema.RealScalar)
	cases := map[float64]int64{1: 10, 2: 20, 7: -1}
	for in, want := range cases {
		if got := execute(t, f, in)[0].(int64); got != want {
			t.Errorf("f(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestLowerSwitchNoOtherwise(t *testing.T) {
	src := `function y = f(x)
y = 0;
switch x
case 5
    y = 1;
end
end`
	f := compile(t, src, sema.IntScalar)
	if got := execute(t, f, int64(5))[0].(int64); got != 1 {
		t.Errorf("matched case: got %v", got)
	}
	if got := execute(t, f, int64(6))[0].(int64); got != 0 {
		t.Errorf("fallthrough: got %v", got)
	}
}

func TestLowerSwitchExpressionCases(t *testing.T) {
	src := `function y = f(x, a)
switch x
case a + 1
    y = 1;
case a * 2
    y = 2;
otherwise
    y = 3;
end
end`
	f := compile(t, src, sema.RealScalar, sema.RealScalar)
	if got := execute(t, f, 4.0, 3.0)[0].(int64); got != 1 {
		t.Errorf("a+1 arm: got %v", got)
	}
	if got := execute(t, f, 6.0, 3.0)[0].(int64); got != 2 {
		t.Errorf("a*2 arm: got %v", got)
	}
	if got := execute(t, f, 9.0, 3.0)[0].(int64); got != 3 {
		t.Errorf("otherwise: got %v", got)
	}
}

func TestLowerSwitchInsideLoop(t *testing.T) {
	src := `function s = f(x)
s = 0;
for i = 1:length(x)
    switch mod(x(i), 3)
    case 0
        s = s + 100;
    case 1
        s = s + 10;
    otherwise
        s = s + 1;
    end
end
end`
	f := compile(t, src, dynRealVec())
	// x = [0 1 2 3 4] → 100 + 10 + 1 + 100 + 10 = 221
	if got := execute(t, f, rowVec(0, 1, 2, 3, 4))[0].(int64); got != 221 {
		t.Errorf("got %v, want 221", got)
	}
}

func TestParseSwitchErrors(t *testing.T) {
	cases := []string{
		"switch x\nend",                    // no case/otherwise
		"switch x\ncase 1\n",               // missing end
		"case 1\n",                         // stray case
		"switch x\notherwise\ncase 1\nend", // case after otherwise
	}
	for _, src := range cases {
		if _, err := mlang.Parse(src); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestFormatSwitchFixpoint(t *testing.T) {
	src := "switch x\ncase 1\ny = 1;\notherwise\ny = 2;\nend"
	f1, err := mlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s1 := mlang.Format(f1)
	f2, err := mlang.Parse(s1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s1)
	}
	if s2 := mlang.Format(f2); s1 != s2 {
		t.Errorf("not a fixpoint:\n%s\nvs\n%s", s1, s2)
	}
}

// ----- logical indexing -----

func TestLowerLogicalIndexRead(t *testing.T) {
	src := "function y = f(x)\ny = x(x > 0);\nend"
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, -2, 3, -4, 5))
	wantFloats(t, res[0].(*ir.Array), []float64{1, 3, 5})
}

func TestLowerLogicalIndexReadEmpty(t *testing.T) {
	src := "function y = f(x)\ny = x(x > 100);\nend"
	f := compile(t, src, dynRealVec())
	arr := execute(t, f, rowVec(1, 2))[0].(*ir.Array)
	if arr.Len() != 0 {
		t.Errorf("expected empty selection, got %v", arr.F)
	}
}

func TestLowerLogicalIndexOtherArray(t *testing.T) {
	// Mask from one array, elements from another.
	src := "function y = f(x, m)\ny = x(m > 0);\nend"
	f := compile(t, src, dynRealVec(), dynRealVec())
	res := execute(t, f, rowVec(10, 20, 30), rowVec(1, -1, 1))
	wantFloats(t, res[0].(*ir.Array), []float64{10, 30})
}

func TestLowerLogicalStoreScalar(t *testing.T) {
	src := "function x = f(x)\nx(x < 0) = 0;\nend"
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, -2, 3, -4))
	wantFloats(t, res[0].(*ir.Array), []float64{1, 0, 3, 0})
}

func TestLowerLogicalStoreVector(t *testing.T) {
	// Replace the masked elements with values consumed in order.
	src := "function x = f(x, v)\nx(x < 0) = v;\nend"
	f := compile(t, src, dynRealVec(), dynRealVec())
	res := execute(t, f, rowVec(1, -2, 3, -4), rowVec(20, 40))
	wantFloats(t, res[0].(*ir.Array), []float64{1, 20, 3, 40})
}

func TestLowerLogicalCountViaSum(t *testing.T) {
	src := "function n = f(x)\nn = sum(x > 0);\nend"
	f := compile(t, src, dynRealVec())
	if got := execute(t, f, rowVec(1, -1, 2, -2, 3))[0].(int64); got != 3 {
		t.Errorf("got %v, want 3", got)
	}
}

func TestLowerLogicalComplexElements(t *testing.T) {
	src := "function y = f(x)\ny = x(real(x) > 0);\nend"
	f := compile(t, src, dynCplxVec())
	res := execute(t, f, cplxRowVec(1+2i, -1+5i, 3-1i))
	arr := res[0].(*ir.Array)
	if arr.Len() != 2 || arr.C[0] != 1+2i || arr.C[1] != 3-1i {
		t.Errorf("got %v", arr.C)
	}
}

func TestSemaLogicalIndexing2DRejected(t *testing.T) {
	src := "function y = f(a, m)\ny = a(m > 0, 1);\nend"
	file := mlang.MustParse(src)
	_, err := sema.Analyze(file, "f", []sema.Type{
		{Class: sema.Real, Shape: sema.Shape{Rows: 3, Cols: 3}},
		{Class: sema.Real, Shape: sema.ColVec(3)},
	})
	if err == nil || !strings.Contains(err.Error(), "logical indexing") {
		t.Errorf("got %v, want logical-indexing restriction", err)
	}
}

func TestSemaLogicalMaskLengthMismatch(t *testing.T) {
	src := "function y = f(x, m)\ny = x(m > 0);\nend"
	file := mlang.MustParse(src)
	_, err := sema.Analyze(file, "f", []sema.Type{
		{Class: sema.Real, Shape: sema.RowVec(8)},
		{Class: sema.Real, Shape: sema.RowVec(5)},
	})
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("got %v, want mask-length error", err)
	}
}

// ----- find / any / all / nnz -----

func TestLowerFind(t *testing.T) {
	src := "function y = f(x)\ny = find(x > 2);\nend"
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 5, 2, 7, 3))
	wantFloats(t, res[0].(*ir.Array), []float64{2, 4, 5})
}

func TestLowerFindDirect(t *testing.T) {
	src := "function y = f(x)\ny = find(x);\nend"
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(0, 3, 0, 1))
	wantFloats(t, res[0].(*ir.Array), []float64{2, 4})
}

func TestLowerFindUsedAsIndex(t *testing.T) {
	src := `function y = f(x)
idx = find(x > 0);
y = x(idx);
end`
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(-1, 4, -2, 9))
	wantFloats(t, res[0].(*ir.Array), []float64{4, 9})
}

func TestLowerAnyAllNnz(t *testing.T) {
	src := `function [a, b, c] = f(x)
a = any(x > 3);
b = all(x > 0);
c = nnz(x);
end`
	f := compileMulti(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 0, 5))
	if res[0].(int64) != 1 {
		t.Errorf("any = %v", res[0])
	}
	if res[1].(int64) != 0 {
		t.Errorf("all = %v", res[1])
	}
	if res[2].(int64) != 2 {
		t.Errorf("nnz = %v", res[2])
	}
}

func TestLowerMinMaxWithIndex(t *testing.T) {
	src := `function [m, i, M, j] = f(x)
[m, i] = min(x);
[M, j] = max(x);
end`
	f := compileMulti(t, src, dynRealVec())
	res := execute(t, f, rowVec(3, 1, 4, 1, 5, 9, 2, 6))
	if res[0].(float64) != 1 || res[1].(int64) != 2 {
		t.Errorf("min = %v at %v, want 1 at 2", res[0], res[1])
	}
	if res[2].(float64) != 9 || res[3].(int64) != 6 {
		t.Errorf("max = %v at %v, want 9 at 6", res[2], res[3])
	}
}

func TestLowerMinMaxIndexFirstOccurrence(t *testing.T) {
	src := "function [m, i] = f(x)\n[m, i] = max(x);\nend"
	f := compileMulti(t, src, dynRealVec())
	res := execute(t, f, rowVec(7, 2, 7, 7))
	if res[1].(int64) != 1 {
		t.Errorf("first occurrence index = %v, want 1", res[1])
	}
}

func TestSemaMinMaxTwoArgTwoOutputsRejected(t *testing.T) {
	src := "function [m, i] = f(a, b)\n[m, i] = max(a, b);\nend"
	file := mlang.MustParse(src)
	_, err := sema.Analyze(file, "f", []sema.Type{sema.RealScalar, sema.RealScalar})
	if err == nil {
		t.Error("expected error for two-arg two-output max")
	}
}
