package lower

import (
	"mat2c/internal/ir"
	"mat2c/internal/mlang"
	"mat2c/internal/sema"
)

// aval is a lowered MATLAB value: either a scalar expression or an
// "element view" of an array-shaped value. A view exposes its extents
// and a pure generator producing the element at a 0-based column-major
// linear index. Views compose without materialization, which is what
// fuses elementwise operator trees into single loops.
type aval struct {
	kind   ir.BaseKind
	scalar ir.Expr // non-nil => scalar

	rows, cols ir.Expr                   // hoisted extents (arrays only)
	at         func(lin ir.Expr) ir.Expr // element generator (arrays only)
	arr        *ir.Sym                   // set when the view is exactly this array
	reads      []*ir.Sym                 // arrays this view loads from
}

func (v aval) isScalar() bool { return v.scalar != nil }

// length returns rows*cols.
func (v aval) length() ir.Expr { return ir.IMul(v.rows, v.cols) }

func scalarVal(e ir.Expr) aval { return aval{kind: e.Kind().Base, scalar: e} }

func (l *lowerer) atomView(s *ir.Sym) aval {
	rows := l.hoist(&ir.Dim{Arr: s, Which: ir.DimRows}, "r")
	cols := l.hoist(&ir.Dim{Arr: s, Which: ir.DimCols}, "c")
	return aval{
		kind: s.Elem, rows: rows, cols: cols, arr: s, reads: []*ir.Sym{s},
		at: func(lin ir.Expr) ir.Expr { return &ir.Load{Arr: s, Index: lin} },
	}
}

// readsSym reports whether the view loads from s.
func (v aval) readsSym(s *ir.Sym) bool {
	for _, r := range v.reads {
		if r == s {
			return true
		}
	}
	return false
}

func unionReads(vs ...aval) []*ir.Sym {
	var out []*ir.Sym
	seen := map[*ir.Sym]bool{}
	for _, v := range vs {
		for _, r := range v.reads {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// scalarExpr lowers e and requires a scalar result.
func (l *lowerer) scalarExpr(e mlang.Expr) ir.Expr {
	v := l.lowerExpr(e)
	if !v.isScalar() {
		// A 1x1 array value (e.g. from dynamic shapes) reads element 0.
		if v.at != nil {
			return v.at(ir.CI(0))
		}
		l.fail(e.NodePos(), "scalar value required")
	}
	return v.scalar
}

// materialize stores a view into a fresh temp array and returns its atom.
func (l *lowerer) materialize(v aval) aval {
	if v.arr != nil {
		return v
	}
	if v.isScalar() {
		t := l.tempArr("t", arrayElemKindIR(v.kind))
		l.emit(&ir.Alloc{Arr: t, Rows: ir.CI(1), Cols: ir.CI(1)})
		l.emit(&ir.Store{Arr: t, Index: ir.CI(0), Val: l.asBase(v.scalar, t.Elem)})
		return l.atomView(t)
	}
	t := l.tempArr("t", arrayElemKindIR(v.kind))
	l.emit(&ir.Alloc{Arr: t, Rows: v.rows, Cols: v.cols})
	k := l.temp("k", ir.Int)
	body := []ir.Stmt{&ir.Store{Arr: t, Index: ir.V(k), Val: l.asBase(v.at(ir.V(k)), t.Elem)}}
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(v.length(), ir.CI(1)), Step: 1, Body: body})
	return l.atomView(t)
}

func arrayElemKindIR(k ir.BaseKind) ir.BaseKind {
	if k == ir.Complex {
		return ir.Complex
	}
	return ir.Float
}

func (l *lowerer) lowerExpr(e mlang.Expr) aval {
	v := l.lowerExpr1(e)
	// Baseline (MATLAB-Coder-like) code shape: no fusion — every
	// array-valued intermediate is materialized into a temporary.
	if l.noFuse && !v.isScalar() && v.arr == nil {
		return l.materialize(v)
	}
	return v
}

func (l *lowerer) lowerExpr1(e mlang.Expr) aval {
	switch e := e.(type) {
	case *mlang.NumberExpr:
		if e.Imag {
			return scalarVal(ir.CC(complex(0, e.Value)))
		}
		t := l.info.TypeOf(e)
		if t.Class == sema.Int {
			return scalarVal(ir.CI(int64(e.Value)))
		}
		return scalarVal(ir.CF(e.Value))

	case *mlang.IdentExpr:
		if s := l.frame().vars[e.Name]; s != nil {
			if s.IsArray {
				return l.atomView(s)
			}
			return scalarVal(ir.V(s))
		}
		// Builtin constants.
		switch e.Name {
		case "pi":
			return scalarVal(ir.CF(3.141592653589793))
		case "eps":
			return scalarVal(ir.CF(2.220446049250313e-16))
		}
		l.fail(e.Pos, "undefined variable %q", e.Name)

	case *mlang.UnaryExpr:
		return l.lowerUnary(e)

	case *mlang.BinaryExpr:
		return l.lowerBinary(e)

	case *mlang.TransposeExpr:
		return l.lowerTranspose(e)

	case *mlang.RangeExpr:
		return l.lowerRange(e)

	case *mlang.MatrixExpr:
		return l.lowerMatrixLit(e)

	case *mlang.CallExpr:
		switch l.info.Calls[e] {
		case sema.CallIndex:
			return l.lowerIndexRead(e)
		case sema.CallBuiltin:
			return l.lowerBuiltin(e)
		case sema.CallUser:
			res := l.inlineCall(e, 1)
			if len(res) == 0 {
				l.fail(e.Pos, "call has no results")
			}
			return res[0]
		}
		l.fail(e.Pos, "unresolved call")

	case *mlang.EndExpr:
		if len(l.endStack) == 0 {
			l.fail(e.Pos, "'end' outside index")
		}
		return scalarVal(l.endStack[len(l.endStack)-1])

	case *mlang.ColonExpr:
		l.fail(e.Pos, "':' outside index")
	}
	l.fail(e.NodePos(), "unsupported expression %T", e)
	return aval{}
}

func (l *lowerer) lowerUnary(e *mlang.UnaryExpr) aval {
	x := l.lowerExpr(e.X)
	apply := func(v ir.Expr) ir.Expr {
		switch e.Op {
		case mlang.OpNeg:
			return ir.U(ir.OpNeg, v, v.Kind())
		case mlang.OpPos:
			return v
		case mlang.OpNot:
			return ir.U(ir.OpNot, v, ir.Kind{Base: ir.Int, Lanes: v.Kind().Lanes})
		}
		l.fail(e.Pos, "unsupported unary op")
		return nil
	}
	return l.mapView(x, apply)
}

// mapView applies a scalar function elementwise to a value.
func (l *lowerer) mapView(x aval, f func(ir.Expr) ir.Expr) aval {
	if x.isScalar() {
		return scalarVal(f(x.scalar))
	}
	probe := f(x.at(ir.CI(0)))
	return aval{
		kind: probe.Kind().Base, rows: x.rows, cols: x.cols, reads: x.reads,
		at: func(lin ir.Expr) ir.Expr { return f(x.at(lin)) },
	}
}

// zipViews applies a binary scalar function elementwise with scalar
// broadcasting. Result extents follow the non-scalar operand (sema has
// already checked conformance).
func (l *lowerer) zipViews(x, y aval, f func(a, b ir.Expr) ir.Expr) aval {
	if x.isScalar() && y.isScalar() {
		return scalarVal(f(x.scalar, y.scalar))
	}
	// Hoist broadcast scalars so they are evaluated once.
	if x.isScalar() {
		xs := l.hoist(x.scalar, "s")
		probe := f(xs, y.at(ir.CI(0)))
		return aval{kind: probe.Kind().Base, rows: y.rows, cols: y.cols, reads: y.reads,
			at: func(lin ir.Expr) ir.Expr { return f(xs, y.at(lin)) }}
	}
	if y.isScalar() {
		ys := l.hoist(y.scalar, "s")
		probe := f(x.at(ir.CI(0)), ys)
		return aval{kind: probe.Kind().Base, rows: x.rows, cols: x.cols, reads: x.reads,
			at: func(lin ir.Expr) ir.Expr { return f(x.at(lin), ys) }}
	}
	probe := f(x.at(ir.CI(0)), y.at(ir.CI(0)))
	return aval{kind: probe.Kind().Base, rows: x.rows, cols: x.cols,
		reads: unionReads(x, y),
		at:    func(lin ir.Expr) ir.Expr { return f(x.at(lin), y.at(lin)) }}
}

// commonBase picks the arithmetic base for a binary op.
func commonBase(a, b ir.BaseKind) ir.BaseKind {
	if a > b {
		return a
	}
	return b
}

func (l *lowerer) lowerBinary(e *mlang.BinaryExpr) aval {
	switch e.Op {
	case mlang.OpMatMul:
		return l.lowerMatMul(e)
	case mlang.OpMatDiv, mlang.OpMatLDiv, mlang.OpMatPow:
		// Sema restricted these to (effectively) scalar forms.
	}

	x := l.lowerExpr(e.X)
	y := l.lowerExpr(e.Y)

	var irop ir.Op
	base := commonBase(x.kind, y.kind)
	switch e.Op {
	case mlang.OpAdd:
		irop = ir.OpAdd
	case mlang.OpSub:
		irop = ir.OpSub
	case mlang.OpElMul:
		irop = ir.OpMul
	case mlang.OpElDiv, mlang.OpMatDiv:
		irop = ir.OpDiv
		if base == ir.Int {
			base = ir.Float
		}
	case mlang.OpMatLDiv:
		irop = ir.OpDiv
		if base == ir.Int {
			base = ir.Float
		}
		x, y = y, x // a\b == b/a for scalar a
	case mlang.OpElPow, mlang.OpMatPow:
		irop = ir.OpPow
		if base == ir.Int {
			base = ir.Float
		}
	case mlang.OpLt, mlang.OpLe, mlang.OpGt, mlang.OpGe, mlang.OpEq, mlang.OpNe:
		return l.lowerCompare(e, x, y)
	case mlang.OpAndAnd, mlang.OpAnd:
		irop = ir.OpAnd
	case mlang.OpOrOr, mlang.OpOr:
		irop = ir.OpOr
	default:
		l.fail(e.Pos, "unsupported operator %s", e.Op)
	}

	b := base
	return l.zipViews(x, y, func(a, c ir.Expr) ir.Expr {
		return ir.B(irop, l.asBase(a, b), l.asBase(c, b))
	})
}

func (l *lowerer) lowerCompare(e *mlang.BinaryExpr, x, y aval) aval {
	var irop ir.Op
	switch e.Op {
	case mlang.OpLt:
		irop = ir.OpLt
	case mlang.OpLe:
		irop = ir.OpLe
	case mlang.OpGt:
		irop = ir.OpGt
	case mlang.OpGe:
		irop = ir.OpGe
	case mlang.OpEq:
		irop = ir.OpEq
	case mlang.OpNe:
		irop = ir.OpNe
	}
	base := commonBase(x.kind, y.kind)
	if base == ir.Complex && irop != ir.OpEq && irop != ir.OpNe {
		// MATLAB orders complex values by real part.
		return l.zipViews(x, y, func(a, c ir.Expr) ir.Expr {
			return ir.B(irop, l.toRealPart(a), l.toRealPart(c))
		})
	}
	return l.zipViews(x, y, func(a, c ir.Expr) ir.Expr {
		return ir.B(irop, l.asBase(a, base), l.asBase(c, base))
	})
}

func (l *lowerer) toRealPart(e ir.Expr) ir.Expr {
	if e.Kind().Base == ir.Complex {
		return ir.U(ir.OpRe, e, ir.Kind{Base: ir.Float, Lanes: e.Kind().Lanes})
	}
	return l.asBase(e, ir.Float)
}

// lowerMatMul handles scalar*array, dot products, matrix-vector and
// matrix-matrix products.
func (l *lowerer) lowerMatMul(e *mlang.BinaryExpr) aval {
	xt := l.info.TypeOf(e.X)
	yt := l.info.TypeOf(e.Y)
	x := l.lowerExpr(e.X)
	y := l.lowerExpr(e.Y)

	// Scalar forms degrade to elementwise multiply.
	if x.isScalar() || y.isScalar() {
		base := commonBase(x.kind, y.kind)
		return l.zipViews(x, y, func(a, c ir.Expr) ir.Expr {
			return ir.B(ir.OpMul, l.asBase(a, base), l.asBase(c, base))
		})
	}

	base := commonBase(x.kind, y.kind)
	if base == ir.Int {
		base = ir.Float
	}
	bk := ir.Kind{Base: base, Lanes: 1}

	// Dot product: row * col → scalar reduction loop.
	if xt.Shape.IsRowVec() && yt.Shape.IsColVec() {
		acc := l.temp("dot", base)
		l.emit(&ir.Assign{Dst: acc, Src: zeroOf(base)})
		k := l.temp("k", ir.Int)
		body := []ir.Stmt{&ir.Assign{Dst: acc, Src: ir.B(ir.OpAdd, ir.V(acc),
			ir.B(ir.OpMul, l.asBase(x.at(ir.V(k)), base), l.asBase(y.at(ir.V(k)), base)))}}
		l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(x.length(), ir.CI(1)), Step: 1, Body: body})
		return scalarVal(ir.V(acc))
	}

	// General matrix product, saxpy (j, k, i) order: the innermost loop
	// runs down a column of the result and of A with unit stride, so it
	// vectorizes and fuses into FMAs — the natural column-major
	// formulation:
	//
	//	for j: for k: c(:, j) += a(:, k) * b(k, j)
	xa := x
	ya := y
	t := l.tempArr("mm", arrayElemKindIR(base))
	m := xa.rows // result rows
	n := ya.cols // result cols
	kk := xa.cols
	l.emit(&ir.Alloc{Arr: t, Rows: m, Cols: n}) // zero-filled
	i := l.temp("i", ir.Int)
	j := l.temp("j", ir.Int)
	k := l.temp("k", ir.Int)
	bkj := l.temp("bkj", base)
	cOff := l.temp("coff", ir.Int)
	aOff := l.temp("aoff", ir.Int)

	cIdx := ir.IAdd(ir.V(i), ir.V(cOff))
	inner := []ir.Stmt{
		&ir.Store{Arr: t, Index: cIdx,
			Val: l.asBase(ir.B(ir.OpAdd, &ir.Load{Arr: t, Index: cIdx},
				ir.B(ir.OpMul,
					l.asBase(xa.at(ir.IAdd(ir.V(i), ir.V(aOff))), base),
					ir.V(bkj))), t.Elem)},
	}
	kBody := []ir.Stmt{
		&ir.Assign{Dst: bkj, Src: l.asBase(ya.at(ir.IAdd(ir.V(k), ir.IMul(ir.V(j), kk))), base)},
		&ir.Assign{Dst: aOff, Src: ir.IMul(ir.V(k), m)},
		&ir.For{Var: i, Lo: ir.CI(0), Hi: ir.ISub(m, ir.CI(1)), Step: 1, Body: inner},
	}
	jBody := []ir.Stmt{
		&ir.Assign{Dst: cOff, Src: ir.IMul(ir.V(j), m)},
		&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(kk, ir.CI(1)), Step: 1, Body: kBody},
	}
	l.emit(&ir.For{Var: j, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(1)), Step: 1, Body: jBody})
	_ = bk
	return l.atomView(t)
}

func zeroOf(b ir.BaseKind) ir.Expr {
	switch b {
	case ir.Int:
		return ir.CI(0)
	case ir.Float:
		return ir.CF(0)
	default:
		return ir.CC(0)
	}
}

func oneOf(b ir.BaseKind) ir.Expr {
	switch b {
	case ir.Int:
		return ir.CI(1)
	case ir.Float:
		return ir.CF(1)
	default:
		return ir.CC(1)
	}
}

func (l *lowerer) lowerTranspose(e *mlang.TransposeExpr) aval {
	xt := l.info.TypeOf(e.X)
	x := l.lowerExpr(e.X)
	conj := e.Conj && x.kind == ir.Complex

	applyConj := func(v ir.Expr) ir.Expr {
		if conj {
			return ir.U(ir.OpConj, v, v.Kind())
		}
		return v
	}
	if x.isScalar() {
		return scalarVal(applyConj(x.scalar))
	}
	// Vector transpose keeps the linear layout; only the extents swap.
	if xt.Shape.IsVector() {
		return aval{kind: x.kind, rows: x.cols, cols: x.rows, reads: x.reads,
			at: func(lin ir.Expr) ir.Expr { return applyConj(x.at(lin)) }}
	}
	// Matrix transpose: materialize with a 2-nest.
	t := l.tempArr("tr", arrayElemKindIR(x.kind))
	l.emit(&ir.Alloc{Arr: t, Rows: x.cols, Cols: x.rows})
	i := l.temp("i", ir.Int)
	j := l.temp("j", ir.Int)
	// t[j + i*cols(x)] = x[i + j*rows(x)]  (t is cols(x) × rows(x))
	inner := []ir.Stmt{&ir.Store{
		Arr:   t,
		Index: ir.IAdd(ir.V(j), ir.IMul(ir.V(i), x.cols)),
		Val:   l.asBase(applyConj(x.at(ir.IAdd(ir.V(i), ir.IMul(ir.V(j), x.rows)))), t.Elem),
	}}
	jBody := []ir.Stmt{&ir.For{Var: i, Lo: ir.CI(0), Hi: ir.ISub(x.rows, ir.CI(1)), Step: 1, Body: inner}}
	l.emit(&ir.For{Var: j, Lo: ir.CI(0), Hi: ir.ISub(x.cols, ir.CI(1)), Step: 1, Body: jBody})
	return l.atomView(t)
}

func (l *lowerer) lowerRange(e *mlang.RangeExpr) aval {
	lo := l.hoist(l.scalarExpr(e.Start), "lo")
	hi := l.hoist(l.scalarExpr(e.Stop), "hi")
	step := ir.Expr(ir.CI(1))
	if e.Step != nil {
		step = l.hoist(l.scalarExpr(e.Step), "st")
	}
	intRange := lo.Kind().Base == ir.Int && hi.Kind().Base == ir.Int && step.Kind().Base == ir.Int

	var count ir.Expr
	if intRange {
		count = ir.B(ir.OpAdd, ir.B(ir.OpDiv, ir.B(ir.OpSub, hi, lo), step), ir.CI(1))
	} else {
		diff := ir.B(ir.OpSub, l.asBase(hi, ir.Float), l.asBase(lo, ir.Float))
		count = ir.B(ir.OpAdd, ir.U(ir.OpFloor, ir.B(ir.OpDiv, diff, l.asBase(step, ir.Float)), ir.KInt), ir.CI(1))
	}
	count = l.hoist(foldIntExpr(ir.B(ir.OpMax, count, ir.CI(0))), "n")

	kind := ir.Int
	if !intRange {
		kind = ir.Float
	}
	return aval{kind: kind, rows: ir.CI(1), cols: count,
		at: func(lin ir.Expr) ir.Expr {
			if intRange {
				return ir.IAdd(lo, ir.IMul(lin, step))
			}
			return ir.B(ir.OpAdd, l.asBase(lo, ir.Float),
				ir.B(ir.OpMul, l.asBase(lin, ir.Float), l.asBase(step, ir.Float)))
		}}
}

// lowerMatrixLit materializes a matrix literal / concatenation.
func (l *lowerer) lowerMatrixLit(e *mlang.MatrixExpr) aval {
	t := l.info.TypeOf(e)
	if len(e.Rows) == 0 {
		tv := l.tempArr("mt", arrayElemKindIR(baseKind(t.Class)))
		l.emit(&ir.Alloc{Arr: tv, Rows: ir.CI(0), Cols: ir.CI(0)})
		return l.atomView(tv)
	}
	// Scalar 1x1 literal.
	if t.IsScalar() && len(e.Rows) == 1 && len(e.Rows[0]) == 1 {
		return l.lowerExpr(e.Rows[0][0])
	}

	elemK := arrayElemKindIR(baseKind(t.Class))

	// Lower all pieces first (their emitted code must precede the copy).
	pieces := make([][]aval, len(e.Rows))
	for i, row := range e.Rows {
		pieces[i] = make([]aval, len(row))
		for j, el := range row {
			pieces[i][j] = l.lowerExpr(el)
		}
	}

	// Total extents: rows = sum of per-rowgroup heights, cols = first
	// row-group's width sum.
	rowH := make([]ir.Expr, len(pieces))
	var totalRows ir.Expr = ir.CI(0)
	for i, row := range pieces {
		h := pieceRows(row[0])
		rowH[i] = l.hoist(h, "rh")
		totalRows = ir.IAdd(totalRows, rowH[i])
	}
	totalRows = l.hoist(totalRows, "R")
	var totalCols ir.Expr = ir.CI(0)
	for _, p := range pieces[0] {
		totalCols = ir.IAdd(totalCols, pieceCols(p))
	}
	totalCols = l.hoist(totalCols, "C")

	tv := l.tempArr("mt", elemK)
	l.emit(&ir.Alloc{Arr: tv, Rows: totalRows, Cols: totalCols})

	var rowOff ir.Expr = ir.CI(0)
	for gi, row := range pieces {
		var colOff ir.Expr = ir.CI(0)
		for _, p := range row {
			l.copyPieceInto(tv, p, rowOff, colOff, totalRows)
			colOff = l.hoist(ir.IAdd(colOff, pieceCols(p)), "co")
		}
		rowOff = l.hoist(ir.IAdd(rowOff, rowH[gi]), "ro")
	}
	return l.atomView(tv)
}

func pieceRows(p aval) ir.Expr {
	if p.isScalar() {
		return ir.CI(1)
	}
	return p.rows
}

func pieceCols(p aval) ir.Expr {
	if p.isScalar() {
		return ir.CI(1)
	}
	return p.cols
}

// copyPieceInto writes piece p at (rowOff, colOff) of dest (which has
// destRows rows).
func (l *lowerer) copyPieceInto(dest *ir.Sym, p aval, rowOff, colOff, destRows ir.Expr) {
	if p.isScalar() {
		idx := ir.IAdd(rowOff, ir.IMul(colOff, destRows))
		l.emit(&ir.Store{Arr: dest, Index: idx, Val: l.asBase(p.scalar, dest.Elem)})
		return
	}
	i := l.temp("i", ir.Int)
	j := l.temp("j", ir.Int)
	inner := []ir.Stmt{&ir.Store{
		Arr:   dest,
		Index: ir.IAdd(ir.IAdd(rowOff, ir.V(i)), ir.IMul(ir.IAdd(colOff, ir.V(j)), destRows)),
		Val:   l.asBase(p.at(ir.IAdd(ir.V(i), ir.IMul(ir.V(j), p.rows))), dest.Elem),
	}}
	jBody := []ir.Stmt{&ir.For{Var: i, Lo: ir.CI(0), Hi: ir.ISub(p.rows, ir.CI(1)), Step: 1, Body: inner}}
	l.emit(&ir.For{Var: j, Lo: ir.CI(0), Hi: ir.ISub(p.cols, ir.CI(1)), Step: 1, Body: jBody})
}
