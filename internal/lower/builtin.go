package lower

import (
	"mat2c/internal/ir"
	"mat2c/internal/mlang"
	"mat2c/internal/sema"
)

// lowerBuiltin lowers a single-result builtin call.
func (l *lowerer) lowerBuiltin(call *mlang.CallExpr) aval {
	name := call.Fun.(*mlang.IdentExpr).Name
	args := make([]aval, len(call.Args))
	for i, a := range call.Args {
		if _, isColon := a.(*mlang.ColonExpr); isColon {
			l.fail(a.NodePos(), "':' argument is only valid when indexing")
		}
		args[i] = l.lowerExpr(a)
	}

	switch name {
	case "zeros", "ones":
		return l.lowerCreation(call, name, args)

	case "length":
		if args[0].isScalar() {
			return scalarVal(ir.CI(1))
		}
		// MATLAB: max(size(x)), except 0 for empty arrays. min with the
		// element count handles the empty case branch-free.
		return scalarVal(ir.B(ir.OpMin,
			ir.B(ir.OpMax, args[0].rows, args[0].cols),
			args[0].length()))

	case "numel":
		if args[0].isScalar() {
			return scalarVal(ir.CI(1))
		}
		return scalarVal(args[0].length())

	case "size":
		return l.lowerSize(call, args)

	case "sum", "prod", "mean":
		return l.lowerReduction(call, name, args[0])

	case "min", "max":
		op := ir.OpMin
		if name == "max" {
			op = ir.OpMax
		}
		if len(args) == 2 {
			base := commonBase(args[0].kind, args[1].kind)
			if base == ir.Complex {
				l.fail(call.Pos, "min/max of complex values is not supported")
			}
			return l.zipViews(args[0], args[1], func(a, b ir.Expr) ir.Expr {
				return ir.B(op, l.asBase(a, base), l.asBase(b, base))
			})
		}
		return l.lowerMinMaxReduce(call, op, args[0])

	case "sqrt":
		return l.mapView(args[0], func(v ir.Expr) ir.Expr {
			k := ir.KFloat
			if v.Kind().Base == ir.Complex {
				k = ir.KComplex
			}
			return ir.U(ir.OpSqrt, l.asFloatOrComplex(v), k)
		})
	case "sin", "cos", "tan", "exp", "log", "asin", "acos", "atan",
		"sinh", "cosh", "tanh":
		op := map[string]ir.Op{"sin": ir.OpSin, "cos": ir.OpCos, "tan": ir.OpTan,
			"exp": ir.OpExp, "log": ir.OpLog, "asin": ir.OpAsin, "acos": ir.OpAcos,
			"atan": ir.OpAtan, "sinh": ir.OpSinh, "cosh": ir.OpCosh, "tanh": ir.OpTanh}[name]
		return l.mapView(args[0], func(v ir.Expr) ir.Expr {
			k := ir.KFloat
			if v.Kind().Base == ir.Complex {
				k = ir.KComplex
			}
			return ir.U(op, l.asFloatOrComplex(v), k)
		})

	case "log2", "log10":
		// Lowered by composition: log(x) * (1/log(base)).
		scale := 1.4426950408889634 // 1/ln(2)
		if name == "log10" {
			scale = 0.4342944819032518 // 1/ln(10)
		}
		return l.mapView(args[0], func(v ir.Expr) ir.Expr {
			return ir.B(ir.OpMul,
				ir.U(ir.OpLog, l.asBase(v, ir.Float), ir.KFloat), ir.CF(scale))
		})

	case "atan2":
		return l.zipViews(args[0], args[1], func(a, b ir.Expr) ir.Expr {
			return ir.B(ir.OpAtan2, l.asBase(a, ir.Float), l.asBase(b, ir.Float))
		})

	case "linspace":
		return l.lowerLinspace(call, args)

	case "eye":
		return l.lowerEye(call, args)

	case "fliplr", "flipud":
		return l.lowerFlip(call, name, args[0])

	case "cumsum":
		return l.lowerCumsum(call, args[0])

	case "dot":
		return l.lowerDot(call, args[0], args[1])

	case "norm":
		return l.lowerNorm(call, args[0])

	case "var", "std":
		return l.lowerVarStd(call, name, args[0])

	case "isempty":
		if args[0].isScalar() {
			return scalarVal(ir.CI(0))
		}
		return scalarVal(ir.B(ir.OpEq, args[0].length(), ir.CI(0)))

	case "find":
		return l.lowerFind(call, args[0])

	case "any", "all", "nnz":
		return l.lowerBoolReduce(call, name, args[0])

	case "floor", "ceil", "round", "fix", "sign":
		op := map[string]ir.Op{"floor": ir.OpFloor, "ceil": ir.OpCeil,
			"round": ir.OpRound, "fix": ir.OpTrunc, "sign": ir.OpSign}[name]
		return l.mapView(args[0], func(v ir.Expr) ir.Expr {
			if v.Kind().Base == ir.Int {
				if op == ir.OpSign {
					return ir.U(ir.OpSign, l.asBase(v, ir.Float), ir.KInt)
				}
				return v // already integral
			}
			return ir.U(op, l.asBase(v, ir.Float), ir.KInt)
		})

	case "abs":
		return l.mapView(args[0], func(v ir.Expr) ir.Expr {
			if v.Kind().Base == ir.Int {
				return ir.U(ir.OpAbs, l.asBase(v, ir.Float), ir.KInt)
			}
			return ir.U(ir.OpAbs, v, ir.KFloat)
		})

	case "real":
		return l.mapView(args[0], func(v ir.Expr) ir.Expr {
			if v.Kind().Base == ir.Complex {
				return ir.U(ir.OpRe, v, ir.KFloat)
			}
			return l.asBase(v, ir.Float)
		})
	case "imag":
		return l.mapView(args[0], func(v ir.Expr) ir.Expr {
			if v.Kind().Base == ir.Complex {
				return ir.U(ir.OpIm, v, ir.KFloat)
			}
			return ir.CF(0)
		})
	case "conj":
		return l.mapView(args[0], func(v ir.Expr) ir.Expr {
			if v.Kind().Base == ir.Complex {
				return ir.U(ir.OpConj, v, ir.KComplex)
			}
			return v
		})
	case "angle":
		return l.mapView(args[0], func(v ir.Expr) ir.Expr {
			return ir.U(ir.OpAngle, l.asBase(v, ir.Complex), ir.KFloat)
		})

	case "mod":
		return l.lowerMod(args[0], args[1])
	case "rem":
		base := commonBase(args[0].kind, args[1].kind)
		return l.zipViews(args[0], args[1], func(a, b ir.Expr) ir.Expr {
			return ir.B(ir.OpRem, l.asBase(a, base), l.asBase(b, base))
		})

	case "complex":
		return l.zipViews(args[0], args[1], func(a, b ir.Expr) ir.Expr {
			return ir.B(ir.OpAdd, l.asBase(a, ir.Complex),
				ir.B(ir.OpMul, l.asBase(b, ir.Complex), ir.CC(complex(0, 1))))
		})

	case "pi":
		return scalarVal(ir.CF(3.141592653589793))
	case "eps":
		return scalarVal(ir.CF(2.220446049250313e-16))
	}
	l.fail(call.Pos, "builtin %q is not supported by the code generator", name)
	return aval{}
}

func (l *lowerer) asFloatOrComplex(v ir.Expr) ir.Expr {
	if v.Kind().Base == ir.Int {
		return l.asBase(v, ir.Float)
	}
	return v
}

func (l *lowerer) lowerCreation(call *mlang.CallExpr, name string, args []aval) aval {
	elem := ir.Expr(ir.CF(0))
	if name == "ones" {
		elem = ir.CF(1)
	}
	var rows, cols ir.Expr
	switch len(args) {
	case 0:
		return scalarVal(elem)
	case 1:
		n := l.hoist(l.asBase(args[0].scalarOrFail(l, call.Pos), ir.Int), "n")
		rows, cols = n, n
	default:
		rows = l.hoist(l.asBase(args[0].scalarOrFail(l, call.Pos), ir.Int), "r")
		cols = l.hoist(l.asBase(args[1].scalarOrFail(l, call.Pos), ir.Int), "c")
	}
	return aval{kind: ir.Float, rows: rows, cols: cols,
		at: func(lin ir.Expr) ir.Expr { return elem }}
}

func (v aval) scalarOrFail(l *lowerer, pos mlang.Pos) ir.Expr {
	if !v.isScalar() {
		l.fail(pos, "scalar argument required")
	}
	return v.scalar
}

func (l *lowerer) lowerSize(call *mlang.CallExpr, args []aval) aval {
	dimOf := func(v aval, which int) ir.Expr {
		if v.isScalar() {
			return ir.CI(1)
		}
		if which == 1 {
			return v.rows
		}
		return v.cols
	}
	if len(args) == 2 {
		d, ok := l.info.ConstOf(call.Args[1])
		if !ok {
			l.fail(call.Pos, "size dimension argument must be a compile-time constant")
		}
		return scalarVal(dimOf(args[0], int(d)))
	}
	// size(x) with one output: a 1x2 row vector [rows cols].
	t := l.tempArr("sz", ir.Float)
	l.emit(&ir.Alloc{Arr: t, Rows: ir.CI(1), Cols: ir.CI(2)})
	l.emit(&ir.Store{Arr: t, Index: ir.CI(0), Val: l.asBase(dimOf(args[0], 1), ir.Float)})
	l.emit(&ir.Store{Arr: t, Index: ir.CI(1), Val: l.asBase(dimOf(args[0], 2), ir.Float)})
	return l.atomView(t)
}

// lowerReduction lowers sum/prod/mean. Vector inputs reduce to a scalar;
// matrix inputs reduce each column (decided by the inferred result type).
func (l *lowerer) lowerReduction(call *mlang.CallExpr, name string, x aval) aval {
	if x.isScalar() {
		return x
	}
	resT := l.info.TypeOf(call)

	op := ir.OpAdd
	init := zeroOf(x.kind)
	if name == "prod" {
		op = ir.OpMul
		init = oneOf(x.kind)
	}

	if resT.IsScalar() {
		acc := l.temp(name, x.kind)
		l.emit(&ir.Assign{Dst: acc, Src: init})
		k := l.temp("k", ir.Int)
		body := []ir.Stmt{&ir.Assign{Dst: acc,
			Src: ir.B(op, ir.V(acc), l.asBase(x.at(ir.V(k)), x.kind))}}
		l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(x.length(), ir.CI(1)), Step: 1, Body: body})
		res := ir.Expr(ir.V(acc))
		if name == "mean" {
			res = ir.B(ir.OpDiv, l.asFloatOrComplex(res),
				l.asBase(x.length(), ir.Float))
		}
		return scalarVal(res)
	}

	// Column-wise reduction into a 1×cols temp.
	t := l.tempArr(name, arrayElemKindIR(x.kind))
	l.emit(&ir.Alloc{Arr: t, Rows: ir.CI(1), Cols: x.cols})
	i := l.temp("i", ir.Int)
	j := l.temp("j", ir.Int)
	acc := l.temp("acc", x.kind)
	inner := []ir.Stmt{&ir.Assign{Dst: acc, Src: ir.B(op, ir.V(acc),
		l.asBase(x.at(ir.IAdd(ir.V(i), ir.IMul(ir.V(j), x.rows))), x.kind))}}
	var res ir.Expr = ir.V(acc)
	if name == "mean" {
		res = ir.B(ir.OpDiv, l.asFloatOrComplex(res), l.asBase(x.rows, ir.Float))
	}
	jBody := []ir.Stmt{
		&ir.Assign{Dst: acc, Src: init},
		&ir.For{Var: i, Lo: ir.CI(0), Hi: ir.ISub(x.rows, ir.CI(1)), Step: 1, Body: inner},
		&ir.Store{Arr: t, Index: ir.V(j), Val: l.asBase(res, t.Elem)},
	}
	l.emit(&ir.For{Var: j, Lo: ir.CI(0), Hi: ir.ISub(x.cols, ir.CI(1)), Step: 1, Body: jBody})
	return l.atomView(t)
}

// lowerMinMaxReduce lowers min(x)/max(x) over a vector or matrix.
func (l *lowerer) lowerMinMaxReduce(call *mlang.CallExpr, op ir.Op, x aval) aval {
	if x.isScalar() {
		return x
	}
	if x.kind == ir.Complex {
		l.fail(call.Pos, "min/max of complex values is not supported")
	}
	resT := l.info.TypeOf(call)
	if !resT.IsScalar() {
		l.fail(call.Pos, "columnwise min/max is not supported; reduce a vector")
	}
	acc := l.temp("mm", x.kind)
	l.emit(&ir.Assign{Dst: acc, Src: l.asBase(x.at(ir.CI(0)), x.kind)})
	k := l.temp("k", ir.Int)
	body := []ir.Stmt{&ir.Assign{Dst: acc,
		Src: ir.B(op, ir.V(acc), l.asBase(x.at(ir.V(k)), x.kind))}}
	l.emit(&ir.For{Var: k, Lo: ir.CI(1), Hi: ir.ISub(x.length(), ir.CI(1)), Step: 1, Body: body})
	return scalarVal(ir.V(acc))
}

// lowerMod implements MATLAB mod (result takes the divisor's sign).
func (l *lowerer) lowerMod(x, y aval) aval {
	base := commonBase(x.kind, y.kind)
	if base == ir.Int {
		// ((a % b) + b) % b
		return l.zipViews(x, y, func(a, b ir.Expr) ir.Expr {
			a = l.asBase(a, ir.Int)
			b = l.asBase(b, ir.Int)
			return ir.B(ir.OpRem, ir.B(ir.OpAdd, ir.B(ir.OpRem, a, b), b), b)
		})
	}
	// a - floor(a/b)*b
	return l.zipViews(x, y, func(a, b ir.Expr) ir.Expr {
		a = l.asBase(a, ir.Float)
		b = l.asBase(b, ir.Float)
		fl := ir.U(ir.OpFloor, ir.B(ir.OpDiv, a, b), ir.KFloat)
		return ir.B(ir.OpSub, a, ir.B(ir.OpMul, fl, b))
	})
}

// lowerLinspace lowers linspace(a, b[, n]) to a generated row vector
// view: a + k*(b-a)/(n-1).
func (l *lowerer) lowerLinspace(call *mlang.CallExpr, args []aval) aval {
	a := l.hoist(l.asBase(args[0].scalarOrFail(l, call.Pos), ir.Float), "a")
	b := l.hoist(l.asBase(args[1].scalarOrFail(l, call.Pos), ir.Float), "b")
	n := ir.Expr(ir.CI(100))
	if len(args) == 3 {
		n = l.asBase(args[2].scalarOrFail(l, call.Pos), ir.Int)
	}
	n = l.hoist(n, "n")
	// step = (b-a)/(n-1); the n==1 case divides by zero like MATLAB's
	// own formula and yields b via the final-element identity, so follow
	// the simpler MATLAB definition: x(k) = a + (k-1)*step, with
	// x(n) snapped by arithmetic.
	step := l.hoist(ir.B(ir.OpDiv, ir.B(ir.OpSub, b, a),
		l.asBase(ir.B(ir.OpMax, ir.ISub(n, ir.CI(1)), ir.CI(1)), ir.Float)), "st")
	return aval{kind: ir.Float, rows: ir.CI(1), cols: n,
		at: func(lin ir.Expr) ir.Expr {
			return ir.B(ir.OpAdd, a, ir.B(ir.OpMul, l.asBase(lin, ir.Float), step))
		}}
}

// lowerEye builds an identity-matrix view: 1 where row==col.
func (l *lowerer) lowerEye(call *mlang.CallExpr, args []aval) aval {
	var rows, cols ir.Expr
	switch len(args) {
	case 1:
		n := l.hoist(l.asBase(args[0].scalarOrFail(l, call.Pos), ir.Int), "n")
		rows, cols = n, n
	default:
		rows = l.hoist(l.asBase(args[0].scalarOrFail(l, call.Pos), ir.Int), "r")
		cols = l.hoist(l.asBase(args[1].scalarOrFail(l, call.Pos), ir.Int), "c")
	}
	return aval{kind: ir.Float, rows: rows, cols: cols,
		at: func(lin ir.Expr) ir.Expr {
			// Column-major: element is 1 iff lin mod rows == lin div rows.
			i := ir.B(ir.OpRem, lin, rows)
			j := ir.B(ir.OpDiv, lin, rows)
			return l.asBase(ir.B(ir.OpEq, i, j), ir.Float)
		}}
}

// lowerFlip reverses a vector view (fliplr/flipud are identical for the
// vectors we support; matrices are flipped along the respective axis).
func (l *lowerer) lowerFlip(call *mlang.CallExpr, name string, x aval) aval {
	if x.isScalar() {
		return x
	}
	t := l.info.TypeOf(call)
	if t.Shape.IsVector() || !t.Shape.Known() && (t.Shape.Rows == 1 || t.Shape.Cols == 1) {
		nm1 := l.hoist(ir.ISub(x.length(), ir.CI(1)), "n1")
		return aval{kind: x.kind, rows: x.rows, cols: x.cols, reads: x.reads,
			at: func(lin ir.Expr) ir.Expr { return x.at(ir.ISub(nm1, lin)) }}
	}
	// Matrix flip: remap one coordinate.
	rows := x.rows
	return aval{kind: x.kind, rows: x.rows, cols: x.cols, reads: x.reads,
		at: func(lin ir.Expr) ir.Expr {
			var i ir.Expr = ir.B(ir.OpRem, lin, rows)
			var j ir.Expr = ir.B(ir.OpDiv, lin, rows)
			if name == "flipud" {
				i = ir.ISub(ir.ISub(rows, ir.CI(1)), i)
			} else {
				j = ir.ISub(ir.ISub(x.cols, ir.CI(1)), j)
			}
			return x.at(ir.IAdd(i, ir.IMul(j, rows)))
		}}
}

// lowerCumsum materializes the running sum of a vector.
func (l *lowerer) lowerCumsum(call *mlang.CallExpr, x aval) aval {
	if x.isScalar() {
		return x
	}
	t := l.tempArr("cs", arrayElemKindIR(x.kind))
	l.emit(&ir.Alloc{Arr: t, Rows: x.rows, Cols: x.cols})
	acc := l.temp("acc", x.kind)
	l.emit(&ir.Assign{Dst: acc, Src: zeroOf(x.kind)})
	k := l.temp("k", ir.Int)
	body := []ir.Stmt{
		&ir.Assign{Dst: acc, Src: ir.B(ir.OpAdd, ir.V(acc), l.asBase(x.at(ir.V(k)), x.kind))},
		&ir.Store{Arr: t, Index: ir.V(k), Val: l.asBase(ir.V(acc), t.Elem)},
	}
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(x.length(), ir.CI(1)), Step: 1, Body: body})
	return l.atomView(t)
}

// lowerDot lowers dot(a,b) = sum(conj(a).*b) (MATLAB conjugates the
// first argument for complex inputs).
func (l *lowerer) lowerDot(call *mlang.CallExpr, a, b aval) aval {
	base := commonBase(a.kind, b.kind)
	if base == ir.Int {
		base = ir.Float
	}
	if a.isScalar() && b.isScalar() {
		av := l.asBase(a.scalar, base)
		if base == ir.Complex {
			av = ir.U(ir.OpConj, av, ir.KComplex)
		}
		return scalarVal(ir.B(ir.OpMul, av, l.asBase(b.scalar, base)))
	}
	if a.isScalar() || b.isScalar() {
		l.fail(call.Pos, "dot requires two vectors of equal length")
	}
	acc := l.temp("dot", base)
	l.emit(&ir.Assign{Dst: acc, Src: zeroOf(base)})
	k := l.temp("k", ir.Int)
	elem := func(kk ir.Expr) ir.Expr {
		av := l.asBase(a.at(kk), base)
		if base == ir.Complex {
			av = ir.U(ir.OpConj, av, ir.KComplex)
		}
		return ir.B(ir.OpMul, av, l.asBase(b.at(kk), base))
	}
	body := []ir.Stmt{&ir.Assign{Dst: acc, Src: ir.B(ir.OpAdd, ir.V(acc), elem(ir.V(k)))}}
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(a.length(), ir.CI(1)), Step: 1, Body: body})
	return scalarVal(ir.V(acc))
}

// lowerNorm lowers norm(v) = sqrt(sum(|v|^2)).
func (l *lowerer) lowerNorm(call *mlang.CallExpr, x aval) aval {
	if x.isScalar() {
		return scalarVal(ir.U(ir.OpAbs, l.asFloatOrComplex(x.scalar), ir.KFloat))
	}
	acc := l.temp("nrm", ir.Float)
	l.emit(&ir.Assign{Dst: acc, Src: ir.CF(0)})
	k := l.temp("k", ir.Int)
	elem := func(kk ir.Expr) ir.Expr {
		v := x.at(kk)
		if v.Kind().Base == ir.Complex {
			m := ir.U(ir.OpAbs, v, ir.KFloat)
			return ir.B(ir.OpMul, m, m)
		}
		f := l.asBase(v, ir.Float)
		return ir.B(ir.OpMul, f, f)
	}
	body := []ir.Stmt{&ir.Assign{Dst: acc, Src: ir.B(ir.OpAdd, ir.V(acc), elem(ir.V(k)))}}
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(x.length(), ir.CI(1)), Step: 1, Body: body})
	return scalarVal(ir.U(ir.OpSqrt, ir.V(acc), ir.KFloat))
}

// lowerVarStd lowers var(x)/std(x): the two-pass sample variance with
// MATLAB's n-1 normalization (and n when n == 1, giving 0).
func (l *lowerer) lowerVarStd(call *mlang.CallExpr, name string, x aval) aval {
	if x.isScalar() {
		return scalarVal(ir.CF(0))
	}
	n := l.hoist(x.length(), "n")
	nf := l.hoist(l.asBase(n, ir.Float), "nf")

	// Pass 1: mean.
	sum := l.temp("sum", ir.Float)
	l.emit(&ir.Assign{Dst: sum, Src: ir.CF(0)})
	k := l.temp("k", ir.Int)
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(1)), Step: 1,
		Body: []ir.Stmt{&ir.Assign{Dst: sum,
			Src: ir.B(ir.OpAdd, ir.V(sum), l.asBase(x.at(ir.V(k)), ir.Float))}}})
	mu := l.hoist(ir.B(ir.OpDiv, ir.V(sum), nf), "mu")

	// Pass 2: centered sum of squares.
	ss := l.temp("ss", ir.Float)
	l.emit(&ir.Assign{Dst: ss, Src: ir.CF(0)})
	k2 := l.temp("k", ir.Int)
	d := l.temp("d", ir.Float)
	l.emit(&ir.For{Var: k2, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(1)), Step: 1,
		Body: []ir.Stmt{
			&ir.Assign{Dst: d, Src: ir.B(ir.OpSub, l.asBase(x.at(ir.V(k2)), ir.Float), mu)},
			&ir.Assign{Dst: ss, Src: ir.B(ir.OpAdd, ir.V(ss), ir.B(ir.OpMul, ir.V(d), ir.V(d)))},
		}})
	// Denominator max(n-1, 1).
	den := ir.B(ir.OpMax, ir.B(ir.OpSub, nf, ir.CF(1)), ir.CF(1))
	v := ir.Expr(ir.B(ir.OpDiv, ir.V(ss), den))
	if name == "std" {
		v = ir.U(ir.OpSqrt, v, ir.KFloat)
	}
	return scalarVal(v)
}

// nonzeroCond builds the truth test "element != 0" for any element kind.
func nonzeroCond(v ir.Expr) ir.Expr {
	return ir.B(ir.OpNe, v, zeroOf(v.Kind().Base))
}

// lowerFind lowers find(x): the 1-based indices of nonzero elements.
func (l *lowerer) lowerFind(call *mlang.CallExpr, x aval) aval {
	if x.isScalar() {
		x = l.materialize(x)
	}
	cnt := l.temp("cnt", ir.Int)
	l.emit(&ir.Assign{Dst: cnt, Src: ir.CI(0)})
	k := l.temp("k", ir.Int)
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(x.length(), ir.CI(1)), Step: 1,
		Body: []ir.Stmt{&ir.If{Cond: nonzeroCond(x.at(ir.V(k))),
			Then: []ir.Stmt{&ir.Assign{Dst: cnt, Src: ir.IAdd(ir.V(cnt), ir.CI(1))}}}}})

	t := l.tempArr("idx", ir.Float)
	resT := l.info.TypeOf(call)
	if resT.Shape.Cols == 1 && resT.Shape.Rows != 1 {
		l.emit(&ir.Alloc{Arr: t, Rows: ir.V(cnt), Cols: ir.CI(1)})
	} else {
		l.emit(&ir.Alloc{Arr: t, Rows: ir.CI(1), Cols: ir.V(cnt)})
	}
	j := l.temp("j", ir.Int)
	l.emit(&ir.Assign{Dst: j, Src: ir.CI(0)})
	k2 := l.temp("k", ir.Int)
	l.emit(&ir.For{Var: k2, Lo: ir.CI(0), Hi: ir.ISub(x.length(), ir.CI(1)), Step: 1,
		Body: []ir.Stmt{&ir.If{Cond: nonzeroCond(x.at(ir.V(k2))),
			Then: []ir.Stmt{
				&ir.Store{Arr: t, Index: ir.V(j),
					Val: l.asBase(ir.IAdd(ir.V(k2), ir.CI(1)), ir.Float)},
				&ir.Assign{Dst: j, Src: ir.IAdd(ir.V(j), ir.CI(1))},
			}}}})
	return l.atomView(t)
}

// lowerBoolReduce lowers any/all/nnz over a vector.
func (l *lowerer) lowerBoolReduce(call *mlang.CallExpr, name string, x aval) aval {
	if x.isScalar() {
		nz := nonzeroCond(x.scalar)
		if name == "nnz" {
			return scalarVal(nz) // 0 or 1
		}
		return scalarVal(nz)
	}
	acc := l.temp(name, ir.Int)
	init := ir.CI(0)
	if name == "all" {
		init = ir.CI(1)
	}
	l.emit(&ir.Assign{Dst: acc, Src: init})
	k := l.temp("k", ir.Int)
	var update ir.Expr
	switch name {
	case "any":
		update = ir.B(ir.OpOr, ir.V(acc), nonzeroCond(x.at(ir.V(k))))
	case "all":
		update = ir.B(ir.OpAnd, ir.V(acc), nonzeroCond(x.at(ir.V(k))))
	default: // nnz
		update = ir.IAdd(ir.V(acc), nonzeroCond(x.at(ir.V(k))))
	}
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(x.length(), ir.CI(1)), Step: 1,
		Body: []ir.Stmt{&ir.Assign{Dst: acc, Src: update}}})
	return scalarVal(ir.V(acc))
}

// lowerBuiltinMulti lowers multi-output builtins: [r,c] = size(x) and
// [m,i] = min/max(x).
func (l *lowerer) lowerBuiltinMulti(call *mlang.CallExpr, nresults int) []aval {
	name := call.Fun.(*mlang.IdentExpr).Name
	if name == "size" && nresults == 2 {
		x := l.lowerExpr(call.Args[0])
		if x.isScalar() {
			return []aval{scalarVal(ir.CI(1)), scalarVal(ir.CI(1))}
		}
		return []aval{scalarVal(x.rows), scalarVal(x.cols)}
	}
	if (name == "min" || name == "max") && nresults == 2 && len(call.Args) == 1 {
		return l.lowerMinMaxWithIndex(call, name)
	}
	if nresults <= 1 {
		return []aval{l.lowerBuiltin(call)}
	}
	l.fail(call.Pos, "builtin %q does not support %d outputs", name, nresults)
	return nil
}

// lowerMinMaxWithIndex lowers [m, i] = min/max(x): the extremum and its
// first 1-based position.
func (l *lowerer) lowerMinMaxWithIndex(call *mlang.CallExpr, name string) []aval {
	x := l.lowerExpr(call.Args[0])
	if x.isScalar() {
		return []aval{x, scalarVal(ir.CI(1))}
	}
	if x.kind == ir.Complex {
		l.fail(call.Pos, "min/max of complex values is not supported")
	}
	cmpOp := ir.OpLt
	if name == "max" {
		cmpOp = ir.OpGt
	}
	best := l.temp(name, x.kind)
	bi := l.temp("bi", ir.Int)
	l.emit(&ir.Assign{Dst: best, Src: l.asBase(x.at(ir.CI(0)), x.kind)})
	l.emit(&ir.Assign{Dst: bi, Src: ir.CI(1)})
	k := l.temp("k", ir.Int)
	cand := l.asBase(x.at(ir.V(k)), x.kind)
	body := []ir.Stmt{&ir.If{
		// Strict comparison keeps the first occurrence, like MATLAB.
		Cond: ir.B(cmpOp, cand, ir.V(best)),
		Then: []ir.Stmt{
			&ir.Assign{Dst: best, Src: cand},
			&ir.Assign{Dst: bi, Src: ir.IAdd(ir.V(k), ir.CI(1))},
		}}}
	l.emit(&ir.For{Var: k, Lo: ir.CI(1), Hi: ir.ISub(x.length(), ir.CI(1)), Step: 1, Body: body})
	return []aval{scalarVal(ir.V(best)), scalarVal(ir.V(bi))}
}

// elemwiseClassOf mirrors sema's result class mapping onto IR kinds; kept
// for future use by extended builtins.
var _ = sema.Real
