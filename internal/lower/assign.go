package lower

import (
	"mat2c/internal/ir"
	"mat2c/internal/mlang"
	"mat2c/internal/sema"
)

func (l *lowerer) lowerAssign(s *mlang.AssignStmt) {
	if len(s.Lhs) > 1 {
		l.lowerMultiAssign(s)
		return
	}
	switch lhs := s.Lhs[0].(type) {
	case *mlang.IdentExpr:
		sym := l.frame().vars[lhs.Name]
		if sym == nil {
			l.fail(lhs.Pos, "undefined assignment target %q", lhs.Name)
		}
		rhs := l.lowerExpr(s.Rhs)
		l.bindVar(sym, rhs, lhs.Pos)
	case *mlang.CallExpr:
		if !l.noFuse && l.tryInPlaceUpdate(lhs, s.Rhs) {
			return
		}
		rhs := l.lowerExpr(s.Rhs)
		l.lowerIndexedStore(lhs, rhs)
	default:
		l.fail(s.Pos, "invalid assignment target")
	}
}

// bindVar assigns a lowered value to a variable symbol.
func (l *lowerer) bindVar(sym *ir.Sym, v aval, pos mlang.Pos) {
	if !sym.IsArray {
		if !v.isScalar() {
			// The fixpoint said scalar but this path produced an array
			// (possible only for 1x1 dynamic results): read element 0.
			l.emit(&ir.Assign{Dst: sym, Src: l.asBase(v.at(ir.CI(0)), sym.Elem)})
			return
		}
		l.emit(&ir.Assign{Dst: sym, Src: l.asBase(v.scalar, sym.Elem)})
		return
	}
	// Array-typed variable.
	if v.isScalar() {
		// Widened variable receiving a scalar on this path: 1x1 array.
		l.emit(&ir.Alloc{Arr: sym, Rows: ir.CI(1), Cols: ir.CI(1)})
		l.emit(&ir.Store{Arr: sym, Index: ir.CI(0), Val: l.asBase(v.scalar, sym.Elem)})
		return
	}
	l.assignWholeArray(sym, v)
}

// assignWholeArray implements "x = <array expression>". MATLAB evaluates
// the RHS before rebinding x, so a RHS that reads x is materialized
// first; otherwise the destination is allocated and filled directly from
// the fused view.
func (l *lowerer) assignWholeArray(sym *ir.Sym, v aval) {
	if v.arr == sym {
		return // x = x
	}
	if v.readsSym(sym) {
		v = l.materialize(v)
	}
	rows := l.hoist(v.rows, "r")
	cols := l.hoist(v.cols, "c")
	l.emit(&ir.Alloc{Arr: sym, Rows: rows, Cols: cols})

	// zeros(...) views need no fill: Alloc zero-fills.
	if c, ok := v.at(ir.CI(0)).(*ir.ConstFloat); ok && c.V == 0 && len(v.reads) == 0 {
		return
	}
	k := l.temp("k", ir.Int)
	body := []ir.Stmt{&ir.Store{Arr: sym, Index: ir.V(k),
		Val: l.asBase(v.at(ir.V(k)), sym.Elem)}}
	l.emit(&ir.For{Var: k, Lo: ir.CI(0),
		Hi: ir.ISub(ir.IMul(rows, cols), ir.CI(1)), Step: 1, Body: body})
}

func (l *lowerer) lowerMultiAssign(s *mlang.AssignStmt) {
	call, ok := s.Rhs.(*mlang.CallExpr)
	if !ok {
		l.fail(s.Pos, "multiple assignment requires a function call")
	}
	var results []aval
	switch l.info.Calls[call] {
	case sema.CallUser:
		results = l.inlineCall(call, len(s.Lhs))
	case sema.CallBuiltin:
		results = l.lowerBuiltinMulti(call, len(s.Lhs))
	default:
		l.fail(s.Pos, "indexing cannot produce multiple values")
	}
	if len(results) < len(s.Lhs) {
		l.fail(s.Pos, "call produced %d results, %d targets", len(results), len(s.Lhs))
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*mlang.IdentExpr)
		if !ok {
			l.fail(lhs.NodePos(), "multiple-assignment targets must be plain variables")
		}
		sym := l.frame().vars[id.Name]
		if sym == nil {
			l.fail(id.Pos, "undefined assignment target %q", id.Name)
		}
		l.bindVar(sym, results[i], id.Pos)
	}
}

// tryInPlaceUpdate recognizes the accumulation statement
//
//	y(sel) = y(sel) ± expr
//
// (the same selection on both sides, expr free of y) and lowers it as a
// single in-place read-modify-write loop instead of materializing the
// right-hand side — each element's new value depends only on its own old
// value, so MATLAB's evaluate-RHS-first semantics are preserved. This is
// the fused form of the tap-update loops in FIR-style kernels.
func (l *lowerer) tryInPlaceUpdate(lhs *mlang.CallExpr, rhs mlang.Expr) bool {
	b, ok := rhs.(*mlang.BinaryExpr)
	if !ok || b.Op != mlang.OpAdd && b.Op != mlang.OpSub {
		return false
	}
	if mlang.ExprString(b.X) != mlang.ExprString(lhs) {
		return false
	}
	id, ok := lhs.Fun.(*mlang.IdentExpr)
	if !ok {
		return false
	}
	sym := l.frame().vars[id.Name]
	if sym == nil || !sym.IsArray || len(lhs.Args) != 1 {
		return false
	}
	if l.isMaskArg(lhs.Args[0]) {
		return false // logical indexing has its own path
	}
	if astMentions(b.Y, id.Name) {
		return false
	}
	// Type sanity: the update must be elementwise over the selection.
	selT := l.info.TypeOf(lhs)
	restT := l.info.TypeOf(b.Y)
	if !restT.IsScalar() && selT.Shape.Len() != restT.Shape.Len() &&
		(selT.Shape.Known() && restT.Shape.Known()) {
		return false
	}

	base := l.atomView(sym)
	var n ir.Expr
	var dstIdx func(k ir.Expr) ir.Expr
	if _, isColon := lhs.Args[0].(*mlang.ColonExpr); isColon {
		n = base.length()
		dstIdx = func(k ir.Expr) ir.Expr { return k }
	} else {
		se := l.lowerSel(lhs.Args[0], base.length())
		if se.scalar {
			return false // single element: the normal path is fine
		}
		n = se.n
		dstIdx = se.at
	}
	rest := l.lowerExpr(b.Y)
	if !rest.isScalar() && rest.readsSym(sym) {
		return false
	}

	op := ir.OpAdd
	if b.Op == mlang.OpSub {
		op = ir.OpSub
	}
	var restAt func(k ir.Expr) ir.Expr
	if rest.isScalar() {
		rv := l.hoist(l.asBase(rest.scalar, sym.Elem), "v")
		restAt = func(k ir.Expr) ir.Expr { return rv }
	} else {
		restAt = func(k ir.Expr) ir.Expr { return l.asBase(rest.at(k), sym.Elem) }
	}
	k := l.temp("k", ir.Int)
	di := dstIdx(ir.V(k))
	body := []ir.Stmt{&ir.Store{Arr: sym, Index: di,
		Val: ir.B(op, &ir.Load{Arr: sym, Index: di}, restAt(ir.V(k)))}}
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(1)), Step: 1, Body: body})
	return true
}

// astMentions reports whether the expression mentions the identifier.
func astMentions(e mlang.Expr, name string) bool {
	switch e := e.(type) {
	case *mlang.IdentExpr:
		return e.Name == name
	case *mlang.NumberExpr, *mlang.StringExpr, *mlang.ColonExpr, *mlang.EndExpr, nil:
		return false
	case *mlang.BinaryExpr:
		return astMentions(e.X, name) || astMentions(e.Y, name)
	case *mlang.UnaryExpr:
		return astMentions(e.X, name)
	case *mlang.TransposeExpr:
		return astMentions(e.X, name)
	case *mlang.RangeExpr:
		return astMentions(e.Start, name) || e.Step != nil && astMentions(e.Step, name) || astMentions(e.Stop, name)
	case *mlang.MatrixExpr:
		for _, row := range e.Rows {
			for _, x := range row {
				if astMentions(x, name) {
					return true
				}
			}
		}
		return false
	case *mlang.CallExpr:
		if astMentions(e.Fun, name) {
			return true
		}
		for _, a := range e.Args {
			if astMentions(a, name) {
				return true
			}
		}
		return false
	}
	return true // unknown node: be conservative
}

// inlineCall expands a user-function call in place and returns the
// callee's results as values in the caller.
func (l *lowerer) inlineCall(call *mlang.CallExpr, nresults int) []aval {
	name := call.Fun.(*mlang.IdentExpr).Name
	inst := l.info.Funcs[name]
	if inst == nil {
		l.fail(call.Pos, "function %q not analyzed", name)
	}
	if len(l.frames) > 16 {
		l.fail(call.Pos, "call inlining too deep")
	}

	fr := &frame{inst: inst, vars: map[string]*ir.Sym{}}

	// Bind parameters.
	for i, pname := range inst.Decl.Params {
		arg := l.lowerExpr(call.Args[i])
		pt := inst.Params[i]
		if pt.IsScalar() {
			ps := l.newVarSym(pname, pt)
			l.fn.Locals = append(l.fn.Locals, ps)
			l.emit(&ir.Assign{Dst: ps, Src: l.asBase(arg.scalarOrFail(l, call.Pos), ps.Elem)})
			fr.vars[pname] = ps
			continue
		}
		// Array parameter: alias when the callee never writes it;
		// otherwise copy (MATLAB value semantics).
		writes := calleeWrites(inst.Decl, pname)
		if arg.arr != nil && !writes {
			fr.vars[pname] = arg.arr
			continue
		}
		mat := arg
		if arg.arr != nil && writes {
			mat = l.copyArray(arg)
		} else {
			mat = l.materialize(arg)
		}
		fr.vars[pname] = mat.arr
	}

	// Locals, in name order for deterministic symbol numbering.
	for _, vname := range sortedVarNames(inst.Vars) {
		if fr.vars[vname] == nil {
			sym := l.newVarSym(vname, inst.Vars[vname])
			l.fn.Locals = append(l.fn.Locals, sym)
			fr.vars[vname] = sym
		}
	}

	l.frames = append(l.frames, fr)
	l.lowerStmts(inst.Decl.Body)
	l.frames = l.frames[:len(l.frames)-1]

	// Collect results.
	results := make([]aval, 0, len(inst.Decl.Outs))
	for _, out := range inst.Decl.Outs {
		sym := fr.vars[out]
		if sym.IsArray {
			results = append(results, l.atomView(sym))
		} else {
			results = append(results, scalarVal(ir.V(sym)))
		}
	}
	return results
}

// copyArray deep-copies an array value into a fresh temp.
func (l *lowerer) copyArray(v aval) aval {
	t := l.tempArr("cp", arrayElemKindIR(v.kind))
	l.emit(&ir.Alloc{Arr: t, Rows: v.rows, Cols: v.cols})
	k := l.temp("k", ir.Int)
	body := []ir.Stmt{&ir.Store{Arr: t, Index: ir.V(k), Val: l.asBase(v.at(ir.V(k)), t.Elem)}}
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(v.length(), ir.CI(1)), Step: 1, Body: body})
	return l.atomView(t)
}

// calleeWrites reports whether the function body assigns to name (plain
// or indexed), which forces pass-by-copy at inline sites.
func calleeWrites(decl *mlang.FuncDecl, name string) bool {
	var scan func(stmts []mlang.Stmt) bool
	writesTarget := func(e mlang.Expr) bool {
		switch e := e.(type) {
		case *mlang.IdentExpr:
			return e.Name == name
		case *mlang.CallExpr:
			if id, ok := e.Fun.(*mlang.IdentExpr); ok {
				return id.Name == name
			}
		}
		return false
	}
	scan = func(stmts []mlang.Stmt) bool {
		for _, s := range stmts {
			switch s := s.(type) {
			case *mlang.AssignStmt:
				for _, lhs := range s.Lhs {
					if writesTarget(lhs) {
						return true
					}
				}
			case *mlang.IfStmt:
				if scan(s.Then) || scan(s.Else) {
					return true
				}
				for _, e := range s.Elifs {
					if scan(e.Body) {
						return true
					}
				}
			case *mlang.ForStmt:
				if s.Var == name || scan(s.Body) {
					return true
				}
			case *mlang.WhileStmt:
				if scan(s.Body) {
					return true
				}
			}
		}
		return false
	}
	return scan(decl.Body)
}
