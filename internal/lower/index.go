package lower

import (
	"mat2c/internal/ir"
	"mat2c/internal/mlang"
	"mat2c/internal/sema"
)

// sel is a lowered index selector for one dimension: a count and a pure
// generator of 0-based indices.
type sel struct {
	n      ir.Expr
	at     func(k ir.Expr) ir.Expr
	scalar bool
	reads  []*ir.Sym
}

// one returns the selector's single index (scalar selectors).
func (s sel) one() ir.Expr { return s.at(ir.CI(0)) }

// lowerSel lowers one index argument; extent is what 'end' (and ':')
// denote in this position.
func (l *lowerer) lowerSel(arg mlang.Expr, extent ir.Expr) sel {
	if _, ok := arg.(*mlang.ColonExpr); ok {
		return sel{n: extent, at: func(k ir.Expr) ir.Expr { return k }}
	}
	l.endStack = append(l.endStack, extent)
	v := l.lowerExpr(arg)
	l.endStack = l.endStack[:len(l.endStack)-1]

	if v.isScalar() {
		idx := l.hoist(ir.ISub(l.asBase(v.scalar, ir.Int), ir.CI(1)), "ix")
		return sel{n: ir.CI(1), scalar: true,
			at: func(k ir.Expr) ir.Expr { return idx }}
	}
	return sel{n: v.length(), reads: v.reads,
		at: func(k ir.Expr) ir.Expr {
			return ir.ISub(l.asBase(v.at(k), ir.Int), ir.CI(1))
		}}
}

// lowerIndexRead lowers x(args...) where x is a variable.
func (l *lowerer) lowerIndexRead(call *mlang.CallExpr) aval {
	id := call.Fun.(*mlang.IdentExpr)
	s := l.frame().vars[id.Name]
	if s == nil {
		l.fail(call.Pos, "undefined variable %q", id.Name)
	}
	if !s.IsArray {
		// Indexing a scalar: x(1) is the value itself.
		return scalarVal(ir.V(s))
	}
	base := l.atomView(s)

	switch len(call.Args) {
	case 0:
		return base
	case 1:
		if _, isColon := call.Args[0].(*mlang.ColonExpr); isColon {
			// x(:) is the column-vector view of the whole array.
			return aval{kind: base.kind, rows: base.length(), cols: ir.CI(1),
				reads: base.reads, at: base.at}
		}
		if l.isMaskArg(call.Args[0]) {
			return l.lowerMaskedRead(call, base)
		}
		se := l.lowerSel(call.Args[0], base.length())
		if se.scalar {
			return scalarVal(base.at(se.one()))
		}
		rows, cols := l.vectorResultExtents(call, se.n)
		return aval{kind: base.kind, rows: rows, cols: cols,
			reads: append(unionReads(base), se.reads...),
			at:    func(lin ir.Expr) ir.Expr { return base.at(se.at(lin)) }}
	case 2:
		rs := l.lowerSel(call.Args[0], base.rows)
		cs := l.lowerSel(call.Args[1], base.cols)
		R := base.rows
		if rs.scalar && cs.scalar {
			return scalarVal(base.at(ir.IAdd(rs.one(), ir.IMul(cs.one(), R))))
		}
		if rs.scalar {
			i0 := rs.one()
			return aval{kind: base.kind, rows: ir.CI(1), cols: cs.n,
				reads: append(unionReads(base), cs.reads...),
				at: func(k ir.Expr) ir.Expr {
					return base.at(ir.IAdd(i0, ir.IMul(cs.at(k), R)))
				}}
		}
		if cs.scalar {
			j0 := cs.one()
			off := l.hoist(ir.IMul(j0, R), "off")
			return aval{kind: base.kind, rows: rs.n, cols: ir.CI(1),
				reads: append(unionReads(base), rs.reads...),
				at: func(k ir.Expr) ir.Expr {
					return base.at(ir.IAdd(rs.at(k), off))
				}}
		}
		// General submatrix: materialize with a 2-nest.
		t := l.tempArr("sub", arrayElemKindIR(base.kind))
		rn := l.hoist(rs.n, "rn")
		cn := l.hoist(cs.n, "cn")
		l.emit(&ir.Alloc{Arr: t, Rows: rn, Cols: cn})
		i := l.temp("i", ir.Int)
		j := l.temp("j", ir.Int)
		inner := []ir.Stmt{&ir.Store{Arr: t,
			Index: ir.IAdd(ir.V(i), ir.IMul(ir.V(j), rn)),
			Val:   l.asBase(base.at(ir.IAdd(rs.at(ir.V(i)), ir.IMul(cs.at(ir.V(j)), R))), t.Elem)}}
		jb := []ir.Stmt{&ir.For{Var: i, Lo: ir.CI(0), Hi: ir.ISub(rn, ir.CI(1)), Step: 1, Body: inner}}
		l.emit(&ir.For{Var: j, Lo: ir.CI(0), Hi: ir.ISub(cn, ir.CI(1)), Step: 1, Body: jb})
		return l.atomView(t)
	}
	l.fail(call.Pos, "at most 2 index dimensions are supported")
	return aval{}
}

// isMaskArg reports whether an index argument is a non-scalar logical
// mask (x(x > 0) style indexing).
func (l *lowerer) isMaskArg(arg mlang.Expr) bool {
	t := l.info.TypeOf(arg)
	return t.Class == sema.Bool && !t.IsScalar()
}

// maskCond builds the per-element truth test for a mask view.
func (l *lowerer) maskCond(mask aval, k ir.Expr) ir.Expr {
	v := mask.at(k)
	return ir.B(ir.OpNe, v, zeroOf(v.Kind().Base))
}

// lowerMaskedRead lowers y = x(mask): count the selected elements, then
// compact them into a fresh vector.
func (l *lowerer) lowerMaskedRead(call *mlang.CallExpr, base aval) aval {
	mask := l.lowerExpr(call.Args[0])

	cnt := l.temp("cnt", ir.Int)
	l.emit(&ir.Assign{Dst: cnt, Src: ir.CI(0)})
	k := l.temp("k", ir.Int)
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(mask.length(), ir.CI(1)), Step: 1,
		Body: []ir.Stmt{&ir.If{Cond: l.maskCond(mask, ir.V(k)),
			Then: []ir.Stmt{&ir.Assign{Dst: cnt, Src: ir.IAdd(ir.V(cnt), ir.CI(1))}}}}})

	t := l.tempArr("sel", arrayElemKindIR(base.kind))
	rows, cols := l.vectorResultExtents(call, ir.V(cnt))
	l.emit(&ir.Alloc{Arr: t, Rows: rows, Cols: cols})

	j := l.temp("j", ir.Int)
	l.emit(&ir.Assign{Dst: j, Src: ir.CI(0)})
	k2 := l.temp("k", ir.Int)
	l.emit(&ir.For{Var: k2, Lo: ir.CI(0), Hi: ir.ISub(mask.length(), ir.CI(1)), Step: 1,
		Body: []ir.Stmt{&ir.If{Cond: l.maskCond(mask, ir.V(k2)),
			Then: []ir.Stmt{
				&ir.Store{Arr: t, Index: ir.V(j), Val: l.asBase(base.at(ir.V(k2)), t.Elem)},
				&ir.Assign{Dst: j, Src: ir.IAdd(ir.V(j), ir.CI(1))},
			}}}})
	return l.atomView(t)
}

// lowerMaskedStore lowers x(mask) = v (scalar fill) and
// x(mask) = vector (compacted source, consumed in mask order).
func (l *lowerer) lowerMaskedStore(lhs *mlang.CallExpr, s *ir.Sym, base aval, rhs aval) {
	mask := l.lowerExpr(lhs.Args[0])
	k := l.temp("k", ir.Int)
	if rhs.isScalar() {
		v := l.hoist(l.asBase(rhs.scalar, s.Elem), "v")
		l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(mask.length(), ir.CI(1)), Step: 1,
			Body: []ir.Stmt{&ir.If{Cond: l.maskCond(mask, ir.V(k)),
				Then: []ir.Stmt{&ir.Store{Arr: s, Index: ir.V(k), Val: v}}}}})
		return
	}
	if rhs.readsSym(s) {
		rhs = l.materialize(rhs)
	}
	j := l.temp("j", ir.Int)
	l.emit(&ir.Assign{Dst: j, Src: ir.CI(0)})
	l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(mask.length(), ir.CI(1)), Step: 1,
		Body: []ir.Stmt{&ir.If{Cond: l.maskCond(mask, ir.V(k)),
			Then: []ir.Stmt{
				&ir.Store{Arr: s, Index: ir.V(k), Val: l.asBase(rhs.at(ir.V(j)), s.Elem)},
				&ir.Assign{Dst: j, Src: ir.IAdd(ir.V(j), ir.CI(1))},
			}}}})
}

// vectorResultExtents derives the (rows, cols) of a 1-D indexing result
// from the statically inferred orientation.
func (l *lowerer) vectorResultExtents(call *mlang.CallExpr, n ir.Expr) (ir.Expr, ir.Expr) {
	t := l.info.TypeOf(call)
	if t.Shape.Cols == 1 && t.Shape.Rows != 1 {
		return n, ir.CI(1)
	}
	return ir.CI(1), n
}

// lowerIndexedStore lowers "x(args...) = rhs".
func (l *lowerer) lowerIndexedStore(lhs *mlang.CallExpr, rhs aval) {
	id := lhs.Fun.(*mlang.IdentExpr)
	s := l.frame().vars[id.Name]
	if s == nil {
		l.fail(lhs.Pos, "undefined variable %q", id.Name)
	}
	if !s.IsArray {
		// x(1) = v on a scalar variable.
		if !rhs.isScalar() {
			l.fail(lhs.Pos, "cannot assign array to scalar element")
		}
		l.emit(&ir.Assign{Dst: s, Src: l.asBase(rhs.scalar, s.Elem)})
		return
	}
	// MATLAB evaluates the RHS before mutating the target: materialize
	// when the RHS reads the target array.
	if !rhs.isScalar() && rhs.readsSym(s) {
		rhs = l.materialize(rhs)
	}
	base := l.atomView(s)

	storeLoop := func(n ir.Expr, dstIdx func(k ir.Expr) ir.Expr) {
		if rhs.isScalar() {
			v := l.hoist(l.asBase(rhs.scalar, s.Elem), "v")
			k := l.temp("k", ir.Int)
			body := []ir.Stmt{&ir.Store{Arr: s, Index: dstIdx(ir.V(k)), Val: v}}
			l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(1)), Step: 1, Body: body})
			return
		}
		k := l.temp("k", ir.Int)
		body := []ir.Stmt{&ir.Store{Arr: s, Index: dstIdx(ir.V(k)),
			Val: l.asBase(rhs.at(ir.V(k)), s.Elem)}}
		l.emit(&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(1)), Step: 1, Body: body})
	}

	switch len(lhs.Args) {
	case 1:
		if _, isColon := lhs.Args[0].(*mlang.ColonExpr); isColon {
			storeLoop(base.length(), func(k ir.Expr) ir.Expr { return k })
			return
		}
		if l.isMaskArg(lhs.Args[0]) {
			l.lowerMaskedStore(lhs, s, base, rhs)
			return
		}
		se := l.lowerSel(lhs.Args[0], base.length())
		if se.scalar {
			if !rhs.isScalar() {
				l.fail(lhs.Pos, "cannot assign array to a single element")
			}
			l.emit(&ir.Store{Arr: s, Index: se.one(), Val: l.asBase(rhs.scalar, s.Elem)})
			return
		}
		storeLoop(se.n, se.at)
	case 2:
		rs := l.lowerSel(lhs.Args[0], base.rows)
		cs := l.lowerSel(lhs.Args[1], base.cols)
		R := base.rows
		switch {
		case rs.scalar && cs.scalar:
			if !rhs.isScalar() {
				l.fail(lhs.Pos, "cannot assign array to a single element")
			}
			l.emit(&ir.Store{Arr: s, Index: ir.IAdd(rs.one(), ir.IMul(cs.one(), R)),
				Val: l.asBase(rhs.scalar, s.Elem)})
		case rs.scalar:
			i0 := rs.one()
			storeLoop(cs.n, func(k ir.Expr) ir.Expr {
				return ir.IAdd(i0, ir.IMul(cs.at(k), R))
			})
		case cs.scalar:
			off := l.hoist(ir.IMul(cs.one(), R), "off")
			storeLoop(rs.n, func(k ir.Expr) ir.Expr {
				return ir.IAdd(rs.at(k), off)
			})
		default:
			// Submatrix store with a 2-nest; RHS indexed column-major.
			rn := l.hoist(rs.n, "rn")
			i := l.temp("i", ir.Int)
			j := l.temp("j", ir.Int)
			var valAt func(i, j ir.Expr) ir.Expr
			if rhs.isScalar() {
				v := l.hoist(l.asBase(rhs.scalar, s.Elem), "v")
				valAt = func(i, j ir.Expr) ir.Expr { return v }
			} else {
				valAt = func(ii, jj ir.Expr) ir.Expr {
					return l.asBase(rhs.at(ir.IAdd(ii, ir.IMul(jj, rn))), s.Elem)
				}
			}
			inner := []ir.Stmt{&ir.Store{Arr: s,
				Index: ir.IAdd(rs.at(ir.V(i)), ir.IMul(cs.at(ir.V(j)), R)),
				Val:   valAt(ir.V(i), ir.V(j))}}
			ib := []ir.Stmt{&ir.For{Var: j, Lo: ir.CI(0), Hi: ir.ISub(cs.n, ir.CI(1)), Step: 1, Body: inner}}
			l.emit(&ir.For{Var: i, Lo: ir.CI(0), Hi: ir.ISub(rn, ir.CI(1)), Step: 1, Body: ib})
		}
	default:
		l.fail(lhs.Pos, "at most 2 index dimensions are supported")
	}
}
