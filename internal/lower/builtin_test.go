package lower

import (
	"math"
	"math/cmplx"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/mlang"
	"mat2c/internal/sema"
)

// compileMulti compiles a multi-output function.
func compileMulti(t *testing.T, src string, params ...sema.Type) *ir.Func {
	t.Helper()
	file, err := mlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Analyze(file, file.Funcs[0].Name, params)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLowerTrigFamily(t *testing.T) {
	src := `function [a, b, c, d, e, g] = f(x)
a = asin(x);
b = acos(x);
c = atan(x);
d = sinh(x);
e = cosh(x);
g = tanh(x);
end`
	f := compileMulti(t, src, sema.RealScalar)
	res := execute(t, f, 0.5)
	want := []float64{math.Asin(0.5), math.Acos(0.5), math.Atan(0.5),
		math.Sinh(0.5), math.Cosh(0.5), math.Tanh(0.5)}
	for i, w := range want {
		if got := res[i].(float64); math.Abs(got-w) > 1e-15 {
			t.Errorf("result %d = %v, want %v", i, got, w)
		}
	}
}

func TestLowerAtan2(t *testing.T) {
	src := "function y = f(a, b)\ny = atan2(a, b);\nend"
	f := compile(t, src, sema.RealScalar, sema.RealScalar)
	if got := execute(t, f, 1.0, -1.0)[0].(float64); math.Abs(got-math.Atan2(1, -1)) > 1e-15 {
		t.Errorf("got %v", got)
	}
}

func TestLowerAtan2Elementwise(t *testing.T) {
	src := "function y = f(a, b)\ny = atan2(a, b);\nend"
	f := compile(t, src, dynRealVec(), dynRealVec())
	res := execute(t, f, rowVec(1, 0, -1), rowVec(1, 1, 1))
	arr := res[0].(*ir.Array)
	want := []float64{math.Atan2(1, 1), 0, math.Atan2(-1, 1)}
	for i, w := range want {
		if math.Abs(arr.F[i]-w) > 1e-15 {
			t.Errorf("[%d] = %v, want %v", i, arr.F[i], w)
		}
	}
}

func TestLowerLogBases(t *testing.T) {
	src := "function [a, b] = f(x)\na = log2(x);\nb = log10(x);\nend"
	f := compileMulti(t, src, sema.RealScalar)
	res := execute(t, f, 8.0)
	if got := res[0].(float64); math.Abs(got-3) > 1e-12 {
		t.Errorf("log2(8) = %v", got)
	}
	if got := res[1].(float64); math.Abs(got-math.Log10(8)) > 1e-12 {
		t.Errorf("log10(8) = %v", got)
	}
}

func TestLowerLinspace(t *testing.T) {
	src := "function y = f(a, b, n)\ny = linspace(a, b, n);\nend"
	f := compile(t, src, sema.RealScalar, sema.RealScalar, sema.IntScalar)
	res := execute(t, f, 0.0, 1.0, int64(5))
	wantFloats(t, res[0].(*ir.Array), []float64{0, 0.25, 0.5, 0.75, 1})
}

func TestLowerEye(t *testing.T) {
	src := "function y = f(n)\ny = eye(n);\nend"
	f := compile(t, src, sema.IntScalar)
	arr := execute(t, f, int64(3))[0].(*ir.Array)
	want := []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}
	wantFloats(t, arr, want)
}

func TestLowerEyeRect(t *testing.T) {
	src := "function y = f()\ny = eye(2, 3);\nend"
	f := compile(t, src)
	arr := execute(t, f)[0].(*ir.Array)
	if arr.Rows != 2 || arr.Cols != 3 {
		t.Fatalf("dims %dx%d", arr.Rows, arr.Cols)
	}
	wantFloats(t, arr, []float64{1, 0, 0, 1, 0, 0})
}

func TestLowerFliplr(t *testing.T) {
	src := "function y = f(x)\ny = fliplr(x);\nend"
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3, 4))
	wantFloats(t, res[0].(*ir.Array), []float64{4, 3, 2, 1})
}

func TestLowerFlipudMatrix(t *testing.T) {
	src := "function y = f(a)\ny = flipud(a);\nend"
	f := compile(t, src, sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 2, Cols: 2}})
	a := ir.NewFloatArray(2, 2)
	copy(a.F, []float64{1, 2, 3, 4}) // cols [1 2] [3 4]
	res := execute(t, f, a)
	wantFloats(t, res[0].(*ir.Array), []float64{2, 1, 4, 3})
}

func TestLowerFliplrMatrix(t *testing.T) {
	src := "function y = f(a)\ny = fliplr(a);\nend"
	f := compile(t, src, sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 2, Cols: 2}})
	a := ir.NewFloatArray(2, 2)
	copy(a.F, []float64{1, 2, 3, 4})
	res := execute(t, f, a)
	wantFloats(t, res[0].(*ir.Array), []float64{3, 4, 1, 2})
}

func TestLowerCumsum(t *testing.T) {
	src := "function y = f(x)\ny = cumsum(x);\nend"
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3, 4))
	wantFloats(t, res[0].(*ir.Array), []float64{1, 3, 6, 10})
}

func TestLowerDotReal(t *testing.T) {
	src := "function y = f(a, b)\ny = dot(a, b);\nend"
	f := compile(t, src, dynRealVec(), dynRealVec())
	if got := execute(t, f, rowVec(1, 2, 3), rowVec(4, 5, 6))[0].(float64); got != 32 {
		t.Errorf("got %v, want 32", got)
	}
}

func TestLowerDotComplexConjugatesFirst(t *testing.T) {
	src := "function y = f(a, b)\ny = dot(a, b);\nend"
	f := compile(t, src, dynCplxVec(), dynCplxVec())
	a := cplxRowVec(1+2i, 3-1i)
	b := cplxRowVec(2-1i, 1i)
	got := execute(t, f, a, b)[0].(complex128)
	want := cmplx.Conj(1+2i)*(2-1i) + cmplx.Conj(3-1i)*1i
	if cmplx.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLowerNorm(t *testing.T) {
	src := "function y = f(x)\ny = norm(x);\nend"
	f := compile(t, src, dynRealVec())
	if got := execute(t, f, rowVec(3, 4))[0].(float64); math.Abs(got-5) > 1e-12 {
		t.Errorf("got %v, want 5", got)
	}
}

func TestLowerNormComplex(t *testing.T) {
	src := "function y = f(x)\ny = norm(x);\nend"
	f := compile(t, src, dynCplxVec())
	got := execute(t, f, cplxRowVec(3i, 4))[0].(float64)
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("got %v, want 5", got)
	}
}

func TestLowerInPlaceUpdateRecognized(t *testing.T) {
	// The accumulation statement must lower to a single loop without an
	// intermediate temp array.
	src := `function y = f(y, x)
y(2:end) = y(2:end) + x(2:end);
end`
	f := compile(t, src, dynRealVec(), dynRealVec())
	allocs := 0
	var count func(stmts []ir.Stmt)
	count = func(stmts []ir.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ir.Alloc:
				allocs++
			case *ir.For:
				count(s.Body)
			case *ir.If:
				count(s.Then)
				count(s.Else)
			case *ir.While:
				count(s.Body)
			}
		}
	}
	count(f.Body)
	if allocs != 0 {
		t.Errorf("in-place update allocated %d temps:\n%s", allocs, ir.Print(f))
	}
	res := execute(t, f, rowVec(1, 2, 3), rowVec(10, 20, 30))
	wantFloats(t, res[0].(*ir.Array), []float64{1, 22, 33})
}

func TestLowerInPlaceUpdateRejectsCrossSlice(t *testing.T) {
	// y appears on the RHS at a *different* slice: must NOT run in place.
	src := `function y = f(y)
y(2:end) = y(2:end) + y(1:end-1);
end`
	f := compile(t, src, dynRealVec())
	res := execute(t, f, rowVec(1, 2, 3, 4))
	wantFloats(t, res[0].(*ir.Array), []float64{1, 3, 5, 7})
}

func TestLowerVarStd(t *testing.T) {
	src := "function [v, s] = f(x)\nv = var(x);\ns = std(x);\nend"
	f := compileMulti(t, src, dynRealVec())
	res := execute(t, f, rowVec(2, 4, 4, 4, 5, 5, 7, 9))
	// mean = 5, sum sq = 9+1+1+1+0+0+4+16 = 32, var = 32/7
	wantV := 32.0 / 7.0
	if got := res[0].(float64); math.Abs(got-wantV) > 1e-12 {
		t.Errorf("var = %v, want %v", got, wantV)
	}
	if got := res[1].(float64); math.Abs(got-math.Sqrt(wantV)) > 1e-12 {
		t.Errorf("std = %v, want %v", got, math.Sqrt(wantV))
	}
}

func TestLowerVarSingleElement(t *testing.T) {
	src := "function v = f(x)\nv = var(x);\nend"
	f := compile(t, src, dynRealVec())
	if got := execute(t, f, rowVec(42))[0].(float64); got != 0 {
		t.Errorf("var of singleton = %v, want 0", got)
	}
}

func TestLowerIsempty(t *testing.T) {
	src := "function [a, b] = f(x, y)\na = isempty(x);\nb = isempty(y);\nend"
	f := compileMulti(t, src, dynRealVec(), dynRealVec())
	res := execute(t, f, rowVec(), rowVec(1, 2))
	if res[0].(int64) != 1 || res[1].(int64) != 0 {
		t.Errorf("isempty = %v, %v", res[0], res[1])
	}
}
