package bench

import (
	"context"
	"fmt"
	"math"
	"strings"

	mat2c "mat2c"
	"mat2c/internal/core"
	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
	"mat2c/internal/vm"
)

// Stats reports one (kernel, pipeline) measurement.
type Stats struct {
	Cycles          int64
	Executed        int64
	CodeSize        int
	VectorizedLoops int
	Intrinsics      map[string]int
}

// CloneArgs deep-copies array arguments so pipelines never share
// state (exported for harnesses — e.g. the design-space explorer —
// that drive kernels through their own compilation path).
func CloneArgs(args []interface{}) []interface{} { return cloneArgs(args) }

// Verify compares pipeline outputs against a kernel's Go reference
// with a relative tolerance (exported companion of CloneArgs for
// external harnesses).
func Verify(got, want []interface{}) error { return verify(got, want) }

// cloneArgs deep-copies array arguments so pipelines never share state.
func cloneArgs(args []interface{}) []interface{} {
	out := make([]interface{}, len(args))
	for i, a := range args {
		if arr, ok := a.(*ir.Array); ok {
			out[i] = arr.Clone()
		} else {
			out[i] = a
		}
	}
	return out
}

// verify compares pipeline outputs against the kernel's Go reference
// with a relative tolerance (pipelines may re-associate reductions).
func verify(got, want []interface{}) error {
	const tol = 1e-6
	if len(got) != len(want) {
		return fmt.Errorf("result count %d, want %d", len(got), len(want))
	}
	for i := range want {
		switch w := want[i].(type) {
		case float64:
			g, ok := got[i].(float64)
			if !ok || math.Abs(g-w) > tol*(1+math.Abs(w)) {
				return fmt.Errorf("result %d: got %v, want %v", i, got[i], w)
			}
		case int64:
			if g, ok := got[i].(int64); !ok || g != w {
				return fmt.Errorf("result %d: got %v, want %v", i, got[i], w)
			}
		case complex128:
			g, ok := got[i].(complex128)
			if !ok || cAbs(g-w) > tol*(1+cAbs(w)) {
				return fmt.Errorf("result %d: got %v, want %v", i, got[i], w)
			}
		case *ir.Array:
			g, ok := got[i].(*ir.Array)
			if !ok || g.Rows != w.Rows || g.Cols != w.Cols {
				return fmt.Errorf("result %d: shape mismatch", i)
			}
			// Scale tolerance by the array's magnitude (FFT butterflies
			// accumulate differently than the direct-DFT oracle).
			scale := 1.0
			for j := 0; j < w.Len(); j++ {
				if m := cAbs(w.At(j)); m > scale {
					scale = m
				}
			}
			for j := 0; j < w.Len(); j++ {
				if cAbs(g.At(j)-w.At(j)) > tol*scale {
					return fmt.Errorf("result %d[%d]: got %v, want %v", i, j, g.At(j), w.At(j))
				}
			}
		default:
			return fmt.Errorf("result %d: unsupported reference type %T", i, want[i])
		}
	}
	return nil
}

func cAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

// RunPipeline compiles kernel k under cfg, executes it at problem size
// n on the cycle-model VM, verifies the outputs against the Go
// reference, and returns the measurement.
func RunPipeline(k *Kernel, cfg core.Config, n int) (*Stats, error) {
	return RunPipelineContext(context.Background(), k, cfg, n)
}

// RunPipelineContext is RunPipeline under a cancellable context: the
// compiler observes ctx between stages and the simulator polls it while
// executing, so a deadline stops the measurement promptly.
func RunPipelineContext(ctx context.Context, k *Kernel, cfg core.Config, n int) (*Stats, error) {
	res, err := core.CompileContext(ctx, k.Source, k.Entry, k.Params, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", k.Name, err)
	}
	args := k.Inputs(n)
	want := k.Reference(cloneArgs(args))

	m := vm.NewMachine(cfg.Processor)
	got, err := res.RunOnContext(ctx, m, cloneArgs(args)...)
	if err != nil {
		return nil, fmt.Errorf("%s: run: %w", k.Name, err)
	}
	if err := verify(got, want); err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	return &Stats{
		Cycles:          m.Cycles,
		Executed:        m.Executed,
		CodeSize:        res.CodeSize(),
		VectorizedLoops: res.VectorizedLoops,
		Intrinsics:      res.Intrinsics.Selected,
	}, nil
}

// RunKernelOn runs kernel k's full proposed pipeline against an
// in-memory processor description at problem size n. It is the entry
// point design-space exploration uses: the target never needs a name
// in the catalog or a file on disk.
func RunKernelOn(proc *pdesc.Processor, k *Kernel, n int) (*Stats, error) {
	return RunPipeline(k, core.Proposed(proc), n)
}

// OptionsFor maps a core pipeline Config onto the equivalent public
// mat2c.Options, so harnesses that enumerate configs directly (the
// ablation variants) can still compile through the content-addressed
// cache. Every ablation combination is expressible: the public options
// are subtractive flags over the full pipeline.
func OptionsFor(cfg core.Config) mat2c.Options {
	o := mat2c.Options{
		Processor:    cfg.Processor,
		NoVectorize:  !cfg.Vectorize,
		NoIntrinsics: !cfg.Intrinsics,
		NoFusion:     !cfg.Fusion,
		SkipC:        !cfg.EmitC,
	}
	if cfg.OptLevel <= 0 {
		o.OptLevel = -1
	} else {
		o.OptLevel = cfg.OptLevel
	}
	return o
}

// RunPipelineCached is RunPipelineContext through a content-addressed
// cache: identical (kernel, config) compilations are compiled once and
// restored thereafter — from memory, or from the cache's durable store
// across processes. The measurement contract is unchanged (outputs are
// still verified against the Go reference on every call).
func RunPipelineCached(ctx context.Context, c *mat2c.Cache, k *Kernel, cfg core.Config, n int) (*Stats, error) {
	if c == nil {
		return RunPipelineContext(ctx, k, cfg, n)
	}
	res, _, err := mat2c.CompileCachedContext(ctx, c, k.Source, k.Entry, k.Params, OptionsFor(cfg))
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", k.Name, err)
	}
	args := k.Inputs(n)
	want := k.Reference(cloneArgs(args))
	got, st, err := res.RunWithStatsContext(ctx, cloneArgs(args)...)
	if err != nil {
		return nil, fmt.Errorf("%s: run: %w", k.Name, err)
	}
	if err := verify(got, want); err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	return &Stats{
		Cycles:          st.Cycles,
		Executed:        st.Executed,
		CodeSize:        res.CodeSize(),
		VectorizedLoops: res.VectorizedLoops(),
		Intrinsics:      res.SelectedIntrinsics(),
	}, nil
}

// runPipeline dispatches one generator measurement through the cache
// when the generator was built WithCache, and straight down the
// pipeline otherwise.
func runPipeline(o options, k *Kernel, cfg core.Config, n int) (*Stats, error) {
	if o.cache != nil {
		return RunPipelineCached(o.ctx, o.cache, k, cfg, n)
	}
	return RunPipelineContext(o.ctx, k, cfg, n)
}

// ----- Table I: headline speedups -----

// Table1Row is one line of the headline comparison.
type Table1Row struct {
	Kernel   string  `json:"kernel"`
	Desc     string  `json:"desc"`
	Size     int     `json:"size"`
	Baseline int64   `json:"baseline_cycles"` // MATLAB-Coder-style code on the ASIP
	Proposed int64   `json:"proposed_cycles"` // full pipeline on the ASIP
	Speedup  float64 `json:"speedup"`
}

// Table1 regenerates the headline table on the given target (the paper's
// DSP ASIP by default). scale multiplies each kernel's default problem
// size (1 for the paper-scale run).
func Table1(proc *pdesc.Processor, scale float64, opts ...Opt) ([]Table1Row, error) {
	o := getOptions(opts)
	ks := Kernels()
	rows := make([]Table1Row, len(ks))
	err := forEach(len(ks), o.jobs, func(i int) error {
		k := ks[i]
		n := SizeFor(k, scale)
		base, err := runPipeline(o, k, core.Baseline(proc), n)
		if err != nil {
			return err
		}
		prop, err := runPipeline(o, k, core.Proposed(proc), n)
		if err != nil {
			return err
		}
		rows[i] = Table1Row{
			Kernel: k.Name, Desc: k.Desc, Size: n,
			Baseline: base.Cycles, Proposed: prop.Cycles,
			Speedup: float64(base.Cycles) / float64(prop.Cycles),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// SizeFor returns the problem size for a kernel at the given scale
// (1.0 = paper scale); matmul scales by the cube root so work scales
// linearly, and FFT sizes round to powers of two.
func SizeFor(k *Kernel, scale float64) int {
	s := scale
	if k.Name == "matmul" {
		// Work grows as n^3: scale the edge length by the cube root so a
		// scaled-down run keeps the loops long enough to be meaningful.
		s = math.Cbrt(scale)
	}
	n := int(float64(k.DefaultSize) * s)
	if n < 8 {
		n = 8
	}
	if k.Name == "fft" {
		// Round to the nearest power of two.
		p := 8
		for p*2 <= n {
			p *= 2
		}
		n = p
	}
	return n
}

// Table1Text renders the table.
func Table1Text(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: cycle counts on the DSP ASIP — MATLAB-Coder-style baseline vs. proposed compiler\n")
	fmt.Fprintf(&b, "%-8s %-46s %8s %12s %12s %9s\n", "kernel", "description", "size", "baseline", "proposed", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-46s %8d %12d %12d %8.1fx\n",
			r.Kernel, r.Desc, r.Size, r.Baseline, r.Proposed, r.Speedup)
	}
	return b.String()
}

// ----- Figure 2: feature ablation -----

// AblationConfig names one pipeline variant of the ablation.
type AblationConfig struct {
	Name string
	Cfg  func(p *pdesc.Processor) core.Config
}

// AblationConfigs returns the Fig. 2 variants, weakest first. All run on
// the same ASIP; they differ only in which compiler features are on.
func AblationConfigs() []AblationConfig {
	return []AblationConfig{
		{"coder-style", func(p *pdesc.Processor) core.Config { return core.Baseline(p) }},
		{"+fusion", func(p *pdesc.Processor) core.Config {
			c := core.Baseline(p)
			c.Fusion = true
			return c
		}},
		{"+simd", func(p *pdesc.Processor) core.Config {
			c := core.Baseline(p)
			c.Fusion = true
			c.Vectorize = true
			return c
		}},
		{"+custom-instr", func(p *pdesc.Processor) core.Config {
			c := core.Baseline(p)
			c.Fusion = true
			c.Intrinsics = true
			return c
		}},
		{"full", func(p *pdesc.Processor) core.Config { return core.Proposed(p) }},
	}
}

// Fig2Row is one kernel's ablation: speedup of each variant over the
// coder-style baseline.
type Fig2Row struct {
	Kernel   string    `json:"kernel"`
	Variants []string  `json:"variants"`
	Cycles   []int64   `json:"cycles"`
	Speedups []float64 `json:"speedups"`
}

// Fig2 regenerates the feature-ablation figure data.
func Fig2(proc *pdesc.Processor, scale float64, opts ...Opt) ([]Fig2Row, error) {
	o := getOptions(opts)
	configs := AblationConfigs()
	ks := Kernels()
	rows := make([]Fig2Row, len(ks))
	err := forEach(len(ks), o.jobs, func(ki int) error {
		k := ks[ki]
		n := SizeFor(k, scale)
		row := Fig2Row{Kernel: k.Name}
		var base int64
		for i, ac := range configs {
			st, err := runPipeline(o, k, ac.Cfg(proc), n)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", k.Name, ac.Name, err)
			}
			if i == 0 {
				base = st.Cycles
			}
			row.Variants = append(row.Variants, ac.Name)
			row.Cycles = append(row.Cycles, st.Cycles)
			row.Speedups = append(row.Speedups, float64(base)/float64(st.Cycles))
		}
		rows[ki] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig2Text renders the ablation as a table of speedups.
func Fig2Text(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Figure 2: speedup over coder-style baseline by compiler feature (ASIP target)\n")
	if len(rows) > 0 {
		fmt.Fprintf(&b, "%-8s", "kernel")
		for _, v := range rows[0].Variants {
			fmt.Fprintf(&b, " %13s", v)
		}
		b.WriteString("\n")
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Kernel)
		for _, s := range r.Speedups {
			fmt.Fprintf(&b, " %12.2fx", s)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ----- Figure 3: SIMD width sweep -----

// Fig3Row is one kernel's speedup across SIMD widths (full pipeline,
// speedup over the coder-style baseline on the same ASIP family).
type Fig3Row struct {
	Kernel   string    `json:"kernel"`
	Widths   []int     `json:"widths"`
	Cycles   []int64   `json:"cycles"`
	Speedups []float64 `json:"speedups"`
}

// WidthTargets returns the sweep family: identical ISA, lane count 1-8.
func WidthTargets() []*pdesc.Processor {
	return []*pdesc.Processor{
		pdesc.Builtin("nosimd"),
		pdesc.Builtin("wide2"),
		pdesc.Builtin("dspasip"),
		pdesc.Builtin("wide8"),
	}
}

// Fig3 regenerates the width-sweep figure data over the shipped
// width-sweep family.
func Fig3(scale float64, opts ...Opt) ([]Fig3Row, error) {
	return Fig3On(WidthTargets(), pdesc.Builtin("dspasip"), scale, opts...)
}

// Fig3On runs the width sweep over arbitrary in-memory targets,
// measuring each kernel's full-pipeline cycles on every target against
// the coder-style baseline on ref.
func Fig3On(targets []*pdesc.Processor, ref *pdesc.Processor, scale float64, opts ...Opt) ([]Fig3Row, error) {
	o := getOptions(opts)
	ks := Kernels()
	rows := make([]Fig3Row, len(ks))
	err := forEach(len(ks), o.jobs, func(ki int) error {
		k := ks[ki]
		n := SizeFor(k, scale)
		base, err := runPipeline(o, k, core.Baseline(ref), n)
		if err != nil {
			return err
		}
		row := Fig3Row{Kernel: k.Name}
		for _, p := range targets {
			st, err := runPipeline(o, k, core.Proposed(p), n)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", k.Name, p.Name, err)
			}
			row.Widths = append(row.Widths, p.SIMDWidth)
			row.Cycles = append(row.Cycles, st.Cycles)
			row.Speedups = append(row.Speedups, float64(base.Cycles)/float64(st.Cycles))
		}
		rows[ki] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig3Text renders the sweep.
func Fig3Text(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: speedup over baseline vs. SIMD width (full pipeline)\n")
	if len(rows) > 0 {
		fmt.Fprintf(&b, "%-8s", "kernel")
		for _, w := range rows[0].Widths {
			fmt.Fprintf(&b, " %9s", fmt.Sprintf("W=%d", w))
		}
		b.WriteString("\n")
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Kernel)
		for _, s := range r.Speedups {
			fmt.Fprintf(&b, " %8.2fx", s)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ----- Table II: static code size -----

// Table2Row compares static VM instruction counts.
type Table2Row struct {
	Kernel       string  `json:"kernel"`
	BaselineSize int     `json:"baseline_size"`
	ProposedSize int     `json:"proposed_size"`
	Ratio        float64 `json:"ratio"`
}

// Table2 regenerates the code-size comparison.
func Table2(proc *pdesc.Processor, opts ...Opt) ([]Table2Row, error) {
	o := getOptions(opts)
	ks := Kernels()
	rows := make([]Table2Row, len(ks))
	err := forEach(len(ks), o.jobs, func(i int) error {
		k := ks[i]
		size := func(cfg core.Config) (int, error) {
			if o.cache != nil {
				res, _, err := mat2c.CompileCachedContext(o.ctx, o.cache, k.Source, k.Entry, k.Params, OptionsFor(cfg))
				if err != nil {
					return 0, err
				}
				return res.CodeSize(), nil
			}
			res, err := core.CompileContext(o.ctx, k.Source, k.Entry, k.Params, cfg)
			if err != nil {
				return 0, err
			}
			return res.CodeSize(), nil
		}
		base, err := size(core.Baseline(proc))
		if err != nil {
			return err
		}
		prop, err := size(core.Proposed(proc))
		if err != nil {
			return err
		}
		rows[i] = Table2Row{
			Kernel:       k.Name,
			BaselineSize: base,
			ProposedSize: prop,
			Ratio:        float64(prop) / float64(base),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table2Text renders the code-size table.
func Table2Text(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II: static code size (VM instructions)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %8s\n", "kernel", "baseline", "proposed", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12d %12d %8.2f\n", r.Kernel, r.BaselineSize, r.ProposedSize, r.Ratio)
	}
	return b.String()
}
