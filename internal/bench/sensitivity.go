package bench

import (
	"fmt"
	"strings"

	"mat2c/internal/core"
	"mat2c/internal/pdesc"
)

// Fig4Row is one kernel's speedup across memory-latency assumptions
// (the cost-model sensitivity study, an extension of the paper's
// evaluation: it shows how much of the win is fused memory traffic).
type Fig4Row struct {
	Kernel    string    `json:"kernel"`
	MemCosts  []int     `json:"mem_costs"`
	Baselines []int64   `json:"baseline_cycles"`
	Proposeds []int64   `json:"proposed_cycles"`
	Speedups  []float64 `json:"speedups"`
}

// MemCostSweep is the swept per-access cycle cost.
var MemCostSweep = []int{1, 2, 4, 8}

// MemVariant builds a dspasip clone whose memory accesses cost c
// cycles (exported for the root benchmark harness).
func MemVariant(c int) *pdesc.Processor {
	p, err := pdesc.Builtin("dspasip").Derive(fmt.Sprintf("dspasip-mem%d", c), func(q *pdesc.Processor) {
		if q.Costs == nil {
			q.Costs = map[string]int{}
		}
		for _, k := range []string{"load", "store", "cload", "cstore", "vload", "vstore"} {
			q.Costs[k] = c
		}
	})
	if err != nil {
		// The mutation only touches known cost classes; failure would be
		// a programming error in the sweep itself.
		panic(err)
	}
	return p
}

// Fig4 regenerates the sensitivity study: for each kernel and memory
// cost, the baseline and proposed cycle counts and the speedup.
func Fig4(scale float64, opts ...Opt) ([]Fig4Row, error) {
	o := getOptions(opts)
	ks := Kernels()
	rows := make([]Fig4Row, len(ks))
	err := forEach(len(ks), o.jobs, func(ki int) error {
		k := ks[ki]
		n := SizeFor(k, scale)
		row := Fig4Row{Kernel: k.Name}
		for _, c := range MemCostSweep {
			p := MemVariant(c)
			base, err := RunPipelineContext(o.ctx, k, core.Baseline(p), n)
			if err != nil {
				return fmt.Errorf("%s mem=%d: %w", k.Name, c, err)
			}
			prop, err := RunPipelineContext(o.ctx, k, core.Proposed(p), n)
			if err != nil {
				return fmt.Errorf("%s mem=%d: %w", k.Name, c, err)
			}
			row.MemCosts = append(row.MemCosts, c)
			row.Baselines = append(row.Baselines, base.Cycles)
			row.Proposeds = append(row.Proposeds, prop.Cycles)
			row.Speedups = append(row.Speedups, float64(base.Cycles)/float64(prop.Cycles))
		}
		rows[ki] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig4Text renders the sensitivity table.
func Fig4Text(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Figure 4 (extension): speedup vs. memory access cost (cycles per access)\n")
	if len(rows) > 0 {
		fmt.Fprintf(&b, "%-8s", "kernel")
		for _, c := range rows[0].MemCosts {
			fmt.Fprintf(&b, " %9s", fmt.Sprintf("mem=%d", c))
		}
		b.WriteString("\n")
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Kernel)
		for _, s := range r.Speedups {
			fmt.Fprintf(&b, " %8.2fx", s)
		}
		b.WriteString("\n")
	}
	return b.String()
}
