package bench

import (
	"bytes"
	"reflect"
	"testing"

	"mat2c/internal/pdesc"
)

// TestReportSchemaRoundTrip pins the `benchtab -json` schema: a report
// produced by the harness decodes back into the typed struct with no
// unknown fields and is deep-equal after the round trip, so tracked
// BENCH_*.json documents stay machine-readable across commits.
func TestReportSchemaRoundTrip(t *testing.T) {
	p := pdesc.Builtin("dspasip")
	t2, err := Table2(p)
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{Proc: p.Name, Scale: 0.1, Table2: t2}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("report changed across a JSON round trip:\nbefore %+v\nafter  %+v", rep, back)
	}

	// Re-marshal and compare documents byte-for-byte: nothing may be
	// dropped or reordered by the decode.
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("re-marshaled report differs:\nfirst:\n%s\nsecond:\n%s", buf.Bytes(), buf2.Bytes())
	}
}

func TestParseReportRejectsUnknownFields(t *testing.T) {
	if _, err := ParseReport([]byte(`{"proc": "dspasip", "tabel1": []}`)); err == nil {
		t.Error("ParseReport accepted a misspelled table key")
	}
	if _, err := ParseReport([]byte(`{"proc": "dspasip", "table1": [{"kernel": "fir", "speedups": 2}]}`)); err == nil {
		t.Error("ParseReport accepted a misspelled row field")
	}
}

// TestFig3OnEntryPoint exercises the in-memory variant entry point the
// DSE engine uses: Fig3 rows computed over programmatically derived
// processors must agree in shape with the embedded-target run.
func TestFig3OnEntryPoint(t *testing.T) {
	base := pdesc.Builtin("dspasip")
	narrow, err := base.Derive("dspasip-narrow", func(q *pdesc.Processor) {
		q.SIMDWidth, q.ComplexLanes = 2, 0
		var keep []pdesc.Instr
		for _, in := range base.Instructions {
			if in.Name == "vfma" || in.Name[0] != 'v' {
				if in.Name == "vfma" {
					in.CName = "_asip_vfma2"
				}
				keep = append(keep, in)
			}
		}
		q.Instructions = keep
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Fig3On([]*pdesc.Processor{narrow, base}, pdesc.Builtin("scalar"), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("Fig3On returned no rows")
	}
	for _, r := range rows {
		if len(r.Cycles) != 2 || len(r.Speedups) != 2 {
			t.Fatalf("row %s: want 2 targets, got %+v", r.Kernel, r)
		}
		for i, s := range r.Speedups {
			if s <= 0 {
				t.Errorf("row %s target %d: non-positive speedup %v", r.Kernel, i, s)
			}
		}
	}
}
