package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"mat2c/internal/core"
	"mat2c/internal/pdesc"
	"mat2c/internal/vm"
)

// VMBenchRow is one kernel's simulator-throughput measurement: the
// full proposed pipeline's program executed under the compiled,
// superinstruction, prepared, and reference engines on the same
// inputs, reported as simulated instructions per wall-clock second.
// Compiled is the closure-threaded translation; Superinst is the
// prepared engine with a trace-mined fusion set; Prepared is the same
// engine with fusion explicitly disabled (the PR 3 baseline).
type VMBenchRow struct {
	Kernel                string  `json:"kernel"`
	Size                  int     `json:"size"`
	InstrsPerRun          int64   `json:"instrs_per_run"`
	CyclesPerRun          int64   `json:"cycles_per_run"`
	SuperinstSeqs         int     `json:"superinst_seqs"`
	CompiledBlocks        int     `json:"compiled_blocks"`
	CompiledFallback      int     `json:"compiled_fallback_blocks"`
	CompiledRuns          int     `json:"compiled_runs"`
	CompiledInstrsPerSec  float64 `json:"compiled_instrs_per_sec"`
	SuperinstRuns         int     `json:"superinst_runs"`
	SuperinstInstrsPerSec float64 `json:"superinst_instrs_per_sec"`
	PreparedRuns          int     `json:"prepared_runs"`
	PreparedInstrsPerSec  float64 `json:"prepared_instrs_per_sec"`
	ReferenceRuns         int     `json:"reference_runs"`
	ReferenceInstrsPerSec float64 `json:"reference_instrs_per_sec"`
	// Speedup is prepared vs reference; SuperinstSpeedup is
	// superinstruction vs plain prepared; CompiledSpeedup is the
	// compiled translation vs plain prepared.
	Speedup          float64 `json:"speedup"`
	SuperinstSpeedup float64 `json:"superinst_speedup"`
	CompiledSpeedup  float64 `json:"compiled_speedup"`
}

// VMBenchReport is the payload written to BENCH_vm.json so simulator
// throughput is tracked from run to run.
type VMBenchReport struct {
	Target string       `json:"target"`
	Scale  float64      `json:"scale"`
	GoOS   string       `json:"goos"`
	GoArch string       `json:"goarch"`
	Rows   []VMBenchRow `json:"rows"`
}

// measureEngine runs the machine repeatedly for at least minTime and
// returns (runs, instructions/second).
func measureEngine(m *vm.Machine, prog *core.Result, args []interface{}, engine string, minTime time.Duration) (int, float64, error) {
	m.Engine = engine
	// One untimed run warms the prepared cache and scratch pool.
	if _, err := prog.RunOn(m, cloneArgs(args)...); err != nil {
		return 0, 0, err
	}
	perRun := m.Executed
	runs := 0
	start := time.Now()
	for {
		if _, err := prog.RunOn(m, cloneArgs(args)...); err != nil {
			return 0, 0, err
		}
		runs++
		if time.Since(start) >= minTime && runs >= 3 {
			break
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return runs, float64(perRun) * float64(runs) / elapsed, nil
}

// mineKernelSet profiles one run of the program on the prepared engine
// and mines a superinstruction set from the per-PC counts — the same
// trace-driven flow asipsim and the service use.
func mineKernelSet(m *vm.Machine, prog *core.Result, args []interface{}) (*vm.SuperSet, error) {
	m.Engine = vm.EnginePrepared
	m.SuperSet = &vm.SuperSet{} // profile the unfused program
	m.Profile = true
	defer func() { m.Profile = false; m.SuperSet = nil }()
	if _, err := prog.RunOn(m, cloneArgs(args)...); err != nil {
		return nil, err
	}
	return vm.MineSuperinsts(prog.Program, m.PCCounts, vm.SuperOpts{}), nil
}

// VMBench measures simulated-instruction throughput for every bench
// kernel on proc (full proposed pipeline), under the compiled
// closure-threaded engine, the prepared engine with a trace-mined
// superinstruction set, the plain prepared engine, and the reference
// engine. minTime bounds the per-engine measurement window; scale
// scales problem sizes as in Table1.
func VMBench(proc *pdesc.Processor, scale float64, minTime time.Duration, opts ...Opt) (*VMBenchReport, error) {
	o := getOptions(opts)
	ks := Kernels()
	rows := make([]VMBenchRow, len(ks))
	err := forEach(len(ks), o.jobs, func(i int) error {
		k := ks[i]
		n := SizeFor(k, scale)
		res, err := core.CompileContext(o.ctx, k.Source, k.Entry, k.Params, core.Proposed(proc))
		if err != nil {
			return fmt.Errorf("%s: compile: %w", k.Name, err)
		}
		args := k.Inputs(n)
		m := vm.NewMachine(proc)
		set, err := mineKernelSet(m, res, args)
		if err != nil {
			return fmt.Errorf("%s: profile: %w", k.Name, err)
		}

		// The engines are measured in alternating rounds and the best
		// window per engine is kept: on a shared machine the noise
		// floor between consecutive windows easily exceeds the
		// superinst-vs-prepared delta, and best-of-rounds is robust to
		// one engine landing in a slow window.
		const rounds = 3
		var cRuns, sRuns, pRuns, rRuns int
		var cRate, sRate, pRate, rRate float64
		var instrs, cycles int64
		for round := 0; round < rounds; round++ {
			runs, r, err := measureEngine(m, res, args, vm.EngineCompiled, minTime/rounds)
			if err != nil {
				return fmt.Errorf("%s: compiled: %w", k.Name, err)
			}
			if r > cRate {
				cRuns, cRate = runs, r
			}

			m.SuperSet = set
			runs, r, err = measureEngine(m, res, args, vm.EnginePrepared, minTime/rounds)
			if err != nil {
				return fmt.Errorf("%s: superinst: %w", k.Name, err)
			}
			if r > sRate {
				sRuns, sRate = runs, r
			}
			instrs, cycles = m.Executed, m.Cycles

			m.SuperSet = &vm.SuperSet{} // fusion off: PR 3 baseline
			runs, r, err = measureEngine(m, res, args, vm.EnginePrepared, minTime/rounds)
			if err != nil {
				return fmt.Errorf("%s: prepared: %w", k.Name, err)
			}
			if r > pRate {
				pRuns, pRate = runs, r
			}
			m.SuperSet = nil

			runs, r, err = measureEngine(m, res, args, vm.EngineReference, minTime/rounds)
			if err != nil {
				return fmt.Errorf("%s: reference: %w", k.Name, err)
			}
			if r > rRate {
				rRuns, rRate = runs, r
			}
		}
		compiledBlocks, fallbackBlocks := vm.CompileProgram(res.Program, proc).BlockCounts()
		rows[i] = VMBenchRow{
			Kernel: k.Name, Size: n,
			InstrsPerRun: instrs, CyclesPerRun: cycles,
			SuperinstSeqs:  len(set.Ranges),
			CompiledBlocks: compiledBlocks, CompiledFallback: fallbackBlocks,
			CompiledRuns: cRuns, CompiledInstrsPerSec: cRate,
			SuperinstRuns: sRuns, SuperinstInstrsPerSec: sRate,
			PreparedRuns: pRuns, PreparedInstrsPerSec: pRate,
			ReferenceRuns: rRuns, ReferenceInstrsPerSec: rRate,
			Speedup:          pRate / rRate,
			SuperinstSpeedup: sRate / pRate,
			CompiledSpeedup:  cRate / pRate,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &VMBenchReport{
		Target: proc.Name, Scale: scale,
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Rows: rows,
	}, nil
}

// VMBenchText renders the throughput report.
func VMBenchText(rep *VMBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "VM throughput on %s (simulated instructions/sec; compiled = closure-threaded translation, superinst = prepared engine + trace-mined fusion)\n", rep.Target)
	fmt.Fprintf(&b, "%-8s %8s %12s %14s %14s %14s %14s %9s %9s %9s\n", "kernel", "size", "instrs/run", "compiled", "superinst", "prepared", "reference", "comp/prep", "sup/prep", "prep/ref")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-8s %8d %12d %14.3e %14.3e %14.3e %14.3e %8.2fx %8.2fx %8.1fx\n",
			r.Kernel, r.Size, r.InstrsPerRun, r.CompiledInstrsPerSec, r.SuperinstInstrsPerSec, r.PreparedInstrsPerSec, r.ReferenceInstrsPerSec, r.CompiledSpeedup, r.SuperinstSpeedup, r.Speedup)
	}
	return b.String()
}
