package bench

import (
	"fmt"
	"sort"
	"strings"

	"mat2c/internal/core"
	"mat2c/internal/pdesc"
)

// Table3Row reports what the compiler did to each kernel (an extension
// table: compilation statistics rather than run-time measurements).
type Table3Row struct {
	Kernel          string         `json:"kernel"`
	VectorizedLoops int            `json:"vectorized_loops"`
	Intrinsics      map[string]int `json:"intrinsics"`
	CodeSize        int            `json:"code_size"`
}

// Table3 compiles every kernel with the full pipeline and reports the
// compiler activity.
func Table3(proc *pdesc.Processor, opts ...Opt) ([]Table3Row, error) {
	o := getOptions(opts)
	ks := Kernels()
	rows := make([]Table3Row, len(ks))
	err := forEach(len(ks), o.jobs, func(i int) error {
		k := ks[i]
		res, err := core.CompileContext(o.ctx, k.Source, k.Entry, k.Params, core.Proposed(proc))
		if err != nil {
			return err
		}
		sel := map[string]int{}
		for n, c := range res.Intrinsics.Selected {
			if c > 0 {
				sel[n] = c
			}
		}
		rows[i] = Table3Row{
			Kernel:          k.Name,
			VectorizedLoops: res.VectorizedLoops,
			Intrinsics:      sel,
			CodeSize:        res.CodeSize(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table3Text renders the compiler-activity table.
func Table3Text(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table III (extension): compiler activity per kernel (full pipeline)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s  %s\n", "kernel", "vec loops", "codesize", "custom instructions selected")
	for _, r := range rows {
		names := make([]string, 0, len(r.Intrinsics))
		for n := range r.Intrinsics {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = fmt.Sprintf("%s×%d", n, r.Intrinsics[n])
		}
		sel := strings.Join(parts, " ")
		if sel == "" {
			sel = "—"
		}
		fmt.Fprintf(&b, "%-8s %10d %10d  %s\n", r.Kernel, r.VectorizedLoops, r.CodeSize, sel)
	}
	return b.String()
}
