package bench_test

// Round-trip property test for the durable artifact codec over the
// real workload: every benchmark kernel, on every builtin target and a
// sample of DSE-derived variants, must survive Decode(Encode(...))
// with an identical program ContentHash and a bit-identical simulation
// (outputs, cycle accounting, class counts) — reusing the differential
// harness from engine_diff_test.go, with the restored program standing
// in for the second engine.

import (
	"fmt"
	"testing"

	"mat2c/internal/artifact"
	"mat2c/internal/bench"
	"mat2c/internal/core"
	"mat2c/internal/dse"
	"mat2c/internal/pdesc"
	"mat2c/internal/vm"
)

func roundTripKernelsOn(t *testing.T, name string, proc *pdesc.Processor) {
	t.Helper()
	for _, k := range bench.Kernels() {
		k := k
		t.Run(fmt.Sprintf("%s/%s", name, k.Name), func(t *testing.T) {
			t.Parallel()
			n := bench.SizeFor(k, diffScale)
			for _, cfg := range []core.Config{core.Baseline(proc), core.Proposed(proc)} {
				res, err := core.Compile(k.Source, k.Entry, k.Params, cfg)
				if err != nil {
					t.Fatalf("compile (vec=%v): %v", cfg.Vectorize, err)
				}
				dec, err := artifact.DecodeProgram(artifact.EncodeProgram(res.Program))
				if err != nil {
					t.Fatalf("decode (vec=%v): %v", cfg.Vectorize, err)
				}
				if got, want := dec.ContentHash(), res.Program.ContentHash(); got != want {
					t.Fatalf("ContentHash changed across the round trip (vec=%v): %s != %s",
						cfg.Vectorize, got, want)
				}

				// Simulate original and restored programs on identical
				// inputs; the runs must be bit-identical in outputs and in
				// cycle accounting.
				restored := *res
				restored.Program = dec
				args := k.Inputs(n)
				orig := runKernelEngine(t, res, proc, args, vm.EnginePrepared, nil)
				back := runKernelEngine(t, &restored, proc, args, vm.EnginePrepared, nil)
				assertRunsAgree(t, fmt.Sprintf("restored vec=%v", cfg.Vectorize), orig, back)
				if orig.err != nil {
					t.Fatalf("kernel run failed: %v", orig.err)
				}
			}
		})
	}
}

// TestArtifactRoundTripAllTargets covers kernel × builtin target.
func TestArtifactRoundTripAllTargets(t *testing.T) {
	for _, name := range pdesc.BuiltinNames() {
		roundTripKernelsOn(t, name, pdesc.Builtin(name))
	}
}

// TestArtifactRoundTripDSEVariants covers a sample of derived variants
// (re-widthed custom instructions, stripped groups, overridden costs),
// whose programs exercise encodings no builtin target produces.
func TestArtifactRoundTripDSEVariants(t *testing.T) {
	sweep := &dse.Sweep{
		Base:    "dspasip",
		Widths:  []int{2, 8},
		Complex: []bool{true, false},
		Groups:  [][]string{{}, {"mac", "sad"}},
		Costs: []dse.CostOverride{
			{Name: "base", Costs: nil},
			{Name: "fastmul", Costs: map[string]int{"mul": 1, "vmul": 1}},
		},
	}
	variants, err := sweep.Enumerate()
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	// Sample every third variant: coverage of distinct encodings, not an
	// exhaustive re-run of the DSE matrix.
	for i := 0; i < len(variants); i += 3 {
		roundTripKernelsOn(t, variants[i].Proc.Name, variants[i].Proc)
	}
}
