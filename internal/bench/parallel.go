package bench

import (
	"context"
	"sync"

	mat2c "mat2c"
)

// Opt configures a table/figure generator. The generators accept
// options variadically so existing call sites stay source-compatible.
type Opt func(*options)

type options struct {
	jobs  int
	ctx   context.Context
	cache *mat2c.Cache
}

// WithJobs sets the worker count for kernel-level fan-out (≤1 =
// sequential). Rows are always produced in deterministic kernel order
// regardless of the worker count: each kernel writes its own
// pre-assigned slot.
func WithJobs(n int) Opt {
	return func(o *options) { o.jobs = n }
}

// WithContext bounds the generator by ctx: compilation observes it
// between pipeline stages and the simulator polls it while executing,
// so a deadline or cancellation stops a long table run promptly.
func WithContext(ctx context.Context) Opt {
	return func(o *options) { o.ctx = ctx }
}

// WithCache routes the generator's compilations through a shared
// content-addressed cache (mat2c.CompileCached). With a durable store
// attached to the cache, a regenerated table recompiles nothing that an
// earlier run already produced. Measurements are unaffected: a restored
// artifact simulates bit-identically to a fresh compilation.
func WithCache(c *mat2c.Cache) Opt {
	return func(o *options) { o.cache = c }
}

func getOptions(opts []Opt) options {
	o := options{jobs: 1, ctx: context.Background()}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// forEach runs fn(0..n-1) on a bounded worker pool (the asipdse
// pattern: an index channel drained by jobs workers). With jobs ≤ 1 it
// degrades to a plain loop. The returned error is the lowest-index
// failure, so error reporting is deterministic too.
func forEach(n, jobs int, fn func(i int) error) error {
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
