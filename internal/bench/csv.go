package bench

import (
	"fmt"
	"sort"
	"strings"
)

// CSV renderers for every experiment, for plotting pipelines. Columns
// mirror the text tables.

// Table1CSV renders Table I as CSV.
func Table1CSV(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("kernel,size,baseline_cycles,proposed_cycles,speedup\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%.4f\n", r.Kernel, r.Size, r.Baseline, r.Proposed, r.Speedup)
	}
	return b.String()
}

// Fig2CSV renders the ablation as CSV (one row per kernel/variant).
func Fig2CSV(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("kernel,variant,cycles,speedup\n")
	for _, r := range rows {
		for i, v := range r.Variants {
			fmt.Fprintf(&b, "%s,%s,%d,%.4f\n", r.Kernel, v, r.Cycles[i], r.Speedups[i])
		}
	}
	return b.String()
}

// Fig3CSV renders the width sweep as CSV.
func Fig3CSV(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("kernel,simd_width,cycles,speedup\n")
	for _, r := range rows {
		for i, w := range r.Widths {
			fmt.Fprintf(&b, "%s,%d,%d,%.4f\n", r.Kernel, w, r.Cycles[i], r.Speedups[i])
		}
	}
	return b.String()
}

// Fig4CSV renders the memory-cost sensitivity as CSV.
func Fig4CSV(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("kernel,mem_cost,baseline_cycles,proposed_cycles,speedup\n")
	for _, r := range rows {
		for i, c := range r.MemCosts {
			fmt.Fprintf(&b, "%s,%d,%d,%d,%.4f\n", r.Kernel, c, r.Baselines[i], r.Proposeds[i], r.Speedups[i])
		}
	}
	return b.String()
}

// Table2CSV renders the code-size table as CSV.
func Table2CSV(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("kernel,baseline_size,proposed_size,ratio\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%.4f\n", r.Kernel, r.BaselineSize, r.ProposedSize, r.Ratio)
	}
	return b.String()
}

// Table3CSV renders the compiler-activity table as CSV.
func Table3CSV(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("kernel,vectorized_loops,codesize,intrinsics\n")
	for _, r := range rows {
		names := make([]string, 0, len(r.Intrinsics))
		for n := range r.Intrinsics {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = fmt.Sprintf("%s:%d", n, r.Intrinsics[n])
		}
		fmt.Fprintf(&b, "%s,%d,%d,%s\n", r.Kernel, r.VectorizedLoops, r.CodeSize,
			strings.Join(parts, ";"))
	}
	return b.String()
}
