package bench_test

// Differential test between the VM engines over the real benchmark
// suite: every kernel, every embedded target, and a slice of
// DSE-derived variants must produce bit-identical outputs and
// identical cycle accounting under the reference engine, the prepared
// engine with fusion disabled, the prepared engine with a trace-mined
// superinstruction set, and the compiled closure-threaded engine.
// This is the whole-pipeline companion to the per-opcode equivalence
// tests in internal/vm.

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"mat2c/internal/bench"
	"mat2c/internal/core"
	"mat2c/internal/dse"
	"mat2c/internal/pdesc"
	"mat2c/internal/vm"
)

// diffScale keeps the matrix fast: the point is coverage of opcode ×
// target combinations, not long runs.
const diffScale = 0.125

type engineRun struct {
	out      []interface{}
	err      error
	cycles   int64
	executed int64
	counts   map[string]int64
}

func runKernelEngine(t *testing.T, res *core.Result, proc *pdesc.Processor, args []interface{}, engine string, set *vm.SuperSet) engineRun {
	t.Helper()
	m := vm.NewMachine(proc)
	m.Engine = engine
	m.SuperSet = set
	out, err := res.RunOn(m, bench.CloneArgs(args)...)
	return engineRun{out: out, err: err, cycles: m.Cycles, executed: m.Executed, counts: m.ClassCounts}
}

// mineForDiff profiles one unfused prepared run and mines a
// superinstruction set, the same flow the benchmarks and the service
// use.
func mineForDiff(t *testing.T, res *core.Result, proc *pdesc.Processor, args []interface{}) *vm.SuperSet {
	t.Helper()
	m := vm.NewMachine(proc)
	m.Engine = vm.EnginePrepared
	m.SuperSet = &vm.SuperSet{}
	m.Profile = true
	if _, err := res.RunOn(m, bench.CloneArgs(args)...); err != nil {
		t.Fatalf("profile run: %v", err)
	}
	return vm.MineSuperinsts(res.Program, m.PCCounts, vm.SuperOpts{})
}

// bitsEqual compares outputs with exact bit equality (NaNs included):
// the prepared engine must not merely be numerically close, it must be
// the same computation.
func bitsEqual(a, b interface{}) bool {
	switch x := a.(type) {
	case float64:
		y, ok := b.(float64)
		return ok && math.Float64bits(x) == math.Float64bits(y)
	case []float64:
		y, ok := b.([]float64)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	case complex128:
		y, ok := b.(complex128)
		return ok && math.Float64bits(real(x)) == math.Float64bits(real(y)) &&
			math.Float64bits(imag(x)) == math.Float64bits(imag(y))
	case []complex128:
		y, ok := b.([]complex128)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(real(x[i])) != math.Float64bits(real(y[i])) ||
				math.Float64bits(imag(x[i])) != math.Float64bits(imag(y[i])) {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a, b)
	}
}

func assertRunsAgree(t *testing.T, label string, p, r engineRun) {
	t.Helper()
	if (p.err == nil) != (r.err == nil) {
		t.Fatalf("%s: error mismatch: prepared=%v reference=%v", label, p.err, r.err)
	}
	if p.err != nil && p.err.Error() != r.err.Error() {
		t.Fatalf("%s: error text mismatch:\n  prepared:  %v\n  reference: %v", label, p.err, r.err)
	}
	if p.cycles != r.cycles {
		t.Fatalf("%s: cycle mismatch: prepared=%d reference=%d", label, p.cycles, r.cycles)
	}
	if p.executed != r.executed {
		t.Fatalf("%s: executed mismatch: prepared=%d reference=%d", label, p.executed, r.executed)
	}
	if !reflect.DeepEqual(p.counts, r.counts) {
		t.Fatalf("%s: class counts mismatch:\n  prepared:  %v\n  reference: %v", label, p.counts, r.counts)
	}
	if len(p.out) != len(r.out) {
		t.Fatalf("%s: output arity mismatch: %d vs %d", label, len(p.out), len(r.out))
	}
	for i := range p.out {
		if !bitsEqual(p.out[i], r.out[i]) {
			t.Fatalf("%s: output %d differs:\n  prepared:  %v\n  reference: %v", label, i, p.out[i], r.out[i])
		}
	}
}

func diffKernelsOn(t *testing.T, name string, proc *pdesc.Processor) {
	t.Helper()
	for _, k := range bench.Kernels() {
		k := k
		t.Run(fmt.Sprintf("%s/%s", name, k.Name), func(t *testing.T) {
			t.Parallel()
			n := bench.SizeFor(k, diffScale)
			for _, cfg := range []core.Config{core.Baseline(proc), core.Proposed(proc)} {
				res, err := core.Compile(k.Source, k.Entry, k.Params, cfg)
				if err != nil {
					t.Fatalf("compile (vec=%v): %v", cfg.Vectorize, err)
				}
				args := k.Inputs(n)
				r := runKernelEngine(t, res, proc, args, vm.EngineReference, nil)
				p := runKernelEngine(t, res, proc, args, vm.EnginePrepared, &vm.SuperSet{})
				assertRunsAgree(t, fmt.Sprintf("vec=%v prepared", cfg.Vectorize), p, r)
				mined := mineForDiff(t, res, proc, args)
				s := runKernelEngine(t, res, proc, args, vm.EnginePrepared, mined)
				assertRunsAgree(t, fmt.Sprintf("vec=%v superinst(%d seqs)", cfg.Vectorize, len(mined.Ranges)), s, r)
				c := runKernelEngine(t, res, proc, args, vm.EngineCompiled, nil)
				assertRunsAgree(t, fmt.Sprintf("vec=%v compiled", cfg.Vectorize), c, r)
				if p.err != nil {
					t.Fatalf("kernel run failed under all engines: %v", p.err)
				}
			}
		})
	}
}

// TestEnginesAgreeOnAllTargets runs the full kernel suite on every
// embedded processor description under both engines.
func TestEnginesAgreeOnAllTargets(t *testing.T) {
	for _, name := range pdesc.BuiltinNames() {
		diffKernelsOn(t, name, pdesc.Builtin(name))
	}
}

// TestProfilesAgreeOnAllKernels: Machine.Profile works on every
// engine configuration, and the per-PC execution counts agree across
// reference, prepared-unfused, prepared-with-mined-set, and compiled
// runs on every benchmark kernel (fused units map counts back to
// member PCs; compiled blocks count every member).
func TestProfilesAgreeOnAllKernels(t *testing.T) {
	proc := pdesc.Builtin("dspasip")
	for _, k := range bench.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			n := bench.SizeFor(k, diffScale)
			res, err := core.Compile(k.Source, k.Entry, k.Params, core.Proposed(proc))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			args := k.Inputs(n)
			profile := func(engine string, set *vm.SuperSet) []int64 {
				m := vm.NewMachine(proc)
				m.Engine = engine
				m.SuperSet = set
				m.Profile = true
				if _, err := res.RunOn(m, bench.CloneArgs(args)...); err != nil {
					t.Fatalf("%s: %v", engine, err)
				}
				return m.PCCounts
			}
			ref := profile(vm.EngineReference, nil)
			prep := profile(vm.EnginePrepared, &vm.SuperSet{})
			mined := profile(vm.EnginePrepared, vm.MineSuperinsts(res.Program, prep, vm.SuperOpts{}))
			comp := profile(vm.EngineCompiled, nil)
			if !reflect.DeepEqual(ref, prep) {
				t.Error("prepared per-PC profile differs from reference")
			}
			if !reflect.DeepEqual(ref, mined) {
				t.Error("mined-superinst per-PC profile differs from reference")
			}
			if !reflect.DeepEqual(ref, comp) {
				t.Error("compiled per-PC profile differs from reference")
			}
		})
	}
}

// TestEnginesAgreeOnDSEVariants does the same over a slice of the
// design-space-exploration enumeration, so cost tables that exist only
// as derived variants (re-widthed custom instructions, stripped
// instruction groups, overridden cost classes) are covered too.
func TestEnginesAgreeOnDSEVariants(t *testing.T) {
	sweep := &dse.Sweep{
		Base:    "dspasip",
		Widths:  []int{4, 16},
		Complex: []bool{true, false},
		Groups:  [][]string{{}, {"mac", "cmul"}},
		Costs: []dse.CostOverride{
			{Name: "base", Costs: nil},
			{Name: "slowmem", Costs: map[string]int{"load": 6, "store": 6, "vload": 6, "vstore": 6}},
		},
	}
	variants, err := sweep.Enumerate()
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if len(variants) < 4 {
		t.Fatalf("sweep produced only %d variants", len(variants))
	}
	for _, v := range variants {
		diffKernelsOn(t, v.Proc.Name, v.Proc)
	}
}
