// Package bench defines the six DSP benchmark kernels and the harness
// that regenerates the paper's evaluation: the headline speedup table
// (baseline MATLAB-Coder-style code vs. the proposed compiler on the
// DSP ASIP), the feature-ablation figure, the SIMD-width sweep, and the
// static code-size table.
//
// Each kernel carries its MATLAB source (written the way a MATLAB user
// writes DSP code — slice/vector operations where natural), a
// deterministic input generator, and an independent Go reference
// implementation; the harness verifies every pipeline's numerical output
// against the reference before reporting cycles, so a benchmark result
// is also a correctness proof.
package bench

import (
	"math"
	"math/cmplx"

	"mat2c/internal/ir"
	"mat2c/internal/sema"
)

// Kernel is one benchmark.
type Kernel struct {
	Name string
	// Desc is a one-line description used in reports.
	Desc string
	// Source is the MATLAB program; Entry its entry function.
	Source string
	Entry  string
	// Params are the entry parameter types.
	Params []sema.Type
	// Inputs builds deterministic inputs for a problem size n.
	Inputs func(n int) []interface{}
	// Reference computes the expected outputs in Go.
	Reference func(args []interface{}) []interface{}
	// DefaultSize is the paper-scale problem size used by the tables.
	DefaultSize int
}

// rng is a small deterministic generator (SplitMix64) so inputs are
// stable across runs and platforms.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a value in (-1, 1).
func (r *rng) float() float64 {
	return float64(int64(r.next()>>11))/(1<<52) - 1.0
}

func (r *rng) floatArr(rows, cols int) *ir.Array {
	a := ir.NewFloatArray(rows, cols)
	for i := range a.F {
		a.F[i] = r.float()
	}
	return a
}

func (r *rng) complexArr(rows, cols int) *ir.Array {
	a := ir.NewComplexArray(rows, cols)
	for i := range a.C {
		a.C[i] = complex(r.float(), r.float())
	}
	return a
}

func dynRow(class sema.Class) sema.Type {
	return sema.Type{Class: class, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func dynMat(class sema.Class) sema.Type {
	return sema.Type{Class: class, Shape: sema.Shape{Rows: sema.DimUnknown, Cols: sema.DimUnknown}}
}

const firTaps = 16

// firSource is a real FIR filter in the tap-outer, slice-inner form a
// MATLAB user writes (each tap updates the whole output slice).
const firSource = `function y = fir(x, h)
% FIR filter: y(i) = sum_k h(k) * x(i-k+1), slice formulation.
n = length(x);
t = length(h);
y = zeros(1, n);
for k = 1:t
    y(t:n) = y(t:n) + h(k) .* x(t-k+1:n-k+1);
end
end`

func firRef(args []interface{}) []interface{} {
	x := args[0].(*ir.Array).F
	h := args[1].(*ir.Array).F
	n, t := len(x), len(h)
	y := ir.NewFloatArray(1, n)
	for i := t - 1; i < n; i++ {
		acc := 0.0
		for k := 0; k < t; k++ {
			acc += h[k] * x[i-k]
		}
		y.F[i] = acc
	}
	return []interface{}{y}
}

const iirSections = 4

// iirSource is a cascade of biquad sections in direct form II
// (transposed state recurrence): inherently sequential, the paper's
// low-speedup case.
const iirSource = `function y = iirsos(x, sos)
% Cascade of second-order sections; sos is 6 x nsec:
% rows are b0 b1 b2 a0 a1 a2 (a0 assumed 1).
n = length(x);
nsec = size(sos, 2);
y = zeros(1, n);
y(1:n) = x(1:n);
for s = 1:nsec
    b0 = sos(1, s);
    b1 = sos(2, s);
    b2 = sos(3, s);
    a1 = sos(5, s);
    a2 = sos(6, s);
    w1 = 0;
    w2 = 0;
    for i = 1:n
        w0 = y(i) - a1 * w1 - a2 * w2;
        y(i) = b0 * w0 + b1 * w1 + b2 * w2;
        w2 = w1;
        w1 = w0;
    end
end
end`

func iirRef(args []interface{}) []interface{} {
	x := args[0].(*ir.Array).F
	sos := args[1].(*ir.Array)
	n := len(x)
	nsec := sos.Cols
	y := ir.NewFloatArray(1, n)
	copy(y.F, x)
	at := func(r, c int) float64 { return sos.F[r+c*6] }
	for s := 0; s < nsec; s++ {
		b0, b1, b2 := at(0, s), at(1, s), at(2, s)
		a1, a2 := at(4, s), at(5, s)
		w1, w2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			w0 := y.F[i] - a1*w1 - a2*w2
			y.F[i] = b0*w0 + b1*w1 + b2*w2
			w2 = w1
			w1 = w0
		}
	}
	return []interface{}{y}
}

// stableSOS builds nsec stable biquads deterministically.
func stableSOS(r *rng, nsec int) *ir.Array {
	sos := ir.NewFloatArray(6, nsec)
	for s := 0; s < nsec; s++ {
		// Poles inside the unit circle.
		rad := 0.3 + 0.5*math.Abs(r.float())
		th := math.Pi * math.Abs(r.float())
		a1 := -2 * rad * math.Cos(th)
		a2 := rad * rad
		sos.F[0+s*6] = 0.25 + 0.5*math.Abs(r.float()) // b0
		sos.F[1+s*6] = r.float() * 0.5                // b1
		sos.F[2+s*6] = r.float() * 0.25               // b2
		sos.F[3+s*6] = 1                              // a0
		sos.F[4+s*6] = a1
		sos.F[5+s*6] = a2
	}
	return sos
}

// fftSource is an in-place iterative radix-2 DIT FFT with precomputed
// twiddle factors (w(k) = exp(-2i*pi*(k-1)/n), length n/2).
const fftSource = `function y = fftr2(x, w)
% Iterative radix-2 decimation-in-time FFT.
n = length(x);
y = zeros(1, n);
y(1:n) = x(1:n);
% Bit-reversal permutation.
j = 1;
for i = 1:n-1
    if i < j
        t = y(j);
        y(j) = y(i);
        y(i) = t;
    end
    k = fix(n / 2);
    while k < j
        j = j - k;
        k = fix(k / 2);
    end
    j = j + k;
end
% Butterfly stages.
len = 2;
while len <= n
    half = fix(len / 2);
    step = fix(n / len);
    i0 = 1;
    while i0 <= n - len + 1
        for k = 0:half-1
            t = w(k * step + 1) * y(i0 + k + half);
            y(i0 + k + half) = y(i0 + k) - t;
            y(i0 + k) = y(i0 + k) + t;
        end
        i0 = i0 + len;
    end
    len = len * 2;
end
end`

// fftRef is a direct O(n^2) DFT — an independent oracle.
func fftRef(args []interface{}) []interface{} {
	x := args[0].(*ir.Array).C
	n := len(x)
	y := ir.NewComplexArray(1, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			acc += x[t] * cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(t)/float64(n)))
		}
		y.C[k] = acc
	}
	return []interface{}{y}
}

func twiddles(n int) *ir.Array {
	w := ir.NewComplexArray(1, n/2)
	for k := 0; k < n/2; k++ {
		w.C[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
	}
	return w
}

// matmulSource multiplies two real matrices with the * operator; the
// compiler lowers it to the column-major saxpy triple nest.
const matmulSource = `function c = matmul(a, b)
c = a * b;
end`

func matmulRef(args []interface{}) []interface{} {
	a := args[0].(*ir.Array)
	b := args[1].(*ir.Array)
	m, kk, n := a.Rows, a.Cols, b.Cols
	c := ir.NewFloatArray(m, n)
	for j := 0; j < n; j++ {
		for k := 0; k < kk; k++ {
			bkj := b.F[k+j*kk]
			for i := 0; i < m; i++ {
				c.F[i+j*m] += a.F[i+k*m] * bkj
			}
		}
	}
	return []interface{}{c}
}

const xcorrMaxLag = 32

// xcorrSource computes the cross-correlation of two real sequences over
// lags -maxlag..maxlag.
const xcorrSource = `function r = xcorr(x, y, maxlag)
% Cross-correlation r(lag) = sum_i x(i) * y(i + lag).
n = length(x);
r = zeros(1, 2 * maxlag + 1);
for lag = -maxlag:maxlag
    acc = 0;
    lo = max(1, 1 - lag);
    hi = min(n, n - lag);
    for i = lo:hi
        acc = acc + x(i) * y(i + lag);
    end
    r(lag + maxlag + 1) = acc;
end
end`

func xcorrRef(args []interface{}) []interface{} {
	x := args[0].(*ir.Array).F
	y := args[1].(*ir.Array).F
	maxlag := int(args[2].(int64))
	n := len(x)
	r := ir.NewFloatArray(1, 2*maxlag+1)
	for lag := -maxlag; lag <= maxlag; lag++ {
		acc := 0.0
		lo := 0
		if -lag > lo {
			lo = -lag
		}
		hi := n
		if n-lag < hi {
			hi = n - lag
		}
		for i := lo; i < hi; i++ {
			acc += x[i] * y[i+lag]
		}
		r.F[lag+maxlag] = acc
	}
	return []interface{}{r}
}

const cfirTaps = 16

// cfirSource is a complex FIR (channel/matched filter): the paper's
// high-speedup case — elementwise complex slice arithmetic that fuses,
// vectorizes, and maps onto the complex-arithmetic ISA.
const cfirSource = `function y = cfir(x, h)
% Complex FIR filter, slice formulation with conjugated taps
% (matched filter): y(i) = sum_k conj(h(k)) * x(i-k+1).
n = length(x);
t = length(h);
y = zeros(1, n);
for k = 1:t
    y(t:n) = y(t:n) + conj(h(k)) .* x(t-k+1:n-k+1);
end
end`

func cfirRef(args []interface{}) []interface{} {
	x := args[0].(*ir.Array).C
	h := args[1].(*ir.Array).C
	n, t := len(x), len(h)
	y := ir.NewComplexArray(1, n)
	for i := t - 1; i < n; i++ {
		var acc complex128
		for k := 0; k < t; k++ {
			acc += cmplx.Conj(h[k]) * x[i-k]
		}
		y.C[i] = acc
	}
	return []interface{}{y}
}

// Kernels returns the six benchmarks in report order.
func Kernels() []*Kernel {
	return []*Kernel{
		{
			Name: "fir", Desc: "real FIR filter (16 taps, slice form)",
			Source: firSource, Entry: "fir",
			Params:      []sema.Type{dynRow(sema.Real), dynRow(sema.Real)},
			DefaultSize: 1024,
			Inputs: func(n int) []interface{} {
				r := newRng(1001)
				return []interface{}{r.floatArr(1, n), r.floatArr(1, firTaps)}
			},
			Reference: firRef,
		},
		{
			Name: "iirsos", Desc: "IIR biquad cascade (4 sections, recurrence)",
			Source: iirSource, Entry: "iirsos",
			Params:      []sema.Type{dynRow(sema.Real), dynMat(sema.Real)},
			DefaultSize: 1024,
			Inputs: func(n int) []interface{} {
				r := newRng(2002)
				return []interface{}{r.floatArr(1, n), stableSOS(r, iirSections)}
			},
			Reference: iirRef,
		},
		{
			Name: "fft", Desc: "radix-2 complex FFT (in-place, precomputed twiddles)",
			Source: fftSource, Entry: "fftr2",
			Params:      []sema.Type{dynRow(sema.Complex), dynRow(sema.Complex)},
			DefaultSize: 1024,
			Inputs: func(n int) []interface{} {
				r := newRng(3003)
				return []interface{}{r.complexArr(1, n), twiddles(n)}
			},
			Reference: fftRef,
		},
		{
			Name: "matmul", Desc: "real matrix multiply (C = A*B)",
			Source: matmulSource, Entry: "matmul",
			Params:      []sema.Type{dynMat(sema.Real), dynMat(sema.Real)},
			DefaultSize: 48,
			Inputs: func(n int) []interface{} {
				r := newRng(4004)
				return []interface{}{r.floatArr(n, n), r.floatArr(n, n)}
			},
			Reference: matmulRef,
		},
		{
			Name: "xcorr", Desc: "cross-correlation (±32 lags)",
			Source: xcorrSource, Entry: "xcorr",
			Params:      []sema.Type{dynRow(sema.Real), dynRow(sema.Real), sema.IntScalar},
			DefaultSize: 1024,
			Inputs: func(n int) []interface{} {
				r := newRng(5005)
				return []interface{}{r.floatArr(1, n), r.floatArr(1, n), int64(xcorrMaxLag)}
			},
			Reference: xcorrRef,
		},
		{
			Name: "cfir", Desc: "complex FIR / matched filter (16 taps)",
			Source: cfirSource, Entry: "cfir",
			Params:      []sema.Type{dynRow(sema.Complex), dynRow(sema.Complex)},
			DefaultSize: 1024,
			Inputs: func(n int) []interface{} {
				r := newRng(6006)
				return []interface{}{r.complexArr(1, n), r.complexArr(1, cfirTaps)}
			},
			Reference: cfirRef,
		},
	}
}

// KernelByName returns the named kernel, or nil.
func KernelByName(name string) *Kernel {
	for _, k := range Kernels() {
		if k.Name == name {
			return k
		}
	}
	return nil
}
