package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Report is the machine-readable form of an evaluation run, emitted by
// `benchtab -json` so perf trajectories can be tracked across commits
// (BENCH_*.json) without scraping text tables. Only the tables that
// were requested are present.
type Report struct {
	Proc   string      `json:"proc"`
	Scale  float64     `json:"scale"`
	Table1 []Table1Row `json:"table1,omitempty"`
	Table2 []Table2Row `json:"table2,omitempty"`
	Table3 []Table3Row `json:"table3,omitempty"`
	Fig2   []Fig2Row   `json:"fig2,omitempty"`
	Fig3   []Fig3Row   `json:"fig3,omitempty"`
	Fig4   []Fig4Row   `json:"fig4,omitempty"`
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseReport decodes a `benchtab -json` document, rejecting unknown
// fields so schema drift breaks loudly instead of silently dropping
// data from tracked BENCH_*.json trends.
func ParseReport(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench report: %w", err)
	}
	return &rep, nil
}
