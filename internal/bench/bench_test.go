package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mat2c/internal/core"
	"mat2c/internal/pdesc"
)

// smallScale shrinks problem sizes so the full experiment matrix stays
// fast under `go test`.
const smallScale = 0.25

// TestKernelsVerifyUnderAllPipelines compiles every kernel under every
// pipeline variant and target in the evaluation and checks its output
// against the Go reference (RunPipeline fails on mismatch).
func TestKernelsVerifyUnderAllPipelines(t *testing.T) {
	targets := []*pdesc.Processor{
		pdesc.Builtin("scalar"),
		pdesc.Builtin("dspasip"),
		pdesc.Builtin("wide8"),
		pdesc.Builtin("nocomplex"),
		pdesc.Builtin("nosimd"),
	}
	for _, k := range Kernels() {
		for _, p := range targets {
			for _, ac := range AblationConfigs() {
				n := SizeFor(k, smallScale)
				if _, err := RunPipeline(k, ac.Cfg(p), n); err != nil {
					t.Errorf("%s on %s (%s): %v", k.Name, p.Name, ac.Name, err)
				}
			}
		}
	}
}

// TestKernelsAcrossSizes exercises edge problem sizes, including ones
// that are not multiples of the SIMD width.
func TestKernelsAcrossSizes(t *testing.T) {
	proc := pdesc.Builtin("dspasip")
	for _, k := range Kernels() {
		sizes := []int{17, 33, 64}
		if k.Name == "fft" {
			sizes = []int{16, 64, 128} // powers of two only
		}
		if k.Name == "matmul" {
			sizes = []int{3, 9, 17}
		}
		for _, n := range sizes {
			if n < minSize(k) {
				continue
			}
			if _, err := RunPipeline(k, core.Proposed(proc), n); err != nil {
				t.Errorf("%s n=%d: %v", k.Name, n, err)
			}
			if _, err := RunPipeline(k, core.Baseline(proc), n); err != nil {
				t.Errorf("%s baseline n=%d: %v", k.Name, n, err)
			}
		}
	}
}

func minSize(k *Kernel) int {
	switch k.Name {
	case "fir", "cfir":
		return firTaps + 1
	case "xcorr":
		return xcorrMaxLag + 2
	}
	return 2
}

// TestTable1Shape asserts the headline claims the table must reproduce:
// the proposed compiler always wins, the recurrence-bound kernel sits at
// the low end, and the fused/vectorized streaming kernels at the high
// end, spanning roughly the paper's 2x-30x band.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1(pdesc.Builtin("dspasip"), smallScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 6 benchmarks, got %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Kernel] = r
		if r.Speedup <= 1 {
			t.Errorf("%s: proposed (%d) not faster than baseline (%d)",
				r.Kernel, r.Proposed, r.Baseline)
		}
	}
	// Ordering: recurrence/irregular kernels at the bottom, streaming
	// slice kernels at the top.
	lowEnd := []string{"iirsos", "fft"}
	highEnd := []string{"fir", "cfir"}
	for _, lo := range lowEnd {
		for _, hi := range highEnd {
			if byName[lo].Speedup >= byName[hi].Speedup {
				t.Errorf("%s (%.1fx) should be below %s (%.1fx)",
					lo, byName[lo].Speedup, hi, byName[hi].Speedup)
			}
		}
	}
	// Band: the best kernel reaches the multi-x regime.
	best := 0.0
	for _, r := range rows {
		if r.Speedup > best {
			best = r.Speedup
		}
	}
	if best < 8 {
		t.Errorf("best speedup %.1fx; expected the complex/streaming kernels near or above 10x", best)
	}
}

// TestFig2AblationMonotone checks the feature ablation: the full
// pipeline is at least as fast as each single-feature variant, and every
// variant beats or matches the coder-style baseline.
func TestFig2AblationMonotone(t *testing.T) {
	rows, err := Fig2(pdesc.Builtin("dspasip"), smallScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		full := r.Speedups[len(r.Speedups)-1]
		for i, v := range r.Variants {
			s := r.Speedups[i]
			if s < 0.99 {
				t.Errorf("%s/%s: slower than baseline (%.2fx)", r.Kernel, v, s)
			}
			// Allow tiny noise: full must be >= any partial variant.
			if full < s*0.999 {
				t.Errorf("%s: full (%.2fx) slower than %s (%.2fx)", r.Kernel, full, v, s)
			}
		}
	}
}

// TestFig2FeatureAttribution checks that each feature matters where it
// should: SIMD moves the FIR, custom instructions move the complex FIR.
func TestFig2FeatureAttribution(t *testing.T) {
	rows, err := Fig2(pdesc.Builtin("dspasip"), smallScale)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, v := range AblationConfigs() {
		idx[v.Name] = i
	}
	byName := map[string]Fig2Row{}
	for _, r := range rows {
		byName[r.Kernel] = r
	}
	fir := byName["fir"]
	if fir.Speedups[idx["+simd"]] <= fir.Speedups[idx["+fusion"]]*1.2 {
		t.Errorf("fir: SIMD should add clearly over fusion alone: %+v", fir.Speedups)
	}
	cfir := byName["cfir"]
	if cfir.Speedups[idx["+custom-instr"]] <= cfir.Speedups[idx["+fusion"]]*1.1 {
		t.Errorf("cfir: complex custom instructions should add over fusion alone: %+v", cfir.Speedups)
	}
	iir := byName["iirsos"]
	if iir.Speedups[idx["+simd"]] > iir.Speedups[idx["+fusion"]]*1.3 {
		t.Errorf("iirsos: the recurrence must not gain much from SIMD: %+v", iir.Speedups)
	}
}

// TestFig3WidthScaling checks the width sweep: speedup must not decrease
// with lane count, and data-parallel kernels must actually scale.
func TestFig3WidthScaling(t *testing.T) {
	rows, err := Fig3(smallScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for i := 1; i < len(r.Speedups); i++ {
			if r.Speedups[i] < r.Speedups[i-1]*0.98 {
				t.Errorf("%s: speedup drops from W=%d (%.2fx) to W=%d (%.2fx)",
					r.Kernel, r.Widths[i-1], r.Speedups[i-1], r.Widths[i], r.Speedups[i])
			}
		}
		if r.Kernel == "fir" {
			first, last := r.Speedups[0], r.Speedups[len(r.Speedups)-1]
			if last < first*2 {
				t.Errorf("fir: W=8 (%.2fx) should at least double W=1 (%.2fx)", last, first)
			}
		}
		if r.Kernel == "iirsos" {
			first, last := r.Speedups[0], r.Speedups[len(r.Speedups)-1]
			if last > first*1.5 {
				t.Errorf("iirsos: recurrence should not scale with width: %.2fx -> %.2fx", first, last)
			}
		}
	}
}

// TestTable2CodeSize sanity-checks the static code-size comparison.
func TestTable2CodeSize(t *testing.T) {
	rows, err := Table2(pdesc.Builtin("dspasip"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BaselineSize <= 0 || r.ProposedSize <= 0 {
			t.Errorf("%s: degenerate sizes %d/%d", r.Kernel, r.BaselineSize, r.ProposedSize)
		}
		// The proposed pipeline trades code size for speed (vector main
		// loop + scalar epilogue); it must stay within a sane factor.
		if r.Ratio > 6 {
			t.Errorf("%s: proposed code %0.1fx larger than baseline", r.Kernel, r.Ratio)
		}
	}
}

// TestRenderers exercises the text renderers.
func TestRenderers(t *testing.T) {
	t1, err := Table1(pdesc.Builtin("dspasip"), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s := Table1Text(t1); len(s) == 0 || !contains(s, "speedup") {
		t.Error("Table1Text malformed")
	}
	t2, err := Table2(pdesc.Builtin("dspasip"))
	if err != nil {
		t.Fatal(err)
	}
	if s := Table2Text(t2); !contains(s, "code size") {
		t.Error("Table2Text malformed")
	}
	f2, err := Fig2(pdesc.Builtin("dspasip"), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s := Fig2Text(f2); !contains(s, "full") {
		t.Error("Fig2Text malformed")
	}
	f3, err := Fig3(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s := Fig3Text(f3); !contains(s, "W=8") {
		t.Error("Fig3Text malformed")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestKernelByName(t *testing.T) {
	if KernelByName("fir") == nil || KernelByName("nope") != nil {
		t.Error("KernelByName lookup broken")
	}
	if len(Kernels()) != 6 {
		t.Error("the paper evaluates six benchmarks")
	}
}

// TestFig4MemorySensitivity checks the extension study: the fusion-heavy
// streaming kernels gain speedup as memory gets slower (their win is
// avoided temp traffic), and nothing degenerates.
func TestFig4MemorySensitivity(t *testing.T) {
	rows, err := Fig4(smallScale)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Kernel] = r
		for i, s := range r.Speedups {
			if s <= 1 {
				t.Errorf("%s mem=%d: proposed not faster (%.2fx)", r.Kernel, r.MemCosts[i], s)
			}
		}
	}
	for _, name := range []string{"fir", "cfir"} {
		r := byName[name]
		first, last := r.Speedups[0], r.Speedups[len(r.Speedups)-1]
		if last <= first {
			t.Errorf("%s: fusion gain should grow with memory cost (%.2fx -> %.2fx)", name, first, last)
		}
	}
}

// TestTable3CompilerActivity checks what the compiler does per kernel.
func TestTable3CompilerActivity(t *testing.T) {
	rows, err := Table3(pdesc.Builtin("dspasip"))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Kernel] = r
	}
	if byName["fir"].VectorizedLoops == 0 {
		t.Error("fir must vectorize")
	}
	if byName["iirsos"].Intrinsics["fms"] == 0 {
		t.Errorf("iirsos should use fms: %v", byName["iirsos"].Intrinsics)
	}
	if byName["cfir"].Intrinsics["vcmac"] == 0 && byName["cfir"].Intrinsics["vcconjmul"] == 0 {
		t.Errorf("cfir should use vector complex instructions: %v", byName["cfir"].Intrinsics)
	}
	if byName["fft"].Intrinsics["cmul"] == 0 {
		t.Errorf("fft should use cmul: %v", byName["fft"].Intrinsics)
	}
	if s := Table3Text(rows); !contains(s, "vec loops") {
		t.Error("Table3Text malformed")
	}
}

// TestCSVRenderers exercises every CSV renderer.
func TestCSVRenderers(t *testing.T) {
	p := pdesc.Builtin("dspasip")
	t1, err := Table1(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s := Table1CSV(t1); !contains(s, "kernel,size,baseline_cycles") || !contains(s, "fir,") {
		t.Errorf("Table1CSV malformed:\n%s", s)
	}
	f2, err := Fig2(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s := Fig2CSV(f2); !contains(s, "kernel,variant,cycles,speedup") {
		t.Error("Fig2CSV malformed")
	}
	f3, err := Fig3(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s := Fig3CSV(f3); !contains(s, "simd_width") {
		t.Error("Fig3CSV malformed")
	}
	f4, err := Fig4(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s := Fig4CSV(f4); !contains(s, "mem_cost") {
		t.Error("Fig4CSV malformed")
	}
	t2, err := Table2(p)
	if err != nil {
		t.Fatal(err)
	}
	if s := Table2CSV(t2); !contains(s, "baseline_size") {
		t.Error("Table2CSV malformed")
	}
	t3, err := Table3(p)
	if err != nil {
		t.Fatal(err)
	}
	if s := Table3CSV(t3); !contains(s, "vectorized_loops") {
		t.Error("Table3CSV malformed")
	}
}

// TestShippedKernelSourcesInSync keeps benchmarks/*.m aligned with the
// embedded kernel sources (regenerate with `go run ./cmd/benchsrc`).
func TestShippedKernelSourcesInSync(t *testing.T) {
	for _, k := range Kernels() {
		path := filepath.Join("..", "..", "benchmarks", k.Name+".m")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v (run `go run ./cmd/benchsrc`)", path, err)
			continue
		}
		if !strings.Contains(string(data), k.Source) {
			t.Errorf("%s out of sync with the embedded kernel (run `go run ./cmd/benchsrc`)", path)
		}
	}
}
