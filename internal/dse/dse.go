package dse

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	mat2c "mat2c"
	"mat2c/internal/bench"
)

// Options tunes one exploration run.
type Options struct {
	// Jobs bounds the worker pool (default: NumCPU).
	Jobs int
	// Scale multiplies the kernels' default problem sizes
	// (default 0.25: large enough to separate variants, small enough
	// to sweep hundreds of candidates).
	Scale float64
	// Kernels restricts the benchmark suite to the named kernels
	// (default: the full suite).
	Kernels []string
	// Cache is the shared compilation cache; nil allocates a private
	// one. Passing the service's cache lets identical sweeps hit.
	Cache *mat2c.Cache
	// EmitC additionally generates the ANSI C artifacts (slower;
	// off for pure cycle-model scoring).
	EmitC bool
	// OnVariant, when set, is called once per evaluated variant as
	// results complete (from worker goroutines; must be safe for
	// concurrent use).
	OnVariant func(VariantResult)
}

func (o Options) withDefaults() Options {
	if o.Jobs <= 0 {
		o.Jobs = runtime.NumCPU()
	}
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	return o
}

// VariantResult is one variant's evaluation.
type VariantResult struct {
	Name         string `json:"name"`
	SIMDWidth    int    `json:"simd_width"`
	ComplexLanes int    `json:"complex_lanes"`
	// Groups is the custom-instruction group subset the variant keeps.
	Groups  []string `json:"groups"`
	CostSet string   `json:"cost_set,omitempty"`
	// Instructions counts the variant's custom instructions; ISACost
	// is the instruction-set cost proxy (instruction count plus the
	// sum of per-instruction cycle costs) — a stand-in for the silicon
	// the instructions would occupy.
	Instructions int `json:"instructions"`
	ISACost      int `json:"isa_cost"`
	// TotalCycles sums the simulated cycle counts over the kernel
	// suite; KernelCycles breaks them out per kernel.
	TotalCycles  int64            `json:"total_cycles"`
	KernelCycles map[string]int64 `json:"kernel_cycles,omitempty"`
	// CodeSize sums static VM instruction counts over the suite.
	CodeSize int `json:"code_size"`
	// CacheLookups counts kernel compilations attempted through the
	// cache; CacheHits counts how many were served from it.
	CacheLookups int `json:"cache_lookups"`
	CacheHits    int `json:"cache_hits"`
	// Pareto marks frontier members: no other variant is at least as
	// good on both objectives (TotalCycles, ISACost) and better on one.
	Pareto bool   `json:"pareto"`
	Error  string `json:"error,omitempty"`
}

// Report is the machine-readable result of an exploration run.
type Report struct {
	Base     string          `json:"base"`
	Scale    float64         `json:"scale"`
	Jobs     int             `json:"jobs"`
	Kernels  []string        `json:"kernels"`
	Variants []VariantResult `json:"variants"`
	// Frontier lists Pareto-optimal variant names ordered by total
	// cycles ascending (fastest first).
	Frontier []string `json:"frontier"`
	// CacheLookups/CacheHits aggregate compile-cache traffic for the
	// run; hits > 0 on a repeated sweep is the cache working.
	CacheLookups uint64 `json:"cache_lookups"`
	CacheHits    uint64 `json:"cache_hits"`
	ElapsedUS    int64  `json:"elapsed_us"`
}

// selectKernels resolves the kernel subset, defaulting to the suite.
func selectKernels(names []string) ([]*bench.Kernel, error) {
	if len(names) == 0 {
		return bench.Kernels(), nil
	}
	var out []*bench.Kernel
	for _, n := range names {
		k := bench.KernelByName(n)
		if k == nil {
			return nil, fmt.Errorf("dse: unknown kernel %q", n)
		}
		out = append(out, k)
	}
	return out, nil
}

// ValidateKernels checks a kernel-subset selection without running
// anything (for request validation in front ends).
func ValidateKernels(names []string) error {
	_, err := selectKernels(names)
	return err
}

// EvalVariantContext evaluates one enumerated variant against the
// kernel subset named by opts — exactly the per-variant step
// ExploreContext runs, exported as the work-unit entry point for
// sharded (fleet) execution. Because a sharded sweep evaluates each
// variant through this same function, its per-variant results are
// byte-identical to the single-process run's.
func EvalVariantContext(ctx context.Context, v *Variant, opts Options) (VariantResult, error) {
	opts = opts.withDefaults()
	kernels, err := selectKernels(opts.Kernels)
	if err != nil {
		return VariantResult{}, err
	}
	cache := opts.Cache
	if cache == nil {
		cache = mat2c.NewCache(0)
	}
	return evalVariant(ctx, v, kernels, opts, cache), nil
}

// evalVariant compiles and simulates every kernel against one variant,
// verifying each run against the kernel's Go reference. It observes ctx
// between kernels and inside compile/simulate, so a cancelled sweep
// abandons the variant quickly.
func evalVariant(ctx context.Context, v *Variant, kernels []*bench.Kernel, opts Options, cache *mat2c.Cache) VariantResult {
	vr := VariantResult{
		Name:         v.Proc.Name,
		SIMDWidth:    v.Proc.SIMDWidth,
		ComplexLanes: v.Proc.ComplexLanes,
		Groups:       v.Groups,
		CostSet:      v.CostSet,
		Instructions: len(v.Proc.Instructions),
		KernelCycles: make(map[string]int64, len(kernels)),
	}
	for i := range v.Proc.Instructions {
		// IssueCost, not the literal Cycles: instructions deferring to a
		// cost class are priced by the variant's cost table.
		vr.ISACost += 1 + v.Proc.IssueCost(&v.Proc.Instructions[i])
	}
	for _, k := range kernels {
		if err := ctx.Err(); err != nil {
			vr.Error = fmt.Sprintf("%s: cancelled: %v", k.Name, err)
			return vr
		}
		n := bench.SizeFor(k, opts.Scale)
		vr.CacheLookups++
		res, hit, err := mat2c.CompileCachedContext(ctx, cache, k.Source, k.Entry, k.Params,
			mat2c.Options{Processor: v.Proc, SkipC: !opts.EmitC})
		if err != nil {
			vr.Error = fmt.Sprintf("%s: compile: %v", k.Name, err)
			return vr
		}
		if hit {
			vr.CacheHits++
		}
		args := k.Inputs(n)
		want := k.Reference(bench.CloneArgs(args))
		out, stats, err := res.RunWithStatsContext(ctx, bench.CloneArgs(args)...)
		if err != nil {
			vr.Error = fmt.Sprintf("%s: run: %v", k.Name, err)
			return vr
		}
		if err := bench.Verify(out, want); err != nil {
			vr.Error = fmt.Sprintf("%s: verify: %v", k.Name, err)
			return vr
		}
		vr.KernelCycles[k.Name] = stats.Cycles
		vr.TotalCycles += stats.Cycles
		vr.CodeSize += res.CodeSize()
	}
	return vr
}

// Explore evaluates every variant of every sweep on a bounded worker
// pool and returns the scored report. Sweeps over different bases
// merge into one variant list (and one frontier); duplicate machines
// across sweeps are pruned.
func Explore(sweeps []*Sweep, opts Options) (*Report, error) {
	return ExploreContext(context.Background(), sweeps, opts)
}

// EnumerateAll expands every sweep and deduplicates variants across
// them in deterministic order, returning the variants with the sweeps'
// base names. It is the enumeration step shared by ExploreContext and
// the fleet coordinator's shard planner, so both agree on variant
// identity and order.
func EnumerateAll(ctx context.Context, sweeps []*Sweep) ([]*Variant, []string, error) {
	var variants []*Variant
	var bases []string
	seen := map[string]bool{}
	for _, sw := range sweeps {
		vs, err := sw.EnumerateContext(ctx)
		if err != nil {
			return nil, nil, err
		}
		base := sw.Base
		if base == "" {
			base = "dspasip"
		}
		bases = append(bases, base)
		for _, v := range vs {
			key, err := contentKey(v.Proc)
			if err != nil {
				return nil, nil, err
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			variants = append(variants, v)
		}
	}
	if len(variants) == 0 {
		return nil, nil, fmt.Errorf("dse: no variants to explore")
	}
	return variants, bases, nil
}

// Assemble builds the final report from per-variant results in
// enumeration order — the merge step shared by ExploreContext and the
// fleet coordinator, so a sweep sharded across workers and merged here
// is byte-identical to single-process execution (the caller stamps
// ElapsedUS, which is wall time and never part of the identity).
func Assemble(bases []string, opts Options, results []VariantResult) (*Report, error) {
	opts = opts.withDefaults()
	kernels, err := selectKernels(opts.Kernels)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Base:     strings.Join(bases, ","),
		Scale:    opts.Scale,
		Jobs:     opts.Jobs,
		Variants: results,
	}
	for _, k := range kernels {
		rep.Kernels = append(rep.Kernels, k.Name)
	}
	for i := range results {
		rep.CacheLookups += uint64(results[i].CacheLookups)
		rep.CacheHits += uint64(results[i].CacheHits)
	}
	markFrontier(rep)
	return rep, nil
}

// ExploreContext is Explore under a cancellable context. Workers
// observe ctx between variants (and between kernels within a variant),
// so a cancelled sweep stops evaluating promptly; the partial work is
// discarded and the returned error unwraps to ctx.Err().
func ExploreContext(ctx context.Context, sweeps []*Sweep, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	begin := time.Now()

	variants, bases, err := EnumerateAll(ctx, sweeps)
	if err != nil {
		return nil, err
	}
	kernels, err := selectKernels(opts.Kernels)
	if err != nil {
		return nil, err
	}
	cache := opts.Cache
	if cache == nil {
		cache = mat2c.NewCache(0)
	}

	results := make([]VariantResult, len(variants))
	var evaluated atomic.Int64
	var wg sync.WaitGroup
	idx := make(chan int)
	workers := opts.Jobs
	if workers > len(variants) {
		workers = len(variants)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Drain without evaluating once the sweep is cancelled so
				// every queued variant is skipped, not just unqueued ones.
				if ctx.Err() != nil {
					continue
				}
				results[i] = evalVariant(ctx, variants[i], kernels, opts, cache)
				evaluated.Add(1)
				if opts.OnVariant != nil {
					opts.OnVariant(results[i])
				}
			}
		}()
	}
feed:
	for i := range variants {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dse: exploration cancelled after %d of %d variants: %w",
			evaluated.Load(), len(variants), err)
	}

	rep, err := Assemble(bases, opts, results)
	if err != nil {
		return nil, err
	}
	rep.ElapsedUS = time.Since(begin).Microseconds()
	return rep, nil
}

// ExploreSweep explores a single sweep.
func ExploreSweep(sw *Sweep, opts Options) (*Report, error) {
	return Explore([]*Sweep{sw}, opts)
}

// ExploreSweepContext explores a single sweep under a cancellable
// context.
func ExploreSweepContext(ctx context.Context, sw *Sweep, opts Options) (*Report, error) {
	return ExploreContext(ctx, []*Sweep{sw}, opts)
}

// dominates reports whether a is at least as good as b on both
// objectives and strictly better on one (both minimized).
func dominates(a, b *VariantResult) bool {
	if a.TotalCycles > b.TotalCycles || a.ISACost > b.ISACost {
		return false
	}
	return a.TotalCycles < b.TotalCycles || a.ISACost < b.ISACost
}

// markFrontier sets Pareto on every non-dominated successful variant
// and fills Report.Frontier fastest-first.
func markFrontier(rep *Report) {
	var frontier []*VariantResult
	for i := range rep.Variants {
		a := &rep.Variants[i]
		if a.Error != "" {
			continue
		}
		dominated := false
		for j := range rep.Variants {
			b := &rep.Variants[j]
			if i == j || b.Error != "" {
				continue
			}
			if dominates(b, a) {
				dominated = true
				break
			}
		}
		if !dominated {
			a.Pareto = true
			frontier = append(frontier, a)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i].TotalCycles != frontier[j].TotalCycles {
			return frontier[i].TotalCycles < frontier[j].TotalCycles
		}
		return frontier[i].ISACost < frontier[j].ISACost
	})
	rep.Frontier = make([]string, len(frontier))
	for i, v := range frontier {
		rep.Frontier[i] = v.Name
	}
}
