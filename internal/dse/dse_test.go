package dse

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	mat2c "mat2c"
)

func TestEnumerateDefaultSweep(t *testing.T) {
	sw := &Sweep{}
	vs, err := sw.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) < 24 {
		t.Fatalf("default sweep enumerates %d variants, want >= 24", len(vs))
	}
	// Deduplicated: no two variants may describe the same machine.
	seen := map[string]string{}
	names := map[string]bool{}
	for _, v := range vs {
		key, err := contentKey(v.Proc)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("variants %s and %s describe the same machine", prev, v.Proc.Name)
		}
		seen[key] = v.Proc.Name
		if names[v.Proc.Name] {
			t.Errorf("duplicate variant name %s", v.Proc.Name)
		}
		names[v.Proc.Name] = true
		// Every variant passed Validate inside Derive; spot-check the
		// invariants the pruning is responsible for.
		if v.Proc.SIMDWidth < 2 {
			for _, in := range v.Proc.Instructions {
				if strings.HasPrefix(in.Name, "v") {
					t.Errorf("%s: vector instruction %s on scalar variant", v.Proc.Name, in.Name)
				}
			}
		}
	}
	// Deterministic order.
	vs2, err := sw.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != len(vs2) {
		t.Fatalf("enumeration not deterministic: %d vs %d variants", len(vs), len(vs2))
	}
	for i := range vs {
		if vs[i].Proc.Name != vs2[i].Proc.Name {
			t.Fatalf("enumeration order changed at %d: %s vs %s", i, vs[i].Proc.Name, vs2[i].Proc.Name)
		}
	}
}

func TestEnumerateRewritesVectorIntrinsicNames(t *testing.T) {
	sw := &Sweep{Widths: []int{8}, Complex: []bool{true}, Groups: [][]string{{"mac", "cmplx"}}}
	vs, err := sw.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("got %d variants, want 1", len(vs))
	}
	p := vs[0].Proc
	if in := p.Instr("vfma"); in == nil || in.CName != "_asip_vfma8" {
		t.Errorf("vfma intrinsic not re-widened: %+v", in)
	}
	if in := p.Instr("vcmul"); in == nil || in.CName != "_asip_vcmul4" {
		t.Errorf("vcmul intrinsic not re-widened: %+v", in)
	}
	if in := p.Instr("fma"); in == nil || in.CName != "_asip_fma" {
		t.Errorf("scalar intrinsic name changed: %+v", in)
	}
}

func TestEnumerateCostOverrides(t *testing.T) {
	sw := &Sweep{
		Widths:  []int{4},
		Complex: []bool{true},
		Groups:  [][]string{{"mac", "cmplx", "sad", "stride"}},
		Costs: []CostOverride{
			{},
			{Name: "slowmem", Costs: map[string]int{"load": 8, "store": 8}},
		},
	}
	vs, err := sw.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d variants, want 2", len(vs))
	}
	if vs[1].Proc.Cost("load") != 8 {
		t.Errorf("cost override not applied: load=%d", vs[1].Proc.Cost("load"))
	}
	if vs[0].Proc.Cost("load") == 8 {
		t.Error("cost override leaked into the base-cost variant")
	}
	// Unknown cost classes must fail enumeration via Validate.
	bad := &Sweep{Widths: []int{4}, Complex: []bool{true},
		Groups: [][]string{{"mac"}},
		Costs:  []CostOverride{{Name: "bad", Costs: map[string]int{"nosuch": 1}}}}
	if _, err := bad.Enumerate(); err == nil {
		t.Error("enumeration accepted an unknown cost class")
	}
}

func TestParseSweepRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSweep([]byte(`{"widhts": [1, 2]}`)); err == nil {
		t.Error("ParseSweep accepted a misspelled axis name")
	}
	sw, err := ParseSweep([]byte(`{"base": "dspasip", "widths": [2, 4], "max_variants": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if sw.MaxVariants != 3 || len(sw.Widths) != 2 {
		t.Errorf("sweep not decoded: %+v", sw)
	}
}

// smokeSweep is the acceptance-criteria sweep: >= 24 variants covering
// scalar-equivalent through wide-SIMD-with-complex-ISA machines.
func smokeSweep() *Sweep {
	return &Sweep{
		Base:    "dspasip",
		Widths:  []int{1, 2, 4, 8, 16},
		Complex: []bool{true, false},
		Groups: [][]string{
			nil,
			{"mac"},
			{"cmplx"},
			{"mac", "cmplx"},
			{"mac", "cmplx", "sad", "stride"},
		},
	}
}

// TestSmokeSweep is the PR's acceptance run: a >= 24 variant sweep over
// the FIR and complex-FIR (QAM matched-filter) kernels completes, emits
// a JSON Pareto frontier, ranks a wide-SIMD+complex variant ahead of
// the scalar-equivalent variant, and reports cache hits on the second
// identical sweep.
func TestSmokeSweep(t *testing.T) {
	cache := mat2c.NewCache(1024)
	opts := Options{Jobs: 4, Scale: 0.1, Kernels: []string{"fir", "cfir"}, Cache: cache}
	rep, err := ExploreSweep(smokeSweep(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Variants) < 24 {
		t.Fatalf("smoke sweep evaluated %d variants, want >= 24", len(rep.Variants))
	}
	for _, v := range rep.Variants {
		if v.Error != "" {
			t.Fatalf("variant %s failed: %s", v.Name, v.Error)
		}
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("empty Pareto frontier")
	}

	// The JSON report round-trips.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Error("report changed across a JSON round-trip")
	}

	// Paper direction: a wide-SIMD machine with the complex ISA beats
	// the scalar-equivalent machine on both kernels.
	find := func(pred func(*VariantResult) bool) *VariantResult {
		for i := range rep.Variants {
			if pred(&rep.Variants[i]) {
				return &rep.Variants[i]
			}
		}
		return nil
	}
	hasGroup := func(v *VariantResult, g string) bool {
		for _, x := range v.Groups {
			if x == g {
				return true
			}
		}
		return false
	}
	wide := find(func(v *VariantResult) bool {
		return v.SIMDWidth >= 8 && v.ComplexLanes >= 4 && hasGroup(v, "cmplx") && hasGroup(v, "mac")
	})
	scalar := find(func(v *VariantResult) bool {
		return v.SIMDWidth == 1 && len(v.Groups) == 0
	})
	if wide == nil || scalar == nil {
		t.Fatalf("sweep missing anchor variants (wide=%v scalar=%v)", wide, scalar)
	}
	for _, k := range []string{"fir", "cfir"} {
		if wide.KernelCycles[k] >= scalar.KernelCycles[k] {
			t.Errorf("%s: wide variant %s (%d cycles) not faster than scalar %s (%d cycles)",
				k, wide.Name, wide.KernelCycles[k], scalar.Name, scalar.KernelCycles[k])
		}
	}
	if wide.TotalCycles >= scalar.TotalCycles {
		t.Errorf("wide variant not ranked ahead of scalar: %d vs %d cycles",
			wide.TotalCycles, scalar.TotalCycles)
	}

	// The frontier keeps the cheapest-ISA end of the trade-off: some
	// minimum-ISA-cost variant must survive even though it is slow.
	// (The width-1 machine itself may be dominated by a wider machine
	// with the same empty custom ISA.)
	minCost := rep.Variants[0].ISACost
	for i := range rep.Variants {
		if rep.Variants[i].ISACost < minCost {
			minCost = rep.Variants[i].ISACost
		}
	}
	cheapOnFrontier := false
	for i := range rep.Variants {
		if rep.Variants[i].Pareto && rep.Variants[i].ISACost == minCost {
			cheapOnFrontier = true
		}
	}
	if !cheapOnFrontier {
		t.Errorf("no minimum-ISA-cost (%d) variant on the frontier", minCost)
	}

	// Second identical sweep through the same cache: every compile hits.
	rep2, err := ExploreSweep(smokeSweep(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits == 0 {
		t.Error("second identical sweep reported no cache hits")
	}
	if rep2.CacheHits != rep2.CacheLookups {
		t.Errorf("second sweep: %d/%d lookups hit, want all", rep2.CacheHits, rep2.CacheLookups)
	}
	// Identical sweeps must agree on scores (cycle model is
	// deterministic and cached results are shared).
	if rep2.Frontier[0] != rep.Frontier[0] {
		t.Errorf("frontier changed across identical sweeps: %s vs %s", rep.Frontier[0], rep2.Frontier[0])
	}
}

func TestExploreRejectsUnknownKernel(t *testing.T) {
	_, err := ExploreSweep(&Sweep{Widths: []int{1}, Complex: []bool{false}, Groups: [][]string{nil}},
		Options{Kernels: []string{"nosuch"}})
	if err == nil {
		t.Error("Explore accepted an unknown kernel name")
	}
}

func TestReportTextAndCSV(t *testing.T) {
	rep, err := ExploreSweep(&Sweep{
		Widths: []int{1, 4}, Complex: []bool{true},
		Groups: [][]string{nil, {"mac", "cmplx"}},
	}, Options{Jobs: 2, Scale: 0.05, Kernels: []string{"fir"}})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Text()
	for _, want := range []string{"Pareto frontier", "variant", "cycles"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
	csv := rep.CSV()
	if !strings.HasPrefix(csv, "variant,simd_width,") {
		t.Errorf("csv header malformed:\n%s", csv)
	}
	if !strings.Contains(csv, ",cycles_fir") {
		t.Errorf("csv missing kernel column:\n%s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(rep.Variants) {
		t.Errorf("csv has %d lines, want %d", len(lines), 1+len(rep.Variants))
	}
}

// TestReportSchemaRoundTrip pins the asipdse -json format: a report
// decodes into the typed struct with no unknown fields and re-encodes
// to the same document, so downstream tooling can rely on it.
func TestReportSchemaRoundTrip(t *testing.T) {
	rep := &Report{
		Base: "dspasip", Scale: 0.25, Jobs: 2,
		Kernels: []string{"fir"},
		Variants: []VariantResult{{
			Name: "dspasip-w4-cl2-mac", SIMDWidth: 4, ComplexLanes: 2,
			Groups: []string{"mac"}, CostSet: "slowmem",
			Instructions: 2, ISACost: 4, TotalCycles: 1234,
			KernelCycles: map[string]int64{"fir": 1234},
			CodeSize:     56, CacheLookups: 1, CacheHits: 1, Pareto: true,
		}},
		Frontier:     []string{"dspasip-w4-cl2-mac"},
		CacheLookups: 1, CacheHits: 1, ElapsedUS: 99,
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip changed the report:\nbefore %+v\nafter  %+v", rep, back)
	}
	// Every struct field reaches the document (no silently dropped
	// fields): encode and check the raw keys.
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"base", "scale", "jobs", "kernels", "variants", "frontier",
		"cache_lookups", "cache_hits", "elapsed_us"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report JSON missing key %q", key)
		}
	}
	variant := doc["variants"].([]interface{})[0].(map[string]interface{})
	for _, key := range []string{"name", "simd_width", "complex_lanes", "groups", "cost_set",
		"instructions", "isa_cost", "total_cycles", "kernel_cycles", "code_size",
		"cache_lookups", "cache_hits", "pareto"} {
		if _, ok := variant[key]; !ok {
			t.Errorf("variant JSON missing key %q", key)
		}
	}
}

func TestEnumerateISXSeed(t *testing.T) {
	sw := &Sweep{
		Base:    "scalar",
		Widths:  []int{1},
		Complex: []bool{false},
		ISX:     &ISXSeed{Kernels: []string{"fir"}, Top: 2},
	}
	vs, err := sw.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	seeded := 0
	for _, v := range vs {
		if v.Proc.HasInstr("isx0") {
			seeded++
			for _, g := range v.Groups {
				if g == "isx" {
					goto grouped
				}
			}
			t.Errorf("variant %s carries isx0 but not the isx group (%v)", v.Proc.Name, v.Groups)
		grouped:
		}
	}
	if seeded == 0 {
		t.Fatalf("no seeded variant carries a mined instruction; got %d variants", len(vs))
	}
}

// An ISX-seeded sweep of a plain scalar machine must put a mined
// variant on the Pareto frontier ahead of the bare base: the mined
// instructions trade a little ISA cost for measured cycles.
func TestExploreISXSeedImproves(t *testing.T) {
	sw := &Sweep{
		Base:    "scalar",
		Widths:  []int{1},
		Complex: []bool{false},
		ISX:     &ISXSeed{Kernels: []string{"cfir"}, Top: 1, Scale: 0.1},
	}
	rep, err := ExploreSweep(sw, Options{Jobs: 2, Scale: 0.1, Kernels: []string{"cfir"}})
	if err != nil {
		t.Fatal(err)
	}
	var base, mined *VariantResult
	for i := range rep.Variants {
		v := &rep.Variants[i]
		if v.Error != "" {
			t.Fatalf("variant %s failed: %s", v.Name, v.Error)
		}
		if v.Instructions == 0 {
			base = v
		} else if strings.Contains(v.Name, "isx") && (mined == nil || v.TotalCycles < mined.TotalCycles) {
			mined = v
		}
	}
	if base == nil || mined == nil {
		t.Fatalf("missing base or mined variant in %d results", len(rep.Variants))
	}
	if mined.TotalCycles >= base.TotalCycles {
		t.Errorf("mined variant %s (%d cycles) does not beat base (%d cycles)",
			mined.Name, mined.TotalCycles, base.TotalCycles)
	}
}
