package dse

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	mat2c "mat2c"
	"mat2c/internal/bench"
)

// stressSweep enumerates >= 32 variants for the cache-contention test.
func stressSweep() *Sweep {
	return &Sweep{
		Base:    "dspasip",
		Widths:  []int{1, 2, 4, 8, 16},
		Complex: []bool{true, false},
		Groups: [][]string{
			nil,
			{"mac"},
			{"sad"},
			{"cmplx"},
			{"mac", "cmplx"},
			{"mac", "sad", "stride"},
			{"mac", "cmplx", "sad", "stride"},
		},
	}
}

// TestStressSharedCache drives a DSE sweep through a deliberately small
// shared cache with 8 workers (run under -race in CI): eviction and
// hit/miss counters must stay consistent under contention, and
// compiling the same variant twice must produce byte-identical C
// artifacts.
func TestStressSharedCache(t *testing.T) {
	sw := stressSweep()
	vs, err := sw.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) < 32 {
		t.Fatalf("stress sweep enumerates %d variants, want >= 32", len(vs))
	}

	// Small enough that the sweep's distinct (variant, kernel) keys
	// overflow it and force evictions.
	cache := mat2c.NewCache(8)
	var observed int64
	opts := Options{
		Jobs: 8, Scale: 0.05, Kernels: []string{"fir", "cfir"}, Cache: cache,
		OnVariant: func(VariantResult) { atomic.AddInt64(&observed, 1) },
	}
	rep, err := ExploreSweep(sw, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Variants {
		if v.Error != "" {
			t.Fatalf("variant %s failed: %s", v.Name, v.Error)
		}
	}
	if got := atomic.LoadInt64(&observed); got != int64(len(rep.Variants)) {
		t.Errorf("OnVariant fired %d times for %d variants", got, len(rep.Variants))
	}

	// Run the sweep again through the same (thrashing) cache to mix
	// hits, misses, and evictions, then audit the counters.
	rep2, err := ExploreSweep(sw, opts)
	if err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	totalLookups := rep.CacheLookups + rep2.CacheLookups
	if stats.Hits+stats.Misses != totalLookups {
		t.Errorf("cache counters inconsistent: hits %d + misses %d != lookups %d",
			stats.Hits, stats.Misses, totalLookups)
	}
	if stats.Entries > stats.MaxEntries {
		t.Errorf("cache holds %d entries, cap %d", stats.Entries, stats.MaxEntries)
	}
	if stats.Evictions == 0 {
		t.Errorf("no evictions from a %d-entry cache after %d lookups over %d variants",
			stats.MaxEntries, totalLookups, len(rep.Variants))
	}
	if stats.Evictions > stats.Misses {
		t.Errorf("more evictions (%d) than insertions could allow (misses %d)",
			stats.Evictions, stats.Misses)
	}

	// Byte-identical artifacts: compile a spread of variants twice each,
	// concurrently, with C emission on, and diff every artifact.
	picks := []int{0, len(vs) / 3, 2 * len(vs) / 3, len(vs) - 1}
	k := bench.KernelByName("fir")
	type artifacts struct{ c, h, asm string }
	build := func(i int) artifacts {
		res, err := mat2c.Compile(k.Source, k.Entry, k.Params,
			mat2c.Options{Processor: vs[i].Proc})
		if err != nil {
			t.Errorf("compile %s: %v", vs[i].Proc.Name, err)
			return artifacts{}
		}
		return artifacts{c: res.CSource(), h: res.CHeader(), asm: res.Disasm()}
	}
	var wg sync.WaitGroup
	got := make([][2]artifacts, len(picks))
	for pi, i := range picks {
		wg.Add(1)
		go func(pi, i int) {
			defer wg.Done()
			got[pi] = [2]artifacts{build(i), build(i)}
		}(pi, i)
	}
	wg.Wait()
	for pi, pair := range got {
		name := vs[picks[pi]].Proc.Name
		if pair[0].c == "" {
			continue // compile already reported
		}
		if !bytes.Equal([]byte(pair[0].c), []byte(pair[1].c)) {
			t.Errorf("%s: C source differs across identical compiles", name)
		}
		if !bytes.Equal([]byte(pair[0].h), []byte(pair[1].h)) {
			t.Errorf("%s: C header differs across identical compiles", name)
		}
		if !bytes.Equal([]byte(pair[0].asm), []byte(pair[1].asm)) {
			t.Errorf("%s: disassembly differs across identical compiles", name)
		}
	}
}
