package dse

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteJSON emits the report as indented JSON (the asipdse -json and
// service /dse result format).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseReport decodes a JSON report, rejecting unknown fields so
// downstream tooling notices schema drift.
func ParseReport(data []byte) (*Report, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("dse report: %w", err)
	}
	return &rep, nil
}

// sortedByCycles returns result indices ordered fastest-first, with
// failed variants last.
func (r *Report) sortedByCycles() []int {
	idx := make([]int, len(r.Variants))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		va, vb := &r.Variants[idx[a]], &r.Variants[idx[b]]
		if (va.Error == "") != (vb.Error == "") {
			return va.Error == ""
		}
		if va.TotalCycles != vb.TotalCycles {
			return va.TotalCycles < vb.TotalCycles
		}
		return va.ISACost < vb.ISACost
	})
	return idx
}

// Text renders the run as a ranked table plus the frontier summary.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design-space exploration over %s (scale %.2f, kernels: %s)\n",
		r.Base, r.Scale, strings.Join(r.Kernels, ","))
	fmt.Fprintf(&b, "%d variants, %d on the Pareto frontier; cache %d/%d hits\n\n",
		len(r.Variants), len(r.Frontier), r.CacheHits, r.CacheLookups)
	fmt.Fprintf(&b, "%-44s %5s %5s %6s %8s %12s %9s %s\n",
		"variant", "width", "lanes", "instrs", "isacost", "cycles", "codesize", "pareto")
	for _, i := range r.sortedByCycles() {
		v := &r.Variants[i]
		if v.Error != "" {
			fmt.Fprintf(&b, "%-44s ERROR %s\n", v.Name, v.Error)
			continue
		}
		mark := ""
		if v.Pareto {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-44s %5d %5d %6d %8d %12d %9d %s\n",
			v.Name, v.SIMDWidth, v.ComplexLanes, v.Instructions, v.ISACost,
			v.TotalCycles, v.CodeSize, mark)
	}
	b.WriteString("\nPareto frontier (fastest first):\n")
	for _, name := range r.Frontier {
		fmt.Fprintf(&b, "  %s\n", name)
	}
	return b.String()
}

// CSV renders one row per variant (kernel cycle columns in suite
// order) for plotting pipelines.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString("variant,simd_width,complex_lanes,groups,cost_set,instructions,isa_cost,total_cycles,code_size,pareto")
	for _, k := range r.Kernels {
		b.WriteString(",cycles_" + k)
	}
	b.WriteString("\n")
	for _, i := range r.sortedByCycles() {
		v := &r.Variants[i]
		if v.Error != "" {
			continue
		}
		fmt.Fprintf(&b, "%s,%d,%d,%s,%s,%d,%d,%d,%d,%v",
			v.Name, v.SIMDWidth, v.ComplexLanes, strings.Join(v.Groups, "+"),
			v.CostSet, v.Instructions, v.ISACost, v.TotalCycles, v.CodeSize, v.Pareto)
		for _, k := range r.Kernels {
			fmt.Fprintf(&b, ",%d", v.KernelCycles[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}
