// Package dse implements design-space exploration over generated
// processor variants: the loop ASIP papers close between compiler and
// architecture. A Sweep enumerates candidate processors derived from a
// base description (SIMD width, complex-lane configuration, custom-
// instruction subsets, cycle-cost overrides); the engine compiles and
// simulates the benchmark kernel suite against every candidate on a
// bounded worker pool — through the content-addressed compilation
// cache, so repeated sweeps and shared inputs never recompile — and
// scores each variant by total cycles against an instruction-set cost
// proxy, reporting the Pareto frontier.
package dse

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"mat2c/internal/isx"
	"mat2c/internal/pdesc"
)

// Sweep describes one axis-product of processor variants derived from
// a base description. Zero-valued fields select the default axis.
type Sweep struct {
	// Base is the base target: a built-in name, an embedded
	// description, or a JSON file path (default "dspasip").
	Base string `json:"base,omitempty"`
	// Widths is the SIMD-width axis (default 1, 2, 4, 8, 16).
	Widths []int `json:"widths,omitempty"`
	// Complex is the complex-lane axis: true derives variants with
	// width/2 complex lanes, false derives variants without complex
	// SIMD (default both).
	Complex []bool `json:"complex,omitempty"`
	// Groups lists explicit custom-instruction group subsets to sweep
	// (see InstrGroup). Empty selects the pruned power set of every
	// group present in the base description.
	Groups [][]string `json:"groups,omitempty"`
	// Costs is the cycle-cost override axis; each entry derives
	// variants with the named per-cost-class overrides applied on top
	// of the base cost table. Empty sweeps only the base costs.
	Costs []CostOverride `json:"costs,omitempty"`
	// MaxVariants caps the enumeration after pruning (0 = no cap).
	MaxVariants int `json:"max_variants,omitempty"`
	// ISX, when set, seeds the sweep with mined instruction-set
	// extensions: the isx miner profiles the kernel suite on the base
	// target and the enumeration additionally covers the base extended
	// with each mined candidate and with all of them together.
	ISX *ISXSeed `json:"isx,omitempty"`
}

// ISXSeed configures instruction-set-extension mining as a sweep axis.
type ISXSeed struct {
	// Kernels restricts the profiled kernels (default: full suite).
	Kernels []string `json:"kernels,omitempty"`
	// MaxNodes bounds the mined pattern size (default 4).
	MaxNodes int `json:"max_nodes,omitempty"`
	// Top bounds how many candidates seed the sweep (default 3 — each
	// candidate multiplies the enumeration).
	Top int `json:"top,omitempty"`
	// Scale sizes the profiled problems (default 0.25).
	Scale float64 `json:"scale,omitempty"`
}

// CostOverride is one point on the cycle-cost axis.
type CostOverride struct {
	Name  string         `json:"name"`
	Costs map[string]int `json:"costs"`
}

// LoadSweep reads a sweep specification from a JSON file, rejecting
// unknown fields so typos in axis names fail loudly.
func LoadSweep(path string) (*Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load sweep spec: %w", err)
	}
	return ParseSweep(data)
}

// ParseSweep decodes a JSON sweep specification.
func ParseSweep(data []byte) (*Sweep, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Sweep
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep spec: %w", err)
	}
	return &s, nil
}

// DefaultWidths is the default SIMD-width axis.
var DefaultWidths = []int{1, 2, 4, 8, 16}

// InstrGroup classifies a custom instruction into the functional-unit
// group it belongs to; the sweep's instruction-subset axis adds or
// removes whole groups, mirroring how an ASIP designer adds a
// functional unit and gets its scalar and vector forms together.
func InstrGroup(name string) string {
	base := strings.TrimPrefix(name, "v")
	if strings.HasPrefix(base, "isx") {
		return "isx"
	}
	switch base {
	case "fma", "fms":
		return "mac"
	case "sad":
		return "sad"
	case "cadd", "csub", "cmul", "cmac", "cconjmul":
		return "cmplx"
	case "lds", "clds":
		return "stride"
	default:
		return "misc"
	}
}

// Variant is one enumerated candidate processor.
type Variant struct {
	Proc    *pdesc.Processor
	Width   int
	Complex bool
	Groups  []string
	CostSet string
}

// groupsOf returns the sorted distinct instruction groups present in a
// description.
func groupsOf(p *pdesc.Processor) []string {
	seen := map[string]bool{}
	for _, in := range p.Instructions {
		seen[InstrGroup(in.Name)] = true
	}
	groups := make([]string, 0, len(seen))
	for g := range seen {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	return groups
}

// powerSet enumerates every subset of groups in deterministic bitmask
// order (the empty subset — no custom instructions — comes first).
func powerSet(groups []string) [][]string {
	out := make([][]string, 0, 1<<len(groups))
	for mask := 0; mask < 1<<len(groups); mask++ {
		var sub []string
		for i, g := range groups {
			if mask&(1<<i) != 0 {
				sub = append(sub, g)
			}
		}
		out = append(out, sub)
	}
	return out
}

// rewidth rewrites the lane-count suffix that vector intrinsic C names
// carry by convention (_asip_vfma4 → _asip_vfma8).
func rewidth(in pdesc.Instr, lanes int) pdesc.Instr {
	in.CName = strings.TrimRight(in.CName, "0123456789") + strconv.Itoa(lanes)
	return in
}

// patternIsComplex reports whether a semantics pattern lives in the
// complex base (mined complex-vector forms follow the complex lane
// count).
func patternIsComplex(sem string) bool { return strings.HasPrefix(sem, "complex:") }

// makeVariant derives one candidate from the base description, or
// returns an error when the point is invalid (pruned by the caller).
func makeVariant(base *pdesc.Processor, width int, useComplex bool, groups []string, cost CostOverride) (*Variant, error) {
	lanes := 0
	if useComplex {
		lanes = width / 2
	}
	want := map[string]bool{}
	for _, g := range groups {
		want[g] = true
	}
	groupTag := "none"
	if len(groups) > 0 {
		groupTag = strings.Join(groups, "+")
	}
	name := fmt.Sprintf("%s-w%d-cl%d-%s", base.Name, width, lanes, groupTag)
	if cost.Name != "" {
		name += "-" + cost.Name
	}
	proc, err := base.Derive(name, func(q *pdesc.Processor) {
		q.SIMDWidth = width
		q.ComplexLanes = lanes
		q.Description = fmt.Sprintf("DSE variant of %s (width %d, %d complex lanes, %s)",
			base.Name, width, lanes, groupTag)
		var instrs []pdesc.Instr
		for _, in := range base.Instructions {
			if !want[InstrGroup(in.Name)] {
				continue
			}
			if strings.HasPrefix(in.Name, "v") {
				// Vector forms follow the lane count they operate on:
				// complex-vector instructions need >= 2 complex lanes,
				// float-vector instructions >= 2 float lanes. Mined
				// vector instructions are lane-generic through their
				// semantics pattern and carry no width suffix.
				vl := width
				if strings.HasPrefix(in.Name, "vc") || (in.Semantics != "" && patternIsComplex(in.Semantics)) {
					vl = lanes
				}
				if vl < 2 {
					continue
				}
				if in.Semantics == "" {
					in = rewidth(in, vl)
				}
			}
			instrs = append(instrs, in)
		}
		q.Instructions = instrs
		if len(cost.Costs) > 0 {
			if q.Costs == nil {
				q.Costs = map[string]int{}
			}
			for k, v := range cost.Costs {
				q.Costs[k] = v
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return &Variant{Proc: proc, Width: width, Complex: useComplex, Groups: groups, CostSet: cost.Name}, nil
}

// contentKey fingerprints a variant by everything except its name, so
// sweep points that collapse to the same machine (e.g. complex lanes
// on a width-1 datapath) are pruned as duplicates.
func contentKey(p *pdesc.Processor) (string, error) {
	q := p.Clone()
	q.Name = "-"
	q.Description = ""
	data, err := json.Marshal(q)
	return string(data), err
}

// Enumerate expands the sweep into concrete, validated, deduplicated
// variants in deterministic order. A sweep with an ISX seed first mines
// instruction-set extensions from the base target's profiles and also
// enumerates the base extended with each mined candidate and with all
// of them together (identical machines are pruned).
func (s *Sweep) Enumerate() ([]*Variant, error) {
	return s.EnumerateContext(context.Background())
}

// EnumerateContext is Enumerate under a cancellable context (the ISX
// mining seed compiles and simulates, so it can take a while).
func (s *Sweep) EnumerateContext(ctx context.Context) ([]*Variant, error) {
	baseName := s.Base
	if baseName == "" {
		baseName = "dspasip"
	}
	base, err := pdesc.Resolve(baseName)
	if err != nil {
		return nil, fmt.Errorf("dse: sweep base: %w", err)
	}
	bases := []*pdesc.Processor{base}
	if s.ISX != nil {
		exts, err := isxBases(ctx, base, s.ISX)
		if err != nil {
			return nil, err
		}
		bases = append(bases, exts...)
	}
	widths := s.Widths
	if len(widths) == 0 {
		widths = DefaultWidths
	}
	complexAxis := s.Complex
	if len(complexAxis) == 0 {
		complexAxis = []bool{true, false}
	}
	costSets := s.Costs
	if len(costSets) == 0 {
		costSets = []CostOverride{{}}
	}

	seen := map[string]bool{}
	var out []*Variant
	for _, b := range bases {
		groupSets := s.Groups
		if len(groupSets) == 0 {
			groupSets = powerSet(groupsOf(b))
		}
		for _, w := range widths {
			for _, cx := range complexAxis {
				for _, gs := range groupSets {
					groups := append([]string(nil), gs...)
					sort.Strings(groups)
					for _, cs := range costSets {
						v, err := makeVariant(b, w, cx, groups, cs)
						if err != nil {
							// Invalid point (e.g. non-positive width from a bad
							// spec): surface spec errors, prune model conflicts.
							if w < 1 {
								return nil, fmt.Errorf("dse: width axis: %w", err)
							}
							continue
						}
						key, err := contentKey(v.Proc)
						if err != nil {
							return nil, err
						}
						if seen[key] {
							continue
						}
						seen[key] = true
						out = append(out, v)
						if s.MaxVariants > 0 && len(out) >= s.MaxVariants {
							return out, nil
						}
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dse: sweep enumerates no variants")
	}
	return out, nil
}

// isxBases mines extensions from the base target and returns the
// seeded bases: base+candidate for each mined candidate and, when more
// than one was mined, base+all.
func isxBases(ctx context.Context, base *pdesc.Processor, seed *ISXSeed) ([]*pdesc.Processor, error) {
	top := seed.Top
	if top <= 0 {
		top = 3
	}
	rep, err := isx.MineContext(ctx, base, isx.Options{
		Kernels:  seed.Kernels,
		MaxNodes: seed.MaxNodes,
		Top:      top,
		Scale:    seed.Scale,
		NoVerify: true, // the sweep itself measures every seeded variant
	})
	if err != nil {
		return nil, fmt.Errorf("dse: isx seed: %w", err)
	}
	var out []*pdesc.Processor
	for _, c := range rep.Candidates {
		p, err := isx.Extend(base, base.Name+"+"+c.Name, c)
		if err != nil {
			return nil, fmt.Errorf("dse: isx seed %s: %w", c.Name, err)
		}
		out = append(out, p)
	}
	if len(rep.Candidates) > 1 {
		p, err := isx.Extend(base, base.Name+"+isxall", rep.Candidates...)
		if err != nil {
			return nil, fmt.Errorf("dse: isx seed all: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
