package vm

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
)

// bitsEqResults compares two result sets for exact bit equality (both
// engines share the same operand semantics in the same order, so even
// NaN payloads and signed zeros must match).
func bitsEqC(a, b complex128) bool {
	return math.Float64bits(real(a)) == math.Float64bits(real(b)) &&
		math.Float64bits(imag(a)) == math.Float64bits(imag(b))
}

func bitsEqResults(t *testing.T, ref, got []interface{}) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("result count: reference %d, prepared %d", len(ref), len(got))
	}
	for i := range ref {
		switch x := ref[i].(type) {
		case int64:
			if x != got[i].(int64) {
				t.Errorf("result %d: reference %v, prepared %v", i, x, got[i])
			}
		case float64:
			if math.Float64bits(x) != math.Float64bits(got[i].(float64)) {
				t.Errorf("result %d: reference %v, prepared %v", i, x, got[i])
			}
		case complex128:
			if !bitsEqC(x, got[i].(complex128)) {
				t.Errorf("result %d: reference %v, prepared %v", i, x, got[i])
			}
		case *ir.Array:
			y := got[i].(*ir.Array)
			if x.Rows != y.Rows || x.Cols != y.Cols || x.Elem != y.Elem {
				t.Fatalf("result %d: shape %dx%d vs %dx%d", i, x.Rows, x.Cols, y.Rows, y.Cols)
			}
			for j := 0; j < x.Len(); j++ {
				if !bitsEqC(x.At(j), y.At(j)) {
					t.Fatalf("result %d element %d: reference %v, prepared %v", i, j, x.At(j), y.At(j))
				}
			}
		default:
			t.Fatalf("result %d: unexpected type %T", i, ref[i])
		}
	}
}

func runEngine(prog *Program, p *pdesc.Processor, engine string, maxCycles int64, args []interface{}) (*Machine, []interface{}, error) {
	m := NewMachine(p)
	m.Engine = engine
	m.MaxCycles = maxCycles
	out, err := m.Run(prog, cloneArgs(args)...)
	return m, out, err
}

// assertEnginesAgree runs prog on every engine and requires identical
// Cycles, Executed, ClassCounts, outputs, and error strings (fault
// messages include the pc, so fault locations must match too), using
// the reference interpreter as the oracle.
func assertEnginesAgree(t *testing.T, prog *Program, p *pdesc.Processor, maxCycles int64, args []interface{}) {
	t.Helper()
	mr, outR, errR := runEngine(prog, p, EngineReference, maxCycles, args)
	for _, engine := range []string{EnginePrepared, EngineCompiled} {
		mp, outP, errP := runEngine(prog, p, engine, maxCycles, args)
		if (errR == nil) != (errP == nil) {
			t.Fatalf("error mismatch: reference %v, %s %v", errR, engine, errP)
		}
		if errR != nil && errR.Error() != errP.Error() {
			t.Fatalf("error text mismatch:\n  reference: %v\n  %s:  %v", errR, engine, errP)
		}
		if mr.Cycles != mp.Cycles {
			t.Errorf("Cycles: reference %d, %s %d", mr.Cycles, engine, mp.Cycles)
		}
		if mr.Executed != mp.Executed {
			t.Errorf("Executed: reference %d, %s %d", mr.Executed, engine, mp.Executed)
		}
		if !reflect.DeepEqual(mr.ClassCounts, mp.ClassCounts) {
			t.Errorf("ClassCounts (%s):\n  reference %v\n  got       %v", engine, mr.ClassCounts, mp.ClassCounts)
		}
		if errR == nil {
			bitsEqResults(t, outR, outP)
		}
	}
}

// TestEngineEquivalence runs the full kernel battery on both engines
// across targets, optimization levels, and sizes, requiring bit-exact
// agreement on every observable.
func TestEngineEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	kernels := []struct {
		name   string
		src    string
		params []sema.Type
		args   func(n int) []interface{}
	}{
		{
			name: "fir",
			src: `function y = f(x, h)
n = length(x);
t = length(h);
y = zeros(1, n);
for i = t:n
    acc = 0;
    for k = 1:t
        acc = acc + h(k) * x(i - k + 1);
    end
    y(i) = acc;
end
end`,
			params: []sema.Type{dynVec(), dynVec()},
			args: func(n int) []interface{} {
				return []interface{}{randArr(n, r), randArr(4, r)}
			},
		},
		{
			name: "cdot",
			src: `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`,
			params: []sema.Type{dynCVec(), dynCVec()},
			args: func(n int) []interface{} {
				return []interface{}{randCArr(n, r), randCArr(n, r)}
			},
		},
		{
			name: "twiddle",
			src: `function w = f(n)
w = zeros(1, n);
for k = 1:n
    w(k) = exp(-2i * pi * (k - 1) / n);
end
end`,
			params: []sema.Type{sema.IntScalar},
			args:   func(n int) []interface{} { return []interface{}{int64(max(n, 1))} },
		},
		{
			name: "control",
			src: `function s = f(x)
s = 0;
i = 1;
while i <= length(x)
    if x(i) > 0
        s = s + x(i);
    elseif x(i) < -1
        s = s - 1;
    end
    if s > 100
        break
    end
    i = i + 1;
end
end`,
			params: []sema.Type{dynVec()},
			args:   func(n int) []interface{} { return []interface{}{randArr(n, r)} },
		},
		{
			name: "matmul",
			src: `function c = f(a, b)
c = a * b;
end`,
			params: []sema.Type{
				{Class: sema.Real, Shape: sema.Shape{Rows: 4, Cols: 4}},
				{Class: sema.Real, Shape: sema.Shape{Rows: 4, Cols: 4}},
			},
			args: func(n int) []interface{} {
				a := ir.NewFloatArray(4, 4)
				b := ir.NewFloatArray(4, 4)
				for i := range a.F {
					a.F[i] = r.NormFloat64()
					b.F[i] = r.NormFloat64()
				}
				return []interface{}{a, b}
			},
		},
	}
	for _, k := range kernels {
		for _, proc := range []string{"scalar", "dspasip", "wide2", "wide8", "nocomplex", "nosimd"} {
			for _, optimize := range []bool{false, true} {
				for _, n := range []int{4, 7, 16, 33} {
					f, p := buildIR(t, k.src, proc, optimize, k.params...)
					prog, err := Lower(f)
					if err != nil {
						t.Fatalf("%s/%s: %v", k.name, proc, err)
					}
					assertEnginesAgree(t, prog, p, 0, k.args(n))
				}
			}
		}
	}
}

// TestEngineEquivalenceFaults checks that the engines agree on faulting
// executions too: message text, fault pc, and the partially-accumulated
// cycle accounting at the fault point.
func TestEngineEquivalenceFaults(t *testing.T) {
	t.Run("out-of-bounds", func(t *testing.T) {
		f, p := buildIR(t, "function y = f(x)\ny = x(10);\nend", "scalar", false, dynVec())
		prog, err := Lower(f)
		if err != nil {
			t.Fatal(err)
		}
		assertEnginesAgree(t, prog, p, 0, []interface{}{ir.NewFloatArray(1, 3)})
	})
	t.Run("cycle-limit", func(t *testing.T) {
		f, p := buildIR(t, "function y = f()\ny = 0;\nwhile 1 > 0\n    y = y + 1;\nend\nend", "scalar", false)
		prog, err := Lower(f)
		if err != nil {
			t.Fatal(err)
		}
		assertEnginesAgree(t, prog, p, 9999, nil)
	})
	t.Run("int-div-by-zero", func(t *testing.T) {
		prog := &Program{
			Name:    "t",
			NumRegs: 3,
			Params: []Param{
				{Name: "a", Elem: ir.Int, Reg: 0},
				{Name: "b", Elem: ir.Int, Reg: 1},
			},
			Results: []Param{{Name: "y", Elem: ir.Int, Reg: 2}},
			Instrs: []Instr{
				{Op: OpBin, K: ir.Kind{Base: ir.Int, Lanes: 1}, OpBase: ir.Int, BOp: ir.OpDiv, Dst: 2, A: 0, B: 1},
				{Op: OpRet},
			},
		}
		assertEnginesAgree(t, prog, pdesc.Builtin("scalar"), 0, []interface{}{int64(7), int64(0)})
	})
	t.Run("intrinsic-not-provided", func(t *testing.T) {
		prog := intrProgram("cmac", 3)
		assertEnginesAgree(t, prog, pdesc.Builtin("scalar"), 0, []interface{}{1.0, 2.0, 3.0})
	})
	t.Run("unknown-intrinsic", func(t *testing.T) {
		prog := intrProgram("bogus", 2)
		p := pdesc.Builtin("scalar").Clone()
		p.Name = "scalar+bogus"
		p.Instructions = append(p.Instructions, pdesc.Instr{Name: "bogus", Cycles: 1})
		assertEnginesAgree(t, prog, p, 0, []interface{}{1.0, 2.0})
	})
	t.Run("intrinsic-arity", func(t *testing.T) {
		prog := intrProgram("fma", 2) // fma wants 3 args
		p := pdesc.Builtin("scalar").Clone()
		p.Name = "scalar+fma"
		p.Instructions = append(p.Instructions, pdesc.Instr{Name: "fma", Cycles: 1})
		assertEnginesAgree(t, prog, p, 0, []interface{}{1.0, 2.0})
	})
}

// intrProgram hand-builds a minimal program that invokes one intrinsic
// over nargs float parameters.
func intrProgram(name string, nargs int) *Program {
	prog := &Program{Name: "t", NumRegs: nargs + 1}
	args := make([]int, nargs)
	params := make([]Param, nargs)
	for i := 0; i < nargs; i++ {
		args[i] = i
		params[i] = Param{Name: string(rune('a' + i)), Elem: ir.Float, Reg: i}
	}
	prog.Params = params
	prog.Results = []Param{{Name: "y", Elem: ir.Float, Reg: nargs}}
	prog.Instrs = []Instr{
		{Op: OpIntr, K: ir.Kind{Base: ir.Float, Lanes: 1}, Dst: nargs, Args: args, Intr: name},
		{Op: OpRet},
	}
	return prog
}

// TestRunDoesNotMutateMaxCycles guards the satellite fix: a
// zero-configured machine must stay zero-configured after Run.
func TestRunDoesNotMutateMaxCycles(t *testing.T) {
	f, p := buildIR(t, "function y = f(a)\ny = a + 1;\nend", "scalar", false, sema.RealScalar)
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{EngineReference, EnginePrepared, EngineCompiled} {
		m := NewMachine(p)
		m.Engine = engine
		if _, err := m.Run(prog, 1.0); err != nil {
			t.Fatal(err)
		}
		if m.MaxCycles != 0 {
			t.Errorf("%s: Run mutated MaxCycles to %d", engine, m.MaxCycles)
		}
	}
}

// TestClassCountsMapReused: Run must clear, not reallocate, the counts
// map, and stale classes from a previous program must not survive.
func TestClassCountsMapReused(t *testing.T) {
	fa, p := buildIR(t, "function y = f(a)\ny = a * 2.5;\nend", "scalar", false, sema.RealScalar)
	fb, _ := buildIR(t, "function y = f(a)\ny = a + 1;\nend", "scalar", false, sema.IntScalar)
	pa, err := Lower(fa)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Lower(fb)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{EngineReference, EnginePrepared, EngineCompiled} {
		m := NewMachine(p)
		m.Engine = engine
		if _, err := m.Run(pa, 2.0); err != nil {
			t.Fatal(err)
		}
		first := reflect.ValueOf(m.ClassCounts).Pointer()
		if m.ClassCounts["fmul"] == 0 {
			t.Fatalf("%s: expected fmul in %v", engine, m.ClassCounts)
		}
		if _, err := m.Run(pb, int64(2)); err != nil {
			t.Fatal(err)
		}
		if got := reflect.ValueOf(m.ClassCounts).Pointer(); got != first {
			t.Errorf("%s: ClassCounts reallocated across runs", engine)
		}
		if _, ok := m.ClassCounts["fmul"]; ok {
			t.Errorf("%s: stale class survived reset: %v", engine, m.ClassCounts)
		}
	}
}

// TestPreparedCache checks content-addressed sharing: same program and
// equivalent (cloned) processors hit one cache entry.
func TestPreparedCache(t *testing.T) {
	ResetPreparedCache()
	defer ResetPreparedCache()
	f, p := buildIR(t, "function y = f(a)\ny = a * 3;\nend", "dspasip", true, sema.RealScalar)
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	pp1 := PreparedFor(prog, p)
	pp2 := PreparedFor(prog, p)
	if pp1 != pp2 {
		t.Error("same pointers should share a preparation")
	}
	clone := p.Clone()
	pp3 := PreparedFor(prog, clone)
	if pp3 != pp1 {
		t.Error("content-identical processor clone should share the preparation")
	}
	st := PreparedCacheStats()
	if st.Entries != 1 || st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 entry, 1 miss, 2 hits", st)
	}
	// A genuinely different cost model must not share.
	derived := p.Clone()
	derived.Name = "variant"
	derived.Costs = map[string]int{"fmul": 9}
	if PreparedFor(prog, derived) == pp1 {
		t.Error("distinct processor content must prepare separately")
	}
	if st := PreparedCacheStats(); st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

func TestProgramContentHashStable(t *testing.T) {
	f, _ := buildIR(t, "function y = f(a)\ny = a + 1;\nend", "scalar", false, sema.RealScalar)
	p1, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := buildIR(t, "function y = f(a)\ny = a + 1;\nend", "scalar", false, sema.RealScalar)
	p2, err := Lower(f2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ContentHash() != p2.ContentHash() {
		t.Error("identical lowerings must hash identically")
	}
	f3, _ := buildIR(t, "function y = f(a)\ny = a + 2;\nend", "scalar", false, sema.RealScalar)
	p3, err := Lower(f3)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ContentHash() == p3.ContentHash() {
		t.Error("different programs must hash differently")
	}
}

func TestSetDefaultEngine(t *testing.T) {
	orig := DefaultEngine()
	defer SetDefaultEngine(orig)
	if err := SetDefaultEngine("ref"); err != nil || DefaultEngine() != EngineReference {
		t.Errorf("ref alias: err=%v engine=%s", err, DefaultEngine())
	}
	if err := SetDefaultEngine(EngineCompiled); err != nil || DefaultEngine() != EngineCompiled {
		t.Errorf("compiled: err=%v engine=%s", err, DefaultEngine())
	}
	if err := SetDefaultEngine(EnginePrepared); err != nil {
		t.Fatal(err)
	}
	if err := SetDefaultEngine("turbo"); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("want unknown-engine error, got %v", err)
	}
}

// TestTraceForcesReference: tracing must still work when the default
// engine is prepared (the prepared loop has no trace hooks).
func TestTraceForcesReference(t *testing.T) {
	f, p := buildIR(t, "function y = f(a)\ny = a + 1;\nend", "scalar", false, sema.RealScalar)
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m := NewMachine(p)
	m.Engine = EnginePrepared
	m.Trace = &sb
	if _, err := m.Run(prog, 1.0); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Error("no trace output")
	}
}

// benchProg compiles a kernel for benchmarking and returns the program,
// processor, and arguments.
func benchProg(b *testing.B, src, proc string, n int, complexIn bool) (*Program, *pdesc.Processor, []interface{}) {
	b.Helper()
	var params []sema.Type
	var args []interface{}
	r := rand.New(rand.NewSource(42))
	if complexIn {
		params = []sema.Type{dynCVec(), dynCVec()}
		args = []interface{}{randCArr(n, r), randCArr(16, r)}
	} else {
		params = []sema.Type{dynVec(), dynVec()}
		args = []interface{}{randArr(n, r), randArr(16, r)}
	}
	f, p := buildIR(b, src, proc, true, params...)
	prog, err := Lower(f)
	if err != nil {
		b.Fatal(err)
	}
	return prog, p, args
}

const firSrc = `function y = f(x, h)
n = length(x);
t = length(h);
y = zeros(1, n);
for i = t:n
    acc = 0;
    for k = 1:t
        acc = acc + h(k) * x(i - k + 1);
    end
    y(i) = acc;
end
end`

const cfirSrc = `function y = f(x, h)
n = length(x);
t = length(h);
y = zeros(1, n);
for i = t:n
    acc = 0;
    for k = 1:t
        acc = acc + h(k) * x(i - k + 1);
    end
    y(i) = acc;
end
end`

// benchEngines runs the kernel under four configurations — the
// compiled-closure backend, the prepared engine with profile-mined
// superinstructions, the plain PR 3 prepared engine (fusion off), and
// the reference interpreter — reporting simulated instructions per
// second (the throughput metric tracked by BENCH_vm.json) and
// allocations per simulated run.
func benchEngines(b *testing.B, src, proc string, n int, complexIn bool) {
	for _, engine := range []string{EngineCompiled, "superinst", EnginePrepared, EngineReference} {
		b.Run(engine, func(b *testing.B) {
			prog, p, args := benchProg(b, src, proc, n, complexIn)
			m := NewMachine(p)
			switch engine {
			case "superinst":
				m.Engine = EnginePrepared
				// Profile one run, then fuse the mined hot sequences.
				m.Profile = true
				if _, err := m.Run(prog, cloneArgs(args)...); err != nil {
					b.Fatal(err)
				}
				m.SuperSet = MineSuperinsts(prog, m.PCCounts, SuperOpts{})
				m.Profile = false
			case EnginePrepared:
				m.SuperSet = &SuperSet{} // fusion off: the PR 3 baseline
				m.Engine = engine
			default:
				m.Engine = engine
			}
			// Warm the prepared cache and scratch pool outside the timer.
			if _, err := m.Run(prog, args...); err != nil {
				b.Fatal(err)
			}
			perRun := m.Executed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(prog, args...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(perRun)*float64(b.N)/secs, "instrs/sec")
			}
		})
	}
}

func BenchmarkVMFir1024(b *testing.B)       { benchEngines(b, firSrc, "dspasip", 1024, false) }
func BenchmarkVMCFir1024(b *testing.B)      { benchEngines(b, cfirSrc, "dspasip", 1024, true) }
func BenchmarkVMFirScalar1024(b *testing.B) { benchEngines(b, firSrc, "scalar", 1024, false) }
func BenchmarkVMFirWide8(b *testing.B)      { benchEngines(b, firSrc, "wide8", 1024, false) }
