package vm

import (
	"fmt"
	"math"
	"math/cmplx"

	"mat2c/internal/ir"
)

// execBin executes an OpBin instruction, charging its cost class.
func (m *Machine) execBin(in *Instr, regs []vmval) (vmval, error) {
	m.charge(binClass(in))
	a, b := regs[in.A], regs[in.B]
	if in.K.Lanes <= 1 {
		return binScalarVal(in.BOp, in.OpBase, in.K.Base, a, b)
	}
	// Vector: lane-wise at OpBase; scalar operands broadcast.
	lanes := make([]complex128, in.K.Lanes)
	for j := range lanes {
		r, err := binLane(in.BOp, in.OpBase, in.K.Base, a.lane(j), b.lane(j))
		if err != nil {
			return vmval{}, err
		}
		lanes[j] = r
	}
	return vmval{lanes: lanes}, nil
}

// binScalarVal computes a scalar binary operation at the given
// computation base with the result materialized at kBase (shared by the
// reference interpreter and the prepared engine so the two cannot
// drift).
func binScalarVal(op ir.Op, opBase, kBase ir.BaseKind, a, b vmval) (vmval, error) {
	switch opBase {
	case ir.Int:
		r, err := binInt(op, a.i, b.i)
		if err != nil {
			return vmval{}, err
		}
		return fromInt(r), nil
	case ir.Float:
		r := binFloat(op, a.f, b.f)
		if kBase == ir.Int {
			return fromInt(int64(r)), nil
		}
		return fromFloat(r), nil
	default:
		r, err := binComplex(op, a.c, b.c)
		if err != nil {
			return vmval{}, err
		}
		if kBase == ir.Int {
			return fromInt(int64(real(r))), nil
		}
		return fromComplex(r), nil
	}
}

// binLane computes one vector lane of a binary operation at the given
// computation base, normalizing non-complex results to their real part.
func binLane(op ir.Op, opBase, kBase ir.BaseKind, x, y complex128) (complex128, error) {
	var r complex128
	switch opBase {
	case ir.Complex:
		var err error
		r, err = binComplex(op, x, y)
		if err != nil {
			return 0, err
		}
	case ir.Int:
		iv, err := binInt(op, int64(real(x)), int64(real(y)))
		if err != nil {
			return 0, err
		}
		r = complex(float64(iv), 0)
	default:
		r = complex(binFloat(op, real(x), real(y)), 0)
	}
	if kBase != ir.Complex {
		r = complex(real(r), 0)
	}
	return r, nil
}

// binClass maps a binary instruction to its cycle-cost class.
func binClass(in *Instr) string {
	if in.K.Lanes > 1 {
		// A vector complex multiply/divide without a custom instruction
		// is a multi-issue shuffle+mul+addsub sequence: charge the
		// expansion, not a single vector op.
		if in.OpBase == ir.Complex {
			switch in.BOp {
			case ir.OpMul:
				return "cmul"
			case ir.OpDiv:
				return "cdiv"
			}
		}
		return "vop"
	}
	switch in.OpBase {
	case ir.Int:
		switch in.BOp {
		case ir.OpAdd:
			return "iadd"
		case ir.OpSub:
			return "isub"
		case ir.OpMul:
			return "imul"
		case ir.OpDiv, ir.OpRem:
			return "idiv"
		case ir.OpPow:
			return "fpow"
		default:
			return "icmp"
		}
	case ir.Float:
		switch in.BOp {
		case ir.OpAdd:
			return "fadd"
		case ir.OpSub:
			return "fsub"
		case ir.OpMul:
			return "fmul"
		case ir.OpDiv:
			return "fdiv"
		case ir.OpRem:
			return "frem"
		case ir.OpPow:
			return "fpow"
		default:
			return "fcmp"
		}
	default:
		switch in.BOp {
		case ir.OpAdd:
			return "cadd"
		case ir.OpSub:
			return "csub"
		case ir.OpMul:
			return "cmul"
		case ir.OpDiv:
			return "cdiv"
		default:
			return "fcmp"
		}
	}
}

func binInt(op ir.Op, x, y int64) (int64, error) {
	switch op {
	case ir.OpAdd:
		return x + y, nil
	case ir.OpSub:
		return x - y, nil
	case ir.OpMul:
		return x * y, nil
	case ir.OpDiv:
		if y == 0 {
			return 0, fmt.Errorf("integer division by zero")
		}
		return x / y, nil
	case ir.OpRem:
		if y == 0 {
			return x, nil
		}
		return x % y, nil
	case ir.OpPow:
		return int64(math.Pow(float64(x), float64(y))), nil
	case ir.OpMin:
		if x < y {
			return x, nil
		}
		return y, nil
	case ir.OpMax:
		if x > y {
			return x, nil
		}
		return y, nil
	case ir.OpLt:
		return b2i(x < y), nil
	case ir.OpLe:
		return b2i(x <= y), nil
	case ir.OpGt:
		return b2i(x > y), nil
	case ir.OpGe:
		return b2i(x >= y), nil
	case ir.OpEq:
		return b2i(x == y), nil
	case ir.OpNe:
		return b2i(x != y), nil
	case ir.OpAnd:
		return b2i(x != 0 && y != 0), nil
	case ir.OpOr:
		return b2i(x != 0 || y != 0), nil
	}
	return 0, fmt.Errorf("op %s not defined on int", op)
}

func binFloat(op ir.Op, x, y float64) float64 {
	switch op {
	case ir.OpAdd:
		return x + y
	case ir.OpSub:
		return x - y
	case ir.OpMul:
		return x * y
	case ir.OpDiv:
		return x / y
	case ir.OpRem:
		return math.Mod(x, y)
	case ir.OpPow:
		return math.Pow(x, y)
	case ir.OpMin:
		return math.Min(x, y)
	case ir.OpMax:
		return math.Max(x, y)
	case ir.OpAtan2:
		return math.Atan2(x, y)
	case ir.OpLt:
		return bf(x < y)
	case ir.OpLe:
		return bf(x <= y)
	case ir.OpGt:
		return bf(x > y)
	case ir.OpGe:
		return bf(x >= y)
	case ir.OpEq:
		return bf(x == y)
	case ir.OpNe:
		return bf(x != y)
	case ir.OpAnd:
		return bf(x != 0 && y != 0)
	case ir.OpOr:
		return bf(x != 0 || y != 0)
	}
	return math.NaN()
}

func binComplex(op ir.Op, x, y complex128) (complex128, error) {
	switch op {
	case ir.OpAdd:
		return x + y, nil
	case ir.OpSub:
		return x - y, nil
	case ir.OpMul:
		return x * y, nil
	case ir.OpDiv:
		return x / y, nil
	case ir.OpPow:
		return cmplx.Pow(x, y), nil
	case ir.OpEq:
		return complex(bf(x == y), 0), nil
	case ir.OpNe:
		return complex(bf(x != y), 0), nil
	}
	return 0, fmt.Errorf("op %s not defined on complex", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func bf(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// scalarBin computes a reduction step at the given base over complex
// lane values.
func scalarBin(op ir.Op, base ir.BaseKind, a, b complex128) (complex128, error) {
	switch base {
	case ir.Int:
		r, err := binInt(op, int64(real(a)), int64(real(b)))
		return complex(float64(r), 0), err
	case ir.Float:
		return complex(binFloat(op, real(a), real(b)), 0), nil
	default:
		return binComplex(op, a, b)
	}
}

// execUn executes an OpUn instruction.
func (m *Machine) execUn(in *Instr, regs []vmval) (vmval, error) {
	m.chargeUn(in)
	a := regs[in.A]
	if in.K.Lanes <= 1 {
		return unScalar(in.BOp, in.OpBase, in.K.Base, a)
	}
	lanes := make([]complex128, in.K.Lanes)
	for j := range lanes {
		v, err := unLane(in.BOp, in.OpBase, in.K.Base, a.lane(j))
		if err != nil {
			return vmval{}, err
		}
		lanes[j] = v
	}
	return vmval{lanes: lanes}, nil
}

func (m *Machine) chargeUn(in *Instr) {
	class := unClass(in.BOp, in.OpBase)
	if in.K.Lanes > 1 {
		switch in.BOp {
		case ir.OpSqrt, ir.OpSin, ir.OpCos, ir.OpTan, ir.OpExp, ir.OpLog,
			ir.OpAngle, ir.OpAsin, ir.OpAcos, ir.OpAtan, ir.OpSinh,
			ir.OpCosh, ir.OpTanh:
			// No vector transcendental unit: serialize per lane.
			m.chargeN(class, int64(in.K.Lanes))
			return
		case ir.OpAbs:
			if in.OpBase == ir.Complex {
				m.chargeN(class, int64(in.K.Lanes))
				return
			}
		}
		m.charge("vop")
		return
	}
	m.charge(class)
}

func unClass(op ir.Op, base ir.BaseKind) string {
	switch op {
	case ir.OpNeg:
		if base == ir.Complex {
			return "cneg"
		}
		return "fneg"
	case ir.OpNot:
		return "icmp"
	case ir.OpSqrt:
		return "fsqrt"
	case ir.OpSin, ir.OpCos, ir.OpTan, ir.OpAsin, ir.OpAcos, ir.OpAtan,
		ir.OpSinh, ir.OpCosh, ir.OpTanh:
		return "ftrig"
	case ir.OpExp, ir.OpLog:
		return "fexp"
	case ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc, ir.OpToInt:
		return "fround"
	case ir.OpAbs:
		if base == ir.Complex {
			return "cabs"
		}
		return "fabs"
	case ir.OpSign:
		return "fsign"
	case ir.OpRe, ir.OpIm:
		return "fmov"
	case ir.OpConj:
		return "cconj"
	case ir.OpAngle:
		return "cabs"
	case ir.OpToFloat, ir.OpToComplex:
		return "conv"
	}
	return "fmov"
}

func unScalar(op ir.Op, base, kBase ir.BaseKind, a vmval) (vmval, error) {
	switch op {
	case ir.OpNeg:
		switch base {
		case ir.Int:
			return fromInt(-a.i), nil
		case ir.Float:
			return fromFloat(-a.f), nil
		default:
			return fromComplex(-a.c), nil
		}
	case ir.OpNot:
		var nz bool
		switch base {
		case ir.Int:
			nz = a.i != 0
		case ir.Float:
			nz = a.f != 0
		default:
			nz = a.c != 0
		}
		return fromInt(b2i(!nz)), nil
	case ir.OpToInt:
		return fromInt(int64(math.Round(a.f))), nil
	case ir.OpToFloat:
		return fromFloat(a.f), nil
	case ir.OpToComplex:
		return fromComplex(a.c), nil
	}
	v, err := unLane(op, base, kBase, a.c)
	if err != nil {
		return vmval{}, err
	}
	return materialize(v, kBase), nil
}

// unLane computes a unary op on one lane value (as complex), matching
// the reference evaluator's semantics.
func unLane(op ir.Op, base ir.BaseKind, resBase ir.BaseKind, x complex128) (complex128, error) {
	xf := real(x)
	switch op {
	case ir.OpNeg:
		if base == ir.Complex {
			return -x, nil
		}
		return complex(-xf, 0), nil
	case ir.OpNot:
		var nz bool
		if base == ir.Complex {
			nz = x != 0
		} else {
			nz = xf != 0
		}
		return complex(bf(!nz), 0), nil
	case ir.OpSqrt:
		if base == ir.Complex || resBase == ir.Complex {
			return cmplx.Sqrt(x), nil
		}
		return complex(math.Sqrt(xf), 0), nil
	case ir.OpSin:
		if base == ir.Complex {
			return cmplx.Sin(x), nil
		}
		return complex(math.Sin(xf), 0), nil
	case ir.OpAsin:
		if base == ir.Complex {
			return cmplx.Asin(x), nil
		}
		return complex(math.Asin(xf), 0), nil
	case ir.OpAcos:
		if base == ir.Complex {
			return cmplx.Acos(x), nil
		}
		return complex(math.Acos(xf), 0), nil
	case ir.OpAtan:
		if base == ir.Complex {
			return cmplx.Atan(x), nil
		}
		return complex(math.Atan(xf), 0), nil
	case ir.OpSinh:
		if base == ir.Complex {
			return cmplx.Sinh(x), nil
		}
		return complex(math.Sinh(xf), 0), nil
	case ir.OpCosh:
		if base == ir.Complex {
			return cmplx.Cosh(x), nil
		}
		return complex(math.Cosh(xf), 0), nil
	case ir.OpTanh:
		if base == ir.Complex {
			return cmplx.Tanh(x), nil
		}
		return complex(math.Tanh(xf), 0), nil
	case ir.OpCos:
		if base == ir.Complex {
			return cmplx.Cos(x), nil
		}
		return complex(math.Cos(xf), 0), nil
	case ir.OpTan:
		if base == ir.Complex {
			return cmplx.Tan(x), nil
		}
		return complex(math.Tan(xf), 0), nil
	case ir.OpExp:
		if base == ir.Complex {
			return cmplx.Exp(x), nil
		}
		return complex(math.Exp(xf), 0), nil
	case ir.OpLog:
		if base == ir.Complex {
			return cmplx.Log(x), nil
		}
		return complex(math.Log(xf), 0), nil
	case ir.OpFloor:
		return complex(math.Floor(xf), 0), nil
	case ir.OpCeil:
		return complex(math.Ceil(xf), 0), nil
	case ir.OpRound:
		return complex(math.Round(xf), 0), nil
	case ir.OpTrunc:
		return complex(math.Trunc(xf), 0), nil
	case ir.OpAbs:
		if base == ir.Complex {
			return complex(cmplx.Abs(x), 0), nil
		}
		return complex(math.Abs(xf), 0), nil
	case ir.OpSign:
		switch {
		case xf > 0:
			return 1, nil
		case xf < 0:
			return -1, nil
		}
		return 0, nil
	case ir.OpRe:
		return complex(real(x), 0), nil
	case ir.OpIm:
		return complex(imag(x), 0), nil
	case ir.OpConj:
		return cmplx.Conj(x), nil
	case ir.OpAngle:
		return complex(cmplx.Phase(x), 0), nil
	case ir.OpToInt:
		return complex(math.Round(xf), 0), nil
	case ir.OpToFloat, ir.OpToComplex:
		return x, nil
	}
	return 0, fmt.Errorf("unsupported unary op %s", op)
}

// intrKind is the pre-decoded dispatch key of a custom instruction
// (the intrinsic family, vector and scalar forms collapsed).
type intrKind int8

const (
	intrUnknown intrKind = iota
	intrFMA
	intrFMS
	intrCMul
	intrCMac
	intrCConjMul
	intrCAdd
	intrCSub
	intrSAD
)

// intrKindOf maps an intrinsic name (with optional v- vector prefix) to
// its dispatch kind.
func intrKindOf(name string) intrKind {
	base := name
	if len(base) > 1 && base[0] == 'v' {
		base = base[1:]
	}
	switch base {
	case "fma":
		return intrFMA
	case "fms":
		return intrFMS
	case "cmul":
		return intrCMul
	case "cmac":
		return intrCMac
	case "cconjmul":
		return intrCConjMul
	case "cadd":
		return intrCAdd
	case "csub":
		return intrCSub
	case "sad":
		return intrSAD
	}
	return intrUnknown
}

// intrArity returns the operand count an intrinsic kind requires.
func intrArity(k intrKind) int {
	switch k {
	case intrFMA, intrFMS, intrCMac, intrSAD:
		return 3
	default:
		return 2
	}
}

// intrLane computes one lane of an intrinsic (two-operand kinds ignore
// a2). This is THE definition of every custom instruction's semantics,
// shared by the reference interpreter, the prepared vector path, and
// the prepared fused-scalar path, so the engines cannot drift.
func intrLane(k intrKind, a0, a1, a2 complex128) complex128 {
	switch k {
	case intrFMA:
		return complex(real(a0)+real(a1)*real(a2), 0)
	case intrFMS:
		return complex(real(a0)-real(a1)*real(a2), 0)
	case intrCMul:
		return a0 * a1
	case intrCMac:
		return a0 + a1*a2
	case intrCConjMul:
		return a0 * cmplx.Conj(a1)
	case intrCAdd:
		return a0 + a1
	case intrCSub:
		return a0 - a1
	case intrSAD:
		return complex(real(a0)+math.Abs(real(a1)-real(a2)), 0)
	}
	return 0
}

// intrFill computes dst's lanes for an intrinsic via intrLane.
func intrFill(k intrKind, dst []complex128, a0, a1, a2 vmval) {
	for j := range dst {
		dst[j] = intrLane(k, a0.lane(j), a1.lane(j), a2.lane(j))
	}
}

// execIntr executes a custom instruction, charging the cycles declared
// in the processor description (via its cost class when it has one).
func (m *Machine) execIntr(in *Instr, regs []vmval) (vmval, error) {
	if ci := m.Proc.Instr(in.Intr); ci != nil {
		m.Cycles += int64(m.Proc.IssueCost(ci))
		m.ClassCounts[in.Intr]++
	} else {
		// Executing an intrinsic the target does not declare indicates a
		// selection bug; fail loudly rather than mis-charge.
		return vmval{}, fmt.Errorf("intrinsic %q not provided by processor %s", in.Intr, m.Proc.Name)
	}
	kind := intrKindOf(in.Intr)
	if kind == intrUnknown {
		if in.Sem != "" {
			// A mined instruction: its behaviour is the pattern carried in
			// the instruction, not a member of the built-in family.
			return m.execPatternIntr(in, regs)
		}
		return vmval{}, fmt.Errorf("unknown intrinsic %q", in.Intr)
	}
	if len(in.Args) != intrArity(kind) {
		return vmval{}, fmt.Errorf("intrinsic %s expects %d args, got %d", in.Intr, intrArity(kind), len(in.Args))
	}
	L := in.K.Lanes
	var a0, a1, a2 vmval
	a0, a1 = regs[in.Args[0]], regs[in.Args[1]]
	if len(in.Args) > 2 {
		a2 = regs[in.Args[2]]
	}
	lanes := make([]complex128, L)
	intrFill(kind, lanes, a0, a1, a2)
	if L <= 1 {
		return materialize(lanes[0], in.K.Base), nil
	}
	return vmval{lanes: lanes}, nil
}

// execPatternIntr executes a mined instruction by evaluating its
// semantics pattern lane-wise (scalar operands broadcast, like every
// other vector op). The cost was already charged by execIntr.
func (m *Machine) execPatternIntr(in *Instr, regs []vmval) (vmval, error) {
	pat, err := ir.CachedPattern(in.Sem)
	if err != nil {
		return vmval{}, fmt.Errorf("intrinsic %q: bad semantics: %v", in.Intr, err)
	}
	if len(in.Args) != pat.Arity() {
		return vmval{}, fmt.Errorf("intrinsic %s expects %d args, got %d", in.Intr, pat.Arity(), len(in.Args))
	}
	var argbuf [ir.MaxPatternArity]complex128
	args := argbuf[:len(in.Args)]
	L := in.K.Lanes
	lanes := make([]complex128, L)
	for j := 0; j < L; j++ {
		for i, r := range in.Args {
			args[i] = regs[r].lane(j)
		}
		lanes[j] = pat.EvalLane(args)
	}
	if L <= 1 {
		return materialize(lanes[0], in.K.Base), nil
	}
	return vmval{lanes: lanes}, nil
}

// BinChargeClass reports the cost class the VM charges for a binary op
// at the given computation base and lane count. Exported for the
// instruction-set miner's savings estimator, which must price candidate
// subgraphs with exactly the classes the simulator charges.
func BinChargeClass(op ir.Op, opBase ir.BaseKind, lanes int) string {
	in := Instr{BOp: op, OpBase: opBase, K: ir.Kind{Base: opBase, Lanes: lanes}}
	return binClass(&in)
}

// UnChargeClass reports the cost class charged for a unary op at the
// given base and lane count, and how many issues of that class are
// charged (serialized vector transcendentals charge once per lane).
func UnChargeClass(op ir.Op, base ir.BaseKind, lanes int) (string, int64) {
	class := unClass(op, base)
	if lanes > 1 {
		switch op {
		case ir.OpSqrt, ir.OpSin, ir.OpCos, ir.OpTan, ir.OpExp, ir.OpLog,
			ir.OpAngle, ir.OpAsin, ir.OpAcos, ir.OpAtan, ir.OpSinh,
			ir.OpCosh, ir.OpTanh:
			return class, int64(lanes)
		case ir.OpAbs:
			if base == ir.Complex {
				return class, int64(lanes)
			}
		}
		return "vop", 1
	}
	return class, 1
}
