package vm

// Systematic operation parity: every unary and binary IR operation is
// evaluated on the reference evaluator and the VM, in scalar and vector
// form, over a grid of operand values, and the results must agree
// exactly. This pins the two executors' semantics together op by op.

import (
	"fmt"
	"math"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
)

// buildUnary returns a function computing op over a float parameter.
func buildUnary(op ir.Op, resBase ir.BaseKind, vector bool) *ir.Func {
	f := ir.NewFunc(fmt.Sprintf("un_%s", op))
	x := f.NewSym("x", ir.Float, true)
	y := f.NewSym("y", ir.Float, true)
	k := f.NewSym("k", ir.Int, false)
	f.Params = []*ir.Sym{x}
	f.Results = []*ir.Sym{y}
	n := &ir.Dim{Arr: x, Which: ir.DimLen}
	f.Body = []ir.Stmt{
		&ir.Alloc{Arr: y, Rows: ir.CI(1), Cols: n},
	}
	if vector {
		const L = 4
		vk := ir.Kind{Base: resBase, Lanes: L}
		f.Body = append(f.Body, &ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(L)), Step: L,
			Body: []ir.Stmt{&ir.Store{Arr: y, Index: ir.V(k),
				Val: convToFloatVec(&ir.Un{Op: op, K: vk,
					X: &ir.VecLoad{Arr: x, Index: ir.V(k), K: ir.Kind{Base: ir.Float, Lanes: L}}}, L)}}})
	} else {
		f.Body = append(f.Body, &ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(1)), Step: 1,
			Body: []ir.Stmt{&ir.Store{Arr: y, Index: ir.V(k),
				Val: convToFloat(&ir.Un{Op: op, K: ir.Kind{Base: resBase, Lanes: 1},
					X: &ir.Load{Arr: x, Index: ir.V(k)}})}}})
	}
	return f
}

func convToFloat(e ir.Expr) ir.Expr {
	if e.Kind().Base == ir.Float {
		return e
	}
	return ir.U(ir.OpToFloat, e, ir.KFloat)
}

func convToFloatVec(e ir.Expr, lanes int) ir.Expr {
	if e.Kind().Base == ir.Float {
		return e
	}
	return ir.U(ir.OpToFloat, e, ir.Kind{Base: ir.Float, Lanes: lanes})
}

// buildBinary returns a function computing x op g elementwise.
func buildBinary(op ir.Op, resBase ir.BaseKind, vector bool) *ir.Func {
	f := ir.NewFunc(fmt.Sprintf("bin_%s", op))
	x := f.NewSym("x", ir.Float, true)
	g := f.NewSym("g", ir.Float, true)
	y := f.NewSym("y", ir.Float, true)
	k := f.NewSym("k", ir.Int, false)
	f.Params = []*ir.Sym{x, g}
	f.Results = []*ir.Sym{y}
	n := &ir.Dim{Arr: x, Which: ir.DimLen}
	f.Body = []ir.Stmt{&ir.Alloc{Arr: y, Rows: ir.CI(1), Cols: n}}
	if vector {
		const L = 4
		vk := ir.Kind{Base: resBase, Lanes: L}
		fk := ir.Kind{Base: ir.Float, Lanes: L}
		f.Body = append(f.Body, &ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(L)), Step: L,
			Body: []ir.Stmt{&ir.Store{Arr: y, Index: ir.V(k),
				Val: convToFloatVec(&ir.Bin{Op: op, K: vk,
					X: &ir.VecLoad{Arr: x, Index: ir.V(k), K: fk},
					Y: &ir.VecLoad{Arr: g, Index: ir.V(k), K: fk}}, L)}}})
	} else {
		f.Body = append(f.Body, &ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(1)), Step: 1,
			Body: []ir.Stmt{&ir.Store{Arr: y, Index: ir.V(k),
				Val: convToFloat(&ir.Bin{Op: op, K: ir.Kind{Base: resBase, Lanes: 1},
					X: &ir.Load{Arr: x, Index: ir.V(k)},
					Y: &ir.Load{Arr: g, Index: ir.V(k)}})}}})
	}
	return f
}

var parityGrid = []float64{-2.5, -1, -0.25, 0, 0.25, 0.5, 1, 2, 3.75}

func gridArr() *ir.Array {
	// 12 elements (multiple of 4 for the vector form): grid + extras.
	vals := append(append([]float64{}, parityGrid...), 4, -4, 0.125)
	a := ir.NewFloatArray(1, len(vals))
	copy(a.F, vals)
	return a
}

func gridArr2() *ir.Array {
	vals := []float64{1, -1, 2, 0.5, -0.5, 3, -2, 0.25, 2, 1.5, -3, 1}
	a := ir.NewFloatArray(1, len(vals))
	copy(a.F, vals)
	return a
}

func runParity(t *testing.T, f *ir.Func, args ...interface{}) {
	t.Helper()
	prog, err := Lower(f)
	if err != nil {
		t.Fatalf("%s: lower: %v", f.Name, err)
	}
	ev := &ir.Evaluator{}
	want, err := ev.Run(f, cloneArgs(args)...)
	if err != nil {
		t.Fatalf("%s: reference: %v", f.Name, err)
	}
	m := NewMachine(pdesc.Builtin("dspasip"))
	got, err := m.Run(prog, cloneArgs(args)...)
	if err != nil {
		t.Fatalf("%s: vm: %v", f.Name, err)
	}
	w := want[0].(*ir.Array)
	g := got[0].(*ir.Array)
	for i := range w.F {
		a, b := w.F[i], g.F[i]
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Errorf("%s[%d]: reference %v, vm %v", f.Name, i, a, b)
		}
	}
}

func TestOpParityUnary(t *testing.T) {
	cases := []struct {
		op  ir.Op
		res ir.BaseKind
	}{
		{ir.OpNeg, ir.Float}, {ir.OpNot, ir.Int}, {ir.OpAbs, ir.Float},
		{ir.OpSqrt, ir.Float}, {ir.OpSin, ir.Float}, {ir.OpCos, ir.Float},
		{ir.OpTan, ir.Float}, {ir.OpExp, ir.Float}, {ir.OpLog, ir.Float},
		{ir.OpAtan, ir.Float}, {ir.OpSinh, ir.Float}, {ir.OpCosh, ir.Float},
		{ir.OpTanh, ir.Float}, {ir.OpFloor, ir.Int}, {ir.OpCeil, ir.Int},
		{ir.OpRound, ir.Int}, {ir.OpTrunc, ir.Int}, {ir.OpSign, ir.Int},
		{ir.OpToInt, ir.Int}, {ir.OpToFloat, ir.Float},
	}
	for _, c := range cases {
		for _, vector := range []bool{false, true} {
			f := buildUnary(c.op, c.res, vector)
			runParity(t, f, gridArr())
		}
	}
}

func TestOpParityBinary(t *testing.T) {
	cases := []struct {
		op  ir.Op
		res ir.BaseKind
	}{
		{ir.OpAdd, ir.Float}, {ir.OpSub, ir.Float}, {ir.OpMul, ir.Float},
		{ir.OpDiv, ir.Float}, {ir.OpRem, ir.Float}, {ir.OpPow, ir.Float},
		{ir.OpMin, ir.Float}, {ir.OpMax, ir.Float}, {ir.OpAtan2, ir.Float},
		{ir.OpLt, ir.Int}, {ir.OpLe, ir.Int}, {ir.OpGt, ir.Int},
		{ir.OpGe, ir.Int}, {ir.OpEq, ir.Int}, {ir.OpNe, ir.Int},
		{ir.OpAnd, ir.Int}, {ir.OpOr, ir.Int},
	}
	for _, c := range cases {
		for _, vector := range []bool{false, true} {
			f := buildBinary(c.op, c.res, vector)
			runParity(t, f, gridArr(), gridArr2())
		}
	}
}

// TestOpParityComplex exercises the complex unary/binary paths on both
// executors via a complex array kernel.
func TestOpParityComplex(t *testing.T) {
	unops := []struct {
		op  ir.Op
		res ir.BaseKind
	}{
		{ir.OpNeg, ir.Complex}, {ir.OpConj, ir.Complex}, {ir.OpSqrt, ir.Complex},
		{ir.OpExp, ir.Complex}, {ir.OpLog, ir.Complex},
		{ir.OpAbs, ir.Float}, {ir.OpRe, ir.Float}, {ir.OpIm, ir.Float},
		{ir.OpAngle, ir.Float},
	}
	mk := func(op ir.Op, res ir.BaseKind) *ir.Func {
		f := ir.NewFunc(fmt.Sprintf("cun_%s", op))
		x := f.NewSym("x", ir.Complex, true)
		y := f.NewSym("y", ir.Complex, true)
		k := f.NewSym("k", ir.Int, false)
		f.Params = []*ir.Sym{x}
		f.Results = []*ir.Sym{y}
		n := &ir.Dim{Arr: x, Which: ir.DimLen}
		val := ir.Expr(&ir.Un{Op: op, K: ir.Kind{Base: res, Lanes: 1},
			X: &ir.Load{Arr: x, Index: ir.V(k)}})
		if res != ir.Complex {
			val = ir.U(ir.OpToComplex, val, ir.KComplex)
		}
		f.Body = []ir.Stmt{
			&ir.Alloc{Arr: y, Rows: ir.CI(1), Cols: n},
			&ir.For{Var: k, Lo: ir.CI(0), Hi: ir.ISub(n, ir.CI(1)), Step: 1,
				Body: []ir.Stmt{&ir.Store{Arr: y, Index: ir.V(k), Val: val}}},
		}
		return f
	}
	x := ir.NewComplexArray(1, 6)
	copy(x.C, []complex128{1 + 2i, -0.5 - 1i, 3, 2i, -1, 0.25 - 0.75i})
	for _, c := range unops {
		f := mk(c.op, c.res)
		prog, err := Lower(f)
		if err != nil {
			t.Fatal(err)
		}
		ev := &ir.Evaluator{}
		want, err := ev.Run(f, x.Clone())
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		m := NewMachine(pdesc.Builtin("dspasip"))
		got, err := m.Run(prog, x.Clone())
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		w := want[0].(*ir.Array)
		g := got[0].(*ir.Array)
		for i := range w.C {
			if w.C[i] != g.C[i] {
				t.Errorf("%s[%d]: reference %v, vm %v", f.Name, i, w.C[i], g.C[i])
			}
		}
	}
}
