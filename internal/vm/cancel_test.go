package vm

import (
	"context"
	"errors"
	"testing"
	"time"

	"mat2c/internal/sema"
)

// spinSrc is a long-running kernel: ~5 VM instructions per iteration,
// so iteration counts translate directly into executed-instruction
// budgets for the cancellation-bound assertions.
const spinSrc = `function y = spin(n)
y = 0;
for i = 1:n
y = y + i;
end
end`

func spinProgram(t *testing.T) (*Program, *Machine, *Machine, *Machine) {
	t.Helper()
	f, p := buildIR(t, spinSrc, "dspasip", true, sema.ScalarType(sema.Real))
	prog, err := Lower(f)
	if err != nil {
		t.Fatalf("vm lower: %v", err)
	}
	ref := NewMachine(p)
	ref.Engine = EngineReference
	prep := NewMachine(p)
	prep.Engine = EnginePrepared
	comp := NewMachine(p)
	comp.Engine = EngineCompiled
	return prog, ref, prep, comp
}

func TestRunContextCancelledExitsWithinStride(t *testing.T) {
	prog, ref, prep, comp := spinProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first poll must observe it

	for _, m := range []*Machine{ref, prep, comp} {
		_, err := m.RunContext(ctx, prog, 1e9)
		var ce *CancelledError
		if !errors.As(err, &ce) {
			t.Fatalf("engine %s: err = %v, want *CancelledError", m.Engine, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("engine %s: err does not unwrap to context.Canceled: %v", m.Engine, err)
		}
		// The run must stop at the first poll, i.e. within one stride of
		// simulated instructions — not after the billion-iteration loop.
		if ce.Executed > CancelCheckStride || m.Executed > CancelCheckStride {
			t.Errorf("engine %s: executed %d (machine %d) instructions before observing cancellation, want <= %d",
				m.Engine, ce.Executed, m.Executed, CancelCheckStride)
		}
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	prog, ref, prep, comp := spinProgram(t)
	for _, m := range []*Machine{ref, prep, comp} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := m.RunContext(ctx, prog, 1e9)
			done <- err
		}()
		time.Sleep(10 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("engine %s: err = %v, want context.Canceled", m.Engine, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("engine %s: run did not observe cancellation", m.Engine)
		}
	}
}

func TestRunContextDeadlineUnwraps(t *testing.T) {
	prog, _, prep, _ := spinProgram(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := prep.RunContext(ctx, prog, 1e9)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextAccountingUnchanged proves the cancellation poll does
// not perturb cycle accounting: a run under a live (never-fired)
// context is charge-for-charge identical to a plain Run, per engine.
func TestRunContextAccountingUnchanged(t *testing.T) {
	prog, ref, prep, comp := spinProgram(t)
	for _, m := range []*Machine{ref, prep, comp} {
		out, err := m.Run(prog, 20000.0)
		if err != nil {
			t.Fatalf("engine %s: Run: %v", m.Engine, err)
		}
		wantCycles, wantExec := m.Cycles, m.Executed
		wantCounts := make(map[string]int64, len(m.ClassCounts))
		for k, v := range m.ClassCounts {
			wantCounts[k] = v
		}

		ctx, cancel := context.WithCancel(context.Background())
		out2, err := m.RunContext(ctx, prog, 20000.0)
		cancel()
		if err != nil {
			t.Fatalf("engine %s: RunContext: %v", m.Engine, err)
		}
		if out[0] != out2[0] {
			t.Errorf("engine %s: results differ: %v vs %v", m.Engine, out[0], out2[0])
		}
		if m.Cycles != wantCycles || m.Executed != wantExec {
			t.Errorf("engine %s: cycles/executed %d/%d under ctx, want %d/%d",
				m.Engine, m.Cycles, m.Executed, wantCycles, wantExec)
		}
		if len(m.ClassCounts) != len(wantCounts) {
			t.Errorf("engine %s: class count size changed", m.Engine)
		}
		for k, v := range wantCounts {
			if m.ClassCounts[k] != v {
				t.Errorf("engine %s: class %s = %d under ctx, want %d", m.Engine, k, m.ClassCounts[k], v)
			}
		}
	}
}
