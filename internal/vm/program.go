// Package vm implements the ASIP cycle-model virtual machine that
// substitutes for the paper's hardware target.
//
// The compiler lowers its IR to a linear instruction stream (this
// package's Program) and the Machine executes it while charging each
// instruction a cycle cost drawn from the processor description — the
// same description that drove vectorization and instruction selection.
// Custom instructions execute as single (cheap) operations; complex
// arithmetic *without* ISA support is charged its real-arithmetic
// expansion, and vector operations are charged as single vector-unit
// issues. Absolute numbers are a model, not the authors' silicon; the
// relative cost of baseline vs. optimized code — which is what the
// paper's speedup table reports — is what the model preserves.
//
// The VM's observable semantics (values, faults) intentionally mirror
// the ir package's reference evaluator; the test suite runs both on the
// same kernels and inputs and requires identical results.
package vm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"

	"mat2c/internal/ir"
)

// Opc is a VM opcode.
type Opc int

// VM opcodes.
const (
	OpNop    Opc = iota
	OpConst      // Dst = Imm (kind K)
	OpMov        // Dst = A
	OpConv       // Dst = conv<K>(A)
	OpBin        // Dst = A <BOp> B, computed at base OpBase
	OpUn         // Dst = <BOp> A
	OpIntr       // Dst = Intr(args...)
	OpLoad       // Dst = Arr[A]  (scalar element)
	OpVLoad      // Dst = Arr[A .. A+K.Lanes-1]
	OpStore      // Arr[A] = B (vector B stores K.Lanes elements)
	OpAlloc      // alloc Arr with rows=A, cols=B (zero-filled)
	OpDim        // Dst = dim<ImmI>(Arr): 0 rows, 1 cols, 2 len
	OpSel        // Dst = Args[0] (mask) ? Args[1] : Args[2], lane-wise
	OpSplat      // Dst = broadcast(A) to K.Lanes
	OpRamp       // Dst = {A, A+step, ...} (step in ImmI)
	OpReduce     // Dst = horizontal <BOp> over lanes of A
	OpJmp        // pc = Off
	OpJz         // if A == 0: pc = Off
	OpRet        // return
)

var opcNames = map[Opc]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov", OpConv: "conv",
	OpBin: "bin", OpUn: "un", OpIntr: "intr", OpLoad: "load",
	OpVLoad: "vload", OpStore: "store", OpAlloc: "alloc", OpDim: "dim",
	OpSplat: "splat", OpRamp: "ramp", OpReduce: "reduce", OpSel: "sel",
	OpJmp: "jmp", OpJz: "jz", OpRet: "ret",
}

// String returns the opcode mnemonic.
func (o Opc) String() string {
	if s, ok := opcNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Opc(%d)", int(o))
}

// Instr is one VM instruction. Register and array operands are indices
// into the program's virtual register file and array slot table.
type Instr struct {
	Op     Opc
	K      ir.Kind     // result kind
	OpBase ir.BaseKind // computation base for OpBin/OpReduce
	BOp    ir.Op       // IR operation for OpBin/OpUn/OpReduce

	Dst  int
	A, B int
	Args []int // OpIntr arguments

	ImmI int64
	ImmF float64
	ImmC complex128

	Arr  int    // array slot for memory ops
	Off  int    // branch target
	Intr string // intrinsic name for OpIntr
	Sem  string // pattern semantics for mined OpIntr (empty for built-ins)
}

// ArraySlot describes one array variable of the program.
type ArraySlot struct {
	Name string
	Elem ir.BaseKind
}

// Param describes one function parameter.
type Param struct {
	Name    string
	IsArray bool
	Elem    ir.BaseKind
	Reg     int // scalar register, or
	Arr     int // array slot
}

// Program is a compiled function in VM form. A Program is immutable
// once lowering returns it; mutating one after execution started (or
// after ContentHash was taken) is a caller bug.
type Program struct {
	Name    string
	Instrs  []Instr
	NumRegs int
	Arrays  []ArraySlot
	Params  []Param
	Results []Param
}

// progHashes memoizes ContentHash per Program pointer, kept outside
// the struct so Program stays a plain copyable value. Bounded like the
// processor-hash memo (hashMemo in pcache.go): evict-one LRU, so
// retired programs become collectable instead of being pinned until a
// wholesale drop.
var progHashes = newHashMemo[*Program](progHashMemoCap)

const progHashMemoCap = 4096

// Len returns the static instruction count (the code-size metric).
func (p *Program) Len() int { return len(p.Instrs) }

// ContentHash returns a hex SHA-256 digest over everything observable
// about the program (instructions, register/array/param layout, name).
// Two programs with equal hashes execute identically, including fault
// messages; the prepared-program cache keys on it. Computed once and
// memoized.
//
// The digest is computed outside the memo lock (the processorHash
// pattern in pcache.go): programs are immutable once built, so
// concurrent first callers may hash redundantly, but a slow hash of a
// large program never serializes unrelated callers behind the global
// mutex.
func (p *Program) ContentHash() string {
	if s, ok := progHashes.get(p); ok {
		return s
	}
	s := p.contentHash()
	progHashes.put(p, s)
	return s
}

// contentHash is the uncached digest computation.
func (p *Program) contentHash() string {
	h := sha256.New()
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	ws := func(s string) {
		wi(int64(len(s)))
		io.WriteString(h, s)
	}
	ws(p.Name)
	wi(int64(p.NumRegs))
	wi(int64(len(p.Arrays)))
	for _, a := range p.Arrays {
		ws(a.Name)
		wi(int64(a.Elem))
	}
	wp := func(ps []Param) {
		wi(int64(len(ps)))
		for _, q := range ps {
			ws(q.Name)
			wi(int64(b2int(q.IsArray)))
			wi(int64(q.Elem))
			wi(int64(q.Reg))
			wi(int64(q.Arr))
		}
	}
	wp(p.Params)
	wp(p.Results)
	wi(int64(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		wi(int64(in.Op))
		wi(int64(in.K.Base))
		wi(int64(in.K.Lanes))
		wi(int64(in.OpBase))
		wi(int64(in.BOp))
		wi(int64(in.Dst))
		wi(int64(in.A))
		wi(int64(in.B))
		wi(int64(len(in.Args)))
		for _, a := range in.Args {
			wi(int64(a))
		}
		wi(in.ImmI)
		wi(int64(math.Float64bits(in.ImmF)))
		wi(int64(math.Float64bits(real(in.ImmC))))
		wi(int64(math.Float64bits(imag(in.ImmC))))
		wi(int64(in.Arr))
		wi(int64(in.Off))
		ws(in.Intr)
		ws(in.Sem)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func b2int(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Validate checks structural well-formedness: register and array
// operands in range and branch targets within the program. Lower always
// produces valid programs; Validate guards hand-built or mutated ones.
func (p *Program) Validate() error {
	reg := func(r int) error {
		if r < 0 || r >= p.NumRegs {
			return fmt.Errorf("register r%d out of range (have %d)", r, p.NumRegs)
		}
		return nil
	}
	arr := func(a int) error {
		if a < 0 || a >= len(p.Arrays) {
			return fmt.Errorf("array slot %d out of range (have %d)", a, len(p.Arrays))
		}
		return nil
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		check := func(err error) error {
			if err != nil {
				return fmt.Errorf("instr %d (%s): %w", i, in.Op, err)
			}
			return nil
		}
		switch in.Op {
		case OpNop, OpRet:
		case OpConst:
			if err := check(reg(in.Dst)); err != nil {
				return err
			}
		case OpMov, OpConv, OpUn, OpSplat, OpRamp, OpReduce:
			if err := check(reg(in.Dst)); err != nil {
				return err
			}
			if err := check(reg(in.A)); err != nil {
				return err
			}
		case OpBin:
			for _, r := range []int{in.Dst, in.A, in.B} {
				if err := check(reg(r)); err != nil {
					return err
				}
			}
		case OpIntr, OpSel:
			if err := check(reg(in.Dst)); err != nil {
				return err
			}
			for _, r := range in.Args {
				if err := check(reg(r)); err != nil {
					return err
				}
			}
		case OpLoad, OpVLoad:
			if err := check(reg(in.Dst)); err != nil {
				return err
			}
			if err := check(reg(in.A)); err != nil {
				return err
			}
			if err := check(arr(in.Arr)); err != nil {
				return err
			}
		case OpStore:
			if err := check(reg(in.A)); err != nil {
				return err
			}
			if err := check(reg(in.B)); err != nil {
				return err
			}
			if err := check(arr(in.Arr)); err != nil {
				return err
			}
		case OpAlloc:
			if err := check(reg(in.A)); err != nil {
				return err
			}
			if err := check(reg(in.B)); err != nil {
				return err
			}
			if err := check(arr(in.Arr)); err != nil {
				return err
			}
		case OpDim:
			if err := check(reg(in.Dst)); err != nil {
				return err
			}
			if err := check(arr(in.Arr)); err != nil {
				return err
			}
		case OpJmp:
			if in.Off < 0 || in.Off > len(p.Instrs) {
				return fmt.Errorf("instr %d: jump target %d out of range", i, in.Off)
			}
		case OpJz:
			if err := check(reg(in.A)); err != nil {
				return err
			}
			if in.Off < 0 || in.Off > len(p.Instrs) {
				return fmt.Errorf("instr %d: branch target %d out of range", i, in.Off)
			}
		default:
			return fmt.Errorf("instr %d: unknown opcode %d", i, int(in.Op))
		}
	}
	return nil
}

// Disasm renders the program as assembly-like text.
func (p *Program) Disasm() string {
	out := fmt.Sprintf("; program %s: %d instrs, %d regs, %d arrays\n",
		p.Name, len(p.Instrs), p.NumRegs, len(p.Arrays))
	for i, in := range p.Instrs {
		out += fmt.Sprintf("%4d: %s\n", i, disasmInstr(p, in))
	}
	return out
}

func disasmInstr(p *Program, in Instr) string {
	arr := func() string {
		if in.Arr >= 0 && in.Arr < len(p.Arrays) {
			return p.Arrays[in.Arr].Name
		}
		return fmt.Sprintf("arr%d", in.Arr)
	}
	switch in.Op {
	case OpConst:
		switch in.K.Base {
		case ir.Int:
			return fmt.Sprintf("const r%d, %d", in.Dst, in.ImmI)
		case ir.Float:
			return fmt.Sprintf("const r%d, %g", in.Dst, in.ImmF)
		default:
			return fmt.Sprintf("const r%d, %v", in.Dst, in.ImmC)
		}
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", in.Dst, in.A)
	case OpConv:
		return fmt.Sprintf("conv.%s r%d, r%d", in.K, in.Dst, in.A)
	case OpBin:
		return fmt.Sprintf("%s.%s r%d, r%d, r%d", in.BOp, in.K, in.Dst, in.A, in.B)
	case OpUn:
		return fmt.Sprintf("%s.%s r%d, r%d", in.BOp, in.K, in.Dst, in.A)
	case OpIntr:
		return fmt.Sprintf("%s.%s r%d, %v", in.Intr, in.K, in.Dst, in.Args)
	case OpSel:
		return fmt.Sprintf("sel.%s r%d, %v", in.K, in.Dst, in.Args)
	case OpLoad:
		return fmt.Sprintf("load.%s r%d, %s[r%d]", in.K, in.Dst, arr(), in.A)
	case OpVLoad:
		return fmt.Sprintf("vload.%s r%d, %s[r%d]", in.K, in.Dst, arr(), in.A)
	case OpStore:
		return fmt.Sprintf("store.%s %s[r%d], r%d", in.K, arr(), in.A, in.B)
	case OpAlloc:
		return fmt.Sprintf("alloc %s, r%d, r%d", arr(), in.A, in.B)
	case OpDim:
		return fmt.Sprintf("dim%d r%d, %s", in.ImmI, in.Dst, arr())
	case OpSplat:
		return fmt.Sprintf("splat.%s r%d, r%d", in.K, in.Dst, in.A)
	case OpRamp:
		return fmt.Sprintf("ramp.%s r%d, r%d, %d", in.K, in.Dst, in.A, in.ImmI)
	case OpReduce:
		return fmt.Sprintf("reduce_%s.%s r%d, r%d", in.BOp, in.K, in.Dst, in.A)
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Off)
	case OpJz:
		return fmt.Sprintf("jz r%d, %d", in.A, in.Off)
	case OpRet:
		return "ret"
	}
	return in.Op.String()
}
