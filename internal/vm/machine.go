package vm

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
)

// FaultError is a VM runtime fault.
type FaultError struct {
	PC  int
	Msg string
}

func (e *FaultError) Error() string { return fmt.Sprintf("vm fault at pc=%d: %s", e.PC, e.Msg) }

// CancelCheckStride is the number of executed instructions between
// context polls in both execution engines: a cancelled RunContext is
// observed within at most this many simulated instructions. The poll
// charges nothing, so cycle accounting is identical with and without a
// cancellable context.
const CancelCheckStride = 4096

// CancelledError reports that a simulation stopped early because its
// context was cancelled (deadline or explicit cancel). It unwraps to
// the context's error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work. Machine counters
// (Cycles, Executed, ClassCounts) hold the partial run's state.
type CancelledError struct {
	// Executed is the dynamic instruction count at the poll that
	// observed the cancellation.
	Executed int64
	// Err is the context's error.
	Err error
}

func (e *CancelledError) Error() string {
	return fmt.Sprintf("vm: run cancelled after %d instructions: %v", e.Executed, e.Err)
}

func (e *CancelledError) Unwrap() error { return e.Err }

// vmval is a register value. Scalar values are written through to all
// three fields (with the same conversion conventions as the reference
// evaluator); vector values live in lanes.
type vmval struct {
	i     int64
	f     float64
	c     complex128
	lanes []complex128 // nil for scalars
}

func scalarOf(i int64, f float64, c complex128) vmval {
	return vmval{i: i, f: f, c: c}
}

func fromInt(v int64) vmval     { return scalarOf(v, float64(v), complex(float64(v), 0)) }
func fromFloat(v float64) vmval { return scalarOf(int64(v), v, complex(v, 0)) }
func fromComplex(v complex128) vmval {
	return scalarOf(int64(real(v)), real(v), v)
}

// lane returns lane j as a complex128 (scalars broadcast).
func (v vmval) lane(j int) complex128 {
	if v.lanes == nil {
		return v.c
	}
	return v.lanes[j]
}

// DefaultMaxCycles bounds execution when Machine.MaxCycles is zero.
const DefaultMaxCycles = 50_000_000_000

// Execution engine names accepted by Machine.Engine and
// SetDefaultEngine.
const (
	// EnginePrepared is the pre-decoded execution engine: cost classes
	// resolved to dense IDs at program-load time, allocation-free lane
	// buffers, and a content-addressed prepared-program cache.
	EnginePrepared = "prepared"
	// EngineReference is the original switch-dispatch interpreter,
	// retained as the semantic oracle for differential testing.
	EngineReference = "reference"

	// EngineCompiled (declared in compile.go) is the compiled-closure
	// backend: basic blocks translated to continuation-threaded Go
	// closures with batched accounting.
)

// defaultEngine is the process-wide engine used when Machine.Engine is
// empty. It is initialized from $MAT2C_VM_ENGINE ("prepared",
// "compiled", or "reference"/"ref") and adjustable via
// SetDefaultEngine.
var defaultEngine = struct {
	sync.RWMutex
	name string
}{name: EnginePrepared}

func init() {
	if env := os.Getenv("MAT2C_VM_ENGINE"); env != "" {
		_ = SetDefaultEngine(env) // an unknown value keeps the default
	}
}

// SetDefaultEngine selects the process-wide execution engine used by
// machines that do not set Engine explicitly ("prepared", "compiled",
// or "reference"; "ref" is accepted as an alias).
func SetDefaultEngine(name string) error {
	switch name {
	case "ref":
		name = EngineReference
	case EnginePrepared, EngineCompiled, EngineReference:
	default:
		return fmt.Errorf("vm: unknown engine %q (want %q, %q or %q)", name, EnginePrepared, EngineCompiled, EngineReference)
	}
	defaultEngine.Lock()
	defaultEngine.name = name
	defaultEngine.Unlock()
	return nil
}

// DefaultEngine reports the process-wide engine name.
func DefaultEngine() string {
	defaultEngine.RLock()
	defer defaultEngine.RUnlock()
	return defaultEngine.name
}

// Machine executes VM programs charging per-instruction cycle costs from
// a processor description.
type Machine struct {
	Proc *pdesc.Processor
	// MaxCycles bounds execution (0 = DefaultMaxCycles). Run never
	// modifies it.
	MaxCycles int64
	// Trace, when non-nil, receives one line per executed instruction
	// (pc, disassembly, cycle counter) — a debugging aid; it can produce
	// very large output. Tracing always runs on the reference engine.
	Trace io.Writer
	// Engine selects the execution engine ("prepared", "compiled", or
	// "reference"); empty uses the process default. All engines are
	// cycle-exact: Cycles, Executed, ClassCounts, outputs, and faults
	// are identical. The compiled engine ignores SuperSet — its blocks
	// already batch accounting block-wide, subsuming any fusion set.
	Engine string
	// Profile, when true, records per-pc dynamic execution counts into
	// PCCounts. Both engines support profiling: the prepared engine
	// maps fused superinstruction units back to their member pcs, so
	// counts always refer to the unfused Program and the two engines
	// produce identical profiles; cycle accounting is unchanged. The
	// instruction-set miner uses these counts to weight candidate
	// patterns by how often their sites actually ran, and the
	// superinstruction miner (MineSuperinsts) uses them to rank hot
	// straight-line sequences.
	Profile bool
	// SuperSet, when non-nil, selects an explicit superinstruction set
	// for the prepared engine (mined via MineSuperinsts or built by
	// hand); an empty set disables fusion for this machine's runs. Nil
	// applies the process default: static pair fusion when
	// superinstructions are enabled (SetSuperinstEnabled /
	// $MAT2C_VM_SUPERINST), none otherwise.
	SuperSet *SuperSet

	// PCCounts[pc] is the number of times prog.Instrs[pc] executed in
	// the last profiled Run (nil unless Profile is set).
	PCCounts []int64
	// Cycles is the total charged cost of the last Run.
	Cycles int64
	// Executed is the dynamic instruction count of the last Run.
	Executed int64
	// ClassCounts tallies executed instructions per cost class. The map
	// is reused (cleared, not reallocated) across runs of one Machine.
	ClassCounts map[string]int64
}

// NewMachine returns a machine for the given processor.
func NewMachine(p *pdesc.Processor) *Machine {
	return &Machine{Proc: p}
}

func (m *Machine) charge(class string) {
	m.Cycles += int64(m.Proc.Cost(class))
	m.ClassCounts[class]++
}

func (m *Machine) chargeN(class string, n int64) {
	m.Cycles += int64(m.Proc.Cost(class)) * n
	m.ClassCounts[class] += n
}

// engine resolves the effective engine for this run.
func (m *Machine) engine() string {
	if m.Engine != "" {
		return m.Engine
	}
	return DefaultEngine()
}

// Run executes prog with the given arguments (int64, float64,
// complex128, or *ir.Array matching each parameter) and returns results
// in declaration order. Cycles/Executed/ClassCounts are reset per run.
func (m *Machine) Run(prog *Program, args ...interface{}) ([]interface{}, error) {
	return m.RunContext(context.Background(), prog, args...)
}

// RunContext executes like Run under a cancellable context: both
// engines poll ctx every CancelCheckStride executed instructions and
// return a *CancelledError once it fires, leaving the partial
// Cycles/Executed/ClassCounts on the machine. The poll never charges
// cycles, so a run that completes is accounted identically to Run. A
// context that cannot be cancelled (Background, TODO) is never polled.
func (m *Machine) RunContext(ctx context.Context, prog *Program, args ...interface{}) ([]interface{}, error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // no cancellation source: skip polling entirely
	}
	maxCycles := m.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	m.Cycles = 0
	m.Executed = 0
	if m.ClassCounts == nil {
		m.ClassCounts = make(map[string]int64, 16)
	} else {
		clear(m.ClassCounts)
	}

	if m.Profile {
		if cap(m.PCCounts) >= len(prog.Instrs) {
			m.PCCounts = m.PCCounts[:len(prog.Instrs)]
			clear(m.PCCounts)
		} else {
			m.PCCounts = make([]int64, len(prog.Instrs))
		}
	} else {
		m.PCCounts = nil
	}

	if m.Trace == nil {
		switch m.engine() {
		case EnginePrepared:
			var pp *PreparedProgram
			if m.SuperSet != nil {
				pp = PreparedForSet(prog, m.Proc, m.SuperSet)
			} else {
				pp = PreparedFor(prog, m.Proc)
			}
			return pp.run(m, ctx, maxCycles, args)
		case EngineCompiled:
			return CompiledFor(prog, m.Proc).run(m, ctx, maxCycles, args)
		}
	}

	regs := make([]vmval, prog.NumRegs)
	arrays := make([]*ir.Array, len(prog.Arrays))
	if err := bindArgs(prog, args, regs, arrays); err != nil {
		return nil, err
	}
	if err := m.exec(ctx, prog, regs, arrays, maxCycles); err != nil {
		return nil, err
	}
	return collectResults(prog, regs, arrays)
}

// bindArgs marshals caller arguments into the register file and array
// slot table (shared by both engines; regs/arrays must be zeroed).
func bindArgs(prog *Program, args []interface{}, regs []vmval, arrays []*ir.Array) error {
	if len(args) != len(prog.Params) {
		return fmt.Errorf("%s expects %d arguments, got %d", prog.Name, len(prog.Params), len(args))
	}
	for i, p := range prog.Params {
		switch a := args[i].(type) {
		case int64:
			if p.IsArray {
				return fmt.Errorf("argument %d: scalar passed for array parameter %s", i, p.Name)
			}
			switch p.Elem {
			case ir.Int:
				regs[p.Reg] = fromInt(a)
			case ir.Float:
				regs[p.Reg] = fromFloat(float64(a))
			default:
				regs[p.Reg] = fromComplex(complex(float64(a), 0))
			}
		case float64:
			if p.IsArray {
				return fmt.Errorf("argument %d: scalar passed for array parameter %s", i, p.Name)
			}
			switch p.Elem {
			case ir.Int:
				regs[p.Reg] = fromInt(int64(a))
			case ir.Float:
				regs[p.Reg] = fromFloat(a)
			default:
				regs[p.Reg] = fromComplex(complex(a, 0))
			}
		case complex128:
			if p.IsArray {
				return fmt.Errorf("argument %d: scalar passed for array parameter %s", i, p.Name)
			}
			regs[p.Reg] = fromComplex(a)
		case *ir.Array:
			if !p.IsArray {
				return fmt.Errorf("argument %d: array passed for scalar parameter %s", i, p.Name)
			}
			if a.Elem != p.Elem {
				return fmt.Errorf("argument %d: array elem %s, parameter wants %s", i, a.Elem, p.Elem)
			}
			// MATLAB value semantics: distinct parameters must not share
			// storage. Clone when the caller passes one array twice.
			for _, q := range arrays {
				if q == a {
					a = a.Clone()
					break
				}
			}
			arrays[p.Arr] = a
		default:
			return fmt.Errorf("argument %d: unsupported type %T", i, args[i])
		}
	}
	return nil
}

// collectResults marshals declared results out of the register file and
// array slots (shared by both engines).
func collectResults(prog *Program, regs []vmval, arrays []*ir.Array) ([]interface{}, error) {
	results := make([]interface{}, len(prog.Results))
	for i, r := range prog.Results {
		if r.IsArray {
			if arrays[r.Arr] == nil {
				return nil, fmt.Errorf("result %s was never allocated", r.Name)
			}
			results[i] = arrays[r.Arr]
			continue
		}
		v := regs[r.Reg]
		switch r.Elem {
		case ir.Int:
			results[i] = v.i
		case ir.Float:
			results[i] = v.f
		default:
			results[i] = v.c
		}
	}
	return results, nil
}

func (m *Machine) exec(ctx context.Context, prog *Program, regs []vmval, arrays []*ir.Array, maxCycles int64) error {
	pc := 0
	fault := func(format string, a ...interface{}) error {
		return &FaultError{PC: pc, Msg: fmt.Sprintf(format, a...)}
	}
	pollIn := int64(CancelCheckStride)
	for pc < len(prog.Instrs) {
		if ctx != nil {
			if pollIn--; pollIn <= 0 {
				pollIn = CancelCheckStride
				if err := ctx.Err(); err != nil {
					return &CancelledError{Executed: m.Executed, Err: err}
				}
			}
		}
		if m.Cycles > maxCycles {
			return fault("cycle limit exceeded (%d)", maxCycles)
		}
		in := &prog.Instrs[pc]
		m.Executed++
		if m.Profile {
			m.PCCounts[pc]++
		}
		if m.Trace != nil {
			fmt.Fprintf(m.Trace, "%8d %5d: %s\n", m.Cycles, pc, disasmInstr(prog, *in))
		}
		switch in.Op {
		case OpNop:

		case OpConst:
			switch in.K.Base {
			case ir.Int:
				regs[in.Dst] = fromInt(in.ImmI)
				m.charge("imov")
			case ir.Float:
				regs[in.Dst] = fromFloat(in.ImmF)
				m.charge("fmov")
			default:
				regs[in.Dst] = fromComplex(in.ImmC)
				m.charge("cmov")
			}

		case OpMov:
			regs[in.Dst] = regs[in.A]
			m.charge(movClass(in.K))

		case OpConv:
			regs[in.Dst] = convVal(regs[in.A], in.K)
			m.charge("conv")

		case OpBin:
			v, err := m.execBin(in, regs)
			if err != nil {
				return fault("%v", err)
			}
			regs[in.Dst] = v

		case OpUn:
			v, err := m.execUn(in, regs)
			if err != nil {
				return fault("%v", err)
			}
			regs[in.Dst] = v

		case OpIntr:
			v, err := m.execIntr(in, regs)
			if err != nil {
				return fault("%v", err)
			}
			regs[in.Dst] = v

		case OpLoad:
			arr := arrays[in.Arr]
			if arr == nil {
				return fault("load from unallocated array %s", prog.Arrays[in.Arr].Name)
			}
			idx := int(regs[in.A].i)
			if idx < 0 || idx >= arr.Len() {
				return fault("load %s[%d] out of bounds (len %d)", prog.Arrays[in.Arr].Name, idx, arr.Len())
			}
			if arr.Elem == ir.Complex {
				regs[in.Dst] = fromComplex(arr.C[idx])
				m.charge("cload")
			} else {
				regs[in.Dst] = fromFloat(arr.F[idx])
				m.charge("load")
			}

		case OpVLoad:
			arr := arrays[in.Arr]
			if arr == nil {
				return fault("vload from unallocated array %s", prog.Arrays[in.Arr].Name)
			}
			base := int(regs[in.A].i)
			L := in.K.Lanes
			stride := int(in.ImmI)
			if stride == 0 {
				stride = 1
			}
			lo, hi := base, base+(L-1)*stride
			if stride < 0 {
				lo, hi = hi, lo
			}
			if lo < 0 || hi >= arr.Len() {
				return fault("vload %s[%d..%d] out of bounds (len %d)", prog.Arrays[in.Arr].Name, lo, hi, arr.Len())
			}
			lanes := make([]complex128, L)
			for j := 0; j < L; j++ {
				lanes[j] = arr.At(base + j*stride)
			}
			regs[in.Dst] = vmval{lanes: lanes}
			if stride == 1 {
				m.charge("vload")
			} else {
				// Strided load: charge the custom instruction, or its
				// serialized expansion when the target lacks one.
				name := "vlds"
				scalarClass := "load"
				if arr.Elem == ir.Complex {
					name = "vclds"
					scalarClass = "cload"
				}
				if ci := m.Proc.Instr(name); ci != nil {
					m.Cycles += int64(m.Proc.IssueCost(ci))
					m.ClassCounts[name]++
				} else {
					m.chargeN(scalarClass, int64(L))
				}
			}

		case OpStore:
			arr := arrays[in.Arr]
			if arr == nil {
				return fault("store to unallocated array %s", prog.Arrays[in.Arr].Name)
			}
			base := int(regs[in.A].i)
			val := regs[in.B]
			L := in.K.Lanes
			if base < 0 || base+L > arr.Len() {
				return fault("store %s[%d..%d] out of bounds (len %d)", prog.Arrays[in.Arr].Name, base, base+L-1, arr.Len())
			}
			if L > 1 {
				for j := 0; j < L; j++ {
					storeElem(arr, base+j, val.lane(j))
				}
				m.charge("vstore")
			} else {
				storeElem(arr, base, val.c)
				if arr.Elem == ir.Complex {
					m.charge("cstore")
				} else {
					m.charge("store")
				}
			}

		case OpAlloc:
			r := int(regs[in.A].i)
			c := int(regs[in.B].i)
			if r < 0 || c < 0 || r*c > 1<<28 {
				return fault("alloc %s: bad extent %dx%d", prog.Arrays[in.Arr].Name, r, c)
			}
			if prog.Arrays[in.Arr].Elem == ir.Complex {
				arrays[in.Arr] = ir.NewComplexArray(r, c)
			} else {
				arrays[in.Arr] = ir.NewFloatArray(r, c)
			}
			m.charge("alloc")
			// Zero-fill cost: one wide store per SIMD word.
			w := int64(m.Proc.SIMDWidth)
			if w < 1 {
				w = 1
			}
			m.chargeN("vstore", (int64(r)*int64(c)+w-1)/w)

		case OpDim:
			arr := arrays[in.Arr]
			if arr == nil {
				return fault("dim of unallocated array %s", prog.Arrays[in.Arr].Name)
			}
			switch in.ImmI {
			case int64(ir.DimRows):
				regs[in.Dst] = fromInt(int64(arr.Rows))
			case int64(ir.DimCols):
				regs[in.Dst] = fromInt(int64(arr.Cols))
			default:
				regs[in.Dst] = fromInt(int64(arr.Len()))
			}
			m.charge("imov")

		case OpSel:
			cond, th, el := regs[in.Args[0]], regs[in.Args[1]], regs[in.Args[2]]
			if in.K.Lanes <= 1 {
				if isZero(cond) {
					regs[in.Dst] = convVal(el, in.K)
				} else {
					regs[in.Dst] = convVal(th, in.K)
				}
				m.charge("fcmp")
				break
			}
			lanes := make([]complex128, in.K.Lanes)
			for j := range lanes {
				if cond.lane(j) != 0 {
					lanes[j] = th.lane(j)
				} else {
					lanes[j] = el.lane(j)
				}
				if in.K.Base != ir.Complex {
					lanes[j] = complex(real(lanes[j]), 0)
				}
			}
			regs[in.Dst] = vmval{lanes: lanes}
			m.charge("vop")

		case OpSplat:
			lanes := make([]complex128, in.K.Lanes)
			v := regs[in.A].c
			for j := range lanes {
				lanes[j] = v
			}
			regs[in.Dst] = vmval{lanes: lanes}
			m.charge("vsplat")

		case OpRamp:
			lanes := make([]complex128, in.K.Lanes)
			base := regs[in.A].i
			for j := range lanes {
				lanes[j] = complex(float64(base+int64(j)*in.ImmI), 0)
			}
			regs[in.Dst] = vmval{lanes: lanes}
			m.charge("vsplat")

		case OpReduce:
			v := regs[in.A]
			if v.lanes == nil {
				return fault("reduce of scalar register")
			}
			acc := v.lanes[0]
			for j := 1; j < len(v.lanes); j++ {
				var err error
				acc, err = scalarBin(in.BOp, in.OpBase, acc, v.lanes[j])
				if err != nil {
					return fault("%v", err)
				}
			}
			regs[in.Dst] = materialize(acc, in.K.Base)
			m.charge("vreduce")

		case OpJmp:
			m.charge("jump")
			pc = in.Off
			continue

		case OpJz:
			m.charge("branch")
			if isZero(regs[in.A]) {
				pc = in.Off
				continue
			}

		case OpRet:
			m.charge("ret")
			return nil

		default:
			return fault("bad opcode %s", in.Op)
		}
		pc++
	}
	return nil
}

func movClass(k ir.Kind) string {
	if k.Lanes > 1 {
		return "vsplat"
	}
	switch k.Base {
	case ir.Int:
		return "imov"
	case ir.Float:
		return "fmov"
	default:
		return "cmov"
	}
}

func storeElem(arr *ir.Array, i int, v complex128) {
	if arr.Elem == ir.Complex {
		arr.C[i] = v
	} else {
		arr.F[i] = real(v)
	}
}

func isZero(v vmval) bool {
	if v.lanes != nil {
		return v.lanes[0] == 0
	}
	return v.i == 0 && v.f == 0 && v.c == 0
}

// materialize builds a scalar vmval from a complex computation result at
// the given base (write-through fields like the reference evaluator).
func materialize(v complex128, base ir.BaseKind) vmval {
	switch base {
	case ir.Int:
		return fromInt(int64(real(v)))
	case ir.Float:
		return fromFloat(real(v))
	default:
		return fromComplex(v)
	}
}

// convVal implements assignment conversion (truncation toward zero for
// float→int, real part for complex→float), matching the reference
// evaluator's convertVal.
func convVal(v vmval, k ir.Kind) vmval {
	if k.Lanes > 1 {
		// Vector conversions preserve lane count.
		lanes := make([]complex128, k.Lanes)
		convInto(lanes, v, k.Base)
		return vmval{lanes: lanes}
	}
	return convScalar(v, k.Base)
}

// convScalar is assignment conversion for scalar registers.
func convScalar(v vmval, base ir.BaseKind) vmval {
	switch base {
	case ir.Int:
		return fromInt(v.i)
	case ir.Float:
		return fromFloat(v.f)
	default:
		return fromComplex(v.c)
	}
}

// convInto fills dst with the lane-wise conversion of v at the given
// base (scalars broadcast, missing source lanes read as zero). Writing
// in place over v's own lanes is safe: lane j is read before written.
func convInto(dst []complex128, v vmval, base ir.BaseKind) {
	src := v.lanes
	for j := range dst {
		var x complex128
		if src == nil {
			x = v.c
		} else if j < len(src) {
			x = src[j]
		}
		switch base {
		case ir.Int:
			dst[j] = complex(float64(int64(real(x))), 0)
		case ir.Float:
			dst[j] = complex(real(x), 0)
		default:
			dst[j] = x
		}
	}
}
