package vm

import (
	"context"
	"fmt"
	"sync"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
)

// The prepared execution engine.
//
// The reference interpreter charges every dynamic instruction through
// Processor.Cost (a string-keyed map lookup) and ClassCounts (a map
// increment), and allocates a fresh lane slice for every vector result.
// Preparation hoists all of that to program-load time: each instruction
// is decoded once into a pInstr whose cycle cost, dense cost-class ID
// and class count are fully resolved against a pdesc.CostTable, so the
// hot loop charges with an integer add and an array add. Vector results
// are written into per-register segments of one shared lane buffer
// owned by a pooled scratch arena, making the steady-state loop
// allocation-free.
//
// Both engines are cycle-exact by construction: they share the operand
// semantics in ops.go (binLane, unLane, intrFill, ...) and the
// differential tests require identical Cycles, Executed, ClassCounts,
// outputs, and fault messages on every kernel × target.

// Fused micro-opcodes: scalar binary operations and scalar intrinsics
// whose (operation, computation base, result base) triple is fully
// known at prepare time collapse into dedicated opcodes, replacing the
// generic dispatch chain (binScalarVal's base switch plus the per-op
// switch) with one direct arithmetic expression. Each fused case must
// compute exactly what its generic counterpart computes — the
// differential engine tests enforce this bit-for-bit.
const (
	xIAdd Opc = 0x100 + iota
	xISub
	xIMul
	xILt
	xILe
	xIGt
	xIGe
	xIEq
	xINe
	xIAnd
	xIOr
	xFAdd // float compute, float result
	xFSub
	xFMul
	xFDiv
	xFLt // float compare, float result
	xFLe
	xFGt
	xFGe
	xFEq
	xFNe
	xFLtI // float compare, int result
	xFLeI
	xFGtI
	xFGeI
	xFEqI
	xFNeI
	xCAdd // complex compute, complex result
	xCSub
	xCMul
	xIntrS // scalar intrinsic with statically valid decode
	xSuper // fused straight-line superinstruction (see superinst.go)
)

// fuseBin maps a scalar OpBin triple to its fused opcode, or OpBin when
// no fused form applies (the generic path remains authoritative).
func fuseBin(op ir.Op, opBase, kBase ir.BaseKind) Opc {
	switch opBase {
	case ir.Int:
		// binScalarVal's Int case ignores kBase: always fromInt.
		switch op {
		case ir.OpAdd:
			return xIAdd
		case ir.OpSub:
			return xISub
		case ir.OpMul:
			return xIMul
		case ir.OpLt:
			return xILt
		case ir.OpLe:
			return xILe
		case ir.OpGt:
			return xIGt
		case ir.OpGe:
			return xIGe
		case ir.OpEq:
			return xIEq
		case ir.OpNe:
			return xINe
		case ir.OpAnd:
			return xIAnd
		case ir.OpOr:
			return xIOr
		}
	case ir.Float:
		switch kBase {
		case ir.Float:
			switch op {
			case ir.OpAdd:
				return xFAdd
			case ir.OpSub:
				return xFSub
			case ir.OpMul:
				return xFMul
			case ir.OpDiv:
				return xFDiv
			case ir.OpLt:
				return xFLt
			case ir.OpLe:
				return xFLe
			case ir.OpGt:
				return xFGt
			case ir.OpGe:
				return xFGe
			case ir.OpEq:
				return xFEq
			case ir.OpNe:
				return xFNe
			}
		case ir.Int:
			switch op {
			case ir.OpLt:
				return xFLtI
			case ir.OpLe:
				return xFLeI
			case ir.OpGt:
				return xFGtI
			case ir.OpGe:
				return xFGeI
			case ir.OpEq:
				return xFEqI
			case ir.OpNe:
				return xFNeI
			}
		}
	case ir.Complex:
		if kBase == ir.Complex {
			switch op {
			case ir.OpAdd:
				return xCAdd
			case ir.OpSub:
				return xCSub
			case ir.OpMul:
				return xCMul
			}
		}
	}
	return OpBin
}

// lane0 reads lane 0 of a register without copying the vmval (scalars
// broadcast), mirroring vmval.lane(0).
func lane0(regs []vmval, r int) complex128 {
	v := &regs[r]
	if v.lanes == nil {
		return v.c
	}
	return v.lanes[0]
}

// pInstr is one pre-decoded instruction. Everything that the reference
// interpreter recomputes per dynamic execution — cost class strings,
// map lookups, lane counts, fault-message array names — is resolved
// here once per (program, processor) pair.
type pInstr struct {
	op     Opc
	bop    ir.Op
	opBase ir.BaseKind
	kBase  ir.BaseKind
	lanes  int

	dst, a, b int
	args      []int
	immI      int64
	arr       int
	off       int

	// Primary charge: cycles += cost; counts[class] += countN. A class
	// of -1 charges nothing (OpNop, intrinsics that fault before the
	// charge point).
	cost   int64
	class  int32
	countN int64

	// OpConst: the immediate, pre-materialized.
	val vmval

	// Memory ops: static array metadata for execution and faults.
	arrName string
	elem    ir.BaseKind

	// OpVLoad: stride and precomputed bounds-check offsets.
	stride       int
	loOff, hiOff int

	// OpAlloc: zero-fill charge (counts[zeroClass] += words,
	// cycles += zeroCost*words; words depends on the runtime extent).
	zeroClass int32
	zeroCost  int64
	allocW    int64

	// OpIntr: pre-decoded dispatch kind and precomputed fault messages.
	// intrFaultPre fires before the charge (instruction not provided by
	// the processor); intrFaultPost fires after it (unknown intrinsic or
	// arity mismatch) — matching the reference engine's charge ordering.
	// pat is the pre-parsed semantics pattern of a mined instruction
	// (nil for the built-in family).
	intr          intrKind
	intrName      string
	intrFaultPre  string
	intrFaultPost string
	pat           *ir.Pattern

	// xSuper: the fused members (pre-decoded copies of the replaced
	// range), the aggregated class charges of a completed unit, and —
	// reusing cost/off — the summed cycle cost and the pc past the
	// range. Interior code slots keep their normal decode so the
	// pc ↔ instruction mapping stays 1:1 for profiling and faults.
	sub     []pInstr
	charges []classCharge
}

// PreparedProgram is a Program pre-decoded against one processor's cost
// model. It is immutable and safe for concurrent use; each Run borrows
// a scratch arena from an internal pool.
type PreparedProgram struct {
	prog  *Program
	proc  *pdesc.Processor
	table *pdesc.CostTable
	code  []pInstr

	numRegs   int
	numArrays int
	maxL      int // widest lane count in the program (≥1)

	pool sync.Pool
}

// scratch is the per-run execution arena: register file, array slots,
// dense class counters, and the shared lane buffer. Register r owns
// lanebuf[r*maxL : (r+1)*maxL]; a register's vmval.lanes is always nil
// or a prefix of its own segment, so vector writes never alias another
// register's storage.
type scratch struct {
	regs    []vmval
	arrays  []*ir.Array
	counts  []int64
	touched []bool
	lanebuf []complex128
	maxL    int
}

// seg returns register reg's lane segment, sized to L lanes.
func (s *scratch) seg(reg, L int) []complex128 {
	base := reg * s.maxL
	return s.lanebuf[base : base+L : base+L]
}

// Prepare pre-decodes prog against proc's cost model. The processor
// must not be mutated afterwards (the usual read-only contract shared
// with pdesc.Resolve). Most callers want PreparedFor, which memoizes
// the result in a content-addressed cache.
func Prepare(prog *Program, proc *pdesc.Processor) *PreparedProgram {
	return PrepareSuper(prog, proc, nil)
}

// PrepareSuper pre-decodes prog like Prepare and additionally fuses the
// given superinstruction set (nil or empty = none). Invalid or
// unfuseable ranges are dropped silently; see fuseSuperinsts. Cached
// via PreparedForSet.
func PrepareSuper(prog *Program, proc *pdesc.Processor, set *SuperSet) *PreparedProgram {
	table := pdesc.NewCostTable(proc)
	id := func(name string) int32 {
		i, ok := table.ID(name)
		if !ok {
			// Unreachable: every class the VM charges is either in
			// pdesc's architectural table or an instruction name.
			panic("vm: cost class " + name + " missing from cost table")
		}
		return int32(i)
	}

	maxL := 1
	for i := range prog.Instrs {
		if L := prog.Instrs[i].K.Lanes; L > maxL {
			maxL = L
		}
	}

	code := make([]pInstr, len(prog.Instrs))
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		p := &code[i]
		p.op = in.Op
		p.bop = in.BOp
		p.opBase = in.OpBase
		p.kBase = in.K.Base
		p.lanes = in.K.Lanes
		p.dst, p.a, p.b = in.Dst, in.A, in.B
		p.args = in.Args
		p.immI = in.ImmI
		p.arr = in.Arr
		p.off = in.Off
		p.class = -1
		p.countN = 1
		if in.Arr >= 0 && in.Arr < len(prog.Arrays) {
			p.arrName = prog.Arrays[in.Arr].Name
			p.elem = prog.Arrays[in.Arr].Elem
		}

		// setClass resolves the primary charge to (class ID, cost·n, n).
		setClass := func(name string, n int64) {
			p.class = id(name)
			p.countN = n
			p.cost = table.Cost(int(p.class)) * n
		}

		switch in.Op {
		case OpNop:
			p.countN = 0

		case OpConst:
			switch in.K.Base {
			case ir.Int:
				p.val = fromInt(in.ImmI)
				setClass("imov", 1)
			case ir.Float:
				p.val = fromFloat(in.ImmF)
				setClass("fmov", 1)
			default:
				p.val = fromComplex(in.ImmC)
				setClass("cmov", 1)
			}

		case OpMov:
			setClass(movClass(in.K), 1)

		case OpConv:
			setClass("conv", 1)

		case OpBin:
			setClass(binClass(in), 1)
			if in.K.Lanes <= 1 {
				p.op = fuseBin(in.BOp, in.OpBase, in.K.Base)
			}

		case OpUn:
			class := unClass(in.BOp, in.OpBase)
			if in.K.Lanes > 1 {
				serial := false
				switch in.BOp {
				case ir.OpSqrt, ir.OpSin, ir.OpCos, ir.OpTan, ir.OpExp,
					ir.OpLog, ir.OpAngle, ir.OpAsin, ir.OpAcos, ir.OpAtan,
					ir.OpSinh, ir.OpCosh, ir.OpTanh:
					// No vector transcendental unit: serialize per lane.
					serial = true
				case ir.OpAbs:
					serial = in.OpBase == ir.Complex
				}
				if serial {
					setClass(class, int64(in.K.Lanes))
				} else {
					setClass("vop", 1)
				}
			} else {
				setClass(class, 1)
			}

		case OpIntr:
			p.intrName = in.Intr
			ci := proc.Instr(in.Intr)
			if ci == nil {
				// Faults at runtime before any charge, like the
				// reference engine.
				p.intrFaultPre = fmt.Sprintf("intrinsic %q not provided by processor %s", in.Intr, proc.Name)
				break
			}
			// The issue cost comes from the instruction declaration, not
			// the architectural table (the name may shadow a class).
			p.class = id(in.Intr)
			p.cost = int64(proc.IssueCost(ci))
			p.intr = intrKindOf(in.Intr)
			if p.intr == intrUnknown {
				if in.Sem != "" {
					// Mined instruction: pre-parse the semantics pattern
					// once; the hot loop evaluates it lane-wise.
					pat, err := ir.CachedPattern(in.Sem)
					switch {
					case err != nil:
						p.intrFaultPost = fmt.Sprintf("intrinsic %q: bad semantics: %v", in.Intr, err)
					case len(in.Args) != pat.Arity():
						p.intrFaultPost = fmt.Sprintf("intrinsic %s expects %d args, got %d", in.Intr, pat.Arity(), len(in.Args))
					default:
						p.pat = pat
					}
				} else {
					p.intrFaultPost = fmt.Sprintf("unknown intrinsic %q", in.Intr)
				}
			} else if len(in.Args) != intrArity(p.intr) {
				p.intrFaultPost = fmt.Sprintf("intrinsic %s expects %d args, got %d", in.Intr, intrArity(p.intr), len(in.Args))
			} else if in.K.Lanes == 1 {
				p.op = xIntrS
			}

		case OpLoad:
			if p.elem == ir.Complex {
				setClass("cload", 1)
			} else {
				setClass("load", 1)
			}

		case OpVLoad:
			stride := int(in.ImmI)
			if stride == 0 {
				stride = 1
			}
			p.stride = stride
			L := in.K.Lanes
			p.loOff, p.hiOff = 0, (L-1)*stride
			if stride < 0 {
				p.loOff, p.hiOff = p.hiOff, p.loOff
			}
			if stride == 1 {
				setClass("vload", 1)
				break
			}
			// Strided load: the custom instruction when declared, else
			// its serialized scalar expansion.
			name, scalarClass := "vlds", "load"
			if p.elem == ir.Complex {
				name, scalarClass = "vclds", "cload"
			}
			if ci := proc.Instr(name); ci != nil {
				p.class = id(name)
				p.cost = int64(proc.IssueCost(ci))
			} else {
				setClass(scalarClass, int64(L))
			}

		case OpStore:
			if in.K.Lanes > 1 {
				setClass("vstore", 1)
			} else if p.elem == ir.Complex {
				setClass("cstore", 1)
			} else {
				setClass("store", 1)
			}

		case OpAlloc:
			setClass("alloc", 1)
			w := int64(proc.SIMDWidth)
			if w < 1 {
				w = 1
			}
			p.allocW = w
			p.zeroClass = id("vstore")
			p.zeroCost = table.Cost(int(p.zeroClass))

		case OpDim:
			setClass("imov", 1)

		case OpSel:
			if in.K.Lanes <= 1 {
				setClass("fcmp", 1)
			} else {
				setClass("vop", 1)
			}

		case OpSplat, OpRamp:
			setClass("vsplat", 1)

		case OpReduce:
			setClass("vreduce", 1)

		case OpJmp:
			setClass("jump", 1)

		case OpJz:
			setClass("branch", 1)

		case OpRet:
			setClass("ret", 1)
		}
	}

	if seqs, ops := fuseSuperinsts(prog, code, set); seqs > 0 {
		superStats.prepares.Add(1)
		superStats.seqs.Add(uint64(seqs))
		superStats.ops.Add(uint64(ops))
	}

	return &PreparedProgram{
		prog:      prog,
		proc:      proc,
		table:     table,
		code:      code,
		numRegs:   prog.NumRegs,
		numArrays: len(prog.Arrays),
		maxL:      maxL,
	}
}

func (pp *PreparedProgram) getScratch() *scratch {
	if s, ok := pp.pool.Get().(*scratch); ok {
		return s
	}
	return &scratch{
		regs:    make([]vmval, pp.numRegs),
		arrays:  make([]*ir.Array, pp.numArrays),
		counts:  make([]int64, pp.table.Len()),
		touched: make([]bool, pp.table.Len()),
		lanebuf: make([]complex128, pp.numRegs*pp.maxL),
		maxL:    pp.maxL,
	}
}

func (pp *PreparedProgram) putScratch(s *scratch) {
	clear(s.regs)
	clear(s.arrays) // drop array references so results don't pin the pool
	clear(s.counts)
	clear(s.touched)
	pp.pool.Put(s)
}

// run executes the prepared program on behalf of m.Run. The machine's
// Cycles/Executed/ClassCounts have already been reset; they are updated
// here even when execution faults, matching the reference engine's
// partial state on error.
func (pp *PreparedProgram) run(m *Machine, ctx context.Context, maxCycles int64, args []interface{}) ([]interface{}, error) {
	s := pp.getScratch()
	defer pp.putScratch(s)
	if err := bindArgs(pp.prog, args, s.regs, s.arrays); err != nil {
		return nil, err
	}
	err := pp.exec(m, ctx, s, maxCycles)
	for id, t := range s.touched {
		if t {
			m.ClassCounts[pp.table.Name(id)] += s.counts[id]
		}
	}
	if err != nil {
		return nil, err
	}
	return collectResults(pp.prog, s.regs, s.arrays)
}

// exec is the prepared hot loop. It must stay charge-for-charge and
// fault-for-fault identical to Machine.exec; the per-opcode charge
// placement (before or after validity checks) mirrors the reference
// engine exactly.
func (pp *PreparedProgram) exec(m *Machine, ctx context.Context, s *scratch, maxCycles int64) error {
	var cycles, executed, dispSaved int64
	defer func() {
		m.Cycles = cycles
		m.Executed = executed
		if dispSaved > 0 {
			superStats.saved.Add(uint64(dispSaved))
		}
	}()

	regs := s.regs
	arrays := s.arrays
	counts := s.counts
	touched := s.touched
	code := pp.code
	var prof []int64
	if m.Profile {
		prof = m.PCCounts
	}

	pc := 0
	fault := func(format string, a ...interface{}) error {
		return &FaultError{PC: pc, Msg: fmt.Sprintf(format, a...)}
	}

	pollIn := int64(CancelCheckStride)
	for pc < len(code) {
		if ctx != nil {
			if pollIn--; pollIn <= 0 {
				pollIn = CancelCheckStride
				if err := ctx.Err(); err != nil {
					return &CancelledError{Executed: executed, Err: err}
				}
			}
		}
		if cycles > maxCycles {
			return fault("cycle limit exceeded (%d)", maxCycles)
		}
		in := &code[pc]
		executed++
		if prof != nil {
			prof[pc]++
		}

		switch in.op {
		case OpNop:

		case OpConst:
			regs[in.dst] = in.val
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true

		case OpMov:
			v := regs[in.a]
			if v.lanes != nil {
				dst := s.seg(in.dst, len(v.lanes))
				copy(dst, v.lanes)
				v.lanes = dst
			}
			regs[in.dst] = v
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true

		case OpConv:
			if in.lanes > 1 {
				dst := s.seg(in.dst, in.lanes)
				convInto(dst, regs[in.a], in.kBase)
				regs[in.dst] = vmval{lanes: dst}
			} else {
				regs[in.dst] = convScalar(regs[in.a], in.kBase)
			}
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true

		case OpBin:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			a, b := regs[in.a], regs[in.b]
			if in.lanes <= 1 {
				v, err := binScalarVal(in.bop, in.opBase, in.kBase, a, b)
				if err != nil {
					return fault("%v", err)
				}
				regs[in.dst] = v
				break
			}
			dst := s.seg(in.dst, in.lanes)
			for j := 0; j < in.lanes; j++ {
				r, err := binLane(in.bop, in.opBase, in.kBase, a.lane(j), b.lane(j))
				if err != nil {
					return fault("%v", err)
				}
				dst[j] = r
			}
			regs[in.dst] = vmval{lanes: dst}

		case xIAdd:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			r := regs[in.a].i + regs[in.b].i
			regs[in.dst] = vmval{i: r, f: float64(r), c: complex(float64(r), 0)}

		case xISub:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			r := regs[in.a].i - regs[in.b].i
			regs[in.dst] = vmval{i: r, f: float64(r), c: complex(float64(r), 0)}

		case xIMul:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			r := regs[in.a].i * regs[in.b].i
			regs[in.dst] = vmval{i: r, f: float64(r), c: complex(float64(r), 0)}

		case xILt, xILe, xIGt, xIGe, xIEq, xINe, xIAnd, xIOr:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			x, y := regs[in.a].i, regs[in.b].i
			var cond bool
			switch in.op {
			case xILt:
				cond = x < y
			case xILe:
				cond = x <= y
			case xIGt:
				cond = x > y
			case xIGe:
				cond = x >= y
			case xIEq:
				cond = x == y
			case xINe:
				cond = x != y
			case xIAnd:
				cond = x != 0 && y != 0
			default:
				cond = x != 0 || y != 0
			}
			r := b2i(cond)
			regs[in.dst] = vmval{i: r, f: float64(r), c: complex(float64(r), 0)}

		case xFAdd:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			r := regs[in.a].f + regs[in.b].f
			regs[in.dst] = vmval{i: int64(r), f: r, c: complex(r, 0)}

		case xFSub:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			r := regs[in.a].f - regs[in.b].f
			regs[in.dst] = vmval{i: int64(r), f: r, c: complex(r, 0)}

		case xFMul:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			r := regs[in.a].f * regs[in.b].f
			regs[in.dst] = vmval{i: int64(r), f: r, c: complex(r, 0)}

		case xFDiv:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			r := regs[in.a].f / regs[in.b].f
			regs[in.dst] = vmval{i: int64(r), f: r, c: complex(r, 0)}

		case xFLt, xFLe, xFGt, xFGe, xFEq, xFNe,
			xFLtI, xFLeI, xFGtI, xFGeI, xFEqI, xFNeI:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			x, y := regs[in.a].f, regs[in.b].f
			var cond bool
			switch in.op {
			case xFLt, xFLtI:
				cond = x < y
			case xFLe, xFLeI:
				cond = x <= y
			case xFGt, xFGtI:
				cond = x > y
			case xFGe, xFGeI:
				cond = x >= y
			case xFEq, xFEqI:
				cond = x == y
			default:
				cond = x != y
			}
			r := b2i(cond)
			regs[in.dst] = vmval{i: r, f: float64(r), c: complex(float64(r), 0)}

		case xCAdd:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			r := regs[in.a].c + regs[in.b].c
			regs[in.dst] = vmval{i: int64(real(r)), f: real(r), c: r}

		case xCSub:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			r := regs[in.a].c - regs[in.b].c
			regs[in.dst] = vmval{i: int64(real(r)), f: real(r), c: r}

		case xCMul:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			r := regs[in.a].c * regs[in.b].c
			regs[in.dst] = vmval{i: int64(real(r)), f: real(r), c: r}

		case xIntrS:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			a0 := lane0(regs, in.args[0])
			a1 := lane0(regs, in.args[1])
			var a2 complex128
			if len(in.args) > 2 {
				a2 = lane0(regs, in.args[2])
			}
			regs[in.dst] = materialize(intrLane(in.intr, a0, a1, a2), in.kBase)

		case xSuper:
			// One dispatch for the whole fused range. The loop header
			// already accounted one poll tick, one executed, and one
			// prof hit for the unit; the remaining members are batched
			// here. Poll debt is settled up front so CancelCheckStride
			// still bounds the instructions between polls.
			n := int64(len(in.sub))
			// A unit may end with its block's own branch; the members
			// before it run through runSuper, and the successor pc is
			// resolved here from the branch itself.
			body := in.sub
			var br *pInstr
			if last := &in.sub[len(in.sub)-1]; last.op == OpJmp || last.op == OpJz {
				br = last
				body = in.sub[:len(in.sub)-1]
			}
			if ctx != nil {
				if pollIn -= n - 1; pollIn <= 0 {
					pollIn = CancelCheckStride
					if err := ctx.Err(); err != nil {
						executed--
						return &CancelledError{Executed: executed, Err: err}
					}
				}
			}
			if cycles+in.cost <= maxCycles {
				// Fast path: the whole unit fits under the limit (the
				// per-member checks cannot fire), so members run
				// semantics-only and accounting lands once, batched.
				k, serr := pp.runSuper(body, s)
				if serr == nil {
					executed += n - 1
					cycles += in.cost
					for _, ch := range in.charges {
						counts[ch.class] += ch.n
						touched[ch.class] = true
					}
					if prof != nil {
						for j := 1; j < len(in.sub); j++ {
							prof[pc+j]++
						}
					}
					dispSaved += n - 1
					if br == nil {
						pc = in.off
					} else if br.op == OpJmp || isZeroP(&regs[br.a]) {
						pc = br.off
					} else {
						pc = in.off // OpJz fall-through = one past the unit
					}
					continue
				}
				// Member k faulted: replay the completed prefix's
				// charges, plus member k's own charge when its opcode
				// charges before its fault checks, then report the
				// member's pc — bit-identical to the unfused run.
				for j := 0; j <= k; j++ {
					sb := &in.sub[j]
					if j == k && !chargeFirstOp(sb.op) {
						break
					}
					cycles += sb.cost
					if sb.class >= 0 {
						counts[sb.class] += sb.countN
						touched[sb.class] = true
					}
				}
				executed += int64(k)
				if prof != nil {
					for j := 1; j <= k; j++ {
						prof[pc+j]++
					}
				}
				dispSaved += int64(k)
				pc += k
				return fault("%v", serr)
			}
			// Slow path (cycle limit within the unit's reach): step
			// members one at a time with the reference engine's exact
			// ordering — limit check, executed, charge placement.
			executed-- // re-counted per member below
			for k := range body {
				if cycles > maxCycles {
					pc += k
					return fault("cycle limit exceeded (%d)", maxCycles)
				}
				executed++
				if prof != nil && k > 0 {
					prof[pc+k]++
				}
				sb := &in.sub[k]
				first := chargeFirstOp(sb.op)
				if first {
					cycles += sb.cost
					if sb.class >= 0 {
						counts[sb.class] += sb.countN
						touched[sb.class] = true
					}
				}
				if _, serr := pp.runSuper(in.sub[k:k+1], s); serr != nil {
					pc += k
					return fault("%v", serr)
				}
				if !first {
					cycles += sb.cost
					if sb.class >= 0 {
						counts[sb.class] += sb.countN
						touched[sb.class] = true
					}
				}
			}
			if br != nil {
				// The trailing branch, stepped with the same ordering
				// (branches charge before acting and cannot fault).
				k := len(body)
				if cycles > maxCycles {
					pc += k
					return fault("cycle limit exceeded (%d)", maxCycles)
				}
				executed++
				if prof != nil {
					prof[pc+k]++
				}
				cycles += br.cost
				if br.class >= 0 {
					counts[br.class] += br.countN
					touched[br.class] = true
				}
				dispSaved += n - 1
				if br.op == OpJmp || isZeroP(&regs[br.a]) {
					pc = br.off
				} else {
					pc = in.off
				}
				continue
			}
			dispSaved += n - 1
			pc = in.off
			continue

		case OpUn:
			cycles += in.cost
			counts[in.class] += in.countN
			touched[in.class] = true
			a := regs[in.a]
			if in.lanes <= 1 {
				v, err := unScalar(in.bop, in.opBase, in.kBase, a)
				if err != nil {
					return fault("%v", err)
				}
				regs[in.dst] = v
				break
			}
			dst := s.seg(in.dst, in.lanes)
			for j := 0; j < in.lanes; j++ {
				v, err := unLane(in.bop, in.opBase, in.kBase, a.lane(j))
				if err != nil {
					return fault("%v", err)
				}
				dst[j] = v
			}
			regs[in.dst] = vmval{lanes: dst}

		case OpIntr:
			if in.intrFaultPre != "" {
				return fault("%s", in.intrFaultPre)
			}
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			if in.intrFaultPost != "" {
				return fault("%s", in.intrFaultPost)
			}
			if in.pat != nil {
				dst := s.seg(in.dst, in.lanes)
				var argbuf [ir.MaxPatternArity]complex128
				pargs := argbuf[:len(in.args)]
				for j := 0; j < in.lanes; j++ {
					for ai, r := range in.args {
						pargs[ai] = regs[r].lane(j)
					}
					dst[j] = in.pat.EvalLane(pargs)
				}
				if in.lanes <= 1 {
					regs[in.dst] = materialize(dst[0], in.kBase)
				} else {
					regs[in.dst] = vmval{lanes: dst}
				}
				break
			}
			var a0, a1, a2 vmval
			a0, a1 = regs[in.args[0]], regs[in.args[1]]
			if len(in.args) > 2 {
				a2 = regs[in.args[2]]
			}
			lanes := s.seg(in.dst, in.lanes)
			intrFill(in.intr, lanes, a0, a1, a2)
			if in.lanes <= 1 {
				regs[in.dst] = materialize(lanes[0], in.kBase)
			} else {
				regs[in.dst] = vmval{lanes: lanes}
			}

		case OpLoad:
			arr := arrays[in.arr]
			if arr == nil {
				return fault("load from unallocated array %s", in.arrName)
			}
			idx := int(regs[in.a].i)
			if idx < 0 || idx >= arr.Len() {
				return fault("load %s[%d] out of bounds (len %d)", in.arrName, idx, arr.Len())
			}
			if in.elem == ir.Complex {
				regs[in.dst] = fromComplex(arr.C[idx])
			} else {
				regs[in.dst] = fromFloat(arr.F[idx])
			}
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true

		case OpVLoad:
			arr := arrays[in.arr]
			if arr == nil {
				return fault("vload from unallocated array %s", in.arrName)
			}
			base := int(regs[in.a].i)
			lo, hi := base+in.loOff, base+in.hiOff
			if lo < 0 || hi >= arr.Len() {
				return fault("vload %s[%d..%d] out of bounds (len %d)", in.arrName, lo, hi, arr.Len())
			}
			dst := s.seg(in.dst, in.lanes)
			if in.elem == ir.Complex && in.stride == 1 {
				copy(dst, arr.C[base:base+in.lanes])
			} else {
				for j := 0; j < in.lanes; j++ {
					dst[j] = arr.At(base + j*in.stride)
				}
			}
			regs[in.dst] = vmval{lanes: dst}
			cycles += in.cost
			counts[in.class] += in.countN
			touched[in.class] = true

		case OpStore:
			arr := arrays[in.arr]
			if arr == nil {
				return fault("store to unallocated array %s", in.arrName)
			}
			base := int(regs[in.a].i)
			val := regs[in.b]
			if base < 0 || base+in.lanes > arr.Len() {
				return fault("store %s[%d..%d] out of bounds (len %d)", in.arrName, base, base+in.lanes-1, arr.Len())
			}
			if in.lanes > 1 {
				for j := 0; j < in.lanes; j++ {
					storeElem(arr, base+j, val.lane(j))
				}
			} else {
				storeElem(arr, base, val.c)
			}
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true

		case OpAlloc:
			r := int(regs[in.a].i)
			c := int(regs[in.b].i)
			if r < 0 || c < 0 || r*c > 1<<28 {
				return fault("alloc %s: bad extent %dx%d", in.arrName, r, c)
			}
			if in.elem == ir.Complex {
				arrays[in.arr] = ir.NewComplexArray(r, c)
			} else {
				arrays[in.arr] = ir.NewFloatArray(r, c)
			}
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			// Zero-fill cost: one wide store per SIMD word.
			words := (int64(r)*int64(c) + in.allocW - 1) / in.allocW
			cycles += in.zeroCost * words
			counts[in.zeroClass] += words
			touched[in.zeroClass] = true

		case OpDim:
			arr := arrays[in.arr]
			if arr == nil {
				return fault("dim of unallocated array %s", in.arrName)
			}
			switch in.immI {
			case int64(ir.DimRows):
				regs[in.dst] = fromInt(int64(arr.Rows))
			case int64(ir.DimCols):
				regs[in.dst] = fromInt(int64(arr.Cols))
			default:
				regs[in.dst] = fromInt(int64(arr.Len()))
			}
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true

		case OpSel:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			cond, th, el := regs[in.args[0]], regs[in.args[1]], regs[in.args[2]]
			if in.lanes <= 1 {
				if isZero(cond) {
					regs[in.dst] = convScalar(el, in.kBase)
				} else {
					regs[in.dst] = convScalar(th, in.kBase)
				}
				break
			}
			dst := s.seg(in.dst, in.lanes)
			for j := 0; j < in.lanes; j++ {
				var v complex128
				if cond.lane(j) != 0 {
					v = th.lane(j)
				} else {
					v = el.lane(j)
				}
				if in.kBase != ir.Complex {
					v = complex(real(v), 0)
				}
				dst[j] = v
			}
			regs[in.dst] = vmval{lanes: dst}

		case OpSplat:
			dst := s.seg(in.dst, in.lanes)
			v := regs[in.a].c
			for j := range dst {
				dst[j] = v
			}
			regs[in.dst] = vmval{lanes: dst}
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true

		case OpRamp:
			dst := s.seg(in.dst, in.lanes)
			base := regs[in.a].i
			for j := range dst {
				dst[j] = complex(float64(base+int64(j)*in.immI), 0)
			}
			regs[in.dst] = vmval{lanes: dst}
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true

		case OpReduce:
			v := regs[in.a]
			if v.lanes == nil {
				return fault("reduce of scalar register")
			}
			acc := v.lanes[0]
			for j := 1; j < len(v.lanes); j++ {
				var err error
				acc, err = scalarBin(in.bop, in.opBase, acc, v.lanes[j])
				if err != nil {
					return fault("%v", err)
				}
			}
			regs[in.dst] = materialize(acc, in.kBase)
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true

		case OpJmp:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			pc = in.off
			continue

		case OpJz:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			v := &regs[in.a]
			var zero bool
			if v.lanes != nil {
				zero = v.lanes[0] == 0
			} else {
				zero = v.i == 0 && v.f == 0 && v.c == 0
			}
			if zero {
				pc = in.off
				continue
			}

		case OpRet:
			cycles += in.cost
			counts[in.class]++
			touched[in.class] = true
			return nil

		default:
			return fault("bad opcode %s", in.op)
		}
		pc++
	}
	return nil
}
