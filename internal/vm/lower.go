package vm

import (
	"fmt"

	"mat2c/internal/ir"
)

// Lower translates an IR function into a VM program.
func Lower(f *ir.Func) (*Program, error) {
	p, _, err := lowerFunc(f, false)
	return p, err
}

// LowerWithSites lowers f and additionally returns a site map: a slice
// parallel to the program's instructions where sites[pc] is the IR
// expression whose value instruction pc computes, or nil for control
// flow, moves, and other instructions that are not the final step of an
// expression. The map is compacted alongside the peephole pass, so
// per-pc profile counts from Machine.PCCounts can be attributed to IR
// expressions directly.
func LowerWithSites(f *ir.Func) (*Program, []ir.Expr, error) {
	return lowerFunc(f, true)
}

func lowerFunc(f *ir.Func, withSites bool) (*Program, []ir.Expr, error) {
	l := &vmLowerer{
		prog:        &Program{Name: f.Name},
		scalars:     map[*ir.Sym]int{},
		arrays:      map[*ir.Sym]int{},
		recordSites: withSites,
	}
	if err := l.run(f); err != nil {
		return nil, nil, err
	}
	l.sites = peephole(l.prog, l.sites)
	return l.prog, l.sites, nil
}

type loopCtx struct {
	breakJumps    []int // OpJmp instr indices to patch to loop exit
	continueJumps []int // OpJmp instr indices to patch to loop latch
}

type vmLowerer struct {
	prog        *Program
	scalars     map[*ir.Sym]int
	arrays      map[*ir.Sym]int
	loops       []*loopCtx
	retJmps     []int
	recordSites bool
	sites       []ir.Expr // parallel to prog.Instrs when recordSites
}

func (l *vmLowerer) newReg() int {
	r := l.prog.NumRegs
	l.prog.NumRegs++
	return r
}

func (l *vmLowerer) regOf(s *ir.Sym) int {
	if r, ok := l.scalars[s]; ok {
		return r
	}
	r := l.newReg()
	l.scalars[s] = r
	return r
}

func (l *vmLowerer) arrOf(s *ir.Sym) int {
	if a, ok := l.arrays[s]; ok {
		return a
	}
	a := len(l.prog.Arrays)
	l.prog.Arrays = append(l.prog.Arrays, ArraySlot{Name: s.String(), Elem: s.Elem})
	l.arrays[s] = a
	return a
}

func (l *vmLowerer) emit(in Instr) int {
	l.prog.Instrs = append(l.prog.Instrs, in)
	if l.recordSites {
		l.sites = append(l.sites, nil)
	}
	return len(l.prog.Instrs) - 1
}

func (l *vmLowerer) here() int { return len(l.prog.Instrs) }

func (l *vmLowerer) patch(idx, target int) { l.prog.Instrs[idx].Off = target }

func (l *vmLowerer) run(f *ir.Func) error {
	for _, p := range f.Params {
		if p.IsArray {
			l.prog.Params = append(l.prog.Params, Param{Name: p.Name, IsArray: true, Elem: p.Elem, Arr: l.arrOf(p), Reg: -1})
		} else {
			l.prog.Params = append(l.prog.Params, Param{Name: p.Name, Elem: p.Elem, Reg: l.regOf(p), Arr: -1})
		}
	}
	for _, r := range f.Results {
		if r.IsArray {
			l.prog.Results = append(l.prog.Results, Param{Name: r.Name, IsArray: true, Elem: r.Elem, Arr: l.arrOf(r), Reg: -1})
		} else {
			l.prog.Results = append(l.prog.Results, Param{Name: r.Name, Elem: r.Elem, Reg: l.regOf(r), Arr: -1})
		}
	}
	if err := l.stmts(f.Body); err != nil {
		return err
	}
	end := l.here()
	for _, j := range l.retJmps {
		l.patch(j, end)
	}
	l.emit(Instr{Op: OpRet})
	return nil
}

func (l *vmLowerer) stmts(stmts []ir.Stmt) error {
	for _, s := range stmts {
		if err := l.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (l *vmLowerer) stmt(s ir.Stmt) error {
	switch s := s.(type) {
	case *ir.Assign:
		src, err := l.expr(s.Src)
		if err != nil {
			return err
		}
		dst := l.regOf(s.Dst)
		want := s.Dst.Kind()
		got := s.Src.Kind()
		if got != want {
			l.emit(Instr{Op: OpConv, K: want, Dst: dst, A: src})
		} else {
			l.emit(Instr{Op: OpMov, K: want, Dst: dst, A: src})
		}
		return nil

	case *ir.Store:
		idx, err := l.expr(s.Index)
		if err != nil {
			return err
		}
		val, err := l.expr(s.Val)
		if err != nil {
			return err
		}
		l.emit(Instr{Op: OpStore, K: s.Val.Kind(), Arr: l.arrOf(s.Arr), A: idx, B: val})
		return nil

	case *ir.Alloc:
		rows, err := l.expr(s.Rows)
		if err != nil {
			return err
		}
		cols, err := l.expr(s.Cols)
		if err != nil {
			return err
		}
		l.emit(Instr{Op: OpAlloc, Arr: l.arrOf(s.Arr), A: rows, B: cols})
		return nil

	case *ir.For:
		return l.forStmt(s)
	case *ir.While:
		return l.whileStmt(s)
	case *ir.If:
		return l.ifStmt(s)

	case *ir.Break:
		if len(l.loops) == 0 {
			return fmt.Errorf("break outside loop")
		}
		ctx := l.loops[len(l.loops)-1]
		ctx.breakJumps = append(ctx.breakJumps, l.emit(Instr{Op: OpJmp}))
		return nil
	case *ir.Continue:
		if len(l.loops) == 0 {
			return fmt.Errorf("continue outside loop")
		}
		ctx := l.loops[len(l.loops)-1]
		ctx.continueJumps = append(ctx.continueJumps, l.emit(Instr{Op: OpJmp}))
		return nil
	case *ir.Return:
		l.retJmps = append(l.retJmps, l.emit(Instr{Op: OpJmp}))
		return nil
	}
	return fmt.Errorf("unsupported statement %T", s)
}

// forStmt lowers a counted loop:
//
//	    <lo>, <hi>, v = lo
//	head: t = (step>0 ? v<=hi : v>=hi); jz t, end
//	    body
//	latch: v = v + step; jmp head
//	end:
func (l *vmLowerer) forStmt(s *ir.For) error {
	lo, err := l.expr(s.Lo)
	if err != nil {
		return err
	}
	hi, err := l.expr(s.Hi)
	if err != nil {
		return err
	}
	v := l.regOf(s.Var)
	l.emit(Instr{Op: OpMov, K: ir.KInt, Dst: v, A: lo})

	stepReg := l.newReg()
	l.emit(Instr{Op: OpConst, K: ir.KInt, Dst: stepReg, ImmI: s.Step})

	head := l.here()
	cond := l.newReg()
	cmp := ir.OpLe
	if s.Step < 0 {
		cmp = ir.OpGe
	}
	l.emit(Instr{Op: OpBin, BOp: cmp, K: ir.KInt, OpBase: ir.Int, Dst: cond, A: v, B: hi})
	exitJz := l.emit(Instr{Op: OpJz, A: cond})

	ctx := &loopCtx{}
	l.loops = append(l.loops, ctx)
	if err := l.stmts(s.Body); err != nil {
		return err
	}
	l.loops = l.loops[:len(l.loops)-1]

	latch := l.here()
	l.emit(Instr{Op: OpBin, BOp: ir.OpAdd, K: ir.KInt, OpBase: ir.Int, Dst: v, A: v, B: stepReg})
	l.emit(Instr{Op: OpJmp, Off: head})
	end := l.here()

	l.patch(exitJz, end)
	for _, j := range ctx.breakJumps {
		l.patch(j, end)
	}
	for _, j := range ctx.continueJumps {
		l.patch(j, latch)
	}
	return nil
}

func (l *vmLowerer) whileStmt(s *ir.While) error {
	head := l.here()
	cond, err := l.expr(s.Cond)
	if err != nil {
		return err
	}
	exitJz := l.emit(Instr{Op: OpJz, A: cond})

	ctx := &loopCtx{}
	l.loops = append(l.loops, ctx)
	if err := l.stmts(s.Body); err != nil {
		return err
	}
	l.loops = l.loops[:len(l.loops)-1]

	l.emit(Instr{Op: OpJmp, Off: head})
	end := l.here()
	l.patch(exitJz, end)
	for _, j := range ctx.breakJumps {
		l.patch(j, end)
	}
	for _, j := range ctx.continueJumps {
		l.patch(j, head)
	}
	return nil
}

func (l *vmLowerer) ifStmt(s *ir.If) error {
	cond, err := l.expr(s.Cond)
	if err != nil {
		return err
	}
	elseJz := l.emit(Instr{Op: OpJz, A: cond})
	if err := l.stmts(s.Then); err != nil {
		return err
	}
	if len(s.Else) == 0 {
		l.patch(elseJz, l.here())
		return nil
	}
	endJmp := l.emit(Instr{Op: OpJmp})
	l.patch(elseJz, l.here())
	if err := l.stmts(s.Else); err != nil {
		return err
	}
	l.patch(endJmp, l.here())
	return nil
}

// expr emits code computing e and returns the result register. Every
// case of exprInner except VarRef ends with a freshly emitted
// instruction that computes e, which is what makes the site map below
// sound: the last instruction is the one whose dynamic execution count
// measures how often e was evaluated.
func (l *vmLowerer) expr(e ir.Expr) (int, error) {
	r, err := l.exprInner(e)
	if err == nil && l.recordSites {
		if _, isVar := e.(*ir.VarRef); !isVar {
			l.sites[len(l.sites)-1] = e
		}
	}
	return r, err
}

func (l *vmLowerer) exprInner(e ir.Expr) (int, error) {
	switch x := e.(type) {
	case *ir.ConstInt:
		r := l.newReg()
		l.emit(Instr{Op: OpConst, K: ir.KInt, Dst: r, ImmI: x.V})
		return r, nil
	case *ir.ConstFloat:
		r := l.newReg()
		l.emit(Instr{Op: OpConst, K: ir.KFloat, Dst: r, ImmF: x.V})
		return r, nil
	case *ir.ConstComplex:
		r := l.newReg()
		l.emit(Instr{Op: OpConst, K: ir.KComplex, Dst: r, ImmC: x.V})
		return r, nil
	case *ir.VarRef:
		return l.regOf(x.Sym), nil
	case *ir.Load:
		idx, err := l.expr(x.Index)
		if err != nil {
			return 0, err
		}
		r := l.newReg()
		l.emit(Instr{Op: OpLoad, K: ir.Kind{Base: x.Arr.Elem, Lanes: 1}, Dst: r, Arr: l.arrOf(x.Arr), A: idx})
		return r, nil
	case *ir.VecLoad:
		idx, err := l.expr(x.Index)
		if err != nil {
			return 0, err
		}
		r := l.newReg()
		l.emit(Instr{Op: OpVLoad, K: x.K, Dst: r, Arr: l.arrOf(x.Arr), A: idx, ImmI: x.StrideOr1()})
		return r, nil
	case *ir.Dim:
		r := l.newReg()
		l.emit(Instr{Op: OpDim, K: ir.KInt, Dst: r, Arr: l.arrOf(x.Arr), ImmI: int64(x.Which)})
		return r, nil
	case *ir.Bin:
		return l.binExpr(x)
	case *ir.Un:
		a, err := l.expr(x.X)
		if err != nil {
			return 0, err
		}
		r := l.newReg()
		switch x.Op {
		case ir.OpToFloat, ir.OpToComplex:
			l.emit(Instr{Op: OpConv, K: x.K, Dst: r, A: a})
		default:
			// OpToInt stays a real operation: it rounds, while OpConv
			// (assignment conversion) truncates.
			l.emit(Instr{Op: OpUn, BOp: x.Op, K: x.K, OpBase: x.X.Kind().Base, Dst: r, A: a})
		}
		return r, nil
	case *ir.Broadcast:
		a, err := l.expr(x.X)
		if err != nil {
			return 0, err
		}
		r := l.newReg()
		l.emit(Instr{Op: OpSplat, K: x.K, OpBase: x.X.Kind().Base, Dst: r, A: a})
		return r, nil
	case *ir.Ramp:
		a, err := l.expr(x.Base)
		if err != nil {
			return 0, err
		}
		r := l.newReg()
		l.emit(Instr{Op: OpRamp, K: x.K, Dst: r, A: a, ImmI: x.Step})
		return r, nil
	case *ir.Reduce:
		a, err := l.expr(x.X)
		if err != nil {
			return 0, err
		}
		r := l.newReg()
		l.emit(Instr{Op: OpReduce, BOp: x.Op, K: x.K, OpBase: x.X.Kind().Base, Dst: r, A: a})
		return r, nil
	case *ir.Intrinsic:
		args := make([]int, len(x.Args))
		for i, a := range x.Args {
			r, err := l.expr(a)
			if err != nil {
				return 0, err
			}
			args[i] = r
		}
		r := l.newReg()
		l.emit(Instr{Op: OpIntr, Intr: x.Name, Sem: x.Sem, K: x.K, Dst: r, Args: args})
		return r, nil
	case *ir.Select:
		c, err := l.expr(x.Cond)
		if err != nil {
			return 0, err
		}
		th, err := l.expr(x.Then)
		if err != nil {
			return 0, err
		}
		el, err := l.expr(x.Else)
		if err != nil {
			return 0, err
		}
		r := l.newReg()
		l.emit(Instr{Op: OpSel, K: x.K, Dst: r, Args: []int{c, th, el}})
		return r, nil
	}
	return 0, fmt.Errorf("unsupported expression %T", e)
}

// binExpr emits a binary op, inserting conversions so both operands sit
// at the common computation base.
func (l *vmLowerer) binExpr(x *ir.Bin) (int, error) {
	a, err := l.expr(x.X)
	if err != nil {
		return 0, err
	}
	b, err := l.expr(x.Y)
	if err != nil {
		return 0, err
	}
	ka, kb := x.X.Kind(), x.Y.Kind()
	base := ka.Base
	if kb.Base > base {
		base = kb.Base
	}
	lanes := x.K.Lanes
	if ka.Base != base {
		na := l.newReg()
		l.emit(Instr{Op: OpConv, K: ir.Kind{Base: base, Lanes: ka.Lanes}, Dst: na, A: a})
		a = na
	}
	if kb.Base != base {
		nb := l.newReg()
		l.emit(Instr{Op: OpConv, K: ir.Kind{Base: base, Lanes: kb.Lanes}, Dst: nb, A: b})
		b = nb
	}
	// Scalar operand of a vector op is splat on the fly by the machine
	// (no extra instruction: DSP vector units take a scalar register
	// operand), matching the reference evaluator's broadcasting.
	r := l.newReg()
	l.emit(Instr{Op: OpBin, BOp: x.Op, K: ir.Kind{Base: x.K.Base, Lanes: lanes}, OpBase: base, Dst: r, A: a, B: b})
	return r, nil
}
