package vm

import "mat2c/internal/ir"

// Peephole optimization over lowered VM code. Expression lowering
// computes into a fresh temp register and then copies it into the
// destination variable:
//
//	add.float r7, r2, r3
//	mov.float r4, r7
//
// When the temp is written once and read only by that mov, the compute
// instruction is retargeted and the mov removed. Branch offsets are
// remapped afterwards. Both pipelines get this cleanup, so cycle and
// code-size comparisons stay fair.

// dstOf returns the destination register of an instruction, or -1.
func dstOf(in *Instr) int {
	switch in.Op {
	case OpConst, OpMov, OpConv, OpBin, OpUn, OpIntr, OpLoad, OpVLoad,
		OpDim, OpSplat, OpRamp, OpReduce, OpSel:
		return in.Dst
	}
	return -1
}

// regReads appends the registers an instruction reads.
func regReads(in *Instr, out []int) []int {
	switch in.Op {
	case OpMov, OpConv, OpUn, OpSplat, OpRamp, OpReduce:
		out = append(out, in.A)
	case OpBin:
		out = append(out, in.A, in.B)
	case OpIntr, OpSel:
		out = append(out, in.Args...)
	case OpLoad, OpVLoad:
		out = append(out, in.A)
	case OpStore:
		out = append(out, in.A, in.B)
	case OpAlloc:
		out = append(out, in.A, in.B)
	case OpJz:
		out = append(out, in.A)
	}
	return out
}

// peephole rewrites prog in place, compacting the optional site map
// (parallel to prog.Instrs; nil when not recording) in the same pass,
// and returns the updated site map. A retargeted producer keeps its
// site: it still computes the same expression, just into a different
// register. The removed mov's site entry (always nil) is dropped.
func peephole(prog *Program, sites []ir.Expr) []ir.Expr {
	n := len(prog.Instrs)
	reads := make([]int, prog.NumRegs)
	writes := make([]int, prog.NumRegs)
	var buf []int
	for i := range prog.Instrs {
		buf = regReads(&prog.Instrs[i], buf[:0])
		for _, r := range buf {
			reads[r]++
		}
		if d := dstOf(&prog.Instrs[i]); d >= 0 {
			writes[d]++
		}
	}
	// Parameters and results are externally visible.
	pinned := make([]bool, prog.NumRegs)
	for _, p := range prog.Params {
		if !p.IsArray {
			pinned[p.Reg] = true
		}
	}
	for _, r := range prog.Results {
		if !r.IsArray {
			pinned[r.Reg] = true
		}
	}
	// Branch targets: retargeting across a label would change meaning.
	isTarget := make([]bool, n+1)
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if in.Op == OpJmp || in.Op == OpJz {
			isTarget[in.Off] = true
		}
	}

	remove := make([]bool, n)
	removed := 0
	for i := 0; i+1 < n; i++ {
		in := &prog.Instrs[i]
		mv := &prog.Instrs[i+1]
		if mv.Op != OpMov || isTarget[i+1] || remove[i] {
			continue
		}
		d := dstOf(in)
		if d < 0 || d != mv.A || d == mv.Dst || pinned[d] {
			continue
		}
		if reads[d] != 1 || writes[d] != 1 {
			continue
		}
		// Retarget the producer and drop the mov.
		in.Dst = mv.Dst
		remove[i+1] = true
		removed++
	}
	if removed == 0 {
		return sites
	}
	// Compact and remap branch offsets.
	newIdx := make([]int, n+1)
	j := 0
	for i := 0; i < n; i++ {
		newIdx[i] = j
		if !remove[i] {
			j++
		}
	}
	newIdx[n] = j
	out := make([]Instr, 0, j)
	var outSites []ir.Expr
	if sites != nil {
		outSites = make([]ir.Expr, 0, j)
	}
	for i := 0; i < n; i++ {
		if remove[i] {
			continue
		}
		in := prog.Instrs[i]
		if in.Op == OpJmp || in.Op == OpJz {
			in.Off = newIdx[in.Off]
		}
		out = append(out, in)
		if sites != nil {
			outSites = append(outSites, sites[i])
		}
	}
	prog.Instrs = out
	return outSites
}
