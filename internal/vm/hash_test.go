package vm

import (
	"fmt"
	"sync"
	"testing"

	"mat2c/internal/ir"
)

// hashTestProgram builds a program with enough instructions that
// hashing it takes measurable work (the lock-contention scenario the
// memo is designed around).
func hashTestProgram(name string, n int) *Program {
	p := &Program{Name: name, NumRegs: 8}
	for i := 0; i < n; i++ {
		p.Instrs = append(p.Instrs, Instr{
			Op:   OpBin,
			K:    ir.Kind{Base: ir.Float, Lanes: 1},
			BOp:  ir.OpAdd,
			Dst:  i % 8,
			A:    (i + 1) % 8,
			B:    (i + 2) % 8,
			ImmF: float64(i),
		})
	}
	p.Instrs = append(p.Instrs, Instr{Op: OpRet})
	return p
}

// TestContentHashParallelCallers hammers ContentHash from many
// goroutines over a mix of shared and distinct programs. Run under
// -race this pins the fix that moved the SHA-256 computation outside
// the global memo lock: every caller must see one stable digest per
// program, and distinct programs must hash distinctly.
func TestContentHashParallelCallers(t *testing.T) {
	const progs = 8
	const callers = 16
	ps := make([]*Program, progs)
	for i := range ps {
		ps[i] = hashTestProgram(fmt.Sprintf("p%d", i), 200+i)
	}
	want := make([]string, progs)
	for i, p := range ps {
		want[i] = p.contentHash() // uncached reference digest
	}

	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				i := (c + round) % progs
				if got := ps[i].ContentHash(); got != want[i] {
					errs <- fmt.Errorf("caller %d: program %d hashed to %s, want %s", c, i, got, want[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	for i := 0; i < progs; i++ {
		for j := i + 1; j < progs; j++ {
			if want[i] == want[j] {
				t.Errorf("distinct programs %d and %d share a hash", i, j)
			}
		}
	}
}

// TestContentHashMemoCapEviction crosses the memo capacity and
// verifies hashes stay correct after LRU eviction, and that the memo
// never grows past its cap (it evicts one entry at a time rather than
// dropping wholesale).
func TestContentHashMemoCapEviction(t *testing.T) {
	old := progHashes
	progHashes = newHashMemo[*Program](4)
	defer func() { progHashes = old }()

	var ps []*Program
	for i := 0; i < 10; i++ {
		ps = append(ps, hashTestProgram(fmt.Sprintf("cap%d", i), 16))
	}
	first := make([]string, len(ps))
	for i, p := range ps {
		first[i] = p.ContentHash()
		if n := progHashes.len(); n > 4 {
			t.Fatalf("memo grew to %d entries, cap is 4", n)
		}
	}
	for i, p := range ps {
		if got := p.ContentHash(); got != first[i] {
			t.Errorf("program %d re-hashed to %s after eviction, first saw %s", i, got, first[i])
		}
	}
}

// BenchmarkContentHashParallel measures concurrent first-call hashing:
// before the fix every digest was computed while holding the global
// memo mutex, serializing the parallel callers; after it only the map
// probe and insert are under the lock.
func BenchmarkContentHashParallel(b *testing.B) {
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			// A fresh program per iteration forces the uncached path.
			p := hashTestProgram("bench", 300)
			p.Instrs[0].ImmI = int64(i) // perturb so programs differ
			i++
			_ = p.ContentHash()
		}
	})
}

// BenchmarkContentHashMemoHit measures the cached path.
func BenchmarkContentHashMemoHit(b *testing.B) {
	p := hashTestProgram("hit", 300)
	p.ContentHash()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = p.ContentHash()
		}
	})
}
